// Credit accounting comparison: sweep the congestion sensor's credit
// accounting styles (per-VC vs per-port granularity) on a small flattened
// butterfly running UGAL, using the sweep package — the programmatic
// equivalent of a 50-line SSSweep script. With uniform random traffic,
// port-based accounting reaches higher throughput (case study B's Figure
// 10a, at example scale).
package main

import (
	"fmt"
	"log"

	"supersim/internal/config"
	"supersim/internal/sweep"
)

const base = `{
  "simulation": {"seed": 3},
  "network": {
    "topology": "hyperx",
    "widths": [8],
    "concentration": 8,
    "channel": {"latency": 100, "period": 2},
    "injection": {"latency": 2},
    "router": {
      "architecture": "input_output_queued",
      "num_vcs": 2,
      "speedup": 2,
      "input_buffer_depth": 128,
      "output_queue_depth": 256,
      "crossbar_latency": 100,
      "congestion_sensor": {"granularity": "vc", "source": "both"}
    },
    "routing": {"algorithm": "ugal"}
  },
  "workload": {
    "applications": [{
      "type": "blast",
      "injection_rate": 0.8,
      "message_size": 1,
      "warmup_duration": 3000,
      "sample_duration": 6000,
      "traffic": {"type": "uniform_random"}
    }]
  }
}`

func main() {
	s := sweep.New(config.MustParse(base), 1)
	s.AddVariable(sweep.Variable{
		Name: "Granularity", Short: "G",
		Values: []any{"vc", "port"},
		Apply: func(cfg *config.Settings, v any) {
			cfg.Set("network.router.congestion_sensor.granularity", v.(string))
		},
	})
	s.AddVariable(sweep.Variable{
		Name: "Source", Short: "S",
		Values: []any{"output", "downstream", "both"},
		Apply: func(cfg *config.Settings, v any) {
			cfg.Set("network.router.congestion_sensor.source", v.(string))
		},
	})
	fmt.Printf("running %d permutations (six credit accounting styles)...\n", s.Permutations())
	points, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s %9s %9s %9s %9s\n", "style", "accepted", "mean", "p99", "nonmin")
	for _, p := range points {
		fmt.Printf("%-24s %9.3f %9.1f %9.0f %9.4f\n",
			p.ID, p.Accepted, p.Summary.Mean, p.Summary.P99, p.Summary.NonMinimal)
	}
}

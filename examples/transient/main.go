// Transient analysis: the canonical multi-application experiment. A Blast
// application supplies steady background traffic on a flattened butterfly
// with UGAL adaptive routing while a Pulse application injects a temporary
// burst. The example prints Blast's mean latency over time — the disturbance
// and recovery are clearly visible — as an ASCII plot.
package main

import (
	"fmt"
	"log"
	"os"

	"supersim/internal/config"
	"supersim/internal/core"
	"supersim/internal/ssplot"
	"supersim/internal/stats"
	"supersim/internal/workload/apps"
)

const settings = `{
  "simulation": {"seed": 7},
  "network": {
    "topology": "hyperx",
    "widths": [8],
    "concentration": 8,
    "channel": {"latency": 50, "period": 1},
    "injection": {"latency": 1},
    "router": {
      "architecture": "input_output_queued",
      "num_vcs": 2,
      "input_buffer_depth": 64,
      "output_queue_depth": 128,
      "crossbar_latency": 25,
      "congestion_sensor": {"granularity": "port", "source": "both"}
    },
    "routing": {"algorithm": "ugal"}
  },
  "workload": {
    "applications": [
      {
        "type": "blast",
        "injection_rate": 0.35,
        "message_size": 1,
        "warmup_duration": 3000,
        "sample_duration": 20000,
        "traffic": {"type": "uniform_random"}
      },
      {
        "type": "pulse",
        "injection_rate": 0.9,
        "message_size": 1,
        "count": 60,
        "delay": 5000,
        "traffic": {"type": "uniform_random"}
      }
    ]
  }
}`

func main() {
	sm := core.Build(config.MustParse(settings))
	if _, err := sm.Run(); err != nil {
		log.Fatal(err)
	}
	blast := sm.Workload.App(0).(stats.Provider).Stats()
	pulse := sm.Workload.App(1).(*apps.Pulse).Stats()

	series := ssplot.Series{Label: "blast mean latency", XY: blast.TimeSeries(500)}
	ssplot.Plot(os.Stdout, "Blast mean latency disturbed by Pulse",
		"time (ticks)", "latency (ticks)", []ssplot.Series{series}, 72, 16)

	fmt.Printf("\nblast: %d samples, overall mean %.1f ticks\n", blast.Count(), blast.Mean())
	fmt.Printf("pulse: %d messages delivered, mean %.1f ticks\n", pulse.Count(), pulse.Mean())
}

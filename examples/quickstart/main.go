// Quickstart: build a small 2D torus with input-queued routers, drive it
// with uniform random traffic at 30% load, and print the latency statistics
// of the sampled window. This is the smallest complete use of the simulator
// API: settings in, statistics out.
package main

import (
	"fmt"
	"log"

	"supersim/internal/config"
	"supersim/internal/core"
	"supersim/internal/stats"
)

const settings = `{
  "simulation": {"seed": 42},
  "network": {
    "topology": "torus",
    "dimensions": [4, 4],
    "concentration": 1,
    "channel": {"latency": 10, "period": 1},
    "injection": {"latency": 1},
    "router": {
      "architecture": "input_queued",
      "num_vcs": 2,
      "input_buffer_depth": 16,
      "crossbar_latency": 5
    }
  },
  "workload": {
    "applications": [{
      "type": "blast",
      "injection_rate": 0.3,
      "message_size": 1,
      "warmup_duration": 1000,
      "sample_duration": 5000,
      "traffic": {"type": "uniform_random"}
    }]
  }
}`

func main() {
	cfg := config.MustParse(settings)
	sm := core.Build(cfg)
	fmt.Printf("network: %d routers, %d terminals, %d channels\n",
		sm.Net.NumRouters(), sm.Net.NumTerminals(), len(sm.Net.Channels()))

	res, err := sm.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d ticks in %d events\n", res.EndTick, res.Events)

	rec := sm.Workload.App(0).(stats.Provider).Stats()
	s := rec.Summarize()
	fmt.Printf("sampled %d messages\n", s.Count)
	fmt.Printf("latency: mean=%.1f p50=%.0f p99=%.0f p99.9=%.0f max=%.0f ticks\n",
		s.Mean, s.P50, s.P99, s.P999, s.Max)
	fmt.Printf("mean hops: %.2f\n", s.MeanHops)
}

// Channel latency sweep: the Listing 2 scenario from the paper — a few lines
// declaring a sweep variable turn into a full simulation campaign. The sweep
// runs a small torus at channel latencies 1..64 ticks, prints the CSV that
// sssweep would emit, renders an ASCII load plot, and writes the HTML web
// viewer with embedded SVG plots.
package main

import (
	"fmt"
	"log"
	"os"

	"supersim/internal/config"
	"supersim/internal/ssplot"
	"supersim/internal/sweep"
)

const base = `{
  "simulation": {"seed": 5},
  "network": {
    "topology": "torus",
    "dimensions": [4, 4],
    "concentration": 1,
    "channel": {"latency": 1, "period": 1},
    "injection": {"latency": 1},
    "router": {
      "architecture": "input_queued",
      "num_vcs": 2,
      "input_buffer_depth": 150,
      "crossbar_latency": 2
    }
  },
  "workload": {
    "applications": [{
      "type": "blast",
      "injection_rate": 0.3,
      "message_size": 1,
      "warmup_duration": 1000,
      "sample_duration": 4000,
      "traffic": {"type": "uniform_random"}
    }]
  }
}`

func main() {
	s := sweep.New(config.MustParse(base), 1)
	// The paper's Listing 2, in Go: one variable, one apply function.
	latencies := []any{1, 2, 4, 8, 16, 32, 64}
	s.AddVariable(sweep.Variable{
		Name: "ChannelLatency", Short: "CL", Values: latencies,
		Apply: func(cfg *config.Settings, v any) {
			cfg.Set("network.channel.latency", v.(int))
		},
	})
	fmt.Printf("sweeping %d simulations...\n", s.Permutations())
	points, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}

	var xy [][2]float64
	fmt.Printf("%-8s %10s %10s %10s\n", "latency", "accepted", "mean", "p99")
	for _, v := range latencies {
		for _, p := range points {
			if p.Values["ChannelLatency"] == v {
				fmt.Printf("%-8d %10.3f %10.1f %10.0f\n",
					v.(int), p.Accepted, p.Summary.Mean, p.Summary.P99)
				xy = append(xy, [2]float64{float64(v.(int)), p.Summary.Mean})
			}
		}
	}
	fmt.Println()
	ssplot.Plot(os.Stdout, "mean latency vs channel latency", "channel latency (ticks)",
		"mean latency (ticks)", []ssplot.Series{{Label: "mean", XY: xy}}, 64, 14)

	f, err := os.Create("sweep_report.html")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := sweep.WriteReport(f, "channel latency sweep", points, "ChannelLatency"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote sweep_report.html (the SSSweep-style web viewer)")
}

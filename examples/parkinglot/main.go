// Parking lot fairness: terminals along a chain all send to terminal 0, so
// flows merge at every router toward the sink. Round-robin arbitration
// halves the far terminals' bandwidth at every merge; age-based arbitration
// restores fairness. The example runs both policies on the parking-lot
// stress topology and prints per-source delivery counts.
package main

import (
	"fmt"
	"log"

	"supersim/internal/config"
	"supersim/internal/core"
	"supersim/internal/stats"
)

const base = `{
  "simulation": {"seed": 21},
  "network": {
    "topology": "parking_lot",
    "routers": 6,
    "channel": {"latency": 4, "period": 2},
    "injection": {"latency": 2},
    "router": {
      "architecture": "input_queued",
      "num_vcs": 1,
      "input_buffer_depth": 8,
      "crossbar_latency": 2,
      "crossbar_policy": "POLICY",
      "vc_policy": "POLICY"
    }
  },
  "workload": {
    "applications": [{
      "type": "blast",
      "injection_rate": 0.9,
      "message_size": 1,
      "warmup_duration": 1000,
      "sample_duration": 10000,
      "source_queue_limit": 16,
      "traffic": {"type": "fixed", "destination": 0}
    }]
  }
}`

func run(policy string) map[int]int {
	cfg := config.MustParse(base)
	cfg.Set("network.router.crossbar_policy", policy)
	cfg.Set("network.router.vc_policy", policy)
	sm := core.Build(cfg)
	if _, err := sm.Run(); err != nil {
		log.Fatal(err)
	}
	counts := map[int]int{}
	for _, s := range sm.Workload.App(0).(stats.Provider).Stats().Samples() {
		counts[s.Src]++
	}
	return counts
}

func main() {
	for _, policy := range []string{"round_robin", "age_based"} {
		counts := run(policy)
		fmt.Printf("%s arbitration — deliveries to terminal 0 by source:\n", policy)
		for src := 1; src <= 5; src++ {
			bar := ""
			for i := 0; i < counts[src]/100; i++ {
				bar += "#"
			}
			fmt.Printf("  source %d (distance %d): %5d %s\n", src, src, counts[src], bar)
		}
		fmt.Println()
	}
	fmt.Println("age-based arbitration equalizes service; round-robin starves far sources.")
}

// Command ssparse parses transaction logs written by supersim and generates
// latency information, with an easy-to-use filtering mechanism for viewing
// subsets of the data.
//
// Usage:
//
//	ssparse results.log +app=0 +send=500-1000
//
// Filters are ANDed. The aggregate latency summary prints to stdout; -csv
// additionally emits the percentile distribution as CSV.
//
// With -telemetry the input is a telemetry snapshot stream (JSONL, written by
// supersim -telemetry-file) instead of a transaction log; records are
// filtered by component, metric, kind, VC and time range and extracted to
// CSV:
//
//	ssparse -telemetry tel.jsonl +comp=ch_ +metric=chan_flits +t=1000-5000 -csv util.csv
//
// With -spans the input is a latency-decomposition stream (spans JSONL,
// written by supersim -spans); the per-app per-hop component breakdown prints
// as a stacked table, and -csv emits one (app, hop, component) row per cell:
//
//	ssparse -spans spans.jsonl -csv breakdown.csv
//
// With -tasks the input is a task event journal (JSONL, written by sssweep
// -journal); the per-task lifecycle summary prints to stdout, and -csv emits
// one timeline row per task (queued/ready/started/finished offsets plus
// wait, resource-blocked and run durations):
//
//	ssparse -tasks tasks.jsonl -csv timelines.csv
package main

import (
	"fmt"
	"os"
	"strings"

	"supersim/internal/ssparse"
	"supersim/internal/ssplot"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ssparse:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	var path, csvPath string
	var telemetryMode, spansMode, tasksMode bool
	var rawFilters []string
	for i := 0; i < len(args); i++ {
		arg := args[i]
		switch {
		case strings.HasPrefix(arg, "+"):
			rawFilters = append(rawFilters, arg)
		case arg == "-csv":
			i++
			if i >= len(args) {
				return fmt.Errorf("-csv requires a file argument")
			}
			csvPath = args[i]
		case arg == "-telemetry":
			telemetryMode = true
		case arg == "-spans":
			spansMode = true
		case arg == "-tasks":
			tasksMode = true
		case path == "":
			path = arg
		default:
			return fmt.Errorf("unexpected argument %q", arg)
		}
	}
	if path == "" {
		return fmt.Errorf("usage: ssparse [-telemetry|-spans|-tasks] <log file> [+filter ...] [-csv out.csv]")
	}
	modes := 0
	for _, on := range []bool{telemetryMode, spansMode, tasksMode} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		return fmt.Errorf("-telemetry, -spans and -tasks are mutually exclusive")
	}
	if telemetryMode {
		return runTelemetry(path, rawFilters, csvPath)
	}
	if spansMode {
		return runSpans(path, rawFilters, csvPath)
	}
	if tasksMode {
		return runTasks(path, rawFilters, csvPath)
	}
	var filters []ssparse.Filter
	for _, raw := range rawFilters {
		f, err := ssparse.ParseFilter(raw)
		if err != nil {
			return err
		}
		filters = append(filters, f)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	samples, err := ssparse.Parse(f)
	if err != nil {
		return err
	}
	rec := ssparse.Apply(samples, filters)
	s := rec.Summarize()
	fmt.Printf("samples:    %d (of %d before filters)\n", s.Count, len(samples))
	if s.Count == 0 {
		return nil
	}
	fmt.Printf("latency:    mean=%.1f min=%.0f max=%.0f\n", s.Mean, s.Min, s.Max)
	fmt.Printf("percentile: p50=%.0f p90=%.0f p99=%.0f p99.9=%.0f p99.99=%.0f\n",
		s.P50, s.P90, s.P99, s.P999, s.P9999)
	fmt.Printf("hops:       mean=%.2f  nonminimal: %.4f\n", s.MeanHops, s.NonMinimal)
	if csvPath != "" {
		out, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer out.Close()
		pts := []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 95, 99, 99.9, 99.99, 100}
		series := []ssplot.Series{{Label: "latency", XY: rec.PercentileCurve(pts)}}
		if err := ssplot.WriteCSV(out, series); err != nil {
			return err
		}
		fmt.Printf("wrote percentile CSV to %s\n", csvPath)
	}
	return nil
}

// runSpans aggregates a spans JSONL stream (supersim -spans) into the per-app
// per-hop latency decomposition: a stacked table on stdout and, with -csv,
// one (app, hop, component) row per distribution cell.
func runSpans(path string, rawFilters []string, csvPath string) error {
	if len(rawFilters) > 0 {
		return fmt.Errorf("+filters are not supported with -spans (the stream is already per-app)")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	agg, err := ssparse.LoadSpans(f)
	if err != nil {
		return err
	}
	if err := agg.WriteTable(os.Stdout); err != nil {
		return err
	}
	if csvPath != "" {
		out, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := agg.WriteSpansCSV(out); err != nil {
			return err
		}
		fmt.Printf("wrote spans CSV to %s\n", csvPath)
	}
	return nil
}

// runTasks summarizes a task event journal (sssweep -journal): the run's
// state counts and timing aggregates on stdout and, with -csv, one timeline
// row per task.
func runTasks(path string, rawFilters []string, csvPath string) error {
	if len(rawFilters) > 0 {
		return fmt.Errorf("+filters are not supported with -tasks")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	log, err := ssparse.LoadTasks(f)
	if err != nil {
		return err
	}
	states := map[string]int{}
	var waitMS, blockedMS, runMS int64
	blocked := 0
	for _, tl := range log.Tasks {
		states[tl.State]++
		if tl.WaitMS > 0 {
			waitMS += tl.WaitMS
		}
		if tl.BlockedMS > 0 {
			blockedMS += tl.BlockedMS
			blocked++
		}
		if tl.RunMS > 0 {
			runMS += tl.RunMS
		}
	}
	fmt.Printf("tasks:      %d (%d succeeded, %d failed, %d skipped, %d canceled)\n",
		len(log.Tasks), states["succeeded"], states["failed"], states["skipped"], states["canceled"])
	fmt.Printf("span:       %d ms (start %s)\n", log.SpanMS(), log.Header.Start)
	fmt.Printf("durations:  run=%dms wait=%dms blocked=%dms (%d tasks blocked on resources)\n",
		runMS, waitMS, blockedMS, blocked)
	if csvPath != "" {
		out, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := log.WriteTasksCSV(out); err != nil {
			return err
		}
		fmt.Printf("wrote task CSV to %s\n", csvPath)
	}
	return nil
}

// runTelemetry extracts and filters telemetry snapshot records.
func runTelemetry(path string, rawFilters []string, csvPath string) error {
	var filters []ssparse.TelemetryFilter
	for _, raw := range rawFilters {
		f, err := ssparse.ParseTelemetryFilter(raw)
		if err != nil {
			return err
		}
		filters = append(filters, f)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := ssparse.LoadTelemetry(f, filters)
	if err != nil {
		return err
	}
	comps := map[string]bool{}
	metrics := map[string]bool{}
	var tMin, tMax uint64
	for i, r := range recs {
		comps[r.Comp] = true
		metrics[r.Metric] = true
		if i == 0 || r.T < tMin {
			tMin = r.T
		}
		if r.T > tMax {
			tMax = r.T
		}
	}
	fmt.Printf("records:    %d\n", len(recs))
	if len(recs) == 0 {
		return nil
	}
	fmt.Printf("components: %d  metrics: %d\n", len(comps), len(metrics))
	fmt.Printf("time range: %d-%d ticks\n", tMin, tMax)
	if csvPath != "" {
		out, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := ssparse.WriteTelemetryCSV(out, recs); err != nil {
			return err
		}
		fmt.Printf("wrote telemetry CSV to %s\n", csvPath)
	}
	return nil
}

package main

import (
	"os"
	"path/filepath"
	"testing"
)

// Golden tests for the -tasks task-journal mode, against a committed journal
// (testdata/tasks.jsonl): the five-task fixed-clock fixture graph from
// internal/taskrun — two sims contending for one cpu, a failing parse, a
// canceled plot and a condition-skipped task.

func TestGoldenTasksStdout(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{"-tasks", filepath.Join("testdata", "tasks.jsonl")})
	})
	checkGolden(t, filepath.Join("testdata", "golden_tasks_stdout.txt"), out)
}

func TestGoldenTasksCSV(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "tasks.csv")
	captureStdout(t, func() error {
		return run([]string{"-tasks", filepath.Join("testdata", "tasks.jsonl"), "-csv", csv})
	})
	got, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join("testdata", "golden_tasks.csv"), got)
}

func TestTasksRejectsFilters(t *testing.T) {
	if err := run([]string{"-tasks", filepath.Join("testdata", "tasks.jsonl"), "+app=0"}); err == nil {
		t.Fatal("-tasks with +filters did not error")
	}
}

func TestTasksModesExclusive(t *testing.T) {
	for _, other := range []string{"-telemetry", "-spans"} {
		if err := run([]string{"-tasks", other, filepath.Join("testdata", "tasks.jsonl")}); err == nil {
			t.Fatalf("-tasks with %s did not error", other)
		}
	}
}

func TestTasksRejectsWrongStream(t *testing.T) {
	// A telemetry snapshot stream is not a task journal: the schema check
	// must reject it rather than misparse.
	if err := run([]string{"-tasks", filepath.Join("testdata", "telemetry.jsonl")}); err == nil {
		t.Fatal("telemetry stream accepted as task journal")
	}
}

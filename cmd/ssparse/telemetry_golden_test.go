package main

import (
	"os"
	"path/filepath"
	"testing"
)

// Golden tests for the -telemetry extraction mode, against a committed
// snapshot stream covering counters with scaled rates, a gauge, a histogram
// and a baseline bin with idle components.

func TestGoldenTelemetryStdout(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{"-telemetry", filepath.Join("testdata", "telemetry.jsonl")})
	})
	checkGolden(t, filepath.Join("testdata", "golden_telemetry_stdout.txt"), out)
}

func TestGoldenTelemetryFiltered(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{"-telemetry", filepath.Join("testdata", "telemetry.jsonl"),
			"+comp=ch_", "+metric=chan_flits", "+t=1000-1500"})
	})
	checkGolden(t, filepath.Join("testdata", "golden_telemetry_filtered.txt"), out)
}

func TestGoldenTelemetryCSV(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "tel.csv")
	captureStdout(t, func() error {
		return run([]string{"-telemetry", filepath.Join("testdata", "telemetry.jsonl"),
			"+comp=app0", "-csv", csv})
	})
	got, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join("testdata", "golden_telemetry.csv"), got)
}

// TestGoldenEngineCSV pins engine-metric extraction: the generic -telemetry
// mode with the prefix filter +comp=shard pulls the per-shard scheduler
// metrics out of a parallel run's snapshot stream into CSV, one row per
// (bin, shard, metric), leaving the simulation metrics behind.
func TestGoldenEngineCSV(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "engine.csv")
	captureStdout(t, func() error {
		return run([]string{"-telemetry", filepath.Join("testdata", "engine.jsonl"),
			"+comp=shard", "-csv", csv})
	})
	got, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join("testdata", "golden_engine.csv"), got)
}

// TestGoldenEngineShardFiltered narrows the extraction to one shard's
// drained-events counter — the +comp/+metric composition the OBSERVABILITY
// doc recommends for load-balance investigations.
func TestGoldenEngineShardFiltered(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{"-telemetry", filepath.Join("testdata", "engine.jsonl"),
			"+comp=shard1", "+metric=engine_window_events"})
	})
	checkGolden(t, filepath.Join("testdata", "golden_engine_filtered.txt"), out)
}

func TestTelemetryBadFilter(t *testing.T) {
	err := run([]string{"-telemetry", filepath.Join("testdata", "telemetry.jsonl"), "+bogus=1"})
	if err == nil {
		t.Fatal("unknown telemetry filter field did not error")
	}
}

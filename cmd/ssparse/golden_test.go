package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// End-to-end golden tests: the committed sample log goes through the real
// run() entry point and the complete stdout and CSV output must match the
// committed goldens byte for byte. Regenerate after intentional output
// changes with:
//
//	SUPERSIM_UPDATE_GOLDEN=1 go test ./cmd/ssparse

const updateEnv = "SUPERSIM_UPDATE_GOLDEN"

// captureStdout runs fn with os.Stdout redirected and returns what it wrote.
func captureStdout(t *testing.T, fn func() error) []byte {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	done := make(chan []byte)
	go func() {
		buf, _ := io.ReadAll(r)
		done <- buf
	}()
	ferr := fn()
	os.Stdout = orig
	w.Close()
	out := <-done
	r.Close()
	if ferr != nil {
		t.Fatal(ferr)
	}
	return out
}

// checkGolden compares got against the golden file, or rewrites it when the
// update env var is set.
func checkGolden(t *testing.T, goldenPath string, got []byte) {
	t.Helper()
	if os.Getenv(updateEnv) != "" {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with %s=1 to create): %v", updateEnv, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output drifted from %s\ngot:\n%s\nwant:\n%s\nRegenerate with %s=1 if intentional.",
			goldenPath, got, want, updateEnv)
	}
}

func TestGoldenStdout(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{filepath.Join("testdata", "sample.log")})
	})
	checkGolden(t, filepath.Join("testdata", "golden_stdout.txt"), out)
}

func TestGoldenStdoutFiltered(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{filepath.Join("testdata", "sample.log"), "+app=1", "+nonmin=1"})
	})
	checkGolden(t, filepath.Join("testdata", "golden_stdout_filtered.txt"), out)
}

func TestGoldenCSV(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "out.csv")
	captureStdout(t, func() error {
		return run([]string{filepath.Join("testdata", "sample.log"), "-csv", csv})
	})
	got, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join("testdata", "golden.csv"), got)
}

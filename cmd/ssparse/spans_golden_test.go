package main

import (
	"os"
	"path/filepath"
	"testing"
)

// Golden tests for the -spans latency-decomposition mode, against a committed
// stream from the OBSERVABILITY.md worked example: a congested tornado on a
// 4x4 torus (testdata/spans_example.json), regenerated with
//
//	go run ./cmd/supersim -quiet -spans cmd/ssparse/testdata/spans.jsonl \
//	    -spans-sample 0.25 cmd/ssparse/testdata/spans_example.json

func TestGoldenSpansStdout(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{"-spans", filepath.Join("testdata", "spans.jsonl")})
	})
	checkGolden(t, filepath.Join("testdata", "golden_spans_stdout.txt"), out)
}

func TestGoldenSpansCSV(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "spans.csv")
	captureStdout(t, func() error {
		return run([]string{"-spans", filepath.Join("testdata", "spans.jsonl"), "-csv", csv})
	})
	got, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join("testdata", "golden_spans.csv"), got)
}

func TestSpansRejectsFilters(t *testing.T) {
	if err := run([]string{"-spans", filepath.Join("testdata", "spans.jsonl"), "+app=0"}); err == nil {
		t.Fatal("-spans with +filters did not error")
	}
}

func TestSpansTelemetryExclusive(t *testing.T) {
	if err := run([]string{"-spans", "-telemetry", filepath.Join("testdata", "spans.jsonl")}); err == nil {
		t.Fatal("-spans with -telemetry did not error")
	}
}

func TestSpansRejectsWrongStream(t *testing.T) {
	// A telemetry snapshot stream is not a spans stream: the header check
	// must reject it rather than misparse.
	if err := run([]string{"-spans", filepath.Join("testdata", "telemetry.jsonl")}); err == nil {
		t.Fatal("telemetry stream accepted as spans stream")
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeLog(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "run.log")
	log := "M 0 0 1 2 100 250 1 3 0\nM 1 0 2 3 600 900 4 5 1\nM 2 1 3 1 700 1500 2 2 0\n"
	if err := os.WriteFile(p, []byte(log), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunWithFilters(t *testing.T) {
	p := writeLog(t)
	if err := run([]string{p, "+app=0"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCSVOutput(t *testing.T) {
	p := writeLog(t)
	csv := filepath.Join(t.TempDir(), "out.csv")
	if err := run([]string{p, "-csv", csv}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "latency") {
		t.Fatal("csv missing header")
	}
}

func TestRunErrors(t *testing.T) {
	p := writeLog(t)
	for _, args := range [][]string{
		{},                      // no file
		{p, "+bogus=1"},         // bad filter
		{p, "-csv"},             // missing csv arg
		{p, "extra"},            // stray arg
		{"/does/not/exist.log"}, // missing file
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestRunEmptyAfterFilters(t *testing.T) {
	p := writeLog(t)
	if err := run([]string{p, "+app=9"}); err != nil {
		t.Fatal(err) // zero matches is not an error
	}
}

package main

import (
	"os"
	"path/filepath"
	"testing"
)

// Golden tests for the breakdown plot kind, against the committed spans
// stream from the OBSERVABILITY.md worked example (a congested tornado on a
// 4x4 torus; see cmd/ssparse/testdata/spans_example.json for the settings
// and the regeneration command).

func TestGoldenBreakdown(t *testing.T) {
	out := captureStdout(t, func() error {
		return run("breakdown", "", 0, 70, 18, []string{filepath.Join("testdata", "spans.jsonl")})
	})
	checkGolden(t, filepath.Join("testdata", "golden_breakdown.txt"), out)
}

func TestGoldenBreakdownCSV(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "breakdown.csv")
	captureStdout(t, func() error {
		return run("breakdown", csv, 0, 70, 18, []string{filepath.Join("testdata", "spans.jsonl")})
	})
	got, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join("testdata", "golden_breakdown.csv"), got)
}

func TestBreakdownRejectsFilters(t *testing.T) {
	err := run("breakdown", "", 0, 70, 18, []string{filepath.Join("testdata", "spans.jsonl"), "+app=0"})
	if err == nil {
		t.Fatal("breakdown with +filters did not error")
	}
}

func TestBreakdownRejectsWrongStream(t *testing.T) {
	err := run("breakdown", "", 0, 70, 18, []string{filepath.Join("testdata", "telemetry.jsonl")})
	if err == nil {
		t.Fatal("telemetry stream accepted as spans stream")
	}
}

// Command ssplot renders plots from supersim transaction logs: percentile
// distributions, CDFs, PDFs and transient time series, as ASCII plots and
// optional CSV series.
//
// Usage:
//
//	ssplot -plot percentile results.log [+filter ...] [-csv out.csv]
//
// The chanutil and rates plot kinds read a telemetry snapshot stream (JSONL,
// written by supersim -telemetry-file) instead of a transaction log:
// chanutil plots mean and peak channel utilization per snapshot bin, rates
// plots each application's offered vs. delivered rate (flits per cycle per
// terminal), and shardutil plots each engine shard's drained events per bin
// (a load-balance timeline for parallel runs, from the engine_window_events
// self-metrics). Telemetry filters (+comp=, +metric=, +t=lo-hi, ...) apply.
//
// The breakdown plot kind reads a latency-decomposition stream (spans JSONL,
// written by supersim -spans) and renders each application's per-hop pipeline
// component breakdown as stacked ASCII bars on a shared scale; -csv emits the
// full (app, hop, component) aggregation.
//
// The taskgantt plot kind reads a task event journal (JSONL, written by
// sssweep -journal) and renders each task's lifecycle as a Gantt bar — '.'
// while the task waited ready, '#' while it ran — followed by one utilization
// timeline per resource pool (0-9, fraction of capacity busy); -csv emits the
// per-task timeline rows.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"supersim/internal/ssparse"
	"supersim/internal/ssplot"
	"supersim/internal/telemetry"
)

func main() {
	plot := flag.String("plot", "percentile", "percentile | cdf | pdf | timeseries | chanutil | rates | shardutil | breakdown | taskgantt")
	csvPath := flag.String("csv", "", "also write the series as CSV")
	binWidth := flag.Uint64("bin", 0, "time series bin width in ticks (default: span/40)")
	width := flag.Int("width", 70, "ASCII plot width")
	height := flag.Int("height", 18, "ASCII plot height")
	flag.Parse()
	if err := run(*plot, *csvPath, *binWidth, *width, *height, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "ssplot:", err)
		os.Exit(1)
	}
}

func run(plot, csvPath string, binWidth uint64, width, height int, args []string) error {
	var path string
	var rawFilters []string
	for _, arg := range args {
		if strings.HasPrefix(arg, "+") {
			rawFilters = append(rawFilters, arg)
			continue
		}
		if path != "" {
			return fmt.Errorf("unexpected argument %q", arg)
		}
		path = arg
	}
	if path == "" {
		return fmt.Errorf("usage: ssplot -plot <kind> <log file> [+filter ...]")
	}
	if plot == "chanutil" || plot == "rates" || plot == "shardutil" {
		return runTelemetry(plot, path, rawFilters, csvPath, width, height)
	}
	if plot == "breakdown" {
		return runBreakdown(path, rawFilters, csvPath, width)
	}
	if plot == "taskgantt" {
		return runTaskGantt(path, rawFilters, csvPath, width)
	}
	var filters []ssparse.Filter
	for _, raw := range rawFilters {
		f, err := ssparse.ParseFilter(raw)
		if err != nil {
			return err
		}
		filters = append(filters, f)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	samples, err := ssparse.Parse(f)
	if err != nil {
		return err
	}
	rec := ssparse.Apply(samples, filters)
	if rec.Count() == 0 {
		return fmt.Errorf("no samples after filters")
	}

	var series ssplot.Series
	var title, xl, yl string
	switch plot {
	case "percentile":
		pts := []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 95, 99, 99.9, 99.99, 100}
		series = ssplot.Series{Label: "latency", XY: rec.PercentileCurve(pts)}
		title, xl, yl = "percentile distribution", "percentile", "latency (ticks)"
	case "cdf":
		series = ssplot.Series{Label: "cdf", XY: rec.CDF()}
		title, xl, yl = "latency CDF", "latency (ticks)", "cumulative fraction"
	case "pdf":
		series = ssplot.Series{Label: "pdf", XY: rec.PDF(40)}
		title, xl, yl = "latency PDF", "latency (ticks)", "fraction"
	case "timeseries":
		bw := binWidth
		if bw == 0 {
			span := rec.Samples()[len(rec.Samples())-1].End - rec.Samples()[0].End
			bw = uint64(span/40) + 1
		}
		series = ssplot.Series{Label: "mean latency", XY: rec.TimeSeries(bw)}
		title, xl, yl = "mean latency over time", "time (ticks)", "latency (ticks)"
	default:
		return fmt.Errorf("unknown plot kind %q", plot)
	}
	ssplot.Plot(os.Stdout, title, xl, yl, []ssplot.Series{series}, width, height)
	if csvPath != "" {
		out, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := ssplot.WriteCSV(out, []ssplot.Series{series}); err != nil {
			return err
		}
	}
	return nil
}

// breakdownSeg is one component segment of a stacked breakdown bar.
type breakdownSeg struct {
	ch byte
	v  float64
}

// breakdownBar renders segments as a stacked ASCII bar, one letter per
// component, with cumulative rounding so the bar length tracks the row total.
func breakdownBar(segs []breakdownSeg, scale float64) string {
	var b strings.Builder
	acc, drawn := 0.0, 0
	for _, s := range segs {
		acc += s.v
		target := int(acc/scale + 0.5)
		for drawn < target {
			b.WriteByte(s.ch)
			drawn++
		}
	}
	return b.String()
}

// runBreakdown renders a spans JSONL stream (supersim -spans) as a per-hop
// latency decomposition: mean ticks per pipeline component at each hop,
// numerically and as stacked bars on a shared scale. With -csv the full
// (app, hop, component) aggregation is written via ssparse.
func runBreakdown(path string, rawFilters []string, csvPath string, width int) error {
	if len(rawFilters) > 0 {
		return fmt.Errorf("+filters are not supported with -plot breakdown")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	agg, err := ssparse.LoadSpans(f)
	if err != nil {
		return err
	}
	if agg.Records == 0 {
		return fmt.Errorf("no span records in %s", path)
	}

	// Shared scale: the widest row (by mean ticks) fills the plot width.
	maxRow := 0.0
	for _, app := range agg.Apps {
		maxRow = max(maxRow, app.Queue.Mean(), app.Eject.Mean())
		for _, h := range app.Hops {
			maxRow = max(maxRow, h.VCAlloc.Mean()+h.SWAlloc.Mean()+h.Xbar.Mean()+h.Output.Mean()+h.Wire.Mean())
		}
	}
	if width < 10 {
		width = 10
	}
	scale := maxRow / float64(width)
	if scale <= 0 {
		scale = 1
	}

	fmt.Printf("latency breakdown: %d spans at sample fraction %g (1 char = %.2f ticks)\n",
		agg.Records, agg.Header.Sample, scale)
	fmt.Println("legend: Q queue, V vc_alloc, S sw_alloc, X xbar, O output, W wire, E eject")
	ids := make([]int, 0, len(agg.Apps))
	for id := range agg.Apps {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		app := agg.Apps[id]
		fmt.Printf("app %d: e2e mean=%.1f p50=%d p99=%d (%d spans)\n",
			id, app.E2E.Mean(), app.E2E.Percentile(50), app.E2E.Percentile(99), app.E2E.Count())
		row := func(label string, segs ...breakdownSeg) {
			total := 0.0
			for _, s := range segs {
				total += s.v
			}
			fmt.Printf("  %5s %7.1f  %s\n", label, total, breakdownBar(segs, scale))
		}
		row("queue", breakdownSeg{'Q', app.Queue.Mean()})
		for i, h := range app.Hops {
			label := "src"
			if i > 0 {
				label = fmt.Sprintf("hop %d", i)
			}
			row(label,
				breakdownSeg{'V', h.VCAlloc.Mean()}, breakdownSeg{'S', h.SWAlloc.Mean()},
				breakdownSeg{'X', h.Xbar.Mean()}, breakdownSeg{'O', h.Output.Mean()},
				breakdownSeg{'W', h.Wire.Mean()})
		}
		row("eject", breakdownSeg{'E', app.Eject.Mean()})
	}
	if csvPath != "" {
		out, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := agg.WriteSpansCSV(out); err != nil {
			return err
		}
	}
	return nil
}

// overlapMS returns the length of the intersection of [a0,a1) and [b0,b1).
func overlapMS(a0, a1, b0, b1 float64) float64 {
	lo, hi := max(a0, b0), min(a1, b1)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// runTaskGantt renders a task event journal (sssweep -journal) as an ASCII
// Gantt chart: one bar per task in queue order ('.' ready-and-waiting, '#'
// running), then one utilization timeline per resource pool showing the
// fraction of its capacity busy in each column (blank idle, 1-9 in tenths).
// With -csv the per-task timeline rows are written via ssparse.
func runTaskGantt(path string, rawFilters []string, csvPath string, width int) error {
	if len(rawFilters) > 0 {
		return fmt.Errorf("+filters are not supported with -plot taskgantt")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	log, err := ssparse.LoadTasks(f)
	if err != nil {
		return err
	}
	if len(log.Tasks) == 0 {
		return fmt.Errorf("no tasks in %s", path)
	}
	span := log.SpanMS()
	if span <= 0 {
		span = 1
	}
	if width < 10 {
		width = 10
	}
	scale := float64(span) / float64(width)

	nameW := len("task")
	for _, tl := range log.Tasks {
		nameW = max(nameW, len(tl.Task))
	}
	fmt.Printf("task gantt: %d tasks over %d ms (1 char = %.2f ms)\n", len(log.Tasks), span, scale)
	fmt.Println("legend: . ready-and-waiting, # running; resource rows: fraction of capacity busy in tenths")
	for _, tl := range log.Tasks {
		row := make([]byte, width)
		for col := range row {
			t0, t1 := float64(col)*scale, float64(col+1)*scale
			switch {
			case tl.StartedMS >= 0 && tl.FinishedMS >= 0 &&
				overlapMS(t0, t1, float64(tl.StartedMS), float64(tl.FinishedMS)) > 0:
				row[col] = '#'
			case tl.ReadyMS >= 0 && tl.StartedMS >= 0 &&
				overlapMS(t0, t1, float64(tl.ReadyMS), float64(tl.StartedMS)) > 0:
				row[col] = '.'
			default:
				row[col] = ' '
			}
		}
		note := tl.State
		if tl.RunMS >= 0 {
			note = fmt.Sprintf("%s run=%dms", note, tl.RunMS)
		}
		if tl.BlockedMS > 0 {
			note = fmt.Sprintf("%s blocked=%dms on %s", note, tl.BlockedMS, tl.Resource)
		}
		if tl.Err != "" {
			note = fmt.Sprintf("%s (%s)", note, tl.Err)
		}
		fmt.Printf("%-*s |%s| %s\n", nameW, tl.Task, row, note)
	}

	resources := make([]string, 0, len(log.Header.Capacity))
	for res := range log.Header.Capacity {
		resources = append(resources, res)
	}
	sort.Strings(resources)
	for _, res := range resources {
		capacity := log.Header.Capacity[res]
		if capacity <= 0 {
			continue
		}
		row := make([]byte, width)
		for col := range row {
			t0, t1 := float64(col)*scale, float64(col+1)*scale
			busy := 0.0
			for _, tl := range log.Tasks {
				if tl.Res[res] <= 0 || tl.StartedMS < 0 || tl.FinishedMS < 0 {
					continue
				}
				busy += overlapMS(t0, t1, float64(tl.StartedMS), float64(tl.FinishedMS)) * float64(tl.Res[res])
			}
			util := busy / (scale * float64(capacity))
			tenths := int(util*9 + 0.5)
			if tenths <= 0 {
				row[col] = ' '
			} else {
				if tenths > 9 {
					tenths = 9
				}
				row[col] = byte('0' + tenths)
			}
		}
		fmt.Printf("%-*s |%s| capacity %d\n", nameW, res, row, capacity)
	}

	if csvPath != "" {
		out, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := log.WriteTasksCSV(out); err != nil {
			return err
		}
	}
	return nil
}

// runTelemetry renders the telemetry-backed plot kinds from a snapshot
// JSONL stream.
func runTelemetry(plot, path string, rawFilters []string, csvPath string, width, height int) error {
	var filters []ssparse.TelemetryFilter
	for _, raw := range rawFilters {
		f, err := ssparse.ParseTelemetryFilter(raw)
		if err != nil {
			return err
		}
		filters = append(filters, f)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := ssparse.LoadTelemetry(f, filters)
	if err != nil {
		return err
	}
	var series []ssplot.Series
	var title, xl, yl string
	switch plot {
	case "chanutil":
		series = chanUtilSeries(recs)
		title, xl, yl = "channel utilization", "time (ticks)", "utilization"
	case "rates":
		series = rateSeries(recs)
		title, xl, yl = "offered vs delivered rate", "time (ticks)", "flits/cycle/terminal"
	case "shardutil":
		series = shardUtilSeries(recs)
		title, xl, yl = "per-shard drained events", "time (ticks)", "events/bin"
	}
	if len(series) == 0 {
		return fmt.Errorf("no matching telemetry records in %s", path)
	}
	ssplot.Plot(os.Stdout, title, xl, yl, series, width, height)
	if csvPath != "" {
		out, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := ssplot.WriteCSV(out, series); err != nil {
			return err
		}
	}
	return nil
}

// chanUtilSeries reduces chan_flits records to mean and peak utilization per
// snapshot bin. The stream's first bin is a baseline listing every channel,
// so the mean's denominator is the full channel population — bins that omit
// an idle channel contribute its zero correctly.
func chanUtilSeries(recs []telemetry.Record) []ssplot.Series {
	channels := map[string]bool{}
	binSum := map[uint64]float64{}
	binPeak := map[uint64]float64{}
	for _, r := range recs {
		if r.Metric != "chan_flits" {
			continue
		}
		channels[r.Comp] = true
		binSum[r.T] += r.U
		if r.U > binPeak[r.T] {
			binPeak[r.T] = r.U
		}
	}
	if len(channels) == 0 {
		return nil
	}
	bins := sortedBins(binSum)
	mean := ssplot.Series{Label: "mean"}
	peak := ssplot.Series{Label: "peak"}
	for _, t := range bins {
		mean.XY = append(mean.XY, [2]float64{float64(t), binSum[t] / float64(len(channels))})
		peak.XY = append(peak.XY, [2]float64{float64(t), binPeak[t]})
	}
	return []ssplot.Series{mean, peak}
}

// rateSeries builds one offered and one delivered series per application
// from the workload's scaled counters, filling bins an app was silent in
// with zero so the curves stay aligned.
func rateSeries(recs []telemetry.Record) []ssplot.Series {
	type key struct{ comp, metric string }
	vals := map[key]map[uint64]float64{}
	binSet := map[uint64]float64{}
	for _, r := range recs {
		if r.Metric != "offered_flits" && r.Metric != "delivered_flits" {
			continue
		}
		k := key{r.Comp, r.Metric}
		if vals[k] == nil {
			vals[k] = map[uint64]float64{}
		}
		vals[k][r.T] = r.U
		binSet[r.T] = 0
	}
	if len(vals) == 0 {
		return nil
	}
	bins := sortedBins(binSet)
	keys := make([]key, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].comp != keys[j].comp {
			return keys[i].comp < keys[j].comp
		}
		return keys[i].metric < keys[j].metric
	})
	var out []ssplot.Series
	for _, k := range keys {
		s := ssplot.Series{Label: k.comp + " " + strings.TrimSuffix(k.metric, "_flits")}
		for _, t := range bins {
			s.XY = append(s.XY, [2]float64{float64(t), vals[k][t]})
		}
		out = append(out, s)
	}
	return out
}

// shardUtilSeries builds one series per engine shard from the
// engine_window_events counter deltas: how many events each shard committed
// per snapshot bin. On a well-balanced partition the lines track each other;
// a shard pinned at zero while others climb is the visual signature of a
// lopsided partition. Bins a shard was silent in are zero-filled so the
// timelines stay aligned.
func shardUtilSeries(recs []telemetry.Record) []ssplot.Series {
	vals := map[string]map[uint64]float64{}
	binSet := map[uint64]float64{}
	for _, r := range recs {
		if r.Metric != "engine_window_events" {
			continue
		}
		if vals[r.Comp] == nil {
			vals[r.Comp] = map[uint64]float64{}
		}
		vals[r.Comp][r.T] = r.D
		binSet[r.T] = 0
	}
	if len(vals) == 0 {
		return nil
	}
	bins := sortedBins(binSet)
	comps := make([]string, 0, len(vals))
	for c := range vals {
		comps = append(comps, c)
	}
	sort.Strings(comps)
	var out []ssplot.Series
	for _, c := range comps {
		s := ssplot.Series{Label: c}
		for _, t := range bins {
			s.XY = append(s.XY, [2]float64{float64(t), vals[c][t]})
		}
		out = append(out, s)
	}
	return out
}

func sortedBins(m map[uint64]float64) []uint64 {
	bins := make([]uint64, 0, len(m))
	for t := range m {
		bins = append(bins, t)
	}
	sort.Slice(bins, func(i, j int) bool { return bins[i] < bins[j] })
	return bins
}

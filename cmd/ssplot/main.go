// Command ssplot renders plots from supersim transaction logs: percentile
// distributions, CDFs, PDFs and transient time series, as ASCII plots and
// optional CSV series.
//
// Usage:
//
//	ssplot -plot percentile results.log [+filter ...] [-csv out.csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"supersim/internal/ssparse"
	"supersim/internal/ssplot"
)

func main() {
	plot := flag.String("plot", "percentile", "percentile | cdf | pdf | timeseries")
	csvPath := flag.String("csv", "", "also write the series as CSV")
	binWidth := flag.Uint64("bin", 0, "time series bin width in ticks (default: span/40)")
	width := flag.Int("width", 70, "ASCII plot width")
	height := flag.Int("height", 18, "ASCII plot height")
	flag.Parse()
	if err := run(*plot, *csvPath, *binWidth, *width, *height, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "ssplot:", err)
		os.Exit(1)
	}
}

func run(plot, csvPath string, binWidth uint64, width, height int, args []string) error {
	var path string
	var filters []ssparse.Filter
	for _, arg := range args {
		if strings.HasPrefix(arg, "+") {
			f, err := ssparse.ParseFilter(arg)
			if err != nil {
				return err
			}
			filters = append(filters, f)
			continue
		}
		if path != "" {
			return fmt.Errorf("unexpected argument %q", arg)
		}
		path = arg
	}
	if path == "" {
		return fmt.Errorf("usage: ssplot -plot <kind> <log file> [+filter ...]")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	samples, err := ssparse.Parse(f)
	if err != nil {
		return err
	}
	rec := ssparse.Apply(samples, filters)
	if rec.Count() == 0 {
		return fmt.Errorf("no samples after filters")
	}

	var series ssplot.Series
	var title, xl, yl string
	switch plot {
	case "percentile":
		pts := []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 95, 99, 99.9, 99.99, 100}
		series = ssplot.Series{Label: "latency", XY: rec.PercentileCurve(pts)}
		title, xl, yl = "percentile distribution", "percentile", "latency (ticks)"
	case "cdf":
		series = ssplot.Series{Label: "cdf", XY: rec.CDF()}
		title, xl, yl = "latency CDF", "latency (ticks)", "cumulative fraction"
	case "pdf":
		series = ssplot.Series{Label: "pdf", XY: rec.PDF(40)}
		title, xl, yl = "latency PDF", "latency (ticks)", "fraction"
	case "timeseries":
		bw := binWidth
		if bw == 0 {
			span := rec.Samples()[len(rec.Samples())-1].End - rec.Samples()[0].End
			bw = uint64(span/40) + 1
		}
		series = ssplot.Series{Label: "mean latency", XY: rec.TimeSeries(bw)}
		title, xl, yl = "mean latency over time", "time (ticks)", "latency (ticks)"
	default:
		return fmt.Errorf("unknown plot kind %q", plot)
	}
	ssplot.Plot(os.Stdout, title, xl, yl, []ssplot.Series{series}, width, height)
	if csvPath != "" {
		out, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := ssplot.WriteCSV(out, []ssplot.Series{series}); err != nil {
			return err
		}
	}
	return nil
}

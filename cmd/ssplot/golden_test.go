package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// End-to-end golden tests: the committed sample log runs through the real
// run() entry point for every plot kind at a fixed terminal size, and the
// rendered output must match the committed goldens byte for byte. Regenerate
// after intentional output changes with:
//
//	SUPERSIM_UPDATE_GOLDEN=1 go test ./cmd/ssplot

const updateEnv = "SUPERSIM_UPDATE_GOLDEN"

func captureStdout(t *testing.T, fn func() error) []byte {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	done := make(chan []byte)
	go func() {
		buf, _ := io.ReadAll(r)
		done <- buf
	}()
	ferr := fn()
	os.Stdout = orig
	w.Close()
	out := <-done
	r.Close()
	if ferr != nil {
		t.Fatal(ferr)
	}
	return out
}

func checkGolden(t *testing.T, goldenPath string, got []byte) {
	t.Helper()
	if os.Getenv(updateEnv) != "" {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with %s=1 to create): %v", updateEnv, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output drifted from %s\ngot:\n%s\nwant:\n%s\nRegenerate with %s=1 if intentional.",
			goldenPath, got, want, updateEnv)
	}
}

func TestGoldenPlots(t *testing.T) {
	log := filepath.Join("testdata", "sample.log")
	for _, kind := range []string{"percentile", "cdf", "pdf", "timeseries"} {
		t.Run(kind, func(t *testing.T) {
			out := captureStdout(t, func() error {
				return run(kind, "", 100, 60, 16, []string{log})
			})
			checkGolden(t, filepath.Join("testdata", "golden_"+kind+".txt"), out)
		})
	}
}

func TestGoldenPlotCSV(t *testing.T) {
	log := filepath.Join("testdata", "sample.log")
	csv := filepath.Join(t.TempDir(), "o.csv")
	captureStdout(t, func() error {
		return run("cdf", csv, 100, 60, 16, []string{log})
	})
	got, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join("testdata", "golden_cdf.csv"), got)
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeLog(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "run.log")
	var b strings.Builder
	for i := 0; i < 50; i++ {
		end := 200 + i*7
		b.WriteString("M ")
		b.WriteString(strings.Join([]string{
			itoa(i), "0", "1", "2", "100", itoa(end), "1", "3", "0"}, " "))
		b.WriteString("\n")
	}
	if err := os.WriteFile(p, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var d []byte
	for v > 0 {
		d = append([]byte{byte('0' + v%10)}, d...)
		v /= 10
	}
	return string(d)
}

func TestRunAllPlotKinds(t *testing.T) {
	p := writeLog(t)
	for _, kind := range []string{"percentile", "cdf", "pdf", "timeseries"} {
		if err := run(kind, "", 0, 40, 10, []string{p}); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
}

func TestRunWithCSVAndFilter(t *testing.T) {
	p := writeLog(t)
	csv := filepath.Join(t.TempDir(), "o.csv")
	if err := run("cdf", csv, 0, 40, 10, []string{p, "+send=100"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty csv")
	}
}

func TestRunErrors(t *testing.T) {
	p := writeLog(t)
	cases := []struct {
		kind string
		args []string
	}{
		{"percentile", nil},                // no file
		{"bogus", []string{p}},             // unknown kind
		{"cdf", []string{p, "+bad"}},       // bad filter
		{"cdf", []string{p, p}},            // two files
		{"cdf", []string{p, "+app=9"}},     // empty after filters
		{"cdf", []string{"/no/such/file"}}, // missing file
	}
	for _, c := range cases {
		if err := run(c.kind, "", 0, 40, 10, c.args); err == nil {
			t.Errorf("run(%s, %v) should fail", c.kind, c.args)
		}
	}
}

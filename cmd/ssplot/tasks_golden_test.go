package main

import (
	"os"
	"path/filepath"
	"testing"
)

// Golden tests for the taskgantt plot kind, against the committed task
// journal (testdata/tasks.jsonl): the five-task fixed-clock fixture graph
// from internal/taskrun.

func TestGoldenTaskGantt(t *testing.T) {
	out := captureStdout(t, func() error {
		return run("taskgantt", "", 0, 70, 18, []string{filepath.Join("testdata", "tasks.jsonl")})
	})
	checkGolden(t, filepath.Join("testdata", "golden_taskgantt.txt"), out)
}

func TestGoldenTaskGanttCSV(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "tasks.csv")
	captureStdout(t, func() error {
		return run("taskgantt", csv, 0, 70, 18, []string{filepath.Join("testdata", "tasks.jsonl")})
	})
	got, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join("testdata", "golden_taskgantt.csv"), got)
}

func TestTaskGanttRejectsFilters(t *testing.T) {
	err := run("taskgantt", "", 0, 70, 18, []string{filepath.Join("testdata", "tasks.jsonl"), "+app=0"})
	if err == nil {
		t.Fatal("taskgantt with +filters did not error")
	}
}

func TestTaskGanttRejectsWrongStream(t *testing.T) {
	err := run("taskgantt", "", 0, 70, 18, []string{filepath.Join("testdata", "telemetry.jsonl")})
	if err == nil {
		t.Fatal("telemetry stream accepted as task journal")
	}
}

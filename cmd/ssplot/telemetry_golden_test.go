package main

import (
	"os"
	"path/filepath"
	"testing"
)

// Golden tests for the telemetry-backed plot kinds, against a committed
// snapshot stream: chanutil must average over the full channel population
// from the baseline bin (idle channels included in the denominator), rates
// must zero-fill bins an application was silent in.

func TestGoldenTelemetryPlots(t *testing.T) {
	stream := filepath.Join("testdata", "telemetry.jsonl")
	for _, kind := range []string{"chanutil", "rates"} {
		t.Run(kind, func(t *testing.T) {
			out := captureStdout(t, func() error {
				return run(kind, "", 0, 60, 16, []string{stream})
			})
			checkGolden(t, filepath.Join("testdata", "golden_"+kind+".txt"), out)
		})
	}
}

// TestGoldenShardUtil pins the shardutil plot against a committed parallel
// engine snapshot stream: one series per shard from the engine_window_events
// deltas, non-engine records ignored, bins aligned across shards.
func TestGoldenShardUtil(t *testing.T) {
	stream := filepath.Join("testdata", "engine.jsonl")
	out := captureStdout(t, func() error {
		return run("shardutil", "", 0, 60, 16, []string{stream})
	})
	checkGolden(t, filepath.Join("testdata", "golden_shardutil.txt"), out)
}

func TestGoldenShardUtilCSV(t *testing.T) {
	stream := filepath.Join("testdata", "engine.jsonl")
	csv := filepath.Join(t.TempDir(), "o.csv")
	captureStdout(t, func() error {
		return run("shardutil", csv, 0, 60, 16, []string{stream})
	})
	got, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join("testdata", "golden_shardutil.csv"), got)
}

// The shardutil reducer must come up empty — not crash, not plot noise — on
// a serial stream with no engine metrics.
func TestShardUtilNoEngineMetrics(t *testing.T) {
	stream := filepath.Join("testdata", "telemetry.jsonl")
	if err := run("shardutil", "", 0, 60, 16, []string{stream}); err == nil {
		t.Fatal("serial stream without engine metrics did not error")
	}
}

func TestGoldenTelemetryPlotCSV(t *testing.T) {
	stream := filepath.Join("testdata", "telemetry.jsonl")
	csv := filepath.Join(t.TempDir(), "o.csv")
	captureStdout(t, func() error {
		return run("rates", csv, 0, 60, 16, []string{stream})
	})
	got, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join("testdata", "golden_rates.csv"), got)
}

func TestTelemetryPlotNoMatches(t *testing.T) {
	stream := filepath.Join("testdata", "telemetry.jsonl")
	err := run("chanutil", "", 0, 60, 16, []string{stream, "+comp=nonexistent"})
	if err == nil {
		t.Fatal("empty record set did not error")
	}
}

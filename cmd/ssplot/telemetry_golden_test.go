package main

import (
	"os"
	"path/filepath"
	"testing"
)

// Golden tests for the telemetry-backed plot kinds, against a committed
// snapshot stream: chanutil must average over the full channel population
// from the baseline bin (idle channels included in the denominator), rates
// must zero-fill bins an application was silent in.

func TestGoldenTelemetryPlots(t *testing.T) {
	stream := filepath.Join("testdata", "telemetry.jsonl")
	for _, kind := range []string{"chanutil", "rates"} {
		t.Run(kind, func(t *testing.T) {
			out := captureStdout(t, func() error {
				return run(kind, "", 0, 60, 16, []string{stream})
			})
			checkGolden(t, filepath.Join("testdata", "golden_"+kind+".txt"), out)
		})
	}
}

func TestGoldenTelemetryPlotCSV(t *testing.T) {
	stream := filepath.Join("testdata", "telemetry.jsonl")
	csv := filepath.Join(t.TempDir(), "o.csv")
	captureStdout(t, func() error {
		return run("rates", csv, 0, 60, 16, []string{stream})
	})
	got, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join("testdata", "golden_rates.csv"), got)
}

func TestTelemetryPlotNoMatches(t *testing.T) {
	stream := filepath.Join("testdata", "telemetry.jsonl")
	err := run("chanutil", "", 0, 60, 16, []string{stream, "+comp=nonexistent"})
	if err == nil {
		t.Fatal("empty record set did not error")
	}
}

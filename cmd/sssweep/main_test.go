package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"supersim/internal/manifest"
	"supersim/internal/taskrun"
)

func TestParseVar(t *testing.T) {
	v, err := parseVar("Lat=CL=network.channel.latency=uint=1,2,4")
	if err != nil {
		t.Fatal(err)
	}
	if v.Name != "Lat" || v.Short != "CL" || len(v.Values) != 3 {
		t.Fatalf("variable %+v", v)
	}
	if v.Values[2] != uint64(4) {
		t.Fatalf("value %T %v", v.Values[2], v.Values[2])
	}
}

func TestParseVarTypes(t *testing.T) {
	cases := map[string]any{
		"N=S=p=int=-3":     int64(-3),
		"N=S=p=float=0.5":  0.5,
		"N=S=p=string=abc": "abc",
	}
	for decl, want := range cases {
		v, err := parseVar(decl)
		if err != nil {
			t.Fatalf("%s: %v", decl, err)
		}
		if v.Values[0] != want {
			t.Fatalf("%s: got %v (%T)", decl, v.Values[0], v.Values[0])
		}
	}
}

func TestParseVarErrors(t *testing.T) {
	for _, bad := range []string{
		"noequals",
		"N=S=p=uint=notanumber",
		"N=S=p=int=x",
		"N=S=p=float=x",
		"N=S=p=mystery=1",
		"N=S=p=uint", // missing values
	} {
		if _, err := parseVar(bad); err == nil {
			t.Errorf("parseVar(%q) should fail", bad)
		}
	}
}

func setOf(names ...string) map[string]bool {
	m := map[string]bool{}
	for _, n := range names {
		m[n] = true
	}
	return m
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		set     map[string]bool
		wantErr string // empty = valid
	}{
		{"no flags", setOf(), ""},
		{"html with x", setOf("html", "x"), ""},
		{"x alone", setOf("x"), "-x"},
		{"journal alone", setOf("journal"), ""},
		{"manifest-dir alone", setOf("manifest-dir"), ""},
		{"serve alone", setOf("serve"), ""},
		{"everything", setOf("html", "x", "journal", "manifest-dir", "serve", "cpus", "var"), ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateFlags(c.set)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error = %v, want mention of %s", err, c.wantErr)
			}
		})
	}
}

// TestRunWithFleetObservability drives the full sssweep run() path with a
// journal and a manifest directory: the journal must parse and cover every
// permutation, and each permutation must get a loadable manifest.
func TestRunWithFleetObservability(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "cfg.json")
	doc := `{
	  "simulation": {"seed": 7},
	  "network": {
	    "topology": "torus",
	    "dimensions": [2, 2],
	    "concentration": 1,
	    "channel": {"latency": 2, "period": 1},
	    "injection": {"latency": 1},
	    "router": {"architecture": "input_queued", "num_vcs": 2, "input_buffer_depth": 8}
	  },
	  "workload": {
	    "applications": [{
	      "type": "blast",
	      "injection_rate": 0.1,
	      "message_size": 2,
	      "max_packet_size": 2,
	      "warmup_duration": 100,
	      "sample_duration": 300,
	      "traffic": {"type": "uniform_random"}
	    }]
	  }
	}`
	if err := os.WriteFile(cfgPath, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	journalPath := filepath.Join(dir, "tasks.jsonl")
	manifestDir := filepath.Join(dir, "manifests")
	vars := []string{"Lat=CL=network.channel.latency=uint=2,4"}
	err := run(cfgPath, vars, runOpts{
		cpus: 1, journalPath: journalPath, manifestDir: manifestDir,
	})
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	hdr, events, err := taskrun.ReadJournal(f)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Tasks != 2 {
		t.Fatalf("journal header %+v", hdr)
	}
	finished := 0
	for _, ev := range events {
		if ev.Ev == "finished" {
			finished++
		}
	}
	if finished != 2 {
		t.Fatalf("finished events %d, want 2", finished)
	}

	for _, id := range []string{"CL=2", "CL=4"} {
		m, err := manifest.LoadFile(filepath.Join(manifestDir, id+".manifest.json"))
		if err != nil {
			t.Fatal(err)
		}
		if m.Labels["point"] != id || m.Metrics["samples"] == 0 {
			t.Fatalf("%s manifest %+v", id, m)
		}
	}
}

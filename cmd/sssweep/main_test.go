package main

import "testing"

func TestParseVar(t *testing.T) {
	v, err := parseVar("Lat=CL=network.channel.latency=uint=1,2,4")
	if err != nil {
		t.Fatal(err)
	}
	if v.Name != "Lat" || v.Short != "CL" || len(v.Values) != 3 {
		t.Fatalf("variable %+v", v)
	}
	if v.Values[2] != uint64(4) {
		t.Fatalf("value %T %v", v.Values[2], v.Values[2])
	}
}

func TestParseVarTypes(t *testing.T) {
	cases := map[string]any{
		"N=S=p=int=-3":     int64(-3),
		"N=S=p=float=0.5":  0.5,
		"N=S=p=string=abc": "abc",
	}
	for decl, want := range cases {
		v, err := parseVar(decl)
		if err != nil {
			t.Fatalf("%s: %v", decl, err)
		}
		if v.Values[0] != want {
			t.Fatalf("%s: got %v (%T)", decl, v.Values[0], v.Values[0])
		}
	}
}

func TestParseVarErrors(t *testing.T) {
	for _, bad := range []string{
		"noequals",
		"N=S=p=uint=notanumber",
		"N=S=p=int=x",
		"N=S=p=float=x",
		"N=S=p=mystery=1",
		"N=S=p=uint", // missing values
	} {
		if _, err := parseVar(bad); err == nil {
			t.Errorf("parseVar(%q) should fail", bad)
		}
	}
}

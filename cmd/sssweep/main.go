// Command sssweep generates and executes a simulation sweep over one or more
// variables and prints a CSV of the results — the command line face of the
// sweep package.
//
// Each -var flag declares one sweep variable as
//
//	-var NAME=SHORT=settings.path=type=v1,v2,v3
//
// mirroring a command line override with multiple values. For example, a
// channel latency sweep over an existing config:
//
//	sssweep -cpus 4 myconfig.json \
//	    -var ChannelLatency=CL=network.channel.latency=uint=1,2,4,8,16,32
//
// Fleet observability (see OBSERVABILITY.md): -journal <f> writes a task
// event journal (JSONL) of every permutation's lifecycle for ssparse -tasks
// and ssplot -plot taskgantt, -manifest-dir <d> writes one provenance
// manifest per permutation, and -serve <host:port> serves the live sweep
// dashboard (/sweep progress JSON, /metrics Prometheus) while the campaign
// runs. As with supersim, a modifier flag set without the flag it modifies
// (-x without -html) is rejected up front.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"supersim/internal/config"
	"supersim/internal/sweep"
	"supersim/internal/taskrun"
)

type varFlags []string

func (v *varFlags) String() string     { return strings.Join(*v, "; ") }
func (v *varFlags) Set(s string) error { *v = append(*v, s); return nil }

func main() {
	var vars varFlags
	cpus := flag.Int("cpus", 1, "concurrent simulations")
	htmlPath := flag.String("html", "", "write an HTML report (web viewer) to this file")
	xVar := flag.String("x", "", "variable for the report's plot x axis")
	journalPath := flag.String("journal", "", "write a task event journal (JSONL) of the sweep to this file")
	manifestDir := flag.String("manifest-dir", "", "write one run provenance manifest per permutation into this directory")
	serveAddr := flag.String("serve", "", "serve the live sweep dashboard HTTP on this address (/sweep, /metrics)")
	flag.Var(&vars, "var", "sweep variable: NAME=SHORT=path=type=v1,v2,...")
	flag.Parse()
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if err := validateFlags(set); err != nil {
		fmt.Fprintln(os.Stderr, "sssweep:", err)
		os.Exit(2)
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sssweep [-cpus N] [-var ...] [-html report.html -x VAR] [-journal f] [-manifest-dir d] [-serve addr] <config.json>")
		os.Exit(2)
	}
	err := run(flag.Arg(0), vars, runOpts{
		cpus:        *cpus,
		htmlPath:    *htmlPath,
		xVar:        *xVar,
		journalPath: *journalPath,
		manifestDir: *manifestDir,
		serveAddr:   *serveAddr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sssweep:", err)
		os.Exit(1)
	}
}

// runOpts carries the command-line options into run.
type runOpts struct {
	cpus        int
	htmlPath    string
	xVar        string
	journalPath string
	manifestDir string
	serveAddr   string
}

// validateFlags rejects modifier flags set without the flag they modify —
// the same fail-fast contract as supersim's flag validation.
func validateFlags(set map[string]bool) error {
	if set["x"] && !set["html"] {
		return fmt.Errorf("-x has no effect without -html")
	}
	return nil
}

func run(cfgPath string, vars []string, o runOpts) error {
	base, err := config.LoadFile(cfgPath)
	if err != nil {
		return err
	}
	s := sweep.New(base, o.cpus)
	var names []string
	for _, decl := range vars {
		v, err := parseVar(decl)
		if err != nil {
			return err
		}
		names = append(names, v.Name)
		s.AddVariable(v)
	}
	var probes []taskrun.Probe
	var journal *taskrun.Journal
	if o.journalPath != "" {
		f, err := os.Create(o.journalPath)
		if err != nil {
			return err
		}
		defer f.Close()
		journal = taskrun.NewJournal(f, nil)
		probes = append(probes, journal)
	}
	if o.serveAddr != "" {
		mon := sweep.NewMonitor(nil)
		mon.Serve(o.serveAddr, func(err error) {
			fmt.Fprintln(os.Stderr, "sssweep: dashboard server:", err)
		})
		fmt.Fprintf(os.Stderr, "dashboard: serving http://%s/ (/sweep, /metrics)\n", o.serveAddr)
		probes = append(probes, mon)
	}
	s.SetProbe(taskrun.Probes(probes...))
	if o.manifestDir != "" {
		s.WriteManifests(o.manifestDir)
	}
	fmt.Fprintf(os.Stderr, "sweeping %d permutations\n", s.Permutations())
	points, err := s.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sssweep: some permutations failed:", err)
	}
	if journal != nil {
		if jerr := journal.Err(); jerr != nil {
			return fmt.Errorf("task journal: %w", jerr)
		}
	}
	// CSV: id, variables..., then summary columns.
	header := append([]string{"id"}, names...)
	header = append(header, "samples", "accepted", "mean", "p50", "p90", "p99", "p99.9", "hops", "nonmin")
	fmt.Println(strings.Join(header, ","))
	for _, p := range points {
		if p.Err != nil {
			continue
		}
		row := []string{p.ID}
		for _, n := range names {
			row = append(row, fmt.Sprintf("%v", p.Values[n]))
		}
		su := p.Summary
		row = append(row,
			strconv.Itoa(su.Count),
			fmt.Sprintf("%.4f", p.Accepted),
			fmt.Sprintf("%.1f", su.Mean),
			fmt.Sprintf("%.0f", su.P50),
			fmt.Sprintf("%.0f", su.P90),
			fmt.Sprintf("%.0f", su.P99),
			fmt.Sprintf("%.0f", su.P999),
			fmt.Sprintf("%.2f", su.MeanHops),
			fmt.Sprintf("%.4f", su.NonMinimal),
		)
		fmt.Println(strings.Join(row, ","))
	}
	if o.htmlPath != "" {
		f, err := os.Create(o.htmlPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sweep.WriteReport(f, "sssweep: "+cfgPath, points, o.xVar); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote HTML report to %s\n", o.htmlPath)
	}
	return nil
}

func parseVar(decl string) (sweep.Variable, error) {
	parts := strings.SplitN(decl, "=", 5)
	if len(parts) != 5 {
		return sweep.Variable{}, fmt.Errorf("variable %q: want NAME=SHORT=path=type=values", decl)
	}
	name, short, path, typ, valuesCSV := parts[0], parts[1], parts[2], parts[3], parts[4]
	var values []any
	for _, raw := range strings.Split(valuesCSV, ",") {
		switch typ {
		case "uint":
			u, err := strconv.ParseUint(raw, 10, 64)
			if err != nil {
				return sweep.Variable{}, fmt.Errorf("variable %q: %v", decl, err)
			}
			values = append(values, u)
		case "int":
			i, err := strconv.ParseInt(raw, 10, 64)
			if err != nil {
				return sweep.Variable{}, fmt.Errorf("variable %q: %v", decl, err)
			}
			values = append(values, i)
		case "float":
			f, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				return sweep.Variable{}, fmt.Errorf("variable %q: %v", decl, err)
			}
			values = append(values, f)
		case "string":
			values = append(values, raw)
		default:
			return sweep.Variable{}, fmt.Errorf("variable %q: unknown type %q", decl, typ)
		}
	}
	return sweep.Variable{
		Name:   name,
		Short:  short,
		Values: values,
		Apply:  func(cfg *config.Settings, v any) { cfg.Set(path, v) },
	}, nil
}

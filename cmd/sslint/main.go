// Command sslint runs the simulator-aware static analysis suite over the
// repository: determinism, hotpath, probeguard and factoryreg (see
// internal/lint).
//
// Usage:
//
//	sslint [-rules determinism,hotpath] [-json] [-baseline sslint.baseline] <packages>
//
// Targets are directories (./internal/router) or go-list patterns (./...).
// Exit code 0 means clean, 1 means findings, 2 means the run itself failed
// (unknown rule, unloadable package, stale baseline entry).
package main

import "os"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

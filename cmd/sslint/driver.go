package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"supersim/internal/lint"
)

// target is one package to lint: its directory and import path.
type target struct {
	dir        string
	importPath string
}

// run is the driver body, separated from main for testing. It returns the
// process exit code: 0 clean, 1 findings, 2 driver failure.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated rule subset (default: all rules + directive hygiene)")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array")
	jsonOut := fs.String("json-out", "", "also write the findings as a JSON artifact to this file")
	baselinePath := fs.String("baseline", "", "baseline file of accepted findings; stale entries fail the run")
	listRules := fs.Bool("list-rules", false, "print the active rules with their one-line docs and exit")
	fixtures := fs.Bool("fixtures", false, "replay the want-comment fixture packages as a self-check and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listRules {
		printRules(stdout)
		return 0
	}
	if *fixtures {
		return runFixtures(stdout, stderr)
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "sslint: no packages given (try ./...)")
		return 2
	}

	runner, err := buildRunner(*rules)
	if err != nil {
		fmt.Fprintf(stderr, "sslint: %v\n", err)
		return 2
	}
	targets, err := resolveTargets(fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "sslint: %v\n", err)
		return 2
	}
	moduleRoot, err := findModuleRoot(targets[0].dir)
	if err != nil {
		fmt.Fprintf(stderr, "sslint: %v\n", err)
		return 2
	}

	loader := lint.NewLoader()
	var pkgs []*lint.Package
	for _, tg := range targets {
		p, err := loader.Load(tg.dir, tg.importPath)
		if errors.Is(err, lint.ErrNoGoFiles) {
			continue
		}
		if err != nil {
			fmt.Fprintf(stderr, "sslint: %v\n", err)
			return 2
		}
		pkgs = append(pkgs, p)
	}

	diags := runner.Run(pkgs)
	for i := range diags {
		diags[i].Pos.Filename = relTo(moduleRoot, diags[i].Pos.Filename)
	}

	var baseline map[string]int
	if *baselinePath != "" {
		baseline, err = readBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "sslint: %v\n", err)
			return 2
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if baseline[d.String()] > 0 {
			baseline[d.String()]--
			continue
		}
		kept = append(kept, d)
	}
	diags = kept
	var stale []string
	for line, n := range baseline {
		if n > 0 {
			stale = append(stale, line)
		}
	}
	sort.Strings(stale)

	if *asJSON {
		if err := writeJSON(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "sslint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if *jsonOut != "" {
		if err := writeJSONFile(*jsonOut, diags); err != nil {
			fmt.Fprintf(stderr, "sslint: %v\n", err)
			return 2
		}
	}
	if len(stale) > 0 {
		fmt.Fprintf(stderr, "sslint: %d stale baseline entr%s — the finding no longer exists, remove the line:\n",
			len(stale), plural(len(stale), "y", "ies"))
		for _, line := range stale {
			fmt.Fprintf(stderr, "  %s\n", line)
		}
		return 2
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "sslint: %d finding%s\n", len(diags), plural(len(diags), "", "s"))
		return 1
	}
	return 0
}

// printRules lists every selectable rule plus the always-on directive
// meta-rule, one line each, for `make lint-rules`.
func printRules(w io.Writer) {
	names := append(lint.Rules(), lint.RuleDirective)
	for _, name := range names {
		fmt.Fprintf(w, "%-18s %s\n", name, lint.RuleDoc(name))
	}
}

// runFixtures replays the shared fixture registry against the repo's own
// testdata tree: the same runs the internal/lint tests perform, exposed as a
// CLI self-check so `make lint` fails when a rule drifts from its fixtures.
func runFixtures(stdout, stderr io.Writer) int {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "sslint: %v\n", err)
		return 2
	}
	root, err := findModuleRoot(wd)
	if err != nil {
		fmt.Fprintf(stderr, "sslint: %v\n", err)
		return 2
	}
	lintDir := filepath.Join(root, "internal", "lint")
	if _, err := os.Stat(filepath.Join(lintDir, "testdata", "src")); err != nil {
		fmt.Fprintf(stderr, "sslint: fixture tree not found under %s — run -fixtures from the sslint repo\n", lintDir)
		return 2
	}
	loader := lint.NewLoader()
	cache := map[string]*lint.Package{}
	specs := lint.FixtureSpecs()
	failed := 0
	for _, spec := range specs {
		problems, err := lint.CheckFixture(loader, lintDir, spec, cache)
		if err != nil {
			fmt.Fprintf(stderr, "sslint: fixture %s: %v\n", spec.Name, err)
			return 2
		}
		if len(problems) == 0 {
			continue
		}
		failed++
		for _, pr := range problems {
			fmt.Fprintf(stderr, "sslint: fixture %s: %s\n", spec.Name, pr)
		}
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "sslint: %d of %d fixture runs drifted from their want comments\n", failed, len(specs))
		return 1
	}
	fmt.Fprintf(stdout, "sslint: %d fixture runs ok\n", len(specs))
	return 0
}

// buildRunner translates the -rules flag into a Runner. Directive hygiene
// (unused allows) is only checked with the full rule set: against a subset,
// allows for the disabled rules would be falsely unused.
func buildRunner(rules string) (*lint.Runner, error) {
	if rules == "" {
		return &lint.Runner{Analyzers: lint.AllAnalyzers(), CheckDirectives: true}, nil
	}
	var as []lint.Analyzer
	for _, name := range strings.Split(rules, ",") {
		a, err := lint.NewAnalyzer(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		as = append(as, a)
	}
	return &lint.Runner{Analyzers: as}, nil
}

// resolveTargets turns the positional arguments into (dir, import path)
// pairs: existing directories are mapped through the module root, everything
// else goes through go list.
func resolveTargets(args []string) ([]target, error) {
	var targets []target
	var patterns []string
	seen := map[string]bool{}
	add := func(t target) {
		if !seen[t.importPath] {
			seen[t.importPath] = true
			targets = append(targets, t)
		}
	}
	for _, arg := range args {
		if st, err := os.Stat(arg); err == nil && st.IsDir() {
			t, err := dirTarget(arg)
			if err != nil {
				return nil, err
			}
			add(t)
			continue
		}
		patterns = append(patterns, arg)
	}
	if len(patterns) > 0 {
		listed, err := goList(patterns)
		if err != nil {
			return nil, err
		}
		for _, t := range listed {
			add(t)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("no packages matched %v", args)
	}
	return targets, nil
}

// dirTarget derives a directory's import path from the enclosing go.mod.
func dirTarget(dir string) (target, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return target{}, err
	}
	root, err := findModuleRoot(abs)
	if err != nil {
		return target{}, err
	}
	module, err := moduleName(root)
	if err != nil {
		return target{}, err
	}
	importPath := module
	if rel := relTo(root, abs); rel != "." {
		importPath = module + "/" + filepath.ToSlash(rel)
	}
	return target{dir: abs, importPath: importPath}, nil
}

// goList expands go-list patterns (./..., supersim/internal/...) into
// targets.
func goList(patterns []string) ([]target, error) {
	args := append([]string{"list", "-f", "{{.ImportPath}}\t{{.Dir}}"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errBuf.String())
	}
	var targets []target
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if line == "" {
			continue
		}
		ip, dir, ok := strings.Cut(line, "\t")
		if !ok {
			return nil, fmt.Errorf("go list: unparsable line %q", line)
		}
		targets = append(targets, target{dir: dir, importPath: ip})
	}
	return targets, nil
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod above %s", abs)
		}
		d = parent
	}
}

// moduleName reads the module path from root/go.mod.
func moduleName(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module line in %s/go.mod", root)
}

// relTo renders path relative to root when possible, for stable baselines and
// output independent of the checkout location.
func relTo(root, path string) string {
	abs, err := filepath.Abs(path)
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return filepath.ToSlash(rel)
}

// readBaseline loads accepted findings: one rendered diagnostic per line,
// blank lines and # comments skipped. The count per line supports identical
// diagnostics at one position.
func readBaseline(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading baseline: %w", err)
	}
	baseline := map[string]int{}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		baseline[line]++
	}
	return baseline, nil
}

// jsonDiag is the JSON rendering of one finding.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// writeJSONFile renders the findings artifact for CI consumption.
func writeJSONFile(path string, diags []lint.Diagnostic) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("writing findings artifact: %w", err)
	}
	if err := writeJSON(f, diags); err != nil {
		f.Close()
		return fmt.Errorf("writing findings artifact: %w", err)
	}
	return f.Close()
}

func writeJSON(w io.Writer, diags []lint.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
			Rule: d.Rule, Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"supersim/internal/lint"
)

// runDriver invokes the driver in-process.
func runDriver(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestDirtyText(t *testing.T) {
	code, out, errOut := runDriver(t, "testdata/dirty")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	// Two findings: the hotpath allocation and the unused allow, rendered with
	// module-root-relative paths.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d findings, want 2:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "cmd/sslint/testdata/dirty/dirty.go:") ||
		!strings.Contains(lines[0], "new allocates") ||
		!strings.HasSuffix(lines[0], "[hotpath]") {
		t.Errorf("unexpected first finding: %q", lines[0])
	}
	if !strings.Contains(lines[1], "suppresses nothing") ||
		!strings.HasSuffix(lines[1], "[directive]") {
		t.Errorf("unexpected second finding: %q", lines[1])
	}
	if !strings.Contains(errOut, "2 findings") {
		t.Errorf("stderr = %q, want finding count", errOut)
	}
}

func TestDirtyJSON(t *testing.T) {
	code, out, _ := runDriver(t, "-json", "testdata/dirty")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	var diags []jsonDiag
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(diags), diags)
	}
	d := diags[0]
	if d.File != "cmd/sslint/testdata/dirty/dirty.go" || d.Rule != "hotpath" ||
		d.Line <= 0 || d.Col <= 0 || !strings.Contains(d.Message, "new allocates") {
		t.Errorf("unexpected finding: %+v", d)
	}
	if diags[1].Rule != "directive" {
		t.Errorf("second finding rule = %q, want directive", diags[1].Rule)
	}
}

func TestRuleSubset(t *testing.T) {
	// With -rules the directive meta-check is off: only the hotpath finding.
	code, out, _ := runDriver(t, "-rules", "hotpath", "testdata/dirty")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if lines := strings.Split(strings.TrimSpace(out), "\n"); len(lines) != 1 {
		t.Fatalf("got %d findings, want 1:\n%s", len(lines), out)
	}
	// A subset that has nothing to say about the fixture is clean.
	code, out, _ = runDriver(t, "-rules", "determinism,probeguard", "testdata/dirty")
	if code != 0 || strings.TrimSpace(out) != "" {
		t.Fatalf("exit code = %d (want 0), output %q", code, out)
	}
}

func TestClean(t *testing.T) {
	code, out, _ := runDriver(t, "testdata/clean")
	if code != 0 || strings.TrimSpace(out) != "" {
		t.Fatalf("exit code = %d (want 0), output %q", code, out)
	}
	code, out, _ = runDriver(t, "-json", "testdata/clean")
	if code != 0 || strings.TrimSpace(out) != "[]" {
		t.Fatalf("JSON clean run: exit code = %d (want 0), output %q", code, out)
	}
}

func TestJSONOutArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "findings.json")
	code, out, _ := runDriver(t, "-json-out", path, "testdata/dirty")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	// Text findings still go to stdout; the artifact is written alongside.
	if !strings.Contains(out, "[hotpath]") {
		t.Errorf("stdout lost the text findings: %q", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var diags []jsonDiag
	if err := json.Unmarshal(data, &diags); err != nil {
		t.Fatalf("artifact is not a JSON array: %v\n%s", err, data)
	}
	if len(diags) != 2 {
		t.Fatalf("artifact holds %d findings, want 2: %v", len(diags), diags)
	}

	// A clean run still writes the artifact, as an empty array.
	code, _, _ = runDriver(t, "-json-out", path, "testdata/clean")
	if code != 0 {
		t.Fatalf("clean run exit code = %d, want 0", code)
	}
	if data, err = os.ReadFile(path); err != nil || strings.TrimSpace(string(data)) != "[]" {
		t.Fatalf("clean artifact = %q (err %v), want []", data, err)
	}

	// An unwritable artifact path is a driver failure, not a silent skip.
	code, _, errOut := runDriver(t, "-json-out", filepath.Join(t.TempDir(), "no", "such", "dir.json"), "testdata/clean")
	if code != 2 || !strings.Contains(errOut, "findings artifact") {
		t.Fatalf("unwritable artifact: exit code = %d (want 2), stderr %q", code, errOut)
	}
}

func TestListRules(t *testing.T) {
	code, out, _ := runDriver(t, "-list-rules")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	want := append(lint.Rules(), lint.RuleDirective)
	if len(lines) != len(want) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(want), out)
	}
	for i, name := range want {
		if !strings.HasPrefix(lines[i], name) {
			t.Errorf("line %d = %q, want rule %q first", i, lines[i], name)
		}
		if doc := lint.RuleDoc(name); !strings.Contains(lines[i], doc) {
			t.Errorf("line %d lacks the doc for %q", i, name)
		}
	}
}

func TestFixturesSelfCheck(t *testing.T) {
	code, out, errOut := runDriver(t, "-fixtures")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "fixture runs ok") {
		t.Errorf("stdout = %q, want fixture summary", out)
	}
}

func TestUnknownRule(t *testing.T) {
	code, _, errOut := runDriver(t, "-rules", "nosuchrule", "testdata/dirty")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut, `unknown rule "nosuchrule"`) {
		t.Errorf("stderr = %q, want unknown-rule error", errOut)
	}
}

func TestNoPackages(t *testing.T) {
	if code, _, _ := runDriver(t); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestBaselineSuppressesAndGoesStale(t *testing.T) {
	_, out, _ := runDriver(t, "testdata/dirty")
	baseline := filepath.Join(t.TempDir(), "sslint.baseline")
	content := "# accepted findings\n\n" + out
	if err := os.WriteFile(baseline, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}

	code, out, errOut := runDriver(t, "-baseline", baseline, "testdata/dirty")
	if code != 0 || strings.TrimSpace(out) != "" {
		t.Fatalf("baselined run: exit code = %d (want 0), output %q, stderr %q", code, out, errOut)
	}

	// An entry whose finding no longer exists must fail the run loudly.
	stale := content + "cmd/sslint/testdata/dirty/dirty.go:99:1: long-gone finding [hotpath]\n"
	if err := os.WriteFile(baseline, []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut = runDriver(t, "-baseline", baseline, "testdata/dirty")
	if code != 2 {
		t.Fatalf("stale run: exit code = %d, want 2\nstderr: %s", code, errOut)
	}
	if !strings.Contains(errOut, "stale baseline") || !strings.Contains(errOut, "long-gone finding") {
		t.Errorf("stderr = %q, want stale-baseline report", errOut)
	}
}

func TestMissingBaselineFile(t *testing.T) {
	code, _, errOut := runDriver(t, "-baseline", "testdata/does-not-exist", "testdata/clean")
	if code != 2 || !strings.Contains(errOut, "baseline") {
		t.Fatalf("exit code = %d (want 2), stderr %q", code, errOut)
	}
}

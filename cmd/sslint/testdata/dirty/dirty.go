// Package dirty is a driver-test fixture with exactly two findings: a hotpath
// allocation and an unused allow. It is never part of the build.
package dirty

//sslint:hotpath
func leak() *int {
	return new(int)
}

//sslint:allow probeguard — fixture: deliberately unused
func quiet() {}

// Package clean is a driver-test fixture with no findings. It is never part
// of the build.
package clean

// Add is ordinary cold-path code no rule applies to.
func Add(a, b int) int {
	return a + b
}

// Command experiments regenerates the paper's tables and figures. Each
// experiment prints the numeric rows/series the corresponding plot draws.
//
// Usage:
//
//	experiments -exp fig9b            # one experiment
//	experiments -exp all -full        # everything at paper scale
//
// Experiments: table1, fig5, fig7, fig8, fig9a, fig9b, fig9small, fig10a,
// fig10b, fig11, fig12, all.
//
// -journal FILE streams one task-lifecycle event pair per figure sweep point
// to FILE as JSONL (the supersim-tasks schema), so ssparse -tasks and ssplot
// -plot taskgantt can account for where figure-regeneration time goes.
package main

import (
	"flag"
	"fmt"
	"os"

	"supersim/internal/experiments"
	"supersim/internal/taskrun"
)

func main() {
	exp := flag.String("exp", "all", "experiment id")
	full := flag.Bool("full", false, "paper-scale parameters (slow)")
	seed := flag.Uint64("seed", 1, "base PRNG seed")
	quiet := flag.Bool("quiet", false, "suppress progress lines")
	journalPath := flag.String("journal", "", "stream per-sweep-point task events to this JSONL file")
	flag.Parse()
	opts := experiments.Options{Full: *full, Seed: *seed, Out: os.Stderr}
	if *quiet {
		opts.Out = nil
	}
	var journal *taskrun.Journal
	if *journalPath != "" {
		jf, err := os.Create(*journalPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer jf.Close()
		journal = taskrun.NewJournal(jf, nil)
		opts.TaskProbe = journal
		defer func() {
			journal.RunFinished()
			if err := journal.Err(); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: task journal: %v\n", err)
				os.Exit(1)
			}
		}()
	}
	out := os.Stdout

	run := map[string]func(){
		"table1": func() { experiments.PrintTableI(out, experiments.TableI(opts)) },
		"fig5":   func() { experiments.PrintFigure5(out, experiments.Figure5(opts)) },
		"fig7":   func() { experiments.PrintFigure7(out, experiments.Figure7(opts)) },
		"fig8": func() {
			experiments.PrintCurves(out, "Figure 8: load vs latency with phantom congestion",
				[]experiments.Curve{experiments.Figure8(opts)})
		},
		"fig9a": func() {
			experiments.PrintCurves(out, "Figure 9a: congestion sensing latency, infinite output queues",
				experiments.Figure9(opts, true))
		},
		"fig9b": func() {
			experiments.PrintCurves(out, "Figure 9b: congestion sensing latency, 64-flit output queues",
				experiments.Figure9(opts, false))
		},
		"fig9small": func() {
			experiments.PrintThroughputs(out, "VI-A text: 512-terminal variant throughput at 90% load",
				experiments.Figure9Small(opts))
		},
		"fig10a": func() {
			experiments.PrintCurves(out, "Figure 10a: credit accounting styles, uniform random",
				experiments.Figure10(opts, false))
		},
		"fig10b": func() {
			experiments.PrintCurves(out, "Figure 10b: credit accounting styles, bit complement",
				experiments.Figure10(opts, true))
		},
		"fig11": func() { experiments.PrintFigure11(out, experiments.Figure11(opts)) },
		"fig12": func() {
			experiments.PrintCurves(out, "Figure 12: flow control latency, 8 VCs, 32-flit messages",
				experiments.Figure12(opts))
		},
	}
	order := []string{"table1", "fig5", "fig7", "fig8", "fig9a", "fig9b",
		"fig9small", "fig10a", "fig10b", "fig11", "fig12"}

	if *exp == "all" {
		for _, id := range order {
			fmt.Fprintf(os.Stderr, "--- running %s ---\n", id)
			run[id]()
		}
		return
	}
	fn, ok := run[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (have %v, all)\n", *exp, order)
		os.Exit(2)
	}
	fn()
}

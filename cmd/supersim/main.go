// Command supersim runs one network simulation from a JSON settings file.
//
// Usage:
//
//	supersim myconfig.json [path=type=value ...]
//
// Command line overrides use path=type=value syntax, for example:
//
//	supersim myconfig.json \
//	    network.router.architecture=string=my_arch \
//	    network.concentration=uint=16
//
// The simulation's sampled transactions can be written to a log with
// -log <file> for analysis with the ssparse tool, and a summary of each
// application's latency statistics is printed on completion.
package main

import (
	"flag"
	"fmt"
	"os"

	"supersim/internal/config"
	"supersim/internal/core"
	"supersim/internal/ssparse"
	"supersim/internal/stats"
)

func main() {
	logPath := flag.String("log", "", "write sampled transactions to this file")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: supersim <config.json> [path=type=value ...]")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), flag.Args()[1:], *logPath, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "supersim:", err)
		os.Exit(1)
	}
}

func run(cfgPath string, overrides []string, logPath string, quiet bool) error {
	cfg, err := config.LoadFile(cfgPath)
	if err != nil {
		return err
	}
	if err := cfg.ApplyOverrides(overrides); err != nil {
		return err
	}
	sm, err := core.BuildE(cfg)
	if err != nil {
		return err
	}
	if !quiet {
		fmt.Printf("built %d routers, %d terminals, %d channels\n",
			sm.Net.NumRouters(), sm.Net.NumTerminals(), len(sm.Net.Channels()))
	}
	res, err := sm.Run()
	if err != nil {
		return err
	}
	if !quiet {
		fmt.Printf("simulation complete: %d events, %d ticks\n", res.Events, res.EndTick)
	}
	var logFile *os.File
	if logPath != "" {
		logFile, err = os.Create(logPath)
		if err != nil {
			return err
		}
		defer logFile.Close()
	}
	for i := 0; i < sm.Workload.NumApps(); i++ {
		app := sm.Workload.App(i)
		sp, ok := app.(stats.Provider)
		if !ok {
			continue
		}
		rec := sp.Stats()
		sum := rec.Summarize()
		fmt.Printf("app %d: %d samples, latency mean=%.1f p50=%.0f p90=%.0f p99=%.0f p99.9=%.0f max=%.0f hops=%.2f nonmin=%.4f\n",
			i, sum.Count, sum.Mean, sum.P50, sum.P90, sum.P99, sum.P999, sum.Max, sum.MeanHops, sum.NonMinimal)
		if pp, ok := app.(interface{ PacketStats() *stats.Recorder }); ok {
			if ps := pp.PacketStats().Summarize(); ps.Count > sum.Count {
				fmt.Printf("app %d packets: %d samples, latency mean=%.1f p50=%.0f p99=%.0f\n",
					i, ps.Count, ps.Mean, ps.P50, ps.P99)
			}
		}
		if logFile != nil {
			if err := ssparse.Write(logFile, rec.Samples()); err != nil {
				return err
			}
		}
	}
	return nil
}

// Command supersim runs one network simulation from a JSON settings file.
//
// Usage:
//
//	supersim myconfig.json [path=type=value ...]
//
// Command line overrides use path=type=value syntax, for example:
//
//	supersim myconfig.json \
//	    network.router.architecture=string=my_arch \
//	    network.concentration=uint=16
//
// The simulation's sampled transactions can be written to a log with
// -log <file> for analysis with the ssparse tool, and a summary of each
// application's latency statistics is printed on completion.
//
// Performance work is measured, not guessed: -cpuprofile and -memprofile
// write standard pprof profiles of the run, and -monitor N prints an
// events/sec + heap usage progress line to stderr every N executed events
// (also exported through the supersim.* expvar gauges).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"supersim/internal/config"
	"supersim/internal/core"
	"supersim/internal/sim"
	"supersim/internal/ssparse"
	"supersim/internal/stats"
)

func main() {
	logPath := flag.String("log", "", "write sampled transactions to this file")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	monitor := flag.Uint64("monitor", 0, "report events/sec and heap every N executed events (0 disables)")
	verifyRun := flag.Bool("verify", false, "enable runtime invariant verification (flit/credit conservation, aliasing sentinel, progress watchdog)")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: supersim <config.json> [path=type=value ...]")
		os.Exit(2)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "supersim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "supersim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	err := run(flag.Arg(0), flag.Args()[1:], *logPath, *quiet, *monitor, *verifyRun)
	if *memProfile != "" {
		if werr := writeMemProfile(*memProfile); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "supersim:", err)
		os.Exit(1)
	}
}

func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // settle live objects so the heap profile reflects retention
	return pprof.Lookup("allocs").WriteTo(f, 0)
}

func run(cfgPath string, overrides []string, logPath string, quiet bool, monitor uint64, verifyRun bool) error {
	cfg, err := config.LoadFile(cfgPath)
	if err != nil {
		return err
	}
	if err := cfg.ApplyOverrides(overrides); err != nil {
		return err
	}
	if verifyRun {
		if err := cfg.ApplyOverride("simulation.verify.enabled=bool=true"); err != nil {
			return err
		}
	}
	sm, err := core.BuildE(cfg)
	if err != nil {
		return err
	}
	if monitor > 0 {
		(&sim.ProgressMonitor{Out: os.Stderr}).Attach(sm.Sim, monitor)
	}
	if !quiet {
		fmt.Printf("built %d routers, %d terminals, %d channels\n",
			sm.Net.NumRouters(), sm.Net.NumTerminals(), len(sm.Net.Channels()))
	}
	res, err := sm.Run()
	if err != nil {
		return err
	}
	if !quiet {
		fmt.Printf("simulation complete: %d events, %d ticks\n", res.Events, res.EndTick)
		ps := sm.Workload.Pool().Stats()
		if ps.Gets > 0 {
			fmt.Printf("message pool: %d gets, %d recycled (%.1f%%), %d released\n",
				ps.Gets, ps.Hits, 100*float64(ps.Hits)/float64(ps.Gets), ps.Releases)
		}
	}
	var logFile *os.File
	if logPath != "" {
		logFile, err = os.Create(logPath)
		if err != nil {
			return err
		}
		defer logFile.Close()
	}
	for i := 0; i < sm.Workload.NumApps(); i++ {
		app := sm.Workload.App(i)
		sp, ok := app.(stats.Provider)
		if !ok {
			continue
		}
		rec := sp.Stats()
		sum := rec.Summarize()
		fmt.Printf("app %d: %d samples, latency mean=%.1f p50=%.0f p90=%.0f p99=%.0f p99.9=%.0f max=%.0f hops=%.2f nonmin=%.4f\n",
			i, sum.Count, sum.Mean, sum.P50, sum.P90, sum.P99, sum.P999, sum.Max, sum.MeanHops, sum.NonMinimal)
		if pp, ok := app.(interface{ PacketStats() *stats.Recorder }); ok {
			if ps := pp.PacketStats().Summarize(); ps.Count > sum.Count {
				fmt.Printf("app %d packets: %d samples, latency mean=%.1f p50=%.0f p99=%.0f\n",
					i, ps.Count, ps.Mean, ps.P50, ps.P99)
			}
		}
		if logFile != nil {
			if err := ssparse.Write(logFile, rec.Samples()); err != nil {
				return err
			}
		}
	}
	return nil
}

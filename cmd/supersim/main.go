// Command supersim runs one network simulation from a JSON settings file.
//
// Usage:
//
//	supersim myconfig.json [path=type=value ...]
//
// Command line overrides use path=type=value syntax, for example:
//
//	supersim myconfig.json \
//	    network.router.architecture=string=my_arch \
//	    network.concentration=uint=16
//
// The simulation's sampled transactions can be written to a log with
// -log <file> for analysis with the ssparse tool, and a summary of each
// application's latency statistics is printed on completion.
//
// Performance work is measured, not guessed: -cpuprofile and -memprofile
// write standard pprof profiles of the run, and -monitor N prints an
// events/sec + heap usage progress line to stderr every N executed events
// (also exported through the supersim.* expvar gauges).
//
// The telemetry subsystem (see OBSERVABILITY.md) is controlled by flags that
// map onto simulation.telemetry.* settings: -telemetry enables the metric
// registry, -telemetry-file <f> writes time-binned JSONL snapshots every
// -telemetry-bin ticks, -trace <f> writes a Chrome trace-event JSON of flit
// lifecycles sampled at -trace-sample, -spans <f> writes per-message latency
// decompositions (spans JSONL, see ssparse -spans and ssplot -plot breakdown)
// sampled at -spans-sample, and -telemetry-addr <host:port> serves live run
// introspection (/metrics Prometheus text, /progress JSON, /debug/pprof,
// /debug/vars) while the simulation executes. Modifier flags set without the
// flag they modify (-trace-sample without -trace, -spans-sample without
// -spans, -telemetry-bin with no telemetry consumer) are rejected up front.
//
// -workers N executes the simulation on N parallel shards coordinated by the
// conservative lookahead engine (see DESIGN.md); results are byte-identical
// to the default serial run — including the -trace and -spans streams, which
// record into per-shard lanes merged back into the serial order at the end of
// the run. Parallel runs additionally expose per-shard engine metrics
// (engine_* in /metrics and snapshots) and a /shards JSON endpoint on
// -telemetry-addr.
//
// Provenance: -manifest <f> writes a versioned JSON run manifest on
// completion — the canonical config hash, seed, worker count, the flags of
// the invocation, wall/sim time, per-app latency metrics, and the SHA-256
// digest of every artifact the run produced (log, telemetry, trace, spans,
// checkpoint). Manifests tie artifacts back to exactly what produced them;
// see OBSERVABILITY.md. -manifest is output-only and therefore also valid
// with -restore.
//
// Checkpointing: -checkpoint-every N -checkpoint-file F writes a complete
// snapshot of simulator state to F (atomically replaced) at every N-tick
// boundary while work remains; the pauses are invisible to the simulation.
// -restore F rebuilds a simulation from a snapshot — no config file or
// overrides are accepted, because the snapshot embeds its settings document —
// and runs it to completion with results byte-identical to the uninterrupted
// run. The one exception is -workers, which may re-partition the restored
// run; snapshots are partition-independent. The same behavior is available
// from a config file via the simulation.checkpoint_every and
// simulation.checkpoint_file keys (see CONFIG.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"supersim/internal/config"
	"supersim/internal/core"
	"supersim/internal/manifest"
	"supersim/internal/sim"
	"supersim/internal/ssparse"
	"supersim/internal/stats"
)

func main() {
	logPath := flag.String("log", "", "write sampled transactions to this file")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	monitor := flag.Uint64("monitor", 0, "report events/sec and heap every N executed events (0 disables)")
	verifyRun := flag.Bool("verify", false, "enable runtime invariant verification (flit/credit conservation, aliasing sentinel, progress watchdog)")
	telemetryOn := flag.Bool("telemetry", false, "enable the telemetry metrics registry")
	telemetryFile := flag.String("telemetry-file", "", "write time-binned telemetry snapshots (JSONL) to this file (implies -telemetry)")
	telemetryBin := flag.Uint64("telemetry-bin", 1000, "telemetry snapshot bin width in ticks")
	telemetryAddr := flag.String("telemetry-addr", "", "serve live introspection HTTP on this address (implies -telemetry)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of flit lifecycles to this file (implies -telemetry)")
	traceSample := flag.Float64("trace-sample", 1.0, "fraction of messages to trace, 0..1")
	spansPath := flag.String("spans", "", "write per-message latency decompositions (spans JSONL) to this file (implies -telemetry)")
	spansSample := flag.Float64("spans-sample", 1.0, "fraction of messages to span-record, 0..1")
	workers := flag.Uint("workers", 1, "run the simulation on N parallel shards (results are identical to -workers 1)")
	checkpointEvery := flag.Uint64("checkpoint-every", 0, "write a checkpoint snapshot every N ticks (requires -checkpoint-file)")
	checkpointFile := flag.String("checkpoint-file", "", "checkpoint snapshot path, atomically replaced at each interval (requires -checkpoint-every)")
	restorePath := flag.String("restore", "", "restore simulator state from a checkpoint snapshot (replaces the config file argument)")
	manifestPath := flag.String("manifest", "", "write a run provenance manifest (JSON) to this file on completion")
	flag.Parse()
	set := map[string]bool{}
	flagVals := map[string]string{}
	flag.Visit(func(f *flag.Flag) {
		set[f.Name] = true
		flagVals[f.Name] = f.Value.String()
	})
	if err := validateFlags(set, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "supersim:", err)
		os.Exit(2)
	}
	if *restorePath != "" {
		if flag.NArg() > 0 {
			fmt.Fprintln(os.Stderr, "supersim: -restore takes no config file or overrides (the snapshot embeds its settings; only -workers may override)")
			os.Exit(2)
		}
	} else if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: supersim <config.json> [path=type=value ...]")
		os.Exit(2)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "supersim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "supersim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	var overrides []string
	if flag.NArg() > 1 {
		overrides = flag.Args()[1:]
	}
	err := run(flag.Arg(0), overrides, runOpts{
		logPath:         *logPath,
		quiet:           *quiet,
		monitor:         *monitor,
		verify:          *verifyRun,
		telemetry:       *telemetryOn,
		telemetryFile:   *telemetryFile,
		telemetryBin:    *telemetryBin,
		telemetryAddr:   *telemetryAddr,
		tracePath:       *tracePath,
		traceSample:     *traceSample,
		spansPath:       *spansPath,
		spansSample:     *spansSample,
		workers:         *workers,
		workersSet:      set["workers"],
		checkpointEvery: *checkpointEvery,
		checkpointFile:  *checkpointFile,
		restorePath:     *restorePath,
		manifestPath:    *manifestPath,
		flags:           flagVals,
	})
	if *memProfile != "" {
		if werr := writeMemProfile(*memProfile); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "supersim:", err)
		os.Exit(1)
	}
}

// checkpointSink returns a RunCheckpointed sink that atomically replaces the
// snapshot file at each interval: write to a temp file, then rename, so a
// crash mid-write never leaves a truncated snapshot as the only copy.
func checkpointSink(path string, quiet bool) func(sim.Tick, []byte) error {
	return func(tick sim.Tick, data []byte) error {
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, path); err != nil {
			return err
		}
		if !quiet {
			fmt.Printf("checkpoint: tick %d, %d bytes -> %s\n", tick, len(data), path)
		}
		return nil
	}
}

func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // settle live objects so the heap profile reflects retention
	return pprof.Lookup("allocs").WriteTo(f, 0)
}

// runOpts carries the command-line options into run.
type runOpts struct {
	logPath       string
	quiet         bool
	monitor       uint64
	verify        bool
	telemetry     bool
	telemetryFile string
	telemetryBin  uint64
	telemetryAddr string
	tracePath     string
	traceSample   float64
	spansPath     string
	spansSample   float64
	workers       uint
	workersSet    bool // -workers was given explicitly (matters with -restore)

	checkpointEvery uint64
	checkpointFile  string
	restorePath     string

	manifestPath string
	flags        map[string]string // flags explicitly set, name -> rendered value
}

// validateFlags rejects combinations where a modifier flag was set on the
// command line but the flag it modifies is absent: silently ignoring the
// modifier would make the run look correctly configured while producing none
// of the requested output, so fail fast instead.
func validateFlags(set map[string]bool, workers uint) error {
	if set["trace-sample"] && !set["trace"] {
		return fmt.Errorf("-trace-sample has no effect without -trace")
	}
	if set["spans-sample"] && !set["spans"] {
		return fmt.Errorf("-spans-sample has no effect without -spans")
	}
	if set["telemetry-bin"] &&
		!set["telemetry"] && !set["telemetry-file"] && !set["telemetry-addr"] &&
		!set["trace"] && !set["spans"] {
		return fmt.Errorf("-telemetry-bin has no effect without -telemetry, -telemetry-file, -telemetry-addr, -trace, or -spans")
	}
	if set["checkpoint-every"] && !set["checkpoint-file"] {
		return fmt.Errorf("-checkpoint-every requires -checkpoint-file")
	}
	if set["checkpoint-file"] && !set["checkpoint-every"] {
		return fmt.Errorf("-checkpoint-file requires -checkpoint-every")
	}
	if set["restore"] {
		// A snapshot restores by rebuilding the identical component graph from
		// its embedded settings; any flag that would change those settings
		// would make the restored state incoherent. Worker count is the one
		// safe override: snapshots are partition-independent.
		for _, f := range []string{"verify", "telemetry", "telemetry-file", "telemetry-bin",
			"telemetry-addr", "trace", "trace-sample", "spans", "spans-sample"} {
			if set[f] {
				return fmt.Errorf("-restore rebuilds from the snapshot's embedded settings; -%s would change them (only -workers may override)", f)
			}
		}
	}
	return nil
}

// apply translates the telemetry flags into simulation.telemetry.* settings
// overrides, the same keys a config file would use.
func (o *runOpts) apply(cfg *config.Settings) error {
	if o.verify {
		if err := cfg.ApplyOverride("simulation.verify.enabled=bool=true"); err != nil {
			return err
		}
	}
	if o.workers > 1 {
		if err := cfg.ApplyOverride(fmt.Sprintf("simulation.workers=uint=%d", o.workers)); err != nil {
			return err
		}
	}
	if o.checkpointEvery > 0 {
		if err := cfg.ApplyOverrides([]string{
			fmt.Sprintf("simulation.checkpoint_every=uint=%d", o.checkpointEvery),
			"simulation.checkpoint_file=string=" + o.checkpointFile,
		}); err != nil {
			return err
		}
	}
	if o.telemetryFile != "" || o.telemetryAddr != "" || o.tracePath != "" || o.spansPath != "" {
		o.telemetry = true
	}
	if !o.telemetry {
		return nil
	}
	ov := []string{
		"simulation.telemetry.enabled=bool=true",
		fmt.Sprintf("simulation.telemetry.bin=uint=%d", o.telemetryBin),
		fmt.Sprintf("simulation.telemetry.trace_sample=float=%g", o.traceSample),
	}
	if o.telemetryFile != "" {
		ov = append(ov, "simulation.telemetry.snapshot_file=string="+o.telemetryFile)
	}
	if o.tracePath != "" {
		ov = append(ov, "simulation.telemetry.trace_file=string="+o.tracePath)
	}
	if o.spansPath != "" {
		ov = append(ov,
			"simulation.telemetry.spans_file=string="+o.spansPath,
			fmt.Sprintf("simulation.telemetry.spans_sample=float=%g", o.spansSample))
	}
	return cfg.ApplyOverrides(ov)
}

func run(cfgPath string, overrides []string, o runOpts) error {
	startWall := time.Now()
	var sm *core.Simulation
	if o.restorePath != "" {
		data, err := os.ReadFile(o.restorePath)
		if err != nil {
			return err
		}
		// 0 keeps the snapshot's configured worker count; an explicit -workers
		// re-partitions the restored run (results are identical either way).
		workers := 0
		if o.workersSet {
			workers = int(o.workers)
		}
		var tick sim.Tick
		sm, tick, err = core.Restore(data, workers)
		if err != nil {
			return err
		}
		if !o.quiet {
			fmt.Printf("restored %s: checkpoint at tick %d\n", o.restorePath, tick)
		}
	} else {
		cfg, err := config.LoadFile(cfgPath)
		if err != nil {
			return err
		}
		if err := cfg.ApplyOverrides(overrides); err != nil {
			return err
		}
		if err := o.apply(cfg); err != nil {
			return err
		}
		if sm, err = core.BuildE(cfg); err != nil {
			return err
		}
	}
	cfg := sm.Config()
	if o.monitor > 0 {
		pm := &sim.ProgressMonitor{
			Out:     os.Stderr,
			EndTick: sim.Tick(cfg.UIntOr("simulation.monitor_end_tick", 0)),
		}
		pm.Attach(sm.Sim, o.monitor)
	}
	if o.telemetryAddr != "" && sm.Telemetry != nil {
		sm.Telemetry.Serve(o.telemetryAddr, func(err error) {
			fmt.Fprintln(os.Stderr, "supersim: telemetry server:", err)
		})
		if !o.quiet {
			fmt.Printf("telemetry: serving http://%s/ (/metrics, /progress, /debug/pprof)\n", o.telemetryAddr)
		}
	}
	if !o.quiet {
		fmt.Printf("built %d routers, %d terminals, %d channels\n",
			sm.Net.NumRouters(), sm.Net.NumTerminals(), len(sm.Net.Channels()))
	}
	// Checkpointing: effective settings come from the (possibly embedded)
	// config document, which the checkpoint flags were mapped into — so a
	// restored run whose original invocation checkpointed keeps checkpointing,
	// and a config file can request it without any flags.
	every := sim.Tick(cfg.UIntOr("simulation.checkpoint_every", 0))
	ckPath := cfg.StringOr("simulation.checkpoint_file", "")
	if o.checkpointEvery > 0 {
		every, ckPath = sim.Tick(o.checkpointEvery), o.checkpointFile
	}
	if every > 0 && ckPath == "" {
		return fmt.Errorf("simulation.checkpoint_every is set but simulation.checkpoint_file is not")
	}
	if every == 0 && ckPath != "" {
		return fmt.Errorf("simulation.checkpoint_file is set but simulation.checkpoint_every is not")
	}
	var res core.Result
	var err error
	if every > 0 {
		res, err = sm.RunCheckpointed(every, checkpointSink(ckPath, o.quiet))
	} else {
		res, err = sm.Run()
	}
	if err != nil {
		return err
	}
	if !o.quiet {
		fmt.Printf("simulation complete: %d events, %d ticks\n", res.Events, res.EndTick)
		ps := sm.Workload.Pool().Stats()
		if ps.Gets > 0 {
			fmt.Printf("message pool: %d gets, %d recycled (%.1f%%), %d released\n",
				ps.Gets, ps.Hits, 100*float64(ps.Hits)/float64(ps.Gets), ps.Releases)
		}
	}
	var logFile *os.File
	if o.logPath != "" {
		logFile, err = os.Create(o.logPath)
		if err != nil {
			return err
		}
		defer logFile.Close()
	}
	for i := 0; i < sm.Workload.NumApps(); i++ {
		app := sm.Workload.App(i)
		sp, ok := app.(stats.Provider)
		if !ok {
			continue
		}
		rec := sp.Stats()
		sum := rec.Summarize()
		fmt.Printf("app %d: %d samples, latency mean=%.1f p50=%.0f p90=%.0f p99=%.0f p99.9=%.0f max=%.0f hops=%.2f nonmin=%.4f\n",
			i, sum.Count, sum.Mean, sum.P50, sum.P90, sum.P99, sum.P999, sum.Max, sum.MeanHops, sum.NonMinimal)
		if pp, ok := app.(interface{ PacketStats() *stats.Recorder }); ok {
			if ps := pp.PacketStats().Summarize(); ps.Count > sum.Count {
				fmt.Printf("app %d packets: %d samples, latency mean=%.1f p50=%.0f p99=%.0f\n",
					i, ps.Count, ps.Mean, ps.P50, ps.P99)
			}
		}
		if logFile != nil {
			if err := ssparse.Write(logFile, rec.Samples()); err != nil {
				return err
			}
		}
	}
	if o.manifestPath != "" {
		if err := writeRunManifest(sm, cfg, o, res, startWall, ckPath); err != nil {
			return err
		}
		if !o.quiet {
			fmt.Printf("manifest: %s\n", o.manifestPath)
		}
	}
	return nil
}

// writeRunManifest records the run's provenance next to its artifacts: config
// hash, seed, workers, the explicit flags, wall/sim time, per-app latency
// metrics, and a digest of every output file. Artifacts are added in a fixed
// role order so the document layout is stable; the checkpoint entry is
// stat-gated because a run shorter than the checkpoint interval never writes
// one.
func writeRunManifest(sm *core.Simulation, cfg *config.Settings, o runOpts,
	res core.Result, startWall time.Time, ckPath string) error {
	m := manifest.New(cfg)
	m.SimTicks = uint64(res.EndTick)
	m.Events = res.Events
	m.StartedAt = startWall.UTC().Format(time.RFC3339)
	m.WallSec = time.Since(startWall).Seconds()
	m.Flags = o.flags
	m.Metrics = map[string]float64{}
	for i := 0; i < sm.Workload.NumApps(); i++ {
		sp, ok := sm.Workload.App(i).(stats.Provider)
		if !ok {
			continue
		}
		sum := sp.Stats().Summarize()
		prefix := fmt.Sprintf("app%d_", i)
		m.Metrics[prefix+"samples"] = float64(sum.Count)
		m.Metrics[prefix+"latency_mean"] = sum.Mean
		m.Metrics[prefix+"latency_p50"] = sum.P50
		m.Metrics[prefix+"latency_p99"] = sum.P99
	}
	artifacts := []struct{ role, path string }{
		{"log", o.logPath},
		{"telemetry", cfg.StringOr("simulation.telemetry.snapshot_file", "")},
		{"trace", cfg.StringOr("simulation.telemetry.trace_file", "")},
		{"spans", cfg.StringOr("simulation.telemetry.spans_file", "")},
		{"checkpoint", ckPath},
	}
	for _, a := range artifacts {
		if a.path == "" {
			continue
		}
		if a.role == "checkpoint" {
			if _, err := os.Stat(a.path); err != nil {
				continue
			}
		}
		if err := m.AddArtifact(a.role, a.path); err != nil {
			return err
		}
	}
	return m.WriteFile(o.manifestPath)
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"supersim/internal/config"
	"supersim/internal/manifest"
	"supersim/internal/telemetry"
)

func setOf(names ...string) map[string]bool {
	m := map[string]bool{}
	for _, n := range names {
		m[n] = true
	}
	return m
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		set     map[string]bool
		workers uint
		wantErr string // empty = valid
	}{
		{"no flags", setOf(), 1, ""},
		{"trace with sample", setOf("trace", "trace-sample"), 1, ""},
		{"trace-sample alone", setOf("trace-sample"), 1, "-trace-sample"},
		{"spans with sample", setOf("spans", "spans-sample"), 1, ""},
		{"spans-sample alone", setOf("spans-sample"), 1, "-spans-sample"},
		{"spans-sample with only trace", setOf("trace", "spans-sample"), 1, "-spans-sample"},
		{"bin alone", setOf("telemetry-bin"), 1, "-telemetry-bin"},
		{"bin with log only", setOf("telemetry-bin", "log"), 1, "-telemetry-bin"},
		{"bin with telemetry", setOf("telemetry-bin", "telemetry"), 1, ""},
		{"bin with telemetry-file", setOf("telemetry-bin", "telemetry-file"), 1, ""},
		{"bin with telemetry-addr", setOf("telemetry-bin", "telemetry-addr"), 1, ""},
		{"bin with trace", setOf("telemetry-bin", "trace"), 1, ""},
		{"bin with spans", setOf("telemetry-bin", "spans"), 1, ""},
		{"workers serial with trace", setOf("trace", "workers"), 1, ""},
		{"workers parallel", setOf("workers"), 4, ""},
		{"workers parallel with telemetry", setOf("workers", "telemetry"), 4, ""},
		// Shard-aware recorders: -trace and -spans are accepted at any worker
		// count (per-shard lanes merge back into the serial byte stream).
		{"workers parallel with trace", setOf("trace", "workers"), 2, ""},
		{"workers parallel with spans", setOf("spans", "workers"), 2, ""},
		{"workers parallel with trace and spans", setOf("trace", "spans", "workers"), 4, ""},
		{"checkpoint pair", setOf("checkpoint-every", "checkpoint-file"), 1, ""},
		{"checkpoint-every alone", setOf("checkpoint-every"), 1, "-checkpoint-file"},
		{"checkpoint-file alone", setOf("checkpoint-file"), 1, "-checkpoint-every"},
		{"restore alone", setOf("restore"), 1, ""},
		{"restore with workers", setOf("restore", "workers"), 4, ""},
		{"restore with checkpointing", setOf("restore", "checkpoint-every", "checkpoint-file"), 1, ""},
		{"restore with verify", setOf("restore", "verify"), 1, "-verify"},
		{"restore with telemetry", setOf("restore", "telemetry"), 1, "-telemetry"},
		{"restore with spans", setOf("restore", "spans"), 1, "-spans"},
		{"manifest alone", setOf("manifest"), 1, ""},
		// -manifest is output-only: it records the run, never changes it, so it
		// is valid even on the restore path.
		{"restore with manifest", setOf("restore", "manifest"), 1, ""},
		{"manifest with full telemetry", setOf("manifest", "telemetry", "trace", "spans"), 1, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			workers := c.workers
			if workers == 0 {
				workers = 1
			}
			err := validateFlags(c.set, workers)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error = %v, want mention of %s", err, c.wantErr)
			}
		})
	}
}

func TestApplyMapsSpansFlags(t *testing.T) {
	cfg := config.New()
	o := runOpts{spansPath: "out/spans.jsonl", spansSample: 0.25, telemetryBin: 500, traceSample: 1.0}
	if err := o.apply(cfg); err != nil {
		t.Fatal(err)
	}
	if !cfg.BoolOr("simulation.telemetry.enabled", false) {
		t.Fatal("-spans must imply -telemetry")
	}
	if got := cfg.StringOr("simulation.telemetry.spans_file", ""); got != "out/spans.jsonl" {
		t.Fatalf("spans_file = %q", got)
	}
	if got := cfg.FloatOr("simulation.telemetry.spans_sample", -1); got != 0.25 {
		t.Fatalf("spans_sample = %v", got)
	}
}

func TestApplyMapsWorkersFlag(t *testing.T) {
	cfg := config.New()
	o := runOpts{workers: 4, telemetryBin: 1000, traceSample: 1.0}
	if err := o.apply(cfg); err != nil {
		t.Fatal(err)
	}
	if got := cfg.UIntOr("simulation.workers", 1); got != 4 {
		t.Fatalf("simulation.workers = %d, want 4", got)
	}
	cfg = config.New()
	o = runOpts{workers: 1, telemetryBin: 1000, traceSample: 1.0}
	if err := o.apply(cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Has("simulation.workers") {
		t.Fatal("-workers 1 must leave simulation.workers unset (config file wins)")
	}
}

func TestApplyWithoutSpansLeavesSettingsUnset(t *testing.T) {
	cfg := config.New()
	o := runOpts{telemetry: true, telemetryBin: 1000, traceSample: 1.0}
	if err := o.apply(cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Has("simulation.telemetry.spans_file") || cfg.Has("simulation.telemetry.spans_sample") {
		t.Fatal("spans settings must stay unset without -spans")
	}
}

// TestRunCheckpointAndRestore drives the full run() path with checkpointing
// enabled, then restores the final snapshot and runs the continuation — the
// CLI wiring for the import/export machinery proven in internal/core.
func TestRunCheckpointAndRestore(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "cfg.json")
	snapPath := filepath.Join(dir, "snap.ssim")
	doc := `{
	  "simulation": {"seed": 11, "verify": {"enabled": true}},
	  "network": {
	    "topology": "torus",
	    "dimensions": [2, 2],
	    "concentration": 1,
	    "channel": {"latency": 2, "period": 1},
	    "injection": {"latency": 1},
	    "router": {"architecture": "input_queued", "num_vcs": 2, "input_buffer_depth": 8}
	  },
	  "workload": {
	    "applications": [{
	      "type": "blast",
	      "injection_rate": 0.1,
	      "message_size": 2,
	      "max_packet_size": 2,
	      "warmup_duration": 100,
	      "sample_duration": 300,
	      "traffic": {"type": "uniform_random"}
	    }]
	  }
	}`
	if err := os.WriteFile(cfgPath, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(cfgPath, nil, runOpts{
		quiet: true, telemetryBin: 1000, traceSample: 1.0, spansSample: 1.0,
		checkpointEvery: 100, checkpointFile: snapPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(snapPath); err != nil || fi.Size() == 0 {
		t.Fatalf("no snapshot written: %v", err)
	}
	// The restored continuation rebuilds from the embedded settings (no config
	// file) and must complete cleanly; -workers 2 exercises the re-partition
	// override on the restore path.
	err = run("", nil, runOpts{
		quiet: true, telemetryBin: 1000, traceSample: 1.0, spansSample: 1.0,
		restorePath: snapPath, workers: 2, workersSet: true,
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunRejectsMismatchedCheckpointConfig covers the config-key validation on
// the run path: checkpoint_every and checkpoint_file must come together.
func TestRunRejectsMismatchedCheckpointConfig(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "cfg.json")
	doc := `{
	  "simulation": {"seed": 1, "checkpoint_every": 100},
	  "network": {
	    "topology": "parking_lot",
	    "routers": 3,
	    "channel": {"latency": 2, "period": 1},
	    "injection": {"latency": 1},
	    "router": {"architecture": "input_queued", "num_vcs": 2, "input_buffer_depth": 8}
	  },
	  "workload": {
	    "applications": [{
	      "type": "blast",
	      "injection_rate": 0.05,
	      "message_size": 2,
	      "max_packet_size": 2,
	      "warmup_duration": 50,
	      "sample_duration": 100,
	      "traffic": {"type": "uniform_random"}
	    }]
	  }
	}`
	if err := os.WriteFile(cfgPath, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(cfgPath, nil, runOpts{quiet: true, telemetryBin: 1000, traceSample: 1.0})
	if err == nil || !strings.Contains(err.Error(), "checkpoint_file") {
		t.Fatalf("error = %v, want checkpoint_file mention", err)
	}
}

// TestRunWritesSpansStream drives the full run() path with a spans file: the
// flag-mapped settings must reach the recorder and produce a parseable stream.
func TestRunWritesSpansStream(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "cfg.json")
	spansPath := filepath.Join(dir, "spans.jsonl")
	doc := `{
	  "simulation": {"seed": 7},
	  "network": {
	    "topology": "torus",
	    "dimensions": [2, 2],
	    "concentration": 1,
	    "channel": {"latency": 2, "period": 1},
	    "injection": {"latency": 1},
	    "router": {"architecture": "input_queued", "num_vcs": 2, "input_buffer_depth": 8}
	  },
	  "workload": {
	    "applications": [{
	      "type": "blast",
	      "injection_rate": 0.1,
	      "message_size": 2,
	      "max_packet_size": 2,
	      "warmup_duration": 100,
	      "sample_duration": 300,
	      "traffic": {"type": "uniform_random"}
	    }]
	  }
	}`
	if err := os.WriteFile(cfgPath, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(cfgPath, nil, runOpts{
		quiet: true, spansPath: spansPath, spansSample: 1.0, telemetryBin: 1000, traceSample: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(spansPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	records := 0
	hdr, err := telemetry.ReadSpans(f, func(rec telemetry.SpanRecord) error {
		records++
		if rec.ComponentSum() != rec.E2E {
			t.Errorf("message %d decomposition inexact: %+v", rec.Msg, rec)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Sample != 1.0 || records == 0 {
		t.Fatalf("spans stream: sample %v, %d records", hdr.Sample, records)
	}
}

// TestRunWritesManifest drives run() with every artifact stream enabled plus
// -manifest: the manifest must tie each artifact to the run with a digest
// that verifies against the actual files.
func TestRunWritesManifest(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "cfg.json")
	doc := `{
	  "simulation": {"seed": 7},
	  "network": {
	    "topology": "torus",
	    "dimensions": [2, 2],
	    "concentration": 1,
	    "channel": {"latency": 2, "period": 1},
	    "injection": {"latency": 1},
	    "router": {"architecture": "input_queued", "num_vcs": 2, "input_buffer_depth": 8}
	  },
	  "workload": {
	    "applications": [{
	      "type": "blast",
	      "injection_rate": 0.1,
	      "message_size": 2,
	      "max_packet_size": 2,
	      "warmup_duration": 100,
	      "sample_duration": 300,
	      "traffic": {"type": "uniform_random"}
	    }]
	  }
	}`
	if err := os.WriteFile(cfgPath, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	manifestPath := filepath.Join(dir, "run.manifest.json")
	err := run(cfgPath, nil, runOpts{
		quiet:         true,
		logPath:       filepath.Join(dir, "log.txt"),
		spansPath:     filepath.Join(dir, "spans.jsonl"),
		telemetryFile: filepath.Join(dir, "telemetry.jsonl"),
		spansSample:   1.0, telemetryBin: 1000, traceSample: 1.0,
		manifestPath: manifestPath,
		flags:        map[string]string{"log": "log.txt", "spans": "spans.jsonl"},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := manifest.LoadFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.ConfigHash) != 64 || m.Seed != 7 || m.Workers != 1 {
		t.Fatalf("provenance header %+v", m)
	}
	if m.SimTicks == 0 || m.Events == 0 {
		t.Fatalf("run results missing: %+v", m)
	}
	if m.StartedAt == "" {
		t.Fatal("started_at missing on the CLI path")
	}
	if m.Flags["log"] != "log.txt" {
		t.Fatalf("flags %+v", m.Flags)
	}
	if m.Metrics["app0_samples"] == 0 || m.Metrics["app0_latency_mean"] == 0 {
		t.Fatalf("metrics %+v", m.Metrics)
	}
	roles := map[string]bool{}
	for _, a := range m.Artifacts {
		roles[a.Role] = true
	}
	for _, want := range []string{"log", "telemetry", "spans"} {
		if !roles[want] {
			t.Fatalf("artifact role %s missing: %+v", want, m.Artifacts)
		}
	}
	if roles["checkpoint"] || roles["trace"] {
		t.Fatalf("unrequested artifacts recorded: %+v", m.Artifacts)
	}
	// Every digest must verify against the files the run actually wrote.
	if err := m.VerifyArtifacts(dir); err != nil {
		t.Fatal(err)
	}
}

// TestRunManifestDeterministicModuloWallClock: two identical runs produce
// manifests that agree on every field except the two documented wall-clock
// readings.
func TestRunManifestDeterministicModuloWallClock(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "cfg.json")
	doc := `{
	  "simulation": {"seed": 3},
	  "network": {
	    "topology": "parking_lot",
	    "routers": 3,
	    "channel": {"latency": 2, "period": 1},
	    "injection": {"latency": 1},
	    "router": {"architecture": "input_queued", "num_vcs": 2, "input_buffer_depth": 8}
	  },
	  "workload": {
	    "applications": [{
	      "type": "blast",
	      "injection_rate": 0.05,
	      "message_size": 2,
	      "max_packet_size": 2,
	      "warmup_duration": 50,
	      "sample_duration": 100,
	      "traffic": {"type": "uniform_random"}
	    }]
	  }
	}`
	if err := os.WriteFile(cfgPath, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	render := func(name string) []byte {
		path := filepath.Join(dir, name)
		err := run(cfgPath, nil, runOpts{
			quiet: true, telemetryBin: 1000, traceSample: 1.0,
			logPath:      filepath.Join(dir, "log.txt"),
			manifestPath: path,
			flags:        map[string]string{"log": "log.txt", "manifest": "run.manifest.json"},
		})
		if err != nil {
			t.Fatal(err)
		}
		m, err := manifest.LoadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		m.StartedAt, m.WallSec = "", 0
		var buf bytes.Buffer
		if err := m.Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render("a.manifest.json"), render("b.manifest.json")
	if !bytes.Equal(a, b) {
		t.Fatalf("manifests differ beyond wall-clock fields:\n%s\n---\n%s", a, b)
	}
}

// TestManifestSurvivesCheckpointRestore: a restored continuation writes a
// manifest that agrees with the uninterrupted run's on provenance and final
// results — the checkpoint round trip loses nothing the manifest records
// (events excepted: a restored run counts only post-restore events).
func TestManifestSurvivesCheckpointRestore(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "cfg.json")
	snapPath := filepath.Join(dir, "snap.ssim")
	doc := `{
	  "simulation": {"seed": 11},
	  "network": {
	    "topology": "torus",
	    "dimensions": [2, 2],
	    "concentration": 1,
	    "channel": {"latency": 2, "period": 1},
	    "injection": {"latency": 1},
	    "router": {"architecture": "input_queued", "num_vcs": 2, "input_buffer_depth": 8}
	  },
	  "workload": {
	    "applications": [{
	      "type": "blast",
	      "injection_rate": 0.1,
	      "message_size": 2,
	      "max_packet_size": 2,
	      "warmup_duration": 100,
	      "sample_duration": 300,
	      "traffic": {"type": "uniform_random"}
	    }]
	  }
	}`
	if err := os.WriteFile(cfgPath, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	full := filepath.Join(dir, "full.manifest.json")
	err := run(cfgPath, nil, runOpts{
		quiet: true, telemetryBin: 1000, traceSample: 1.0,
		checkpointEvery: 100, checkpointFile: snapPath,
		manifestPath: full,
	})
	if err != nil {
		t.Fatal(err)
	}
	restored := filepath.Join(dir, "restored.manifest.json")
	err = run("", nil, runOpts{
		quiet: true, telemetryBin: 1000, traceSample: 1.0,
		restorePath:  snapPath,
		manifestPath: restored,
	})
	if err != nil {
		t.Fatal(err)
	}
	mf, err := manifest.LoadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := manifest.LoadFile(restored)
	if err != nil {
		t.Fatal(err)
	}
	if mf.ConfigHash != mr.ConfigHash {
		t.Fatalf("config hash changed across restore:\n%s\n%s", mf.ConfigHash, mr.ConfigHash)
	}
	if mf.Seed != mr.Seed || mf.Workers != mr.Workers || mf.SimTicks != mr.SimTicks {
		t.Fatalf("provenance diverged: %+v vs %+v", mf, mr)
	}
	for _, k := range []string{"app0_samples", "app0_latency_mean", "app0_latency_p50", "app0_latency_p99"} {
		if mf.Metrics[k] != mr.Metrics[k] {
			t.Fatalf("metric %s diverged: %v vs %v", k, mf.Metrics[k], mr.Metrics[k])
		}
	}
	// The full run recorded its final checkpoint as an artifact; the restored
	// run re-checkpointed over the same file, so re-verification must use the
	// restored manifest.
	if err := mr.VerifyArtifacts(dir); err != nil {
		t.Fatal(err)
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"supersim/internal/config"
	"supersim/internal/telemetry"
)

func setOf(names ...string) map[string]bool {
	m := map[string]bool{}
	for _, n := range names {
		m[n] = true
	}
	return m
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		set     map[string]bool
		workers uint
		wantErr string // empty = valid
	}{
		{"no flags", setOf(), 1, ""},
		{"trace with sample", setOf("trace", "trace-sample"), 1, ""},
		{"trace-sample alone", setOf("trace-sample"), 1, "-trace-sample"},
		{"spans with sample", setOf("spans", "spans-sample"), 1, ""},
		{"spans-sample alone", setOf("spans-sample"), 1, "-spans-sample"},
		{"spans-sample with only trace", setOf("trace", "spans-sample"), 1, "-spans-sample"},
		{"bin alone", setOf("telemetry-bin"), 1, "-telemetry-bin"},
		{"bin with log only", setOf("telemetry-bin", "log"), 1, "-telemetry-bin"},
		{"bin with telemetry", setOf("telemetry-bin", "telemetry"), 1, ""},
		{"bin with telemetry-file", setOf("telemetry-bin", "telemetry-file"), 1, ""},
		{"bin with telemetry-addr", setOf("telemetry-bin", "telemetry-addr"), 1, ""},
		{"bin with trace", setOf("telemetry-bin", "trace"), 1, ""},
		{"bin with spans", setOf("telemetry-bin", "spans"), 1, ""},
		{"workers serial with trace", setOf("trace", "workers"), 1, ""},
		{"workers parallel", setOf("workers"), 4, ""},
		{"workers parallel with telemetry", setOf("workers", "telemetry"), 4, ""},
		{"workers parallel with trace", setOf("trace", "workers"), 2, "-workers"},
		{"workers parallel with spans", setOf("spans", "workers"), 2, "-workers"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			workers := c.workers
			if workers == 0 {
				workers = 1
			}
			err := validateFlags(c.set, workers)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error = %v, want mention of %s", err, c.wantErr)
			}
		})
	}
}

func TestApplyMapsSpansFlags(t *testing.T) {
	cfg := config.New()
	o := runOpts{spansPath: "out/spans.jsonl", spansSample: 0.25, telemetryBin: 500, traceSample: 1.0}
	if err := o.apply(cfg); err != nil {
		t.Fatal(err)
	}
	if !cfg.BoolOr("simulation.telemetry.enabled", false) {
		t.Fatal("-spans must imply -telemetry")
	}
	if got := cfg.StringOr("simulation.telemetry.spans_file", ""); got != "out/spans.jsonl" {
		t.Fatalf("spans_file = %q", got)
	}
	if got := cfg.FloatOr("simulation.telemetry.spans_sample", -1); got != 0.25 {
		t.Fatalf("spans_sample = %v", got)
	}
}

func TestApplyMapsWorkersFlag(t *testing.T) {
	cfg := config.New()
	o := runOpts{workers: 4, telemetryBin: 1000, traceSample: 1.0}
	if err := o.apply(cfg); err != nil {
		t.Fatal(err)
	}
	if got := cfg.UIntOr("simulation.workers", 1); got != 4 {
		t.Fatalf("simulation.workers = %d, want 4", got)
	}
	cfg = config.New()
	o = runOpts{workers: 1, telemetryBin: 1000, traceSample: 1.0}
	if err := o.apply(cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Has("simulation.workers") {
		t.Fatal("-workers 1 must leave simulation.workers unset (config file wins)")
	}
}

func TestApplyWithoutSpansLeavesSettingsUnset(t *testing.T) {
	cfg := config.New()
	o := runOpts{telemetry: true, telemetryBin: 1000, traceSample: 1.0}
	if err := o.apply(cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Has("simulation.telemetry.spans_file") || cfg.Has("simulation.telemetry.spans_sample") {
		t.Fatal("spans settings must stay unset without -spans")
	}
}

// TestRunWritesSpansStream drives the full run() path with a spans file: the
// flag-mapped settings must reach the recorder and produce a parseable stream.
func TestRunWritesSpansStream(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "cfg.json")
	spansPath := filepath.Join(dir, "spans.jsonl")
	doc := `{
	  "simulation": {"seed": 7},
	  "network": {
	    "topology": "torus",
	    "dimensions": [2, 2],
	    "concentration": 1,
	    "channel": {"latency": 2, "period": 1},
	    "injection": {"latency": 1},
	    "router": {"architecture": "input_queued", "num_vcs": 2, "input_buffer_depth": 8}
	  },
	  "workload": {
	    "applications": [{
	      "type": "blast",
	      "injection_rate": 0.1,
	      "message_size": 2,
	      "max_packet_size": 2,
	      "warmup_duration": 100,
	      "sample_duration": 300,
	      "traffic": {"type": "uniform_random"}
	    }]
	  }
	}`
	if err := os.WriteFile(cfgPath, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(cfgPath, nil, runOpts{
		quiet: true, spansPath: spansPath, spansSample: 1.0, telemetryBin: 1000, traceSample: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(spansPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	records := 0
	hdr, err := telemetry.ReadSpans(f, func(rec telemetry.SpanRecord) error {
		records++
		if rec.ComponentSum() != rec.E2E {
			t.Errorf("message %d decomposition inexact: %+v", rec.Msg, rec)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Sample != 1.0 || records == 0 {
		t.Fatalf("spans stream: sample %v, %d records", hdr.Sample, records)
	}
}

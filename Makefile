# SuperSim build/test/benchmark entry points.
#
#   make ci      - everything a merge must pass: build, vet, tests, and the
#                  race detector on the two concurrent packages
#   make bench   - the paper's table/figure benchmark suite with -benchmem
#   make micro   - the standalone hot-structure micro-benchmarks

GO ?= go

.PHONY: all build vet test race ci bench micro

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# internal/taskrun and internal/sweep run simulations on worker goroutines;
# they are the only packages with cross-goroutine traffic, so they get the
# race detector (everything else is single-threaded by design).
race:
	$(GO) test -race ./internal/taskrun ./internal/sweep

ci: build vet test race

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem .

micro:
	$(GO) test -run='^$$' -bench='BenchmarkNewMessage|BenchmarkPoolNewMessage' -benchmem ./internal/types
	$(GO) test -run='^$$' -bench='BenchmarkEventHeapPushPop|BenchmarkHeapChurn' -benchmem ./internal/sim
	$(GO) test -run='^$$' -bench=. -benchmem ./internal/arbiter ./internal/stats

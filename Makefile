# SuperSim build/test/benchmark entry points.
#
#   make ci      - everything a merge must pass: build, vet, sslint, tests
#                  (which include the fuzz seed corpora and golden-trace
#                  conformance runs), and the race detector over every package
#   make lint    - sslint, the simulator-aware static analysis suite
#                  (determinism, hotpath, probeguard, factoryreg,
#                  snapshotcomplete, shardsafety; see cmd/sslint and
#                  TESTING.md). Runs the fixture self-check first, then the
#                  repo, and writes the findings artifact sslint.findings.json
#   make lint-rules - list the active sslint rules with their one-line docs
#   make cover   - per-package statement coverage against the committed floors
#                  in coverage_floors.txt
#   make test-import-export - checkpoint/restore equivalence under -race: the
#                  simulation-after-import harness, cross-worker restores,
#                  and byte-exact snapshot round-trips
#   make fuzz    - short live fuzzing session on the config parsers
#   make bench   - the paper's table/figure benchmark suite with -benchmem
#   make micro   - the standalone hot-structure micro-benchmarks
#   make sweep-smoke - fleet-observability smoke: a tiny two-point sweep with
#                  journal, manifests and the live dashboard enabled, every
#                  downstream consumer (ssparse -tasks, ssplot taskgantt, the
#                  /sweep and /metrics endpoints) driven over its artifacts,
#                  then the bench-guard re-run to prove the instrumentation
#                  kept the disabled hot path under the committed ceiling
#   make bench-guard - allocation-regression guard: BenchmarkFigure5 (and the
#                  explicit workers=1 path) with telemetry disabled must stay
#                  under the ceiling committed in bench_ceiling.txt; also
#                  reports the traced workers=2 path informationally
#   make bench-guard-spans - the guard plus an informational run of the
#                  span-instrumented BenchmarkFigure5Spans (never enforced)
#   make bench-parallel - the Figure 5 transient at -workers 1/2/4 on the
#                  sharded engine (wall-clock is informational and
#                  hardware-dependent; results are identical at every count)

GO ?= go

.PHONY: all build vet lint lint-rules test race cover fuzz ci test-import-export bench micro bench-guard bench-guard-spans bench-parallel sweep-smoke

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Simulator-aware static analysis: determinism, hot-path allocation
# discipline, probe hygiene, factory-registration coverage, snapshot
# completeness and shard safety. The fixture self-check replays the
# want-comment fixture packages so a drifted rule fails here, not just in
# `go test`; the repo run then writes its findings as a JSON artifact for CI
# consumption. The baseline file holds accepted findings (currently none);
# stale entries fail the run.
lint:
	$(GO) run ./cmd/sslint -fixtures
	$(GO) run ./cmd/sslint -baseline sslint.baseline -json-out sslint.findings.json ./...

lint-rules:
	$(GO) run ./cmd/sslint -list-rules

test:
	$(GO) test ./...

# The simulator proper is single-threaded by design, but taskrun/sweep drive
# it from worker goroutines and nothing stops a future package from doing the
# same — so CI races everything, not just the packages known to be concurrent.
race:
	$(GO) test -race ./...

# Per-package statement coverage with committed floors: a drop below any
# package's floor in coverage_floors.txt fails the target.
cover:
	sh scripts/check_cover.sh coverage_floors.txt

# Short live fuzzing session on the config loader and override parser. The
# committed seed corpora under internal/config/testdata/fuzz run on every
# plain `go test`; this target actually explores beyond them.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzLoadConfig -fuzztime=10s ./internal/config
	$(GO) test -run='^$$' -fuzz=FuzzSettingsOverride -fuzztime=10s ./internal/config

# Checkpoint/restore equivalence: the simulation-after-import harness (all
# golden topologies, serial and sharded), the cross-worker restore matrix,
# byte-exact snapshot round-trips, and the randomized checkpoint sweep — under
# the race detector, since restore re-partitions across shards.
test-import-export:
	$(GO) test -race -count=1 -run='TestCheckpointedRunMatchesGolden|TestSimulationAfterImport|TestRestoreAcrossWorkerCounts|TestSnapshotRoundTrip|TestRandomizedCheckpointRestore' ./internal/core
	$(GO) test -count=1 ./internal/snapshot

ci: build vet lint test race test-import-export bench-guard sweep-smoke

# Fleet-observability smoke: the sweep→journal→manifest→parse→plot→dashboard
# pipeline end-to-end, then the allocation guard against the unchanged
# ceiling — observability must stay free when disabled. See
# scripts/sweep_smoke.sh.
sweep-smoke:
	sh scripts/sweep_smoke.sh
	sh scripts/bench_guard.sh bench_ceiling.txt

# Hot-path allocation guard: the telemetry subsystem's "zero overhead when
# disabled" claim, enforced. See scripts/bench_guard.sh.
bench-guard:
	sh scripts/bench_guard.sh bench_ceiling.txt

# Same guard, plus the span-instrumented variant for overhead measurement
# (reported informationally, recorded in EXPERIMENTS.md; not part of ci).
bench-guard-spans:
	sh scripts/bench_guard.sh bench_ceiling.txt spans

# Serial-vs-parallel wall-clock on the Figure 5 transient. Informational:
# speedup depends on the host's core count (see EXPERIMENTS.md); correctness
# at every worker count is enforced by the golden-conformance tests instead.
bench-parallel:
	$(GO) test -run='^$$' -bench='BenchmarkFigure5Workers' -benchtime=1x -benchmem .

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem .

micro:
	$(GO) test -run='^$$' -bench='BenchmarkNewMessage|BenchmarkPoolNewMessage' -benchmem ./internal/types
	$(GO) test -run='^$$' -bench='BenchmarkEventHeapPushPop|BenchmarkHeapChurn' -benchmem ./internal/sim
	$(GO) test -run='^$$' -bench=. -benchmem ./internal/arbiter ./internal/stats

package diagnose_test

import (
	"fmt"
	"strings"
	"testing"

	"supersim/internal/config"
	"supersim/internal/core"
	"supersim/internal/diagnose"
)

// congestedDoc builds a small torus under tornado traffic at a rate well past
// saturation, so that mid-run the terminals are backed up and the network is
// full of head-of-line waits — the state a stall report describes.
func congestedDoc(routerBlock string, rate float64) string {
	return fmt.Sprintf(`{
	  "simulation": {"seed": 42},
	  "network": {
	    "topology": "torus",
	    "dimensions": [4, 4],
	    "concentration": 1,
	    "channel": {"latency": 4, "period": 1},
	    "injection": {"latency": 2},
	    "router": %s
	  },
	  "workload": {
	    "applications": [{
	      "type": "blast",
	      "injection_rate": %g,
	      "message_size": 4,
	      "max_packet_size": 2,
	      "warmup_duration": 300,
	      "sample_duration": 800,
	      "traffic": {"type": "tornado", "widths": [4, 4], "concentration": 1}
	    }]
	  }
	}`, routerBlock, rate)
}

var routerBlocks = map[string]string{
	"input_queued": `{
	  "architecture": "input_queued",
	  "num_vcs": 4,
	  "input_buffer_depth": 8,
	  "crossbar_latency": 2
	}`,
	"output_queued": `{
	  "architecture": "output_queued",
	  "num_vcs": 4,
	  "input_buffer_depth": 8,
	  "queue_latency": 2,
	  "output_queue_depth": 1
	}`,
	"input_output_queued": `{
	  "architecture": "input_output_queued",
	  "num_vcs": 4,
	  "input_buffer_depth": 8,
	  "crossbar_latency": 2,
	  "output_queue_depth": 4,
	  "speedup": 1
	}`,
}

// TestReportOnCongestedNetwork freezes a saturated run mid-flight and checks
// the report names backed-up terminals and walks into the routers, on every
// router architecture.
func TestReportOnCongestedNetwork(t *testing.T) {
	for name, rb := range routerBlocks {
		t.Run(name, func(t *testing.T) {
			sm := core.Build(config.MustParse(congestedDoc(rb, 0.9)))
			sm.Sim.RunUntil(800)
			rep := diagnose.New(sm.Net).Report()
			if !strings.Contains(rep, "stall diagnosis") {
				t.Fatalf("report missing banner:\n%s", rep)
			}
			if !strings.Contains(rep, "terminal ") || !strings.Contains(rep, "packets queued") {
				t.Errorf("report names no backed-up terminal:\n%s", rep)
			}
			if !strings.Contains(rep, "router ") {
				t.Errorf("report never walks into a router:\n%s", rep)
			}
			// A saturated tornado pattern must produce real head-of-line
			// state, not only in-transit hedges.
			if !strings.Contains(rep, "occ ") {
				t.Errorf("report shows no occupied input VCs:\n%s", rep)
			}
		})
	}
}

// TestReportOnDrainedNetwork runs a light load to completion: with every
// queue empty the report must say so rather than invent chains.
func TestReportOnDrainedNetwork(t *testing.T) {
	sm := core.Build(config.MustParse(congestedDoc(routerBlocks["input_queued"], 0.1)))
	if _, err := sm.Run(); err != nil {
		t.Fatal(err)
	}
	rep := diagnose.New(sm.Net).Report()
	if !strings.Contains(rep, "no occupied queues found") {
		t.Fatalf("drained network should report no chains:\n%s", rep)
	}
}

// TestReportIsReadOnly takes a report mid-run and checks the simulation still
// completes and passes its post-drain quiescence checks — the walk must not
// perturb any component state.
func TestReportIsReadOnly(t *testing.T) {
	sm := core.Build(config.MustParse(congestedDoc(routerBlocks["input_queued"], 0.3)))
	sm.Sim.RunUntil(600)
	before := diagnose.New(sm.Net).Report()
	if _, err := sm.Run(); err != nil {
		t.Fatalf("run failed after mid-flight report: %v (report was:\n%s)", err, before)
	}
}

// Package diagnose renders human-readable blocked-chain reports when the
// verify watchdog detects that no flit has moved for a full epoch. Where the
// occupancy dump says *what* is full, the diagnostician says *why*: starting
// from each backed-up terminal it walks the head-of-line dependency chain —
// interface queue → router input VC → the output VC or downstream credit the
// head flit waits on → the input VC holding that resource — until the chain
// reaches a transient wait (progress imminent, so the stall is elsewhere),
// leaves the visible network state (flits or credits in transit on a
// channel), or closes on itself, which is the signature of a credit-
// dependency deadlock.
//
// The walk is read-only over accessors every router architecture exposes
// (router.HOL, router.OutputChannel, the interface queue inspectors), so a
// report can be taken from any live simulation without perturbing it.
package diagnose

import (
	"fmt"
	"strings"

	"supersim/internal/network"
	"supersim/internal/router"
	"supersim/internal/types"
)

const (
	// maxDepth bounds one chain's length; a chain longer than any credit
	// loop in a sane network means the walk is cycling through fresh state,
	// so truncate rather than flood the report.
	maxDepth = 64
	// maxChains bounds the report size on large networks where hundreds of
	// terminals back up behind the same hotspot.
	maxChains = 16
)

// Diagnostician walks head-of-line dependency chains over a built network.
type Diagnostician struct {
	net network.Network
}

// New creates a diagnostician for the network. core.Build registers its
// Report with the verifier's watchdog.
func New(net network.Network) *Diagnostician { return &Diagnostician{net: net} }

type visitKey struct{ router, port, vc int }

// Report renders the blocked-chain report: one chain per backed-up terminal,
// then chains starting at any still-unvisited occupied router input VC
// (stalls that are wholly router-resident), capped at maxChains.
func (d *Diagnostician) Report() string {
	var b strings.Builder
	b.WriteString("stall diagnosis: head-of-line dependency chains\n")
	visited := make(map[visitKey]bool)
	chains := 0
	for t := 0; t < d.net.NumTerminals() && chains < maxChains; t++ {
		ifc := d.net.Interface(t)
		if ifc.QueueDepth() == 0 {
			continue
		}
		chains++
		fmt.Fprintf(&b, "terminal %d: %d packets queued", t, ifc.QueueDepth())
		if pkt := ifc.HeadPacket(); pkt != nil {
			fmt.Fprintf(&b, ", head %v", pkt)
		}
		fmt.Fprintf(&b, ", injection credits %v\n", ifc.InjectionCredits())
		sink, port := ifc.OutputChannel().Sink()
		d.walk(&b, visited, sink, port, -1)
	}
	for i := 0; i < d.net.NumRouters() && chains < maxChains; i++ {
		r := d.net.Router(i)
		for port := 0; port < r.Radix() && chains < maxChains; port++ {
			for vc := 0; vc < r.NumVCs() && chains < maxChains; vc++ {
				if visited[visitKey{r.ID(), port, vc}] {
					continue
				}
				if r.HOL(port, vc).Phase == router.HOLEmpty {
					continue
				}
				chains++
				b.WriteString("router-resident chain:\n")
				d.walk(&b, visited, r, port, vc)
			}
		}
	}
	if chains == 0 {
		b.WriteString("no occupied queues found — flits or credits in transit on channels\n")
	} else if chains == maxChains {
		fmt.Fprintf(&b, "(report capped at %d chains)\n", maxChains)
	}
	return b.String()
}

// walk follows one dependency chain. vc < 0 means the hop was reached over a
// channel whose arriving VC is unknown (a terminal's injection link); the
// walk then continues at the port's most occupied input VC.
func (d *Diagnostician) walk(b *strings.Builder, visited map[visitKey]bool, sink types.FlitSink, port, vc int) {
	for depth := 0; depth < maxDepth; depth++ {
		r, ok := sink.(router.Router)
		if !ok {
			b.WriteString("  -> ejection interface: flits or credits in transit\n")
			return
		}
		if vc < 0 {
			best, bestOcc := -1, 0
			for v := 0; v < r.NumVCs(); v++ {
				if occ := r.HOL(port, v).Occupancy; occ > bestOcc {
					best, bestOcc = v, occ
				}
			}
			if best < 0 {
				fmt.Fprintf(b, "  -> router %d port %d: input buffers empty — flits or credits in transit\n", r.ID(), port)
				return
			}
			vc = best
		}
		key := visitKey{r.ID(), port, vc}
		if visited[key] {
			fmt.Fprintf(b, "  !! chain closes on router %d in(port %d, vc %d) — credit-dependency cycle (deadlock)\n",
				r.ID(), port, vc)
			return
		}
		visited[key] = true
		st := r.HOL(port, vc)
		switch st.Phase {
		case router.HOLEmpty:
			fmt.Fprintf(b, "  -> router %d in(port %d, vc %d): empty — flits or credits in transit\n",
				r.ID(), port, vc)
			return
		case router.HOLRouting:
			fmt.Fprintf(b, "  -> router %d in(port %d, vc %d): occ %d, head %v, route computation in flight\n",
				r.ID(), port, vc, st.Occupancy, st.Flit)
			return
		case router.HOLAwaitingVC:
			fmt.Fprintf(b, "  -> router %d in(port %d, vc %d): occ %d, head %v, awaiting VC on out port %d (want vcs %v)",
				r.ID(), port, vc, st.Occupancy, st.Flit, st.WantPort, st.WantVCs)
			if st.HolderPort < 0 {
				b.WriteString(" — a wanted VC is free, grant imminent\n")
				return
			}
			fmt.Fprintf(b, ", held by in(port %d, vc %d)\n", st.HolderPort, st.HolderVC)
			port, vc = st.HolderPort, st.HolderVC
			continue // same router, the holder's own dependency
		case router.HOLAllocated:
			fmt.Fprintf(b, "  -> router %d in(port %d, vc %d): occ %d, head %v, allocated out(port %d, vc %d), credits %d/%d",
				r.ID(), port, vc, st.Occupancy, st.Flit, st.OutPort, st.OutVC, st.Credits, st.CreditCap)
			if st.OutDepth >= 0 {
				fmt.Fprintf(b, ", outq %d", st.OutQueued)
				if st.OutDepth > 0 {
					fmt.Fprintf(b, "/%d", st.OutDepth)
				}
			}
			if st.Credits > 0 {
				b.WriteString(" — credits available, progress imminent\n")
				return
			}
			b.WriteString("\n")
			ch := r.OutputChannel(st.OutPort)
			if ch == nil {
				b.WriteString("  -> output port unconnected\n")
				return
			}
			sink, port = ch.Sink()
			vc = st.OutVC // credits owed by the downstream buffer on this VC
			continue
		default:
			fmt.Fprintf(b, "  -> router %d in(port %d, vc %d): unknown phase %q\n", r.ID(), port, vc, st.Phase)
			return
		}
	}
	fmt.Fprintf(b, "  ... chain truncated at %d hops\n", maxDepth)
}

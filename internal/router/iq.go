package router

import (
	"supersim/internal/config"
	"supersim/internal/crossbar"
	"supersim/internal/routing"
	"supersim/internal/sim"
	"supersim/internal/telemetry"
	"supersim/internal/types"
)

func init() {
	Registry.Register("input_queued", func(s *sim.Simulator, name string, cfg *config.Settings, p Params) Router {
		return NewIQ(s, name, cfg, p)
	})
}

// routeState values for the head packet of an input VC.
const (
	rsIdle = iota
	rsPending
	rsDone
)

// inputVC is the per-(input port, VC) queue and the pipeline state of its
// head packet.
type inputVC struct {
	q          flitQueue
	routeState int
	resp       routing.Response
	outPort    int  // allocated output port, -1 until VC allocation
	outVC      int  // allocated output VC, -1 until VC allocation
	granted    bool // transient grant mark used within one allocateVCs pass
}

// IQ is the input-queued router architecture modeled after the standard
// input-queued architecture in Dally & Towles: per-VC input buffers, a
// routing engine per input port, VC allocation, and crossbar scheduling with
// full input speedup (inputs never conflict; only outputs arbitrate). Flits
// wait in the input queues until downstream (next hop) credits are
// available. The crossbar scheduler's flow control technique (flit-buffer,
// packet-buffer, winner-take-all) is a configuration setting.
type IQ struct {
	base
	routingLat uint64 // core cycles, >= 1
	xbar       *crossbar.Crossbar

	dl            delayLine
	in            []inputVC
	holder        [][]int // [port][vc] -> client holding the output VC, -1 free
	vcPending     []int   // clients awaiting output VC allocation
	vcOrder       []int   // allocateVCs ordering scratch, capacity len(in)
	vcRotate      int
	vcAgeOrder    bool // VC scheduler policy: age_based instead of round_robin
	sched         []*xbarSched
	nextChanStart []sim.Tick // per output port: earliest channel inject tick
}

// NewIQ builds an input-queued router from its settings block.
func NewIQ(s *sim.Simulator, name string, cfg *config.Settings, p Params) *IQ {
	r := &IQ{base: newBase(s, name, cfg, p)}
	r.routingLat = cfg.UIntOr("routing_latency", 1)
	if r.routingLat < 1 {
		r.Panicf("routing_latency must be at least one cycle")
	}
	xbarLat := sim.Tick(cfg.UIntOr("crossbar_latency", 1))
	if xbarLat < 1 {
		r.Panicf("crossbar_latency must be at least one tick")
	}
	r.xbar = crossbar.New(r.radix, xbarLat, r.coreClock.Period(), 1)
	r.in = make([]inputVC, r.radix*r.vcs)
	r.vcOrder = make([]int, len(r.in))
	for i := range r.in {
		r.in[i].outPort, r.in[i].outVC = -1, -1
	}
	r.holder = make([][]int, r.radix)
	for port := range r.holder {
		r.holder[port] = make([]int, r.vcs)
		for vc := range r.holder[port] {
			r.holder[port][vc] = -1
		}
	}
	mk := schedFromConfig(cfg, r.rng)
	r.sched = make([]*xbarSched, r.radix)
	for port := range r.sched {
		r.sched[port] = mk()
	}
	r.vcAgeOrder = parseVCPolicy(cfg)
	r.nextChanStart = make([]sim.Tick, r.radix)
	return r
}

func (r *IQ) client(port, vc int) int   { return port*r.vcs + vc }
func (r *IQ) clientPort(client int) int { return client / r.vcs }
func (r *IQ) clientVC(client int) int   { return client % r.vcs }

// ReceiveFlit accepts a flit from an input channel.
func (r *IQ) ReceiveFlit(port int, f *types.Flit) {
	r.checkPort(port)
	if f.VC < 0 || f.VC >= r.vcs {
		r.Panicf("%v arrived on unregistered VC", f)
	}
	iv := &r.in[r.client(port, f.VC)]
	if iv.q.len() >= r.bufDepth {
		r.Panicf("input buffer overrun on port %d vc %d", port, f.VC)
	}
	iv.q.push(f)
	r.noteArrival(port, f.VC)
	r.maybeStartRoute(r.client(port, f.VC))
	r.schedulePipeline()
}

// ReceiveCredit accepts a downstream credit for an output port.
func (r *IQ) ReceiveCredit(port int, c types.Credit) {
	r.checkPort(port)
	r.returnDownstreamCredit(port, c.VC)
	r.schedulePipeline()
}

// maybeStartRoute launches route computation when an input VC's queue head
// is an unrouted head flit.
func (r *IQ) maybeStartRoute(client int) {
	iv := &r.in[client]
	f := iv.q.peek()
	if f == nil || !f.Head || iv.routeState != rsIdle {
		return
	}
	iv.routeState = rsPending
	now := r.Sim().Now()
	done := r.coreClock.FutureEdge(now.Tick+1, r.routingLat-1)
	r.Sim().Schedule(r, sim.Time{Tick: done}, evRouteDone, client)
}

func (r *IQ) schedulePipeline() {
	if r.pipelineScheduled {
		return
	}
	now := r.Sim().Now()
	t := sim.Time{Tick: r.coreClock.NextEdge(now.Tick), Eps: 1}
	if !now.Before(t) {
		t = sim.Time{Tick: r.coreClock.NextEdge(now.Tick + 1), Eps: 1}
	}
	r.pipelineScheduled = true
	r.Sim().Schedule(r, t, evPipeline, nil)
}

// ProcessEvent dispatches the router's events.
func (r *IQ) ProcessEvent(ev *sim.Event) {
	switch ev.Type {
	case evPipeline:
		r.pipelineScheduled = false
		r.pipeline()
	case evRouteDone:
		r.routeDone(ev.Context.(int))
	case evXbarArrive:
		r.drainFlights()
	default:
		r.Panicf("unknown event type %d", ev.Type)
	}
}

// pushFlight enqueues a crossbar traversal, arming the delay line event.
func (r *IQ) pushFlight(at sim.Tick, f *types.Flit, port int) {
	r.dl.push(at, f, port)
	if !r.dl.scheduled {
		r.dl.scheduled = true
		r.Sim().Schedule(r, sim.Time{Tick: at}, evXbarArrive, nil)
	}
}

// drainFlights injects every traversal completing now into its channel.
func (r *IQ) drainFlights() {
	now := r.Sim().Now().Tick
	for {
		at, ok := r.dl.next()
		if !ok {
			r.dl.scheduled = false
			return
		}
		if at > now {
			r.Sim().Schedule(r, sim.Time{Tick: at}, evXbarArrive, nil)
			return
		}
		fl := r.dl.pop()
		if r.sp != nil && r.sp.Tracked(fl.f) {
			// Crossbar traversal ends at channel entry.
			r.sp.Step(r.Sim(), now, fl.f, telemetry.SpanXbar)
		}
		r.outCh[fl.port].Inject(fl.f)
	}
}

func (r *IQ) routeDone(client int) {
	iv := &r.in[client]
	if iv.routeState != rsPending {
		r.Panicf("route completion in state %d", iv.routeState)
	}
	f := iv.q.peek()
	if f == nil || !f.Head {
		r.Panicf("route completion without head flit at queue head")
	}
	now := r.Sim().Now()
	resp := r.algs[r.clientPort(client)].Route(now.Tick, f.Pkt, r.clientPort(client), r.clientVC(client))
	r.validateResponse(resp, f.Pkt)
	iv.resp = resp
	iv.routeState = rsDone
	r.vcPending = append(r.vcPending, client)
	r.schedulePipeline()
}

func (r *IQ) pipeline() {
	now := r.Sim().Now().Tick
	progress := false
	// Stage 1: VC allocation (the VC scheduler).
	var vcProgress bool
	vcBefore := len(r.vcPending)
	r.vcPending, vcProgress = allocateVCs(r.Sim(), now, r.sp, r.vcPending, r.vcOrder, r.vcRotate, r.vcAgeOrder, r.in, r.holder, r.sched)
	r.noteAlloc(vcBefore, len(r.vcPending))
	r.vcRotate++
	progress = progress || vcProgress
	// Stage 2: switch allocation, one winner per output port.
	channelBlocked := false
	for port := 0; port < r.radix; port++ {
		sc := r.sched[port]
		if !sc.active() {
			continue
		}
		winner := sc.grant(
			func(client int) bool {
				ok, chBlock := r.eligible(now, port, client)
				channelBlocked = channelBlocked || chBlock
				return ok
			},
			func(client int) sim.Tick { return r.in[client].q.peek().Pkt.Age() },
		)
		if winner >= 0 {
			r.sendFlit(now, port, winner)
			progress = true
		}
	}
	if progress || channelBlocked {
		r.schedulePipeline()
	}
}

// eligible reports whether the client can send a flit through output port
// this cycle; the second result flags "blocked only by channel timing",
// which requires a retry next cycle without any external event.
func (r *IQ) eligible(now sim.Tick, port, client int) (bool, bool) {
	iv := &r.in[client]
	f := iv.q.peek()
	if f == nil || iv.outVC < 0 || iv.outPort != port {
		return false, false
	}
	cred := r.downCred[port][iv.outVC]
	need := 1
	if r.sched[port].mode == PacketBuffer && f.Head {
		need = f.Pkt.Size()
	}
	if cred < need {
		r.noteCreditStall()
		return false, false
	}
	if r.nextChanStart[port] > now+r.xbar.Latency() {
		return false, true
	}
	return true, false
}

func (r *IQ) sendFlit(now sim.Tick, port, client int) {
	iv := &r.in[client]
	f := iv.q.pop()
	if r.sp != nil && r.sp.Tracked(f) {
		// VC grant to switch grant: crossbar arbitration plus credit waits.
		r.sp.Step(r.Sim(), now, f, telemetry.SpanSWAlloc)
	}
	inPort, inVC := r.clientPort(client), r.clientVC(client)
	f.VC = iv.outVC
	if f.Head {
		f.Pkt.HopCount++
	}
	r.takeDownstreamCredit(port, iv.outVC)
	r.sendCreditUpstream(inPort, inVC)
	arrive := r.xbar.Start(now, port)
	r.nextChanStart[port] = arrive + r.chanPeriod
	r.pushFlight(arrive, f, port)
	r.sched[port].onSent(client, f.Head, f.Tail)
	r.noteRouted()
	if f.Tail {
		r.holder[port][iv.outVC] = -1
		iv.outPort, iv.outVC = -1, -1
		iv.routeState = rsIdle
		iv.resp = routing.Response{}
		r.maybeStartRoute(client)
	}
}

// HOL reports the head-of-line state of one input VC for the stall
// diagnostician.
func (r *IQ) HOL(port, vc int) HOLState {
	return holFromInputVC(&r.base, r.in, r.holder, r.client(port, vc))
}

// VerifyIdle implements the post-drain quiescence check.
func (r *IQ) VerifyIdle() {
	for client := range r.in {
		iv := &r.in[client]
		if iv.q.len() != 0 {
			r.Panicf("idle check: input VC %d holds %d flits", client, iv.q.len())
		}
		if iv.outVC != -1 || iv.routeState != rsIdle {
			r.Panicf("idle check: input VC %d holds an allocation", client)
		}
	}
	for port := range r.holder {
		for vc, h := range r.holder[port] {
			if h != -1 {
				r.Panicf("idle check: output VC %d.%d held by client %d", port, vc, h)
			}
		}
	}
	if len(r.vcPending) != 0 {
		r.Panicf("idle check: %d VC allocation requests pending", len(r.vcPending))
	}
	if _, ok := r.dl.next(); ok {
		r.Panicf("idle check: crossbar traversals in flight")
	}
	r.verifyIdleCredits()
}

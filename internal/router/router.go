// Package router implements the router microarchitecture models: the
// idealistic output-queued (OQ) architecture, the input-queued (IQ)
// architecture, and the combined input-output-queued (IOQ) architecture.
// All three are assembled from common building blocks — input queues, credit
// counters, crossbars, crossbar schedulers with configurable flow control
// (flit-buffer, packet-buffer, winner-take-all), VC schedulers and
// congestion sensors — and are configured entirely through JSON settings.
package router

import (
	"supersim/internal/channel"
	"supersim/internal/config"
	"supersim/internal/congestion"
	"supersim/internal/factory"
	"supersim/internal/routing"
	"supersim/internal/sim"
	"supersim/internal/types"
)

// Router is the abstract router model. A router is agnostic of topology: the
// network builds it, wires channels to its ports and supplies the routing
// algorithm constructor.
type Router interface {
	sim.Component
	types.FlitSink
	types.CreditSink

	// ID returns the router's index within the network.
	ID() int
	// Radix returns the number of ports.
	Radix() int
	// NumVCs returns the number of virtual channels per port.
	NumVCs() int
	// InputBufferDepth returns the per-VC input buffer capacity in flits,
	// which is the credit count the upstream device starts with.
	InputBufferDepth() int
	// Sensor returns the router's congestion sensor.
	Sensor() congestion.Tracker

	// VerifyIdle panics unless the router is completely quiescent: all
	// queues empty, no allocations held, and every downstream credit
	// returned. The framework calls it after the network drains to catch
	// leaks (lost flits, stuck packets, credit accounting errors).
	VerifyIdle()

	// HOL reports the head-of-line state of one input VC — what its head
	// flit is, what resource it waits on, and who holds that resource. The
	// stall diagnostician walks these states to render blocked-chain reports.
	HOL(port, vc int) HOLState
	// OutputChannel returns the flit channel leaving an output port, or nil
	// when the port is unconnected.
	OutputChannel(port int) *channel.Channel

	// ConnectOutput wires the flit channel leaving output port.
	ConnectOutput(port int, ch *channel.Channel)
	// ConnectCreditOut wires the credit channel returning credits upstream
	// for the given input port.
	ConnectCreditOut(port int, cc *channel.CreditChannel)
	// SetDownstreamCredits initializes the per-VC credit count for an output
	// port to the downstream device's input buffer depth.
	SetDownstreamCredits(port int, perVC int)
}

// Head-of-line phases reported by HOL, ordered by pipeline progress.
const (
	// HOLEmpty: the input VC holds no flits.
	HOLEmpty = "empty"
	// HOLRouting: the head packet's routing decision is still in flight.
	HOLRouting = "routing"
	// HOLAwaitingVC: routed, waiting for an output VC grant. HolderPort and
	// HolderVC name the input VC currently holding a wanted output VC when
	// every wanted VC is taken.
	HOLAwaitingVC = "awaiting-vc"
	// HOLAllocated: granted an output VC; advancing as switch bandwidth,
	// output-queue space, and downstream credits (Credits) allow.
	HOLAllocated = "allocated"
)

// HOLState is a snapshot of one input VC's head-of-line dependency, the unit
// the stall diagnostician chains together: a blocked head waits on an output
// VC whose holder is itself an input VC (same router), or on downstream
// credits whose owner is across the output channel.
type HOLState struct {
	Flit      *types.Flit // head flit, nil when the VC is empty
	Occupancy int         // flits buffered in this input VC
	Phase     string      // one of the HOL* phase constants

	OutPort, OutVC int // granted output, -1 before allocation

	// For HOLAwaitingVC: the wanted output port and VC set, and the input VC
	// holding a wanted output VC — holder is -1/-1 when a wanted VC is free
	// (transient — a grant is imminent).
	WantPort             int
	WantVCs              []int
	HolderPort, HolderVC int

	// For HOLAllocated: downstream credit count and capacity on the granted
	// output VC, and — on architectures with output queues — that queue's
	// occupancy and capacity (OutDepth is -1 when the architecture has no
	// output queue, 0 when the queue is unbounded).
	Credits, CreditCap  int
	OutQueued, OutDepth int
}
type Params struct {
	ID            int
	Radix         int
	RoutingCtor   routing.Ctor
	ChannelPeriod sim.Tick // link cycle time in ticks
}

// Ctor is the constructor signature registered by router architectures.
type Ctor func(s *sim.Simulator, name string, cfg *config.Settings, p Params) Router

// Registry holds all router architecture implementations.
var Registry = factory.NewRegistry[Ctor]("router")

// New builds the router architecture named by cfg's "architecture" setting.
func New(s *sim.Simulator, name string, cfg *config.Settings, p Params) Router {
	return Registry.MustLookup(cfg.String("architecture"))(s, name, cfg, p)
}

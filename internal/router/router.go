// Package router implements the router microarchitecture models: the
// idealistic output-queued (OQ) architecture, the input-queued (IQ)
// architecture, and the combined input-output-queued (IOQ) architecture.
// All three are assembled from common building blocks — input queues, credit
// counters, crossbars, crossbar schedulers with configurable flow control
// (flit-buffer, packet-buffer, winner-take-all), VC schedulers and
// congestion sensors — and are configured entirely through JSON settings.
package router

import (
	"supersim/internal/channel"
	"supersim/internal/config"
	"supersim/internal/congestion"
	"supersim/internal/factory"
	"supersim/internal/routing"
	"supersim/internal/sim"
	"supersim/internal/types"
)

// Router is the abstract router model. A router is agnostic of topology: the
// network builds it, wires channels to its ports and supplies the routing
// algorithm constructor.
type Router interface {
	sim.Component
	types.FlitSink
	types.CreditSink

	// ID returns the router's index within the network.
	ID() int
	// Radix returns the number of ports.
	Radix() int
	// NumVCs returns the number of virtual channels per port.
	NumVCs() int
	// InputBufferDepth returns the per-VC input buffer capacity in flits,
	// which is the credit count the upstream device starts with.
	InputBufferDepth() int
	// Sensor returns the router's congestion sensor.
	Sensor() congestion.Tracker

	// VerifyIdle panics unless the router is completely quiescent: all
	// queues empty, no allocations held, and every downstream credit
	// returned. The framework calls it after the network drains to catch
	// leaks (lost flits, stuck packets, credit accounting errors).
	VerifyIdle()

	// ConnectOutput wires the flit channel leaving output port.
	ConnectOutput(port int, ch *channel.Channel)
	// ConnectCreditOut wires the credit channel returning credits upstream
	// for the given input port.
	ConnectCreditOut(port int, cc *channel.CreditChannel)
	// SetDownstreamCredits initializes the per-VC credit count for an output
	// port to the downstream device's input buffer depth.
	SetDownstreamCredits(port int, perVC int)
}

// Params carries the construction inputs a network supplies to a router.
type Params struct {
	ID            int
	Radix         int
	RoutingCtor   routing.Ctor
	ChannelPeriod sim.Tick // link cycle time in ticks
}

// Ctor is the constructor signature registered by router architectures.
type Ctor func(s *sim.Simulator, name string, cfg *config.Settings, p Params) Router

// Registry holds all router architecture implementations.
var Registry = factory.NewRegistry[Ctor]("router")

// New builds the router architecture named by cfg's "architecture" setting.
func New(s *sim.Simulator, name string, cfg *config.Settings, p Params) Router {
	return Registry.MustLookup(cfg.String("architecture"))(s, name, cfg, p)
}

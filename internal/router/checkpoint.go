package router

import (
	"supersim/internal/congestion"
	"supersim/internal/routing"
	"supersim/internal/sim"
	"supersim/internal/snapshot"
	"supersim/internal/types"
)

// Checkpoint state for the router architectures. Flits buffered inside a
// router are stored as references into the checkpoint's message table;
// routing responses are stored by value (port + VC set) — the VC sets
// algorithms hand out are immutable, so restoring the values is equivalent
// to restoring the aliases. Ring buffers and delay lines are normalized on
// save so the bytes do not depend on compaction or wrap history.

// Stater is implemented by every router architecture: Collect feeds the
// message table, SaveState/LoadState serialize against it. The restore side
// runs on a freshly built router of the identical configuration.
type Stater interface {
	Collect(t *types.MessageTable)
	SaveState(e *snapshot.Encoder, t *types.MessageTable)
	LoadState(d *snapshot.Decoder, t *types.MessageTable) error
}

func (q *flitQueue) collect(t *types.MessageTable) {
	for i := 0; i < q.n; i++ {
		t.Add(q.buf[(q.head+i)%len(q.buf)].Pkt.Msg)
	}
}

func (q *flitQueue) saveState(e *snapshot.Encoder, t *types.MessageTable) {
	e.Int(q.n)
	for i := 0; i < q.n; i++ {
		t.EncodeFlit(e, q.buf[(q.head+i)%len(q.buf)])
	}
}

func (q *flitQueue) loadState(d *snapshot.Decoder, t *types.MessageTable) error {
	n := d.Count()
	if d.Err() != nil {
		return d.Err()
	}
	q.buf = q.buf[:0]
	q.head = 0
	q.n = 0
	for i := 0; i < n; i++ {
		f, err := t.DecodeFlit(d)
		if err != nil {
			return err
		}
		if f == nil {
			return d.Failf("flit queue entry %d has no flit", i)
		}
		q.push(f)
	}
	return d.Err()
}

func (dl *delayLine) collect(t *types.MessageTable) {
	for i := dl.head; i < len(dl.q); i++ {
		t.Add(dl.q[i].f.Pkt.Msg)
	}
}

func (dl *delayLine) saveState(e *snapshot.Encoder, t *types.MessageTable) {
	e.Bool(dl.scheduled)
	e.Int(len(dl.q) - dl.head)
	for i := dl.head; i < len(dl.q); i++ {
		e.U64(uint64(dl.q[i].at))
		e.Int(dl.q[i].port)
		t.EncodeFlit(e, dl.q[i].f)
	}
}

func (dl *delayLine) loadState(d *snapshot.Decoder, t *types.MessageTable) error {
	dl.scheduled = d.Bool()
	n := d.Count()
	if d.Err() != nil {
		return d.Err()
	}
	dl.q = dl.q[:0]
	dl.head = 0
	for i := 0; i < n; i++ {
		at := sim.Tick(d.U64())
		port := d.Int()
		f, err := t.DecodeFlit(d)
		if err != nil {
			return err
		}
		if f == nil {
			return d.Failf("delay line entry %d has no flit", i)
		}
		dl.q = append(dl.q, flight{at: at, f: f, port: port})
	}
	return d.Err()
}

func saveResponse(e *snapshot.Encoder, r routing.Response) {
	e.Int(r.Port)
	e.Int(len(r.VCs))
	for _, vc := range r.VCs {
		e.Int(vc)
	}
}

func loadResponse(d *snapshot.Decoder) (routing.Response, error) {
	r := routing.Response{Port: d.Int()}
	n := d.Count()
	if d.Err() != nil {
		return r, d.Err()
	}
	if n > 0 {
		r.VCs = make([]int, n)
		for i := range r.VCs {
			r.VCs[i] = d.Int()
		}
	}
	return r, d.Err()
}

func (x *xbarSched) saveState(e *snapshot.Encoder) {
	e.Int(len(x.contenders))
	for _, c := range x.contenders {
		e.Int(c)
	}
	e.Int(x.lastGrant)
	e.Int(x.locked)
}

func (x *xbarSched) loadState(d *snapshot.Decoder) error {
	n := d.Count()
	if d.Err() != nil {
		return d.Err()
	}
	x.contenders = x.contenders[:0]
	for i := 0; i < n; i++ {
		x.contenders = append(x.contenders, d.Int())
	}
	x.lastGrant = d.Int()
	x.locked = d.Int()
	return d.Err()
}

// saveState serializes the plumbing shared by all architectures: scheduling
// identity, downstream credits, the congestion sensor, and counters.
func (b *base) saveState(e *snapshot.Encoder) {
	b.SaveOrder(e)
	e.Int(len(b.downCred))
	for port := range b.downCred {
		e.Int(len(b.downCred[port]))
		for _, c := range b.downCred[port] {
			e.Int(c)
		}
	}
	congestion.SaveTracker(e, b.sensor)
	e.Bool(b.pipelineScheduled)
	e.U64(b.flitsRouted)
}

func (b *base) loadState(d *snapshot.Decoder) error {
	if err := b.LoadOrder(d); err != nil {
		return err
	}
	ports := d.Count()
	if d.Err() != nil {
		return d.Err()
	}
	if ports != len(b.downCred) {
		return d.Failf("router %s has %d ports, snapshot says %d", b.Name(), len(b.downCred), ports)
	}
	for port := 0; port < ports; port++ {
		vcs := d.Count()
		if d.Err() != nil {
			return d.Err()
		}
		if vcs != len(b.downCred[port]) {
			return d.Failf("router %s port %d has %d VCs, snapshot says %d", b.Name(), port, len(b.downCred[port]), vcs)
		}
		for vc := 0; vc < vcs; vc++ {
			b.downCred[port][vc] = d.Int()
		}
	}
	if err := congestion.LoadTracker(d, b.sensor); err != nil {
		return err
	}
	b.pipelineScheduled = d.Bool()
	b.flitsRouted = d.U64()
	return d.Err()
}

func saveInputVC(e *snapshot.Encoder, t *types.MessageTable, iv *inputVC) {
	iv.q.saveState(e, t)
	e.Int(iv.routeState)
	saveResponse(e, iv.resp)
	e.Int(iv.outPort)
	e.Int(iv.outVC)
}

func loadInputVC(d *snapshot.Decoder, t *types.MessageTable, iv *inputVC) error {
	if err := iv.q.loadState(d, t); err != nil {
		return err
	}
	iv.routeState = d.Int()
	resp, err := loadResponse(d)
	if err != nil {
		return err
	}
	iv.resp = resp
	iv.outPort = d.Int()
	iv.outVC = d.Int()
	iv.granted = false
	return d.Err()
}

func saveIntSlice(e *snapshot.Encoder, s []int) {
	e.Int(len(s))
	for _, v := range s {
		e.Int(v)
	}
}

func loadIntSliceInto(d *snapshot.Decoder, s []int, what string) error {
	n := d.Count()
	if d.Err() != nil {
		return d.Err()
	}
	if n != len(s) {
		return d.Failf("%s has %d entries, snapshot says %d", what, len(s), n)
	}
	for i := 0; i < n; i++ {
		s[i] = d.Int()
	}
	return d.Err()
}

// Collect implements Stater for the IQ architecture.
func (r *IQ) Collect(t *types.MessageTable) {
	for i := range r.in {
		r.in[i].q.collect(t)
	}
	r.dl.collect(t)
}

// SaveState implements Stater for the IQ architecture.
func (r *IQ) SaveState(e *snapshot.Encoder, t *types.MessageTable) {
	r.base.saveState(e)
	r.xbar.SaveState(e)
	r.dl.saveState(e, t)
	for i := range r.in {
		saveInputVC(e, t, &r.in[i])
	}
	for port := range r.holder {
		saveIntSlice(e, r.holder[port])
	}
	saveIntSlice(e, r.vcPending)
	e.Int(r.vcRotate)
	for _, sc := range r.sched {
		sc.saveState(e)
	}
	e.Int(len(r.nextChanStart))
	for _, tk := range r.nextChanStart {
		e.U64(uint64(tk))
	}
}

// LoadState implements Stater for the IQ architecture.
func (r *IQ) LoadState(d *snapshot.Decoder, t *types.MessageTable) error {
	if err := r.base.loadState(d); err != nil {
		return err
	}
	if err := r.xbar.LoadState(d); err != nil {
		return err
	}
	if err := r.dl.loadState(d, t); err != nil {
		return err
	}
	for i := range r.in {
		if err := loadInputVC(d, t, &r.in[i]); err != nil {
			return err
		}
	}
	for port := range r.holder {
		if err := loadIntSliceInto(d, r.holder[port], "output VC holder"); err != nil {
			return err
		}
	}
	n := d.Count()
	if d.Err() != nil {
		return d.Err()
	}
	r.vcPending = r.vcPending[:0]
	for i := 0; i < n; i++ {
		r.vcPending = append(r.vcPending, d.Int())
	}
	r.vcRotate = d.Int()
	for _, sc := range r.sched {
		if err := sc.loadState(d); err != nil {
			return err
		}
	}
	cs := d.Count()
	if d.Err() != nil {
		return d.Err()
	}
	if cs != len(r.nextChanStart) {
		return d.Failf("router %s has %d channel-start slots, snapshot says %d", r.Name(), len(r.nextChanStart), cs)
	}
	for i := 0; i < cs; i++ {
		r.nextChanStart[i] = sim.Tick(d.U64())
	}
	return d.Err()
}

// Collect implements Stater for the OQ architecture.
func (r *OQ) Collect(t *types.MessageTable) {
	for i := range r.in {
		r.in[i].q.collect(t)
	}
	for i := range r.outQ {
		r.outQ[i].collect(t)
	}
	r.dl.collect(t)
}

// SaveState implements Stater for the OQ architecture.
func (r *OQ) SaveState(e *snapshot.Encoder, t *types.MessageTable) {
	r.base.saveState(e)
	r.dl.saveState(e, t)
	for i := range r.in {
		iv := &r.in[i]
		iv.q.saveState(e, t)
		e.Bool(iv.routed)
		saveResponse(e, iv.resp)
		e.Int(iv.outVC)
	}
	for i := range r.outQ {
		r.outQ[i].saveState(e, t)
	}
	saveIntSlice(e, r.outOcc)
	saveIntSlice(e, r.outOwner)
	for _, b := range r.outBusy {
		e.Bool(b)
	}
	saveIntSlice(e, r.outRR)
	for _, tk := range r.transfer {
		e.U64(uint64(tk))
	}
}

// LoadState implements Stater for the OQ architecture.
func (r *OQ) LoadState(d *snapshot.Decoder, t *types.MessageTable) error {
	if err := r.base.loadState(d); err != nil {
		return err
	}
	if err := r.dl.loadState(d, t); err != nil {
		return err
	}
	for i := range r.in {
		iv := &r.in[i]
		if err := iv.q.loadState(d, t); err != nil {
			return err
		}
		iv.routed = d.Bool()
		resp, err := loadResponse(d)
		if err != nil {
			return err
		}
		iv.resp = resp
		iv.outVC = d.Int()
	}
	for i := range r.outQ {
		if err := r.outQ[i].loadState(d, t); err != nil {
			return err
		}
	}
	if err := loadIntSliceInto(d, r.outOcc, "output occupancy"); err != nil {
		return err
	}
	if err := loadIntSliceInto(d, r.outOwner, "output owner"); err != nil {
		return err
	}
	for i := range r.outBusy {
		r.outBusy[i] = d.Bool()
	}
	if err := loadIntSliceInto(d, r.outRR, "output round robin"); err != nil {
		return err
	}
	for i := range r.transfer {
		r.transfer[i] = sim.Tick(d.U64())
	}
	return d.Err()
}

// Collect implements Stater for the IOQ architecture.
func (r *IOQ) Collect(t *types.MessageTable) {
	for i := range r.in {
		r.in[i].q.collect(t)
	}
	for i := range r.outQ {
		r.outQ[i].collect(t)
	}
	r.dl.collect(t)
}

// SaveState implements Stater for the IOQ architecture.
func (r *IOQ) SaveState(e *snapshot.Encoder, t *types.MessageTable) {
	r.base.saveState(e)
	r.xbar.SaveState(e)
	r.dl.saveState(e, t)
	for i := range r.in {
		saveInputVC(e, t, &r.in[i])
	}
	for port := range r.holder {
		saveIntSlice(e, r.holder[port])
	}
	saveIntSlice(e, r.vcPending)
	e.Int(r.vcRotate)
	for _, sc := range r.sched {
		sc.saveState(e)
	}
	for i := range r.outQ {
		r.outQ[i].saveState(e, t)
	}
	saveIntSlice(e, r.outOcc)
	for _, b := range r.outBusy {
		e.Bool(b)
	}
	saveIntSlice(e, r.outRR)
}

// LoadState implements Stater for the IOQ architecture.
func (r *IOQ) LoadState(d *snapshot.Decoder, t *types.MessageTable) error {
	if err := r.base.loadState(d); err != nil {
		return err
	}
	if err := r.xbar.LoadState(d); err != nil {
		return err
	}
	if err := r.dl.loadState(d, t); err != nil {
		return err
	}
	for i := range r.in {
		if err := loadInputVC(d, t, &r.in[i]); err != nil {
			return err
		}
	}
	for port := range r.holder {
		if err := loadIntSliceInto(d, r.holder[port], "output VC holder"); err != nil {
			return err
		}
	}
	n := d.Count()
	if d.Err() != nil {
		return d.Err()
	}
	r.vcPending = r.vcPending[:0]
	for i := 0; i < n; i++ {
		r.vcPending = append(r.vcPending, d.Int())
	}
	r.vcRotate = d.Int()
	for _, sc := range r.sched {
		if err := sc.loadState(d); err != nil {
			return err
		}
	}
	for i := range r.outQ {
		if err := r.outQ[i].loadState(d, t); err != nil {
			return err
		}
	}
	if err := loadIntSliceInto(d, r.outOcc, "output occupancy"); err != nil {
		return err
	}
	for i := range r.outBusy {
		r.outBusy[i] = d.Bool()
	}
	return loadIntSliceInto(d, r.outRR, "output round robin")
}

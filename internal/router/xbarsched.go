package router

import (
	"math/rand/v2"

	"supersim/internal/config"
	"supersim/internal/sim"
)

// FlowControl selects the crossbar scheduler's resource allocation technique
// (case study C).
type FlowControl int

const (
	// FlitBuffer (FB) schedules the crossbar flit by flit: packets in
	// arbitration for the same output interleave, each taking a fair share
	// of the bandwidth.
	FlitBuffer FlowControl = iota
	// PacketBuffer (PB) schedules packet by packet: a packet only wins
	// arbitration when there is enough downstream space for the entire
	// packet, and the decision is locked until the tail flit enters the
	// crossbar, so no credit stalls occur mid-packet.
	PacketBuffer
	// WinnerTakeAll (WTA) is the hybrid: flit-by-flit scheduling with the
	// decision locked once made, but without the full-packet credit check.
	// If the streaming packet encounters a credit stall the lock is released
	// and other packets with available credits take over.
	WinnerTakeAll
)

// ParseFlowControl maps a settings string to a FlowControl mode.
func ParseFlowControl(s string) FlowControl {
	switch s {
	case "flit_buffer":
		return FlitBuffer
	case "packet_buffer":
		return PacketBuffer
	case "winner_take_all":
		return WinnerTakeAll
	default:
		panic("router: unknown flow control " + s)
	}
}

// schedPolicy selects the arbitration policy used among contenders.
type schedPolicy int

const (
	polRoundRobin schedPolicy = iota
	polAgeBased
	polRandom
)

func parsePolicy(s string) schedPolicy {
	switch s {
	case "round_robin":
		return polRoundRobin
	case "age_based":
		return polAgeBased
	case "random":
		return polRandom
	default:
		panic("router: unknown crossbar scheduler policy " + s)
	}
}

// parseVCPolicy reads the VC scheduler policy: round_robin (default) or
// age_based (oldest packet first, the parking lot fairness fix).
func parseVCPolicy(cfg *config.Settings) bool {
	switch p := cfg.StringOr("vc_policy", "round_robin"); p {
	case "round_robin":
		return false
	case "age_based":
		return true
	default:
		panic("router: unknown vc_policy " + p)
	}
}

func schedFromConfig(cfg *config.Settings, rng *rand.Rand) func() *xbarSched {
	mode := ParseFlowControl(cfg.StringOr("flow_control", "flit_buffer"))
	pol := parsePolicy(cfg.StringOr("crossbar_policy", "round_robin"))
	return func() *xbarSched { return newXbarSched(mode, pol, rng) }
}

// xbarSched is the per-output-port crossbar scheduler. Contenders are input
// VC client indices that have been allocated an output VC on this port; the
// scheduler picks at most one winner per core cycle, honoring the flow
// control technique's locking rules. Eligibility (flit present, credit
// thresholds, channel availability) is evaluated by the owning router via
// callbacks because it owns the credit state.
type xbarSched struct {
	mode       FlowControl
	policy     schedPolicy
	rng        *rand.Rand
	contenders []int
	lastGrant  int // client id of last grant, for round robin rotation
	locked     int // client id holding the lock, -1 when unlocked
}

func newXbarSched(mode FlowControl, policy schedPolicy, rng *rand.Rand) *xbarSched {
	return &xbarSched{mode: mode, policy: policy, rng: rng, lastGrant: -1, locked: -1}
}

func (x *xbarSched) addContender(client int) {
	x.contenders = append(x.contenders, client)
}

func (x *xbarSched) removeContender(client int) {
	for i, c := range x.contenders {
		if c == client {
			x.contenders = append(x.contenders[:i], x.contenders[i+1:]...)
			return
		}
	}
	panic("router: removing unknown crossbar contender")
}

func (x *xbarSched) active() bool { return len(x.contenders) > 0 }

// grant returns the winning client for this cycle, or -1. eligible reports
// whether a client can actually send a flit right now; age returns the
// arbitration metadata (packet age; smaller wins) for age-based policy.
func (x *xbarSched) grant(eligible func(int) bool, age func(int) sim.Tick) int {
	if x.locked != -1 {
		if eligible(x.locked) {
			return x.locked
		}
		switch x.mode {
		case PacketBuffer:
			// Decision stays locked until the tail enters the crossbar; a
			// stalled winner (waiting for body flits) blocks the output.
			return -1
		case WinnerTakeAll:
			// A stall releases the lock; others with credits take over.
			x.locked = -1
		}
	}
	switch x.policy {
	case polAgeBased:
		best, bestAge := -1, sim.Tick(0)
		for _, c := range x.contenders {
			if !eligible(c) {
				continue
			}
			a := age(c)
			if best == -1 || a < bestAge {
				best, bestAge = c, a
			}
		}
		return best
	case polRandom:
		n, pick := 0, -1
		for _, c := range x.contenders {
			if !eligible(c) {
				continue
			}
			n++
			if x.rng.IntN(n) == 0 {
				pick = c
			}
		}
		return pick
	default: // round robin by client index relative to the last grant
		best, bestKey := -1, 0
		for _, c := range x.contenders {
			if !eligible(c) {
				continue
			}
			key := c - x.lastGrant
			if key <= 0 {
				key += 1 << 30
			}
			if best == -1 || key < bestKey {
				best, bestKey = c, key
			}
		}
		return best
	}
}

// onSent records that a flit of the winning client entered the crossbar and
// applies the locking rules. head/tail flag the flit's role in its packet.
func (x *xbarSched) onSent(client int, head, tail bool) {
	x.lastGrant = client
	if x.mode != FlitBuffer && head {
		x.locked = client
	}
	if tail {
		if x.locked == client {
			x.locked = -1
		}
		x.removeContender(client)
	}
}

package router

import (
	"math/rand/v2"
	"testing"

	"supersim/internal/channel"
	"supersim/internal/config"
	"supersim/internal/congestion"
	"supersim/internal/routing"
	"supersim/internal/sim"
	"supersim/internal/types"
)

// vc0Ctor routes every packet to port 1 offering only VC 0, so a second
// packet on another input VC must wait for the first one's grant — the
// head-of-line state the HOL inspector reports.
func vc0Ctor() routing.Ctor {
	return func(routerID, inputPort int, sensor congestion.Sensor, rng *rand.Rand) routing.Algorithm {
		return routing.AlgorithmFunc(func(now sim.Tick, pkt *types.Packet, inPort, inVC int) routing.Response {
			return routing.Response{Port: 1, VCs: []int{0}}
		})
	}
}

// buildHOLRouter is buildLoneRouter with a custom routing ctor and no
// automatic credit return, so stalled states freeze for inspection.
func buildHOLRouter(t *testing.T, cfgDoc string, vcs, downCredits int) (*sim.Simulator, Router) {
	t.Helper()
	s := sim.NewSimulator(1)
	r := New(s, "r0", config.MustParse(cfgDoc), Params{
		ID: 0, Radix: 2, RoutingCtor: vc0Ctor(), ChannelPeriod: 1,
	})
	out := &flitSink{s: s}
	ch := channel.New(s, "out", 1, 1)
	ch.SetSink(out, 0)
	r.ConnectOutput(1, ch)
	r.SetDownstreamCredits(1, downCredits)
	crs := &creditSink{}
	cc := channel.NewCredit(s, "cr", 1)
	cc.SetSink(crs, 0)
	r.ConnectCreditOut(0, cc)
	return s, r
}

// pushHOL schedules a packet's flits into port 0 on the given VC, one per tick.
func pushHOL(s *sim.Simulator, r Router, id uint64, size, vc int, atTick sim.Tick) {
	m := types.NewMessage(id, 0, 5, 9, size, size)
	for i, f := range m.Packets[0].Flits {
		f.VC = vc
		fl := f
		s.Schedule(sim.HandlerFunc(func(*sim.Event) { r.ReceiveFlit(0, fl) }),
			sim.Time{Tick: atTick + sim.Tick(i)}, 0, nil)
	}
}

func TestIQHOLPhases(t *testing.T) {
	doc := `{
	  "architecture": "input_queued",
	  "num_vcs": 2,
	  "input_buffer_depth": 8,
	  "routing_latency": 2,
	  "crossbar_latency": 1
	}`
	s, r := buildHOLRouter(t, doc, 2, 1)

	if st := r.HOL(0, 0); st.Phase != HOLEmpty || st.Occupancy != 0 || st.Flit != nil {
		t.Fatalf("idle router HOL = %+v, want empty", st)
	}
	if r.OutputChannel(1) == nil || r.OutputChannel(0) != nil {
		t.Fatal("OutputChannel must reflect wiring: port 1 connected, port 0 not")
	}

	pushHOL(s, r, 1, 3, 0, 10) // packet A: claims out VC 0, one credit, then stalls
	pushHOL(s, r, 2, 2, 1, 10) // packet B: wants the same out VC, held by A

	// Probe between head arrival (t=10) and route completion (t=12).
	s.Schedule(sim.HandlerFunc(func(*sim.Event) {
		if st := r.HOL(0, 0); st.Phase != HOLRouting || st.Occupancy < 1 || st.Flit == nil {
			t.Errorf("mid-routing HOL = %+v, want routing", st)
		}
	}), sim.Time{Tick: 11}, 0, nil)
	s.Run()

	a := r.HOL(0, 0)
	if a.Phase != HOLAllocated || a.OutPort != 1 || a.OutVC != 0 {
		t.Fatalf("packet A HOL = %+v, want allocated out(1, 0)", a)
	}
	if a.Credits != 0 || a.CreditCap != 1 {
		t.Fatalf("packet A credits %d/%d, want 0/1 (starved)", a.Credits, a.CreditCap)
	}
	if a.OutDepth != -1 {
		t.Fatalf("IQ has no output queues, OutDepth = %d, want -1", a.OutDepth)
	}
	b := r.HOL(0, 1)
	if b.Phase != HOLAwaitingVC || b.WantPort != 1 || len(b.WantVCs) != 1 || b.WantVCs[0] != 0 {
		t.Fatalf("packet B HOL = %+v, want awaiting out port 1 vc [0]", b)
	}
	if b.HolderPort != 0 || b.HolderVC != 0 {
		t.Fatalf("packet B holder = (%d, %d), want packet A at in(0, 0)", b.HolderPort, b.HolderVC)
	}
}

func TestOQHOLPhases(t *testing.T) {
	doc := `{
	  "architecture": "output_queued",
	  "num_vcs": 2,
	  "input_buffer_depth": 8,
	  "queue_latency": 1,
	  "output_queue_depth": 1
	}`
	s, r := buildHOLRouter(t, doc, 2, 1)

	if st := r.HOL(0, 1); st.Phase != HOLEmpty {
		t.Fatalf("idle router HOL = %+v, want empty", st)
	}

	pushHOL(s, r, 1, 3, 0, 10) // fills the 1-deep output queue, then stalls
	pushHOL(s, r, 2, 2, 1, 10) // wants the queue A owns
	s.Run()

	a := r.HOL(0, 0)
	if a.Phase != HOLAllocated || a.OutPort != 1 || a.OutVC != 0 {
		t.Fatalf("packet A HOL = %+v, want allocated out(1, 0)", a)
	}
	if a.Credits != 0 || a.OutQueued != 1 || a.OutDepth != 1 {
		t.Fatalf("packet A credits %d outq %d/%d, want 0 and 1/1 (queue full, drain starved)",
			a.Credits, a.OutQueued, a.OutDepth)
	}
	b := r.HOL(0, 1)
	if b.Phase != HOLAwaitingVC || b.WantPort != 1 {
		t.Fatalf("packet B HOL = %+v, want awaiting out port 1", b)
	}
	if b.HolderPort != 0 || b.HolderVC != 0 {
		t.Fatalf("packet B holder = (%d, %d), want packet A at in(0, 0)", b.HolderPort, b.HolderVC)
	}
}

func TestIOQHOLReportsOutputQueue(t *testing.T) {
	doc := `{
	  "architecture": "input_output_queued",
	  "num_vcs": 2,
	  "speedup": 1,
	  "input_buffer_depth": 8,
	  "output_queue_depth": 1,
	  "crossbar_latency": 1
	}`
	s, r := buildHOLRouter(t, doc, 2, 1)
	pushHOL(s, r, 1, 3, 0, 10)
	s.Run()

	a := r.HOL(0, 0)
	if a.Phase != HOLAllocated {
		t.Fatalf("packet A HOL = %+v, want allocated", a)
	}
	if a.OutQueued != 1 || a.OutDepth != 1 {
		t.Fatalf("packet A outq %d/%d, want 1/1 (output queue full)", a.OutQueued, a.OutDepth)
	}
	if st := r.HOL(0, 1); st.Phase != HOLEmpty {
		t.Fatalf("untouched VC HOL = %+v, want empty", st)
	}
}

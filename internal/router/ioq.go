package router

import (
	"supersim/internal/config"
	"supersim/internal/crossbar"
	"supersim/internal/routing"
	"supersim/internal/sim"
	"supersim/internal/telemetry"
	"supersim/internal/types"
)

func init() {
	Registry.Register("input_output_queued", func(s *sim.Simulator, name string, cfg *config.Settings, p Params) Router {
		return NewIOQ(s, name, cfg, p)
	})
}

// IOQ is the combined input/output-queued router architecture: the
// input-queued pipeline extended with per-(port, VC) output queues. It has
// full crossbar input and output speedup — the crossbar core typically runs
// at a frequency multiple of the links ("speedup" setting). Flits wait in
// the input queues only until credits are available for the output queues;
// after arriving in the output queues they wait for downstream (next hop)
// credits.
//
// The architecture supports reporting congestion on a per-VC or per-port
// basis and can view output queue credits, downstream credits, or both —
// the credit accounting styles compared in case study B — through its
// congestion sensor configuration.
type IOQ struct {
	base
	routingLat uint64
	xbar       *crossbar.Crossbar
	outDepth   int // per (port, vc); 0 = infinite
	chanClock  *sim.Clock

	dl         delayLine
	in         []inputVC
	holder     [][]int
	vcPending  []int
	vcOrder    []int // allocateVCs ordering scratch, capacity len(in)
	vcRotate   int
	vcAgeOrder bool
	sched      []*xbarSched

	outQ    []flitQueue // [port*vcs+vc]
	outOcc  []int       // reserved occupancy incl. crossbar in-flight
	outBusy []bool      // per port: drain event scheduled
	outRR   []int       // per port: round robin VC pointer
}

// NewIOQ builds an input-output-queued router from its settings block.
func NewIOQ(s *sim.Simulator, name string, cfg *config.Settings, p Params) *IOQ {
	r := &IOQ{base: newBase(s, name, cfg, p)}
	r.routingLat = cfg.UIntOr("routing_latency", 1)
	if r.routingLat < 1 {
		r.Panicf("routing_latency must be at least one cycle")
	}
	xbarLat := sim.Tick(cfg.UIntOr("crossbar_latency", 1))
	if xbarLat < 1 {
		r.Panicf("crossbar_latency must be at least one tick")
	}
	r.xbar = crossbar.New(r.radix, xbarLat, r.coreClock.Period(), 1)
	r.outDepth = int(cfg.UIntOr("output_queue_depth", 64))
	r.chanClock = sim.NewClock(r.chanPeriod, 0)
	r.in = make([]inputVC, r.radix*r.vcs)
	r.vcOrder = make([]int, len(r.in))
	for i := range r.in {
		r.in[i].outPort, r.in[i].outVC = -1, -1
	}
	r.holder = make([][]int, r.radix)
	for port := range r.holder {
		r.holder[port] = make([]int, r.vcs)
		for vc := range r.holder[port] {
			r.holder[port][vc] = -1
		}
	}
	mk := schedFromConfig(cfg, r.rng)
	r.sched = make([]*xbarSched, r.radix)
	for port := range r.sched {
		r.sched[port] = mk()
	}
	r.vcAgeOrder = parseVCPolicy(cfg)
	r.outQ = make([]flitQueue, r.radix*r.vcs)
	r.outOcc = make([]int, r.radix*r.vcs)
	r.outBusy = make([]bool, r.radix)
	r.outRR = make([]int, r.radix)
	return r
}

func (r *IOQ) client(port, vc int) int   { return port*r.vcs + vc }
func (r *IOQ) clientPort(client int) int { return client / r.vcs }
func (r *IOQ) clientVC(client int) int   { return client % r.vcs }

// ReceiveFlit accepts a flit from an input channel.
func (r *IOQ) ReceiveFlit(port int, f *types.Flit) {
	r.checkPort(port)
	if f.VC < 0 || f.VC >= r.vcs {
		r.Panicf("%v arrived on unregistered VC", f)
	}
	iv := &r.in[r.client(port, f.VC)]
	if iv.q.len() >= r.bufDepth {
		r.Panicf("input buffer overrun on port %d vc %d", port, f.VC)
	}
	iv.q.push(f)
	r.noteArrival(port, f.VC)
	r.maybeStartRoute(r.client(port, f.VC))
	r.schedulePipeline()
}

// ReceiveCredit accepts a downstream credit for an output port.
func (r *IOQ) ReceiveCredit(port int, c types.Credit) {
	r.checkPort(port)
	r.returnDownstreamCredit(port, c.VC)
	r.scheduleOutput(port)
}

func (r *IOQ) maybeStartRoute(client int) {
	iv := &r.in[client]
	f := iv.q.peek()
	if f == nil || !f.Head || iv.routeState != rsIdle {
		return
	}
	iv.routeState = rsPending
	now := r.Sim().Now()
	done := r.coreClock.FutureEdge(now.Tick+1, r.routingLat-1)
	r.Sim().Schedule(r, sim.Time{Tick: done}, evRouteDone, client)
}

func (r *IOQ) schedulePipeline() {
	if r.pipelineScheduled {
		return
	}
	now := r.Sim().Now()
	t := sim.Time{Tick: r.coreClock.NextEdge(now.Tick), Eps: 1}
	if !now.Before(t) {
		t = sim.Time{Tick: r.coreClock.NextEdge(now.Tick + 1), Eps: 1}
	}
	r.pipelineScheduled = true
	r.Sim().Schedule(r, t, evPipeline, nil)
}

func (r *IOQ) scheduleOutput(port int) {
	if r.outBusy[port] {
		return
	}
	now := r.Sim().Now()
	t := sim.Time{Tick: r.chanClock.NextEdge(now.Tick), Eps: 2}
	if !now.Before(t) {
		t = sim.Time{Tick: r.chanClock.NextEdge(now.Tick + 1), Eps: 2}
	}
	r.outBusy[port] = true
	r.Sim().Schedule(r, t, evOutput, port)
}

// ProcessEvent dispatches the router's events.
func (r *IOQ) ProcessEvent(ev *sim.Event) {
	switch ev.Type {
	case evPipeline:
		r.pipelineScheduled = false
		r.pipeline()
	case evRouteDone:
		r.routeDone(ev.Context.(int))
	case evXbarArrive:
		r.drainFlights()
	case evOutput:
		port := ev.Context.(int)
		r.outBusy[port] = false
		r.drain(port)
	default:
		r.Panicf("unknown event type %d", ev.Type)
	}
}

// pushFlight enqueues a crossbar traversal, arming the delay line event.
func (r *IOQ) pushFlight(at sim.Tick, f *types.Flit, port int) {
	r.dl.push(at, f, port)
	if !r.dl.scheduled {
		r.dl.scheduled = true
		r.Sim().Schedule(r, sim.Time{Tick: at}, evXbarArrive, nil)
	}
}

// drainFlights moves every traversal completing now into its output queue.
func (r *IOQ) drainFlights() {
	now := r.Sim().Now().Tick
	for {
		at, ok := r.dl.next()
		if !ok {
			r.dl.scheduled = false
			return
		}
		if at > now {
			r.Sim().Schedule(r, sim.Time{Tick: at}, evXbarArrive, nil)
			return
		}
		fl := r.dl.pop()
		if r.sp != nil && r.sp.Tracked(fl.f) {
			// Crossbar traversal ends at output-queue entry.
			r.sp.Step(r.Sim(), now, fl.f, telemetry.SpanXbar)
		}
		r.outQ[r.client(fl.port, fl.f.VC)].push(fl.f)
		r.scheduleOutput(fl.port)
	}
}

func (r *IOQ) routeDone(client int) {
	iv := &r.in[client]
	if iv.routeState != rsPending {
		r.Panicf("route completion in state %d", iv.routeState)
	}
	f := iv.q.peek()
	if f == nil || !f.Head {
		r.Panicf("route completion without head flit at queue head")
	}
	now := r.Sim().Now()
	resp := r.algs[r.clientPort(client)].Route(now.Tick, f.Pkt, r.clientPort(client), r.clientVC(client))
	r.validateResponse(resp, f.Pkt)
	iv.resp = resp
	iv.routeState = rsDone
	r.vcPending = append(r.vcPending, client)
	r.schedulePipeline()
}

func (r *IOQ) pipeline() {
	now := r.Sim().Now().Tick
	progress := false
	// Stage 1: VC allocation (identical policy to the IQ architecture).
	var vcProgress bool
	vcBefore := len(r.vcPending)
	r.vcPending, vcProgress = allocateVCs(r.Sim(), now, r.sp, r.vcPending, r.vcOrder, r.vcRotate, r.vcAgeOrder, r.in, r.holder, r.sched)
	r.noteAlloc(vcBefore, len(r.vcPending))
	r.vcRotate++
	progress = progress || vcProgress
	// Stage 2: switch allocation against output queue space.
	for port := 0; port < r.radix; port++ {
		sc := r.sched[port]
		if !sc.active() {
			continue
		}
		winner := sc.grant(
			func(client int) bool { return r.eligible(port, client) },
			func(client int) sim.Tick { return r.in[client].q.peek().Pkt.Age() },
		)
		if winner >= 0 {
			r.sendFlit(now, port, winner)
			progress = true
		}
	}
	if progress {
		r.schedulePipeline()
	}
}

// eligible reports whether the client can move a flit into the output queue
// this cycle. The credit pool checked here is the output queue space, not
// the downstream credits — that is the defining property of the IOQ
// architecture.
func (r *IOQ) eligible(port, client int) bool {
	iv := &r.in[client]
	f := iv.q.peek()
	if f == nil || iv.outVC < 0 || iv.outPort != port {
		return false
	}
	if r.outDepth == 0 {
		return true
	}
	space := r.outDepth - r.outOcc[r.client(port, iv.outVC)]
	need := 1
	if r.sched[port].mode == PacketBuffer && f.Head {
		need = f.Pkt.Size()
	}
	return space >= need
}

func (r *IOQ) sendFlit(now sim.Tick, port, client int) {
	iv := &r.in[client]
	f := iv.q.pop()
	if r.sp != nil && r.sp.Tracked(f) {
		// VC grant to switch grant: crossbar arbitration plus the wait for
		// output-queue space.
		r.sp.Step(r.Sim(), now, f, telemetry.SpanSWAlloc)
	}
	inPort, inVC := r.clientPort(client), r.clientVC(client)
	f.VC = iv.outVC
	if f.Head {
		f.Pkt.HopCount++
	}
	r.outOcc[r.client(port, iv.outVC)]++
	r.sensor.AddOutput(now, port, iv.outVC, 1)
	r.sendCreditUpstream(inPort, inVC)
	arrive := r.xbar.Start(now, port)
	r.pushFlight(arrive, f, port)
	r.sched[port].onSent(client, f.Head, f.Tail)
	r.noteRouted()
	if f.Tail {
		r.holder[port][iv.outVC] = -1
		iv.outPort, iv.outVC = -1, -1
		iv.routeState = rsIdle
		iv.resp = routing.Response{}
		r.maybeStartRoute(client)
	}
}

// drain sends one flit per channel cycle from the port's output queues,
// round robin across VCs that have both a flit and a downstream credit.
func (r *IOQ) drain(port int) {
	now := r.Sim().Now().Tick
	for i := 0; i < r.vcs; i++ {
		vc := (r.outRR[port] + i) % r.vcs
		qi := r.client(port, vc)
		if r.outQ[qi].len() == 0 {
			continue
		}
		if r.downCred[port][vc] < 1 {
			r.noteCreditStall()
			continue
		}
		f := r.outQ[qi].pop()
		if r.sp != nil && r.sp.Tracked(f) {
			// Output-queue residency: the wait for downstream credits.
			r.sp.Step(r.Sim(), now, f, telemetry.SpanOutput)
		}
		r.takeDownstreamCredit(port, vc)
		r.outOcc[qi]--
		if r.outOcc[qi] < 0 {
			r.Panicf("output queue occupancy went negative on port %d vc %d", port, vc)
		}
		r.sensor.AddOutput(now, port, vc, -1)
		r.outCh[port].Inject(f)
		r.outRR[port] = (vc + 1) % r.vcs
		// Space freed: blocked switch allocation may proceed; more flits may
		// be waiting to drain next cycle.
		r.schedulePipeline()
		for v := 0; v < r.vcs; v++ {
			if r.outQ[r.client(port, v)].len() > 0 {
				r.scheduleOutput(port)
				break
			}
		}
		return
	}
}

// HOL reports the head-of-line state of one input VC for the stall
// diagnostician.
func (r *IOQ) HOL(port, vc int) HOLState {
	st := holFromInputVC(&r.base, r.in, r.holder, r.client(port, vc))
	if st.Phase == HOLAllocated {
		st.OutQueued = r.outOcc[r.client(st.OutPort, st.OutVC)]
		st.OutDepth = r.outDepth
	}
	return st
}

// VerifyIdle implements the post-drain quiescence check.
func (r *IOQ) VerifyIdle() {
	for client := range r.in {
		iv := &r.in[client]
		if iv.q.len() != 0 {
			r.Panicf("idle check: input VC %d holds %d flits", client, iv.q.len())
		}
		if iv.outVC != -1 || iv.routeState != rsIdle {
			r.Panicf("idle check: input VC %d holds an allocation", client)
		}
	}
	for port := range r.holder {
		for vc, h := range r.holder[port] {
			if h != -1 {
				r.Panicf("idle check: output VC %d.%d held by client %d", port, vc, h)
			}
		}
	}
	if len(r.vcPending) != 0 {
		r.Panicf("idle check: %d VC allocation requests pending", len(r.vcPending))
	}
	for i := range r.outQ {
		if r.outQ[i].len() != 0 || r.outOcc[i] != 0 {
			r.Panicf("idle check: output queue %d holds %d flits (occ %d)",
				i, r.outQ[i].len(), r.outOcc[i])
		}
	}
	if _, ok := r.dl.next(); ok {
		r.Panicf("idle check: crossbar traversals in flight")
	}
	r.verifyIdleCredits()
}

package router

import (
	"math/rand/v2"
	"testing"

	"supersim/internal/channel"
	"supersim/internal/config"
	"supersim/internal/congestion"
	"supersim/internal/routing"
	"supersim/internal/sim"
	"supersim/internal/types"
)

// flitSink collects flits leaving the router under test and, like a real
// downstream device, returns one credit per flit.
type flitSink struct {
	s       *sim.Simulator
	flits   []*types.Flit
	times   []sim.Tick
	creditC *channel.CreditChannel
}

func (f *flitSink) ReceiveFlit(port int, fl *types.Flit) {
	f.flits = append(f.flits, fl)
	f.times = append(f.times, f.s.Now().Tick)
	if f.creditC != nil {
		f.creditC.Inject(types.Credit{VC: fl.VC})
	}
}

// creditSink collects upstream credit returns.
type creditSink struct{ credits []types.Credit }

func (c *creditSink) ReceiveCredit(port int, cr types.Credit) {
	c.credits = append(c.credits, cr)
}

// passCtor routes every packet to port 1, offering all VCs.
func passCtor(vcs int) routing.Ctor {
	all := make([]int, vcs)
	for i := range all {
		all[i] = i
	}
	return func(routerID, inputPort int, sensor congestion.Sensor, rng *rand.Rand) routing.Algorithm {
		return routing.AlgorithmFunc(func(now sim.Tick, pkt *types.Packet, inPort, inVC int) routing.Response {
			return routing.Response{Port: 1, VCs: all}
		})
	}
}

// buildLoneRouter wires a 2-port router: flits pushed into port 0 route to
// port 1, whose channel feeds a collector; upstream credits for port 0 are
// collected too. Returns the simulator, router, output sink and credit sink.
func buildLoneRouter(t *testing.T, cfgDoc string, vcs, downCredits int) (*sim.Simulator, Router, *flitSink, *creditSink) {
	t.Helper()
	s := sim.NewSimulator(1)
	r := New(s, "r0", config.MustParse(cfgDoc), Params{
		ID: 0, Radix: 2, RoutingCtor: passCtor(vcs), ChannelPeriod: 1,
	})
	out := &flitSink{s: s}
	ch := channel.New(s, "out", 1, 1)
	ch.SetSink(out, 0)
	r.ConnectOutput(1, ch)
	r.SetDownstreamCredits(1, downCredits)
	back := channel.NewCredit(s, "back", 1)
	back.SetSink(r, 1)
	out.creditC = back
	crs := &creditSink{}
	cc := channel.NewCredit(s, "cr", 1)
	cc.SetSink(crs, 0)
	r.ConnectCreditOut(0, cc)
	return s, r, out, crs
}

const iqDoc = `{
  "architecture": "input_queued",
  "num_vcs": 2,
  "input_buffer_depth": 8,
  "routing_latency": 1,
  "crossbar_latency": 3
}`

func pushPacket(s *sim.Simulator, r Router, size, vc int, atTick sim.Tick) *types.Message {
	m := types.NewMessage(1, 0, 5, 9, size, size)
	for i, f := range m.Packets[0].Flits {
		f.VC = vc
		fl := f
		tick := atTick + sim.Tick(i)
		s.Schedule(sim.HandlerFunc(func(*sim.Event) { r.ReceiveFlit(0, fl) }),
			sim.Time{Tick: tick}, 0, nil)
	}
	return m
}

func TestIQForwardsPacketInOrder(t *testing.T) {
	s, r, out, crs := buildLoneRouter(t, iqDoc, 2, 8)
	pushPacket(s, r, 3, 0, 10)
	s.Run()
	if len(out.flits) != 3 {
		t.Fatalf("forwarded %d flits", len(out.flits))
	}
	for i, f := range out.flits {
		if f.ID != i {
			t.Fatalf("flit order %v", out.flits)
		}
	}
	// One upstream credit per forwarded flit, on the arrival VC.
	if len(crs.credits) != 3 {
		t.Fatalf("returned %d credits", len(crs.credits))
	}
	for _, c := range crs.credits {
		if c.VC != 0 {
			t.Fatalf("credit VC %d", c.VC)
		}
	}
	// Head flit: arrive t=10, route done t=11, VC + switch allocation in the
	// same cycle (aggressive single-cycle pipeline), crossbar 3 ticks =>
	// channel inject t=14, channel latency 1 => delivery t=15.
	if out.times[0] != 15 {
		t.Fatalf("head delivered at %d, want 15", out.times[0])
	}
	// Hop count incremented once per router traversal.
	if out.flits[0].Pkt.HopCount != 1 {
		t.Fatalf("hop count %d", out.flits[0].Pkt.HopCount)
	}
	r.VerifyIdle()
}

func TestIQStallsWithoutDownstreamCredits(t *testing.T) {
	// Disable the sink's automatic credit return to starve the router.
	s, r, out, _ := buildLoneRouter(t, iqDoc, 2, 2)
	out.creditC = nil
	pushPacket(s, r, 4, 0, 10)
	s.Run()
	if len(out.flits) != 2 {
		t.Fatalf("forwarded %d flits with 2 credits", len(out.flits))
	}
	// Returning credits resumes the stream.
	back := channel.NewCredit(s, "late", 1)
	back.SetSink(r, 1)
	out.creditC = back
	s.Schedule(sim.HandlerFunc(func(*sim.Event) {
		r.ReceiveCredit(1, types.Credit{VC: out.flits[0].VC})
		r.ReceiveCredit(1, types.Credit{VC: out.flits[0].VC})
	}), sim.Time{Tick: s.Now().Tick + 1}, 0, nil)
	s.Run()
	if len(out.flits) != 4 {
		t.Fatalf("forwarded %d flits after credit return", len(out.flits))
	}
	r.VerifyIdle()
}

func TestIQInputBufferOverrunPanics(t *testing.T) {
	s, r, _, _ := buildLoneRouter(t, iqDoc, 2, 0x7fffffff)
	// 9 flits into an 8-deep buffer in one tick: the 9th must panic.
	m := types.NewMessage(1, 0, 5, 9, 9, 9)
	panicked := false
	s.Schedule(sim.HandlerFunc(func(*sim.Event) {
		defer func() { panicked = recover() != nil }()
		for _, f := range m.Packets[0].Flits {
			f.VC = 0
			r.ReceiveFlit(0, f)
		}
	}), sim.Time{Tick: 1}, 0, nil)
	s.Run()
	if !panicked {
		t.Fatal("expected buffer overrun panic")
	}
}

func TestIQRejectsUnregisteredVC(t *testing.T) {
	s, r, _, _ := buildLoneRouter(t, iqDoc, 2, 8)
	m := types.NewMessage(1, 0, 5, 9, 1, 1)
	m.Packets[0].Flits[0].VC = 7
	panicked := false
	s.Schedule(sim.HandlerFunc(func(*sim.Event) {
		defer func() { panicked = recover() != nil }()
		r.ReceiveFlit(0, m.Packets[0].Flits[0])
	}), sim.Time{Tick: 1}, 0, nil)
	s.Run()
	if !panicked {
		t.Fatal("expected unregistered VC panic")
	}
}

func TestIQRoutingToUnusedPortRejected(t *testing.T) {
	// Route to port 1 but leave it unconnected: validateResponse must panic.
	s := sim.NewSimulator(1)
	r := New(s, "r0", config.MustParse(iqDoc), Params{
		ID: 0, Radix: 2, RoutingCtor: passCtor(2), ChannelPeriod: 1,
	})
	crs := &creditSink{}
	cc := channel.NewCredit(s, "cr", 1)
	cc.SetSink(crs, 0)
	r.ConnectCreditOut(0, cc)
	m := types.NewMessage(1, 0, 5, 9, 1, 1)
	m.Packets[0].Flits[0].VC = 0
	s.Schedule(sim.HandlerFunc(func(*sim.Event) {
		r.ReceiveFlit(0, m.Packets[0].Flits[0])
	}), sim.Time{Tick: 1}, 0, nil)
	panicked := false
	func() {
		defer func() { panicked = recover() != nil }()
		s.Run()
	}()
	if !panicked {
		t.Fatal("expected unused-port rejection")
	}
}

func TestIOQForwardsThroughOutputQueue(t *testing.T) {
	doc := `{
	  "architecture": "input_output_queued",
	  "num_vcs": 2,
	  "speedup": 1,
	  "input_buffer_depth": 8,
	  "output_queue_depth": 4,
	  "crossbar_latency": 2
	}`
	s, r, out, _ := buildLoneRouter(t, doc, 2, 8)
	pushPacket(s, r, 3, 1, 10)
	s.Run()
	if len(out.flits) != 3 {
		t.Fatalf("forwarded %d flits", len(out.flits))
	}
	r.VerifyIdle()
}

func TestOQForwardsAndSensesOccupancy(t *testing.T) {
	doc := `{
	  "architecture": "output_queued",
	  "num_vcs": 1,
	  "input_buffer_depth": 8,
	  "queue_latency": 5,
	  "output_queue_depth": 16,
	  "congestion_sensor": {"granularity": "port", "source": "output"}
	}`
	s, r, out, _ := buildLoneRouter(t, doc, 1, 0x100000)
	pushPacket(s, r, 4, 0, 10)
	s.Run()
	if len(out.flits) != 4 {
		t.Fatalf("forwarded %d flits", len(out.flits))
	}
	r.VerifyIdle()
	if r.Sensor().Congestion(s.Now().Tick, 1, 0) != 0 {
		t.Fatal("sensor should read zero when idle")
	}
}

func TestRouterAccessors(t *testing.T) {
	_, r, _, _ := buildLoneRouter(t, iqDoc, 2, 8)
	if r.ID() != 0 || r.Radix() != 2 || r.NumVCs() != 2 || r.InputBufferDepth() != 8 {
		t.Fatal("accessor values wrong")
	}
}

func TestRouterConfigValidation(t *testing.T) {
	s := sim.NewSimulator(1)
	mk := func(doc string, p Params) func() {
		return func() { New(s, "r", config.MustParse(doc), p) }
	}
	base := Params{ID: 0, Radix: 2, RoutingCtor: passCtor(1), ChannelPeriod: 2}
	cases := []func(){
		mk(`{"architecture": "nope"}`, base),
		mk(`{"architecture": "input_queued", "num_vcs": 0}`, base),
		mk(`{"architecture": "input_queued", "input_buffer_depth": 0}`, base),
		mk(`{"architecture": "input_queued", "speedup": 3}`, base), // does not divide period 2
		mk(`{"architecture": "input_queued", "routing_latency": 0}`, base),
		mk(`{"architecture": "input_queued", "crossbar_latency": 0}`, base),
		mk(`{"architecture": "output_queued", "queue_latency": 0}`, base),
		mk(`{"architecture": "input_queued"}`, Params{ID: 0, Radix: 0, RoutingCtor: passCtor(1), ChannelPeriod: 1}),
		mk(`{"architecture": "input_queued"}`, Params{ID: 0, Radix: 2, RoutingCtor: nil, ChannelPeriod: 1}),
		mk(`{"architecture": "input_queued"}`, Params{ID: 0, Radix: 2, RoutingCtor: passCtor(1), ChannelPeriod: 0}),
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

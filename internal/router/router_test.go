package router

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"supersim/internal/config"
	"supersim/internal/sim"
	"supersim/internal/types"
)

func flitOf(size, idx int) *types.Flit {
	m := types.NewMessage(1, 0, 0, 1, size, size)
	return m.Packets[0].Flits[idx]
}

func TestFlitQueueFIFO(t *testing.T) {
	var q flitQueue
	if q.peek() != nil || q.pop() != nil || q.len() != 0 {
		t.Fatal("empty queue misbehaves")
	}
	var flits []*types.Flit
	for i := 0; i < 10; i++ {
		f := flitOf(1, 0)
		flits = append(flits, f)
		q.push(f)
	}
	if q.len() != 10 {
		t.Fatalf("len = %d", q.len())
	}
	for i := 0; i < 10; i++ {
		if q.peek() != flits[i] {
			t.Fatalf("peek %d wrong", i)
		}
		if q.pop() != flits[i] {
			t.Fatalf("pop %d wrong", i)
		}
	}
}

func TestFlitQueueWrapAndGrow(t *testing.T) {
	var q flitQueue
	// Interleave pushes and pops to force ring wraparound, then grow.
	prop := func(ops []bool) bool {
		var q flitQueue
		var model []*types.Flit
		for _, push := range ops {
			if push || len(model) == 0 {
				f := flitOf(1, 0)
				q.push(f)
				model = append(model, f)
			} else {
				got := q.pop()
				if got != model[0] {
					return false
				}
				model = model[1:]
			}
			if q.len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	_ = q
}

func TestDelayLineOrdering(t *testing.T) {
	var d delayLine
	if _, ok := d.next(); ok {
		t.Fatal("empty delay line has a next")
	}
	f1, f2 := flitOf(1, 0), flitOf(1, 0)
	d.push(10, f1, 3)
	d.push(10, f2, 4)
	d.push(15, flitOf(1, 0), 5)
	at, ok := d.next()
	if !ok || at != 10 {
		t.Fatalf("next = %d, %v", at, ok)
	}
	if fl := d.pop(); fl.f != f1 || fl.port != 3 {
		t.Fatal("pop order wrong")
	}
	if fl := d.pop(); fl.f != f2 || fl.port != 4 {
		t.Fatal("same-tick FIFO wrong")
	}
	at, _ = d.next()
	if at != 15 {
		t.Fatalf("next after pops = %d", at)
	}
}

func TestDelayLineMonotonePanics(t *testing.T) {
	var d delayLine
	d.push(10, flitOf(1, 0), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.push(9, flitOf(1, 0), 0)
}

func TestDelayLineCompaction(t *testing.T) {
	var d delayLine
	for i := 0; i < 1000; i++ {
		d.push(sim.Tick(i), flitOf(1, 0), 0)
		if i%2 == 1 {
			d.pop()
			d.pop()
		}
	}
	for {
		if _, ok := d.next(); !ok {
			break
		}
		d.pop()
	}
	if len(d.q) != 0 || d.head != 0 {
		t.Fatalf("drained line not reset: len=%d head=%d", len(d.q), d.head)
	}
}

// schedClient is a tiny test model of an input VC contending for an output.
type schedClient struct {
	eligible bool
	age      sim.Tick
}

func grantOf(x *xbarSched, clients map[int]*schedClient) int {
	return x.grant(
		func(c int) bool { return clients[c].eligible },
		func(c int) sim.Tick { return clients[c].age },
	)
}

func TestXbarSchedRoundRobinRotation(t *testing.T) {
	x := newXbarSched(FlitBuffer, polRoundRobin, nil)
	clients := map[int]*schedClient{
		1: {eligible: true}, 5: {eligible: true}, 9: {eligible: true},
	}
	for _, c := range []int{1, 5, 9} {
		x.addContender(c)
	}
	var got []int
	for i := 0; i < 6; i++ {
		w := grantOf(x, clients)
		got = append(got, w)
		x.onSent(w, true, true) // single-flit packets
		x.addContender(w)       // re-enters with the next packet
	}
	want := []int{1, 5, 9, 1, 5, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation %v, want %v", got, want)
		}
	}
}

func TestXbarSchedAgePolicy(t *testing.T) {
	x := newXbarSched(FlitBuffer, polAgeBased, nil)
	clients := map[int]*schedClient{
		0: {eligible: true, age: 30},
		1: {eligible: true, age: 10},
		2: {eligible: false, age: 1}, // oldest but ineligible
	}
	for c := range clients {
		x.addContender(c)
	}
	if w := grantOf(x, clients); w != 1 {
		t.Fatalf("grant = %d, want oldest eligible (1)", w)
	}
}

func TestXbarSchedRandomPolicy(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	x := newXbarSched(FlitBuffer, polRandom, rng)
	clients := map[int]*schedClient{0: {eligible: true}, 1: {eligible: true}}
	x.addContender(0)
	x.addContender(1)
	seen := map[int]int{}
	for i := 0; i < 200; i++ {
		seen[grantOf(x, clients)]++
	}
	if seen[0] == 0 || seen[1] == 0 {
		t.Fatalf("random policy skewed: %v", seen)
	}
}

func TestXbarSchedPacketBufferLocksThroughStall(t *testing.T) {
	// PB: once a packet wins, a stall (e.g. waiting for body flits) blocks
	// the output rather than letting another packet in.
	x := newXbarSched(PacketBuffer, polRoundRobin, nil)
	clients := map[int]*schedClient{0: {eligible: true}, 1: {eligible: true}}
	x.addContender(0)
	x.addContender(1)
	w := grantOf(x, clients)
	if w != 0 {
		t.Fatalf("first grant = %d", w)
	}
	x.onSent(0, true, false) // head of a multi-flit packet: locks
	clients[0].eligible = false
	if w := grantOf(x, clients); w != -1 {
		t.Fatalf("PB must stall locked output, granted %d", w)
	}
	clients[0].eligible = true
	if w := grantOf(x, clients); w != 0 {
		t.Fatal("lock holder must resume")
	}
	x.onSent(0, false, true) // tail: unlock and remove
	if w := grantOf(x, clients); w != 1 {
		t.Fatalf("after tail, other client should win, got %d", w)
	}
}

func TestXbarSchedWTAUnlocksOnStall(t *testing.T) {
	x := newXbarSched(WinnerTakeAll, polRoundRobin, nil)
	clients := map[int]*schedClient{0: {eligible: true}, 1: {eligible: true}}
	x.addContender(0)
	x.addContender(1)
	if w := grantOf(x, clients); w != 0 {
		t.Fatal("first grant")
	}
	x.onSent(0, true, false) // locks
	if w := grantOf(x, clients); w != 0 {
		t.Fatal("lock holder keeps output while eligible")
	}
	clients[0].eligible = false // credit stall
	if w := grantOf(x, clients); w != 1 {
		t.Fatalf("WTA must unlock on stall, granted %d", w)
	}
	x.onSent(1, true, false) // client 1 takes over and locks
	clients[0].eligible = true
	if w := grantOf(x, clients); w != 1 {
		t.Fatal("new lock holder must keep output")
	}
}

func TestXbarSchedFlitBufferInterleaves(t *testing.T) {
	// FB: no locking; two multi-flit packets alternate per cycle, each
	// taking 50% of the bandwidth.
	x := newXbarSched(FlitBuffer, polRoundRobin, nil)
	clients := map[int]*schedClient{0: {eligible: true}, 1: {eligible: true}}
	x.addContender(0)
	x.addContender(1)
	var got []int
	for i := 0; i < 6; i++ {
		w := grantOf(x, clients)
		got = append(got, w)
		x.onSent(w, i < 2, false) // heads first, then bodies
	}
	want := []int{0, 1, 0, 1, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FB interleave %v, want %v", got, want)
		}
	}
}

func TestXbarSchedRemoveUnknownPanics(t *testing.T) {
	x := newXbarSched(FlitBuffer, polRoundRobin, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	x.removeContender(7)
}

func TestParseFlowControlAndPolicies(t *testing.T) {
	if ParseFlowControl("flit_buffer") != FlitBuffer ||
		ParseFlowControl("packet_buffer") != PacketBuffer ||
		ParseFlowControl("winner_take_all") != WinnerTakeAll {
		t.Fatal("flow control parsing wrong")
	}
	mustPanic(t, func() { ParseFlowControl("bogus") })
	if parsePolicy("round_robin") != polRoundRobin ||
		parsePolicy("age_based") != polAgeBased ||
		parsePolicy("random") != polRandom {
		t.Fatal("policy parsing wrong")
	}
	mustPanic(t, func() { parsePolicy("bogus") })
	if parseVCPolicy(config.MustParse(`{}`)) != false ||
		parseVCPolicy(config.MustParse(`{"vc_policy": "age_based"}`)) != true {
		t.Fatal("vc policy parsing wrong")
	}
	mustPanic(t, func() { parseVCPolicy(config.MustParse(`{"vc_policy": "x"}`)) })
}

func TestAllocateVCsGrantsFreeVCs(t *testing.T) {
	in := make([]inputVC, 4)
	for i := range in {
		in[i].outPort, in[i].outVC = -1, -1
	}
	holder := [][]int{{-1, -1}} // 1 port, 2 VCs
	sched := []*xbarSched{newXbarSched(FlitBuffer, polRoundRobin, nil)}
	// Clients 0 and 1 both want port 0; two VCs available -> both granted.
	for _, c := range []int{0, 1} {
		m := types.NewMessage(uint64(c), 0, 0, 1, 1, 1)
		in[c].q.push(m.Packets[0].Flits[0])
		in[c].resp.Port = 0
		in[c].resp.VCs = []int{0, 1}
	}
	kept, progress := allocateVCs(nil, 0, nil, []int{0, 1}, make([]int, 2), 0, false, in, holder, sched)
	if !progress || len(kept) != 0 {
		t.Fatalf("kept=%v progress=%v", kept, progress)
	}
	if in[0].outVC == in[1].outVC {
		t.Fatal("two clients granted the same output VC")
	}
	if holder[0][in[0].outVC] != 0 || holder[0][in[1].outVC] != 1 {
		t.Fatal("holder bookkeeping wrong")
	}
}

func TestAllocateVCsBlocksWhenFull(t *testing.T) {
	in := make([]inputVC, 2)
	holder := [][]int{{5}} // VC held by client 5
	sched := []*xbarSched{newXbarSched(FlitBuffer, polRoundRobin, nil)}
	m := types.NewMessage(1, 0, 0, 1, 1, 1)
	in[0].q.push(m.Packets[0].Flits[0])
	in[0].resp.Port = 0
	in[0].resp.VCs = []int{0}
	in[0].outVC = -1
	kept, progress := allocateVCs(nil, 0, nil, []int{0}, make([]int, 1), 0, false, in, holder, sched)
	if progress || len(kept) != 1 {
		t.Fatalf("kept=%v progress=%v, want blocked", kept, progress)
	}
}

func TestAllocateVCsAgeOrder(t *testing.T) {
	// One free VC, two waiting clients; the older packet must win
	// regardless of list order.
	in := make([]inputVC, 2)
	holder := [][]int{{-1}}
	sched := []*xbarSched{newXbarSched(FlitBuffer, polRoundRobin, nil)}
	for c := 0; c < 2; c++ {
		m := types.NewMessage(uint64(c), 0, 0, 1, 1, 1)
		m.CreateTime = sim.Tick(100 - c*50) // client 1 is older
		in[c].q.push(m.Packets[0].Flits[0])
		in[c].resp.Port = 0
		in[c].resp.VCs = []int{0}
		in[c].outVC = -1
	}
	kept, _ := allocateVCs(nil, 0, nil, []int{0, 1}, make([]int, 2), 0, true, in, holder, sched)
	if holder[0][0] != 1 {
		t.Fatalf("holder = %d, want older client 1", holder[0][0])
	}
	if len(kept) != 1 || kept[0] != 0 {
		t.Fatalf("kept = %v", kept)
	}
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

package router

import (
	"bytes"
	"strings"
	"testing"

	"supersim/internal/snapshot"
	"supersim/internal/types"
)

const ioqCheckpointDoc = `{
  "architecture": "input_output_queued",
  "num_vcs": 2,
  "speedup": 1,
  "input_buffer_depth": 8,
  "output_queue_depth": 4,
  "crossbar_latency": 2
}`

const oqCheckpointDoc = `{
  "architecture": "output_queued",
  "num_vcs": 1,
  "input_buffer_depth": 8,
  "queue_latency": 5,
  "output_queue_depth": 16,
  "congestion_sensor": {"granularity": "port", "source": "output"}
}`

// stalledRouter builds a lone router with a single downstream credit and no
// credit returns, then pushes a 3-flit packet: one flit escapes, the rest of
// the packet is buffered inside the router — routed, part-way through the
// pipeline, but unable to leave.
func stalledRouter(t *testing.T, doc string, vcs int) Stater {
	t.Helper()
	s, r, out, _ := buildLoneRouter(t, doc, vcs, 1)
	out.creditC = nil // starve the router: no credit returns
	pushPacket(s, r, 3, vcs-1, 10)
	s.Run()
	if len(out.flits) != 1 {
		t.Fatalf("router forwarded %d flits with 1 credit", len(out.flits))
	}
	return r.(Stater)
}

// saveRouter collects the router's buffered messages into a table and
// serializes both, returning the table bytes and state bytes.
func saveRouter(t *testing.T, r Stater) (tabData, data []byte) {
	t.Helper()
	tab := types.NewMessageTable()
	r.Collect(tab)
	if tab.Len() != 1 {
		t.Fatalf("collected %d messages, want the stalled packet's", tab.Len())
	}
	te := snapshot.NewEncoder()
	tab.SaveState(te)
	e := snapshot.NewEncoder()
	r.SaveState(e, tab)
	return te.Bytes(), e.Bytes()
}

// roundTripRouter restores the stalled router's state into a freshly built
// identical router and requires a byte-identical re-save, then runs the
// truncation sweep.
func roundTripRouter(t *testing.T, doc string, vcs int) {
	t.Helper()
	r := stalledRouter(t, doc, vcs)
	tabData, data := saveRouter(t, r)

	rtab, err := types.LoadMessageTable(snapshot.NewDecoder(tabData), nil)
	if err != nil {
		t.Fatal(err)
	}
	_, fresh, _, _ := buildLoneRouter(t, doc, vcs, 1)
	got := fresh.(Stater)
	d := snapshot.NewDecoder(data)
	if err := got.LoadState(d, rtab); err != nil {
		t.Fatal(err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left after load", d.Remaining())
	}
	e2 := snapshot.NewEncoder()
	got.SaveState(e2, rtab)
	if !bytes.Equal(e2.Bytes(), data) {
		t.Fatal("re-saved router state is not byte-identical")
	}

	for _, n := range []int{0, 1, len(data) / 2, len(data) - 1} {
		_, tr, _, _ := buildLoneRouter(t, doc, vcs, 1)
		if err := tr.(Stater).LoadState(snapshot.NewDecoder(data[:n]), rtab); err == nil {
			t.Fatalf("truncation to %d bytes loaded without error", n)
		}
	}
}

func TestIQStateRoundTrip(t *testing.T)  { roundTripRouter(t, iqDoc, 2) }
func TestIOQStateRoundTrip(t *testing.T) { roundTripRouter(t, ioqCheckpointDoc, 2) }
func TestOQStateRoundTrip(t *testing.T)  { roundTripRouter(t, oqCheckpointDoc, 1) }

func TestRouterLoadRejectsMismatchedBuild(t *testing.T) {
	r := stalledRouter(t, iqDoc, 2)
	tabData, data := saveRouter(t, r)
	rtab, err := types.LoadMessageTable(snapshot.NewDecoder(tabData), nil)
	if err != nil {
		t.Fatal(err)
	}

	// Same architecture, different VC count: the per-port credit vectors
	// cannot line up.
	narrowDoc := strings.Replace(iqDoc, `"num_vcs": 2`, `"num_vcs": 1`, 1)
	_, narrow, _, _ := buildLoneRouter(t, narrowDoc, 1, 1)
	if err := narrow.(Stater).LoadState(snapshot.NewDecoder(data), rtab); err == nil ||
		!strings.Contains(err.Error(), "VCs") {
		t.Fatalf("VC mismatch: err = %v", err)
	}

	// An OQ snapshot restored into an OQ build with a different congestion
	// sensor configuration must fail on the sensor state.
	oq := stalledRouter(t, oqCheckpointDoc, 1)
	oqTab, oqData := saveRouter(t, oq)
	oqrtab, err := types.LoadMessageTable(snapshot.NewDecoder(oqTab), nil)
	if err != nil {
		t.Fatal(err)
	}
	nullDoc := strings.Replace(oqCheckpointDoc,
		`"congestion_sensor": {"granularity": "port", "source": "output"}`,
		`"congestion_sensor": {"type": "null"}`, 1)
	_, ns, _, _ := buildLoneRouter(t, nullDoc, 1, 1)
	if err := ns.(Stater).LoadState(snapshot.NewDecoder(oqData), oqrtab); err == nil ||
		!strings.Contains(err.Error(), "congestion sensor") {
		t.Fatalf("sensor mismatch: err = %v", err)
	}
}

package router

import (
	"supersim/internal/config"
	"supersim/internal/routing"
	"supersim/internal/sim"
	"supersim/internal/telemetry"
	"supersim/internal/types"
)

func init() {
	Registry.Register("output_queued", func(s *sim.Simulator, name string, cfg *config.Settings, p Params) Router {
		return NewOQ(s, name, cfg, p)
	})
}

// oqInput is the per-(input port, VC) state of the OQ architecture.
type oqInput struct {
	q      flitQueue
	routed bool
	resp   routing.Response
	outVC  int
}

// OQ is the idealistic output-queued router architecture: zero head-of-line
// blocking and no scheduling conflicts. All input ports can simultaneously
// put a packet in any output queue; flits wait in the output queues until
// downstream credits are available. Output queues may be infinite
// (output_queue_depth = 0) or finite. The model is deliberately devoid of VC
// allocation and crossbar scheduling, which also makes it the fastest
// architecture to simulate.
type OQ struct {
	base
	queueLat  sim.Tick // input-queue to output-queue transfer latency
	outDepth  int      // per (port, vc); 0 = infinite
	chanClock *sim.Clock

	dl       delayLine
	in       []oqInput
	outQ     []flitQueue // [port*vcs+vc]
	outOcc   []int       // reserved occupancy incl. in-flight transfers
	outOwner []int       // [port*vcs+vc] input client streaming a packet, -1
	outBusy  []bool      // per port: drain event scheduled
	outRR    []int       // per port: round robin VC pointer
	transfer []sim.Tick  // per client: tick of last transfer (rate limit)
}

// NewOQ builds an output-queued router from its settings block.
func NewOQ(s *sim.Simulator, name string, cfg *config.Settings, p Params) *OQ {
	r := &OQ{base: newBase(s, name, cfg, p)}
	r.queueLat = sim.Tick(cfg.UIntOr("queue_latency", 1))
	if r.queueLat < 1 {
		r.Panicf("queue_latency must be at least one tick")
	}
	r.outDepth = int(cfg.UIntOr("output_queue_depth", 0))
	r.chanClock = sim.NewClock(r.chanPeriod, 0)
	r.in = make([]oqInput, r.radix*r.vcs)
	for i := range r.in {
		r.in[i].outVC = -1
	}
	r.outQ = make([]flitQueue, r.radix*r.vcs)
	r.outOcc = make([]int, r.radix*r.vcs)
	r.outOwner = make([]int, r.radix*r.vcs)
	for i := range r.outOwner {
		r.outOwner[i] = -1
	}
	r.outBusy = make([]bool, r.radix)
	r.outRR = make([]int, r.radix)
	r.transfer = make([]sim.Tick, r.radix*r.vcs)
	for i := range r.transfer {
		r.transfer[i] = ^sim.Tick(0)
	}
	return r
}

func (r *OQ) client(port, vc int) int { return port*r.vcs + vc }

// ReceiveFlit accepts a flit from an input channel.
func (r *OQ) ReceiveFlit(port int, f *types.Flit) {
	r.checkPort(port)
	if f.VC < 0 || f.VC >= r.vcs {
		r.Panicf("%v arrived on unregistered VC", f)
	}
	iv := &r.in[r.client(port, f.VC)]
	if iv.q.len() >= r.bufDepth {
		r.Panicf("input buffer overrun on port %d vc %d", port, f.VC)
	}
	iv.q.push(f)
	r.noteArrival(port, f.VC)
	r.schedulePipeline()
}

// ReceiveCredit accepts a downstream credit for an output port.
func (r *OQ) ReceiveCredit(port int, c types.Credit) {
	r.checkPort(port)
	r.returnDownstreamCredit(port, c.VC)
	r.scheduleOutput(port)
}

func (r *OQ) schedulePipeline() {
	if r.pipelineScheduled {
		return
	}
	now := r.Sim().Now()
	t := sim.Time{Tick: r.coreClock.NextEdge(now.Tick), Eps: 1}
	if !now.Before(t) {
		t = sim.Time{Tick: r.coreClock.NextEdge(now.Tick + 1), Eps: 1}
	}
	r.pipelineScheduled = true
	r.Sim().Schedule(r, t, evPipeline, nil)
}

func (r *OQ) scheduleOutput(port int) {
	if r.outBusy[port] {
		return
	}
	now := r.Sim().Now()
	t := sim.Time{Tick: r.chanClock.NextEdge(now.Tick), Eps: 2}
	if !now.Before(t) {
		t = sim.Time{Tick: r.chanClock.NextEdge(now.Tick + 1), Eps: 2}
	}
	r.outBusy[port] = true
	r.Sim().Schedule(r, t, evOutput, port)
}

// ProcessEvent dispatches the router's events.
func (r *OQ) ProcessEvent(ev *sim.Event) {
	switch ev.Type {
	case evPipeline:
		r.pipelineScheduled = false
		r.pipeline()
	case evTransferArrive:
		r.drainFlights()
	case evOutput:
		port := ev.Context.(int)
		r.outBusy[port] = false
		r.drain(port)
	default:
		r.Panicf("unknown event type %d", ev.Type)
	}
}

// pipeline transfers flits from input queues to output queues, one flit per
// input VC per core cycle, with no conflicts between inputs.
func (r *OQ) pipeline() {
	now := r.Sim().Now().Tick
	progress := false
	for clientIdx := range r.in {
		iv := &r.in[clientIdx]
		f := iv.q.peek()
		if f == nil {
			continue
		}
		if r.transfer[clientIdx] == now {
			progress = true // already moved one this cycle; revisit next cycle
			continue
		}
		if f.Head && !iv.routed {
			inPort := clientIdx / r.vcs
			resp := r.algs[inPort].Route(now, f.Pkt, inPort, clientIdx%r.vcs)
			r.validateResponse(resp, f.Pkt)
			iv.resp = resp
			iv.routed = true
		}
		if f.Head && iv.outVC < 0 {
			// Acquire an output VC for the whole packet: output queues are
			// enqueued packet-atomically (wormhole), so the queue must not
			// be streaming another input's packet. Among the registered,
			// unowned VCs take the least occupied.
			best, bestOcc := -1, 0
			for _, vc := range iv.resp.VCs {
				qi := r.client(iv.resp.Port, vc)
				if r.outOwner[qi] != -1 {
					continue
				}
				if occ := r.outOcc[qi]; best == -1 || occ < bestOcc {
					best, bestOcc = vc, occ
				}
			}
			if best == -1 {
				continue // all registered VCs busy with other packets
			}
			iv.outVC = best
			r.outOwner[r.client(iv.resp.Port, best)] = clientIdx
		}
		out := r.client(iv.resp.Port, iv.outVC)
		if r.outDepth > 0 && r.outOcc[out] >= r.outDepth {
			continue // output queue full; drain will wake us
		}
		// Transfer one flit.
		iv.q.pop()
		if r.sp != nil && r.sp.Tracked(f) {
			// Arrival to transfer start: routing (synchronous here), output
			// VC acquisition, and the wait for output-queue space — the OQ
			// analogue of VC allocation.
			r.sp.Step(r.Sim(), now, f, telemetry.SpanVCAlloc)
		}
		f.VC = iv.outVC
		if f.Head {
			f.Pkt.HopCount++
		}
		r.outOcc[out]++
		r.sensor.AddOutput(now, iv.resp.Port, iv.outVC, 1)
		r.sendCreditUpstream(clientIdx/r.vcs, clientIdx%r.vcs)
		r.transfer[clientIdx] = now
		r.noteRouted()
		r.pushFlight(now+r.queueLat, f, iv.resp.Port)
		if f.Tail {
			r.outOwner[out] = -1
			iv.routed = false
			iv.outVC = -1
			iv.resp = routing.Response{}
		}
		progress = true
	}
	if progress {
		r.schedulePipeline()
	}
}

// pushFlight enqueues a queue-to-queue transfer, arming the delay line.
func (r *OQ) pushFlight(at sim.Tick, f *types.Flit, port int) {
	r.dl.push(at, f, port)
	if !r.dl.scheduled {
		r.dl.scheduled = true
		r.Sim().Schedule(r, sim.Time{Tick: at}, evTransferArrive, nil)
	}
}

// drainFlights moves every transfer completing now into its output queue.
func (r *OQ) drainFlights() {
	now := r.Sim().Now().Tick
	for {
		at, ok := r.dl.next()
		if !ok {
			r.dl.scheduled = false
			return
		}
		if at > now {
			r.Sim().Schedule(r, sim.Time{Tick: at}, evTransferArrive, nil)
			return
		}
		fl := r.dl.pop()
		if r.sp != nil && r.sp.Tracked(fl.f) {
			// Queue-to-queue transfer ends at output-queue entry.
			r.sp.Step(r.Sim(), now, fl.f, telemetry.SpanXbar)
		}
		r.outQ[r.client(fl.port, fl.f.VC)].push(fl.f)
		r.scheduleOutput(fl.port)
	}
}

// drain sends one flit from the port's output queues to the channel, round
// robin across VCs that have both a flit and a downstream credit.
func (r *OQ) drain(port int) {
	now := r.Sim().Now().Tick
	sent := false
	for i := 0; i < r.vcs; i++ {
		vc := (r.outRR[port] + i) % r.vcs
		qi := r.client(port, vc)
		if r.outQ[qi].len() == 0 {
			continue
		}
		if r.downCred[port][vc] < 1 {
			r.noteCreditStall()
			continue
		}
		f := r.outQ[qi].pop()
		if r.sp != nil && r.sp.Tracked(f) {
			// Output-queue residency: the wait for downstream credits.
			r.sp.Step(r.Sim(), now, f, telemetry.SpanOutput)
		}
		r.takeDownstreamCredit(port, vc)
		r.outOcc[qi]--
		if r.outOcc[qi] < 0 {
			r.Panicf("output queue occupancy went negative on port %d vc %d", port, vc)
		}
		r.sensor.AddOutput(now, port, vc, -1)
		r.outCh[port].Inject(f)
		r.outRR[port] = (vc + 1) % r.vcs
		sent = true
		break
	}
	if sent {
		// A slot freed: blocked inputs may proceed, and more flits may be
		// waiting to drain.
		r.schedulePipeline()
		for vc := 0; vc < r.vcs; vc++ {
			if r.outQ[r.client(port, vc)].len() > 0 {
				r.scheduleOutput(port)
				break
			}
		}
	}
}

// HOL reports the head-of-line state of one input VC for the stall
// diagnostician. The OQ architecture has no VC-allocation pipeline; a routed
// head without an output VC waits for an unowned output queue, and its
// "holder" is the input client currently streaming a packet into one of the
// wanted queues.
func (r *OQ) HOL(port, vc int) HOLState {
	iv := &r.in[r.client(port, vc)]
	st := HOLState{Occupancy: iv.q.len(), OutPort: -1, OutVC: -1, WantPort: -1, HolderPort: -1, HolderVC: -1, OutDepth: r.outDepth}
	f := iv.q.peek()
	if f == nil {
		st.Phase = HOLEmpty
		return st
	}
	st.Flit = f
	switch {
	case iv.outVC >= 0:
		st.Phase = HOLAllocated
		st.OutPort, st.OutVC = iv.resp.Port, iv.outVC
		qi := r.client(iv.resp.Port, iv.outVC)
		st.Credits = r.downCred[iv.resp.Port][iv.outVC]
		st.CreditCap = r.downCap[iv.resp.Port]
		st.OutQueued = r.outOcc[qi]
	case iv.routed:
		st.Phase = HOLAwaitingVC
		st.WantPort = iv.resp.Port
		st.WantVCs = iv.resp.VCs
		for _, w := range iv.resp.VCs {
			if r.outOwner[r.client(iv.resp.Port, w)] == -1 {
				return st // an unowned queue exists; the wait is transient
			}
		}
		owner := r.outOwner[r.client(iv.resp.Port, iv.resp.VCs[0])]
		st.HolderPort, st.HolderVC = owner/r.vcs, owner%r.vcs
	default:
		st.Phase = HOLRouting
	}
	return st
}

// VerifyIdle implements the post-drain quiescence check.
func (r *OQ) VerifyIdle() {
	for client := range r.in {
		if r.in[client].q.len() != 0 {
			r.Panicf("idle check: input VC %d holds %d flits", client, r.in[client].q.len())
		}
	}
	for i := range r.outQ {
		if r.outQ[i].len() != 0 || r.outOcc[i] != 0 {
			r.Panicf("idle check: output queue %d holds %d flits (occ %d)",
				i, r.outQ[i].len(), r.outOcc[i])
		}
		if r.outOwner[i] != -1 {
			r.Panicf("idle check: output queue %d owned by client %d", i, r.outOwner[i])
		}
	}
	if _, ok := r.dl.next(); ok {
		r.Panicf("idle check: transfers in flight")
	}
	r.verifyIdleCredits()
}

package router

import (
	"fmt"
	"math/rand/v2"

	"supersim/internal/channel"
	"supersim/internal/config"
	"supersim/internal/congestion"
	"supersim/internal/routing"
	"supersim/internal/sim"
	"supersim/internal/telemetry"
	"supersim/internal/types"
	"supersim/internal/verify"
)

// event type tags shared by the architectures
const (
	evPipeline = iota
	evRouteDone
	evXbarArrive
	evTransferArrive
	evOutput
)

// base holds the plumbing common to all router architectures: ports,
// virtual channels, clocks, downstream credit counters, the congestion
// sensor, and per-input-port routing engines.
type base struct {
	sim.ComponentBase
	id    int
	radix int
	vcs   int

	bufDepth   int
	chanPeriod sim.Tick
	coreClock  *sim.Clock

	//sslint:nosnapshot — topology wiring, re-established by the connect calls during the rebuild
	outCh []*channel.Channel // per output port, nil if unconnected
	//sslint:nosnapshot — topology wiring, re-established by the connect calls during the rebuild
	creditOut []*channel.CreditChannel // per input port, nil if unconnected
	downCred  [][]int                  // [port][vc] available downstream credits
	//sslint:nosnapshot — configuration constants, re-derived from the config during the rebuild
	downCap []int // [port] initial per-VC downstream credits

	sensor congestion.Tracker
	algs   []routing.Algorithm // per input port
	rng    *rand.Rand

	// invariant verification, nil unless attached to the simulator
	v *verify.Verifier
	//sslint:nosnapshot — verification wiring, re-attached during the rebuild; ledger state is reconstructed from restored credits
	credLed []*verify.CreditLedger // per output port, mirrors downCred
	bufLed  []*verify.BufferLedger // per input port, tracks buffer occupancy

	// telemetry probe and span recorder, nil unless attached to the simulator
	tp *telemetry.RouterProbe
	sp *telemetry.Spans

	pipelineScheduled bool

	// statistics
	flitsRouted uint64
}

func newBase(s *sim.Simulator, name string, cfg *config.Settings, p Params) base {
	if p.Radix <= 0 {
		panic("router: radix must be positive")
	}
	if p.ChannelPeriod == 0 {
		panic("router: channel period must be positive")
	}
	vcs := int(cfg.UIntOr("num_vcs", 1))
	if vcs <= 0 {
		panic("router: num_vcs must be positive")
	}
	bufDepth := int(cfg.UIntOr("input_buffer_depth", 16))
	if bufDepth <= 0 {
		panic("router: input_buffer_depth must be positive")
	}
	speedup := cfg.UIntOr("speedup", 1)
	if speedup == 0 || p.ChannelPeriod%sim.Tick(speedup) != 0 {
		panic("router: speedup must divide the channel period")
	}
	b := base{
		ComponentBase: sim.NewComponentBase(s, name),
		id:            p.ID,
		radix:         p.Radix,
		vcs:           vcs,
		bufDepth:      bufDepth,
		chanPeriod:    p.ChannelPeriod,
		coreClock:     sim.NewClock(p.ChannelPeriod/sim.Tick(speedup), 0),
		outCh:         make([]*channel.Channel, p.Radix),
		creditOut:     make([]*channel.CreditChannel, p.Radix),
		downCred:      make([][]int, p.Radix),
		downCap:       make([]int, p.Radix),
		// A stream derived from the router's (unique) name: the router draws
		// the same sequence whether it executes serially or on a shard of the
		// parallel engine, and independently of other components' draws.
		rng: s.DeriveRand(name),
	}
	for i := range b.downCred {
		b.downCred[i] = make([]int, vcs)
	}
	if b.v = verify.For(s); b.v != nil {
		b.credLed = make([]*verify.CreditLedger, p.Radix)
		b.bufLed = make([]*verify.BufferLedger, p.Radix)
		for port := 0; port < p.Radix; port++ {
			b.bufLed[port] = b.v.NewBufferLedger(fmt.Sprintf("%s.in%d", name, port), vcs, bufDepth)
		}
	}
	b.tp = telemetry.ForRouter(s, name, vcs)
	b.sp = telemetry.SpansFor(s)
	b.sensor = congestion.New(cfg.SubOr("congestion_sensor"), p.Radix, vcs)
	if p.RoutingCtor == nil {
		panic("router: routing constructor required")
	}
	b.algs = make([]routing.Algorithm, p.Radix)
	for port := range b.algs {
		b.algs[port] = p.RoutingCtor(p.ID, port, b.sensor, b.rng)
	}
	return b
}

// ID returns the router's index within the network.
func (b *base) ID() int { return b.id }

// Radix returns the number of ports.
func (b *base) Radix() int { return b.radix }

// NumVCs returns the number of virtual channels per port.
func (b *base) NumVCs() int { return b.vcs }

// InputBufferDepth returns the per-VC input buffer capacity in flits.
func (b *base) InputBufferDepth() int { return b.bufDepth }

// Sensor returns the router's congestion sensor.
func (b *base) Sensor() congestion.Tracker { return b.sensor }

// ConnectOutput wires the flit channel leaving an output port.
func (b *base) ConnectOutput(port int, ch *channel.Channel) {
	b.checkPort(port)
	b.outCh[port] = ch
}

// OutputChannel returns the flit channel leaving an output port, or nil when
// the port is unconnected. The stall diagnostician uses it to follow blocked
// dependency chains downstream.
func (b *base) OutputChannel(port int) *channel.Channel {
	b.checkPort(port)
	return b.outCh[port]
}

// ConnectCreditOut wires the upstream credit return channel of an input port.
func (b *base) ConnectCreditOut(port int, cc *channel.CreditChannel) {
	b.checkPort(port)
	b.creditOut[port] = cc
}

// SetDownstreamCredits initializes an output port's per-VC credit counters.
func (b *base) SetDownstreamCredits(port int, perVC int) {
	b.checkPort(port)
	if perVC <= 0 {
		b.Panicf("downstream credits must be positive, got %d", perVC)
	}
	b.downCap[port] = perVC
	for vc := range b.downCred[port] {
		b.downCred[port][vc] = perVC
	}
	if b.v != nil {
		b.credLed[port] = b.v.NewCreditLedger(fmt.Sprintf("%s.out%d", b.Name(), port), b.vcs, perVC)
	}
}

func (b *base) checkPort(port int) {
	if port < 0 || port >= b.radix {
		b.Panicf("port %d out of range (radix %d)", port, b.radix)
	}
}

// validateResponse applies the framework error detection to a routing
// decision: the port must exist and be connected, and every VC must be
// registered (in range).
func (b *base) validateResponse(resp routing.Response, pkt *types.Packet) {
	if resp.Port < 0 || resp.Port >= b.radix {
		b.Panicf("routing %v to invalid port %d", pkt, resp.Port)
	}
	if b.outCh[resp.Port] == nil {
		b.Panicf("routing %v targets unused output port %d — rejected", pkt, resp.Port)
	}
	if len(resp.VCs) == 0 {
		b.Panicf("routing %v returned no VCs", pkt)
	}
	for _, vc := range resp.VCs {
		if vc < 0 || vc >= b.vcs {
			b.Panicf("routing %v uses unregistered VC %d (have %d)", pkt, vc, b.vcs)
		}
	}
}

// takeDownstreamCredit consumes one downstream credit and updates the sensor.
//
//sslint:hotpath
func (b *base) takeDownstreamCredit(port, vc int) {
	b.downCred[port][vc]--
	if b.downCred[port][vc] < 0 {
		b.Panicf("downstream credits went negative on port %d vc %d", port, vc)
	}
	if b.credLed != nil {
		b.credLed[port].Debit(vc, b.downCred[port][vc])
	}
	b.sensor.AddDownstream(b.Sim().Now().Tick, port, vc, 1)
}

// returnDownstreamCredit restores one downstream credit (on credit arrival).
//
//sslint:hotpath
func (b *base) returnDownstreamCredit(port, vc int) {
	b.downCred[port][vc]++
	if b.downCap[port] > 0 && b.downCred[port][vc] > b.downCap[port] {
		b.Panicf("downstream credits exceeded capacity on port %d vc %d", port, vc)
	}
	if b.credLed != nil {
		b.credLed[port].Credit(vc, b.downCred[port][vc])
	}
	b.sensor.AddDownstream(b.Sim().Now().Tick, port, vc, -1)
}

// noteArrival records a flit entering an input buffer with the verifier's
// buffer ledger; architectures call it from ReceiveFlit.
//
//sslint:hotpath
func (b *base) noteArrival(port, vc int) {
	if b.bufLed != nil {
		b.bufLed[port].Arrive(vc)
	}
	if b.tp != nil {
		b.tp.FlitBuffered(vc)
	}
}

// sendCreditUpstream releases one input buffer slot back to the sender.
//
//sslint:hotpath
func (b *base) sendCreditUpstream(port, vc int) {
	cc := b.creditOut[port]
	if cc == nil {
		b.Panicf("no credit channel on input port %d", port)
	}
	if b.bufLed != nil {
		b.bufLed[port].Free(vc)
	}
	if b.tp != nil {
		b.tp.FlitUnbuffered(vc)
	}
	cc.Inject(types.Credit{VC: vc})
}

// noteRouted counts one flit forwarded, in both the router's own statistic
// and the telemetry registry.
//
//sslint:hotpath
func (b *base) noteRouted() {
	b.flitsRouted++
	if b.tp != nil {
		b.tp.FlitRouted()
	}
}

// noteAlloc reports one VC-allocation round to telemetry given the pending
// client counts before and after the round.
//
//sslint:hotpath
func (b *base) noteAlloc(before, after int) {
	if b.tp != nil && before > 0 {
		b.tp.Alloc(before-after, after)
	}
}

// noteCreditStall counts one cycle in which a flit was ready but the
// downstream credit pool was empty.
//
//sslint:hotpath
func (b *base) noteCreditStall() {
	if b.tp != nil {
		b.tp.CreditStall()
	}
}

// FlitsRouted returns the number of flits this router has forwarded.
func (b *base) FlitsRouted() uint64 { return b.flitsRouted }

// verifyIdleCredits panics unless every connected output port has all of its
// downstream credits back.
func (b *base) verifyIdleCredits() {
	for port := 0; port < b.radix; port++ {
		if b.outCh[port] == nil || b.downCap[port] == 0 {
			continue
		}
		for vc := 0; vc < b.vcs; vc++ {
			if b.downCred[port][vc] != b.downCap[port] {
				b.Panicf("idle check: port %d vc %d holds %d of %d downstream credits",
					port, vc, b.downCred[port][vc], b.downCap[port])
			}
		}
	}
}

// allocateVCs performs one cycle of output VC allocation shared by the IQ
// and IOQ architectures. Pending clients (input VCs whose head packet has a
// routing response) try to take a free output VC from their response's
// registered set. Contention is resolved either by a rotating start offset
// (round robin) or by packet age (oldest first). It returns the clients
// still pending and whether any grant was made.
//
// scratch is caller-owned ordering storage with capacity for at least
// len(pending) entries (routers size it to their input VC count once); grant
// marks ride in the inputVC structs. The allocator itself never allocates —
// it runs every core cycle on every router.
// s, now and sp drive span recording: a grant whose head flit is tracked by
// the span recorder closes that flit's vc_alloc segment, routed to s's shard
// lane under a parallel engine. sp is nil when span recording is disabled
// (then s may be nil too).
//
//sslint:hotpath
func allocateVCs(s *sim.Simulator, now sim.Tick, sp *telemetry.Spans, pending, scratch []int, rotate int, ageOrder bool,
	in []inputVC, holder [][]int, sched []*xbarSched) ([]int, bool) {
	n := len(pending)
	if n == 0 {
		return pending, false
	}
	order := scratch[:n]
	if ageOrder {
		copy(order, pending)
		// Insertion sort by age: pending lists are short.
		for i := 1; i < n; i++ {
			c := order[i]
			a := in[c].q.peek().Pkt.Age()
			j := i - 1
			for j >= 0 && in[order[j]].q.peek().Pkt.Age() > a {
				order[j+1] = order[j]
				j--
			}
			order[j+1] = c
		}
	} else {
		start := rotate % n
		for i := range order {
			order[i] = pending[(start+i)%n]
		}
	}
	progress := false
	for _, client := range order {
		iv := &in[client]
		for _, vc := range iv.resp.VCs {
			if holder[iv.resp.Port][vc] == -1 {
				holder[iv.resp.Port][vc] = client
				iv.outPort, iv.outVC = iv.resp.Port, vc
				sched[iv.resp.Port].addContender(client)
				iv.granted = true
				progress = true
				if sp != nil {
					if f := iv.q.peek(); sp.Tracked(f) {
						// Arrival to VC grant: route computation plus the
						// wait for a free output VC.
						sp.Step(s, now, f, telemetry.SpanVCAlloc)
					}
				}
				break
			}
		}
	}
	kept := pending[:0]
	for _, client := range pending {
		iv := &in[client]
		if iv.granted {
			iv.granted = false
		} else {
			//sslint:allow hotpath — appends into pending[:0], never past its original length
			kept = append(kept, client)
		}
	}
	return kept, progress
}

// holFromInputVC snapshots the head-of-line state of one input VC for the
// architectures built on inputVC (IQ and IOQ). Architectures with output
// queues overlay their queue occupancy on the result.
func holFromInputVC(b *base, in []inputVC, holder [][]int, client int) HOLState {
	iv := &in[client]
	st := HOLState{Occupancy: iv.q.len(), OutPort: -1, OutVC: -1, WantPort: -1, HolderPort: -1, HolderVC: -1, OutDepth: -1}
	f := iv.q.peek()
	if f == nil {
		st.Phase = HOLEmpty
		return st
	}
	st.Flit = f
	switch {
	case iv.outVC >= 0:
		st.Phase = HOLAllocated
		st.OutPort, st.OutVC = iv.outPort, iv.outVC
		st.Credits = b.downCred[iv.outPort][iv.outVC]
		st.CreditCap = b.downCap[iv.outPort]
	case iv.routeState == rsDone:
		st.Phase = HOLAwaitingVC
		st.WantPort = iv.resp.Port
		st.WantVCs = iv.resp.VCs
		for _, vc := range iv.resp.VCs {
			if holder[iv.resp.Port][vc] == -1 {
				// A wanted VC is free, so the wait is transient: a grant is
				// due next allocation cycle. No holder to chain to.
				return st
			}
		}
		h := holder[iv.resp.Port][iv.resp.VCs[0]]
		st.HolderPort, st.HolderVC = h/b.vcs, h%b.vcs
	default:
		st.Phase = HOLRouting
	}
	return st
}

// flight is one flit traversing a fixed-latency internal datapath (crossbar
// or queue-to-queue transfer) toward an output port.
type flight struct {
	at   sim.Tick
	f    *types.Flit
	port int
}

// delayLine batches a router's fixed-latency internal traversals so the
// router holds at most one pending event for all of them: traversal
// completion times are monotone (fixed latency, monotone starts), so the
// line is a FIFO. This keeps the global event heap small even with long
// crossbar latencies.
type delayLine struct {
	q         []flight
	head      int
	scheduled bool
}

// push appends a traversal; it panics if completion times go backwards.
//
//sslint:hotpath
func (d *delayLine) push(at sim.Tick, f *types.Flit, port int) {
	if n := len(d.q); n > d.head && d.q[n-1].at > at {
		panic("router: delay line completion times must be monotone")
	}
	//sslint:allow hotpath — amortized FIFO growth, compacted in pop
	d.q = append(d.q, flight{at: at, f: f, port: port})
}

// next returns the earliest pending completion time.
//
//sslint:hotpath
func (d *delayLine) next() (sim.Tick, bool) {
	if d.head >= len(d.q) {
		return 0, false
	}
	return d.q[d.head].at, true
}

// pop removes and returns the earliest traversal.
//
//sslint:hotpath
func (d *delayLine) pop() flight {
	fl := d.q[d.head]
	d.q[d.head] = flight{}
	d.head++
	if d.head == len(d.q) {
		d.q = d.q[:0]
		d.head = 0
	} else if d.head >= 64 && d.head*2 >= len(d.q) {
		n := copy(d.q, d.q[d.head:])
		d.q = d.q[:n]
		d.head = 0
	}
	return fl
}

// flitQueue is a FIFO of flits backed by a ring buffer.
type flitQueue struct {
	buf  []*types.Flit
	head int
	n    int
}

func (q *flitQueue) len() int { return q.n }

//sslint:hotpath
func (q *flitQueue) push(f *types.Flit) {
	if q.n == len(q.buf) {
		//sslint:allow hotpath — amortized ring doubling, bounded by buffer depth
		grown := make([]*types.Flit, max(4, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			grown[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf = grown
		q.head = 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = f
	q.n++
}

//sslint:hotpath
func (q *flitQueue) peek() *types.Flit {
	if q.n == 0 {
		return nil
	}
	return q.buf[q.head]
}

//sslint:hotpath
func (q *flitQueue) pop() *types.Flit {
	if q.n == 0 {
		return nil
	}
	f := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return f
}

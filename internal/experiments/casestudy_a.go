package experiments

import (
	"fmt"

	"supersim/internal/config"
)

// Case study A — latent congestion detection (Figure 9 and the §VI-A text).
//
// A folded-Clos with idealistic output-queued routers runs adaptive
// uprouting under uniform random traffic forced through the root. The
// congestion-sensing propagation latency is swept from 1 to 32 ns. With
// infinite output queues (Figure 9a) latency rises but throughput is
// unaffected; with finite 64-flit output queues (Figure 9b) throughput
// collapses as sensing latency grows, because multiple input-port routing
// engines bombard the same seemingly-good output port before its congestion
// becomes visible.
//
// Time base: 1 tick = 1 ns.

// closConfig builds the case study A configuration.
//
//	halfRadix, levels — topology scale (paper: 16, 3 => 4096 terminals)
//	senseLatency      — congestion sensing latency in ns
//	outDepth          — output queue depth in flits, 0 = infinite
//	load              — offered load
func closConfig(halfRadix, levels int, senseLatency uint64, outDepth int, load float64, seed uint64, sampleDur uint64) *config.Settings {
	terms := 1
	for i := 0; i < levels; i++ {
		terms *= halfRadix
	}
	cfg := config.New()
	set(cfg, map[string]any{
		"simulation.seed":    seed,
		"network.topology":   "folded_clos",
		"network.half_radix": halfRadix,
		"network.levels":     levels,
		// 50 ns channels (10 meter cables), 1 flit/ns links.
		"network.channel.latency":                50,
		"network.channel.period":                 1,
		"network.injection.latency":              1,
		"network.interface.receive_buffer_depth": 256,
		"network.router.architecture":            "output_queued",
		"network.router.num_vcs":                 1,
		"network.router.input_buffer_depth":      150,
		// 50 ns queue-to-queue router core latency.
		"network.router.queue_latency":                 50,
		"network.router.output_queue_depth":            outDepth,
		"network.router.congestion_sensor.type":        "credit",
		"network.router.congestion_sensor.granularity": "port",
		"network.router.congestion_sensor.source":      "output",
		"network.router.congestion_sensor.latency":     senseLatency,
		"network.routing.algorithm":                    "adaptive_uprouting",
	})
	apps := []any{map[string]any{
		"type":            "blast",
		"injection_rate":  load,
		"message_size":    1,
		"warmup_duration": 2000,
		"sample_duration": sampleDur,
		"traffic": map[string]any{
			"type":       "cross_subtree",
			"group_size": terms / halfRadix,
		},
	}}
	cfg.Set("workload.applications", apps)
	return cfg
}

// SenseLatencies is the swept congestion-sensing latency set (ns).
var SenseLatencies = []uint64{1, 2, 4, 8, 16, 32}

// Figure9 regenerates Figure 9a (infinite output queues) or 9b (64-flit
// output queues): one load-latency curve per congestion sensing latency.
func Figure9(opts Options, infiniteQueues bool) []Curve {
	halfRadix, levels := 8, 3 // 512 terminals (the paper's small variant scale)
	loads := []float64{0.3, 0.6, 0.9}
	sample := uint64(1500)
	if opts.Full {
		halfRadix = 16 // 4096 terminals as in Table I
		loads = []float64{0.1, 0.3, 0.5, 0.7, 0.9}
		sample = 5000
	}
	outDepth := 64
	name := "64-flit output queues"
	if infiniteQueues {
		outDepth = 0
		name = "infinite output queues"
	}
	opts.logf("Figure 9 (%s): %d-terminal folded-Clos, OQ, adaptive uprouting\n",
		name, pow(halfRadix, levels))
	var curves []Curve
	for _, sl := range SenseLatencies {
		label := fmt9Label(sl)
		curves = append(curves, sweepLoads(label, loads, opts, func(load float64) *config.Settings {
			return closConfig(halfRadix, levels, sl, outDepth, load, opts.seed(), sample)
		}))
	}
	return curves
}

// Figure9Small regenerates the §VI-A text result: the 512-terminal radix-16
// system's achieved throughput at congestion sensing latencies 1, 2, 4 and
// 8 ns (paper: 90%, 90%, 75% and 40%). It offers 90% load and reports the
// accepted throughput per sensing latency.
func Figure9Small(opts Options) []Curve {
	sample := uint64(3000)
	opts.logf("Figure 9 small variant: 512-terminal radix-16 folded-Clos at 90%% offered load\n")
	var curves []Curve
	for _, sl := range []uint64{1, 2, 4, 8} {
		label := fmt9Label(sl)
		curves = append(curves, sweepLoads(label, []float64{0.9}, opts, func(load float64) *config.Settings {
			return closConfig(8, 3, sl, 64, load, opts.seed(), sample)
		}))
	}
	return curves
}

func fmt9Label(sl uint64) string {
	return fmt.Sprintf("sense latency %2d ns", sl)
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

package experiments

import (
	"fmt"

	"supersim/internal/config"
)

// Case study B — congestion credit accounting (Figure 10).
//
// A 1D flattened butterfly (HyperX, one dimension) with input-output-queued
// routers runs UGAL. The congestion sensor's credit accounting style is
// swept over the six combinations of {VC, port} granularity x {output,
// downstream, both} credit sources. With uniform random traffic (10a)
// port-based accounting wins; with bit complement traffic (10b) VC-based
// accounting wins.
//
// Time base: 1 tick = 0.5 ns (the router core runs at 2x frequency
// speedup, so the channel period is 2 ticks and the core period 1 tick).

// AccountingStyle is one credit accounting configuration.
type AccountingStyle struct {
	Granularity string // "vc" or "port"
	Source      string // "output", "downstream" or "both"
}

func (a AccountingStyle) String() string {
	return a.Granularity + "/" + a.Source
}

// AccountingStyles is the six-style sweep of case study B.
var AccountingStyles = []AccountingStyle{
	{"vc", "output"}, {"vc", "downstream"}, {"vc", "both"},
	{"port", "output"}, {"port", "downstream"}, {"port", "both"},
}

// fbConfig builds the case study B configuration: a 1D flattened butterfly
// with `routers` routers and `conc` terminals each (paper: 32 and 32 =>
// 1024 terminals, router radix 63).
func fbConfig(routers, conc int, style AccountingStyle, pattern string, load float64, seed uint64, sampleDur uint64) *config.Settings {
	cfg := config.New()
	set(cfg, map[string]any{
		"simulation.seed":       seed,
		"network.topology":      "hyperx",
		"network.widths":        []any{routers},
		"network.concentration": conc,
		// 50 ns channels at 1 flit/ns: period 2 ticks, latency 100 ticks.
		"network.channel.latency":                100,
		"network.channel.period":                 2,
		"network.injection.latency":              2,
		"network.interface.receive_buffer_depth": 256,
		"network.router.architecture":            "input_output_queued",
		"network.router.num_vcs":                 2,
		"network.router.speedup":                 2,
		"network.router.input_buffer_depth":      128,
		"network.router.output_queue_depth":      256,
		// 50 ns main crossbar latency.
		"network.router.crossbar_latency":              100,
		"network.router.congestion_sensor.type":        "credit",
		"network.router.congestion_sensor.granularity": style.Granularity,
		"network.router.congestion_sensor.source":      style.Source,
		"network.routing.algorithm":                    "ugal",
	})
	cfg.Set("workload.applications", []any{map[string]any{
		"type":            "blast",
		"injection_rate":  load,
		"message_size":    1,
		"warmup_duration": 4000,
		"sample_duration": sampleDur,
		"traffic":         map[string]any{"type": pattern},
	}})
	return cfg
}

// Figure10 regenerates Figure 10a (uniform random) or 10b (bit complement):
// one load-latency curve per credit accounting style.
func Figure10(opts Options, bitComplement bool) []Curve {
	routers, conc := 16, 16 // 256 terminals reduced scale
	loads := []float64{0.2, 0.4, 0.6, 0.8, 0.95}
	sample := uint64(4000)
	if opts.Full {
		routers, conc = 32, 32 // Table I: 1024 terminals, radix 63
		loads = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}
		sample = 8000
	}
	pattern := "uniform_random"
	if bitComplement {
		pattern = "bit_complement"
	}
	opts.logf("Figure 10 (%s): %d-terminal 1D flattened butterfly, IOQ, UGAL\n",
		pattern, routers*conc)
	var curves []Curve
	for _, style := range AccountingStyles {
		label := fmt.Sprintf("%-16s", style)
		curves = append(curves, sweepLoads(label, loads, opts, func(load float64) *config.Settings {
			return fbConfig(routers, conc, style, pattern, load, opts.seed(), sample)
		}))
	}
	return curves
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (the three case studies of Section VI plus the tooling figures
// 5, 7 and 8). Each Figure* function runs the required simulation sweep and
// returns the numeric series the corresponding plot would draw; Print
// helpers render them as aligned tables.
//
// Scale: by default experiments run reduced-scale versions of the paper's
// configurations so the whole suite completes in minutes (the paper itself
// reports that the phenomena persist at 512 terminals in case study A).
// Setting Options.Full (or SUPERSIM_FULL=1 for the benchmarks) switches to
// the exact Table I parameters.
package experiments

import (
	"fmt"
	"io"

	"supersim/internal/config"
	"supersim/internal/core"
	"supersim/internal/sim"
	"supersim/internal/stats"
	"supersim/internal/taskrun"
	"supersim/internal/workload/apps"
)

// Options controls an experiment run.
type Options struct {
	Full bool      // paper-scale parameters instead of reduced
	Seed uint64    // base PRNG seed
	Out  io.Writer // progress/table output; nil silences

	// MonitorEvery, when positive, attaches a sim.ProgressMonitor to every
	// simulation the experiment runs, reporting events/sec and heap usage to
	// stderr every MonitorEvery executed events. The bench harness wires
	// SUPERSIM_MONITOR to this.
	MonitorEvery uint64

	// SpansSample, when positive, enables telemetry with span recording at
	// that sample fraction (fold-only: spans feed the registry histograms, no
	// JSONL stream). BenchmarkFigure5Spans uses this to measure the
	// instrumented hot path against the disabled-path bench-guard ceiling.
	SpansSample float64

	// Workers, when positive, sets simulation.workers on every simulation
	// the experiment runs: 1 pins the explicit serial path (the bench-guard
	// enforces its allocation ceiling there), > 1 runs that many parallel
	// shards with results identical to the serial run (`make bench-parallel`).
	Workers uint64

	// TraceFile, when non-empty, enables telemetry with full-sampling flit
	// tracing to that path. Combined with Workers > 1 it measures the cost of
	// per-shard lane recording plus the end-of-run stamp merge
	// (BenchmarkFigure5TraceParallel); the output bytes are identical to a
	// serial trace.
	TraceFile string

	// TaskProbe, when non-nil, receives a lifecycle event pair per sweep
	// point: every sweepLoads simulation is reported as a queued → ready →
	// started → finished task named "<label> load=<l>", so a taskrun.Journal
	// (or the sweep monitor) can observe figure regeneration the same way it
	// observes sssweep fleets. Experiment sweeps run serially, so events
	// arrive in run order.
	TaskProbe taskrun.Probe
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// prep applies option-driven simulation settings to an experiment config.
func (o Options) prep(cfg *config.Settings) *config.Settings {
	if o.MonitorEvery > 0 {
		cfg.Set("simulation.monitor_interval", o.MonitorEvery)
	}
	if o.SpansSample > 0 {
		cfg.Set("simulation.telemetry.enabled", true)
		cfg.Set("simulation.telemetry.spans_sample", o.SpansSample)
	}
	if o.Workers > 0 {
		cfg.Set("simulation.workers", o.Workers)
	}
	if o.TraceFile != "" {
		cfg.Set("simulation.telemetry.enabled", true)
		cfg.Set("simulation.telemetry.trace_file", o.TraceFile)
		cfg.Set("simulation.telemetry.trace_sample", 1.0)
	}
	return cfg
}

func (o Options) logf(format string, args ...any) {
	if o.Out != nil {
		fmt.Fprintf(o.Out, format, args...)
	}
}

// LoadPoint is one point of a load-versus-latency curve.
type LoadPoint struct {
	Offered    float64 // injected load, fraction of terminal bandwidth
	Accepted   float64 // delivered load over the sampling window
	Mean       float64 // latency statistics in ticks
	P50        float64
	P90        float64
	P99        float64
	P999       float64
	P9999      float64
	NonMinimal float64 // fraction of sampled messages routed non-minimally
	Samples    int
	Saturated  bool
}

// Curve is a labeled series of load points.
type Curve struct {
	Label  string
	Points []LoadPoint
}

// SaturationThroughput returns the highest accepted load observed on the
// curve — the conventional scalar throughput readout.
func (c Curve) SaturationThroughput() float64 {
	best := 0.0
	for _, p := range c.Points {
		if p.Accepted > best {
			best = p.Accepted
		}
	}
	return best
}

// runResult captures one simulation's sampled outcome.
type runResult struct {
	rec      *stats.Recorder
	window   sim.Tick
	periods  sim.Tick
	terms    int
	accepted float64
	skipped  uint64
}

// runBlast builds and runs a single-Blast simulation from a fully formed
// settings document and extracts the sampled statistics.
func runBlast(cfg *config.Settings) runResult {
	sm := core.Build(cfg)
	if _, err := sm.Run(); err != nil {
		panic(err)
	}
	blast := sm.Workload.App(0).(*apps.Blast)
	start, stop := blast.SampleWindow()
	window := stop - start
	rec := blast.Stats()
	return runResult{
		rec:     rec,
		window:  window,
		terms:   sm.Net.NumTerminals(),
		skipped: blast.Skipped(),
		accepted: stats.Throughput(rec.Flits(), sm.Net.NumTerminals(), window,
			sm.Net.ChannelPeriod()),
	}
}

func (r runResult) point(offered float64) LoadPoint {
	s := r.rec.Summarize()
	sat := r.skipped > 0 || r.accepted < offered*0.95
	return LoadPoint{
		Offered:    offered,
		Accepted:   r.accepted,
		Mean:       s.Mean,
		P50:        s.P50,
		P90:        s.P90,
		P99:        s.P99,
		P999:       s.P999,
		P9999:      s.P9999,
		NonMinimal: s.NonMinimal,
		Samples:    s.Count,
		Saturated:  sat,
	}
}

// sweepLoads runs mkCfg at each offered load, stopping the curve after the
// first saturated point (a saturated network yields unbounded latency, so
// the plot lines stop there).
func sweepLoads(label string, loads []float64, opts Options, mkCfg func(load float64) *config.Settings) Curve {
	c := Curve{Label: label}
	for _, load := range loads {
		task := fmt.Sprintf("%s load=%.2f", label, load)
		if opts.TaskProbe != nil {
			opts.TaskProbe.TaskQueued(task, nil)
			opts.TaskProbe.TaskReady(task)
			opts.TaskProbe.TaskStarted(task)
		}
		res := runBlast(opts.prep(mkCfg(load)))
		if opts.TaskProbe != nil {
			opts.TaskProbe.TaskFinished(task, taskrun.Succeeded, nil)
		}
		p := res.point(load)
		c.Points = append(c.Points, p)
		opts.logf("  %-32s load=%.2f accepted=%.3f mean=%.0f p99=%.0f%s\n",
			label, load, p.Accepted, p.Mean, p.P99, satMark(p))
		if p.Saturated {
			break
		}
	}
	return c
}

func satMark(p LoadPoint) string {
	if p.Saturated {
		return "  [saturated]"
	}
	return ""
}

// PrintCurves renders curves as an aligned latency table.
func PrintCurves(w io.Writer, title string, curves []Curve) {
	fmt.Fprintf(w, "== %s ==\n", title)
	fmt.Fprintf(w, "%-34s %7s %9s %9s %9s %9s %9s %9s\n",
		"series", "load", "accepted", "mean", "p50", "p99", "p99.9", "nonmin")
	for _, c := range curves {
		for _, p := range c.Points {
			fmt.Fprintf(w, "%-34s %7.2f %9.3f %9.1f %9.0f %9.0f %9.0f %9.4f%s\n",
				c.Label, p.Offered, p.Accepted, p.Mean, p.P50, p.P99, p.P999,
				p.NonMinimal, satMark(p))
		}
	}
}

// PrintThroughputs renders the saturation throughput of each curve.
func PrintThroughputs(w io.Writer, title string, curves []Curve) {
	fmt.Fprintf(w, "== %s ==\n", title)
	for _, c := range curves {
		fmt.Fprintf(w, "%-40s throughput=%.3f\n", c.Label, c.SaturationThroughput())
	}
}

// mustSet applies dotted-path settings to a document.
func set(cfg *config.Settings, kv map[string]any) *config.Settings {
	for k, v := range kv {
		cfg.Set(k, v)
	}
	return cfg
}

package experiments

import (
	"fmt"
	"io"

	"supersim/internal/config"
	"supersim/internal/core"
	"supersim/internal/network"
	"supersim/internal/sim"
	"supersim/internal/workload/apps"
)

// Figure5 regenerates the Blast/Pulse transient: Blast supplies steady
// uniform random background traffic while Pulse injects a burst shortly
// after sampling starts; the returned series is Blast's mean latency in time
// bins, which rises when the pulse disturbs the network and recovers after
// it drains. PulseWindow brackets the disturbance.
type Figure5Result struct {
	Series      [][2]float64 // (bin center tick, mean latency)
	PulseStart  sim.Tick
	PulseEnd    sim.Tick
	BlastMean   float64
	PulsePeak   float64 // highest binned latency
	BinWidth    sim.Tick
	SampleCount int
}

// Figure5 runs the transient experiment.
func Figure5(opts Options) Figure5Result {
	routers, conc := 8, 8
	sample, count := uint64(20000), 60
	if opts.Full {
		routers, conc = 16, 16
		sample, count = 40000, 150
	}
	cfg := fbConfig(routers, conc, AccountingStyle{"port", "both"}, "uniform_random",
		0.35, opts.seed(), sample)
	// Add the Pulse application: a hot burst beginning 1/4 into sampling.
	appsArr := cfg.Array("workload.applications")
	appsArr = append(appsArr, map[string]any{
		"type":           "pulse",
		"injection_rate": 0.9,
		"message_size":   1,
		"count":          count,
		"delay":          sample / 4,
		"traffic":        map[string]any{"type": "uniform_random"},
	})
	cfg.Set("workload.applications", appsArr)

	sm := core.Build(opts.prep(cfg))
	if _, err := sm.Run(); err != nil {
		panic(err)
	}
	blast := sm.Workload.App(0).(*apps.Blast)
	pulse := sm.Workload.App(1).(*apps.Pulse)
	bin := sim.Tick(sample / 40)
	series := blast.Stats().TimeSeries(bin)
	res := Figure5Result{
		Series:      series,
		BlastMean:   blast.Stats().Mean(),
		BinWidth:    bin,
		SampleCount: blast.Stats().Count(),
	}
	// The pulse window is bracketed by its own samples.
	first, last := sim.Tick(0), sim.Tick(0)
	for i, s := range pulse.Stats().Samples() {
		if i == 0 || s.Start < first {
			first = s.Start
		}
		if s.End > last {
			last = s.End
		}
	}
	res.PulseStart, res.PulseEnd = first, last
	for _, p := range series {
		if p[1] > res.PulsePeak {
			res.PulsePeak = p[1]
		}
	}
	opts.logf("Figure 5: blast mean=%.1f peak bin=%.1f pulse=[%d,%d]\n",
		res.BlastMean, res.PulsePeak, res.PulseStart, res.PulseEnd)
	return res
}

// PrintFigure5 renders the transient series.
func PrintFigure5(w io.Writer, r Figure5Result) {
	fmt.Fprintf(w, "== Figure 5: Blast mean latency disturbed by Pulse (pulse window [%d, %d]) ==\n",
		r.PulseStart, r.PulseEnd)
	fmt.Fprintf(w, "%12s %12s\n", "time", "mean_latency")
	for _, p := range r.Series {
		marker := ""
		if sim.Tick(p[0]) >= r.PulseStart && sim.Tick(p[0]) <= r.PulseEnd {
			marker = "  <- pulse active"
		}
		fmt.Fprintf(w, "%12.0f %12.1f%s\n", p[0], p[1], marker)
	}
}

// PercentilePoints is the percentile axis used for percentile distribution
// plots (Figure 7's x axis, log-style tail).
var PercentilePoints = []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90,
	95, 99, 99.9, 99.99, 100}

// Figure7 regenerates the percentile distribution plot: a single simulation
// at moderate load; the returned points are (percentile, latency), from
// which read-offs like "the 99.9th percentile latency" come.
func Figure7(opts Options) [][2]float64 {
	routers, conc := 8, 8
	sample := uint64(8000)
	if opts.Full {
		routers, conc = 32, 32
		sample = 12000
	}
	res := runBlast(opts.prep(fbConfig(routers, conc, AccountingStyle{"port", "both"},
		"uniform_random", 0.5, opts.seed(), sample)))
	curve := res.rec.PercentileCurve(PercentilePoints)
	opts.logf("Figure 7: %d samples, p50=%.0f p99.9=%.0f\n",
		res.rec.Count(), res.rec.Percentile(50), res.rec.Percentile(99.9))
	return curve
}

// PrintFigure7 renders the percentile distribution.
func PrintFigure7(w io.Writer, curve [][2]float64) {
	fmt.Fprintln(w, "== Figure 7: percentile distribution ==")
	fmt.Fprintf(w, "%12s %12s\n", "percentile", "latency")
	for _, p := range curve {
		fmt.Fprintf(w, "%12.2f %12.0f\n", p[0], p[1])
	}
}

// Figure8 regenerates the load-versus-latency-distribution plot with
// phantom congestion: UGAL adaptive routing where a non-minimal decision
// costs an extra 50 ns channel and 50 ns router traversal. At low load a
// significant fraction of traffic goes non-minimal (visible in the upper
// percentiles); the effect eases as load rises and the curve stops at
// saturation.
func Figure8(opts Options) Curve {
	routers, conc := 16, 16
	loads := []float64{0.02, 0.06, 0.12, 0.2, 0.3, 0.4, 0.6, 0.8, 0.9, 0.98}
	sample := uint64(4000)
	if opts.Full {
		routers, conc = 32, 32
		sample = 8000
	}
	opts.logf("Figure 8: load sweep with phantom congestion (UGAL, %d terminals)\n", routers*conc)
	return sweepLoads("ugal/port/both", loads, opts, func(load float64) *config.Settings {
		return fbConfig(routers, conc, AccountingStyle{"port", "both"},
			"uniform_random", load, opts.seed(), sample)
	})
}

// TableIRow is one column of the paper's Table I parameter matrix.
type TableIRow struct {
	Study     string
	Params    map[string]string
	Buildable bool
}

// TableI reproduces the simulation parameter matrix of the three case
// studies and verifies that each configuration actually constructs (at
// reduced scale by default; paper scale with Full).
func TableI(opts Options) []TableIRow {
	build := func(cfg *config.Settings) bool {
		s := sim.NewSimulator(1)
		network.New(s, cfg.Sub("network"))
		return true
	}
	scaleClos, scaleFB, scaleTorus := 8, 16, 4
	fbConc := 16
	if opts.Full {
		scaleClos, scaleFB, scaleTorus = 16, 32, 8
		fbConc = 32
	}
	rows := []TableIRow{
		{
			Study: "Latent Congestion Detection",
			Params: map[string]string{
				"Network topology":    fmt.Sprintf("3-level folded-Clos, %d terminals", pow(scaleClos, 3)),
				"Channel latency":     "50 ns",
				"Routing algorithm":   "adaptive uprouting",
				"Router architecture": "output-queued (OQ)",
				"Number of VCs":       "1",
				"Input buffer":        "150 flits",
				"Output buffer":       "infinite and 64 flits",
				"Router core latency": "50 ns queue-to-queue",
				"Message size":        "1 flit",
				"Traffic pattern":     "uniform random to root",
			},
			Buildable: build(closConfig(scaleClos, 3, 8, 64, 0.5, 1, 100)),
		},
		{
			Study: "Congestion Credit Accounting",
			Params: map[string]string{
				"Network topology":    fmt.Sprintf("1D flattened butterfly, %d routers, %d terminals", scaleFB, scaleFB*fbConc),
				"Channel latency":     "50 ns",
				"Routing algorithm":   "UGAL",
				"Router architecture": "input-output-queued (IOQ)",
				"Frequency speedup":   "2x",
				"Number of VCs":       "2",
				"Input buffer":        "128 flits",
				"Output buffer":       "256 flits",
				"Router core latency": "50 ns main crossbar",
				"Message size":        "1 flit",
				"Traffic pattern":     "uniform random, bit complement",
			},
			Buildable: build(fbConfig(scaleFB, fbConc, AccountingStyle{"vc", "both"}, "uniform_random", 0.5, 1, 100)),
		},
		{
			Study: "Flow Control Techniques",
			Params: map[string]string{
				"Network topology":    fmt.Sprintf("4D torus %dx%dx%dx%d, %d terminals", scaleTorus, scaleTorus, scaleTorus, scaleTorus, pow(scaleTorus, 4)),
				"Channel latency":     "5 ns",
				"Routing algorithm":   "dimension order routing",
				"Router architecture": "input-queued (IQ)",
				"Number of VCs":       "2,4,8",
				"Input buffer":        "128 flits",
				"Router core latency": "25 ns main crossbar",
				"Message size":        "1,2,4,8,16,32 flits",
				"Traffic pattern":     "uniform random",
			},
			Buildable: build(torusConfig(scaleTorus, 4, 1, "flit_buffer", 0.5, 1, 100)),
		},
	}
	return rows
}

// PrintTableI renders the parameter matrix.
func PrintTableI(w io.Writer, rows []TableIRow) {
	fmt.Fprintln(w, "== Table I: parameters for the three simulation case studies ==")
	for _, r := range rows {
		fmt.Fprintf(w, "--- %s (buildable=%v) ---\n", r.Study, r.Buildable)
		for _, k := range []string{"Network topology", "Channel latency", "Routing algorithm",
			"Router architecture", "Frequency speedup", "Number of VCs", "Input buffer",
			"Output buffer", "Router core latency", "Message size", "Traffic pattern"} {
			if v, ok := r.Params[k]; ok {
				fmt.Fprintf(w, "  %-22s %s\n", k, v)
			}
		}
	}
}

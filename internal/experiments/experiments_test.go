package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"supersim/internal/config"
	"supersim/internal/taskrun"
)

func TestCurveSaturationThroughput(t *testing.T) {
	c := Curve{Points: []LoadPoint{
		{Offered: 0.2, Accepted: 0.2},
		{Offered: 0.6, Accepted: 0.58},
		{Offered: 0.9, Accepted: 0.61, Saturated: true},
	}}
	if got := c.SaturationThroughput(); got != 0.61 {
		t.Fatalf("saturation throughput %v", got)
	}
	if (Curve{}).SaturationThroughput() != 0 {
		t.Fatal("empty curve")
	}
}

func TestTableIBuildsAllConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("builds three full networks")
	}
	rows := TableI(Options{})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Buildable {
			t.Fatalf("%s not buildable", r.Study)
		}
	}
	var buf bytes.Buffer
	PrintTableI(&buf, rows)
	for _, want := range []string{"folded-Clos", "flattened butterfly", "4D torus",
		"UGAL", "adaptive uprouting", "dimension order"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("Table I output missing %q", want)
		}
	}
}

func TestPrintCurves(t *testing.T) {
	var buf bytes.Buffer
	PrintCurves(&buf, "test", []Curve{{
		Label: "series-a",
		Points: []LoadPoint{
			{Offered: 0.5, Accepted: 0.5, Mean: 100, P50: 95, P99: 150, P999: 180},
			{Offered: 0.9, Accepted: 0.7, Mean: 900, Saturated: true},
		},
	}})
	out := buf.String()
	if !strings.Contains(out, "series-a") || !strings.Contains(out, "[saturated]") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestPrintThroughputs(t *testing.T) {
	var buf bytes.Buffer
	PrintThroughputs(&buf, "t", []Curve{{Label: "x", Points: []LoadPoint{{Accepted: 0.42}}}})
	if !strings.Contains(buf.String(), "0.420") {
		t.Fatalf("output %q", buf.String())
	}
}

func TestPrintFigure11(t *testing.T) {
	var buf bytes.Buffer
	PrintFigure11(&buf, []Fig11Point{
		{FlowControl: "flit_buffer", VCs: 2, MsgSize: 1, Throughput: 0.9},
		{FlowControl: "packet_buffer", VCs: 2, MsgSize: 1, Throughput: 0.8},
		{FlowControl: "winner_take_all", VCs: 2, MsgSize: 1, Throughput: 0.85},
	})
	out := buf.String()
	if !strings.Contains(out, "2 VCs") || !strings.Contains(out, "0.900") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestSortedKeys(t *testing.T) {
	got := sortedKeys(map[int]bool{8: true, 2: true, 4: true})
	want := []int{2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sortedKeys = %v", got)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	if (Options{}).seed() != 1 {
		t.Fatal("default seed")
	}
	if (Options{Seed: 7}).seed() != 7 {
		t.Fatal("explicit seed")
	}
	var buf bytes.Buffer
	o := Options{Out: &buf}
	o.logf("x %d", 3)
	if buf.String() != "x 3" {
		t.Fatalf("logf wrote %q", buf.String())
	}
	(Options{}).logf("discarded") // nil writer must not panic
}

func TestSatMark(t *testing.T) {
	if satMark(LoadPoint{Saturated: true}) == "" || satMark(LoadPoint{}) != "" {
		t.Fatal("satMark wrong")
	}
}

func TestFmt9Label(t *testing.T) {
	if !strings.Contains(fmt9Label(4), "4 ns") {
		t.Fatal("label")
	}
}

func TestPow(t *testing.T) {
	if pow(2, 10) != 1024 || pow(5, 0) != 1 {
		t.Fatal("pow")
	}
}

func TestFigure7Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two simulations")
	}
	a := Figure7(Options{Seed: 3})
	b := Figure7(Options{Seed: 3})
	if len(a) != len(b) {
		t.Fatal("curve lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d differs: %v vs %v — experiments are not deterministic", i, a[i], b[i])
		}
	}
}

func TestSweepLoadsReportsTasksToProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two simulations")
	}
	var buf bytes.Buffer
	j := taskrun.NewJournal(&buf, taskrun.FixedClock(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC), time.Millisecond))
	opts := Options{Seed: 5, TaskProbe: j}
	c := sweepLoads("fixture", []float64{0.1, 0.2}, opts, func(load float64) *config.Settings {
		return torusConfig(2, 2, 1, "flit_buffer", load, 5, 500)
	})
	j.RunFinished()
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	if len(c.Points) != 2 {
		t.Fatalf("points %+v", c.Points)
	}
	_, events, err := taskrun.ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Per load point: queued, ready, started, finished — then the done line.
	var finished []string
	for _, ev := range events {
		if ev.Ev == "finished" {
			if ev.State != "succeeded" {
				t.Fatalf("state %+v", ev)
			}
			finished = append(finished, ev.Task)
		}
	}
	want := []string{"fixture load=0.10", "fixture load=0.20"}
	if len(finished) != len(want) || finished[0] != want[0] || finished[1] != want[1] {
		t.Fatalf("finished tasks %v, want %v", finished, want)
	}
	last := events[len(events)-1]
	if last.Ev != "done" || last.Succeeded != 2 {
		t.Fatalf("done event %+v", last)
	}
}

package experiments

import (
	"fmt"
	"io"

	"supersim/internal/config"
)

// Case study C — flow control techniques (Figures 11 and 12).
//
// A 4D torus with input-queued routers under dimension order routing
// compares flit-buffer (FB), packet-buffer (PB) and winner-take-all (WTA)
// crossbar scheduling across message sizes and VC counts. At large scale
// with high channel latencies, packets rarely span multiple routers and the
// flow control technique barely matters for throughput (Figure 11); with
// large 32-flit messages and 8 VCs the latency ordering is FB best, WTA
// middle, PB worst (Figure 12).
//
// Time base: 1 tick = 1 ns.

// FlowControls is the swept technique set.
var FlowControls = []string{"flit_buffer", "packet_buffer", "winner_take_all"}

// torusConfig builds the case study C configuration: a 4D torus of
// width^4 routers, one terminal each (paper: 8x8x8x8 = 4096).
func torusConfig(width, vcs, msgSize int, fc string, load float64, seed uint64, sampleDur uint64) *config.Settings {
	cfg := config.New()
	set(cfg, map[string]any{
		"simulation.seed":       seed,
		"network.topology":      "torus",
		"network.dimensions":    []any{width, width, width, width},
		"network.concentration": 1,
		// 5 ns channels (1 meter cables) at 1 flit/ns.
		"network.channel.latency":                5,
		"network.channel.period":                 1,
		"network.injection.latency":              1,
		"network.interface.receive_buffer_depth": 256,
		"network.router.architecture":            "input_queued",
		"network.router.num_vcs":                 vcs,
		"network.router.input_buffer_depth":      128,
		// 25 ns main crossbar latency.
		"network.router.crossbar_latency": 25,
		"network.router.flow_control":     fc,
		"network.routing.algorithm":       "dimension_order",
	})
	cfg.Set("workload.applications", []any{map[string]any{
		"type":            "blast",
		"injection_rate":  load,
		"message_size":    msgSize,
		"warmup_duration": 2000,
		"sample_duration": sampleDur,
		"traffic":         map[string]any{"type": "uniform_random"},
	}})
	return cfg
}

// Fig11Point is one (flow control, VCs, message size) throughput readout.
type Fig11Point struct {
	FlowControl string
	VCs         int
	MsgSize     int
	Throughput  float64 // accepted load at saturation offered load
}

// Figure11 regenerates Figure 11: saturation throughput of the three flow
// control techniques across message sizes, at each VC count. The network is
// offered full load and the accepted throughput is measured.
func Figure11(opts Options) []Fig11Point {
	width := 4 // 256 terminals reduced scale
	vcsSet := []int{2, 4, 8}
	msgs := []int{1, 8, 32}
	sample := uint64(1500)
	if opts.Full {
		width = 8 // Table I: 4096 terminals
		msgs = []int{1, 2, 4, 8, 16, 32}
		sample = 5000
	}
	opts.logf("Figure 11: %d-node 4D torus, IQ, DOR, offered load 1.0\n", width*width*width*width)
	var out []Fig11Point
	for _, vcs := range vcsSet {
		for _, msg := range msgs {
			for _, fc := range FlowControls {
				res := runBlast(opts.prep(torusConfig(width, vcs, msg, fc, 1.0, opts.seed(), sample)))
				p := Fig11Point{FlowControl: fc, VCs: vcs, MsgSize: msg, Throughput: res.accepted}
				out = append(out, p)
				opts.logf("  vcs=%d msg=%2d %-16s throughput=%.3f\n", vcs, msg, fc, p.Throughput)
			}
		}
	}
	return out
}

// PrintFigure11 renders the Figure 11 matrix: one block per VC count, one
// row per message size, one column per flow control technique.
func PrintFigure11(w io.Writer, points []Fig11Point) {
	byKey := map[[2]int]map[string]float64{}
	vcsSet := map[int]bool{}
	msgSet := map[int]bool{}
	for _, p := range points {
		k := [2]int{p.VCs, p.MsgSize}
		if byKey[k] == nil {
			byKey[k] = map[string]float64{}
		}
		byKey[k][p.FlowControl] = p.Throughput
		vcsSet[p.VCs] = true
		msgSet[p.MsgSize] = true
	}
	for _, vcs := range sortedKeys(vcsSet) {
		fmt.Fprintf(w, "== Figure 11: %d VCs ==\n", vcs)
		fmt.Fprintf(w, "%8s %12s %12s %12s\n", "msgsize", "FB", "PB", "WTA")
		for _, msg := range sortedKeys(msgSet) {
			m := byKey[[2]int{vcs, msg}]
			fmt.Fprintf(w, "%8d %12.3f %12.3f %12.3f\n",
				msg, m["flit_buffer"], m["packet_buffer"], m["winner_take_all"])
		}
	}
}

// Figure12 regenerates Figure 12: load-latency of the three flow control
// techniques with 8 VCs and 32-flit messages.
func Figure12(opts Options) []Curve {
	width := 4
	loads := []float64{0.2, 0.5, 0.8}
	sample := uint64(1500)
	if opts.Full {
		width = 8
		loads = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
		sample = 5000
	}
	opts.logf("Figure 12: 4D torus, IQ, 8 VCs, 32-flit messages\n")
	var curves []Curve
	for _, fc := range FlowControls {
		curves = append(curves, sweepLoads(fc, loads, opts, func(load float64) *config.Settings {
			return torusConfig(width, 8, 32, fc, load, opts.seed(), sample)
		}))
	}
	return curves
}

func sortedKeys(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

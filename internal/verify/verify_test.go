package verify

import (
	"strings"
	"testing"

	"supersim/internal/sim"
	"supersim/internal/types"
)

func newVerifier(t *testing.T, opts Options) (*sim.Simulator, *Verifier) {
	t.Helper()
	s := sim.NewSimulator(1)
	return s, Attach(s, opts)
}

// mustPanic runs fn and requires a panic whose message contains substr.
func mustPanic(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", substr)
		}
		msg, ok := r.(string)
		if !ok {
			msg = "" // panics from Panicf are strings; anything else fails the contains check
			if err, isErr := r.(error); isErr {
				msg = err.Error()
			}
		}
		if !strings.Contains(msg, substr) {
			t.Fatalf("panic %q does not contain %q", msg, substr)
		}
	}()
	fn()
}

func msg(id uint64) *types.Message {
	return types.NewMessage(id, 0, 0, 1, 4, 2)
}

func TestAttachTwicePanics(t *testing.T) {
	s, _ := newVerifier(t, Options{})
	mustPanic(t, "already has a verifier", func() { Attach(s, Options{}) })
}

func TestForReturnsNilWhenDisabled(t *testing.T) {
	if v := For(sim.NewSimulator(1)); v != nil {
		t.Fatalf("For on bare simulator = %v, want nil", v)
	}
}

func TestForFindsAttachedVerifier(t *testing.T) {
	s, v := newVerifier(t, Options{})
	if For(s) != v {
		t.Fatal("For did not return the attached verifier")
	}
}

func TestFlitLifecycleHappyPath(t *testing.T) {
	_, v := newVerifier(t, Options{})
	m := msg(1)
	for _, p := range m.Packets {
		for _, f := range p.Flits {
			v.FlitInjected(f)
			v.FlitTouched(f)
			v.FlitTouched(f)
			v.FlitRetired(f)
		}
	}
	if v.Injected() != 4 || v.Retired() != 4 || v.InFlight() != 0 {
		t.Fatalf("injected=%d retired=%d inflight=%d", v.Injected(), v.Retired(), v.InFlight())
	}
	v.VerifyDrained()
}

func TestDuplicateInjectionPanics(t *testing.T) {
	_, v := newVerifier(t, Options{})
	f := msg(1).Packets[0].Flits[0]
	v.FlitInjected(f)
	mustPanic(t, "already in flight", func() { v.FlitInjected(f) })
}

func TestTouchWithoutInjectionPanics(t *testing.T) {
	_, v := newVerifier(t, Options{})
	f := msg(1).Packets[0].Flits[0]
	mustPanic(t, "not in flight", func() { v.FlitTouched(f) })
}

func TestDoubleRetirementPanics(t *testing.T) {
	_, v := newVerifier(t, Options{})
	f := msg(1).Packets[0].Flits[0]
	v.FlitInjected(f)
	v.FlitRetired(f)
	mustPanic(t, "not in flight", func() { v.FlitRetired(f) })
}

func TestStaleGenerationTouchPanics(t *testing.T) {
	// Recycle the message through a pool while a flit is in flight but skip
	// the observer (simulating a pool whose bookkeeping was bypassed): the
	// generation stamp alone must catch the aliased touch.
	_, v := newVerifier(t, Options{})
	pool := types.NewPool()
	m := pool.NewMessage(1, 0, 0, 1, 4, 2)
	f := m.Packets[0].Flits[0]
	v.FlitInjected(f)
	pool.Release(m)
	m2 := pool.NewMessage(2, 0, 2, 3, 4, 2) // recycles m's blocks, bumps gen
	if m2 != m {
		t.Skip("pool did not recycle the message; aliasing cannot occur")
	}
	mustPanic(t, "stale generation", func() { v.FlitTouched(f) })
}

func TestStaleGenerationRetirePanics(t *testing.T) {
	_, v := newVerifier(t, Options{})
	pool := types.NewPool()
	m := pool.NewMessage(1, 0, 0, 1, 4, 2)
	f := m.Packets[0].Flits[0]
	v.FlitInjected(f)
	pool.Release(m)
	m2 := pool.NewMessage(2, 0, 2, 3, 4, 2)
	if m2 != m {
		t.Skip("pool did not recycle the message; aliasing cannot occur")
	}
	mustPanic(t, "stale generation", func() { v.FlitRetired(f) })
}

func TestPoolReleaseWhileInFlightPanics(t *testing.T) {
	_, v := newVerifier(t, Options{})
	pool := types.NewPool()
	pool.SetObserver(v)
	m := pool.NewMessage(1, 0, 0, 1, 4, 2)
	v.FlitInjected(m.Packets[0].Flits[0])
	mustPanic(t, "pool aliasing", func() { pool.Release(m) })
}

func TestPoolObtainWithFlitsInFlightPanics(t *testing.T) {
	// Release without the observer attached, then re-obtain with it: the
	// obtained message's blocks still hold an in-flight flit.
	_, v := newVerifier(t, Options{})
	pool := types.NewPool()
	m := pool.NewMessage(1, 0, 0, 1, 4, 2)
	v.FlitInjected(m.Packets[0].Flits[0])
	pool.Release(m)
	pool.SetObserver(v)
	mustPanic(t, "pool aliasing", func() { pool.NewMessage(2, 0, 2, 3, 4, 2) })
}

func TestCreditLedgerDivergenceOnDebit(t *testing.T) {
	// A component whose decrement was skipped or flipped reports a counter
	// value that disagrees with the mirror — caught on the very next debit.
	_, v := newVerifier(t, Options{})
	cl := v.NewCreditLedger("r.out0", 1, 4)
	mustPanic(t, "diverged on debit", func() { cl.Debit(0, 4) }) // should be 3
}

func TestCreditLedgerDivergenceOnCredit(t *testing.T) {
	_, v := newVerifier(t, Options{})
	cl := v.NewCreditLedger("r.out0", 1, 4)
	cl.Debit(0, 3)
	mustPanic(t, "diverged on credit", func() { cl.Credit(0, 5) }) // should be 4
}

func TestCreditDebitBelowZeroPanics(t *testing.T) {
	_, v := newVerifier(t, Options{})
	cl := v.NewCreditLedger("r.out0", 1, 1)
	cl.Debit(0, 0)
	mustPanic(t, "below zero", func() { cl.Debit(0, -1) })
}

func TestCreditAboveCapacityPanics(t *testing.T) {
	_, v := newVerifier(t, Options{})
	cl := v.NewCreditLedger("r.out0", 1, 1)
	mustPanic(t, "exceed capacity", func() { cl.Credit(0, 2) })
}

func TestBufferOverrunPanics(t *testing.T) {
	_, v := newVerifier(t, Options{})
	bl := v.NewBufferLedger("r.in0", 1, 2)
	bl.Arrive(0)
	bl.Arrive(0)
	mustPanic(t, "buffer overrun", func() { bl.Arrive(0) })
}

func TestBufferFreeBelowZeroPanics(t *testing.T) {
	_, v := newVerifier(t, Options{})
	bl := v.NewBufferLedger("r.in0", 1, 2)
	mustPanic(t, "freed below zero", func() { bl.Free(0) })
}

func TestVerifyDrainedCatchesLeaks(t *testing.T) {
	_, v := newVerifier(t, Options{})
	f := msg(1).Packets[0].Flits[0]
	v.FlitInjected(f)
	mustPanic(t, "never retired", func() { v.VerifyDrained() })
}

func TestVerifyDrainedCatchesHeldCredits(t *testing.T) {
	_, v := newVerifier(t, Options{})
	cl := v.NewCreditLedger("r.out0", 1, 2)
	cl.Debit(0, 1)
	mustPanic(t, "holds 1 of 2 credits", func() { v.VerifyDrained() })
}

func TestVerifyDrainedCatchesOccupiedBuffers(t *testing.T) {
	_, v := newVerifier(t, Options{})
	bl := v.NewBufferLedger("r.in0", 1, 2)
	bl.Arrive(0)
	mustPanic(t, "still holds 1 flits", func() { v.VerifyDrained() })
}

// watchdogHarness is a component that keeps the event queue busy without
// generating any flit activity, so the watchdog sees a stalled network.
type watchdogHarness struct {
	sim.ComponentBase
	until sim.Tick
}

func (h *watchdogHarness) ProcessEvent(ev *sim.Event) {
	if now := h.Sim().Now(); now.Tick < h.until {
		h.Sim().Schedule(h, now.Plus(1), 0, nil)
	}
}

func TestWatchdogFiresOnStall(t *testing.T) {
	s, v := newVerifier(t, Options{WatchdogEpoch: 10})
	v.FlitInjected(msg(1).Packets[0].Flits[0]) // a flit is stuck in flight
	h := &watchdogHarness{ComponentBase: sim.NewComponentBase(s, "busy"), until: 100}
	s.Schedule(h, sim.Time{Tick: 1}, 0, nil)
	mustPanic(t, "deadlock or livelock", func() { s.Run() })
}

func TestWatchdogAppendsDiagnoserReport(t *testing.T) {
	s, v := newVerifier(t, Options{WatchdogEpoch: 10})
	v.SetDiagnoser(func() string { return "chain: terminal 3 -> router 1 (deadlock)" })
	v.FlitInjected(msg(1).Packets[0].Flits[0])
	h := &watchdogHarness{ComponentBase: sim.NewComponentBase(s, "busy"), until: 100}
	s.Schedule(h, sim.Time{Tick: 1}, 0, nil)
	mustPanic(t, "chain: terminal 3 -> router 1 (deadlock)", func() { s.Run() })
}

func TestWatchdogQuietWhenNothingInFlight(t *testing.T) {
	s, _ := newVerifier(t, Options{WatchdogEpoch: 10})
	h := &watchdogHarness{ComponentBase: sim.NewComponentBase(s, "busy"), until: 100}
	s.Schedule(h, sim.Time{Tick: 1}, 0, nil)
	s.Run() // idle network: the watchdog must not fire and must let the queue drain
}

func TestWatchdogToleratesProgress(t *testing.T) {
	// Continuous flit activity across epochs: no panic even with a flit in
	// flight the whole time.
	s, v := newVerifier(t, Options{WatchdogEpoch: 10})
	f := msg(1).Packets[0].Flits[0]
	v.FlitInjected(f)
	h := &watchdogHarness{ComponentBase: sim.NewComponentBase(s, "busy"), until: 50}
	toucher := &flitToucher{ComponentBase: sim.NewComponentBase(s, "toucher"), v: v, f: f, until: 50}
	s.Schedule(h, sim.Time{Tick: 1}, 0, nil)
	s.Schedule(toucher, sim.Time{Tick: 1}, 0, nil)
	s.Run()
	v.FlitRetired(f)
	v.VerifyDrained()
}

type flitToucher struct {
	sim.ComponentBase
	v     *Verifier
	f     *types.Flit
	until sim.Tick
}

func (c *flitToucher) ProcessEvent(ev *sim.Event) {
	c.v.FlitTouched(c.f)
	if now := c.Sim().Now(); now.Tick < c.until {
		c.Sim().Schedule(c, now.Plus(1), 0, nil)
	}
}

func TestOccupancyDumpListsState(t *testing.T) {
	_, v := newVerifier(t, Options{})
	cl := v.NewCreditLedger("r.out7", 2, 4)
	bl := v.NewBufferLedger("r.in3", 2, 4)
	cl.Debit(1, 3)
	bl.Arrive(0)
	dump := v.OccupancyDump()
	if !strings.Contains(dump, "r.in3 vc 0: 1/4 flits") {
		t.Errorf("dump missing buffer line:\n%s", dump)
	}
	if !strings.Contains(dump, "r.out7 vc 1: 1/4 credits held") {
		t.Errorf("dump missing credit line:\n%s", dump)
	}
}

package verify

import (
	"bytes"
	"strings"
	"testing"

	"supersim/internal/sim"
	"supersim/internal/snapshot"
)

// buildLedgers attaches a verifier with one credit and one buffer ledger,
// the registration shape every checkpoint test restores into.
func buildLedgers(epoch sim.Tick) (*Verifier, *CreditLedger, *BufferLedger) {
	s := sim.NewSimulator(1)
	v := Attach(s, Options{WatchdogEpoch: epoch})
	cl := v.NewCreditLedger("router_0.out1", 2, 8)
	bl := v.NewBufferLedger("router_1.in0", 2, 8)
	return v, cl, bl
}

func saveVerifier(v *Verifier) []byte {
	e := snapshot.NewEncoder()
	v.SaveState(e)
	return e.Bytes()
}

func TestVerifierStateRoundTrip(t *testing.T) {
	v, cl, bl := buildLedgers(100)
	// Drive the ledgers through their public operations so the mirrors hold
	// mid-run values, then set the global counters directly.
	cl.Debit(0, 7)
	cl.Debit(0, 6)
	cl.Debit(1, 7)
	cl.Credit(1, 8)
	bl.Arrive(0)
	bl.Arrive(0)
	bl.Arrive(1)
	bl.Free(1)
	v.injected = 12
	v.retired = 5
	v.lastActivity = 42
	data := saveVerifier(v)

	got, gcl, gbl := buildLedgers(100)
	d := snapshot.NewDecoder(data)
	if err := got.LoadState(d); err != nil {
		t.Fatal(err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left after load", d.Remaining())
	}
	if got.Injected() != 12 || got.Retired() != 5 || got.InFlight() != 7 {
		t.Fatalf("counters: injected %d retired %d", got.Injected(), got.Retired())
	}
	if gcl.mirror[0] != 6 || gcl.mirror[1] != 8 {
		t.Fatalf("credit mirror %v", gcl.mirror)
	}
	if gbl.occ[0] != 2 || gbl.occ[1] != 0 {
		t.Fatalf("buffer occupancy %v", gbl.occ)
	}
	if !bytes.Equal(saveVerifier(got), data) {
		t.Fatal("re-saved verifier state is not byte-identical")
	}
	// The restored mirrors must keep checking: the next debit matches the
	// component counter the original run would present.
	gcl.Debit(0, 5)
}

func TestVerifierLoadRejectsMismatchedBuild(t *testing.T) {
	v, _, _ := buildLedgers(100)
	v.injected, v.retired = 3, 1
	data := saveVerifier(v)

	build := func(fn func(v *Verifier)) *Verifier {
		s := sim.NewSimulator(1)
		rv := Attach(s, Options{WatchdogEpoch: 100})
		fn(rv)
		return rv
	}
	cases := []struct {
		name string
		v    *Verifier
		want string
	}{
		{"watchdog off", func() *Verifier {
			s := sim.NewSimulator(1)
			rv := Attach(s, Options{})
			rv.NewCreditLedger("router_0.out1", 2, 8)
			rv.NewBufferLedger("router_1.in0", 2, 8)
			return rv
		}(), "watchdog state"},
		{"missing credit ledger", build(func(rv *Verifier) {
			rv.NewBufferLedger("router_1.in0", 2, 8)
		}), "credit ledgers"},
		{"credit name mismatch", build(func(rv *Verifier) {
			rv.NewCreditLedger("router_9.out1", 2, 8)
			rv.NewBufferLedger("router_1.in0", 2, 8)
		}), "credit ledger mismatch"},
		{"credit vc mismatch", build(func(rv *Verifier) {
			rv.NewCreditLedger("router_0.out1", 3, 8)
			rv.NewBufferLedger("router_1.in0", 2, 8)
		}), "VCs"},
		{"missing buffer ledger", build(func(rv *Verifier) {
			rv.NewCreditLedger("router_0.out1", 2, 8)
		}), "buffer ledgers"},
		{"buffer name mismatch", build(func(rv *Verifier) {
			rv.NewCreditLedger("router_0.out1", 2, 8)
			rv.NewBufferLedger("router_9.in0", 2, 8)
		}), "buffer ledger mismatch"},
		{"buffer vc mismatch", build(func(rv *Verifier) {
			rv.NewCreditLedger("router_0.out1", 2, 8)
			rv.NewBufferLedger("router_1.in0", 3, 8)
		}), "VCs"},
	}
	for _, tc := range cases {
		err := tc.v.LoadState(snapshot.NewDecoder(data))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestVerifierLoadRejectsTruncation(t *testing.T) {
	v, _, _ := buildLedgers(100)
	data := saveVerifier(v)
	for _, n := range []int{0, 1, len(data) / 2, len(data) - 1} {
		got, _, _ := buildLedgers(100)
		if err := got.LoadState(snapshot.NewDecoder(data[:n])); err == nil {
			t.Fatalf("truncation to %d bytes loaded without error", n)
		}
	}
}

// Package verify implements the simulator's runtime invariant-verification
// subsystem: a config-gated set of always-on structural checks that turn
// silent correctness bugs — lost or duplicated flits, credit accounting
// drift, pooled-object aliasing, deadlocks — into immediate panics with
// component-level diagnostics.
//
// The subsystem is organized as one Verifier per Simulator plus lightweight
// per-link ledgers handed out to components at construction time:
//
//   - Flit conservation: every flit injected at a terminal must be retired
//     exactly once. The in-flight ledger (generation at injection plus an
//     in-flight mark) lives on each flit; injection, every channel
//     traversal, and ejection check against it, and core.Run reconciles the
//     injected/retired counts at drain. Keeping the ledger per-flit rather
//     than in a shared map is what makes the checks shard-safe under the
//     parallel engine: terminals write the marks, hops only read them, and
//     cross-shard flit hand-offs order the reads after the writes.
//   - Credit conservation: each upstream credit counter gets a CreditLedger
//     mirror. Every debit/credit reports the component's own counter value,
//     so any divergence (a flipped or skipped decrement) is caught at the
//     very next credit operation, with bounds checks against the downstream
//     buffer capacity. Downstream input buffers get a BufferLedger tracking
//     occupancy against capacity.
//   - Pool-aliasing sentinel: messages carry a generation stamp bumped on
//     every (re)initialization. The in-flight ledger records the generation
//     at injection; any later touch of the flit (channel hop, retirement)
//     with a different generation means the message was recycled while its
//     flits were still in the network. Pool release while flits are in
//     flight panics directly through the pool observer.
//   - Progress watchdog: a periodic self-scheduled check that panics when no
//     flit has moved for a full epoch while flits are buffered in the
//     network, dumping per-router VC occupancy — a deadlock/livelock
//     detector for event-driven models that keep scheduling without making
//     progress.
//
// Verification is attached per Simulator (verify.Attach) and discovered by
// components with verify.For, which returns nil when disabled; components
// guard every hook with a nil check, so the disabled hot path costs one
// predictable branch and zero allocations. Checks are observation-only: they
// never touch the PRNG or any component state, so enabling them cannot
// change simulation results.
package verify

import (
	"fmt"
	"strings"
	"sync/atomic"

	"supersim/internal/sim"
	"supersim/internal/types"
)

const evWatchdog = 0

// Options configures a Verifier.
type Options struct {
	// WatchdogEpoch is the progress watchdog period in ticks; if no flit
	// moves for a full epoch while flits are in flight, the watchdog panics
	// with an occupancy dump. Zero disables the watchdog.
	WatchdogEpoch sim.Tick
}

// Verifier is the per-simulation invariant checker. Create one with Attach
// before building components; components find it with For.
type Verifier struct {
	sim.ComponentBase
	opts Options

	// Flit conservation counters. The per-flit in-flight marks live on the
	// flits themselves (types.Flit.VerifyInFlight); injected and retired are
	// written only on the terminal (host) side, so they stay plain.
	injected uint64
	retired  uint64

	// activity counts flit movements (injections, hops, retirements); the
	// watchdog compares it across epochs. It is the one counter bumped from
	// every shard (channel hops, router-side credit/buffer ledgers), so it
	// is atomic; everything else the Verifier mutates is host-side only.
	activity     atomic.Uint64
	lastActivity uint64
	watchdogOn   bool

	credits []*CreditLedger
	buffers []*BufferLedger

	// diagnose, when set, renders a blocked-chain report appended to the
	// watchdog's occupancy dump (see internal/diagnose).
	//sslint:nosnapshot — diagnostic wiring, re-attached during the rebuild
	diagnose func() string
}

// Attach creates a Verifier and registers it on the simulator so that
// components built afterwards discover it with For. Attaching twice panics.
func Attach(s *sim.Simulator, opts Options) *Verifier {
	if s.Verifier() != nil {
		panic("verify: simulator already has a verifier attached")
	}
	v := &Verifier{
		ComponentBase: sim.NewComponentBase(s, "verify"),
		opts:          opts,
	}
	s.SetVerifier(v)
	if opts.WatchdogEpoch > 0 {
		v.watchdogOn = true
		s.ScheduleDaemon(v, sim.Time{Tick: opts.WatchdogEpoch}, evWatchdog, nil)
	}
	return v
}

// For returns the simulator's attached Verifier, or nil when verification is
// disabled. Components call it once at construction and keep the pointer.
func For(s *sim.Simulator) *Verifier {
	if v, ok := s.Verifier().(*Verifier); ok {
		return v
	}
	return nil
}

// SetDiagnoser registers a report function the watchdog calls when it fires:
// its output is appended to the occupancy dump, turning "something is stuck"
// into "this chain of resources is stuck, held by these flits". core.Build
// wires the stall diagnostician here once the network exists.
func (v *Verifier) SetDiagnoser(fn func() string) { v.diagnose = fn }

// Injected returns the number of flits injected at terminals so far.
func (v *Verifier) Injected() uint64 { return v.injected }

// Retired returns the number of flits retired at terminals so far.
func (v *Verifier) Retired() uint64 { return v.retired }

// InFlight returns the number of flits currently in the network.
func (v *Verifier) InFlight() int { return int(v.injected - v.retired) }

// FlitInjected records a flit entering the network at a terminal. Injecting
// a flit that is already in flight panics (duplicate injection or aliasing).
func (v *Verifier) FlitInjected(f *types.Flit) {
	if gen, ok := f.VerifyInFlight(); ok {
		v.Panicf("%v injected while already in flight (generation %d, now %d) — duplicate injection or pool aliasing",
			f, gen, f.Pkt.Msg.Generation())
	}
	f.VerifyMarkInFlight(f.Pkt.Msg.Generation())
	v.injected++
	v.activity.Add(1)
}

// FlitTouched validates a flit at an intermediate touch point (every channel
// injection): it must carry the in-flight mark with an unchanged message
// generation. A generation mismatch means the owning message was recycled
// while this flit was still traversing the network.
func (v *Verifier) FlitTouched(f *types.Flit) {
	gen, ok := f.VerifyInFlight()
	if !ok {
		v.Panicf("%v touched but not in flight — flit forged, duplicated, or already retired", f)
	}
	if now := f.Pkt.Msg.Generation(); now != gen {
		v.Panicf("%v touched with stale generation: injected at %d, message now at %d — pooled message recycled while in network",
			f, gen, now)
	}
	v.activity.Add(1)
}

// FlitRetired records a flit leaving the network at its destination
// terminal. The flit must be in flight with an unchanged generation.
func (v *Verifier) FlitRetired(f *types.Flit) {
	gen, ok := f.VerifyInFlight()
	if !ok {
		v.Panicf("%v retired but not in flight — double retirement or lost injection record", f)
	}
	if now := f.Pkt.Msg.Generation(); now != gen {
		v.Panicf("%v retired with stale generation: injected at %d, message now at %d — pooled message recycled while in network",
			f, gen, now)
	}
	f.VerifyClearInFlight()
	v.retired++
	v.activity.Add(1)
}

// MessageObtained implements types.PoolObserver: a recycled message's flits
// must not still be in the network under their previous life.
func (v *Verifier) MessageObtained(m *types.Message) {
	v.checkNoFlitsInFlight(m, "obtained from pool")
}

// MessageReleased implements types.PoolObserver: releasing a message whose
// flits are still in flight would alias its blocks between two live
// messages.
func (v *Verifier) MessageReleased(m *types.Message) {
	v.checkNoFlitsInFlight(m, "released to pool")
}

func (v *Verifier) checkNoFlitsInFlight(m *types.Message, action string) {
	for _, p := range m.Packets {
		for _, f := range p.Flits {
			if _, ok := f.VerifyInFlight(); ok {
				v.Panicf("message %d %s while %v is still in the network — pool aliasing",
					m.ID, action, f)
			}
		}
	}
}

// ProcessEvent runs the progress watchdog.
func (v *Verifier) ProcessEvent(ev *sim.Event) {
	if ev.Type != evWatchdog {
		v.Panicf("unknown event type %d", ev.Type)
	}
	activity := v.activity.Load()
	if activity == v.lastActivity && v.InFlight() > 0 {
		report := v.OccupancyDump()
		if v.diagnose != nil {
			report += "\n" + v.diagnose()
		}
		v.Panicf("no flit movement for %d ticks with %d flits in flight — deadlock or livelock\n%s",
			v.opts.WatchdogEpoch, v.InFlight(), report)
	}
	v.lastActivity = activity
	// Re-arm only while non-daemon events are pending: a queue holding only
	// daemon events (this watchdog, telemetry snapshots) means the simulation
	// is about to drain, and a perpetual watchdog would keep it alive forever
	// — or worse, two daemons counting each other would.
	if v.Sim().PendingNonDaemon() > 0 {
		v.Sim().ScheduleDaemon(v, v.Sim().Now().Plus(v.opts.WatchdogEpoch), evWatchdog, nil)
	}
}

// OccupancyDump renders every non-empty input buffer and every credit ledger
// with outstanding credits — the state a deadlock diagnosis starts from.
func (v *Verifier) OccupancyDump() string {
	var b strings.Builder
	b.WriteString("buffer occupancy:\n")
	for _, bl := range v.buffers {
		for vc, occ := range bl.occ {
			if occ > 0 {
				fmt.Fprintf(&b, "  %s vc %d: %d/%d flits\n", bl.name, vc, occ, bl.cap)
			}
		}
	}
	b.WriteString("outstanding credits:\n")
	for _, cl := range v.credits {
		for vc, c := range cl.mirror {
			if c != cl.cap {
				fmt.Fprintf(&b, "  %s vc %d: %d/%d credits held downstream\n", cl.name, vc, cl.cap-c, cl.cap)
			}
		}
	}
	return b.String()
}

// VerifyDrained reconciles the global ledgers after the network drains:
// every injected flit retired, nothing in flight, every credit returned and
// every tracked buffer empty. The framework calls it from core.Run after the
// per-component idle checks.
func (v *Verifier) VerifyDrained() {
	if v.injected != v.retired {
		v.Panicf("drain check: flit conservation violated: %d injected, %d retired (%d never retired)\n%s",
			v.injected, v.retired, v.InFlight(), v.OccupancyDump())
	}
	for _, cl := range v.credits {
		for vc, c := range cl.mirror {
			if c != cl.cap {
				v.Panicf("drain check: %s vc %d holds %d of %d credits", cl.name, vc, c, cl.cap)
			}
		}
	}
	for _, bl := range v.buffers {
		for vc, occ := range bl.occ {
			if occ != 0 {
				v.Panicf("drain check: %s vc %d still holds %d flits", bl.name, vc, occ)
			}
		}
	}
}

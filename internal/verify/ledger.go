package verify

// CreditLedger mirrors one upstream per-VC credit counter (a router output
// port's or an interface's downstream credits). Every debit and credit
// reports the component's own counter value after the operation; the ledger
// maintains its independent mirror and panics the moment the two diverge or
// either bound (zero, capacity) is violated. This catches flipped, skipped
// or duplicated credit updates at the first operation after the bug, not at
// drain time.
type CreditLedger struct {
	v      *Verifier
	name   string
	cap    int
	mirror []int // per VC, counts available credits
}

// NewCreditLedger registers a credit counter mirror for a component. name
// identifies the counter in diagnostics (e.g. "router_3.out2"); capacity is
// the downstream buffer depth per VC, the initial credit count.
func (v *Verifier) NewCreditLedger(name string, vcs, capacity int) *CreditLedger {
	if vcs <= 0 || capacity <= 0 {
		panic("verify: credit ledger needs positive vcs and capacity")
	}
	cl := &CreditLedger{v: v, name: name, cap: capacity, mirror: make([]int, vcs)}
	for i := range cl.mirror {
		cl.mirror[i] = capacity
	}
	v.credits = append(v.credits, cl)
	return cl
}

// Debit records the component consuming one credit on vc; have is the
// component's counter value after its own decrement.
func (cl *CreditLedger) Debit(vc, have int) {
	cl.mirror[vc]--
	if cl.mirror[vc] < 0 {
		cl.v.Panicf("%s vc %d: credit debit below zero — downstream buffer overcommitted", cl.name, vc)
	}
	if have != cl.mirror[vc] {
		cl.v.Panicf("%s vc %d: credit counter diverged on debit: component has %d, ledger has %d",
			cl.name, vc, have, cl.mirror[vc])
	}
	cl.v.activity.Add(1)
}

// Credit records a credit returning on vc; have is the component's counter
// value after its own increment.
func (cl *CreditLedger) Credit(vc, have int) {
	cl.mirror[vc]++
	if cl.mirror[vc] > cl.cap {
		cl.v.Panicf("%s vc %d: credits exceed capacity %d — credit duplicated", cl.name, vc, cl.cap)
	}
	if have != cl.mirror[vc] {
		cl.v.Panicf("%s vc %d: credit counter diverged on credit: component has %d, ledger has %d",
			cl.name, vc, have, cl.mirror[vc])
	}
	cl.v.activity.Add(1)
}

// BufferLedger tracks one downstream input buffer's per-VC occupancy against
// its capacity — the other endpoint of the credit loop. Arrivals that
// overrun capacity or frees below zero panic immediately.
type BufferLedger struct {
	v    *Verifier
	name string
	cap  int
	occ  []int
}

// NewBufferLedger registers an input buffer for a component. name identifies
// the buffer in diagnostics (e.g. "router_3.in1"); capacity is the per-VC
// depth in flits.
func (v *Verifier) NewBufferLedger(name string, vcs, capacity int) *BufferLedger {
	if vcs <= 0 || capacity <= 0 {
		panic("verify: buffer ledger needs positive vcs and capacity")
	}
	bl := &BufferLedger{v: v, name: name, cap: capacity, occ: make([]int, vcs)}
	v.buffers = append(v.buffers, bl)
	return bl
}

// Arrive records a flit entering the buffer on vc.
func (bl *BufferLedger) Arrive(vc int) {
	bl.occ[vc]++
	if bl.occ[vc] > bl.cap {
		bl.v.Panicf("%s vc %d: buffer overrun: %d flits in a %d-deep buffer — upstream sent without credit",
			bl.name, vc, bl.occ[vc], bl.cap)
	}
	bl.v.activity.Add(1)
}

// Free records a buffer slot being released on vc (a credit sent upstream).
func (bl *BufferLedger) Free(vc int) {
	bl.occ[vc]--
	if bl.occ[vc] < 0 {
		bl.v.Panicf("%s vc %d: buffer freed below zero — credit sent for a flit that never arrived",
			bl.name, vc)
	}
	bl.v.activity.Add(1)
}

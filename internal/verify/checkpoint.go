package verify

import (
	"supersim/internal/snapshot"
)

// Checkpoint state for the verification subsystem. Ledgers are registered at
// construction time in deterministic build order, so they are serialized by
// registration index; a name check on every ledger catches any mismatch
// between the snapshot and the rebuilt component graph. The per-flit
// in-flight marks travel with their messages (types checkpoint), so only the
// global counters and the mirrors live here.

// SaveState serializes the verifier's mutable state.
func (v *Verifier) SaveState(e *snapshot.Encoder) {
	v.SaveOrder(e)
	e.U64(v.injected)
	e.U64(v.retired)
	e.U64(v.activity.Load())
	e.U64(v.lastActivity)
	e.Bool(v.watchdogOn)
	e.Int(len(v.credits))
	for _, cl := range v.credits {
		e.Str(cl.name)
		e.Int(len(cl.mirror))
		for _, c := range cl.mirror {
			e.Int(c)
		}
	}
	e.Int(len(v.buffers))
	for _, bl := range v.buffers {
		e.Str(bl.name)
		e.Int(len(bl.occ))
		for _, o := range bl.occ {
			e.Int(o)
		}
	}
}

// LoadState restores the counterpart of SaveState onto a freshly attached
// verifier whose ledgers were registered by an identical build.
func (v *Verifier) LoadState(d *snapshot.Decoder) error {
	if err := v.LoadOrder(d); err != nil {
		return err
	}
	v.injected = d.U64()
	v.retired = d.U64()
	v.activity.Store(d.U64())
	v.lastActivity = d.U64()
	won := d.Bool()
	if d.Err() != nil {
		return d.Err()
	}
	if won != v.watchdogOn {
		return d.Failf("snapshot watchdog state %v, rebuilt verifier %v", won, v.watchdogOn)
	}
	nc := d.Count()
	if d.Err() != nil {
		return d.Err()
	}
	if nc != len(v.credits) {
		return d.Failf("snapshot has %d credit ledgers, rebuilt verifier has %d", nc, len(v.credits))
	}
	for _, cl := range v.credits {
		name := d.Str()
		if d.Err() != nil {
			return d.Err()
		}
		if name != cl.name {
			return d.Failf("credit ledger mismatch: snapshot %q, rebuilt %q", name, cl.name)
		}
		vcs := d.Count()
		if d.Err() != nil {
			return d.Err()
		}
		if vcs != len(cl.mirror) {
			return d.Failf("credit ledger %s has %d VCs, snapshot says %d", cl.name, len(cl.mirror), vcs)
		}
		for vc := 0; vc < vcs; vc++ {
			cl.mirror[vc] = d.Int()
		}
	}
	nb := d.Count()
	if d.Err() != nil {
		return d.Err()
	}
	if nb != len(v.buffers) {
		return d.Failf("snapshot has %d buffer ledgers, rebuilt verifier has %d", nb, len(v.buffers))
	}
	for _, bl := range v.buffers {
		name := d.Str()
		if d.Err() != nil {
			return d.Err()
		}
		if name != bl.name {
			return d.Failf("buffer ledger mismatch: snapshot %q, rebuilt %q", name, bl.name)
		}
		vcs := d.Count()
		if d.Err() != nil {
			return d.Err()
		}
		if vcs != len(bl.occ) {
			return d.Failf("buffer ledger %s has %d VCs, snapshot says %d", bl.name, len(bl.occ), vcs)
		}
		for vc := 0; vc < vcs; vc++ {
			bl.occ[vc] = d.Int()
		}
	}
	return d.Err()
}

package types

import (
	"sort"

	"supersim/internal/sim"
	"supersim/internal/snapshot"
)

// This file serializes traffic objects for checkpoints. Messages are the
// serialization root: packets and flits are views into a message's
// contiguous blocks, so a checkpoint stores each live message once (shape +
// every mutable field) and every component that holds flit pointers stores
// (message ID, packet index, flit index) references resolved against the
// restored table. The pool's free list is deliberately not serialized —
// recycled blocks carry no simulation state, so a restored run simply
// allocates fresh blocks on its first misses; only the lifecycle counters
// are preserved.

// MessageTable is the set of live messages referenced by a checkpoint. The
// save side populates it from every flit-holding component, deduplicating
// shared messages; the load side rebuilds the messages and resolves flit
// references against them.
type MessageTable struct {
	msgs []*Message
	idx  map[uint64]*Message
}

// NewMessageTable returns an empty table.
func NewMessageTable() *MessageTable {
	return &MessageTable{idx: map[uint64]*Message{}}
}

// Add records a live message. Adding the same message twice is a no-op, so
// every holder of a flit can add its message unconditionally. Two distinct
// messages with the same ID would corrupt the reference space and panic.
func (t *MessageTable) Add(m *Message) {
	if m == nil {
		return
	}
	if prev, ok := t.idx[m.ID]; ok {
		if prev != m {
			panic("types: two live messages share an ID")
		}
		return
	}
	t.idx[m.ID] = m
	t.msgs = append(t.msgs, m)
}

// Len returns the number of distinct messages added.
func (t *MessageTable) Len() int { return len(t.msgs) }

// SaveState serializes every added message, sorted by ID so the byte stream
// is independent of collection order.
func (t *MessageTable) SaveState(e *snapshot.Encoder) {
	sort.Slice(t.msgs, func(i, j int) bool { return t.msgs[i].ID < t.msgs[j].ID })
	e.Int(len(t.msgs))
	for _, m := range t.msgs {
		m.saveState(e)
	}
}

// LoadMessageTable rebuilds the message table from a snapshot. Messages are
// owned by the given pool (nil for unpooled) so the restored run's delivery
// path releases them back into it exactly as the original run would have.
func LoadMessageTable(d *snapshot.Decoder, pool *Pool) (*MessageTable, error) {
	n := d.Count()
	if d.Err() != nil {
		return nil, d.Err()
	}
	t := NewMessageTable()
	var prev uint64
	for i := 0; i < n; i++ {
		m, err := loadMessage(d, pool)
		if err != nil {
			return nil, err
		}
		if i > 0 && m.ID <= prev {
			return nil, d.Failf("message table not sorted: ID %d after %d", m.ID, prev)
		}
		prev = m.ID
		t.Add(m)
	}
	return t, nil
}

func (m *Message) saveState(e *snapshot.Encoder) {
	e.U64(m.ID)
	e.Int(len(m.flitBlock))
	e.Int(m.maxPkt)
	e.Int(m.App)
	e.U64(m.Transaction)
	e.Int(m.Src)
	e.Int(m.Dst)
	e.U64(uint64(m.CreateTime))
	e.U64(uint64(m.InjectTime))
	e.U64(uint64(m.ReceiveTime))
	e.Bool(m.Sampled)
	e.Int(m.OpCode)
	e.Int(m.RxRemaining)
	e.U64(m.gen)
	for i := range m.pktBlock {
		p := &m.pktBlock[i]
		e.Int(p.HopCount)
		e.Bool(p.NonMinimal)
		e.Int(p.Intermediate)
		e.U64(uint64(p.InjectTime))
		e.U64(uint64(p.ReceiveTime))
		e.Bool(p.Routing.Valid)
		e.I64(int64(p.Routing.Phase))
		e.Bool(p.Routing.Dateline)
		e.Int(p.rxNext)
	}
	for i := range m.flitBlock {
		f := &m.flitBlock[i]
		e.Int(f.VC)
		e.U64(uint64(f.SendTime))
		e.U64(uint64(f.ReceiveTime))
		e.U64(f.vfGen)
		e.Bool(f.vfInFlight)
	}
}

func loadMessage(d *snapshot.Decoder, pool *Pool) (*Message, error) {
	id := d.U64()
	totalFlits := d.Int()
	maxPkt := d.Int()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if totalFlits <= 0 || maxPkt <= 0 {
		return nil, d.Failf("message %d has invalid shape (%d flits, max packet %d)", id, totalFlits, maxPkt)
	}
	if totalFlits > d.Remaining() {
		// Each flit serializes to at least one byte, so a count beyond the
		// remaining input is corrupt; reject before allocating the blocks.
		return nil, d.Failf("message %d flit count %d exceeds remaining input", id, totalFlits)
	}
	// Blocks come from a fresh allocation, not pool.NewMessage: the pool's
	// lifecycle counters were checkpointed after this message was obtained,
	// so drawing it again would double-count.
	m := &Message{pool: pool}
	m.alloc(totalFlits, maxPkt)
	m.ID = id
	m.App = d.Int()
	m.Transaction = d.U64()
	m.Src = d.Int()
	m.Dst = d.Int()
	m.CreateTime = sim.Tick(d.U64())
	m.InjectTime = sim.Tick(d.U64())
	m.ReceiveTime = sim.Tick(d.U64())
	m.Sampled = d.Bool()
	m.OpCode = d.Int()
	m.RxRemaining = d.Int()
	m.gen = d.U64()
	for i := range m.pktBlock {
		p := &m.pktBlock[i]
		p.HopCount = d.Int()
		p.NonMinimal = d.Bool()
		p.Intermediate = d.Int()
		p.InjectTime = sim.Tick(d.U64())
		p.ReceiveTime = sim.Tick(d.U64())
		p.Routing.Valid = d.Bool()
		p.Routing.Phase = int8(d.I64())
		p.Routing.Dateline = d.Bool()
		p.rxNext = d.Int()
	}
	for i := range m.flitBlock {
		f := &m.flitBlock[i]
		f.VC = d.Int()
		f.SendTime = sim.Tick(d.U64())
		f.ReceiveTime = sim.Tick(d.U64())
		f.vfGen = d.U64()
		f.vfInFlight = d.Bool()
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	return m, nil
}

// EncodeFlit writes a reference to a flit held by a component: a present
// flag and, when present, (message ID, packet index, flit index). The flit's
// message must have been added to the table first — an unknown message means
// the checkpoint's collection pass missed a holder, which would produce a
// dangling reference at restore.
func (t *MessageTable) EncodeFlit(e *snapshot.Encoder, f *Flit) {
	if f == nil {
		e.Bool(false)
		return
	}
	m := f.Pkt.Msg
	if t.idx[m.ID] != m {
		panic("types: flit reference to a message not in the checkpoint table")
	}
	e.Bool(true)
	e.U64(m.ID)
	e.Int(f.Pkt.ID)
	e.Int(f.ID)
}

// DecodeFlit resolves a reference written by EncodeFlit against the restored
// table, bounds-checking every index.
func (t *MessageTable) DecodeFlit(d *snapshot.Decoder) (*Flit, error) {
	present := d.Bool()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if !present {
		return nil, nil
	}
	id := d.U64()
	pkt := d.Int()
	fl := d.Int()
	if d.Err() != nil {
		return nil, d.Err()
	}
	m, ok := t.idx[id]
	if !ok {
		return nil, d.Failf("flit reference to unknown message %d", id)
	}
	if pkt < 0 || pkt >= len(m.Packets) {
		return nil, d.Failf("flit reference to message %d packet %d of %d", id, pkt, len(m.Packets))
	}
	p := m.Packets[pkt]
	if fl < 0 || fl >= len(p.Flits) {
		return nil, d.Failf("flit reference to message %d packet %d flit %d of %d", id, pkt, fl, len(p.Flits))
	}
	return p.Flits[fl], nil
}

// EncodePacket writes a reference to a packet held by a component, in the
// same shape as EncodeFlit: a present flag plus (message ID, packet index).
func (t *MessageTable) EncodePacket(e *snapshot.Encoder, p *Packet) {
	if p == nil {
		e.Bool(false)
		return
	}
	m := p.Msg
	if t.idx[m.ID] != m {
		panic("types: packet reference to a message not in the checkpoint table")
	}
	e.Bool(true)
	e.U64(m.ID)
	e.Int(p.ID)
}

// DecodePacket resolves a reference written by EncodePacket.
func (t *MessageTable) DecodePacket(d *snapshot.Decoder) (*Packet, error) {
	present := d.Bool()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if !present {
		return nil, nil
	}
	id := d.U64()
	pkt := d.Int()
	if d.Err() != nil {
		return nil, d.Err()
	}
	m, ok := t.idx[id]
	if !ok {
		return nil, d.Failf("packet reference to unknown message %d", id)
	}
	if pkt < 0 || pkt >= len(m.Packets) {
		return nil, d.Failf("packet reference to message %d packet %d of %d", id, pkt, len(m.Packets))
	}
	return m.Packets[pkt], nil
}

// SaveState serializes the pool's lifecycle counters. The free list is not
// state — see the file comment.
func (p *Pool) SaveState(e *snapshot.Encoder) {
	e.U64(p.gets)
	e.U64(p.hits)
	e.U64(p.releases)
}

// LoadState restores the pool's lifecycle counters.
func (p *Pool) LoadState(d *snapshot.Decoder) error {
	p.gets = d.U64()
	p.hits = d.U64()
	p.releases = d.U64()
	return d.Err()
}

// SaveState serializes the checker's partial-delivery count (the per-packet
// cursors travel with their messages).
func (c *OrderChecker) SaveState(e *snapshot.Encoder) {
	e.Int(c.outstanding)
}

// LoadState restores the counterpart of SaveState.
func (c *OrderChecker) LoadState(d *snapshot.Decoder) error {
	c.outstanding = d.Int()
	return d.Err()
}

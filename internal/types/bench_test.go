package types

import "testing"

// BenchmarkNewMessage measures the unpooled construction cost of the traffic
// object graph. With contiguous packet/flit blocks this is a constant number
// of allocations regardless of message size (run with -benchmem).
func BenchmarkNewMessage(b *testing.B) {
	for _, bc := range []struct {
		name          string
		flits, maxPkt int
	}{
		{"1flit", 1, 1},
		{"8flit_1pkt", 8, 8},
		{"32flit_4pkt", 32, 8},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := NewMessage(uint64(i), 0, 0, 1, bc.flits, bc.maxPkt)
				if m.TotalFlits() != bc.flits {
					b.Fatal("bad message")
				}
			}
		})
	}
}

// BenchmarkPoolNewMessage measures the steady-state pooled lifecycle — get,
// use, release — which must be allocation-free once the pool is warm.
func BenchmarkPoolNewMessage(b *testing.B) {
	for _, bc := range []struct {
		name          string
		flits, maxPkt int
	}{
		{"1flit", 1, 1},
		{"32flit_4pkt", 32, 8},
	} {
		b.Run(bc.name, func(b *testing.B) {
			p := NewPool()
			p.Release(p.NewMessage(0, 0, 0, 1, bc.flits, bc.maxPkt)) // warm the bucket
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := p.NewMessage(uint64(i), 0, 0, 1, bc.flits, bc.maxPkt)
				p.Release(m)
			}
		})
	}
}

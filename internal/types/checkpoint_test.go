package types

import (
	"bytes"
	"strings"
	"testing"

	"supersim/internal/snapshot"
)

// testMessage builds a message with every serialized field set to a
// non-default value so round trips exercise real state, not zeroes.
func testMessage(pool *Pool, id uint64) *Message {
	var m *Message
	if pool != nil {
		m = pool.NewMessage(id, 1, 2, 3, 5, 2)
	} else {
		m = NewMessage(id, 1, 2, 3, 5, 2)
	}
	m.Transaction = 99
	m.CreateTime = 10
	m.InjectTime = 12
	m.ReceiveTime = 30
	m.Sampled = true
	m.OpCode = 4
	m.RxRemaining = 2
	for i, p := range m.Packets {
		p.HopCount = i + 1
		p.NonMinimal = i%2 == 0
		p.Intermediate = 7
		p.InjectTime = 13
		p.ReceiveTime = 29
		p.Routing.Valid = true
		p.Routing.Phase = int8(i - 1)
		p.Routing.Dateline = i == 0
		p.rxNext = i
		for j, f := range p.Flits {
			f.VC = j % 3
			f.SendTime = 14
			f.ReceiveTime = 15
			f.vfGen = m.gen
			f.vfInFlight = j == 0
		}
	}
	return m
}

func saveTable(t *MessageTable) []byte {
	e := snapshot.NewEncoder()
	t.SaveState(e)
	return e.Bytes()
}

func TestMessageTableRoundTrip(t *testing.T) {
	pool := NewPool()
	m7 := testMessage(pool, 7)
	m3 := testMessage(pool, 3)
	tab := NewMessageTable()
	tab.Add(m7) // out of ID order: SaveState must sort
	tab.Add(m3)
	tab.Add(m7) // duplicate add is a no-op
	tab.Add(nil)
	if tab.Len() != 2 {
		t.Fatalf("table len %d, want 2", tab.Len())
	}
	data := saveTable(tab)

	d := snapshot.NewDecoder(data)
	got, err := LoadMessageTable(d, pool)
	if err != nil {
		t.Fatal(err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left after load", d.Remaining())
	}
	if got.Len() != 2 {
		t.Fatalf("restored table len %d", got.Len())
	}
	// The restored messages must re-serialize to the identical bytes: every
	// field of every packet and flit made the trip.
	if !bytes.Equal(saveTable(got), data) {
		t.Fatal("restored table does not re-serialize byte-identically")
	}
	rm := got.idx[7]
	if rm == nil || rm.Src != 2 || rm.Dst != 3 || rm.Transaction != 99 || !rm.Sampled {
		t.Fatalf("restored message 7 lost fields: %+v", rm)
	}
	if rm.pool != pool {
		t.Fatal("restored message not owned by the given pool")
	}
	if len(rm.Packets) != 3 || rm.Packets[0].Size() != 2 || rm.Packets[2].Size() != 1 {
		t.Fatal("restored message shape wrong (5 flits, max packet 2)")
	}
}

func TestFlitAndPacketReferences(t *testing.T) {
	m := testMessage(nil, 11)
	tab := NewMessageTable()
	tab.Add(m)
	e := snapshot.NewEncoder()
	tab.SaveState(e)
	tab.EncodeFlit(e, m.Packets[1].Flits[1])
	tab.EncodeFlit(e, nil)
	tab.EncodePacket(e, m.Packets[2])
	tab.EncodePacket(e, nil)

	d := snapshot.NewDecoder(e.Bytes())
	got, err := LoadMessageTable(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	f, err := got.DecodeFlit(d)
	if err != nil || f == nil || f.Pkt.Msg.ID != 11 || f.Pkt.ID != 1 || f.ID != 1 {
		t.Fatalf("flit reference resolved to %v (err %v)", f, err)
	}
	if f2, err := got.DecodeFlit(d); err != nil || f2 != nil {
		t.Fatalf("nil flit reference resolved to %v (err %v)", f2, err)
	}
	p, err := got.DecodePacket(d)
	if err != nil || p == nil || p.Msg.ID != 11 || p.ID != 2 {
		t.Fatalf("packet reference resolved to %v (err %v)", p, err)
	}
	if p2, err := got.DecodePacket(d); err != nil || p2 != nil {
		t.Fatalf("nil packet reference resolved to %v (err %v)", p2, err)
	}
}

func TestReferenceDecodingRejectsCorruption(t *testing.T) {
	m := testMessage(nil, 5)
	tab := NewMessageTable()
	tab.Add(m)

	encodeRef := func(fn func(e *snapshot.Encoder)) *snapshot.Decoder {
		e := snapshot.NewEncoder()
		fn(e)
		return snapshot.NewDecoder(e.Bytes())
	}
	cases := []struct {
		name string
		run  func(d *snapshot.Decoder) error
		enc  func(e *snapshot.Encoder)
		want string
	}{
		{"flit unknown message", func(d *snapshot.Decoder) error { _, err := tab.DecodeFlit(d); return err },
			func(e *snapshot.Encoder) { e.Bool(true); e.U64(99); e.Int(0); e.Int(0) }, "unknown message"},
		{"flit packet out of range", func(d *snapshot.Decoder) error { _, err := tab.DecodeFlit(d); return err },
			func(e *snapshot.Encoder) { e.Bool(true); e.U64(5); e.Int(9); e.Int(0) }, "packet 9"},
		{"flit index out of range", func(d *snapshot.Decoder) error { _, err := tab.DecodeFlit(d); return err },
			func(e *snapshot.Encoder) { e.Bool(true); e.U64(5); e.Int(0); e.Int(9) }, "flit 9"},
		{"flit truncated", func(d *snapshot.Decoder) error { _, err := tab.DecodeFlit(d); return err },
			func(e *snapshot.Encoder) { e.Bool(true) }, "snapshot:"},
		{"packet unknown message", func(d *snapshot.Decoder) error { _, err := tab.DecodePacket(d); return err },
			func(e *snapshot.Encoder) { e.Bool(true); e.U64(99); e.Int(0) }, "unknown message"},
		{"packet out of range", func(d *snapshot.Decoder) error { _, err := tab.DecodePacket(d); return err },
			func(e *snapshot.Encoder) { e.Bool(true); e.U64(5); e.Int(-1) }, "packet -1"},
		{"packet truncated", func(d *snapshot.Decoder) error { _, err := tab.DecodePacket(d); return err },
			func(e *snapshot.Encoder) { e.Bool(true); e.U64(5) }, "snapshot:"},
	}
	for _, tc := range cases {
		if err := tc.run(encodeRef(tc.enc)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestLoadMessageTableRejectsCorruption(t *testing.T) {
	load := func(fn func(e *snapshot.Encoder)) error {
		e := snapshot.NewEncoder()
		fn(e)
		_, err := LoadMessageTable(snapshot.NewDecoder(e.Bytes()), nil)
		return err
	}
	m7 := testMessage(nil, 7)
	m3 := testMessage(nil, 3)
	cases := []struct {
		name string
		enc  func(e *snapshot.Encoder)
		want string
	}{
		{"zero flits", func(e *snapshot.Encoder) { e.Int(1); e.U64(4); e.Int(0); e.Int(1) }, "invalid shape"},
		{"zero max packet", func(e *snapshot.Encoder) { e.Int(1); e.U64(4); e.Int(2); e.Int(0) }, "invalid shape"},
		{"flit bomb", func(e *snapshot.Encoder) { e.Int(1); e.U64(4); e.Int(1 << 30); e.Int(2) }, "exceeds remaining"},
		{"unsorted", func(e *snapshot.Encoder) { e.Int(2); m7.saveState(e); m3.saveState(e) }, "not sorted"},
		{"truncated", func(e *snapshot.Encoder) { e.Int(3); m3.saveState(e) }, "snapshot:"},
		{"empty", func(e *snapshot.Encoder) {}, "snapshot:"},
	}
	for _, tc := range cases {
		if err := load(tc.enc); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestMessageTablePanics(t *testing.T) {
	tab := NewMessageTable()
	tab.Add(testMessage(nil, 1))
	mustPanicContains(t, "share an ID", func() { tab.Add(testMessage(nil, 1)) })
	stranger := testMessage(nil, 2)
	e := snapshot.NewEncoder()
	mustPanicContains(t, "not in the checkpoint table", func() { tab.EncodeFlit(e, stranger.Packets[0].Flits[0]) })
	mustPanicContains(t, "not in the checkpoint table", func() { tab.EncodePacket(e, stranger.Packets[0]) })
}

func mustPanicContains(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q", substr)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic %v does not contain %q", r, substr)
		}
	}()
	fn()
}

func TestPoolStateRoundTrip(t *testing.T) {
	p := NewPool()
	a := p.NewMessage(1, 0, 0, 1, 4, 2)
	p.Release(a)
	b := p.NewMessage(2, 0, 0, 1, 4, 2) // same bucket: a hit
	_ = b
	e := snapshot.NewEncoder()
	p.SaveState(e)

	got := NewPool()
	if err := got.LoadState(snapshot.NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got.Stats() != p.Stats() {
		t.Fatalf("pool stats %+v, want %+v", got.Stats(), p.Stats())
	}
	if err := got.LoadState(snapshot.NewDecoder(nil)); err == nil {
		t.Fatal("empty input loaded without error")
	}
}

func TestOrderCheckerStateRoundTrip(t *testing.T) {
	c := NewOrderChecker(0)
	m := NewMessage(9, 0, 0, 0, 2, 2)
	if c.Check(m.Packets[0].Flits[0]) {
		t.Fatal("head flit of a 2-flit packet reported as packet completion")
	}
	e := snapshot.NewEncoder()
	c.SaveState(e)

	got := NewOrderChecker(0)
	if err := got.LoadState(snapshot.NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got.Outstanding() != c.Outstanding() {
		t.Fatalf("outstanding %d, want %d", got.Outstanding(), c.Outstanding())
	}
	if err := got.LoadState(snapshot.NewDecoder(nil)); err == nil {
		t.Fatal("empty input loaded without error")
	}
}

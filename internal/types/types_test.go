package types

import (
	"testing"
	"testing/quick"
)

func TestNewMessageSingleFlit(t *testing.T) {
	m := NewMessage(1, 0, 3, 7, 1, 16)
	if len(m.Packets) != 1 {
		t.Fatalf("packets = %d", len(m.Packets))
	}
	p := m.Packets[0]
	if p.Size() != 1 {
		t.Fatalf("size = %d", p.Size())
	}
	f := p.Flits[0]
	if !f.Head || !f.Tail {
		t.Fatal("single flit must be head and tail")
	}
	if p.Head() != f || p.Tail() != f {
		t.Fatal("Head/Tail accessors wrong")
	}
	if m.Src != 3 || m.Dst != 7 || m.TotalFlits() != 1 {
		t.Fatal("message fields wrong")
	}
	if p.Intermediate != -1 {
		t.Fatal("Intermediate should start -1")
	}
}

func TestNewMessageSegmentation(t *testing.T) {
	// 10 flits, packets of up to 4 -> 4+4+2
	m := NewMessage(2, 1, 0, 1, 10, 4)
	if len(m.Packets) != 3 {
		t.Fatalf("packets = %d", len(m.Packets))
	}
	sizes := []int{4, 4, 2}
	for i, p := range m.Packets {
		if p.Size() != sizes[i] {
			t.Fatalf("packet %d size %d, want %d", i, p.Size(), sizes[i])
		}
		if p.ID != i || p.Msg != m {
			t.Fatal("packet identity wrong")
		}
		for j, f := range p.Flits {
			if f.ID != j || f.Pkt != p {
				t.Fatal("flit identity wrong")
			}
			if f.Head != (j == 0) || f.Tail != (j == p.Size()-1) {
				t.Fatalf("packet %d flit %d head/tail flags wrong", i, j)
			}
			if f.VC != -1 {
				t.Fatal("initial VC should be -1")
			}
		}
	}
	if m.TotalFlits() != 10 {
		t.Fatalf("TotalFlits = %d", m.TotalFlits())
	}
}

func TestNewMessageExactMultiple(t *testing.T) {
	m := NewMessage(3, 0, 0, 1, 8, 4)
	if len(m.Packets) != 2 || m.Packets[0].Size() != 4 || m.Packets[1].Size() != 4 {
		t.Fatal("exact multiple segmentation wrong")
	}
}

func TestNewMessageInvalid(t *testing.T) {
	for _, fn := range []func(){
		func() { NewMessage(1, 0, 0, 1, 0, 4) },
		func() { NewMessage(1, 0, 0, 1, -1, 4) },
		func() { NewMessage(1, 0, 0, 1, 4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMessageSegmentationProperty(t *testing.T) {
	prop := func(total8, max8 uint8) bool {
		total := int(total8%200) + 1
		max := int(max8%32) + 1
		m := NewMessage(9, 0, 0, 1, total, max)
		if m.TotalFlits() != total {
			return false
		}
		for i, p := range m.Packets {
			if p.Size() > max || p.Size() == 0 {
				return false
			}
			if i < len(m.Packets)-1 && p.Size() != max {
				return false // only last packet may be short
			}
			if !p.Head().Head || !p.Tail().Tail {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPacketAge(t *testing.T) {
	m := NewMessage(1, 0, 0, 1, 2, 1)
	m.CreateTime = 12345
	if m.Packets[0].Age() != 12345 || m.Packets[1].Age() != 12345 {
		t.Fatal("Age should be message creation time")
	}
}

func TestStringForms(t *testing.T) {
	m := NewMessage(5, 0, 1, 2, 3, 2)
	if s := m.Packets[0].String(); s == "" {
		t.Fatal("empty packet string")
	}
	head := m.Packets[0].Flits[0]
	if got := head.String(); got == "" {
		t.Fatal("empty flit string")
	}
	solo := NewMessage(6, 0, 1, 2, 1, 1).Packets[0].Flits[0]
	for _, f := range []*Flit{head, m.Packets[0].Flits[1], solo} {
		_ = f.String() // head, tail and head+tail branches
	}
	body := NewMessage(7, 0, 1, 2, 3, 3).Packets[0].Flits[1]
	_ = body.String()
}

func TestOrderCheckerAcceptsInOrder(t *testing.T) {
	m := NewMessage(1, 0, 0, 5, 4, 4)
	c := NewOrderChecker(5)
	p := m.Packets[0]
	for i, f := range p.Flits {
		done := c.Check(f)
		if done != (i == 3) {
			t.Fatalf("Check(%d) done=%v", i, done)
		}
	}
	if c.Outstanding() != 0 {
		t.Fatalf("Outstanding = %d", c.Outstanding())
	}
}

func TestOrderCheckerInterleavedPackets(t *testing.T) {
	// Flits of different packets may interleave; order within each packet
	// must hold.
	a := NewMessage(1, 0, 0, 5, 2, 2).Packets[0]
	b := NewMessage(2, 0, 0, 5, 2, 2).Packets[0]
	c := NewOrderChecker(5)
	c.Check(a.Flits[0])
	c.Check(b.Flits[0])
	if c.Outstanding() != 2 {
		t.Fatalf("Outstanding = %d", c.Outstanding())
	}
	if !c.Check(b.Flits[1]) || !c.Check(a.Flits[1]) {
		t.Fatal("completion not reported")
	}
}

func TestOrderCheckerWrongDestination(t *testing.T) {
	m := NewMessage(1, 0, 0, 5, 1, 1)
	c := NewOrderChecker(6)
	defer func() {
		if recover() == nil {
			t.Fatal("expected wrong-destination panic")
		}
	}()
	c.Check(m.Packets[0].Flits[0])
}

func TestOrderCheckerOutOfOrder(t *testing.T) {
	m := NewMessage(1, 0, 0, 5, 3, 3)
	c := NewOrderChecker(5)
	c.Check(m.Packets[0].Flits[0])
	defer func() {
		if recover() == nil {
			t.Fatal("expected out-of-order panic")
		}
	}()
	c.Check(m.Packets[0].Flits[2])
}

func TestOrderCheckerDuplicate(t *testing.T) {
	m := NewMessage(1, 0, 0, 5, 2, 2)
	c := NewOrderChecker(5)
	c.Check(m.Packets[0].Flits[0])
	defer func() {
		if recover() == nil {
			t.Fatal("expected duplicate panic")
		}
	}()
	c.Check(m.Packets[0].Flits[0])
}

package types

import "fmt"

// OrderChecker implements the framework's delivery error detection: every
// flit delivered to a destination is verified to have arrived at the right
// destination and in the right order with respect to the other flits of its
// packet. Terminals run one checker each; a violation panics, catching buggy
// component models early.
type OrderChecker struct {
	terminal int
	expected map[*Packet]int
}

// NewOrderChecker creates a checker for the given terminal ID.
func NewOrderChecker(terminal int) *OrderChecker {
	return &OrderChecker{terminal: terminal, expected: map[*Packet]int{}}
}

// Check validates one delivered flit. It panics on a wrong destination, an
// out-of-order flit, or a duplicate delivery; it returns true when the flit
// is its packet's last (the packet completed in order).
func (c *OrderChecker) Check(f *Flit) bool {
	p := f.Pkt
	if p.Msg.Dst != c.terminal {
		panic(fmt.Sprintf("types: %v delivered to terminal %d, want destination %d",
			f, c.terminal, p.Msg.Dst))
	}
	want := c.expected[p]
	if f.ID != want {
		panic(fmt.Sprintf("types: %v out of order at terminal %d: got flit %d, want %d",
			f, c.terminal, f.ID, want))
	}
	if f.ID == len(p.Flits)-1 {
		if !f.Tail {
			panic(fmt.Sprintf("types: %v is last flit but not marked tail", f))
		}
		delete(c.expected, p)
		return true
	}
	c.expected[p] = want + 1
	return false
}

// Outstanding returns the number of packets with partial deliveries.
func (c *OrderChecker) Outstanding() int { return len(c.expected) }

package types

import "fmt"

// OrderChecker implements the framework's delivery error detection: every
// flit delivered to a destination is verified to have arrived at the right
// destination and in the right order with respect to the other flits of its
// packet. Terminals run one checker each; a violation panics, catching buggy
// component models early.
//
// The expected-flit cursor lives in the packet itself (Packet.rxNext) rather
// than in a checker-side map: a packet is only ever delivered to one
// terminal, and keeping the cursor inline removes a map operation per
// delivered flit from the ejection hot path.
type OrderChecker struct {
	terminal    int
	outstanding int // packets with partial deliveries
}

// NewOrderChecker creates a checker for the given terminal ID.
func NewOrderChecker(terminal int) *OrderChecker {
	return &OrderChecker{terminal: terminal}
}

// Check validates one delivered flit. It panics on a wrong destination, an
// out-of-order flit, or a duplicate delivery; it returns true when the flit
// is its packet's last (the packet completed in order).
func (c *OrderChecker) Check(f *Flit) bool {
	p := f.Pkt
	if p.Msg.Dst != c.terminal {
		panic(fmt.Sprintf("types: %v delivered to terminal %d, want destination %d",
			f, c.terminal, p.Msg.Dst))
	}
	want := p.rxNext
	if f.ID != want {
		panic(fmt.Sprintf("types: %v out of order at terminal %d: got flit %d, want %d",
			f, c.terminal, f.ID, want))
	}
	if f.ID == len(p.Flits)-1 {
		if !f.Tail {
			panic(fmt.Sprintf("types: %v is last flit but not marked tail", f))
		}
		if want > 0 {
			c.outstanding--
		}
		p.rxNext = 0 // rearm for pool reuse
		return true
	}
	if want == 0 {
		c.outstanding++
	}
	p.rxNext = want + 1
	return false
}

// Outstanding returns the number of packets with partial deliveries.
func (c *OrderChecker) Outstanding() int { return c.outstanding }

// Package types defines the units of network traffic — messages, packets,
// flits and credits — and the sink interfaces over which components exchange
// them.
//
// A message is the unit of transfer requested by an application. The network
// interface segments each message into one or more packets, and each packet
// into flits. A flit (flow control digit) is the smallest unit of resource
// allocation in a router: routers manage buffering, data flow and resource
// scheduling at flit granularity, which is why flit-level simulation is
// required to understand router microarchitecture behavior.
package types

import (
	"fmt"

	"supersim/internal/sim"
)

// Message is an application-level unit of transfer between two terminals.
type Message struct {
	ID          uint64 // globally unique
	App         int    // application index within the workload
	Transaction uint64 // transaction grouping tag
	Src, Dst    int    // terminal IDs

	Packets []*Packet

	CreateTime  sim.Tick // when the application created the message
	InjectTime  sim.Tick // when the first flit entered the network
	ReceiveTime sim.Tick // when the last flit was delivered

	Sampled bool // flagged for statistics sampling
	OpCode  int  // application-specific operation code
}

// NewMessage creates a message of totalFlits flits segmented into packets of
// at most maxPacketSize flits each. totalFlits and maxPacketSize must be
// positive.
func NewMessage(id uint64, app, src, dst int, totalFlits, maxPacketSize int) *Message {
	if totalFlits <= 0 {
		panic(fmt.Sprintf("types: message %d: totalFlits %d must be positive", id, totalFlits))
	}
	if maxPacketSize <= 0 {
		panic(fmt.Sprintf("types: message %d: maxPacketSize %d must be positive", id, maxPacketSize))
	}
	m := &Message{ID: id, App: app, Src: src, Dst: dst}
	numPackets := (totalFlits + maxPacketSize - 1) / maxPacketSize
	m.Packets = make([]*Packet, numPackets)
	remaining := totalFlits
	for p := 0; p < numPackets; p++ {
		size := maxPacketSize
		if remaining < size {
			size = remaining
		}
		remaining -= size
		pkt := &Packet{Msg: m, ID: p, Intermediate: -1}
		pkt.Flits = make([]*Flit, size)
		for f := 0; f < size; f++ {
			pkt.Flits[f] = &Flit{
				Pkt:  pkt,
				ID:   f,
				Head: f == 0,
				Tail: f == size-1,
				VC:   -1,
			}
		}
		m.Packets[p] = pkt
	}
	return m
}

// TotalFlits returns the number of flits across all packets of the message.
func (m *Message) TotalFlits() int {
	n := 0
	for _, p := range m.Packets {
		n += len(p.Flits)
	}
	return n
}

// Packet is the unit of routing: all flits of a packet follow the head flit's
// path. Packets carry the mutable routing state used by adaptive algorithms.
type Packet struct {
	Msg   *Message
	ID    int // index within the message
	Flits []*Flit

	HopCount     int  // router-to-router hops taken so far
	NonMinimal   bool // took a non-minimal route (Valiant/UGAL deroute)
	Intermediate int  // intermediate destination for non-minimal routing, -1 if none

	InjectTime  sim.Tick // head flit network entry
	ReceiveTime sim.Tick // tail flit delivery

	// RoutingState is scratch storage owned by the routing algorithm (e.g.
	// dateline crossing flags, UGAL phase). Routers never interpret it.
	RoutingState any
}

// Size returns the number of flits in the packet.
func (p *Packet) Size() int { return len(p.Flits) }

// Head returns the packet's head flit.
func (p *Packet) Head() *Flit { return p.Flits[0] }

// Tail returns the packet's tail flit.
func (p *Packet) Tail() *Flit { return p.Flits[len(p.Flits)-1] }

// Age returns the message creation time, used by age-based arbitration: the
// oldest packet (smallest value) has priority.
func (p *Packet) Age() sim.Tick { return p.Msg.CreateTime }

func (p *Packet) String() string {
	return fmt.Sprintf("packet[msg=%d pkt=%d src=%d dst=%d size=%d]",
		p.Msg.ID, p.ID, p.Msg.Src, p.Msg.Dst, len(p.Flits))
}

// Flit is the unit of buffering and flow control. The head flit carries the
// routing responsibility; the tail flit releases held resources.
type Flit struct {
	Pkt  *Packet
	ID   int // index within the packet
	Head bool
	Tail bool

	// VC is the virtual channel the flit currently occupies. It is rewritten
	// at each hop by the winning routing/VC-allocation decision.
	VC int

	SendTime    sim.Tick // last channel injection time
	ReceiveTime sim.Tick // last channel delivery time
}

func (f *Flit) String() string {
	kind := "body"
	if f.Head && f.Tail {
		kind = "head+tail"
	} else if f.Head {
		kind = "head"
	} else if f.Tail {
		kind = "tail"
	}
	return fmt.Sprintf("flit[msg=%d pkt=%d id=%d %s vc=%d]",
		f.Pkt.Msg.ID, f.Pkt.ID, f.ID, kind, f.VC)
}

// Credit is the unit of credit-based flow control: one credit returns one
// flit slot in the upstream direction for a specific VC.
type Credit struct {
	VC int
}

// FlitSink receives flits. Routers and interfaces implement it for their
// input ports; channels deliver into it.
type FlitSink interface {
	// ReceiveFlit accepts a flit arriving on the given local port number.
	ReceiveFlit(port int, f *Flit)
}

// CreditSink receives credits flowing in the reverse direction of flits.
type CreditSink interface {
	// ReceiveCredit accepts a credit arriving for the given local port.
	ReceiveCredit(port int, c Credit)
}

// Package types defines the units of network traffic — messages, packets,
// flits and credits — and the sink interfaces over which components exchange
// them.
//
// A message is the unit of transfer requested by an application. The network
// interface segments each message into one or more packets, and each packet
// into flits. A flit (flow control digit) is the smallest unit of resource
// allocation in a router: routers manage buffering, data flow and resource
// scheduling at flit granularity, which is why flit-level simulation is
// required to understand router microarchitecture behavior.
//
// # Memory layout
//
// A message's packets and flits are not individual heap objects: each message
// owns one contiguous []Packet block and one contiguous []Flit block, and the
// exported pointer slices (Message.Packets, Packet.Flits) are views into
// those blocks. Building a message therefore costs a constant number of
// allocations regardless of its flit count, and walking a packet's flits is a
// linear scan of adjacent memory.
//
// # Pooling and the message lifecycle
//
// Flit-level DES throughput is dominated by traffic-object churn, so the
// steady-state path recycles messages through a Pool instead of allocating:
//
//   - An application obtains a message from its workload's Pool
//     (Pool.NewMessage) and hands it to the network interface.
//   - The network delivers the flits; the ejection-side interface reassembles
//     the message and passes it to the workload's demultiplexer.
//   - After the owning application's DeliverMessage returns (statistics
//     recorded, no references retained), the workload calls Pool.Release and
//     the message's blocks go back on the free list.
//
// Ownership rules: Release is legal only once per delivery, only after every
// flit of the message has been delivered, and only by the releaser of record
// (the workload demux); components must not retain message, packet or flit
// pointers across delivery. A Pool is deliberately lock-free and
// single-threaded — it belongs to one Workload driven by one Simulator, the
// same ownership discipline as the simulator's event free list. Concurrent
// sweeps (internal/sweep, internal/taskrun) each build their own Simulation
// and therefore their own Pool, so no synchronization is needed or provided.
//
// Messages built with the package-level NewMessage are unpooled: they have no
// owning Pool, and Release on them is a no-op, which keeps tests and
// single-shot tools allocation-compatible with the pooled hot path.
package types

import (
	"fmt"

	"supersim/internal/sim"
)

// Message is an application-level unit of transfer between two terminals.
type Message struct {
	ID          uint64 // globally unique
	App         int    // application index within the workload
	Transaction uint64 // transaction grouping tag
	Src, Dst    int    // terminal IDs

	// Packets are views into the message's contiguous packet block.
	Packets []*Packet

	CreateTime  sim.Tick // when the application created the message
	InjectTime  sim.Tick // when the first flit entered the network
	ReceiveTime sim.Tick // when the last flit was delivered

	Sampled bool // flagged for statistics sampling
	OpCode  int  // application-specific operation code

	// RxRemaining counts the flits not yet delivered to the destination.
	// It is initialized to the total flit count and owned by the
	// ejection-side network interface during reassembly.
	RxRemaining int

	// Contiguous storage backing Packets and every Packet's Flits view.
	pktBlock  []Packet
	flitBlock []Flit
	flitPtrs  []*Flit

	maxPkt int   // segmentation parameter, part of the pool bucket key
	pool   *Pool // owning pool; nil for unpooled messages
	//sslint:nosnapshot — double-Release guard; snapshots hold live messages only, so it is always false
	released bool // guards against double Release

	// gen counts the message's lives: it is bumped on every (re)initialization
	// so verification layers can detect references into a recycled block (see
	// internal/verify's pool-aliasing sentinel).
	gen uint64
}

// Generation returns the message's life counter, bumped each time the
// message's blocks are (re)initialized. A component holding a flit whose
// message generation has changed is holding an aliased, recycled block.
func (m *Message) Generation() uint64 { return m.gen }

// NewMessage creates an unpooled message of totalFlits flits segmented into
// packets of at most maxPacketSize flits each. totalFlits and maxPacketSize
// must be positive. Hot paths should draw from a Pool instead.
func NewMessage(id uint64, app, src, dst int, totalFlits, maxPacketSize int) *Message {
	validateShape(id, totalFlits, maxPacketSize)
	m := &Message{}
	m.alloc(totalFlits, maxPacketSize)
	m.reset(id, app, src, dst)
	return m
}

func validateShape(id uint64, totalFlits, maxPacketSize int) {
	if totalFlits <= 0 {
		panic(fmt.Sprintf("types: message %d: totalFlits %d must be positive", id, totalFlits))
	}
	if maxPacketSize <= 0 {
		panic(fmt.Sprintf("types: message %d: maxPacketSize %d must be positive", id, maxPacketSize))
	}
}

// alloc builds the contiguous packet/flit blocks and the immutable identity
// fields (packet IDs, flit IDs, head/tail flags, back-pointers). It runs once
// per message shape; reuse only re-runs reset.
func (m *Message) alloc(totalFlits, maxPacketSize int) {
	numPackets := (totalFlits + maxPacketSize - 1) / maxPacketSize
	m.pktBlock = make([]Packet, numPackets)
	m.flitBlock = make([]Flit, totalFlits)
	m.flitPtrs = make([]*Flit, totalFlits)
	m.Packets = make([]*Packet, numPackets)
	m.maxPkt = maxPacketSize
	remaining := totalFlits
	base := 0
	for p := 0; p < numPackets; p++ {
		size := maxPacketSize
		if remaining < size {
			size = remaining
		}
		remaining -= size
		pkt := &m.pktBlock[p]
		pkt.Msg = m
		pkt.ID = p
		pkt.Flits = m.flitPtrs[base : base+size : base+size]
		for f := 0; f < size; f++ {
			fl := &m.flitBlock[base+f]
			fl.Pkt = pkt
			fl.ID = f
			fl.Head = f == 0
			fl.Tail = f == size-1
			m.flitPtrs[base+f] = fl
		}
		base += size
		m.Packets[p] = pkt
	}
}

// reset restores every mutable field to its initial value so a recycled
// message is indistinguishable from a freshly allocated one.
//
//sslint:hotpath
func (m *Message) reset(id uint64, app, src, dst int) {
	m.gen++
	m.ID = id
	m.App = app
	m.Transaction = 0
	m.Src = src
	m.Dst = dst
	m.CreateTime = 0
	m.InjectTime = 0
	m.ReceiveTime = 0
	m.Sampled = false
	m.OpCode = 0
	m.RxRemaining = len(m.flitBlock)
	m.released = false
	for i := range m.pktBlock {
		pkt := &m.pktBlock[i]
		pkt.HopCount = 0
		pkt.NonMinimal = false
		pkt.Intermediate = -1
		pkt.InjectTime = 0
		pkt.ReceiveTime = 0
		pkt.Routing = RoutingScratch{}
		pkt.rxNext = 0
	}
	for i := range m.flitBlock {
		fl := &m.flitBlock[i]
		fl.VC = -1
		fl.SendTime = 0
		fl.ReceiveTime = 0
	}
}

// TotalFlits returns the number of flits across all packets of the message.
func (m *Message) TotalFlits() int { return len(m.flitBlock) }

// Packet is the unit of routing: all flits of a packet follow the head flit's
// path. Packets carry the mutable routing state used by adaptive algorithms.
type Packet struct {
	Msg   *Message
	ID    int // index within the message
	Flits []*Flit

	HopCount     int  // router-to-router hops taken so far
	NonMinimal   bool // took a non-minimal route (Valiant/UGAL deroute)
	Intermediate int  // intermediate destination for non-minimal routing, -1 if none

	InjectTime  sim.Tick // head flit network entry
	ReceiveTime sim.Tick // tail flit delivery

	// Routing is fixed-size scratch storage owned by the routing algorithm
	// (e.g. dateline crossing flags, UGAL phase). Routers never interpret it.
	Routing RoutingScratch

	rxNext int // next expected flit ID at the destination (OrderChecker)
}

// RoutingScratch is per-packet scratch storage for routing algorithms. It is
// a small value struct rather than an `any` box so adaptive algorithms do not
// heap-allocate per routed packet. The fields are algorithm-defined; the
// framework only guarantees they are zeroed when a packet is (re)built.
type RoutingScratch struct {
	Valid    bool // the algorithm has initialized this scratch
	Phase    int8 // algorithm-defined phase counter (e.g. current DOR dimension)
	Dateline bool // dateline crossed / intermediate point passed
}

// Size returns the number of flits in the packet.
func (p *Packet) Size() int { return len(p.Flits) }

// Head returns the packet's head flit.
func (p *Packet) Head() *Flit { return p.Flits[0] }

// Tail returns the packet's tail flit.
func (p *Packet) Tail() *Flit { return p.Flits[len(p.Flits)-1] }

// Age returns the message creation time, used by age-based arbitration: the
// oldest packet (smallest value) has priority.
func (p *Packet) Age() sim.Tick { return p.Msg.CreateTime }

func (p *Packet) String() string {
	return fmt.Sprintf("packet[msg=%d pkt=%d src=%d dst=%d size=%d]",
		p.Msg.ID, p.ID, p.Msg.Src, p.Msg.Dst, len(p.Flits))
}

// Flit is the unit of buffering and flow control. The head flit carries the
// routing responsibility; the tail flit releases held resources.
type Flit struct {
	Pkt  *Packet
	ID   int // index within the packet
	Head bool
	Tail bool

	// VC is the virtual channel the flit currently occupies. It is rewritten
	// at each hop by the winning routing/VC-allocation decision.
	VC int

	SendTime    sim.Tick // last channel injection time
	ReceiveTime sim.Tick // last channel delivery time

	// vfGen and vfInFlight are the invariant-verification subsystem's
	// in-flight ledger, inlined into the flit so the ledger needs no shared
	// map: a map would be written by the injecting terminal while being read
	// at every channel hop, which under the parallel engine happens on
	// different shards. The fields are written only at injection/retirement
	// (terminal side); hops merely read them, and the engine's inbox
	// hand-off orders those reads after the injection write.
	vfGen      uint64
	vfInFlight bool
}

// VerifyMarkInFlight records the flit entering the network, stamping the
// owning message's generation. Owned by internal/verify.
func (f *Flit) VerifyMarkInFlight(gen uint64) {
	f.vfGen = gen
	f.vfInFlight = true
}

// VerifyClearInFlight records the flit retiring from the network. Owned by
// internal/verify.
func (f *Flit) VerifyClearInFlight() { f.vfInFlight = false }

// VerifyInFlight returns the message generation recorded at injection and
// whether the flit is currently marked in flight. Owned by internal/verify.
func (f *Flit) VerifyInFlight() (uint64, bool) { return f.vfGen, f.vfInFlight }

func (f *Flit) String() string {
	kind := "body"
	if f.Head && f.Tail {
		kind = "head+tail"
	} else if f.Head {
		kind = "head"
	} else if f.Tail {
		kind = "tail"
	}
	return fmt.Sprintf("flit[msg=%d pkt=%d id=%d %s vc=%d]",
		f.Pkt.Msg.ID, f.Pkt.ID, f.ID, kind, f.VC)
}

// Credit is the unit of credit-based flow control: one credit returns one
// flit slot in the upstream direction for a specific VC.
type Credit struct {
	VC int
}

// FlitSink receives flits. Routers and interfaces implement it for their
// input ports; channels deliver into it.
type FlitSink interface {
	// ReceiveFlit accepts a flit arriving on the given local port number.
	ReceiveFlit(port int, f *Flit)
}

// CreditSink receives credits flowing in the reverse direction of flits.
type CreditSink interface {
	// ReceiveCredit accepts a credit arriving for the given local port.
	ReceiveCredit(port int, c Credit)
}

package types

// poolKey buckets recycled messages by shape: segmentation depends on both
// the flit count and the packet size cap, so both are part of the key.
type poolKey struct {
	totalFlits    int
	maxPacketSize int
}

// PoolObserver is notified of message lifecycle transitions through a pool.
// The invariant-verification subsystem implements it to detect aliasing —
// a message released or handed out while its flits are still in the network.
type PoolObserver interface {
	// MessageObtained fires after a message is drawn from the pool (recycled
	// or freshly allocated) and reset.
	MessageObtained(m *Message)
	// MessageReleased fires when a message's blocks return to the free list.
	MessageReleased(m *Message)
}

// Pool recycles retired message/packet/flit blocks, bucketed by message
// shape. It is single-threaded by design — one Pool belongs to one Workload
// driven by one Simulator, mirroring the simulator's event free list — so it
// takes no locks. See the package documentation for the lifecycle rules.
//
// The zero Pool is not usable; call NewPool.
type Pool struct {
	//sslint:nosnapshot — recycling cache: only live messages are state; retired blocks are reconstructible scratch
	free map[poolKey][]*Message
	//sslint:nosnapshot — observer wiring, re-attached during the rebuild
	obs PoolObserver

	gets     uint64 // NewMessage calls
	hits     uint64 // NewMessage calls served from the free list
	releases uint64 // messages returned
}

// NewPool creates an empty message pool.
func NewPool() *Pool {
	return &Pool{free: map[poolKey][]*Message{}}
}

// SetObserver registers a lifecycle observer (nil to remove). Observation is
// read-only; the observer must not retain or release messages.
func (p *Pool) SetObserver(o PoolObserver) { p.obs = o }

// PoolStats is a snapshot of a pool's recycling counters.
type PoolStats struct {
	Gets     uint64 // messages requested
	Hits     uint64 // requests served without allocating
	Releases uint64 // messages returned to the pool
}

// Stats returns the pool's counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{Gets: p.gets, Hits: p.hits, Releases: p.releases}
}

// NewMessage returns a message of totalFlits flits segmented into packets of
// at most maxPacketSize flits, recycling a retired message of the same shape
// when one is available. The returned message is field-for-field identical to
// one built by the package-level NewMessage.
//
//sslint:hotpath
func (p *Pool) NewMessage(id uint64, app, src, dst int, totalFlits, maxPacketSize int) *Message {
	validateShape(id, totalFlits, maxPacketSize)
	p.gets++
	k := poolKey{totalFlits, maxPacketSize}
	if list := p.free[k]; len(list) > 0 {
		m := list[len(list)-1]
		list[len(list)-1] = nil
		p.free[k] = list[:len(list)-1]
		p.hits++
		m.reset(id, app, src, dst)
		if p.obs != nil {
			p.obs.MessageObtained(m)
		}
		return m
	}
	//sslint:allow hotpath — cold miss path: first message of this shape, recycled forever after
	m := &Message{pool: p}
	m.alloc(totalFlits, maxPacketSize)
	m.reset(id, app, src, dst)
	if p.obs != nil {
		p.obs.MessageObtained(m)
	}
	return m
}

// Release returns a retired message's blocks to the pool. It is legal only
// after full delivery, at most once per NewMessage; a double release panics
// (it would alias one block between two live messages). Messages owned by a
// different pool, unpooled messages and nil are ignored, so callers can
// release unconditionally at the retirement point.
//
//sslint:hotpath
func (p *Pool) Release(m *Message) {
	if m == nil || m.pool != p {
		return
	}
	if m.released {
		panic("types: message released twice")
	}
	m.released = true
	p.releases++
	if p.obs != nil {
		p.obs.MessageReleased(m)
	}
	k := poolKey{len(m.flitBlock), m.maxPkt}
	//sslint:allow hotpath — amortized free-list growth, bounded by the in-flight high-water mark
	p.free[k] = append(p.free[k], m)
}

package taskrun

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const updateEnv = "SUPERSIM_UPDATE_GOLDEN"

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv(updateEnv) != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (set %s=1 to regenerate)", err, updateEnv)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s differs from golden (set %s=1 to regenerate)\ngot:\n%s\nwant:\n%s",
			name, updateEnv, got, want)
	}
}

func testClock() Clock {
	return FixedClock(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC), time.Millisecond)
}

// fleetGraph builds the canonical five-task test graph: two sims contending
// for one cpu, a failing parse behind them, a plot canceled by the failure,
// and a condition-skipped task.
func fleetGraph(r *Runner) {
	simA := r.Task("sim_a", func() error { return nil }).Require("cpu", 1)
	simB := r.Task("sim_b", func() error { return nil }).Require("cpu", 1)
	parse := r.Task("parse", func() error { return errors.New("boom") }).After(simA, simB)
	r.Task("plot", func() error { return nil }).After(parse)
	r.Task("cached", func() error { return nil }).OnlyIf(func() bool { return false })
}

func TestJournalGoldenFixedClock(t *testing.T) {
	// Capacity 1 fully serializes execution, so the event order — and with a
	// fixed clock every byte of the journal — is deterministic.
	var buf bytes.Buffer
	j := NewJournal(&buf, testClock())
	r := NewRunner(map[string]int{"cpu": 1})
	r.SetProbe(j)
	fleetGraph(r)
	if err := r.Run(); err == nil {
		t.Fatal("expected run error from the failing parse task")
	}
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_journal.jsonl", buf.Bytes())

	// A second identical run must produce identical bytes.
	var buf2 bytes.Buffer
	r2 := NewRunner(map[string]int{"cpu": 1})
	r2.SetProbe(NewJournal(&buf2, testClock()))
	fleetGraph(r2)
	r2.Run()
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("two identical fixed-clock runs wrote different journals")
	}
}

func TestJournalRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf, testClock())
	r := NewRunner(map[string]int{"cpu": 1})
	r.SetProbe(j)
	fleetGraph(r)
	r.Run()

	hdr, events, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Schema != JournalSchema || hdr.Version != JournalSchemaVersion {
		t.Fatalf("header %+v", hdr)
	}
	if hdr.Capacity["cpu"] != 1 || hdr.Tasks != 5 {
		t.Fatalf("header capacity/tasks: %+v", hdr)
	}
	counts := map[string]int{}
	var done *JournalEvent
	for i, ev := range events {
		counts[ev.Ev]++
		if ev.Ev == "done" {
			done = &events[i]
		}
	}
	if counts["queued"] != 5 || counts["finished"] != 5 || counts["done"] != 1 {
		t.Fatalf("event counts %v", counts)
	}
	// sim_b contends with sim_a for the single cpu: exactly one blocked
	// episode, attributed to the cpu resource.
	if counts["blocked"] != 1 {
		t.Fatalf("blocked events %d, want 1", counts["blocked"])
	}
	for _, ev := range events {
		if ev.Ev == "blocked" && (ev.Task != "sim_b" || ev.Resource != "cpu" || ev.Need != 1) {
			t.Fatalf("blocked attribution %+v", ev)
		}
		if ev.Ev == "started" && ev.Task == "sim_b" && ev.BlockedMS == 0 {
			t.Fatalf("sim_b started without blocked_ms: %+v", ev)
		}
	}
	if done == nil || done.Succeeded != 2 || done.Failed != 1 || done.Skipped != 1 || done.Canceled != 1 {
		t.Fatalf("done line %+v", done)
	}
	if done.WallMS == 0 {
		t.Fatal("done line has no wall_ms")
	}
}

func TestJournalParallelRaceClean(t *testing.T) {
	// With real concurrency the event order is nondeterministic, but the
	// journal must stay a valid stream (all probe calls run under the
	// runner's lock — the race detector enforces the discipline).
	var buf bytes.Buffer
	r := NewRunner(map[string]int{"cpu": 4})
	r.SetProbe(NewJournal(&buf, nil))
	var prev *Task
	for i := 0; i < 12; i++ {
		task := r.Task("t"+string(rune('a'+i)), func() error {
			time.Sleep(time.Millisecond)
			return nil
		}).Require("cpu", 1)
		if i%4 == 3 {
			task.After(prev)
		}
		prev = task
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	hdr, events, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Capacity["cpu"] != 4 {
		t.Fatalf("header %+v", hdr)
	}
	finished := 0
	for _, ev := range events {
		if ev.Ev == "finished" {
			finished++
		}
	}
	if finished != 12 {
		t.Fatalf("finished events %d, want 12", finished)
	}
}

func TestJournalStandaloneWithoutRunner(t *testing.T) {
	// Drivers like the experiments harness emit task events without a runner:
	// the header appears lazily on the first event.
	var buf bytes.Buffer
	j := NewJournal(&buf, testClock())
	j.TaskQueued("fig5", nil)
	j.TaskReady("fig5")
	j.TaskStarted("fig5")
	j.TaskFinished("fig5", Succeeded, nil)
	j.RunFinished()
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	hdr, events, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Tasks != 0 || len(hdr.Capacity) != 0 {
		t.Fatalf("standalone header %+v", hdr)
	}
	if len(events) != 5 || events[3].State != "succeeded" || events[3].RunMS != 1 {
		t.Fatalf("events %+v", events)
	}
}

func TestJournalStickyWriteError(t *testing.T) {
	j := NewJournal(failWriter{}, testClock())
	r := NewRunner(nil)
	r.SetProbe(j)
	r.Task("t", func() error { return nil })
	if err := r.Run(); err != nil {
		t.Fatal(err) // journal failure must not fail the run
	}
	if j.Err() == nil {
		t.Fatal("write error not reported")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestReadJournalRejects(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"not json":    "nonsense\n",
		"bad schema":  `{"schema":"other","version":1}` + "\n",
		"bad version": `{"schema":"supersim-tasks","version":99}` + "\n",
	}
	for name, in := range cases {
		if _, _, err := ReadJournal(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadJournal accepted %q", name, in)
		}
	}
	// Truncated events after a valid header also error.
	in := `{"schema":"supersim-tasks","version":1,"start":"2020-01-01T00:00:00Z"}` + "\n{bad\n"
	if _, _, err := ReadJournal(strings.NewReader(in)); err == nil {
		t.Error("ReadJournal accepted a corrupt event")
	}
}

func TestProbesFanOut(t *testing.T) {
	if Probes() != nil || Probes(nil, nil) != nil {
		t.Fatal("empty Probes must be nil")
	}
	j := NewJournal(&bytes.Buffer{}, testClock())
	if Probes(nil, j) != Probe(j) {
		t.Fatal("single survivor must be returned unwrapped")
	}
	var buf1, buf2 bytes.Buffer
	p := Probes(NewJournal(&buf1, testClock()), nil, NewJournal(&buf2, testClock()))
	r := NewRunner(map[string]int{"cpu": 1})
	r.SetProbe(p)
	fleetGraph(r)
	r.Run()
	if buf1.Len() == 0 || !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("fan-out probes received different event streams")
	}
}

func TestFixedClock(t *testing.T) {
	c := FixedClock(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC), time.Second)
	if got := c(); got.Second() != 0 {
		t.Fatalf("first tick %v", got)
	}
	if got := c(); got.Second() != 1 {
		t.Fatalf("second tick %v", got)
	}
}

func TestWallClock(t *testing.T) {
	c := WallClock()
	if c().IsZero() {
		t.Fatal("wall clock returned the zero time")
	}
}

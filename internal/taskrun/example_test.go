package taskrun_test

import (
	"fmt"

	"supersim/internal/taskrun"
)

// The classic simulate -> parse -> analyze -> plot pipeline: independent
// simulations run concurrently under a CPU cap, each post-processing step
// waits for its inputs, and the plot waits for everything.
func Example() {
	r := taskrun.NewRunner(map[string]int{"cpu": 2})
	var sims []*taskrun.Task
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("sim%d", i)
		sims = append(sims, r.Task(name, func() error { return nil }).Require("cpu", 1))
	}
	analyze := r.Task("analyze", func() error { return nil }).After(sims...)
	r.Task("plot", func() error {
		fmt.Println("plotting after analysis")
		return nil
	}).After(analyze)
	if err := r.Run(); err != nil {
		fmt.Println("failed:", err)
	}
	// Output: plotting after analysis
}

// Package taskrun is a task scheduling and management engine: it runs tasks
// with dependencies, conditional execution and resource management —
// mirroring the TaskRun tool of the original ecosystem. A sweep of thousands
// of simulations, parses, analyses and plots declares each step as a task
// with its dependencies and resource demands, and the runner executes
// everything in a correct order without resource conflicts.
package taskrun

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// State describes a task's lifecycle.
type State int

// Task states.
const (
	Pending State = iota
	Running
	Succeeded
	Failed   // action returned an error
	Skipped  // condition returned false: treated as success (work not needed)
	Canceled // a dependency failed or was canceled
)

func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Succeeded:
		return "succeeded"
	case Failed:
		return "failed"
	case Skipped:
		return "skipped"
	case Canceled:
		return "canceled"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Task is one unit of work.
type Task struct {
	name      string
	action    func() error
	deps      []*Task
	resources map[string]int
	condition func() bool

	state State
	err   error

	// Scheduler-side observation state: ready has been reported to the
	// probe; blockedOn is the bottleneck resource last reported (empty when
	// not blocked), so blocked events fire per transition, not per scan.
	readyObserved bool
	blockedOn     string
}

// Name returns the task name.
func (t *Task) Name() string { return t.name }

// State returns the task's final state after Run.
func (t *Task) State() State { return t.state }

// Err returns the action's error, if the task failed.
func (t *Task) Err() error { return t.err }

// After declares dependencies: t runs only after all deps succeed (or are
// condition-skipped). If any dependency fails, t is canceled.
func (t *Task) After(deps ...*Task) *Task {
	t.deps = append(t.deps, deps...)
	return t
}

// Require declares a resource demand. The runner never lets concurrent
// demands for a resource exceed its capacity.
func (t *Task) Require(resource string, amount int) *Task {
	if amount <= 0 {
		panic("taskrun: resource amount must be positive")
	}
	t.resources[resource] = amount
	return t
}

// OnlyIf attaches a conditional execution predicate, evaluated when the task
// becomes ready. A false result skips the task's action — the usual caching
// idiom ("output already exists") — and dependents still run.
func (t *Task) OnlyIf(cond func() bool) *Task {
	t.condition = cond
	return t
}

// Runner owns a task set and its resource pool.
type Runner struct {
	capacity map[string]int
	tasks    []*Task
	byName   map[string]*Task
	probe    Probe
}

// NewRunner creates a runner with the given resource capacities, e.g.
// {"cpu": 4, "mem_gb": 16}. Tasks demanding more of a resource than its
// capacity are rejected at Add time.
func NewRunner(capacity map[string]int) *Runner {
	cp := make(map[string]int, len(capacity))
	//sslint:allow determinism — defensive copy keyed by the iteration key; the validation panic aborts identically in any order
	for k, v := range capacity {
		if v <= 0 {
			panic("taskrun: resource capacity must be positive")
		}
		cp[k] = v
	}
	return &Runner{capacity: cp, byName: map[string]*Task{}}
}

// Task registers a new task. Names must be unique.
func (r *Runner) Task(name string, action func() error) *Task {
	if action == nil {
		panic("taskrun: task action required")
	}
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("taskrun: duplicate task name %q", name))
	}
	t := &Task{name: name, action: action, resources: map[string]int{}}
	r.tasks = append(r.tasks, t)
	r.byName[name] = t
	return t
}

// Tasks returns all registered tasks.
func (r *Runner) Tasks() []*Task { return r.tasks }

// SetProbe attaches a task-lifecycle probe (a Journal, the sweep monitor, or
// several combined via Probes). nil disables observation; the runner
// nil-guards every call. Must be set before Run.
func (r *Runner) SetProbe(p Probe) { r.probe = p }

// sortedResources returns m's resource names in sorted order so every
// iteration over a resource map is deterministic — journal goldens and
// blocked-resource attribution depend on it.
func sortedResources(m map[string]int) []string {
	if len(m) == 0 {
		return nil
	}
	names := make([]string, 0, len(m))
	//sslint:allow determinism — keys are sorted immediately below; iteration order cannot escape
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Run executes the task graph: every task runs after its dependencies, the
// resource pool is never oversubscribed, and independent tasks run
// concurrently. It returns an error if any task failed, was skipped, or if
// the graph has a dependency cycle.
func (r *Runner) Run() error {
	for _, t := range r.tasks {
		for _, res := range sortedResources(t.resources) {
			amt := t.resources[res]
			cap, ok := r.capacity[res]
			if !ok {
				return fmt.Errorf("taskrun: task %q requires unknown resource %q", t.name, res)
			}
			if amt > cap {
				return fmt.Errorf("taskrun: task %q requires %d of %q, capacity is %d",
					t.name, amt, res, cap)
			}
		}
	}
	if r.probe != nil {
		r.probe.RunStarted(r.capacity, len(r.tasks))
	}
	for _, t := range r.tasks {
		if r.probe != nil {
			r.probe.TaskQueued(t.name, t.resources)
		}
	}
	var (
		mu        sync.Mutex
		cond      = sync.NewCond(&mu)
		available = map[string]int{}
		running   = 0
	)
	for k, v := range r.capacity {
		available[k] = v
	}

	depsDone := func(t *Task) (ready bool, cancel bool) {
		for _, d := range t.deps {
			switch d.state {
			case Succeeded, Skipped:
			case Failed, Canceled:
				return false, true
			default:
				return false, false
			}
		}
		return true, false
	}
	fits := func(t *Task) bool {
		for _, res := range sortedResources(t.resources) {
			if available[res] < t.resources[res] {
				return false
			}
		}
		return true
	}
	// bottleneck names the first insufficient resource in sorted order — the
	// blocked-on attribution the probe reports.
	bottleneck := func(t *Task) (res string, need, avail int) {
		for _, res := range sortedResources(t.resources) {
			if need := t.resources[res]; available[res] < need {
				return res, need, available[res]
			}
		}
		return "", 0, 0
	}

	mu.Lock()
	for {
		launched := false
		pending := 0
		for _, t := range r.tasks {
			if t.state != Pending {
				continue
			}
			pending++
			ready, cancel := depsDone(t)
			if cancel {
				t.state = Canceled
				pending--
				launched = true // state changed; rescan
				if r.probe != nil {
					r.probe.TaskFinished(t.name, Canceled, nil)
				}
				continue
			}
			if !ready {
				continue
			}
			if !t.readyObserved {
				t.readyObserved = true
				if r.probe != nil {
					r.probe.TaskReady(t.name)
				}
			}
			if !fits(t) {
				if r.probe != nil {
					if res, need, avail := bottleneck(t); res != t.blockedOn {
						t.blockedOn = res
						r.probe.TaskBlocked(t.name, res, need, avail)
					}
				}
				continue
			}
			if t.condition != nil && !t.condition() {
				t.state = Skipped
				pending--
				launched = true
				if r.probe != nil {
					r.probe.TaskFinished(t.name, Skipped, nil)
				}
				continue
			}
			for _, res := range sortedResources(t.resources) {
				available[res] -= t.resources[res]
			}
			t.state = Running
			t.blockedOn = ""
			running++
			launched = true
			if r.probe != nil {
				r.probe.TaskStarted(t.name)
			}
			go func(t *Task) {
				err := t.action()
				mu.Lock()
				if err != nil {
					t.state = Failed
					t.err = err
				} else {
					t.state = Succeeded
				}
				if r.probe != nil {
					r.probe.TaskFinished(t.name, t.state, err)
				}
				for _, res := range sortedResources(t.resources) {
					available[res] += t.resources[res]
				}
				running--
				cond.Broadcast()
				mu.Unlock()
			}(t)
		}
		if pending == 0 && running == 0 {
			break
		}
		if !launched {
			if running == 0 {
				// Nothing running and nothing launchable: dependency cycle.
				mu.Unlock()
				return fmt.Errorf("taskrun: dependency cycle among pending tasks %v", r.pendingNames())
			}
			cond.Wait()
		}
	}
	mu.Unlock()
	if r.probe != nil {
		r.probe.RunFinished()
	}

	var errs []error
	for _, t := range r.tasks {
		switch t.state {
		case Failed:
			errs = append(errs, fmt.Errorf("task %q: %w", t.name, t.err))
		case Canceled:
			errs = append(errs, fmt.Errorf("task %q canceled by failed dependency", t.name))
		}
	}
	return errors.Join(errs...)
}

func (r *Runner) pendingNames() []string {
	var out []string
	for _, t := range r.tasks {
		if t.state == Pending {
			out = append(out, t.name)
		}
	}
	sort.Strings(out)
	return out
}

// Package taskrun is a task scheduling and management engine: it runs tasks
// with dependencies, conditional execution and resource management —
// mirroring the TaskRun tool of the original ecosystem. A sweep of thousands
// of simulations, parses, analyses and plots declares each step as a task
// with its dependencies and resource demands, and the runner executes
// everything in a correct order without resource conflicts.
package taskrun

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// State describes a task's lifecycle.
type State int

// Task states.
const (
	Pending State = iota
	Running
	Succeeded
	Failed   // action returned an error
	Skipped  // condition returned false: treated as success (work not needed)
	Canceled // a dependency failed or was canceled
)

func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Succeeded:
		return "succeeded"
	case Failed:
		return "failed"
	case Skipped:
		return "skipped"
	case Canceled:
		return "canceled"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Task is one unit of work.
type Task struct {
	name      string
	action    func() error
	deps      []*Task
	resources map[string]int
	condition func() bool

	state State
	err   error
}

// Name returns the task name.
func (t *Task) Name() string { return t.name }

// State returns the task's final state after Run.
func (t *Task) State() State { return t.state }

// Err returns the action's error, if the task failed.
func (t *Task) Err() error { return t.err }

// After declares dependencies: t runs only after all deps succeed (or are
// condition-skipped). If any dependency fails, t is canceled.
func (t *Task) After(deps ...*Task) *Task {
	t.deps = append(t.deps, deps...)
	return t
}

// Require declares a resource demand. The runner never lets concurrent
// demands for a resource exceed its capacity.
func (t *Task) Require(resource string, amount int) *Task {
	if amount <= 0 {
		panic("taskrun: resource amount must be positive")
	}
	t.resources[resource] = amount
	return t
}

// OnlyIf attaches a conditional execution predicate, evaluated when the task
// becomes ready. A false result skips the task's action — the usual caching
// idiom ("output already exists") — and dependents still run.
func (t *Task) OnlyIf(cond func() bool) *Task {
	t.condition = cond
	return t
}

// Runner owns a task set and its resource pool.
type Runner struct {
	capacity map[string]int
	tasks    []*Task
	byName   map[string]*Task
}

// NewRunner creates a runner with the given resource capacities, e.g.
// {"cpu": 4, "mem_gb": 16}. Tasks demanding more of a resource than its
// capacity are rejected at Add time.
func NewRunner(capacity map[string]int) *Runner {
	cp := make(map[string]int, len(capacity))
	for k, v := range capacity {
		if v <= 0 {
			panic("taskrun: resource capacity must be positive")
		}
		cp[k] = v
	}
	return &Runner{capacity: cp, byName: map[string]*Task{}}
}

// Task registers a new task. Names must be unique.
func (r *Runner) Task(name string, action func() error) *Task {
	if action == nil {
		panic("taskrun: task action required")
	}
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("taskrun: duplicate task name %q", name))
	}
	t := &Task{name: name, action: action, resources: map[string]int{}}
	r.tasks = append(r.tasks, t)
	r.byName[name] = t
	return t
}

// Tasks returns all registered tasks.
func (r *Runner) Tasks() []*Task { return r.tasks }

// Run executes the task graph: every task runs after its dependencies, the
// resource pool is never oversubscribed, and independent tasks run
// concurrently. It returns an error if any task failed, was skipped, or if
// the graph has a dependency cycle.
func (r *Runner) Run() error {
	for _, t := range r.tasks {
		for res, amt := range t.resources {
			cap, ok := r.capacity[res]
			if !ok {
				return fmt.Errorf("taskrun: task %q requires unknown resource %q", t.name, res)
			}
			if amt > cap {
				return fmt.Errorf("taskrun: task %q requires %d of %q, capacity is %d",
					t.name, amt, res, cap)
			}
		}
	}
	var (
		mu        sync.Mutex
		cond      = sync.NewCond(&mu)
		available = map[string]int{}
		running   = 0
	)
	for k, v := range r.capacity {
		available[k] = v
	}

	depsDone := func(t *Task) (ready bool, cancel bool) {
		for _, d := range t.deps {
			switch d.state {
			case Succeeded, Skipped:
			case Failed, Canceled:
				return false, true
			default:
				return false, false
			}
		}
		return true, false
	}
	fits := func(t *Task) bool {
		for res, amt := range t.resources {
			if available[res] < amt {
				return false
			}
		}
		return true
	}

	mu.Lock()
	for {
		launched := false
		pending := 0
		for _, t := range r.tasks {
			if t.state != Pending {
				continue
			}
			pending++
			ready, cancel := depsDone(t)
			if cancel {
				t.state = Canceled
				pending--
				launched = true // state changed; rescan
				continue
			}
			if !ready || !fits(t) {
				continue
			}
			if t.condition != nil && !t.condition() {
				t.state = Skipped
				pending--
				launched = true
				continue
			}
			for res, amt := range t.resources {
				available[res] -= amt
			}
			t.state = Running
			running++
			launched = true
			go func(t *Task) {
				err := t.action()
				mu.Lock()
				if err != nil {
					t.state = Failed
					t.err = err
				} else {
					t.state = Succeeded
				}
				for res, amt := range t.resources {
					available[res] += amt
				}
				running--
				cond.Broadcast()
				mu.Unlock()
			}(t)
		}
		if pending == 0 && running == 0 {
			break
		}
		if !launched {
			if running == 0 {
				// Nothing running and nothing launchable: dependency cycle.
				mu.Unlock()
				return fmt.Errorf("taskrun: dependency cycle among pending tasks %v", r.pendingNames())
			}
			cond.Wait()
		}
	}
	mu.Unlock()

	var errs []error
	for _, t := range r.tasks {
		switch t.state {
		case Failed:
			errs = append(errs, fmt.Errorf("task %q: %w", t.name, t.err))
		case Canceled:
			errs = append(errs, fmt.Errorf("task %q canceled by failed dependency", t.name))
		}
	}
	return errors.Join(errs...)
}

func (r *Runner) pendingNames() []string {
	var out []string
	for _, t := range r.tasks {
		if t.state == Pending {
			out = append(out, t.name)
		}
	}
	sort.Strings(out)
	return out
}

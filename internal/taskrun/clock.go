package taskrun

import "time"

// Clock supplies timestamps to task-lifecycle observers (the journal and the
// sweep monitor). The runner never reads a clock itself — simulation results
// stay a pure function of (config, seed) — but the observers stamp events, so
// the clock is injectable: production code uses WallClock, tests use
// FixedClock to pin byte-identical journal goldens.
//
// Probe implementations are invoked serially under the runner's scheduler
// lock, so a Clock needs no internal synchronization.
type Clock func() time.Time

// WallClock returns the real-time clock. This is the only wall-clock seam in
// the package (enforced by the sslint determinism rule's allowlist).
func WallClock() Clock { return time.Now }

// FixedClock returns a deterministic Clock for tests: the first call returns
// start and each subsequent call advances by step, so a fixed event sequence
// yields a fixed timestamp sequence.
func FixedClock(start time.Time, step time.Duration) Clock {
	n := 0
	return func() time.Time {
		t := start.Add(time.Duration(n) * step)
		n++
		return t
	}
}

package taskrun

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Task journal schema: the first line of a task journal (JSONL) names the
// schema and its version so readers (ssparse -tasks, ssplot -plot taskgantt,
// the sweep monitor) can reject streams written by an incompatible runner.
// Bump JournalSchemaVersion on any incompatible event change.
const (
	JournalSchema        = "supersim-tasks"
	JournalSchemaVersion = 1
)

// Probe observes the lifecycle of every task a Runner executes: the fleet-
// level counterpart of the telemetry probes one layer down. Constructors hand
// the runner a probe via SetProbe; a nil probe means observation is disabled
// and every call site nil-guards (the same opaque-slot pattern sslint's
// probeguard enforces for the telemetry and verify probes).
//
// The runner invokes all methods serially under its scheduler lock, in a
// deterministic order when the run itself is deterministic (capacity-1 pools
// fully serialize execution). Implementations must not call back into the
// runner and must treat map arguments as read-only.
type Probe interface {
	// RunStarted fires once before any task event, with the resource pool
	// capacities and the number of registered tasks.
	RunStarted(capacity map[string]int, tasks int)
	// TaskQueued fires for every registered task, in registration order,
	// with its resource demands.
	TaskQueued(task string, resources map[string]int)
	// TaskReady fires once when a task's dependencies have all resolved.
	TaskReady(task string)
	// TaskBlocked fires when a ready task cannot start because a resource is
	// exhausted — once per bottleneck transition, not per scheduler pass —
	// naming the first insufficient resource in sorted order.
	TaskBlocked(task, resource string, need, avail int)
	// TaskStarted fires when the task's action is launched.
	TaskStarted(task string)
	// TaskFinished fires exactly once per task that leaves the Pending or
	// Running state: Succeeded, Failed (with the action's error), Skipped
	// (condition said no) or Canceled (a dependency failed).
	TaskFinished(task string, state State, err error)
	// RunFinished fires once after the last task event of a completed run.
	RunFinished()
}

// Probes combines probes into one fan-out probe: nil entries are dropped, a
// single survivor is returned unwrapped, and no survivors yield nil — so the
// result plugs into SetProbe without re-checking.
func Probes(ps ...Probe) Probe {
	var list multiProbe
	for _, p := range ps {
		if p != nil {
			list = append(list, p)
		}
	}
	switch len(list) {
	case 0:
		return nil
	case 1:
		return list[0]
	}
	return list
}

type multiProbe []Probe

func (m multiProbe) RunStarted(capacity map[string]int, tasks int) {
	for _, p := range m {
		if p != nil {
			p.RunStarted(capacity, tasks)
		}
	}
}

func (m multiProbe) TaskQueued(task string, resources map[string]int) {
	for _, p := range m {
		if p != nil {
			p.TaskQueued(task, resources)
		}
	}
}

func (m multiProbe) TaskReady(task string) {
	for _, p := range m {
		if p != nil {
			p.TaskReady(task)
		}
	}
}

func (m multiProbe) TaskBlocked(task, resource string, need, avail int) {
	for _, p := range m {
		if p != nil {
			p.TaskBlocked(task, resource, need, avail)
		}
	}
}

func (m multiProbe) TaskStarted(task string) {
	for _, p := range m {
		if p != nil {
			p.TaskStarted(task)
		}
	}
}

func (m multiProbe) TaskFinished(task string, state State, err error) {
	for _, p := range m {
		if p != nil {
			p.TaskFinished(task, state, err)
		}
	}
}

func (m multiProbe) RunFinished() {
	for _, p := range m {
		if p != nil {
			p.RunFinished()
		}
	}
}

// JournalHeader is the first line of a task journal.
type JournalHeader struct {
	Schema   string         `json:"schema"`
	Version  int            `json:"version"`
	Start    string         `json:"start"` // journal epoch, RFC3339Nano (wall time under WallClock)
	Capacity map[string]int `json:"capacity,omitempty"`
	Tasks    int            `json:"tasks,omitempty"`
}

// JournalEvent is one task-lifecycle line of a task journal. Ev is one of
// queued, ready, blocked, started, finished, done; fields beyond T/Ev/Task
// are event-specific and zero values are omitted (a started event with
// wait_ms absent started the instant it became ready).
type JournalEvent struct {
	T    int64  `json:"t"` // milliseconds since JournalHeader.Start
	Ev   string `json:"ev"`
	Task string `json:"task,omitempty"`

	// queued
	Res map[string]int `json:"res,omitempty"`

	// blocked: the bottleneck resource, the task's demand and what was free.
	Resource string `json:"resource,omitempty"`
	Need     int    `json:"need,omitempty"`
	Avail    int    `json:"avail,omitempty"`

	// started: time from ready to started, and the tail of it spent blocked
	// on an exhausted resource.
	WaitMS    int64 `json:"wait_ms,omitempty"`
	BlockedMS int64 `json:"blocked_ms,omitempty"`

	// finished
	State string `json:"state,omitempty"`
	RunMS int64  `json:"run_ms,omitempty"`
	Err   string `json:"err,omitempty"`

	// done: final per-state counts and total wall time of the run.
	Succeeded int   `json:"succeeded,omitempty"`
	Failed    int   `json:"failed,omitempty"`
	Skipped   int   `json:"skipped,omitempty"`
	Canceled  int   `json:"canceled,omitempty"`
	WallMS    int64 `json:"wall_ms,omitempty"`
}

// journalTimes tracks one task's observed lifecycle timestamps so durations
// can be attributed without the runner passing clocks around.
type journalTimes struct {
	ready     time.Time
	blockedAt time.Time
	started   time.Time
	blocked   bool
	hasReady  bool
	hasStart  bool
}

// Journal is a Probe that streams task-lifecycle events as JSONL: a header
// line naming the schema, then one line per event, timestamped in
// milliseconds since the journal's start by an injectable Clock. Events are
// written as they happen, so the stream is live-tailable while a sweep runs.
//
// Write errors are sticky and reported by Err; the journal stays usable (and
// silent) after the first failure so a full disk cannot wedge a sweep.
type Journal struct {
	w      io.Writer
	clock  Clock
	enc    *json.Encoder
	start  time.Time
	opened bool
	err    error
	tasks  map[string]*journalTimes
	counts [Canceled + 1]int
}

// NewJournal creates a journal writing to w, stamping events with clock
// (nil means WallClock). The caller owns w and closes it after the run.
func NewJournal(w io.Writer, clock Clock) *Journal {
	if clock == nil {
		clock = WallClock()
	}
	return &Journal{w: w, clock: clock, enc: json.NewEncoder(w), tasks: map[string]*journalTimes{}}
}

// Err returns the first write error, if any.
func (j *Journal) Err() error { return j.err }

func (j *Journal) write(v any) {
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(v)
}

// ensureHeader opens the journal on first use. RunStarted supplies capacity
// and task count; drivers that emit task events without a runner (e.g. the
// experiments harness) get a header without them.
func (j *Journal) ensureHeader(capacity map[string]int, tasks int) {
	if j.opened {
		return
	}
	j.opened = true
	j.start = j.clock()
	j.write(JournalHeader{
		Schema:   JournalSchema,
		Version:  JournalSchemaVersion,
		Start:    j.start.UTC().Format(time.RFC3339Nano),
		Capacity: capacity,
		Tasks:    tasks,
	})
}

func (j *Journal) now() (time.Time, int64) {
	t := j.clock()
	return t, t.Sub(j.start).Milliseconds()
}

func (j *Journal) times(task string) *journalTimes {
	tt := j.tasks[task]
	if tt == nil {
		tt = &journalTimes{}
		j.tasks[task] = tt
	}
	return tt
}

// RunStarted implements Probe.
func (j *Journal) RunStarted(capacity map[string]int, tasks int) {
	j.ensureHeader(capacity, tasks)
}

// TaskQueued implements Probe.
func (j *Journal) TaskQueued(task string, resources map[string]int) {
	j.ensureHeader(nil, 0)
	_, ms := j.now()
	ev := JournalEvent{T: ms, Ev: "queued", Task: task}
	if len(resources) > 0 {
		ev.Res = resources
	}
	j.write(ev)
}

// TaskReady implements Probe.
func (j *Journal) TaskReady(task string) {
	j.ensureHeader(nil, 0)
	t, ms := j.now()
	tt := j.times(task)
	tt.ready, tt.hasReady = t, true
	j.write(JournalEvent{T: ms, Ev: "ready", Task: task})
}

// TaskBlocked implements Probe.
func (j *Journal) TaskBlocked(task, resource string, need, avail int) {
	j.ensureHeader(nil, 0)
	t, ms := j.now()
	tt := j.times(task)
	if !tt.blocked {
		tt.blocked, tt.blockedAt = true, t
	}
	j.write(JournalEvent{T: ms, Ev: "blocked", Task: task, Resource: resource, Need: need, Avail: avail})
}

// TaskStarted implements Probe.
func (j *Journal) TaskStarted(task string) {
	j.ensureHeader(nil, 0)
	t, ms := j.now()
	tt := j.times(task)
	tt.started, tt.hasStart = t, true
	ev := JournalEvent{T: ms, Ev: "started", Task: task}
	if tt.hasReady {
		ev.WaitMS = t.Sub(tt.ready).Milliseconds()
	}
	if tt.blocked {
		ev.BlockedMS = t.Sub(tt.blockedAt).Milliseconds()
		tt.blocked = false
	}
	j.write(ev)
}

// TaskFinished implements Probe.
func (j *Journal) TaskFinished(task string, state State, err error) {
	j.ensureHeader(nil, 0)
	t, ms := j.now()
	if state >= 0 && int(state) < len(j.counts) {
		j.counts[state]++
	}
	ev := JournalEvent{T: ms, Ev: "finished", Task: task, State: state.String()}
	if tt := j.tasks[task]; tt != nil && tt.hasStart {
		ev.RunMS = t.Sub(tt.started).Milliseconds()
	}
	if err != nil {
		ev.Err = err.Error()
	}
	j.write(ev)
}

// RunFinished implements Probe.
func (j *Journal) RunFinished() {
	j.ensureHeader(nil, 0)
	_, ms := j.now()
	j.write(JournalEvent{
		T: ms, Ev: "done",
		Succeeded: j.counts[Succeeded],
		Failed:    j.counts[Failed],
		Skipped:   j.counts[Skipped],
		Canceled:  j.counts[Canceled],
		WallMS:    ms,
	})
}

// ReadJournal parses a task journal: it validates the header line (schema
// name and version) and returns the header and every event. A stream written
// by an incompatible schema version is rejected up front.
func ReadJournal(r io.Reader) (JournalHeader, []JournalEvent, error) {
	dec := json.NewDecoder(r)
	var hdr JournalHeader
	if err := dec.Decode(&hdr); err != nil {
		return hdr, nil, fmt.Errorf("taskrun: reading journal header: %w", err)
	}
	if hdr.Schema != JournalSchema {
		return hdr, nil, fmt.Errorf("taskrun: not a task journal: schema %q, want %q", hdr.Schema, JournalSchema)
	}
	if hdr.Version != JournalSchemaVersion {
		return hdr, nil, fmt.Errorf("taskrun: incompatible journal schema version %d (this reader supports %d)",
			hdr.Version, JournalSchemaVersion)
	}
	var events []JournalEvent
	for {
		var ev JournalEvent
		if err := dec.Decode(&ev); err == io.EOF {
			return hdr, events, nil
		} else if err != nil {
			return hdr, events, fmt.Errorf("taskrun: reading journal event %d: %w", len(events)+1, err)
		}
		events = append(events, ev)
	}
}

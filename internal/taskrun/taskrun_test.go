package taskrun

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunsAllTasks(t *testing.T) {
	r := NewRunner(map[string]int{"cpu": 2})
	var count atomic.Int32
	for i := 0; i < 10; i++ {
		r.Task(strings.Repeat("x", i+1), func() error {
			count.Add(1)
			return nil
		}).Require("cpu", 1)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 10 {
		t.Fatalf("ran %d tasks", count.Load())
	}
	for _, task := range r.Tasks() {
		if task.State() != Succeeded {
			t.Fatalf("task %s state %v", task.Name(), task.State())
		}
	}
}

func TestDependencyOrder(t *testing.T) {
	r := NewRunner(map[string]int{"cpu": 4})
	var mu sync.Mutex
	var order []string
	rec := func(name string) func() error {
		return func() error {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return nil
		}
	}
	sim := r.Task("sim", rec("sim"))
	parse := r.Task("parse", rec("parse")).After(sim)
	analyze := r.Task("analyze", rec("analyze")).After(parse)
	r.Task("plot", rec("plot")).After(analyze)
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"sim", "parse", "analyze", "plot"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestDiamondDependency(t *testing.T) {
	r := NewRunner(nil)
	var mu sync.Mutex
	pos := map[string]int{}
	n := 0
	rec := func(name string) func() error {
		return func() error {
			mu.Lock()
			pos[name] = n
			n++
			mu.Unlock()
			return nil
		}
	}
	a := r.Task("a", rec("a"))
	b := r.Task("b", rec("b")).After(a)
	c := r.Task("c", rec("c")).After(a)
	r.Task("d", rec("d")).After(b, c)
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if pos["a"] != 0 || pos["d"] != 3 {
		t.Fatalf("diamond order wrong: %v", pos)
	}
}

func TestResourceLimitRespected(t *testing.T) {
	r := NewRunner(map[string]int{"cpu": 2})
	var cur, peak atomic.Int32
	for i := 0; i < 8; i++ {
		r.Task(string(rune('a'+i)), func() error {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			cur.Add(-1)
			return nil
		}).Require("cpu", 1)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if peak.Load() > 2 {
		t.Fatalf("peak concurrency %d exceeds cpu capacity 2", peak.Load())
	}
}

func TestHeavyTaskExcludesOthers(t *testing.T) {
	r := NewRunner(map[string]int{"mem": 4})
	var cur atomic.Int32
	check := func(weight int32) func() error {
		return func() error {
			if cur.Add(weight) > 4 {
				t.Error("memory oversubscribed")
			}
			time.Sleep(time.Millisecond)
			cur.Add(-weight)
			return nil
		}
	}
	r.Task("big", check(4)).Require("mem", 4)
	r.Task("small1", check(2)).Require("mem", 2)
	r.Task("small2", check(2)).Require("mem", 2)
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFailureCancelsDependents(t *testing.T) {
	r := NewRunner(nil)
	boom := errors.New("boom")
	a := r.Task("a", func() error { return boom })
	ran := false
	b := r.Task("b", func() error { ran = true; return nil }).After(a)
	indep := r.Task("indep", func() error { return nil })
	err := r.Run()
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap the cause", err)
	}
	if ran {
		t.Fatal("dependent ran after failure")
	}
	if a.State() != Failed || b.State() != Canceled || indep.State() != Succeeded {
		t.Fatalf("states: a=%v b=%v indep=%v", a.State(), b.State(), indep.State())
	}
	if !strings.Contains(err.Error(), `"b" canceled`) {
		t.Fatalf("error should mention cancellation: %v", err)
	}
}

func TestConditionalSkipIsSuccessLike(t *testing.T) {
	r := NewRunner(nil)
	a := r.Task("cached", func() error {
		t.Error("skipped task ran")
		return nil
	}).OnlyIf(func() bool { return false })
	ran := false
	b := r.Task("dependent", func() error { ran = true; return nil }).After(a)
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if a.State() != Skipped {
		t.Fatalf("a state %v", a.State())
	}
	if !ran || b.State() != Succeeded {
		t.Fatal("dependent of a skipped task must still run")
	}
}

func TestConditionalRunWhenTrue(t *testing.T) {
	r := NewRunner(nil)
	ran := false
	r.Task("t", func() error { ran = true; return nil }).OnlyIf(func() bool { return true })
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("condition true but task skipped")
	}
}

func TestCycleDetected(t *testing.T) {
	r := NewRunner(nil)
	a := r.Task("a", func() error { return nil })
	b := r.Task("b", func() error { return nil }).After(a)
	a.After(b)
	err := r.Run()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("expected cycle error, got %v", err)
	}
}

func TestUnknownResourceRejected(t *testing.T) {
	r := NewRunner(map[string]int{"cpu": 1})
	r.Task("t", func() error { return nil }).Require("gpu", 1)
	if err := r.Run(); err == nil || !strings.Contains(err.Error(), "gpu") {
		t.Fatalf("expected unknown resource error, got %v", err)
	}
}

func TestOversizedDemandRejected(t *testing.T) {
	r := NewRunner(map[string]int{"cpu": 1})
	r.Task("t", func() error { return nil }).Require("cpu", 2)
	if err := r.Run(); err == nil {
		t.Fatal("expected capacity error")
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	r := NewRunner(nil)
	r.Task("x", func() error { return nil })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Task("x", func() error { return nil })
}

func TestInvalidArgsPanic(t *testing.T) {
	for _, fn := range []func(){
		func() { NewRunner(map[string]int{"cpu": 0}) },
		func() { NewRunner(nil).Task("x", nil) },
		func() { NewRunner(nil).Task("x", func() error { return nil }).Require("cpu", 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestEmptyRunner(t *testing.T) {
	if err := NewRunner(nil).Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLargeFanOutChain(t *testing.T) {
	// 100 independent sims feeding one analysis feeding one plot.
	r := NewRunner(map[string]int{"cpu": 3})
	var done atomic.Int32
	var sims []*Task
	for i := 0; i < 100; i++ {
		sims = append(sims, r.Task(
			"sim"+string(rune('0'+i/10))+string(rune('0'+i%10)),
			func() error { done.Add(1); return nil }).Require("cpu", 1))
	}
	analysis := r.Task("analysis", func() error {
		if done.Load() != 100 {
			t.Error("analysis before all sims")
		}
		return nil
	}).After(sims...)
	r.Task("plot", func() error { return nil }).After(analysis)
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		Pending: "pending", Running: "running", Succeeded: "succeeded",
		Failed: "failed", Skipped: "skipped", Canceled: "canceled",
		State(99): "state(99)",
	} {
		if s.String() != want {
			t.Fatalf("State(%d).String() = %q", s, s.String())
		}
	}
}

package congestion

import (
	"supersim/internal/config"
	"supersim/internal/factory"
	"supersim/internal/sim"
)

// Granularity selects how congestion is accounted across virtual channels.
type Granularity int

const (
	// PerVC reports each (port, VC) pair independently.
	PerVC Granularity = iota
	// PerPort aggregates all VCs of a port; every VC of the port reports the
	// same value.
	PerPort
)

// Source selects which credit pools feed the congestion estimate.
type Source int

const (
	// SourceOutput counts flits resident in the router's own output queues.
	SourceOutput Source = iota
	// SourceDownstream counts credits consumed at the next-hop input buffer.
	SourceDownstream
	// SourceBoth combines output occupancy and downstream credit usage.
	SourceBoth
)

// Sensor yields a congestion value for potential paths considered by a
// routing algorithm. Values are raw flit counts (higher = more congested);
// adaptive algorithms only compare them, so no normalization is applied.
type Sensor interface {
	// Congestion returns the estimate visible at time now for output (port, vc).
	Congestion(now sim.Tick, port, vc int) float64
}

// Tracker is the update side fed by the router as its credit state changes.
type Tracker interface {
	Sensor
	// AddOutput adjusts the output queue occupancy of (port, vc) by delta flits.
	AddOutput(now sim.Tick, port, vc, delta int)
	// AddDownstream adjusts the downstream credits-in-use of (port, vc) by delta.
	AddDownstream(now sim.Tick, port, vc, delta int)
}

// Ctor is the constructor signature registered by sensor implementations.
type Ctor func(cfg *config.Settings, ports, vcs int) Tracker

// Registry holds all congestion sensor implementations.
var Registry = factory.NewRegistry[Ctor]("congestion sensor")

// New builds the sensor named by cfg's "type" setting (default "credit").
func New(cfg *config.Settings, ports, vcs int) Tracker {
	typ := cfg.StringOr("type", "credit")
	return Registry.MustLookup(typ)(cfg, ports, vcs)
}

func init() {
	Registry.Register("credit", func(cfg *config.Settings, ports, vcs int) Tracker {
		var gran Granularity
		switch g := cfg.StringOr("granularity", "vc"); g {
		case "vc":
			gran = PerVC
		case "port":
			gran = PerPort
		default:
			panic("congestion: unknown granularity " + g)
		}
		var src Source
		switch s := cfg.StringOr("source", "both"); s {
		case "output":
			src = SourceOutput
		case "downstream":
			src = SourceDownstream
		case "both":
			src = SourceBoth
		default:
			panic("congestion: unknown source " + s)
		}
		return NewCreditSensor(ports, vcs, gran, src, sim.Tick(cfg.UIntOr("latency", 0)))
	})
	Registry.Register("null", func(cfg *config.Settings, ports, vcs int) Tracker {
		return NullSensor{}
	})
}

// CreditSensor is the supplied credit-accounting congestion sensor. It
// supports per-VC or per-port granularity, output / downstream / combined
// credit sources, and a configurable propagation (sensing) latency.
type CreditSensor struct {
	gran    Granularity
	src     Source
	latency sim.Tick
	ports   int
	vcs     int

	outputOcc []int // [port*vcs+vc] flits in output queue
	downUsed  []int // [port*vcs+vc] downstream credits in use

	vcVals   []*DelayedValue // per (port, vc)
	portVals []*DelayedValue // per port
}

// NewCreditSensor creates a credit sensor for a router with the given port
// and VC counts.
func NewCreditSensor(ports, vcs int, gran Granularity, src Source, latency sim.Tick) *CreditSensor {
	if ports <= 0 || vcs <= 0 {
		panic("congestion: ports and vcs must be positive")
	}
	cs := &CreditSensor{
		gran: gran, src: src, latency: latency,
		ports: ports, vcs: vcs,
		outputOcc: make([]int, ports*vcs),
		downUsed:  make([]int, ports*vcs),
		vcVals:    make([]*DelayedValue, ports*vcs),
		portVals:  make([]*DelayedValue, ports),
	}
	for i := range cs.vcVals {
		cs.vcVals[i] = NewDelayedValue(latency, 0)
	}
	for i := range cs.portVals {
		cs.portVals[i] = NewDelayedValue(latency, 0)
	}
	return cs
}

// Latency returns the configured sensing latency in ticks.
func (cs *CreditSensor) Latency() sim.Tick { return cs.latency }

func (cs *CreditSensor) idx(port, vc int) int {
	if port < 0 || port >= cs.ports || vc < 0 || vc >= cs.vcs {
		panic("congestion: port/vc out of range")
	}
	return port*cs.vcs + vc
}

func (cs *CreditSensor) score(i int) float64 {
	switch cs.src {
	case SourceOutput:
		return float64(cs.outputOcc[i])
	case SourceDownstream:
		return float64(cs.downUsed[i])
	default:
		return float64(cs.outputOcc[i] + cs.downUsed[i])
	}
}

func (cs *CreditSensor) update(now sim.Tick, port, vc int) {
	i := cs.idx(port, vc)
	cs.vcVals[i].Set(now, cs.score(i))
	total := 0.0
	for v := 0; v < cs.vcs; v++ {
		total += cs.score(port*cs.vcs + v)
	}
	cs.portVals[port].Set(now, total)
}

// AddOutput adjusts output queue occupancy; negative counts panic (credits
// never go negative, buffers never underrun).
func (cs *CreditSensor) AddOutput(now sim.Tick, port, vc, delta int) {
	i := cs.idx(port, vc)
	cs.outputOcc[i] += delta
	if cs.outputOcc[i] < 0 {
		panic("congestion: output occupancy went negative")
	}
	cs.update(now, port, vc)
}

// AddDownstream adjusts downstream credits-in-use; negative counts panic.
func (cs *CreditSensor) AddDownstream(now sim.Tick, port, vc, delta int) {
	i := cs.idx(port, vc)
	cs.downUsed[i] += delta
	if cs.downUsed[i] < 0 {
		panic("congestion: downstream usage went negative")
	}
	cs.update(now, port, vc)
}

// Congestion returns the delayed estimate for (port, vc) under the
// configured granularity.
func (cs *CreditSensor) Congestion(now sim.Tick, port, vc int) float64 {
	if cs.gran == PerPort {
		if port < 0 || port >= cs.ports {
			panic("congestion: port out of range")
		}
		return cs.portVals[port].Get(now)
	}
	return cs.vcVals[cs.idx(port, vc)].Get(now)
}

// NullSensor reports zero congestion everywhere; oblivious routing uses it.
type NullSensor struct{}

// Congestion always returns 0.
func (NullSensor) Congestion(now sim.Tick, port, vc int) float64 { return 0 }

// AddOutput is a no-op.
func (NullSensor) AddOutput(now sim.Tick, port, vc, delta int) {}

// AddDownstream is a no-op.
func (NullSensor) AddDownstream(now sim.Tick, port, vc, delta int) {}

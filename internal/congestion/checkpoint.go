package congestion

import (
	"supersim/internal/sim"
	"supersim/internal/snapshot"
)

// SaveTracker serializes a congestion tracker's mutable state, dispatching
// on the concrete type. Trackers registered by other packages must implement
// snapshot.Stater to be checkpointable.
func SaveTracker(e *snapshot.Encoder, t Tracker) {
	switch v := t.(type) {
	case *CreditSensor:
		e.Str("credit")
		v.SaveState(e)
	case NullSensor:
		e.Str("null")
	case snapshot.Stater:
		e.Str("custom")
		v.SaveState(e)
	default:
		panic("congestion: tracker type is not checkpointable")
	}
}

// LoadTracker restores state written by SaveTracker onto a freshly built
// tracker of the same configuration.
func LoadTracker(d *snapshot.Decoder, t Tracker) error {
	kind := d.Str()
	if d.Err() != nil {
		return d.Err()
	}
	switch v := t.(type) {
	case *CreditSensor:
		if kind != "credit" {
			return d.Failf("congestion sensor is %q in snapshot, credit in rebuilt router", kind)
		}
		return v.LoadState(d)
	case NullSensor:
		if kind != "null" {
			return d.Failf("congestion sensor is %q in snapshot, null in rebuilt router", kind)
		}
		return nil
	case snapshot.Stater:
		if kind != "custom" {
			return d.Failf("congestion sensor is %q in snapshot, custom in rebuilt router", kind)
		}
		return v.LoadState(d)
	default:
		return d.Failf("rebuilt congestion tracker type is not checkpointable")
	}
}

// SaveState serializes the credit sensor: raw occupancy counters and the
// delayed-visibility histories the routing engines read.
func (cs *CreditSensor) SaveState(e *snapshot.Encoder) {
	e.Int(len(cs.outputOcc))
	for i := range cs.outputOcc {
		e.Int(cs.outputOcc[i])
		e.Int(cs.downUsed[i])
	}
	for _, v := range cs.vcVals {
		v.saveState(e)
	}
	for _, v := range cs.portVals {
		v.saveState(e)
	}
}

// LoadState restores the counterpart of SaveState.
func (cs *CreditSensor) LoadState(d *snapshot.Decoder) error {
	n := d.Count()
	if d.Err() != nil {
		return d.Err()
	}
	if n != len(cs.outputOcc) {
		return d.Failf("credit sensor has %d slots, snapshot says %d", len(cs.outputOcc), n)
	}
	for i := 0; i < n; i++ {
		cs.outputOcc[i] = d.Int()
		cs.downUsed[i] = d.Int()
	}
	for _, v := range cs.vcVals {
		if err := v.loadState(d); err != nil {
			return err
		}
	}
	for _, v := range cs.portVals {
		if err := v.loadState(d); err != nil {
			return err
		}
	}
	return d.Err()
}

func (dv *DelayedValue) saveState(e *snapshot.Encoder) {
	e.Int(len(dv.hist))
	for _, en := range dv.hist {
		e.U64(uint64(en.t))
		e.F64(en.v)
	}
}

func (dv *DelayedValue) loadState(d *snapshot.Decoder) error {
	n := d.Count()
	if d.Err() != nil {
		return d.Err()
	}
	if n == 0 {
		return d.Failf("delayed value with empty history")
	}
	dv.hist = dv.hist[:0]
	for i := 0; i < n; i++ {
		t := sim.Tick(d.U64())
		v := d.F64()
		dv.hist = append(dv.hist, entry{t: t, v: v})
	}
	return d.Err()
}

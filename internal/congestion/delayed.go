// Package congestion implements the congestion sensor components that feed
// adaptive routing algorithms.
//
// A sensor converts the router's live credit/occupancy state into the
// congestion estimates the routing engines consult. Two properties from the
// paper's case studies are modeled explicitly:
//
//   - Sensing latency (case study A): the propagation of congestion
//     information from the point of calculation inside the microarchitecture
//     to all the routing engines takes 5-20 clock cycles in real switches,
//     not the single cycle most simulators assume. The sensor exposes a
//     delayed view: the value visible at time t is the value that was
//     current at time t - latency.
//
//   - Credit accounting style (case study B): congestion may be accounted
//     per-VC or per-port, and may consider output queue occupancy, downstream
//     (next hop) credits, or both.
package congestion

import "supersim/internal/sim"

// DelayedValue is a scalar whose readers see writes only after a fixed
// delay: Get(now) returns the value that was current at time now - delay.
// Writes and reads must use nondecreasing times (simulation time).
type DelayedValue struct {
	delay sim.Tick
	hist  []entry
}

type entry struct {
	t sim.Tick
	v float64
}

// NewDelayedValue creates a value with the given visibility delay and
// initial content.
func NewDelayedValue(delay sim.Tick, initial float64) *DelayedValue {
	return &DelayedValue{delay: delay, hist: []entry{{0, initial}}}
}

// Set records a new value at the given time.
func (d *DelayedValue) Set(now sim.Tick, v float64) {
	n := len(d.hist)
	if n > 0 && d.hist[n-1].t > now {
		panic("congestion: DelayedValue.Set time went backwards")
	}
	if n > 0 && d.hist[n-1].t == now {
		d.hist[n-1].v = v
	} else {
		d.hist = append(d.hist, entry{now, v})
	}
	d.prune(now)
}

// Get returns the value visible at the given time: the most recent write at
// or before now - delay.
func (d *DelayedValue) Get(now sim.Tick) float64 {
	horizon := sim.Tick(0)
	if now >= d.delay {
		horizon = now - d.delay
	}
	// Scan from the end: histories are short because Set prunes.
	for i := len(d.hist) - 1; i >= 0; i-- {
		if d.hist[i].t <= horizon {
			return d.hist[i].v
		}
	}
	return d.hist[0].v
}

// Raw returns the most recently written value, ignoring the delay.
func (d *DelayedValue) Raw() float64 { return d.hist[len(d.hist)-1].v }

// prune drops history entries that can never be read again: everything
// strictly older than the newest entry at or before now - delay.
func (d *DelayedValue) prune(now sim.Tick) {
	horizon := sim.Tick(0)
	if now >= d.delay {
		horizon = now - d.delay
	}
	cut := 0
	for i := 1; i < len(d.hist); i++ {
		if d.hist[i].t <= horizon {
			cut = i
		} else {
			break
		}
	}
	if cut > 0 {
		// Compact in place rather than re-slicing from the front: slicing
		// would shed the dropped capacity and force the next append to
		// reallocate, which made Set the simulator's hottest allocation site.
		d.hist = d.hist[:copy(d.hist, d.hist[cut:])]
	}
}

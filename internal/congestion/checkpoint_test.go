package congestion

import (
	"bytes"
	"strings"
	"testing"

	"supersim/internal/snapshot"
)

// populatedSensor builds a 2-port, 2-VC credit sensor with a few updates
// applied so every serialized slice carries nonzero state.
func populatedSensor() *CreditSensor {
	cs := NewCreditSensor(2, 2, PerVC, SourceOutput, 4)
	cs.AddOutput(10, 0, 1, 3)
	cs.AddDownstream(10, 0, 1, 2)
	cs.AddOutput(12, 1, 0, 1)
	return cs
}

func saveTracker(tr Tracker) []byte {
	e := snapshot.NewEncoder()
	SaveTracker(e, tr)
	return e.Bytes()
}

func TestCreditSensorStateRoundTrip(t *testing.T) {
	cs := populatedSensor()
	data := saveTracker(cs)

	got := NewCreditSensor(2, 2, PerVC, SourceOutput, 4)
	d := snapshot.NewDecoder(data)
	if err := LoadTracker(d, got); err != nil {
		t.Fatal(err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left after load", d.Remaining())
	}
	if got.outputOcc[cs.idx(0, 1)] != 3 || got.downUsed[cs.idx(0, 1)] != 2 {
		t.Fatalf("restored occupancy %v / %v", got.outputOcc, got.downUsed)
	}
	// Delayed visibility must survive: the write at tick 10 is visible at
	// 14 on both sides.
	if got.Congestion(14, 0, 1) != cs.Congestion(14, 0, 1) {
		t.Fatalf("congestion after restore %v, want %v", got.Congestion(14, 0, 1), cs.Congestion(14, 0, 1))
	}
	if !bytes.Equal(saveTracker(got), data) {
		t.Fatal("re-saved sensor state is not byte-identical")
	}
}

func TestNullSensorRoundTrip(t *testing.T) {
	data := saveTracker(NullSensor{})
	d := snapshot.NewDecoder(data)
	if err := LoadTracker(d, NullSensor{}); err != nil {
		t.Fatal(err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left after load", d.Remaining())
	}
}

// customTracker exercises the snapshot.Stater dispatch arm.
type customTracker struct {
	NullSensor
	v uint64
}

func (c *customTracker) SaveState(e *snapshot.Encoder)       { e.U64(c.v) }
func (c *customTracker) LoadState(d *snapshot.Decoder) error { c.v = d.U64(); return d.Err() }

func TestCustomTrackerRoundTrip(t *testing.T) {
	data := saveTracker(&customTracker{v: 42})
	got := &customTracker{}
	if err := LoadTracker(snapshot.NewDecoder(data), got); err != nil {
		t.Fatal(err)
	}
	if got.v != 42 {
		t.Fatalf("custom tracker v = %d, want 42", got.v)
	}
}

// bareTracker implements Tracker but not snapshot.Stater.
type bareTracker struct{ Tracker }

func TestTrackerDispatchErrors(t *testing.T) {
	credit := saveTracker(populatedSensor())
	null := saveTracker(NullSensor{})
	custom := saveTracker(&customTracker{v: 1})

	cases := []struct {
		name string
		data []byte
		into Tracker
		want string
	}{
		{"credit into null", credit, NullSensor{}, `"credit" in snapshot, null`},
		{"null into credit", null, NewCreditSensor(2, 2, PerVC, SourceOutput, 4), `"null" in snapshot, credit`},
		{"credit into custom", credit, &customTracker{}, `"credit" in snapshot, custom`},
		{"custom into bare", custom, bareTracker{}, "not checkpointable"},
	}
	for _, c := range cases {
		if err := LoadTracker(snapshot.NewDecoder(c.data), c.into); err == nil ||
			!strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want %q", c.name, err, c.want)
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("SaveTracker accepted a non-checkpointable tracker")
		}
	}()
	SaveTracker(snapshot.NewEncoder(), bareTracker{})
}

func TestCreditSensorLoadRejectsCorruption(t *testing.T) {
	// Slot-count mismatch: a wider sensor's snapshot into a narrower build.
	wide := saveTracker(NewCreditSensor(4, 2, PerVC, SourceOutput, 4))
	if err := LoadTracker(snapshot.NewDecoder(wide),
		NewCreditSensor(2, 2, PerVC, SourceOutput, 4)); err == nil ||
		!strings.Contains(err.Error(), "slots") {
		t.Fatalf("slot mismatch: err = %v", err)
	}

	// A delayed value with no history entries is structurally invalid.
	e := snapshot.NewEncoder()
	e.Str("credit")
	e.Int(1) // one slot
	e.Int(0)
	e.Int(0)
	e.Int(0) // vcVals[0]: empty history
	if err := LoadTracker(snapshot.NewDecoder(e.Bytes()),
		NewCreditSensor(1, 1, PerVC, SourceOutput, 4)); err == nil ||
		!strings.Contains(err.Error(), "empty history") {
		t.Fatalf("empty history: err = %v", err)
	}

	data := saveTracker(populatedSensor())
	for _, n := range []int{0, 1, len(data) / 2, len(data) - 1} {
		got := NewCreditSensor(2, 2, PerVC, SourceOutput, 4)
		if err := LoadTracker(snapshot.NewDecoder(data[:n]), got); err == nil {
			t.Fatalf("truncation to %d bytes loaded without error", n)
		}
	}
}

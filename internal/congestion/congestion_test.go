package congestion

import (
	"testing"
	"testing/quick"

	"supersim/internal/config"
	"supersim/internal/sim"
)

func TestDelayedValueZeroDelay(t *testing.T) {
	d := NewDelayedValue(0, 1.0)
	if d.Get(9) != 1.0 {
		t.Fatalf("Get(9) = %v, want initial", d.Get(9))
	}
	d.Set(10, 5.0)
	if d.Get(10) != 5.0 {
		t.Fatalf("Get(10) = %v", d.Get(10))
	}
}

func TestDelayedValueVisibility(t *testing.T) {
	d := NewDelayedValue(8, 0)
	d.Set(100, 3)
	// value written at 100 becomes visible at 108
	cases := []struct {
		now  sim.Tick
		want float64
	}{{100, 0}, {107, 0}, {108, 3}, {200, 3}}
	for _, c := range cases {
		if got := d.Get(c.now); got != c.want {
			t.Errorf("Get(%d) = %v, want %v", c.now, got, c.want)
		}
	}
}

func TestDelayedValueSequence(t *testing.T) {
	// Reads and writes interleaved in nondecreasing time order, as in a
	// simulation.
	d := NewDelayedValue(10, 0)
	d.Set(100, 1)
	d.Set(105, 2)
	if got := d.Get(109); got != 0 { // horizon 99: nothing visible yet
		t.Errorf("Get(109) = %v, want 0", got)
	}
	d.Set(110, 3)
	cases := []struct {
		now  sim.Tick
		want float64
	}{
		{110, 1},  // horizon 100
		{114, 1},  // horizon 104
		{115, 2},  // horizon 105
		{120, 3},  // horizon 110
		{1000, 3}, // far future
	}
	for _, c := range cases {
		if got := d.Get(c.now); got != c.want {
			t.Errorf("Get(%d) = %v, want %v", c.now, got, c.want)
		}
	}
	if d.Raw() != 3 {
		t.Fatalf("Raw = %v", d.Raw())
	}
}

func TestDelayedValueSameTickOverwrite(t *testing.T) {
	d := NewDelayedValue(5, 0)
	d.Set(50, 1)
	d.Set(50, 2)
	if got := d.Get(55); got != 2 {
		t.Fatalf("Get(55) = %v, want last same-tick write", got)
	}
}

func TestDelayedValueBackwardsPanics(t *testing.T) {
	d := NewDelayedValue(5, 0)
	d.Set(50, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Set(49, 2)
}

func TestDelayedValuePruneKeepsSemantics(t *testing.T) {
	d := NewDelayedValue(4, 0)
	for i := sim.Tick(1); i <= 1000; i++ {
		d.Set(i, float64(i))
	}
	if len(d.hist) > 8 {
		t.Fatalf("history grew to %d entries despite pruning", len(d.hist))
	}
	if got := d.Get(1000); got != 996 {
		t.Fatalf("Get(1000) = %v, want 996", got)
	}
	if got := d.Get(1004); got != 1000 {
		t.Fatalf("Get(1004) = %v, want 1000", got)
	}
}

// Property: with monotone writes, Get(now) returns the last value written at
// or before now-delay.
func TestDelayedValueProperty(t *testing.T) {
	prop := func(delay8 uint8, deltas [12]uint8, probe uint8) bool {
		delay := sim.Tick(delay8 % 20)
		d := NewDelayedValue(delay, -1)
		type w struct {
			t sim.Tick
			v float64
		}
		writes := []w{{0, -1}}
		now := sim.Tick(0)
		for i, dt := range deltas {
			now += sim.Tick(dt%7) + 1
			d.Set(now, float64(i))
			writes = append(writes, w{now, float64(i)})
		}
		q := now + sim.Tick(probe%30)
		want := -1.0
		horizon := sim.Tick(0)
		if q >= delay {
			horizon = q - delay
		}
		for _, wr := range writes {
			if wr.t <= horizon {
				want = wr.v
			}
		}
		return d.Get(q) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCreditSensorPerVCOutput(t *testing.T) {
	cs := NewCreditSensor(4, 2, PerVC, SourceOutput, 0)
	cs.AddOutput(10, 1, 0, 5)
	cs.AddOutput(10, 1, 1, 3)
	if got := cs.Congestion(10, 1, 0); got != 5 {
		t.Fatalf("vc0 = %v", got)
	}
	if got := cs.Congestion(10, 1, 1); got != 3 {
		t.Fatalf("vc1 = %v", got)
	}
	if got := cs.Congestion(10, 0, 0); got != 0 {
		t.Fatalf("other port = %v", got)
	}
	// downstream updates must not affect the output-only source
	cs.AddDownstream(11, 1, 0, 7)
	if got := cs.Congestion(11, 1, 0); got != 5 {
		t.Fatalf("output-only source saw downstream: %v", got)
	}
}

func TestCreditSensorPerPortAggregates(t *testing.T) {
	cs := NewCreditSensor(2, 4, PerPort, SourceOutput, 0)
	cs.AddOutput(5, 0, 0, 2)
	cs.AddOutput(5, 0, 3, 8)
	for vc := 0; vc < 4; vc++ {
		if got := cs.Congestion(5, 0, vc); got != 10 {
			t.Fatalf("port value on vc %d = %v, want 10", vc, got)
		}
	}
}

func TestCreditSensorSources(t *testing.T) {
	mk := func(src Source) *CreditSensor {
		cs := NewCreditSensor(1, 1, PerVC, src, 0)
		cs.AddOutput(1, 0, 0, 4)
		cs.AddDownstream(2, 0, 0, 6)
		return cs
	}
	if got := mk(SourceOutput).Congestion(3, 0, 0); got != 4 {
		t.Fatalf("output = %v", got)
	}
	if got := mk(SourceDownstream).Congestion(3, 0, 0); got != 6 {
		t.Fatalf("downstream = %v", got)
	}
	if got := mk(SourceBoth).Congestion(3, 0, 0); got != 10 {
		t.Fatalf("both = %v", got)
	}
}

func TestCreditSensorLatency(t *testing.T) {
	cs := NewCreditSensor(1, 1, PerVC, SourceOutput, 16)
	cs.AddOutput(100, 0, 0, 50)
	if got := cs.Congestion(100, 0, 0); got != 0 {
		t.Fatalf("visible immediately: %v", got)
	}
	if got := cs.Congestion(115, 0, 0); got != 0 {
		t.Fatalf("visible at 115: %v", got)
	}
	if got := cs.Congestion(116, 0, 0); got != 50 {
		t.Fatalf("not visible at 116: %v", got)
	}
	if cs.Latency() != 16 {
		t.Fatal("Latency accessor")
	}
}

func TestCreditSensorNegativePanics(t *testing.T) {
	cs := NewCreditSensor(1, 1, PerVC, SourceBoth, 0)
	cs.AddOutput(1, 0, 0, 1)
	mustPanic(t, func() { cs.AddOutput(2, 0, 0, -2) })
	cs2 := NewCreditSensor(1, 1, PerVC, SourceBoth, 0)
	mustPanic(t, func() { cs2.AddDownstream(1, 0, 0, -1) })
}

func TestCreditSensorRangeChecks(t *testing.T) {
	cs := NewCreditSensor(2, 2, PerVC, SourceBoth, 0)
	mustPanic(t, func() { cs.AddOutput(1, 2, 0, 1) })
	mustPanic(t, func() { cs.AddOutput(1, 0, 2, 1) })
	mustPanic(t, func() { cs.Congestion(1, -1, 0) })
	csp := NewCreditSensor(2, 2, PerPort, SourceBoth, 0)
	mustPanic(t, func() { csp.Congestion(1, 5, 0) })
	mustPanic(t, func() { NewCreditSensor(0, 1, PerVC, SourceBoth, 0) })
}

func TestSensorFactoryStyles(t *testing.T) {
	// All six credit accounting styles from case study B must build.
	for _, gran := range []string{"vc", "port"} {
		for _, src := range []string{"output", "downstream", "both"} {
			cfg := config.MustParse(`{
			  "type": "credit",
			  "granularity": "` + gran + `",
			  "source": "` + src + `",
			  "latency": 2
			}`)
			tr := New(cfg, 4, 2)
			tr.AddOutput(1, 0, 0, 1)
			_ = tr.Congestion(5, 0, 0)
		}
	}
}

func TestSensorFactoryNull(t *testing.T) {
	tr := New(config.MustParse(`{"type": "null"}`), 4, 2)
	tr.AddOutput(1, 0, 0, 100)
	tr.AddDownstream(1, 0, 0, 100)
	if tr.Congestion(100, 0, 0) != 0 {
		t.Fatal("null sensor must report zero")
	}
}

func TestSensorFactoryDefaults(t *testing.T) {
	// Empty config: credit sensor, vc granularity, both sources, no latency.
	tr := New(config.MustParse(`{}`), 2, 2)
	tr.AddOutput(1, 0, 0, 3)
	if got := tr.Congestion(1, 0, 0); got != 3 {
		t.Fatalf("default sensor = %v", got)
	}
}

func TestSensorFactoryBadValues(t *testing.T) {
	mustPanic(t, func() { New(config.MustParse(`{"granularity": "bogus"}`), 1, 1) })
	mustPanic(t, func() { New(config.MustParse(`{"source": "bogus"}`), 1, 1) })
	mustPanic(t, func() { New(config.MustParse(`{"type": "bogus"}`), 1, 1) })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

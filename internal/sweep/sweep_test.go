package sweep

import (
	"strings"
	"testing"

	"supersim/internal/config"
)

const sweepBase = `{
  "simulation": {"seed": 7},
  "network": {
    "topology": "torus",
    "dimensions": [4],
    "concentration": 1,
    "channel": {"latency": 4, "period": 2},
    "injection": {"latency": 2},
    "router": {
      "architecture": "input_queued",
      "num_vcs": 2,
      "input_buffer_depth": 8,
      "crossbar_latency": 2
    }
  },
  "workload": {
    "applications": [{
      "type": "blast",
      "injection_rate": 0.2,
      "message_size": 1,
      "warmup_duration": 300,
      "sample_duration": 1000,
      "traffic": {"type": "uniform_random"}
    }]
  }
}`

func TestSweepCrossProduct(t *testing.T) {
	s := New(config.MustParse(sweepBase), 2)
	s.AddVariable(Variable{
		Name: "ChannelLatency", Short: "CL", Values: []any{4, 8},
		Apply: func(cfg *config.Settings, v any) {
			cfg.Set("network.channel.latency", v.(int))
		},
	})
	s.AddVariable(Variable{
		Name: "InjectionRate", Short: "IR", Values: []any{0.1, 0.3},
		Apply: func(cfg *config.Settings, v any) {
			cfg.Set("workload.applications", []any{map[string]any{
				"type": "blast", "injection_rate": v.(float64), "message_size": 1,
				"warmup_duration": 300, "sample_duration": 1000,
				"traffic": map[string]any{"type": "uniform_random"},
			}})
		},
	})
	if s.Permutations() != 4 {
		t.Fatalf("Permutations = %d", s.Permutations())
	}
	points, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points", len(points))
	}
	ids := map[string]bool{}
	for _, p := range points {
		ids[p.ID] = true
		if p.Err != nil {
			t.Fatalf("point %s failed: %v", p.ID, p.Err)
		}
		if p.Summary.Count == 0 {
			t.Fatalf("point %s has no samples", p.ID)
		}
		if p.Accepted <= 0 {
			t.Fatalf("point %s accepted %v", p.ID, p.Accepted)
		}
	}
	for _, want := range []string{"CL=4_IR=0.1", "CL=4_IR=0.3", "CL=8_IR=0.1", "CL=8_IR=0.3"} {
		if !ids[want] {
			t.Fatalf("missing permutation %s in %v", want, ids)
		}
	}
}

func TestSweepLatencyRisesWithChannelLatency(t *testing.T) {
	s := New(config.MustParse(sweepBase), 1)
	s.AddVariable(Variable{
		Name: "ChannelLatency", Short: "CL", Values: []any{2, 20},
		Apply: func(cfg *config.Settings, v any) {
			cfg.Set("network.channel.latency", v.(int))
		},
	})
	points, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	var lo, hi float64
	for _, p := range points {
		if p.Values["ChannelLatency"] == 2 {
			lo = p.Summary.Mean
		} else {
			hi = p.Summary.Mean
		}
	}
	if hi <= lo {
		t.Fatalf("mean latency with 20-tick channels (%v) should exceed 2-tick (%v)", hi, lo)
	}
}

func TestSweepNoVariables(t *testing.T) {
	s := New(config.MustParse(sweepBase), 1)
	points, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 || points[0].ID != "base" {
		t.Fatalf("points = %+v", points)
	}
}

func TestSweepBuildFailureReported(t *testing.T) {
	s := New(config.MustParse(sweepBase), 1)
	s.AddVariable(Variable{
		Name: "Arch", Short: "A", Values: []any{"input_queued", "bogus_arch"},
		Apply: func(cfg *config.Settings, v any) {
			cfg.Set("network.router.architecture", v.(string))
		},
	})
	points, err := s.Run()
	if err == nil {
		t.Fatal("expected aggregate error")
	}
	if !strings.Contains(err.Error(), "bogus_arch") {
		t.Fatalf("error should name the bad architecture: %v", err)
	}
	good := 0
	for _, p := range points {
		if p.Err == nil {
			good++
		}
	}
	if good != 1 {
		t.Fatalf("the valid permutation should still succeed (%d good)", good)
	}
}

func TestSweepInvalidVariablePanics(t *testing.T) {
	s := New(config.MustParse(sweepBase), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.AddVariable(Variable{Name: "x"})
}

package sweep

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"supersim/internal/taskrun"
	"supersim/internal/telemetry"
)

// Monitor is a taskrun.Probe that aggregates a sweep's task lifecycle into
// fleet-level metrics and serves them live: a /sweep JSON progress document
// (counts, per-resource utilization, progress and ETA) and a Prometheus
// /metrics exposition of the sweep_* series, on the same HTTP machinery the
// per-run telemetry server uses. Attach it to a sweep with SetProbe —
// typically combined with a Journal via taskrun.Probes.
//
// Probe callbacks run under the runner's scheduler lock; the HTTP handlers
// scrape concurrently, so the monitor's own state is mutex-guarded and the
// registry values are atomics.
type Monitor struct {
	clock taskrun.Clock
	reg   *telemetry.Registry

	mu        sync.Mutex
	start     time.Time
	started   bool
	total     int
	running   int
	finished  map[taskrun.State]int
	capacity  map[string]int
	busy      map[string]int
	taskRes   map[string]map[string]int
	readyAt   map[string]time.Time
	startedAt map[string]time.Time

	cTotal    *telemetry.Counter
	cByState  map[taskrun.State]*telemetry.Counter
	gRunning  *telemetry.Gauge
	gPending  *telemetry.Gauge
	hWait     *telemetry.Histogram
	hRun      *telemetry.Histogram
	gResBusy  map[string]*telemetry.Gauge
	gResTotal map[string]*telemetry.Gauge
}

// NewMonitor creates a monitor stamping durations with clock (nil means
// taskrun.WallClock). The sweep_* metrics are registered eagerly so the
// Prometheus exposition is complete before the first task event.
func NewMonitor(clock taskrun.Clock) *Monitor {
	if clock == nil {
		clock = taskrun.WallClock()
	}
	reg := telemetry.NewRegistry()
	m := &Monitor{
		clock:     clock,
		reg:       reg,
		finished:  map[taskrun.State]int{},
		busy:      map[string]int{},
		taskRes:   map[string]map[string]int{},
		readyAt:   map[string]time.Time{},
		startedAt: map[string]time.Time{},
		cTotal:    reg.Counter("sweep_tasks_total", "sweep", -1, 0),
		cByState: map[taskrun.State]*telemetry.Counter{
			taskrun.Succeeded: reg.Counter("sweep_tasks_done", "succeeded", -1, 0),
			taskrun.Failed:    reg.Counter("sweep_tasks_done", "failed", -1, 0),
			taskrun.Skipped:   reg.Counter("sweep_tasks_done", "skipped", -1, 0),
			taskrun.Canceled:  reg.Counter("sweep_tasks_done", "canceled", -1, 0),
		},
		gRunning:  reg.Gauge("sweep_tasks_running", "sweep", -1),
		gPending:  reg.Gauge("sweep_tasks_pending", "sweep", -1),
		hWait:     reg.Histogram("sweep_task_wait_ms", "sweep", -1),
		hRun:      reg.Histogram("sweep_task_run_ms", "sweep", -1),
		gResBusy:  map[string]*telemetry.Gauge{},
		gResTotal: map[string]*telemetry.Gauge{},
	}
	return m
}

// Registry exposes the monitor's metric registry (the sweep_* series), e.g.
// to merge its Prometheus exposition into another scrape surface.
func (m *Monitor) Registry() *telemetry.Registry { return m.reg }

// RunStarted implements taskrun.Probe.
func (m *Monitor) RunStarted(capacity map[string]int, tasks int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.start = m.clock()
	m.started = true
	m.capacity = capacity
	for res, cap := range capacity {
		m.gResBusy[res] = m.reg.Gauge("sweep_resource_busy", res, -1)
		m.gResTotal[res] = m.reg.Gauge("sweep_resource_capacity", res, -1)
		m.gResTotal[res].Set(int64(cap))
	}
}

// TaskQueued implements taskrun.Probe.
func (m *Monitor) TaskQueued(task string, resources map[string]int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.total++
	m.cTotal.Inc()
	m.gPending.Add(1)
	if len(resources) > 0 {
		m.taskRes[task] = resources
	}
}

// TaskReady implements taskrun.Probe.
func (m *Monitor) TaskReady(task string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.readyAt[task] = m.clock()
}

// TaskBlocked implements taskrun.Probe. Blocking shows up in the wait
// histogram and the busy/capacity gauges; no extra state is needed here.
func (m *Monitor) TaskBlocked(task, resource string, need, avail int) {}

// TaskStarted implements taskrun.Probe.
func (m *Monitor) TaskStarted(task string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.clock()
	m.startedAt[task] = now
	m.running++
	m.gRunning.Add(1)
	m.gPending.Add(-1)
	m.trackResources(m.taskRes[task], 1)
	if ready, ok := m.readyAt[task]; ok {
		m.hWait.Observe(uint64(now.Sub(ready).Milliseconds()))
	}
}

// TaskFinished implements taskrun.Probe.
func (m *Monitor) TaskFinished(task string, state taskrun.State, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.clock()
	m.finished[state]++
	if c := m.cByState[state]; c != nil {
		c.Inc()
	}
	if startedAt, ok := m.startedAt[task]; ok {
		m.hRun.Observe(uint64(now.Sub(startedAt).Milliseconds()))
		m.running--
		m.gRunning.Add(-1)
		m.trackResources(m.taskRes[task], -1)
		delete(m.startedAt, task)
	} else {
		// Skipped and canceled tasks never started: they leave pending.
		m.gPending.Add(-1)
	}
}

// RunFinished implements taskrun.Probe.
func (m *Monitor) RunFinished() {}

// trackResources adjusts the per-resource busy gauges. Caller holds m.mu.
func (m *Monitor) trackResources(resources map[string]int, sign int) {
	for res, amt := range resources {
		m.busy[res] += sign * amt
		if g := m.gResBusy[res]; g != nil {
			g.Set(int64(m.busy[res]))
		}
	}
}

// ResourceDoc is one resource pool's live state in the /sweep document.
type ResourceDoc struct {
	Busy     int `json:"busy"`
	Capacity int `json:"capacity"`
}

// Doc is the /sweep JSON progress document.
type Doc struct {
	Tasks struct {
		Total     int `json:"total"`
		Pending   int `json:"pending"`
		Running   int `json:"running"`
		Succeeded int `json:"succeeded"`
		Failed    int `json:"failed"`
		Skipped   int `json:"skipped"`
		Canceled  int `json:"canceled"`
	} `json:"tasks"`
	Resources  map[string]ResourceDoc `json:"resources"`
	ElapsedSec float64                `json:"elapsed_sec"`
	EtaSec     float64                `json:"eta_sec"`
	DoneFrac   float64                `json:"done_frac"`
}

// Doc snapshots the sweep's progress: task counts by state, per-resource
// occupancy, elapsed wall time, the completed fraction, and a simple
// rate-based ETA (elapsed scaled by the remaining fraction; 0 until the
// first task finishes).
func (m *Monitor) Doc() Doc {
	m.mu.Lock()
	defer m.mu.Unlock()
	var d Doc
	done := 0
	for _, n := range m.finished {
		done += n
	}
	d.Tasks.Total = m.total
	d.Tasks.Running = m.running
	d.Tasks.Pending = m.total - m.running - done
	d.Tasks.Succeeded = m.finished[taskrun.Succeeded]
	d.Tasks.Failed = m.finished[taskrun.Failed]
	d.Tasks.Skipped = m.finished[taskrun.Skipped]
	d.Tasks.Canceled = m.finished[taskrun.Canceled]
	d.Resources = map[string]ResourceDoc{}
	for res, cap := range m.capacity {
		d.Resources[res] = ResourceDoc{Busy: m.busy[res], Capacity: cap}
	}
	if m.started {
		d.ElapsedSec = m.clock().Sub(m.start).Seconds()
	}
	if m.total > 0 {
		d.DoneFrac = float64(done) / float64(m.total)
	}
	if done > 0 && done < m.total {
		d.EtaSec = d.ElapsedSec / float64(done) * float64(m.total-done)
	}
	return d
}

// Handler returns the live sweep-dashboard HTTP handler:
//
//	/            JSON sweep-progress document (also at /sweep)
//	/metrics     Prometheus text exposition of the sweep_* registry
//
// All routes are read-only and safe to scrape while the sweep runs.
func (m *Monitor) Handler() http.Handler {
	mux := http.NewServeMux()
	doc := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(m.Doc())
	}
	mux.HandleFunc("/{$}", doc)
	mux.HandleFunc("/sweep", doc)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		m.reg.WritePrometheus(w)
	})
	return mux
}

// Serve starts an HTTP server on addr serving Handler in a background
// goroutine and returns immediately; errors are reported through errFn when
// non-nil — the same contract as Telemetry.Serve.
func (m *Monitor) Serve(addr string, errFn func(error)) {
	srv := &http.Server{Addr: addr, Handler: m.Handler()}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			if errFn != nil {
				errFn(err)
			}
		}
	}()
}

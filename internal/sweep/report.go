package sweep

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"supersim/internal/ssplot"
)

// WriteReport renders a self-contained HTML report of the sweep results —
// the counterpart of SSSweep's generated web viewer. It contains the result
// table and, when an x variable is named, one embedded SVG plot per metric
// with one line per combination of the remaining variables.
func WriteReport(w io.Writer, title string, points []Point, xVar string) error {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>")
	b.WriteString(htmlEscape(title))
	b.WriteString(`</title><style>
body { font-family: sans-serif; margin: 2em; }
table { border-collapse: collapse; margin-bottom: 2em; }
th, td { border: 1px solid #999; padding: 4px 10px; text-align: right; }
th { background: #eee; }
td.id { text-align: left; font-family: monospace; }
.err { color: #b00; }
</style></head><body>`)
	fmt.Fprintf(&b, "<h1>%s</h1>\n", htmlEscape(title))

	// Result table.
	b.WriteString("<table><tr><th>id</th><th>samples</th><th>accepted</th>" +
		"<th>mean</th><th>p50</th><th>p99</th><th>p99.9</th><th>hops</th><th>nonmin</th></tr>\n")
	for _, p := range points {
		if p.Err != nil {
			fmt.Fprintf(&b, `<tr><td class="id">%s</td><td class="err" colspan="8">%s</td></tr>`+"\n",
				htmlEscape(p.ID), htmlEscape(p.Err.Error()))
			continue
		}
		s := p.Summary
		fmt.Fprintf(&b, `<tr><td class="id">%s</td><td>%d</td><td>%.3f</td><td>%.1f</td>`+
			`<td>%.0f</td><td>%.0f</td><td>%.0f</td><td>%.2f</td><td>%.4f</td></tr>`+"\n",
			htmlEscape(p.ID), s.Count, p.Accepted, s.Mean, s.P50, s.P99, s.P999,
			s.MeanHops, s.NonMinimal)
	}
	b.WriteString("</table>\n")

	if xVar != "" {
		metrics := []struct {
			name string
			get  func(Point) float64
		}{
			{"accepted load", func(p Point) float64 { return p.Accepted }},
			{"mean latency", func(p Point) float64 { return p.Summary.Mean }},
			{"p99 latency", func(p Point) float64 { return p.Summary.P99 }},
		}
		for _, m := range metrics {
			series := seriesByX(points, xVar, m.get)
			if len(series) == 0 {
				continue
			}
			fmt.Fprintf(&b, "<h2>%s vs %s</h2>\n", htmlEscape(m.name), htmlEscape(xVar))
			if err := ssplot.WriteSVG(&b, m.name, xVar, m.name, series, 640, 360); err != nil {
				return err
			}
		}
	}
	b.WriteString("</body></html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// seriesByX groups points into one series per combination of non-x variable
// values, with the x variable on the horizontal axis. Non-numeric x values
// are skipped.
func seriesByX(points []Point, xVar string, get func(Point) float64) []ssplot.Series {
	group := map[string][][2]float64{}
	for _, p := range points {
		if p.Err != nil {
			continue
		}
		xv, ok := toFloat(p.Values[xVar])
		if !ok {
			continue
		}
		var keyParts []string
		var names []string
		for name := range p.Values {
			if name != xVar {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			keyParts = append(keyParts, fmt.Sprintf("%s=%v", name, p.Values[name]))
		}
		key := strings.Join(keyParts, " ")
		if key == "" {
			key = "all"
		}
		group[key] = append(group[key], [2]float64{xv, get(p)})
	}
	var labels []string
	for k := range group {
		labels = append(labels, k)
	}
	sort.Strings(labels)
	var out []ssplot.Series
	for _, label := range labels {
		xy := group[label]
		sort.Slice(xy, func(i, j int) bool { return xy[i][0] < xy[j][0] })
		out = append(out, ssplot.Series{Label: label, XY: xy})
	}
	return out
}

func toFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case int:
		return float64(n), true
	case int64:
		return float64(n), true
	case uint64:
		return float64(n), true
	case float64:
		return n, true
	default:
		return 0, false
	}
}

func htmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

package sweep

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"supersim/internal/stats"
)

func reportPoints() []Point {
	return []Point{
		{
			ID:       "CL=1_VC=2",
			Values:   map[string]any{"ChannelLatency": 1, "VCs": 2},
			Summary:  stats.Summary{Count: 100, Mean: 50, P50: 48, P99: 70, P999: 80, MeanHops: 2},
			Accepted: 0.5,
		},
		{
			ID:       "CL=8_VC=2",
			Values:   map[string]any{"ChannelLatency": 8, "VCs": 2},
			Summary:  stats.Summary{Count: 100, Mean: 90, P50: 85, P99: 120, P999: 140, MeanHops: 2},
			Accepted: 0.5,
		},
		{
			ID:     "CL=8_VC=4",
			Values: map[string]any{"ChannelLatency": 8, "VCs": 4},
			Err:    errors.New("boom <tag>"),
		},
	}
}

func TestWriteReportTableAndPlots(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReport(&buf, "my sweep", reportPoints(), "ChannelLatency"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<h1>my sweep</h1>",
		"CL=1_VC=2",
		"<svg",
		"mean latency",
		"VCs=2",            // series label from the non-x variable
		"boom &lt;tag&gt;", // errors escaped, not dropped
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out[:600])
		}
	}
}

func TestWriteReportNoXVariable(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReport(&buf, "t", reportPoints(), ""); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<svg") {
		t.Fatal("no plots expected without an x variable")
	}
}

func TestSeriesByXGroupsAndSorts(t *testing.T) {
	pts := []Point{
		{Values: map[string]any{"x": 3, "g": "b"}, Accepted: 3},
		{Values: map[string]any{"x": 1, "g": "b"}, Accepted: 1},
		{Values: map[string]any{"x": 2, "g": "a"}, Accepted: 2},
	}
	series := seriesByX(pts, "x", func(p Point) float64 { return p.Accepted })
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	if series[0].Label != "g=a" || series[1].Label != "g=b" {
		t.Fatalf("labels %v %v", series[0].Label, series[1].Label)
	}
	if series[1].XY[0][0] != 1 || series[1].XY[1][0] != 3 {
		t.Fatalf("x values unsorted: %v", series[1].XY)
	}
}

func TestToFloat(t *testing.T) {
	for _, c := range []struct {
		in any
		ok bool
	}{
		{3, true}, {int64(-2), true}, {uint64(7), true}, {2.5, true}, {"x", false},
	} {
		if _, ok := toFloat(c.in); ok != c.ok {
			t.Fatalf("toFloat(%v) ok=%v", c.in, ok)
		}
	}
}

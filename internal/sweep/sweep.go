// Package sweep generates and executes simulation sweeps: the cross product
// of one or more sweep variables, each contributing a settings override, is
// expanded into one simulation per permutation, executed through taskrun,
// and collected into labeled result points — the in-process counterpart of
// the original SSSweep tool. A few lines of variable declarations turn into
// an exhaustive, autonomous simulation and analysis campaign.
package sweep

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"supersim/internal/config"
	"supersim/internal/core"
	"supersim/internal/manifest"
	"supersim/internal/stats"
	"supersim/internal/taskrun"
	"supersim/internal/workload"
)

// Variable is one swept dimension. Apply mutates a copy of the base settings
// for the given value — typically one cfg.Set call, exactly like the
// command line override a shell-based sweep would generate.
type Variable struct {
	Name   string // long name, used in result points
	Short  string // short name, used in permutation ids
	Values []any
	Apply  func(cfg *config.Settings, value any)
}

// Point is one permutation's outcome.
type Point struct {
	ID       string         // e.g. "CL=1_VC=4"
	Values   map[string]any // variable name -> value
	Summary  stats.Summary  // app 0 latency summary
	Accepted float64        // delivered load over the sampling window
	Err      error          // non-nil if the simulation failed
}

// Sweep is a configured sweep campaign.
type Sweep struct {
	base        *config.Settings
	vars        []Variable
	cpus        int
	probe       taskrun.Probe
	manifestDir string
}

// New creates a sweep over a base settings document. cpus bounds concurrent
// simulations (resource management via taskrun).
func New(base *config.Settings, cpus int) *Sweep {
	if cpus < 1 {
		cpus = 1
	}
	return &Sweep{base: base, cpus: cpus}
}

// SetProbe attaches a task lifecycle probe to the sweep's runner — a Journal
// for the persistent event log, a Monitor for the live dashboard, or both
// combined with taskrun.Probes. Call before Run.
func (s *Sweep) SetProbe(p taskrun.Probe) { s.probe = p }

// WriteManifests makes Run write one provenance manifest per successful
// permutation into dir (created on demand), named <id>.manifest.json. Sweep
// manifests carry no wall-clock fields, so they are byte-deterministic for a
// deterministic simulation. Call before Run.
func (s *Sweep) WriteManifests(dir string) { s.manifestDir = dir }

// AddVariable declares a sweep variable.
func (s *Sweep) AddVariable(v Variable) {
	if v.Name == "" || v.Short == "" || len(v.Values) == 0 || v.Apply == nil {
		panic("sweep: variable needs a name, short name, values and an apply function")
	}
	s.vars = append(s.vars, v)
}

// Permutations returns the number of simulations the sweep will run.
func (s *Sweep) Permutations() int {
	n := 1
	for _, v := range s.vars {
		n *= len(v.Values)
	}
	return n
}

// Run executes every permutation and returns its points, sorted by id. The
// returned error aggregates simulation failures; successful points are
// returned either way.
func (s *Sweep) Run() ([]Point, error) {
	idx := make([]int, len(s.vars))
	var points []Point
	var mu sync.Mutex
	runner := taskrun.NewRunner(map[string]int{"cpu": s.cpus})
	runner.SetProbe(s.probe)
	if s.manifestDir != "" {
		if err := os.MkdirAll(s.manifestDir, 0o755); err != nil {
			return nil, fmt.Errorf("sweep: manifest dir: %w", err)
		}
	}
	for {
		// Materialize this permutation.
		values := map[string]any{}
		var idParts []string
		cfg := s.base.Clone()
		for vi, v := range s.vars {
			val := v.Values[idx[vi]]
			values[v.Name] = val
			idParts = append(idParts, fmt.Sprintf("%s=%v", v.Short, val))
			v.Apply(cfg, val)
		}
		id := strings.Join(idParts, "_")
		if id == "" {
			id = "base"
		}
		runner.Task(id, func() error {
			pt := Point{ID: id, Values: values}
			defer func() {
				mu.Lock()
				points = append(points, pt)
				mu.Unlock()
			}()
			sm, err := core.BuildE(cfg)
			if err != nil {
				pt.Err = err
				return err
			}
			res, err := sm.Run()
			if err != nil {
				pt.Err = err
				return err
			}
			sp, ok := sm.Workload.App(0).(stats.Provider)
			if !ok {
				pt.Err = fmt.Errorf("sweep: application 0 provides no statistics")
				return pt.Err
			}
			rec := sp.Stats()
			pt.Summary = rec.Summarize()
			window := sm.Workload.PhaseTimes[workload.Finishing] -
				sm.Workload.PhaseTimes[workload.Generating]
			pt.Accepted = stats.Throughput(rec.Flits(), sm.Net.NumTerminals(),
				window, sm.Net.ChannelPeriod())
			if s.manifestDir != "" {
				if err := s.writeManifest(cfg, pt, res); err != nil {
					pt.Err = err
					return err
				}
			}
			return nil
		}).Require("cpu", 1)

		// Advance the mixed-radix counter.
		carry := len(s.vars) - 1
		for carry >= 0 {
			idx[carry]++
			if idx[carry] < len(s.vars[carry].Values) {
				break
			}
			idx[carry] = 0
			carry--
		}
		if carry < 0 || len(s.vars) == 0 {
			break
		}
	}
	err := runner.Run()
	sort.Slice(points, func(i, j int) bool { return points[i].ID < points[j].ID })
	return points, err
}

// writeManifest records one permutation's provenance: the point's effective
// config hash, its id and variable assignments as labels, and the final
// metrics. Sweep manifests deliberately omit wall-clock fields so a
// deterministic simulation yields byte-identical manifests.
func (s *Sweep) writeManifest(cfg *config.Settings, pt Point, res core.Result) error {
	m := manifest.New(cfg)
	m.SimTicks = uint64(res.EndTick)
	m.Events = res.Events
	m.Labels = map[string]string{"point": pt.ID}
	for name, val := range pt.Values {
		m.Labels[name] = fmt.Sprintf("%v", val)
	}
	m.Metrics = map[string]float64{
		"accepted":     pt.Accepted,
		"latency_mean": pt.Summary.Mean,
		"latency_p50":  pt.Summary.P50,
		"latency_p99":  pt.Summary.P99,
		"samples":      float64(pt.Summary.Count),
	}
	path := filepath.Join(s.manifestDir, pt.ID+".manifest.json")
	if err := m.WriteFile(path); err != nil {
		return fmt.Errorf("sweep: manifest for %s: %w", pt.ID, err)
	}
	return nil
}

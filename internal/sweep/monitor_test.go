package sweep

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"supersim/internal/config"
	"supersim/internal/manifest"
	"supersim/internal/taskrun"
)

const updateEnv = "SUPERSIM_UPDATE_GOLDEN"

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv(updateEnv) != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (set %s=1 to regenerate)", err, updateEnv)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s differs from golden (set %s=1 to regenerate)\ngot:\n%s\nwant:\n%s",
			name, updateEnv, got, want)
	}
}

func testClock() taskrun.Clock {
	return taskrun.FixedClock(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC), time.Millisecond)
}

func TestMonitorDocAndEndpoints(t *testing.T) {
	m := NewMonitor(testClock())
	m.RunStarted(map[string]int{"cpu": 2}, 3)
	m.TaskQueued("a", map[string]int{"cpu": 1})
	m.TaskQueued("b", map[string]int{"cpu": 1})
	m.TaskQueued("c", nil)
	m.TaskReady("a")
	m.TaskStarted("a")

	// Mid-flight: one running and holding a cpu, two pending, nothing done.
	d := m.Doc()
	if d.Tasks.Total != 3 || d.Tasks.Running != 1 || d.Tasks.Pending != 2 {
		t.Fatalf("mid-flight doc %+v", d.Tasks)
	}
	if d.Resources["cpu"].Busy != 1 || d.Resources["cpu"].Capacity != 2 {
		t.Fatalf("resource doc %+v", d.Resources)
	}
	if d.DoneFrac != 0 || d.EtaSec != 0 {
		t.Fatalf("no task finished yet, doc %+v", d)
	}

	m.TaskFinished("a", taskrun.Succeeded, nil)
	d = m.Doc()
	if d.Tasks.Succeeded != 1 || d.Resources["cpu"].Busy != 0 {
		t.Fatalf("post-finish doc %+v", d)
	}
	if d.DoneFrac < 0.33 || d.DoneFrac > 0.34 {
		t.Fatalf("done_frac %v", d.DoneFrac)
	}
	if d.EtaSec <= 0 {
		t.Fatalf("eta_sec %v with work remaining", d.EtaSec)
	}

	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	for _, path := range []string{"/", "/sweep"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var got Doc
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatalf("%s: invalid JSON: %v", path, err)
		}
		resp.Body.Close()
		if got.Tasks.Total != 3 || got.Tasks.Succeeded != 1 {
			t.Fatalf("%s served %+v", path, got.Tasks)
		}
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"supersim_sweep_tasks_total", "supersim_sweep_tasks_done",
		"supersim_sweep_resource_capacity", "supersim_sweep_task_wait_ms",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("/metrics missing %s:\n%s", want, buf.String())
		}
	}
}

func TestMonitorSkippedAndCanceledLeavePending(t *testing.T) {
	m := NewMonitor(testClock())
	m.RunStarted(nil, 2)
	m.TaskQueued("skip", nil)
	m.TaskQueued("cancel", nil)
	m.TaskFinished("skip", taskrun.Skipped, nil)
	m.TaskFinished("cancel", taskrun.Canceled, nil)
	m.RunFinished()
	d := m.Doc()
	if d.Tasks.Pending != 0 || d.Tasks.Skipped != 1 || d.Tasks.Canceled != 1 {
		t.Fatalf("doc %+v", d.Tasks)
	}
	if d.DoneFrac != 1 || d.EtaSec != 0 {
		t.Fatalf("finished sweep doc %+v", d)
	}
}

// TestSweepFleetObservabilityE2E runs a real two-point sweep with a fixed
// clock and asserts every fleet artifact is byte-identical to its committed
// golden: the task journal, the per-point run manifests, and the Prometheus
// exposition of the sweep metrics. Capacity 1 serializes the permutations, so
// the whole pipeline is deterministic.
func TestSweepFleetObservabilityE2E(t *testing.T) {
	run := func(dir string) (journal, metrics []byte) {
		s := New(config.MustParse(sweepBase), 1)
		s.AddVariable(Variable{
			Name: "ChannelLatency", Short: "CL", Values: []any{4, 8},
			Apply: func(cfg *config.Settings, v any) {
				cfg.Set("network.channel.latency", v.(int))
			},
		})
		var jbuf bytes.Buffer
		j := taskrun.NewJournal(&jbuf, testClock())
		mon := NewMonitor(testClock())
		s.SetProbe(taskrun.Probes(j, mon))
		s.WriteManifests(dir)
		points, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(points) != 2 {
			t.Fatalf("points %+v", points)
		}
		if err := j.Err(); err != nil {
			t.Fatal(err)
		}
		var mbuf bytes.Buffer
		if err := mon.Registry().WritePrometheus(&mbuf); err != nil {
			t.Fatal(err)
		}
		return jbuf.Bytes(), mbuf.Bytes()
	}

	dir := t.TempDir()
	journal, metrics := run(dir)
	checkGolden(t, "golden_sweep_journal.jsonl", journal)
	checkGolden(t, "golden_sweep_metrics.prom", metrics)
	for _, id := range []string{"CL=4", "CL=8"} {
		data, err := os.ReadFile(filepath.Join(dir, id+".manifest.json"))
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "golden_manifest_"+id+".json", data)
		m, err := manifest.LoadFile(filepath.Join(dir, id+".manifest.json"))
		if err != nil {
			t.Fatal(err)
		}
		if m.Labels["point"] != id || m.Labels["ChannelLatency"] == "" {
			t.Fatalf("%s labels %+v", id, m.Labels)
		}
		if m.SimTicks == 0 || m.Events == 0 || m.Metrics["samples"] == 0 {
			t.Fatalf("%s missing run results: %+v", id, m)
		}
		if m.StartedAt != "" || m.WallSec != 0 {
			t.Fatalf("%s sweep manifest must omit wall-clock fields", id)
		}
	}
	// The two points differ only in channel latency: distinct config hashes,
	// and the slower channel must show higher mean latency.
	m4, _ := manifest.LoadFile(filepath.Join(dir, "CL=4.manifest.json"))
	m8, _ := manifest.LoadFile(filepath.Join(dir, "CL=8.manifest.json"))
	if m4.ConfigHash == m8.ConfigHash {
		t.Fatal("permutations share a config hash")
	}
	if m8.Metrics["latency_mean"] <= m4.Metrics["latency_mean"] {
		t.Fatalf("latency ordering: CL=8 %v <= CL=4 %v",
			m8.Metrics["latency_mean"], m4.Metrics["latency_mean"])
	}

	// A second identical run reproduces every byte.
	journal2, metrics2 := run(t.TempDir())
	if !bytes.Equal(journal, journal2) || !bytes.Equal(metrics, metrics2) {
		t.Fatal("fixed-clock sweep artifacts differ between identical runs")
	}
}

// Package arbiter implements the arbiter building block used throughout the
// router microarchitectures: crossbar schedulers, VC schedulers and
// allocators are all composed from arbiters.
//
// An arbiter selects one winner among up to Size requesting clients per
// invocation. Implementations self-register with the package Registry so new
// arbitration policies can be added without modifying existing code.
package arbiter

import (
	"math/rand/v2"

	"supersim/internal/config"
	"supersim/internal/factory"
)

// Arbiter grants one of the requesting clients.
//
// The request slice has exactly Size entries; requests[i] reports whether
// client i is requesting. prio supplies a per-client priority metadata value
// whose meaning depends on the policy (age-based arbitration uses it as the
// packet age where a smaller value, i.e. an older packet, wins). Policies
// that do not use metadata accept a nil prio.
//
// Grant returns the winning client index, or -1 when no client requests.
// Grant must not mutate policy state; the caller invokes Latch(winner) when
// the grant is actually consumed, which is when stateful policies (round
// robin) advance.
type Arbiter interface {
	Size() int
	Grant(requests []bool, prio []uint64) int
	Latch(winner int)
}

// Ctor is the constructor signature registered by implementations. The rng
// is the owning simulation's deterministic generator.
type Ctor func(cfg *config.Settings, rng *rand.Rand, size int) Arbiter

// Registry holds all arbiter implementations.
var Registry = factory.NewRegistry[Ctor]("arbiter")

// New builds the arbiter named by cfg's "type" setting.
func New(cfg *config.Settings, rng *rand.Rand, size int) Arbiter {
	return Registry.MustLookup(cfg.String("type"))(cfg, rng, size)
}

func checkArgs(requests []bool, size int) {
	if len(requests) != size {
		panic("arbiter: request vector size mismatch")
	}
}

package arbiter

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"supersim/internal/config"
)

func req(size int, set ...int) []bool {
	r := make([]bool, size)
	for _, i := range set {
		r[i] = true
	}
	return r
}

func TestRoundRobinFairness(t *testing.T) {
	a := NewRoundRobin(4)
	all := req(4, 0, 1, 2, 3)
	var got []int
	for i := 0; i < 8; i++ {
		w := a.Grant(all, nil)
		a.Latch(w)
		got = append(got, w)
	}
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation %v, want %v", got, want)
		}
	}
}

func TestRoundRobinSkipsNonRequesters(t *testing.T) {
	a := NewRoundRobin(4)
	w := a.Grant(req(4, 2), nil)
	if w != 2 {
		t.Fatalf("grant = %d", w)
	}
	a.Latch(w)
	// pointer now at 3; only 1 requests -> wraps
	if w := a.Grant(req(4, 1), nil); w != 1 {
		t.Fatalf("wrap grant = %d", w)
	}
}

func TestRoundRobinNoLatchNoAdvance(t *testing.T) {
	a := NewRoundRobin(3)
	all := req(3, 0, 1, 2)
	if a.Grant(all, nil) != 0 || a.Grant(all, nil) != 0 {
		t.Fatal("Grant must be stateless without Latch")
	}
}

func TestRoundRobinEmpty(t *testing.T) {
	a := NewRoundRobin(3)
	if w := a.Grant(req(3), nil); w != -1 {
		t.Fatalf("grant on empty = %d", w)
	}
	a.Latch(-1) // must not panic or corrupt state
	if w := a.Grant(req(3, 1), nil); w != 1 {
		t.Fatal("state corrupted by Latch(-1)")
	}
}

func TestAgeBasedPicksOldest(t *testing.T) {
	a := NewAgeBased(4)
	prio := []uint64{50, 10, 99, 10}
	if w := a.Grant(req(4, 0, 2), prio); w != 0 {
		t.Fatalf("grant = %d, want 0 (50 < 99)", w)
	}
	// tie breaks to lowest index
	if w := a.Grant(req(4, 1, 3), prio); w != 1 {
		t.Fatalf("tie grant = %d, want 1", w)
	}
	if w := a.Grant(req(4, 0, 1, 2, 3), prio); w != 1 {
		t.Fatalf("grant = %d, want 1 (age 10)", w)
	}
}

func TestAgeBasedNilPrio(t *testing.T) {
	a := NewAgeBased(3)
	if w := a.Grant(req(3, 1, 2), nil); w != 1 {
		t.Fatalf("nil-prio grant = %d, want lowest index", w)
	}
}

func TestFixedPriority(t *testing.T) {
	a := NewFixedPriority(5)
	if w := a.Grant(req(5, 3, 4), nil); w != 3 {
		t.Fatalf("grant = %d", w)
	}
	if w := a.Grant(req(5), nil); w != -1 {
		t.Fatalf("empty grant = %d", w)
	}
}

func TestRandomIsUniformish(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 43))
	a := NewRandom(4, rng)
	counts := make([]int, 4)
	r := req(4, 0, 1, 2, 3)
	const trials = 4000
	for i := 0; i < trials; i++ {
		w := a.Grant(r, nil)
		if w < 0 || w > 3 {
			t.Fatalf("grant out of range: %d", w)
		}
		counts[w]++
	}
	for i, c := range counts {
		if c < trials/8 || c > trials/2 {
			t.Fatalf("client %d got %d of %d grants — not uniform: %v", i, c, trials, counts)
		}
	}
}

func TestRandomOnlyGrantsRequesters(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	a := NewRandom(8, rng)
	r := req(8, 2, 5)
	for i := 0; i < 100; i++ {
		w := a.Grant(r, nil)
		if w != 2 && w != 5 {
			t.Fatalf("granted non-requester %d", w)
		}
	}
	if w := a.Grant(req(8), nil); w != -1 {
		t.Fatal("empty grant")
	}
}

func TestAllArbitersGrantOnlyRequesters(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	arbs := map[string]Arbiter{
		"round_robin": NewRoundRobin(6),
		"age_based":   NewAgeBased(6),
		"fixed":       NewFixedPriority(6),
		"random":      NewRandom(6, rng),
	}
	prop := func(mask uint8, prios [6]uint16) bool {
		r := make([]bool, 6)
		any := false
		for i := 0; i < 6; i++ {
			r[i] = mask&(1<<i) != 0
			any = any || r[i]
		}
		p := make([]uint64, 6)
		for i := range p {
			p[i] = uint64(prios[i])
		}
		for _, a := range arbs {
			w := a.Grant(r, p)
			if any {
				if w < 0 || !r[w] {
					return false
				}
				a.Latch(w)
			} else if w != -1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFactoryConstruction(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, name := range []string{"round_robin", "age_based", "random", "fixed_priority"} {
		cfg := config.MustParse(`{"type": "` + name + `"}`)
		a := New(cfg, rng, 4)
		if a.Size() != 4 {
			t.Fatalf("%s: Size = %d", name, a.Size())
		}
	}
}

func TestFactoryUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(config.MustParse(`{"type": "bogus"}`), rand.New(rand.NewPCG(1, 1)), 4)
}

func TestSizeMismatchPanics(t *testing.T) {
	a := NewRoundRobin(4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Grant(req(3, 0), nil)
}

func TestInvalidSizePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewRoundRobin(0) },
		func() { NewAgeBased(-1) },
		func() { NewFixedPriority(0) },
		func() { NewRandom(0, rand.New(rand.NewPCG(1, 1))) },
		func() { NewRandom(4, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

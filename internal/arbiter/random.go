package arbiter

import (
	"math/rand/v2"

	"supersim/internal/config"
)

func init() {
	Registry.Register("random", func(cfg *config.Settings, rng *rand.Rand, size int) Arbiter {
		return NewRandom(size, rng)
	})
}

// Random grants a uniformly random requesting client. It draws from the
// owning simulation's deterministic generator, so simulations remain
// reproducible.
type Random struct {
	size int
	rng  *rand.Rand
	idx  []int // scratch
}

// NewRandom creates a random arbiter over size clients.
func NewRandom(size int, rng *rand.Rand) *Random {
	if size <= 0 {
		panic("arbiter: size must be positive")
	}
	if rng == nil {
		panic("arbiter: random arbiter requires an rng")
	}
	return &Random{size: size, rng: rng, idx: make([]int, 0, size)}
}

// Size returns the number of clients.
func (a *Random) Size() int { return a.size }

// Grant returns a uniformly random requester.
func (a *Random) Grant(requests []bool, prio []uint64) int {
	checkArgs(requests, a.size)
	a.idx = a.idx[:0]
	for i, req := range requests {
		if req {
			a.idx = append(a.idx, i)
		}
	}
	if len(a.idx) == 0 {
		return -1
	}
	return a.idx[a.rng.IntN(len(a.idx))]
}

// Latch is a no-op.
func (a *Random) Latch(winner int) {}

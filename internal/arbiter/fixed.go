package arbiter

import (
	"math/rand/v2"

	"supersim/internal/config"
)

func init() {
	Registry.Register("fixed_priority", func(cfg *config.Settings, rng *rand.Rand, size int) Arbiter {
		return NewFixedPriority(size)
	})
}

// FixedPriority always grants the lowest-indexed requester. It is unfair by
// design and exists as a baseline and for deterministic unit fixtures.
type FixedPriority struct {
	size int
}

// NewFixedPriority creates a fixed-priority arbiter over size clients.
func NewFixedPriority(size int) *FixedPriority {
	if size <= 0 {
		panic("arbiter: size must be positive")
	}
	return &FixedPriority{size: size}
}

// Size returns the number of clients.
func (a *FixedPriority) Size() int { return a.size }

// Grant returns the lowest-indexed requester.
func (a *FixedPriority) Grant(requests []bool, prio []uint64) int {
	checkArgs(requests, a.size)
	for i, req := range requests {
		if req {
			return i
		}
	}
	return -1
}

// Latch is a no-op.
func (a *FixedPriority) Latch(winner int) {}

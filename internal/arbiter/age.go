package arbiter

import (
	"math/rand/v2"

	"supersim/internal/config"
)

func init() {
	Registry.Register("age_based", func(cfg *config.Settings, rng *rand.Rand, size int) Arbiter {
		return NewAgeBased(size)
	})
}

// AgeBased grants the requesting client with the smallest priority metadata
// value — when the metadata is the packet creation time this is oldest-first
// arbitration, which is known to fix the bandwidth unfairness of round-robin
// arbitration in parking-lot scenarios. Ties break to the lowest index for
// determinism.
type AgeBased struct {
	size int
}

// NewAgeBased creates an age-based arbiter over size clients.
func NewAgeBased(size int) *AgeBased {
	if size <= 0 {
		panic("arbiter: size must be positive")
	}
	return &AgeBased{size: size}
}

// Size returns the number of clients.
func (a *AgeBased) Size() int { return a.size }

// Grant returns the requester with the smallest metadata value. A nil prio
// slice degenerates to fixed-priority (lowest index wins).
func (a *AgeBased) Grant(requests []bool, prio []uint64) int {
	checkArgs(requests, a.size)
	best := -1
	for i, req := range requests {
		if !req {
			continue
		}
		if best == -1 {
			best = i
			continue
		}
		if prio != nil && prio[i] < prio[best] {
			best = i
		}
	}
	return best
}

// Latch is a no-op: age ordering carries no internal state.
func (a *AgeBased) Latch(winner int) {}

package arbiter

import (
	"math/rand/v2"

	"supersim/internal/config"
)

func init() {
	Registry.Register("round_robin", func(cfg *config.Settings, rng *rand.Rand, size int) Arbiter {
		return NewRoundRobin(size)
	})
}

// RoundRobin grants the first requesting client at or after a rotating
// pointer. The pointer advances past the winner only when the grant is
// latched, giving the classic fair round-robin policy.
type RoundRobin struct {
	size int
	next int
}

// NewRoundRobin creates a round-robin arbiter over size clients.
func NewRoundRobin(size int) *RoundRobin {
	if size <= 0 {
		panic("arbiter: size must be positive")
	}
	return &RoundRobin{size: size}
}

// Size returns the number of clients.
func (a *RoundRobin) Size() int { return a.size }

// Grant returns the first requester at or after the rotating pointer.
func (a *RoundRobin) Grant(requests []bool, prio []uint64) int {
	checkArgs(requests, a.size)
	for i := 0; i < a.size; i++ {
		idx := (a.next + i) % a.size
		if requests[idx] {
			return idx
		}
	}
	return -1
}

// Latch advances the pointer past the consumed winner.
func (a *RoundRobin) Latch(winner int) {
	if winner >= 0 && winner < a.size {
		a.next = (winner + 1) % a.size
	}
}

package arbiter

import (
	"math/rand/v2"
	"testing"
)

func benchGrant(b *testing.B, a Arbiter) {
	req := make([]bool, a.Size())
	prio := make([]uint64, a.Size())
	for i := range req {
		req[i] = i%3 == 0
		prio[i] = uint64(i * 37 % 101)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := a.Grant(req, prio)
		a.Latch(w)
	}
}

func BenchmarkRoundRobin64(b *testing.B) { benchGrant(b, NewRoundRobin(64)) }
func BenchmarkAgeBased64(b *testing.B)   { benchGrant(b, NewAgeBased(64)) }
func BenchmarkRandomArbiter64(b *testing.B) {
	benchGrant(b, NewRandom(64, rand.New(rand.NewPCG(1, 2))))
}

package channel

import (
	"supersim/internal/sim"
	"supersim/internal/snapshot"
	"supersim/internal/types"
)

// Checkpoint state for channels. In-flight flits are stored as (delivery
// tick, flit reference) pairs against the checkpoint's message table; the
// FIFO is normalized on save (the consumed prefix before head is dropped) so
// the bytes do not depend on compaction history. The cross-shard remote port
// is topology wiring, not state — the restore path rebuilds it when it
// re-partitions the network.

// Collect adds every message with a flit in flight on this channel to the
// checkpoint's message table.
func (c *Channel) Collect(t *types.MessageTable) {
	for i := c.head; i < len(c.pending); i++ {
		t.Add(c.pending[i].f.Pkt.Msg)
	}
}

// SaveState serializes the channel's mutable state.
func (c *Channel) SaveState(e *snapshot.Encoder, t *types.MessageTable) {
	c.SaveOrder(e)
	e.U64(uint64(c.nextSlot))
	e.U64(c.injected)
	e.Bool(c.scheduled)
	e.Int(len(c.pending) - c.head)
	for i := c.head; i < len(c.pending); i++ {
		e.U64(uint64(c.pending[i].at))
		t.EncodeFlit(e, c.pending[i].f)
	}
}

// LoadState restores the counterpart of SaveState onto a freshly built
// channel.
func (c *Channel) LoadState(d *snapshot.Decoder, t *types.MessageTable) error {
	if err := c.LoadOrder(d); err != nil {
		return err
	}
	c.nextSlot = sim.Tick(d.U64())
	c.injected = d.U64()
	c.scheduled = d.Bool()
	n := d.Count()
	if d.Err() != nil {
		return d.Err()
	}
	c.pending = make([]flitFlight, 0, n)
	c.head = 0
	for i := 0; i < n; i++ {
		at := sim.Tick(d.U64())
		f, err := t.DecodeFlit(d)
		if err != nil {
			return err
		}
		if f == nil {
			return d.Failf("channel %s: in-flight entry %d has no flit", c.Name(), i)
		}
		c.pending = append(c.pending, flitFlight{at: at, f: f})
	}
	return d.Err()
}

// SaveState serializes the credit channel's mutable state.
func (c *CreditChannel) SaveState(e *snapshot.Encoder) {
	c.SaveOrder(e)
	e.Bool(c.scheduled)
	e.Int(len(c.pending) - c.head)
	for i := c.head; i < len(c.pending); i++ {
		e.U64(uint64(c.pending[i].at))
		e.Int(c.pending[i].cr.VC)
	}
}

// LoadState restores the counterpart of SaveState onto a freshly built
// credit channel.
func (c *CreditChannel) LoadState(d *snapshot.Decoder) error {
	if err := c.LoadOrder(d); err != nil {
		return err
	}
	c.scheduled = d.Bool()
	n := d.Count()
	if d.Err() != nil {
		return d.Err()
	}
	c.pending = make([]creditFlight, 0, n)
	c.head = 0
	for i := 0; i < n; i++ {
		at := sim.Tick(d.U64())
		vc := d.Int()
		c.pending = append(c.pending, creditFlight{at: at, cr: types.Credit{VC: vc}})
	}
	return d.Err()
}

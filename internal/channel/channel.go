// Package channel models the unidirectional links that connect routers and
// interfaces. A flit channel carries one flit per channel cycle in the
// forward direction; a credit channel carries flow control credits in the
// reverse direction. Both impose a fixed propagation latency — the dominant
// term in large-scale networks where cables run tens of meters.
//
// Because a channel's latency is fixed, deliveries are FIFO; each channel
// therefore keeps its own pending queue and holds at most one event in the
// simulator's priority queue at a time, which keeps the global event heap
// small even with hundreds of flits in flight per link.
package channel

import (
	"fmt"

	"supersim/internal/sim"
	"supersim/internal/telemetry"
	"supersim/internal/types"
	"supersim/internal/verify"
)

const (
	evDeliver = iota
)

type flitFlight struct {
	at sim.Tick
	f  *types.Flit
}

// Channel is a unidirectional flit link with bandwidth of one flit per
// period ticks and a fixed propagation latency in ticks.
//
// Under a parallel engine a channel may span two shards (see SetRemote). Its
// fields then partition cleanly by goroutine: nextSlot and injected are
// touched only by the source side (Inject, Available, NextSlot), while
// pending/head/scheduled are touched only by the destination side
// (ReceiveRemote, ProcessEvent). The engine inbox is the ownership hand-off
// between them.
type Channel struct {
	sim.ComponentBase
	latency sim.Tick
	period  sim.Tick
	//sslint:nosnapshot — topology wiring, re-established by SetSink during the rebuild
	sink types.FlitSink
	//sslint:nosnapshot — topology wiring, re-established by SetSink during the rebuild
	sinkPort int
	nextSlot sim.Tick // earliest tick the next flit may be injected
	injected uint64

	// remote is non-nil when the channel crosses a shard boundary: the
	// component (and its delivery events) lives on the destination shard,
	// and source-side injections post through this port instead.
	//sslint:nosnapshot — engine wiring, re-established by SetRemote when the rebuilt shards are linked
	remote *sim.RemotePort

	pending   []flitFlight // FIFO of in-flight flits (ring on head index)
	head      int
	scheduled bool

	v  *verify.Verifier        // nil unless invariant verification is attached
	tp *telemetry.ChannelProbe // nil unless telemetry is attached
	sp *telemetry.Spans        // nil unless span recording is attached
}

// New creates a flit channel. latency is the propagation delay in ticks;
// period is the channel cycle time in ticks (one flit per cycle).
func New(s *sim.Simulator, name string, latency, period sim.Tick) *Channel {
	if period == 0 {
		panic("channel: period must be positive")
	}
	if latency == 0 {
		panic("channel: latency must be at least one tick")
	}
	return &Channel{
		ComponentBase: sim.NewComponentBase(s, name),
		latency:       latency,
		period:        period,
		v:             verify.For(s),
		tp:            telemetry.ForChannel(s, name, period),
		sp:            telemetry.SpansFor(s),
	}
}

// SetSink connects the channel's receive side to a flit sink; delivered
// flits arrive with the given port number.
func (c *Channel) SetSink(sink types.FlitSink, port int) {
	c.sink = sink
	c.sinkPort = port
}

// SetRemote marks the channel as crossing a shard boundary. The port's
// destination must be the shard this channel was adopted into; injections on
// the source shard then travel through the engine inbox.
func (c *Channel) SetRemote(p *sim.RemotePort) { c.remote = p }

// Latency returns the propagation latency in ticks.
func (c *Channel) Latency() sim.Tick { return c.latency }

// Period returns the channel cycle time in ticks.
func (c *Channel) Period() sim.Tick { return c.period }

// Injected returns the number of flits injected so far (for utilization
// statistics).
func (c *Channel) Injected() uint64 { return c.injected }

// NextSlot returns the earliest tick >= now at which a flit may be injected.
func (c *Channel) NextSlot(now sim.Tick) sim.Tick {
	if c.nextSlot > now {
		return c.nextSlot
	}
	return now
}

// Available reports whether a flit may be injected at the given tick.
func (c *Channel) Available(now sim.Tick) bool { return c.nextSlot <= now }

// InFlight returns the number of flits currently traversing the channel.
func (c *Channel) InFlight() int { return len(c.pending) - c.head }

// Inject sends a flit down the channel. The caller must respect the
// channel's bandwidth: injecting before NextSlot panics. The flit arrives at
// the sink latency ticks later.
//
//sslint:hotpath
func (c *Channel) Inject(f *types.Flit) {
	if c.remote != nil {
		c.injectRemote(f)
		return
	}
	now := c.Sim().Now()
	if now.Tick < c.nextSlot {
		c.Panicf("flit injected at %d before next slot %d (bandwidth violation)", now.Tick, c.nextSlot)
	}
	if c.sink == nil {
		c.Panicf("flit injected into unconnected channel")
	}
	if c.v != nil {
		// Every channel hop is a touch point for the pool-aliasing sentinel:
		// the flit must still be in flight under its injection generation.
		c.v.FlitTouched(f)
	}
	c.nextSlot = now.Tick + c.period
	c.injected++
	if c.tp != nil {
		c.tp.FlitInjected()
	}
	f.SendTime = now.Tick
	at := now.Tick + c.latency
	//sslint:allow hotpath — amortized FIFO growth, compacted in ProcessEvent
	c.pending = append(c.pending, flitFlight{at: at, f: f})
	if !c.scheduled {
		c.scheduled = true
		c.Sim().Schedule(c, sim.Time{Tick: at}, evDeliver, nil)
	}
}

// injectRemote is the cross-shard variant of Inject: it runs on the source
// shard's goroutine, so it must use the source clock (the component's own
// Sim() is the destination shard's) and hand the flit to the destination
// through the engine inbox. All source-side bookkeeping is identical to the
// local path.
//
//sslint:hotpath
func (c *Channel) injectRemote(f *types.Flit) {
	now := c.remote.SrcNow()
	if now.Tick < c.nextSlot {
		panic(fmt.Sprintf("%s @%v: flit injected at %d before next slot %d (bandwidth violation)",
			c.Name(), now, now.Tick, c.nextSlot))
	}
	if c.sink == nil {
		panic(fmt.Sprintf("%s @%v: flit injected into unconnected channel", c.Name(), now))
	}
	if c.v != nil {
		c.v.FlitTouched(f)
	}
	c.nextSlot = now.Tick + c.period
	c.injected++
	if c.tp != nil {
		c.tp.FlitInjected()
	}
	f.SendTime = now.Tick
	c.remote.Send(now.Tick+c.latency, f, 0)
}

// ReceiveRemote implements sim.RemoteReceiver: it accepts a cross-shard flit
// on the destination shard's goroutine and mirrors the local Inject tail
// exactly — append to the FIFO and arm the delivery event if idle — so the
// destination shard's event sequence is identical to the serial run's.
func (c *Channel) ReceiveRemote(at sim.Tick, ptr any, aux int) {
	f := ptr.(*types.Flit)
	c.pending = append(c.pending, flitFlight{at: at, f: f})
	if !c.scheduled {
		c.scheduled = true
		c.Sim().Schedule(c, sim.Time{Tick: at}, evDeliver, nil)
	}
}

// ProcessEvent delivers the head flit and re-arms for the next one.
//
//sslint:hotpath
func (c *Channel) ProcessEvent(ev *sim.Event) {
	now := c.Sim().Now().Tick
	fl := c.pending[c.head]
	c.pending[c.head].f = nil
	c.head++
	if c.head == len(c.pending) {
		c.pending = c.pending[:0]
		c.head = 0
	} else if c.head >= 64 && c.head*2 >= len(c.pending) {
		n := copy(c.pending, c.pending[c.head:])
		c.pending = c.pending[:n]
		c.head = 0
	}
	if fl.at != now {
		c.Panicf("flit delivery at %d, expected %d", now, fl.at)
	}
	if c.head < len(c.pending) {
		c.Sim().Schedule(c, sim.Time{Tick: c.pending[c.head].at}, evDeliver, nil)
	} else {
		c.scheduled = false
	}
	fl.f.ReceiveTime = now
	if c.sp != nil && c.sp.Tracked(fl.f) {
		// Channel exit is the uniform hop boundary: serialization wait plus
		// propagation is charged to the wire, and the span moves to the next
		// hop. This fires for injection, router-router and ejection links
		// alike, so every hop on the path ends with exactly one wire step.
		c.sp.Step(c.Sim(), now, fl.f, telemetry.SpanWire)
	}
	c.sink.ReceiveFlit(c.sinkPort, fl.f)
}

// Sink returns the connected flit sink and its port; the stall diagnostician
// uses it to follow blocked dependency chains across links.
func (c *Channel) Sink() (types.FlitSink, int) { return c.sink, c.sinkPort }

type creditFlight struct {
	at sim.Tick
	cr types.Credit
}

// CreditChannel is the reverse-direction credit link paired with a flit
// channel. Credits are small and out-of-band, so the model imposes latency
// but no bandwidth limit. Same-tick credits are delivered in one event.
type CreditChannel struct {
	sim.ComponentBase
	latency sim.Tick
	//sslint:nosnapshot — topology wiring, re-established by SetSink during the rebuild
	sink types.CreditSink
	//sslint:nosnapshot — topology wiring, re-established by SetSink during the rebuild
	sinkPort int

	// remote is non-nil when the credit channel crosses a shard boundary;
	// see Channel.remote. Credits are value types, so the post carries the
	// VC number in the integer slot — no boxing, no allocation.
	//sslint:nosnapshot — engine wiring, re-established by SetRemote when the rebuilt shards are linked
	remote *sim.RemotePort

	pending   []creditFlight
	head      int
	scheduled bool
}

// NewCredit creates a credit channel with the given propagation latency.
func NewCredit(s *sim.Simulator, name string, latency sim.Tick) *CreditChannel {
	if latency == 0 {
		panic("channel: latency must be at least one tick")
	}
	return &CreditChannel{
		ComponentBase: sim.NewComponentBase(s, name),
		latency:       latency,
	}
}

// SetSink connects the credit channel's receive side.
func (c *CreditChannel) SetSink(sink types.CreditSink, port int) {
	c.sink = sink
	c.sinkPort = port
}

// Latency returns the propagation latency in ticks.
func (c *CreditChannel) Latency() sim.Tick { return c.latency }

// SetRemote marks the credit channel as crossing a shard boundary; see
// Channel.SetRemote.
func (c *CreditChannel) SetRemote(p *sim.RemotePort) { c.remote = p }

// Inject sends a credit; it arrives latency ticks later.
//
//sslint:hotpath
func (c *CreditChannel) Inject(cr types.Credit) {
	if c.remote != nil {
		c.remote.Send(c.remote.SrcNow().Tick+c.latency, nil, cr.VC)
		return
	}
	if c.sink == nil {
		c.Panicf("credit injected into unconnected channel")
	}
	at := c.Sim().Now().Tick + c.latency
	//sslint:allow hotpath — amortized FIFO growth, compacted in ProcessEvent
	c.pending = append(c.pending, creditFlight{at: at, cr: cr})
	if !c.scheduled {
		c.scheduled = true
		c.Sim().Schedule(c, sim.Time{Tick: at}, evDeliver, nil)
	}
}

// ReceiveRemote implements sim.RemoteReceiver for cross-shard credits: the
// VC number travels in aux, and the FIFO/arming logic mirrors the local
// Inject tail exactly.
func (c *CreditChannel) ReceiveRemote(at sim.Tick, ptr any, aux int) {
	c.pending = append(c.pending, creditFlight{at: at, cr: types.Credit{VC: aux}})
	if !c.scheduled {
		c.scheduled = true
		c.Sim().Schedule(c, sim.Time{Tick: at}, evDeliver, nil)
	}
}

// ProcessEvent delivers every credit due at the current tick.
//
//sslint:hotpath
func (c *CreditChannel) ProcessEvent(ev *sim.Event) {
	now := c.Sim().Now().Tick
	for c.head < len(c.pending) && c.pending[c.head].at == now {
		cr := c.pending[c.head].cr
		c.pending[c.head] = creditFlight{}
		c.head++
		c.sink.ReceiveCredit(c.sinkPort, cr)
	}
	if c.head == len(c.pending) {
		c.pending = c.pending[:0]
		c.head = 0
		c.scheduled = false
		return
	}
	if c.head >= 64 && c.head*2 >= len(c.pending) {
		n := copy(c.pending, c.pending[c.head:])
		c.pending = c.pending[:n]
		c.head = 0
	}
	c.Sim().Schedule(c, sim.Time{Tick: c.pending[c.head].at}, evDeliver, nil)
}

package channel

import (
	"bytes"
	"strings"
	"testing"

	"supersim/internal/sim"
	"supersim/internal/snapshot"
	"supersim/internal/types"
)

// inFlightChannel builds a channel with two flits mid-flight and returns it
// with the message whose flits are traveling.
func inFlightChannel(t *testing.T) (*Channel, *types.Message) {
	t.Helper()
	s := sim.NewSimulator(1)
	c := New(s, "chan_0", 4, 2)
	c.SetSink(&flitCollector{s: s}, 0)
	m := types.NewMessage(7, 0, 0, 1, 2, 2)
	c.Inject(m.Packets[0].Flits[0])
	s.SetNow(sim.Time{Tick: 2})
	c.Inject(m.Packets[0].Flits[1])
	return c, m
}

func saveChannel(c *Channel, tab *types.MessageTable) []byte {
	e := snapshot.NewEncoder()
	c.SaveState(e, tab)
	return e.Bytes()
}

func TestChannelStateRoundTrip(t *testing.T) {
	c, m := inFlightChannel(t)
	tab := types.NewMessageTable()
	c.Collect(tab)
	if tab.Len() != 1 {
		t.Fatalf("collected %d messages, want 1", tab.Len())
	}
	te := snapshot.NewEncoder()
	tab.SaveState(te)
	data := saveChannel(c, tab)

	rtab, err := types.LoadMessageTable(snapshot.NewDecoder(te.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	s2 := sim.NewSimulator(1)
	got := New(s2, "chan_0", 4, 2)
	d := snapshot.NewDecoder(data)
	if err := got.LoadState(d, rtab); err != nil {
		t.Fatal(err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left after load", d.Remaining())
	}
	if got.InFlight() != 2 || got.Injected() != c.Injected() || got.NextSlot(0) != c.NextSlot(0) {
		t.Fatalf("restored channel: inflight %d injected %d next %d", got.InFlight(), got.Injected(), got.NextSlot(0))
	}
	if !bytes.Equal(saveChannel(got, rtab), data) {
		t.Fatal("re-saved channel state is not byte-identical")
	}
	_ = m
}

func TestChannelLoadRejectsCorruption(t *testing.T) {
	c, _ := inFlightChannel(t)
	tab := types.NewMessageTable()
	c.Collect(tab)
	data := saveChannel(c, tab)

	// A missing flit reference: a present=false entry where one is required.
	e := snapshot.NewEncoder()
	c.SaveOrder(e)
	e.U64(4)      // nextSlot
	e.U64(1)      // injected
	e.Bool(true)  // scheduled
	e.Int(1)      // one in-flight entry
	e.U64(5)      // at
	e.Bool(false) // ... with no flit
	s2 := sim.NewSimulator(1)
	got := New(s2, "chan_0", 4, 2)
	if err := got.LoadState(snapshot.NewDecoder(e.Bytes()), tab); err == nil ||
		!strings.Contains(err.Error(), "no flit") {
		t.Fatalf("err = %v, want missing-flit error", err)
	}

	for _, n := range []int{0, 1, len(data) / 2, len(data) - 1} {
		s3 := sim.NewSimulator(1)
		fresh := New(s3, "chan_0", 4, 2)
		if err := fresh.LoadState(snapshot.NewDecoder(data[:n]), tab); err == nil {
			t.Fatalf("truncation to %d bytes loaded without error", n)
		}
	}
}

func TestCreditChannelStateRoundTrip(t *testing.T) {
	s := sim.NewSimulator(1)
	c := NewCredit(s, "cred_0", 3)
	c.SetSink(&creditCollector{s: s}, 0)
	c.Inject(types.Credit{VC: 1})
	c.Inject(types.Credit{VC: 0})
	e := snapshot.NewEncoder()
	c.SaveState(e)
	data := e.Bytes()

	s2 := sim.NewSimulator(1)
	got := NewCredit(s2, "cred_0", 3)
	d := snapshot.NewDecoder(data)
	if err := got.LoadState(d); err != nil {
		t.Fatal(err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left after load", d.Remaining())
	}
	if len(got.pending)-got.head != 2 || got.pending[0].cr.VC != 1 || got.pending[1].cr.VC != 0 {
		t.Fatalf("restored credit queue %+v", got.pending)
	}
	e2 := snapshot.NewEncoder()
	got.SaveState(e2)
	if !bytes.Equal(e2.Bytes(), data) {
		t.Fatal("re-saved credit channel state is not byte-identical")
	}

	for _, n := range []int{0, len(data) / 2, len(data) - 1} {
		s3 := sim.NewSimulator(1)
		fresh := NewCredit(s3, "cred_0", 3)
		if err := fresh.LoadState(snapshot.NewDecoder(data[:n])); err == nil {
			t.Fatalf("truncation to %d bytes loaded without error", n)
		}
	}
}

// TestChannelRemoteDelivery drives both channel kinds across a two-shard
// engine boundary: injections run on the source shard's goroutine through
// the RemotePort, deliveries on the destination shard's, and the delivery
// times must match the serial path exactly.
func TestChannelRemoteDelivery(t *testing.T) {
	host := sim.NewSimulator(1)
	eng := sim.NewEngine(host)
	sh := eng.AddShard()

	ch := New(host, "chan_x", 4, 2)
	eng.Adopt(ch, sh)
	sink := &flitCollector{s: sh}
	ch.SetSink(sink, 1)
	ch.SetRemote(eng.Link(host, sh, ch.Latency(), ch))
	if s, p := ch.Sink(); s != sink || p != 1 {
		t.Fatal("Sink() does not return the connected sink")
	}

	cc := NewCredit(host, "cred_x", 3)
	eng.Adopt(cc, sh)
	csink := &creditCollector{s: sh}
	cc.SetSink(csink, 0)
	cc.SetRemote(eng.Link(host, sh, cc.Latency(), cc))

	m := types.NewMessage(1, 0, 0, 1, 2, 2)
	at(host, 0, func() { ch.Inject(m.Packets[0].Flits[0]) })
	at(host, 2, func() {
		ch.Inject(m.Packets[0].Flits[1])
		cc.Inject(types.Credit{VC: 2})
	})
	eng.Run()

	if len(sink.flits) != 2 || sink.times[0] != 4 || sink.times[1] != 6 {
		t.Fatalf("remote flit deliveries: %v at %v", sink.flits, sink.times)
	}
	if len(csink.credits) != 1 || csink.credits[0].VC != 2 || csink.times[0] != 5 {
		t.Fatalf("remote credit deliveries: %v at %v", csink.credits, csink.times)
	}
}

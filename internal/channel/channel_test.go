package channel

import (
	"testing"

	"supersim/internal/sim"
	"supersim/internal/types"
)

type flitCollector struct {
	flits []*types.Flit
	ports []int
	times []sim.Tick
	s     *sim.Simulator
}

func (fc *flitCollector) ReceiveFlit(port int, f *types.Flit) {
	fc.flits = append(fc.flits, f)
	fc.ports = append(fc.ports, port)
	fc.times = append(fc.times, fc.s.Now().Tick)
}

type creditCollector struct {
	credits []types.Credit
	times   []sim.Tick
	s       *sim.Simulator
}

func (cc *creditCollector) ReceiveCredit(port int, c types.Credit) {
	cc.credits = append(cc.credits, c)
	cc.times = append(cc.times, cc.s.Now().Tick)
}

func flit() *types.Flit {
	return types.NewMessage(1, 0, 0, 1, 1, 1).Packets[0].Flits[0]
}

func at(s *sim.Simulator, tick sim.Tick, fn func()) {
	s.Schedule(sim.HandlerFunc(func(*sim.Event) { fn() }), sim.Time{Tick: tick}, 0, nil)
}

func TestChannelDeliversAfterLatency(t *testing.T) {
	s := sim.NewSimulator(1)
	ch := New(s, "ch", 50, 1)
	sink := &flitCollector{s: s}
	ch.SetSink(sink, 3)
	f := flit()
	at(s, 100, func() { ch.Inject(f) })
	s.Run()
	if len(sink.flits) != 1 || sink.flits[0] != f {
		t.Fatal("flit not delivered")
	}
	if sink.times[0] != 150 {
		t.Fatalf("delivered at %d, want 150", sink.times[0])
	}
	if sink.ports[0] != 3 {
		t.Fatalf("port = %d, want 3", sink.ports[0])
	}
	if f.SendTime != 100 || f.ReceiveTime != 150 {
		t.Fatalf("timestamps %d/%d", f.SendTime, f.ReceiveTime)
	}
	if ch.Injected() != 1 {
		t.Fatalf("Injected = %d", ch.Injected())
	}
}

func TestChannelBandwidthSpacing(t *testing.T) {
	s := sim.NewSimulator(1)
	ch := New(s, "ch", 10, 4) // one flit per 4 ticks
	sink := &flitCollector{s: s}
	ch.SetSink(sink, 0)
	at(s, 100, func() {
		ch.Inject(flit())
		if ch.Available(100) {
			t.Error("channel should be busy at injection tick")
		}
		if got := ch.NextSlot(100); got != 104 {
			t.Errorf("NextSlot = %d, want 104", got)
		}
	})
	at(s, 104, func() { ch.Inject(flit()) })
	s.Run()
	if len(sink.flits) != 2 {
		t.Fatalf("delivered %d flits", len(sink.flits))
	}
	if sink.times[0] != 110 || sink.times[1] != 114 {
		t.Fatalf("delivery times %v", sink.times)
	}
}

func TestChannelBandwidthViolationPanics(t *testing.T) {
	s := sim.NewSimulator(1)
	ch := New(s, "ch", 10, 4)
	ch.SetSink(&flitCollector{s: s}, 0)
	panicked := false
	at(s, 100, func() { ch.Inject(flit()) })
	at(s, 102, func() {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		ch.Inject(flit())
	})
	s.Run()
	if !panicked {
		t.Fatal("expected bandwidth violation panic")
	}
}

func TestChannelUnconnectedPanics(t *testing.T) {
	s := sim.NewSimulator(1)
	ch := New(s, "ch", 10, 1)
	panicked := false
	at(s, 1, func() {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		ch.Inject(flit())
	})
	s.Run()
	if !panicked {
		t.Fatal("expected unconnected panic")
	}
}

func TestChannelInvalidConstruction(t *testing.T) {
	s := sim.NewSimulator(1)
	for _, fn := range []func(){
		func() { New(s, "x", 0, 1) },
		func() { New(s, "x", 1, 0) },
		func() { NewCredit(s, "x", 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestChannelAccessors(t *testing.T) {
	s := sim.NewSimulator(1)
	ch := New(s, "ch", 25, 2)
	if ch.Latency() != 25 || ch.Period() != 2 {
		t.Fatal("accessors wrong")
	}
	if ch.NextSlot(7) != 7 {
		t.Fatal("NextSlot on idle channel should be now")
	}
	cc := NewCredit(s, "cc", 25)
	if cc.Latency() != 25 {
		t.Fatal("credit latency")
	}
}

func TestCreditChannelDelivery(t *testing.T) {
	s := sim.NewSimulator(1)
	cc := NewCredit(s, "cc", 50)
	sink := &creditCollector{s: s}
	cc.SetSink(sink, 2)
	at(s, 10, func() { cc.Inject(types.Credit{VC: 3}) })
	at(s, 11, func() { cc.Inject(types.Credit{VC: 1}) }) // no bandwidth limit
	s.Run()
	if len(sink.credits) != 2 {
		t.Fatalf("delivered %d credits", len(sink.credits))
	}
	if sink.credits[0].VC != 3 || sink.times[0] != 60 {
		t.Fatalf("credit 0 = %+v at %d", sink.credits[0], sink.times[0])
	}
	if sink.times[1] != 61 {
		t.Fatalf("credit 1 at %d", sink.times[1])
	}
}

func TestCreditChannelUnconnectedPanics(t *testing.T) {
	s := sim.NewSimulator(1)
	cc := NewCredit(s, "cc", 5)
	panicked := false
	at(s, 1, func() {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		cc.Inject(types.Credit{})
	})
	s.Run()
	if !panicked {
		t.Fatal("expected panic")
	}
}

func TestChannelPipelining(t *testing.T) {
	// Latency > period: several flits in flight simultaneously.
	s := sim.NewSimulator(1)
	ch := New(s, "ch", 100, 1)
	sink := &flitCollector{s: s}
	ch.SetSink(sink, 0)
	for i := sim.Tick(0); i < 10; i++ {
		tick := 10 + i
		at(s, tick, func() { ch.Inject(flit()) })
	}
	s.Run()
	if len(sink.flits) != 10 {
		t.Fatalf("delivered %d", len(sink.flits))
	}
	for i, tm := range sink.times {
		if tm != 110+sim.Tick(i) {
			t.Fatalf("flit %d delivered at %d", i, tm)
		}
	}
}

func TestChannelInFlightAndCompaction(t *testing.T) {
	s := sim.NewSimulator(1)
	ch := New(s, "ch", 1000, 1) // long latency: many flits in flight
	sink := &flitCollector{s: s}
	ch.SetSink(sink, 0)
	const n = 200
	for i := sim.Tick(0); i < n; i++ {
		tick := i + 1
		at(s, tick, func() { ch.Inject(flit()) })
	}
	s.RunUntil(n + 10)
	if got := ch.InFlight(); got != n {
		t.Fatalf("InFlight = %d, want %d", got, n)
	}
	s.Run()
	if len(sink.flits) != n {
		t.Fatalf("delivered %d", len(sink.flits))
	}
	if ch.InFlight() != 0 {
		t.Fatalf("InFlight after drain = %d", ch.InFlight())
	}
	for i := 1; i < n; i++ {
		if sink.times[i] != sink.times[i-1]+1 {
			t.Fatal("delivery order corrupted by compaction")
		}
	}
}

func TestCreditChannelBurstCompaction(t *testing.T) {
	s := sim.NewSimulator(1)
	cc := NewCredit(s, "cc", 500)
	sink := &creditCollector{s: s}
	cc.SetSink(sink, 0)
	const n = 300
	for i := sim.Tick(0); i < n; i++ {
		tick := i + 1
		vc := int(i % 4)
		at(s, tick, func() { cc.Inject(types.Credit{VC: vc}) })
	}
	s.Run()
	if len(sink.credits) != n {
		t.Fatalf("delivered %d credits", len(sink.credits))
	}
	for i := 0; i < n; i++ {
		if sink.credits[i].VC != i%4 {
			t.Fatalf("credit %d VC %d, want %d (order corrupted)", i, sink.credits[i].VC, i%4)
		}
	}
}

package ssparse

import (
	"strings"
	"testing"

	"supersim/internal/telemetry"
)

const telemetryStream = `{"t":500,"comp":"ch_a","metric":"chan_flits","kind":"counter","vc":-1,"v":36,"d":36,"u":0.144}
{"t":500,"comp":"ch_b","metric":"chan_flits","kind":"counter","vc":-1}
{"t":500,"comp":"r0","metric":"vc_occupancy","kind":"gauge","vc":0,"v":3,"d":3}
{"t":500,"comp":"app0","metric":"msg_latency","kind":"hist","vc":-1,"v":10,"d":10,"m":31.5}
{"t":1000,"comp":"ch_a","metric":"chan_flits","kind":"counter","vc":-1,"v":80,"d":44,"u":0.176}
{"t":1000,"comp":"r0","metric":"vc_occupancy","kind":"gauge","vc":1,"v":2,"d":2}
`

func loadFiltered(t *testing.T, exprs ...string) []telemetry.Record {
	t.Helper()
	var filters []TelemetryFilter
	for _, e := range exprs {
		f, err := ParseTelemetryFilter(e)
		if err != nil {
			t.Fatal(err)
		}
		filters = append(filters, f)
	}
	recs, err := LoadTelemetry(strings.NewReader(telemetryStream), filters)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestTelemetryFilters(t *testing.T) {
	cases := []struct {
		exprs []string
		want  int
	}{
		{nil, 6},
		{[]string{"+comp=ch_"}, 3},
		{[]string{"+comp=ch_a"}, 2},
		{[]string{"+metric=vc_occupancy"}, 2},
		{[]string{"+kind=hist"}, 1},
		{[]string{"+vc=1"}, 1},
		{[]string{"+t=1000-2000"}, 2},
		{[]string{"+comp=ch_", "+t=500-500"}, 2}, // filters AND
	}
	for _, c := range cases {
		if got := len(loadFiltered(t, c.exprs...)); got != c.want {
			t.Errorf("filters %v matched %d records, want %d", c.exprs, got, c.want)
		}
	}
}

func TestTelemetryFilterErrors(t *testing.T) {
	for _, expr := range []string{"comp=x", "+comp", "+bogus=1", "+vc=abc", "+t=zz"} {
		if _, err := ParseTelemetryFilter(expr); err == nil {
			t.Errorf("ParseTelemetryFilter(%q) accepted invalid filter", expr)
		}
	}
}

func TestWriteTelemetryCSV(t *testing.T) {
	recs := loadFiltered(t, "+comp=ch_a")
	var b strings.Builder
	if err := WriteTelemetryCSV(&b, recs); err != nil {
		t.Fatal(err)
	}
	want := "t,comp,metric,kind,vc,value,delta,rate,mean\n" +
		"500,ch_a,chan_flits,counter,-1,36,36,0.144,0\n" +
		"1000,ch_a,chan_flits,counter,-1,80,44,0.176,0\n"
	if b.String() != want {
		t.Fatalf("CSV output:\n%s\nwant:\n%s", b.String(), want)
	}
}

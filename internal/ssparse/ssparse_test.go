package ssparse

import (
	"bytes"
	"strings"
	"testing"

	"supersim/internal/stats"
)

func fixture() []stats.Sample {
	return []stats.Sample{
		{App: 0, Src: 1, Dst: 2, Start: 100, End: 250, Flits: 1, Hops: 3},
		{App: 0, Src: 2, Dst: 3, Start: 600, End: 900, Flits: 4, Hops: 5, NonMinimal: true},
		{App: 1, Src: 3, Dst: 1, Start: 700, End: 1500, Flits: 2, Hops: 2},
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, fixture()); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := fixture()
	if len(got) != len(want) {
		t.Fatalf("got %d samples", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestParseSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\nM 0 0 1 2 10 20 1 2 0\n"
	got, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Start != 10 {
		t.Fatalf("got %+v", got)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"X 1 2 3\n",                      // unknown record
		"M 0 0 1 2 10 20 1 2\n",          // short line
		"M 0 0 1 2 10 twenty 1 2 0\n",    // bad number
		"M 0 0 1 2 10 20 1 2 0 extras\n", // long line
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestFilterApp(t *testing.T) {
	f, err := ParseFilter("+app=0")
	if err != nil {
		t.Fatal(err)
	}
	rec := Apply(fixture(), []Filter{f})
	if rec.Count() != 2 {
		t.Fatalf("app=0 kept %d", rec.Count())
	}
}

func TestFilterSendRange(t *testing.T) {
	f, err := ParseFilter("+send=500-1000")
	if err != nil {
		t.Fatal(err)
	}
	rec := Apply(fixture(), []Filter{f})
	if rec.Count() != 2 {
		t.Fatalf("send range kept %d", rec.Count())
	}
}

func TestFilterCombination(t *testing.T) {
	f1, _ := ParseFilter("+send=500-1000")
	f2, _ := ParseFilter("+app=1")
	rec := Apply(fixture(), []Filter{f1, f2})
	if rec.Count() != 1 {
		t.Fatalf("combined filters kept %d", rec.Count())
	}
	if rec.Samples()[0].Src != 3 {
		t.Fatal("wrong survivor")
	}
}

func TestFilterFields(t *testing.T) {
	cases := map[string]int{
		"+src=2":     1,
		"+dst=1":     1,
		"+recv=900":  1,
		"+hops=2-3":  2,
		"+nonmin=1":  1,
		"+nonmin=0":  2,
		"+app=0-1":   3,
		"+send=9999": 0,
	}
	for expr, want := range cases {
		f, err := ParseFilter(expr)
		if err != nil {
			t.Fatalf("%s: %v", expr, err)
		}
		if got := Apply(fixture(), []Filter{f}).Count(); got != want {
			t.Errorf("%s kept %d, want %d", expr, got, want)
		}
	}
}

func TestFilterParseErrors(t *testing.T) {
	for _, bad := range []string{
		"app=0",     // missing +
		"+app",      // missing =
		"+bogus=1",  // unknown field
		"+app=x",    // bad number
		"+send=9-1", // inverted range
		"+send=1-x", // bad range end
		"+send=x-2", // bad range start
	} {
		if _, err := ParseFilter(bad); err == nil {
			t.Errorf("ParseFilter(%q) should fail", bad)
		}
	}
}

func TestApplyYieldsRecorderStats(t *testing.T) {
	rec := Apply(fixture(), nil)
	if rec.Count() != 3 {
		t.Fatal("no-filter apply should keep everything")
	}
	if rec.Mean() <= 0 {
		t.Fatal("recorder stats unusable")
	}
}

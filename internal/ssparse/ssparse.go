// Package ssparse implements the transaction log format and its parsing
// engine. During the sampling window a simulation logs network transaction
// information; ssparse reads that format back, applies user filters, and
// produces latency information for plotting and analysis — mirroring the
// SSParse tool of the original ecosystem.
//
// The log is line oriented: one "M" record per sampled message:
//
//	M <index> <app> <src> <dst> <start> <end> <flits> <hops> <nonmin>
//
// Filters use the +field=value syntax, for example "+app=0" keeps only
// application 0's traffic and "+send=500-1000" keeps messages sent in
// [500, 1000]. Multiple filters are ANDed.
package ssparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"supersim/internal/sim"
	"supersim/internal/stats"
)

// Write emits the transaction log for a set of samples.
func Write(w io.Writer, samples []stats.Sample) error {
	bw := bufio.NewWriter(w)
	for i, s := range samples {
		nonmin := 0
		if s.NonMinimal {
			nonmin = 1
		}
		if _, err := fmt.Fprintf(bw, "M %d %d %d %d %d %d %d %d %d\n",
			i, s.App, s.Src, s.Dst, s.Start, s.End, s.Flits, s.Hops, nonmin); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Parse reads a transaction log back into samples.
func Parse(r io.Reader) ([]stats.Sample, error) {
	var out []stats.Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] != "M" {
			return nil, fmt.Errorf("ssparse: line %d: unknown record %q", lineNo, fields[0])
		}
		if len(fields) != 10 {
			return nil, fmt.Errorf("ssparse: line %d: want 10 fields, got %d", lineNo, len(fields))
		}
		n := make([]uint64, 9)
		for i := 1; i < 10; i++ {
			v, err := strconv.ParseUint(fields[i], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("ssparse: line %d field %d: %v", lineNo, i, err)
			}
			n[i-1] = v
		}
		out = append(out, stats.Sample{
			App: int(n[1]), Src: int(n[2]), Dst: int(n[3]),
			Start: sim.Tick(n[4]), End: sim.Tick(n[5]),
			Flits: int(n[6]), Hops: int(n[7]), NonMinimal: n[8] != 0,
		})
	}
	return out, sc.Err()
}

// Filter is one predicate over samples.
type Filter func(s stats.Sample) bool

// ParseFilter compiles a "+field=value" filter expression. Supported fields:
// app, src, dst, send (start time), recv (end time), hops, nonmin. Numeric
// fields accept a single value or an inclusive lo-hi range.
func ParseFilter(expr string) (Filter, error) {
	body, ok := strings.CutPrefix(expr, "+")
	if !ok {
		return nil, fmt.Errorf("ssparse: filter %q must start with '+'", expr)
	}
	field, val, ok := strings.Cut(body, "=")
	if !ok {
		return nil, fmt.Errorf("ssparse: filter %q must contain '='", expr)
	}
	lo, hi, err := parseRange(val)
	if err != nil {
		return nil, fmt.Errorf("ssparse: filter %q: %v", expr, err)
	}
	pick := func(get func(stats.Sample) uint64) Filter {
		return func(s stats.Sample) bool {
			v := get(s)
			return v >= lo && v <= hi
		}
	}
	switch field {
	case "app":
		return pick(func(s stats.Sample) uint64 { return uint64(s.App) }), nil
	case "src":
		return pick(func(s stats.Sample) uint64 { return uint64(s.Src) }), nil
	case "dst":
		return pick(func(s stats.Sample) uint64 { return uint64(s.Dst) }), nil
	case "send":
		return pick(func(s stats.Sample) uint64 { return uint64(s.Start) }), nil
	case "recv":
		return pick(func(s stats.Sample) uint64 { return uint64(s.End) }), nil
	case "hops":
		return pick(func(s stats.Sample) uint64 { return uint64(s.Hops) }), nil
	case "nonmin":
		return pick(func(s stats.Sample) uint64 {
			if s.NonMinimal {
				return 1
			}
			return 0
		}), nil
	default:
		return nil, fmt.Errorf("ssparse: unknown filter field %q", field)
	}
}

func parseRange(val string) (lo, hi uint64, err error) {
	if a, b, ok := strings.Cut(val, "-"); ok {
		lo, err = strconv.ParseUint(a, 10, 64)
		if err != nil {
			return 0, 0, err
		}
		hi, err = strconv.ParseUint(b, 10, 64)
		if err != nil {
			return 0, 0, err
		}
		if hi < lo {
			return 0, 0, fmt.Errorf("range %q is inverted", val)
		}
		return lo, hi, nil
	}
	lo, err = strconv.ParseUint(val, 10, 64)
	return lo, lo, err
}

// Apply returns the samples passing all filters, loading them into a fresh
// recorder for aggregation.
func Apply(samples []stats.Sample, filters []Filter) *stats.Recorder {
	rec := stats.NewRecorder()
	for _, s := range samples {
		ok := true
		for _, f := range filters {
			if !f(s) {
				ok = false
				break
			}
		}
		if ok {
			rec.Record(s)
		}
	}
	return rec
}

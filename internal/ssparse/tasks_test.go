package ssparse

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"supersim/internal/taskrun"
)

func taskFixtureJournal(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	clock := taskrun.FixedClock(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC), time.Millisecond)
	j := taskrun.NewJournal(&buf, clock)
	r := taskrun.NewRunner(map[string]int{"cpu": 1})
	r.SetProbe(j)
	a := r.Task("sim_a", func() error { return nil }).Require("cpu", 1)
	b := r.Task("sim_b", func() error { return nil }).Require("cpu", 1)
	r.Task("parse", func() error { return errors.New("boom") }).After(a, b)
	r.Run()
	return &buf
}

func TestLoadTasksTimelines(t *testing.T) {
	log, err := LoadTasks(taskFixtureJournal(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Tasks) != 3 {
		t.Fatalf("tasks %+v", log.Tasks)
	}
	// Queue order is registration order.
	for i, want := range []string{"sim_a", "sim_b", "parse"} {
		if log.Tasks[i].Task != want {
			t.Fatalf("task order %+v", log.Tasks)
		}
	}
	b := log.Tasks[1]
	if b.State != "succeeded" || b.Resource != "cpu" || b.BlockedMS <= 0 {
		t.Fatalf("sim_b resource-wait attribution: %+v", b)
	}
	if b.QueuedMS < 0 || b.ReadyMS < b.QueuedMS || b.StartedMS < b.ReadyMS || b.FinishedMS < b.StartedMS {
		t.Fatalf("sim_b timeline out of order: %+v", b)
	}
	p := log.Tasks[2]
	if p.State != "failed" || p.Err != "boom" || p.RunMS <= 0 {
		t.Fatalf("parse timeline %+v", p)
	}
	if log.Done == nil || log.Done.Succeeded != 2 || log.Done.Failed != 1 {
		t.Fatalf("done event %+v", log.Done)
	}
	if log.SpanMS() != log.Done.WallMS {
		t.Fatalf("span %d != wall %d", log.SpanMS(), log.Done.WallMS)
	}
}

func TestLoadTasksWithoutDoneEvent(t *testing.T) {
	// A journal truncated before the done line (crashed sweep) still loads;
	// the span falls back to the latest event offset.
	full := taskFixtureJournal(t).String()
	lines := strings.Split(strings.TrimSuffix(full, "\n"), "\n")
	truncated := strings.Join(lines[:len(lines)-1], "\n") + "\n"
	log, err := LoadTasks(strings.NewReader(truncated))
	if err != nil {
		t.Fatal(err)
	}
	if log.Done != nil {
		t.Fatal("done event survived truncation")
	}
	if log.SpanMS() <= 0 {
		t.Fatalf("span fallback %d", log.SpanMS())
	}
}

func TestWriteTasksCSVMarksUnreachedPhases(t *testing.T) {
	var buf bytes.Buffer
	log := &TaskLog{Tasks: []TaskTimeline{{
		Task: "plot", State: "canceled",
		QueuedMS: 4, ReadyMS: -1, StartedMS: -1, FinishedMS: 18,
		WaitMS: -1, BlockedMS: -1, RunMS: -1,
	}}}
	if err := log.WriteTasksCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "plot,canceled,,4,-1,-1,18,-1,-1,-1\n"
	if !strings.HasSuffix(buf.String(), want) {
		t.Fatalf("csv:\n%s", buf.String())
	}
}

package ssparse

import (
	"bufio"
	"fmt"
	"io"

	"supersim/internal/taskrun"
)

// TaskTimeline is one task's lifecycle reconstructed from a task event
// journal (supersim's taskrun JSONL, written by sssweep -journal). All
// millisecond fields are offsets from the journal start; -1 marks a phase the
// task never reached (a canceled task never starts, a skipped task never
// blocks).
type TaskTimeline struct {
	Task     string
	State    string // succeeded | failed | skipped | canceled
	Resource string // last resource the task was observed blocked on
	Err      string

	QueuedMS   int64
	ReadyMS    int64
	StartedMS  int64
	FinishedMS int64

	WaitMS    int64 // ready -> started
	BlockedMS int64 // blocked -> started (resource wait attribution)
	RunMS     int64 // started -> finished

	Res map[string]int // resource demand, from the queued event
}

// TaskLog is a fully parsed task event journal: the header, one timeline per
// task in queue (registration) order, and the run's closing summary event
// when present.
type TaskLog struct {
	Header taskrun.JournalHeader
	Tasks  []TaskTimeline
	Done   *taskrun.JournalEvent
}

// SpanMS returns the journal time span covered by the log: the done event's
// wall clock when present, else the latest event offset seen.
func (l *TaskLog) SpanMS() int64 {
	if l.Done != nil {
		return l.Done.WallMS
	}
	span := int64(0)
	for _, tl := range l.Tasks {
		for _, t := range []int64{tl.QueuedMS, tl.ReadyMS, tl.StartedMS, tl.FinishedMS} {
			if t > span {
				span = t
			}
		}
	}
	return span
}

// LoadTasks parses a task event journal into per-task timelines.
func LoadTasks(r io.Reader) (*TaskLog, error) {
	hdr, events, err := taskrun.ReadJournal(r)
	if err != nil {
		return nil, err
	}
	log := &TaskLog{Header: hdr}
	index := map[string]int{}
	timeline := func(name string) *TaskTimeline {
		if i, ok := index[name]; ok {
			return &log.Tasks[i]
		}
		index[name] = len(log.Tasks)
		log.Tasks = append(log.Tasks, TaskTimeline{
			Task:     name,
			QueuedMS: -1, ReadyMS: -1, StartedMS: -1, FinishedMS: -1,
			WaitMS: -1, BlockedMS: -1, RunMS: -1,
		})
		return &log.Tasks[len(log.Tasks)-1]
	}
	for i, ev := range events {
		switch ev.Ev {
		case "queued":
			tl := timeline(ev.Task)
			tl.QueuedMS = ev.T
			tl.Res = ev.Res
		case "ready":
			timeline(ev.Task).ReadyMS = ev.T
		case "blocked":
			timeline(ev.Task).Resource = ev.Resource
		case "started":
			tl := timeline(ev.Task)
			tl.StartedMS = ev.T
			tl.WaitMS = ev.WaitMS
			if ev.BlockedMS > 0 {
				tl.BlockedMS = ev.BlockedMS
			}
		case "finished":
			tl := timeline(ev.Task)
			tl.FinishedMS = ev.T
			tl.State = ev.State
			tl.Err = ev.Err
			if tl.StartedMS >= 0 {
				tl.RunMS = ev.RunMS
			}
		case "done":
			log.Done = &events[i]
		}
	}
	return log, nil
}

// WriteTasksCSV emits one row per task in queue order: the timeline offsets
// and the derived durations, -1 for phases never reached.
func (l *TaskLog) WriteTasksCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw,
		"task,state,resource,queued_ms,ready_ms,started_ms,finished_ms,wait_ms,blocked_ms,run_ms"); err != nil {
		return err
	}
	for _, tl := range l.Tasks {
		if _, err := fmt.Fprintf(bw, "%s,%s,%s,%d,%d,%d,%d,%d,%d,%d\n",
			tl.Task, tl.State, tl.Resource,
			tl.QueuedMS, tl.ReadyMS, tl.StartedMS, tl.FinishedMS,
			tl.WaitMS, tl.BlockedMS, tl.RunMS); err != nil {
			return err
		}
	}
	return bw.Flush()
}

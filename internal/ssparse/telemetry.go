package ssparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"supersim/internal/telemetry"
)

// Telemetry JSONL support: the snapshot stream written by the telemetry
// subsystem (simulation.telemetry.snapshot_file / -telemetry-file) is read
// back here with the same +field=value filter idiom as transaction logs, for
// extraction into CSV and for ssplot's telemetry plot kinds.
//
// Supported filters:
//
//	+comp=<prefix>   keep components whose name starts with the prefix
//	+metric=<name>   keep one metric by exact name
//	+kind=<kind>     keep counter | gauge | hist records
//	+vc=<n>          keep one VC index
//	+t=<lo>-<hi>     keep bins whose end tick is in [lo, hi]
//
// Filters are ANDed, matching the transaction-log behavior.

// TelemetryFilter is a predicate over one snapshot record.
type TelemetryFilter func(telemetry.Record) bool

// ParseTelemetryFilter parses one +field=value expression.
func ParseTelemetryFilter(expr string) (TelemetryFilter, error) {
	body, ok := strings.CutPrefix(expr, "+")
	if !ok {
		return nil, fmt.Errorf("ssparse: filter %q must start with '+'", expr)
	}
	field, val, ok := strings.Cut(body, "=")
	if !ok {
		return nil, fmt.Errorf("ssparse: filter %q must be +field=value", expr)
	}
	switch field {
	case "comp":
		return func(r telemetry.Record) bool { return strings.HasPrefix(r.Comp, val) }, nil
	case "metric":
		return func(r telemetry.Record) bool { return r.Metric == val }, nil
	case "kind":
		return func(r telemetry.Record) bool { return r.Kind == val }, nil
	case "vc":
		vc, err := strconv.Atoi(val)
		if err != nil {
			return nil, fmt.Errorf("ssparse: filter %q: %v", expr, err)
		}
		return func(r telemetry.Record) bool { return r.VC == vc }, nil
	case "t":
		lo, hi, err := parseRange(val)
		if err != nil {
			return nil, fmt.Errorf("ssparse: filter %q: %v", expr, err)
		}
		return func(r telemetry.Record) bool { return r.T >= lo && r.T <= hi }, nil
	}
	return nil, fmt.Errorf("ssparse: unknown telemetry filter field %q (have comp, metric, kind, vc, t)", field)
}

// LoadTelemetry reads a telemetry JSONL stream and returns the records
// passing every filter, in file order.
func LoadTelemetry(r io.Reader, filters []TelemetryFilter) ([]telemetry.Record, error) {
	var out []telemetry.Record
	err := telemetry.ReadRecords(r, func(rec telemetry.Record) error {
		for _, f := range filters {
			if !f(rec) {
				return nil
			}
		}
		out = append(out, rec)
		return nil
	})
	return out, err
}

// WriteTelemetryCSV emits records as CSV with a header row, one line per
// record, suitable for spreadsheet or pandas analysis.
func WriteTelemetryCSV(w io.Writer, recs []telemetry.Record) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "t,comp,metric,kind,vc,value,delta,rate,mean"); err != nil {
		return err
	}
	for _, r := range recs {
		if _, err := fmt.Fprintf(bw, "%d,%s,%s,%s,%d,%g,%g,%g,%g\n",
			r.T, r.Comp, r.Metric, r.Kind, r.VC, r.V, r.D, r.U, r.M); err != nil {
			return err
		}
	}
	return bw.Flush()
}

package ssparse

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"supersim/internal/telemetry"
)

// Spans JSONL support: the latency-decomposition stream written by the span
// recorder (simulation.telemetry.spans_file / supersim -spans) is aggregated
// here into per-app, per-hop, per-component distributions — the offline
// counterpart of the online span_* histograms — for the ssparse -spans report
// and ssplot's breakdown plot kind.

// Dist accumulates one component's latency observations and answers
// count/mean/percentile queries. Observations are kept raw (span streams are
// sampled, so cardinality is modest) and sorted lazily.
type Dist struct {
	vals   []uint64
	sum    uint64
	sorted bool
}

// Observe adds one latency observation.
func (d *Dist) Observe(v uint64) {
	d.vals = append(d.vals, v)
	d.sum += v
	d.sorted = false
}

// Count returns the number of observations.
func (d *Dist) Count() int { return len(d.vals) }

// Sum returns the total of all observations.
func (d *Dist) Sum() uint64 { return d.sum }

// Mean returns the average observation, or 0 when empty.
func (d *Dist) Mean() float64 {
	if len(d.vals) == 0 {
		return 0
	}
	return float64(d.sum) / float64(len(d.vals))
}

// Percentile returns the p-th percentile (0..100) by floor rank — the
// largest observation at or below the requested rank — or 0 when empty.
func (d *Dist) Percentile(p float64) uint64 {
	if len(d.vals) == 0 {
		return 0
	}
	if !d.sorted {
		sort.Slice(d.vals, func(i, j int) bool { return d.vals[i] < d.vals[j] })
		d.sorted = true
	}
	rank := int(p / 100 * float64(len(d.vals)-1))
	return d.vals[rank]
}

// HopSpans aggregates the five pipeline components of one hop position.
type HopSpans struct {
	VCAlloc, SWAlloc, Xbar, Output, Wire Dist
}

// components iterates the hop's distributions in canonical order.
func (h *HopSpans) components() []struct {
	name string
	d    *Dist
} {
	return []struct {
		name string
		d    *Dist
	}{
		{"vc_alloc", &h.VCAlloc}, {"sw_alloc", &h.SWAlloc},
		{"xbar", &h.Xbar}, {"output", &h.Output}, {"wire", &h.Wire},
	}
}

// AppSpans aggregates one traffic class. Hops is indexed by hop position:
// index 0 is the source interface (only Wire populated), 1..N are routers.
type AppSpans struct {
	Queue, Eject, E2E Dist
	Hops              []*HopSpans
}

func (a *AppSpans) hop(i int) *HopSpans {
	for len(a.Hops) <= i {
		a.Hops = append(a.Hops, &HopSpans{})
	}
	return a.Hops[i]
}

// SpanAgg is the full aggregation of one spans stream.
type SpanAgg struct {
	Header  telemetry.SpanHeader
	Records int
	Apps    map[int]*AppSpans
}

// appIDs returns the traffic classes present, sorted.
func (a *SpanAgg) appIDs() []int {
	ids := make([]int, 0, len(a.Apps))
	for id := range a.Apps {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// LoadSpans reads and aggregates a spans JSONL stream. Every record's
// exactness invariant (components sum to the end-to-end latency) is
// re-verified on load, so a corrupted or hand-edited stream fails loudly.
func LoadSpans(r io.Reader) (*SpanAgg, error) {
	agg := &SpanAgg{Apps: map[int]*AppSpans{}}
	hdr, err := telemetry.ReadSpans(r, func(rec telemetry.SpanRecord) error {
		if got := rec.ComponentSum(); got != rec.E2E {
			return fmt.Errorf("ssparse: span record for message %d is not exact: components sum to %d, e2e is %d",
				rec.Msg, got, rec.E2E)
		}
		agg.Records++
		app := agg.Apps[rec.App]
		if app == nil {
			app = &AppSpans{}
			agg.Apps[rec.App] = app
		}
		app.Queue.Observe(rec.Queue)
		app.Eject.Observe(rec.Eject)
		app.E2E.Observe(rec.E2E)
		for i := range rec.PerHop {
			h := app.hop(i)
			ph := &rec.PerHop[i]
			h.Wire.Observe(ph.Wire)
			if i == 0 {
				continue // the source interface has no router pipeline stages
			}
			h.VCAlloc.Observe(ph.VCAlloc)
			h.SWAlloc.Observe(ph.SWAlloc)
			h.Xbar.Observe(ph.Xbar)
			h.Output.Observe(ph.Output)
		}
		return nil
	})
	agg.Header = hdr
	if err != nil {
		return nil, err
	}
	return agg, nil
}

// hopLabel names a hop position for reports: the source interface, then
// router positions by number.
func hopLabel(i int) string {
	if i == 0 {
		return "src"
	}
	return fmt.Sprintf("%d", i)
}

// WriteTable renders the per-app latency decomposition as a human-readable
// report: one stacked per-hop table of mean component latencies plus
// distribution lines for the hop-independent components.
func (a *SpanAgg) WriteTable(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "spans: %d records at sample fraction %g\n", a.Records, a.Header.Sample)
	for _, id := range a.appIDs() {
		app := a.Apps[id]
		fmt.Fprintf(bw, "app %d: e2e mean=%.1f p50=%d p99=%d (%d spans)\n",
			id, app.E2E.Mean(), app.E2E.Percentile(50), app.E2E.Percentile(99), app.E2E.Count())
		fmt.Fprintf(bw, "  queue mean=%.1f p50=%d p99=%d   eject mean=%.1f p50=%d p99=%d\n",
			app.Queue.Mean(), app.Queue.Percentile(50), app.Queue.Percentile(99),
			app.Eject.Mean(), app.Eject.Percentile(50), app.Eject.Percentile(99))
		fmt.Fprintf(bw, "  %4s %9s %9s %9s %9s %9s %9s\n",
			"hop", "vc_alloc", "sw_alloc", "xbar", "output", "wire", "total")
		for i, h := range app.Hops {
			total := h.VCAlloc.Mean() + h.SWAlloc.Mean() + h.Xbar.Mean() + h.Output.Mean() + h.Wire.Mean()
			fmt.Fprintf(bw, "  %4s %9.1f %9.1f %9.1f %9.1f %9.1f %9.1f\n",
				hopLabel(i), h.VCAlloc.Mean(), h.SWAlloc.Mean(), h.Xbar.Mean(),
				h.Output.Mean(), h.Wire.Mean(), total)
		}
	}
	return bw.Flush()
}

// WriteSpansCSV emits the aggregation as CSV, one row per (app, hop,
// component) cell plus the hop-independent queue/eject/e2e rows.
func (a *SpanAgg) WriteSpansCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "app,hop,component,count,mean,p50,p99"); err != nil {
		return err
	}
	row := func(app int, hop, comp string, d *Dist) {
		fmt.Fprintf(bw, "%d,%s,%s,%d,%g,%d,%d\n",
			app, hop, comp, d.Count(), d.Mean(), d.Percentile(50), d.Percentile(99))
	}
	for _, id := range a.appIDs() {
		app := a.Apps[id]
		row(id, "src", "queue", &app.Queue)
		for i, h := range app.Hops {
			for _, c := range h.components() {
				if i == 0 && c.name != "wire" {
					continue
				}
				row(id, hopLabel(i), c.name, c.d)
			}
		}
		row(id, "dst", "eject", &app.Eject)
		row(id, "all", "e2e", &app.E2E)
	}
	return bw.Flush()
}

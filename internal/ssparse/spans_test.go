package ssparse

import (
	"bytes"
	"strings"
	"testing"
)

const spansStream = `{"schema":"supersim-spans","version":1,"sample":0.5}
{"msg":1,"app":0,"src":0,"dst":5,"hops":2,"e2e":20,"queue":5,"eject":1,"perhop":[{"wire":2},{"vc":1,"sw":1,"xbar":2,"wire":4},{"xbar":2,"out":1,"wire":1}]}
{"msg":3,"app":0,"src":1,"dst":6,"hops":2,"e2e":30,"queue":9,"eject":3,"perhop":[{"wire":2},{"vc":3,"sw":1,"xbar":2,"wire":4},{"xbar":2,"out":3,"wire":1}]}
{"msg":4,"app":1,"src":2,"dst":7,"hops":1,"e2e":12,"queue":2,"eject":2,"perhop":[{"wire":2},{"vc":1,"xbar":2,"wire":3}]}
`

func TestDistStatistics(t *testing.T) {
	var d Dist
	if d.Count() != 0 || d.Mean() != 0 || d.Percentile(50) != 0 {
		t.Fatal("empty Dist must answer zeros")
	}
	for _, v := range []uint64{4, 2, 8, 6} {
		d.Observe(v)
	}
	if d.Count() != 4 || d.Sum() != 20 || d.Mean() != 5 {
		t.Fatalf("count %d sum %d mean %g", d.Count(), d.Sum(), d.Mean())
	}
	if p := d.Percentile(0); p != 2 {
		t.Fatalf("p0 = %d, want 2", p)
	}
	if p := d.Percentile(50); p != 4 {
		t.Fatalf("p50 = %d, want 4 (floor rank)", p)
	}
	if p := d.Percentile(100); p != 8 {
		t.Fatalf("p100 = %d, want 8", p)
	}
	d.Observe(100) // observing after a percentile query must re-sort
	if p := d.Percentile(100); p != 100 {
		t.Fatalf("p100 after new observation = %d, want 100", p)
	}
}

func TestLoadSpansAggregates(t *testing.T) {
	agg, err := LoadSpans(strings.NewReader(spansStream))
	if err != nil {
		t.Fatal(err)
	}
	if agg.Records != 3 || agg.Header.Sample != 0.5 {
		t.Fatalf("records %d sample %g", agg.Records, agg.Header.Sample)
	}
	if len(agg.Apps) != 2 {
		t.Fatalf("apps = %d, want 2", len(agg.Apps))
	}
	a0 := agg.Apps[0]
	if a0.E2E.Count() != 2 || a0.E2E.Mean() != 25 {
		t.Fatalf("app 0 e2e count %d mean %g", a0.E2E.Count(), a0.E2E.Mean())
	}
	if a0.Queue.Sum() != 14 || a0.Eject.Sum() != 4 {
		t.Fatalf("app 0 queue %d eject %d", a0.Queue.Sum(), a0.Eject.Sum())
	}
	if len(a0.Hops) != 3 {
		t.Fatalf("app 0 has %d hop positions, want 3", len(a0.Hops))
	}
	// Hop 0 is the source interface: only the wire is observed.
	if a0.Hops[0].Wire.Sum() != 4 || a0.Hops[0].VCAlloc.Count() != 0 {
		t.Fatalf("hop 0: wire %d vc count %d", a0.Hops[0].Wire.Sum(), a0.Hops[0].VCAlloc.Count())
	}
	if a0.Hops[1].VCAlloc.Sum() != 4 || a0.Hops[1].SWAlloc.Sum() != 2 || a0.Hops[2].Output.Sum() != 4 {
		t.Fatalf("hop sums wrong: %+v", a0.Hops)
	}
	a1 := agg.Apps[1]
	if a1.E2E.Count() != 1 || len(a1.Hops) != 2 {
		t.Fatalf("app 1: %d spans, %d hops", a1.E2E.Count(), len(a1.Hops))
	}
}

func TestLoadSpansRejectsInexactRecord(t *testing.T) {
	bad := `{"schema":"supersim-spans","version":1,"sample":1}
{"msg":9,"app":0,"src":0,"dst":1,"hops":1,"e2e":99,"queue":5,"eject":1,"perhop":[{"wire":2},{"wire":4}]}
`
	if _, err := LoadSpans(strings.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "not exact") {
		t.Fatalf("inexact record accepted: %v", err)
	}
}

func TestLoadSpansRejectsWrongSchema(t *testing.T) {
	if _, err := LoadSpans(strings.NewReader(`{"schema":"other","version":1}` + "\n")); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

func TestWriteTable(t *testing.T) {
	agg, err := LoadSpans(strings.NewReader(spansStream))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := agg.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"3 records at sample fraction 0.5",
		"app 0: e2e mean=25.0",
		"app 1: e2e mean=12.0",
		"queue mean=7.0",
		"src",
		"vc_alloc",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestWriteSpansCSV(t *testing.T) {
	agg, err := LoadSpans(strings.NewReader(spansStream))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := agg.WriteSpansCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "app,hop,component,count,mean,p50,p99" {
		t.Fatalf("header = %q", lines[0])
	}
	for _, want := range []string{
		"0,src,queue,2,7,5,5",
		"0,src,wire,2,2,2,2",
		"0,1,vc_alloc,2,2,1,1",
		"0,2,output,2,2,1,1",
		"0,dst,eject,2,2,1,1",
		"0,all,e2e,2,25,20,20",
		"1,all,e2e,1,12,12,12",
	} {
		found := false
		for _, l := range lines {
			if l == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("CSV missing row %q:\n%s", want, buf.String())
		}
	}
	// Hop 0 must emit only queue and wire rows, no pipeline stages.
	for _, l := range lines {
		if strings.HasPrefix(l, "0,src,") &&
			!strings.HasPrefix(l, "0,src,queue,") && !strings.HasPrefix(l, "0,src,wire,") {
			t.Errorf("unexpected source-hop row %q", l)
		}
	}
}

// Package manifest records run provenance: a versioned JSON document that
// ties every artifact a simulation produced (telemetry snapshots, traces,
// spans, transaction logs, checkpoints) back to exactly what produced it —
// the canonical hash of the settings document, the seed, the worker count,
// the schema versions of every stream format, and the SHA-256 digest of each
// output file. Sweeps write one manifest per permutation, which is the
// foundation the resumable-sweep roadmap item builds on: a point whose
// config hash and artifact digests already exist needs no re-simulation.
//
// Wall-clock fields (started_at, wall_sec) are the only non-deterministic
// content; they are omitted when unset, so manifests written with them unset
// (as the sweep does) are byte-identical across runs.
package manifest

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"supersim/internal/config"
	"supersim/internal/snapshot"
	"supersim/internal/taskrun"
	"supersim/internal/telemetry"
)

// Manifest schema: Schema names the document type, Version its layout. Bump
// Version on any incompatible field change; Load rejects mismatches.
const (
	Schema  = "supersim-manifest"
	Version = 1
)

// Artifact describes one output file of a run. Path is the file's base name
// — manifests sit next to their artifacts, and relative names keep the
// document independent of where the run directory lands.
type Artifact struct {
	Role   string `json:"role"` // log | telemetry | trace | spans | checkpoint
	Path   string `json:"path"`
	SHA256 string `json:"sha256"`
	Bytes  int64  `json:"bytes"`
}

// Manifest is one run's provenance record.
type Manifest struct {
	Schema     string `json:"schema"`
	Version    int    `json:"version"`
	ConfigHash string `json:"config_hash"` // sha256 of the canonical settings JSON
	Seed       uint64 `json:"seed"`
	Workers    uint64 `json:"workers"`

	// Flags are the command-line flags explicitly set on the producing
	// invocation, name to rendered value.
	Flags map[string]string `json:"flags,omitempty"`
	// Labels carry free-form provenance, e.g. a sweep point's id and its
	// variable assignments.
	Labels map[string]string `json:"labels,omitempty"`
	// SchemaVersions pins the version of every stream format the run could
	// have produced, so a reader knows up front whether it can parse the
	// artifacts.
	SchemaVersions map[string]int `json:"schema_versions"`

	SimTicks uint64 `json:"sim_ticks"`
	Events   uint64 `json:"events"`

	// StartedAt (RFC3339) and WallSec are wall-clock readings — the one
	// documented non-deterministic content. Zero values are omitted.
	StartedAt string  `json:"started_at,omitempty"`
	WallSec   float64 `json:"wall_sec,omitempty"`

	// Metrics are the run's final key numbers (latency summary, accepted
	// load, sample counts), keyed by metric name.
	Metrics map[string]float64 `json:"metrics,omitempty"`

	Artifacts []Artifact `json:"artifacts,omitempty"`
}

// HashConfig returns the canonical hash of a settings document: SHA-256 over
// its normalized JSON rendering. Settings.JSON sorts object keys, so two
// documents with the same content hash identically regardless of key order
// or the path that built them.
func HashConfig(cfg *config.Settings) string {
	sum := sha256.Sum256([]byte(cfg.JSON()))
	return hex.EncodeToString(sum[:])
}

// New creates a manifest for a run of cfg, filling the schema header, the
// config hash, seed and worker count, and the stream schema versions. The
// caller adds timings, metrics and artifacts.
func New(cfg *config.Settings) *Manifest {
	return &Manifest{
		Schema:     Schema,
		Version:    Version,
		ConfigHash: HashConfig(cfg),
		Seed:       cfg.UIntOr("simulation.seed", 1),
		Workers:    cfg.UIntOr("simulation.workers", 1),
		SchemaVersions: map[string]int{
			"manifest": Version,
			"snapshot": snapshot.Version,
			"spans":    telemetry.SpanSchemaVersion,
			"tasks":    taskrun.JournalSchemaVersion,
		},
	}
}

// AddArtifact digests the file at path and appends it under role. The
// manifest stores the base name; call after the artifact is fully written.
func (m *Manifest) AddArtifact(role, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("manifest: artifact %s: %w", role, err)
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return fmt.Errorf("manifest: digesting %s artifact %s: %w", role, path, err)
	}
	m.Artifacts = append(m.Artifacts, Artifact{
		Role:   role,
		Path:   filepath.Base(path),
		SHA256: hex.EncodeToString(h.Sum(nil)),
		Bytes:  n,
	})
	return nil
}

// Write renders the manifest as indented JSON.
func (m *Manifest) Write(w io.Writer) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WriteFile writes the manifest to path.
func (m *Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load parses a manifest and validates its schema header, rejecting
// documents written by an incompatible layout up front.
func Load(r io.Reader) (*Manifest, error) {
	var m Manifest
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	if m.Schema != Schema {
		return nil, fmt.Errorf("manifest: not a run manifest: schema %q, want %q", m.Schema, Schema)
	}
	if m.Version != Version {
		return nil, fmt.Errorf("manifest: incompatible manifest version %d (this reader supports %d)",
			m.Version, Version)
	}
	return &m, nil
}

// LoadFile loads a manifest from a file.
func LoadFile(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// VerifyArtifacts re-digests every artifact relative to dir and reports the
// first mismatch: a missing file, a size change, or a content change. A nil
// return means every artifact is byte-identical to what the run recorded.
func (m *Manifest) VerifyArtifacts(dir string) error {
	for _, a := range m.Artifacts {
		path := filepath.Join(dir, a.Path)
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("manifest: artifact %s (%s): %w", a.Role, a.Path, err)
		}
		h := sha256.New()
		n, err := io.Copy(h, f)
		f.Close()
		if err != nil {
			return fmt.Errorf("manifest: artifact %s (%s): %w", a.Role, a.Path, err)
		}
		if n != a.Bytes {
			return fmt.Errorf("manifest: artifact %s (%s): %d bytes, manifest records %d",
				a.Role, a.Path, n, a.Bytes)
		}
		if got := hex.EncodeToString(h.Sum(nil)); got != a.SHA256 {
			return fmt.Errorf("manifest: artifact %s (%s): content digest mismatch", a.Role, a.Path)
		}
	}
	return nil
}

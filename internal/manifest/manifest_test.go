package manifest

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"supersim/internal/config"
)

func testCfg(t *testing.T) *config.Settings {
	t.Helper()
	cfg, err := config.Parse([]byte(`{
		"simulation": {"seed": 7, "workers": 2},
		"network": {"topology": "torus"}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestHashConfigCanonical(t *testing.T) {
	// Key order must not matter: the hash is over the sorted JSON rendering.
	a, err := config.Parse([]byte(`{"simulation": {"seed": 7}, "network": {"topology": "torus"}}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := config.Parse([]byte(`{"network": {"topology": "torus"}, "simulation": {"seed": 7}}`))
	if err != nil {
		t.Fatal(err)
	}
	if HashConfig(a) != HashConfig(b) {
		t.Fatal("hash depends on key order")
	}
	c := a.Clone()
	c.Set("simulation.seed", 8)
	if HashConfig(a) == HashConfig(c) {
		t.Fatal("hash insensitive to a content change")
	}
	if len(HashConfig(a)) != 64 {
		t.Fatalf("hash %q is not sha256 hex", HashConfig(a))
	}
}

func TestNewFillsProvenance(t *testing.T) {
	m := New(testCfg(t))
	if m.Schema != Schema || m.Version != Version {
		t.Fatalf("schema header %q/%d", m.Schema, m.Version)
	}
	if m.Seed != 7 || m.Workers != 2 {
		t.Fatalf("seed/workers %d/%d", m.Seed, m.Workers)
	}
	for _, k := range []string{"manifest", "snapshot", "spans", "tasks"} {
		if m.SchemaVersions[k] == 0 {
			t.Fatalf("schema version %q missing: %v", k, m.SchemaVersions)
		}
	}
}

func TestRoundtripAndVerify(t *testing.T) {
	dir := t.TempDir()
	tel := filepath.Join(dir, "tel.jsonl")
	if err := os.WriteFile(tel, []byte("{\"t\":0}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := New(testCfg(t))
	m.SimTicks, m.Events = 1000, 42
	m.Metrics = map[string]float64{"latency_p99": 123.5}
	m.Labels = map[string]string{"point": "CL=1"}
	if err := m.AddArtifact("telemetry", tel); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "run.manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ConfigHash != m.ConfigHash || got.SimTicks != 1000 || got.Events != 42 {
		t.Fatalf("roundtrip lost fields: %+v", got)
	}
	if got.Metrics["latency_p99"] != 123.5 || got.Labels["point"] != "CL=1" {
		t.Fatalf("roundtrip lost metrics/labels: %+v", got)
	}
	if len(got.Artifacts) != 1 || got.Artifacts[0].Path != "tel.jsonl" || got.Artifacts[0].Bytes != 8 {
		t.Fatalf("artifact %+v", got.Artifacts)
	}
	if err := got.VerifyArtifacts(dir); err != nil {
		t.Fatal(err)
	}

	// Tampering must be detected: content change, then size change, then a
	// missing file.
	if err := os.WriteFile(tel, []byte("{\"t\":9}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := got.VerifyArtifacts(dir); err == nil || !strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("content tamper not detected: %v", err)
	}
	if err := os.WriteFile(tel, []byte("longer than before\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := got.VerifyArtifacts(dir); err == nil || !strings.Contains(err.Error(), "bytes") {
		t.Fatalf("size tamper not detected: %v", err)
	}
	os.Remove(tel)
	if err := got.VerifyArtifacts(dir); err == nil {
		t.Fatal("missing artifact not detected")
	}
}

func TestDeterministicBytesWithoutWallFields(t *testing.T) {
	// With wall-clock fields unset (the sweep path), two manifests of the
	// same run are byte-identical.
	render := func() []byte {
		m := New(testCfg(t))
		m.SimTicks, m.Events = 500, 10
		m.Metrics = map[string]float64{"accepted": 0.25, "latency_mean": 9}
		var buf bytes.Buffer
		if err := m.Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("manifest bytes differ:\n%s\n---\n%s", a, b)
	}
	if bytes.Contains(a, []byte("started_at")) || bytes.Contains(a, []byte("wall_sec")) {
		t.Fatal("unset wall-clock fields must be omitted")
	}
}

func TestLoadRejects(t *testing.T) {
	for name, in := range map[string]string{
		"empty":       "",
		"bad schema":  `{"schema": "other", "version": 1}`,
		"bad version": `{"schema": "supersim-manifest", "version": 99}`,
	} {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Load accepted %q", name, in)
		}
	}
}

func TestAddArtifactMissingFile(t *testing.T) {
	m := New(testCfg(t))
	if err := m.AddArtifact("log", filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("AddArtifact accepted a missing file")
	}
}

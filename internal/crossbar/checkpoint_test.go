package crossbar

import (
	"bytes"
	"strings"
	"testing"

	"supersim/internal/snapshot"
)

func TestCrossbarStateRoundTrip(t *testing.T) {
	x := New(3, 1, 4, 1)
	x.windowStart[0] = 8
	x.windowCount[0] = 2
	x.windowStart[2] = 12
	x.windowCount[2] = 1
	e := snapshot.NewEncoder()
	x.SaveState(e)
	data := e.Bytes()

	got := New(3, 1, 4, 1)
	d := snapshot.NewDecoder(data)
	if err := got.LoadState(d); err != nil {
		t.Fatal(err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left after load", d.Remaining())
	}
	if got.windowStart[0] != 8 || got.windowCount[0] != 2 || got.windowStart[2] != 12 {
		t.Fatalf("restored windows %v/%v", got.windowStart, got.windowCount)
	}
	e2 := snapshot.NewEncoder()
	got.SaveState(e2)
	if !bytes.Equal(e2.Bytes(), data) {
		t.Fatal("re-saved crossbar state is not byte-identical")
	}

	narrow := New(2, 1, 4, 1)
	if err := narrow.LoadState(snapshot.NewDecoder(data)); err == nil ||
		!strings.Contains(err.Error(), "outputs") {
		t.Fatalf("geometry mismatch: err = %v", err)
	}
	for _, n := range []int{0, len(data) / 2, len(data) - 1} {
		if err := New(3, 1, 4, 1).LoadState(snapshot.NewDecoder(data[:n])); err == nil {
			t.Fatalf("truncation to %d bytes loaded without error", n)
		}
	}
}

package crossbar

import (
	"supersim/internal/sim"
	"supersim/internal/snapshot"
)

// SaveState serializes the per-output rate-limit windows.
func (x *Crossbar) SaveState(e *snapshot.Encoder) {
	e.Int(len(x.windowStart))
	for i := range x.windowStart {
		e.U64(uint64(x.windowStart[i]))
		e.Int(x.windowCount[i])
	}
}

// LoadState restores the counterpart of SaveState onto a freshly built
// crossbar of the same geometry.
func (x *Crossbar) LoadState(d *snapshot.Decoder) error {
	n := d.Count()
	if d.Err() != nil {
		return d.Err()
	}
	if n != len(x.windowStart) {
		return d.Failf("crossbar has %d outputs, snapshot says %d", len(x.windowStart), n)
	}
	for i := 0; i < n; i++ {
		x.windowStart[i] = sim.Tick(d.U64())
		x.windowCount[i] = d.Int()
	}
	return d.Err()
}

// Package crossbar models the switch fabric datapath of a router: a latency
// for traversal plus per-output rate limiting. Schedulers decide *who* may
// traverse; the crossbar enforces *when* flits can start and when they pop
// out the far side.
package crossbar

import "supersim/internal/sim"

// Crossbar tracks traversal timing for a radix x radix switch core. An
// output accepts up to `speedup` traversal starts per period ticks; each
// traversal takes latency ticks. Full input speedup is assumed (inputs never
// conflict), matching the high-radix router models in the paper.
type Crossbar struct {
	outputs int
	latency sim.Tick
	period  sim.Tick
	speedup int

	windowStart []sim.Tick // per output: start tick of the current period window
	windowCount []int      // per output: starts consumed in the current window
}

// New creates a crossbar. latency is the traversal time in ticks; period is
// the scheduling cycle time; speedup is the number of flits an output may
// accept per period (output speedup).
func New(outputs int, latency, period sim.Tick, speedup int) *Crossbar {
	if outputs <= 0 {
		panic("crossbar: outputs must be positive")
	}
	if period == 0 {
		panic("crossbar: period must be positive")
	}
	if speedup <= 0 {
		panic("crossbar: speedup must be positive")
	}
	return &Crossbar{
		outputs:     outputs,
		latency:     latency,
		period:      period,
		speedup:     speedup,
		windowStart: make([]sim.Tick, outputs),
		windowCount: make([]int, outputs),
	}
}

// Latency returns the traversal latency in ticks.
func (x *Crossbar) Latency() sim.Tick { return x.latency }

// CanStart reports whether a traversal to the output may begin at now.
func (x *Crossbar) CanStart(now sim.Tick, output int) bool {
	x.check(output)
	w := now / x.period
	if x.windowStart[output]/x.period != w {
		return true // new window
	}
	return x.windowCount[output] < x.speedup
}

// Start begins a traversal at now and returns the arrival tick at the far
// side. It panics if the output cannot accept a start (rate violation) —
// schedulers must check CanStart first.
func (x *Crossbar) Start(now sim.Tick, output int) sim.Tick {
	if !x.CanStart(now, output) {
		panic("crossbar: output rate exceeded")
	}
	w := now / x.period
	if x.windowStart[output]/x.period != w {
		x.windowStart[output] = now
		x.windowCount[output] = 0
	}
	x.windowCount[output]++
	return now + x.latency
}

func (x *Crossbar) check(output int) {
	if output < 0 || output >= x.outputs {
		panic("crossbar: output out of range")
	}
}

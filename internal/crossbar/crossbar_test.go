package crossbar

import "testing"

func TestCrossbarLatency(t *testing.T) {
	x := New(4, 25, 10, 1)
	if x.Latency() != 25 {
		t.Fatal("latency accessor")
	}
	if got := x.Start(100, 2); got != 125 {
		t.Fatalf("arrival = %d, want 125", got)
	}
}

func TestCrossbarRateLimitPerWindow(t *testing.T) {
	x := New(2, 5, 10, 1)
	if !x.CanStart(100, 0) {
		t.Fatal("fresh output should accept")
	}
	x.Start(100, 0)
	if x.CanStart(105, 0) {
		t.Fatal("same window should be full at speedup 1")
	}
	if !x.CanStart(110, 0) {
		t.Fatal("next window should accept")
	}
	// independent outputs
	if !x.CanStart(105, 1) {
		t.Fatal("other output should be free")
	}
}

func TestCrossbarSpeedup(t *testing.T) {
	x := New(1, 5, 10, 2)
	x.Start(100, 0)
	if !x.CanStart(103, 0) {
		t.Fatal("speedup 2 should accept a second start")
	}
	x.Start(103, 0)
	if x.CanStart(107, 0) {
		t.Fatal("third start in window must be rejected")
	}
	x.Start(110, 0) // new window
}

func TestCrossbarStartPanicsWhenFull(t *testing.T) {
	x := New(1, 5, 10, 1)
	x.Start(100, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	x.Start(101, 0)
}

func TestCrossbarRangeAndCtorChecks(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 1, 1, 1) },
		func() { New(1, 1, 0, 1) },
		func() { New(1, 1, 1, 0) },
		func() { New(2, 1, 1, 1).CanStart(0, 5) },
		func() { New(2, 1, 1, 1).Start(0, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCrossbarWindowBoundaries(t *testing.T) {
	// Windows are aligned to period multiples of the start tick's window id.
	x := New(1, 0, 10, 1)
	x.Start(9, 0) // window 0
	if !x.CanStart(10, 0) {
		t.Fatal("tick 10 begins window 1")
	}
	x.Start(10, 0)
	if x.CanStart(19, 0) {
		t.Fatal("window 1 full")
	}
	if !x.CanStart(20, 0) {
		t.Fatal("window 2 free")
	}
}

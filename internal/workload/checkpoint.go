package workload

import (
	"fmt"

	"supersim/internal/sim"
	"supersim/internal/snapshot"
)

// AppStater is implemented by application models that support checkpointing.
// Application state is saved and restored by the workload in registration
// order; an application that does not implement it makes the whole
// configuration non-checkpointable.
type AppStater interface {
	SaveState(e *snapshot.Encoder)
	LoadState(d *snapshot.Decoder) error
}

// SaveState serializes the workload state machine: the handshake phase and
// per-application signal flags, the message ID allocator, pool lifecycle
// counters, and phase timestamps. Application state follows, in registration
// order.
func (w *Workload) SaveState(e *snapshot.Encoder) {
	w.SaveOrder(e)
	e.Int(int(w.phase))
	e.Int(len(w.apps))
	for i := range w.apps {
		e.Bool(w.ready[i])
		e.Bool(w.complete[i])
		e.Bool(w.done[i])
	}
	e.Int(w.pending)
	e.U64(w.msgID)
	w.pool.SaveState(e)
	for _, t := range w.PhaseTimes {
		e.U64(uint64(t))
	}
	for i, a := range w.apps {
		st, ok := a.(AppStater)
		if !ok {
			panic(fmt.Sprintf("workload: application %d is not checkpointable", i))
		}
		st.SaveState(e)
	}
}

// LoadState restores the counterpart of SaveState onto a freshly built
// workload of the identical configuration.
func (w *Workload) LoadState(d *snapshot.Decoder) error {
	if err := w.LoadOrder(d); err != nil {
		return err
	}
	ph := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if ph < int(Warming) || ph > int(Draining) {
		return d.Failf("workload phase %d out of range", ph)
	}
	w.phase = Phase(ph)
	n := d.Count()
	if d.Err() != nil {
		return d.Err()
	}
	if n != len(w.apps) {
		return d.Failf("snapshot has %d applications, rebuilt workload has %d", n, len(w.apps))
	}
	for i := range w.apps {
		w.ready[i] = d.Bool()
		w.complete[i] = d.Bool()
		w.done[i] = d.Bool()
	}
	w.pending = d.Int()
	w.msgID = d.U64()
	if err := w.pool.LoadState(d); err != nil {
		return err
	}
	for i := range w.PhaseTimes {
		w.PhaseTimes[i] = sim.Tick(d.U64())
	}
	for i, a := range w.apps {
		st, ok := a.(AppStater)
		if !ok {
			return d.Failf("rebuilt application %d is not checkpointable", i)
		}
		if err := st.LoadState(d); err != nil {
			return err
		}
	}
	return d.Err()
}

// Package workload implements the workload side of the simulator: the
// Workload state machine that coordinates multiple overlapping Application
// models through the four-phase handshake protocol, and the demultiplexing
// of delivered messages back to the application that generated them.
//
// The four phases of execution are:
//
//  1. Warming — applications that need simulation time to prepare the
//     network use it; each sends Ready when prepared.
//  2. Generating — after all Ready, the Workload broadcasts Start; this is
//     the primary time to generate traffic to be sampled. Applications send
//     Complete when they have generated their necessary traffic.
//  3. Finishing — after all Complete, the Workload broadcasts Stop; roll
//     over traffic that still needs to be sampled finishes here. Each
//     application sends Done when finished.
//  4. Draining — after all Done, the Workload broadcasts Kill; applications
//     may not generate new traffic, the network drains, the event queue runs
//     empty, and the simulation ends.
//
// This protocol lets applications interoperate without being designed for
// each other — the classic pairing being Blast (steady background traffic)
// and Pulse (a transient disturbance).
package workload

import (
	"fmt"

	"supersim/internal/config"
	"supersim/internal/factory"
	"supersim/internal/network"
	"supersim/internal/sim"
	"supersim/internal/telemetry"
	"supersim/internal/types"
)

// Phase is a workload execution phase.
type Phase int

// The four phases, in order.
const (
	Warming Phase = iota
	Generating
	Finishing
	Draining
)

func (p Phase) String() string {
	switch p {
	case Warming:
		return "warming"
	case Generating:
		return "generating"
	case Finishing:
		return "finishing"
	case Draining:
		return "draining"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// Application is the abstract traffic generator. One Application spans all
// network endpoints (it constructs one logical terminal per endpoint) and
// obeys the workload handshake: it receives Start/Stop/Kill commands and
// answers with Ready/Complete/Done signals on its Workload.
type Application interface {
	// Start puts the application in the generating phase.
	Start()
	// Stop puts the application in the finishing phase.
	Stop()
	// Kill puts the application in the draining phase; no further traffic
	// may be generated.
	Kill()
	// DeliverMessage hands the application one of its own delivered
	// messages.
	DeliverMessage(m *types.Message)
}

// Ctor is the constructor signature registered by application models.
type Ctor func(s *sim.Simulator, cfg *config.Settings, w *Workload, appID int, net network.Network) Application

// Registry holds all application implementations.
var Registry = factory.NewRegistry[Ctor]("application")

// Workload is the state machine that monitors and controls the execution of
// all applications.
type Workload struct {
	sim.ComponentBase
	net  network.Network
	apps []Application

	phase    Phase
	ready    []bool
	complete []bool
	done     []bool
	pending  int

	msgID uint64
	pool  *types.Pool

	// telemetry probe and span recorder, nil unless attached to the simulator
	tp *telemetry.WorkloadProbe
	sp *telemetry.Spans

	// PhaseTimes records when each phase began (tick), indexed by Phase.
	PhaseTimes [4]sim.Tick
}

// New builds the workload and its applications from the "workload" settings
// block, whose "applications" array holds one settings object per
// application, and registers the message demultiplexer on every interface.
func New(s *sim.Simulator, cfg *config.Settings, net network.Network) *Workload {
	w := &Workload{
		ComponentBase: sim.NewComponentBase(s, "workload"),
		net:           net,
		pool:          types.NewPool(),
	}
	raw := cfg.Array("applications")
	if len(raw) == 0 {
		panic("workload: at least one application required")
	}
	w.ready = make([]bool, len(raw))
	w.complete = make([]bool, len(raw))
	w.done = make([]bool, len(raw))
	w.pending = len(raw)
	for i, el := range raw {
		m, ok := el.(map[string]any)
		if !ok {
			panic(fmt.Sprintf("workload: applications[%d] must be an object", i))
		}
		appCfg := config.FromMap(m)
		ctor := Registry.MustLookup(appCfg.String("type"))
		w.apps = append(w.apps, ctor(s, appCfg, w, i, net))
	}
	for t := 0; t < net.NumTerminals(); t++ {
		net.Interface(t).SetMessageSink(&demux{w: w})
	}
	if w.tp = telemetry.ForWorkload(s, len(w.apps), net.NumTerminals(), net.ChannelPeriod()); w.tp != nil {
		w.tp.Phase(Warming.String())
	}
	w.sp = telemetry.SpansFor(s)
	return w
}

// ProcessEvent is unused; the workload reacts synchronously to signals.
func (w *Workload) ProcessEvent(ev *sim.Event) {
	w.Panicf("workload received unexpected event %d", ev.Type)
}

// Phase returns the current workload phase.
func (w *Workload) Phase() Phase { return w.phase }

// App returns application i.
func (w *Workload) App(i int) Application { return w.apps[i] }

// NumApps returns the number of applications.
func (w *Workload) NumApps() int { return len(w.apps) }

// Network returns the network the workload drives.
func (w *Workload) Network() network.Network { return w.net }

// NextMessageID allocates a globally unique message ID.
func (w *Workload) NextMessageID() uint64 {
	w.msgID++
	return w.msgID
}

// Pool returns the workload's message pool.
func (w *Workload) Pool() *types.Pool { return w.pool }

// SetPool replaces the workload's message pool. It must be called before any
// traffic is generated; the main use is sharing one pool across sequential
// runs (e.g. determinism tests of warm-pool behavior). The pool is
// single-threaded — never share one across concurrently running simulations.
func (w *Workload) SetPool(p *types.Pool) {
	if p == nil {
		w.Panicf("SetPool(nil)")
	}
	w.pool = p
}

// NewMessage allocates a message ID and draws a recycled message of the
// requested shape from the workload's pool. Applications inject with this
// rather than types.NewMessage so the steady-state traffic path stays
// allocation-free.
func (w *Workload) NewMessage(app, src, dst, totalFlits, maxPacketSize int) *types.Message {
	w.msgID++
	if w.tp != nil {
		w.tp.MessageOffered(app, totalFlits)
	}
	return w.pool.NewMessage(w.msgID, app, src, dst, totalFlits, maxPacketSize)
}

// Ready signals that application app finished warming. When all applications
// have reported Ready the Workload simultaneously sends Start to all.
func (w *Workload) Ready(app int) {
	w.signal(app, Warming, w.ready, func() {
		w.phase = Generating
		w.PhaseTimes[Generating] = w.Sim().Now().Tick
		for _, a := range w.apps {
			a.Start()
		}
	})
}

// Complete signals that application app performed its necessary traffic
// generation. When all have completed the Workload sends Stop to all.
func (w *Workload) Complete(app int) {
	w.signal(app, Generating, w.complete, func() {
		w.phase = Finishing
		w.PhaseTimes[Finishing] = w.Sim().Now().Tick
		for _, a := range w.apps {
			a.Stop()
		}
	})
}

// Done signals that application app finished its roll-over traffic. When all
// are done the Workload sends Kill to all and the network drains.
func (w *Workload) Done(app int) {
	w.signal(app, Finishing, w.done, func() {
		w.phase = Draining
		w.PhaseTimes[Draining] = w.Sim().Now().Tick
		for _, a := range w.apps {
			a.Kill()
		}
	})
}

func (w *Workload) signal(app int, want Phase, flags []bool, advance func()) {
	if app < 0 || app >= len(w.apps) {
		w.Panicf("signal from unknown application %d", app)
	}
	if w.phase != want {
		w.Panicf("application %d signaled during %v, want %v", app, w.phase, want)
	}
	if flags[app] {
		w.Panicf("application %d signaled twice in %v", app, w.phase)
	}
	flags[app] = true
	w.pending--
	if w.pending == 0 {
		w.pending = len(w.apps)
		advance()
		if w.tp != nil {
			w.tp.Phase(w.phase.String())
		}
	}
}

// demux routes a delivered message to the application that created it.
type demux struct {
	w *Workload
}

// DeliverMessage implements netiface.MessageSink. This is the message
// retirement point: once the owning application has recorded its statistics
// and returned, no component holds a reference to the message, so its blocks
// are recycled through the workload's pool.
func (d *demux) DeliverMessage(m *types.Message) {
	if m.App < 0 || m.App >= len(d.w.apps) {
		panic(fmt.Sprintf("workload: message %d from unknown application %d", m.ID, m.App))
	}
	if tp := d.w.tp; tp != nil {
		tp.MessageDelivered(m.App, m.TotalFlits(), m.ReceiveTime-m.CreateTime)
	}
	if sp := d.w.sp; sp != nil {
		// Close the span before the message's blocks return to the pool.
		sp.Finish(d.w.Sim(), m)
	}
	d.w.apps[m.App].DeliverMessage(m)
	d.w.pool.Release(m)
}

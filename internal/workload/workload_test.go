package workload_test

import (
	"testing"

	"supersim/internal/config"
	"supersim/internal/network"
	_ "supersim/internal/network/parkinglot"
	"supersim/internal/sim"
	"supersim/internal/types"
	"supersim/internal/workload"
)

// fakeApp records the commands it receives and exposes the signal methods.
type fakeApp struct {
	w         *workload.Workload
	id        int
	started   int
	stopped   int
	killed    int
	delivered []*types.Message
}

func (a *fakeApp) Start()                          { a.started++ }
func (a *fakeApp) Stop()                           { a.stopped++ }
func (a *fakeApp) Kill()                           { a.killed++ }
func (a *fakeApp) DeliverMessage(m *types.Message) { a.delivered = append(a.delivered, m) }

var fakes []*fakeApp

func init() {
	workload.Registry.Register("test_fake",
		func(s *sim.Simulator, cfg *config.Settings, w *workload.Workload, appID int, net network.Network) workload.Application {
			a := &fakeApp{w: w, id: appID}
			fakes = append(fakes, a)
			return a
		})
}

func buildWorkload(t *testing.T, numApps int) (*workload.Workload, []*fakeApp) {
	t.Helper()
	fakes = nil
	s := sim.NewSimulator(1)
	netCfg := config.MustParse(`{
	  "topology": "parking_lot",
	  "routers": 2,
	  "channel": {"latency": 2, "period": 1},
	  "injection": {"latency": 1},
	  "router": {"architecture": "input_queued", "num_vcs": 1, "input_buffer_depth": 4, "crossbar_latency": 1}
	}`)
	net := network.New(s, netCfg)
	apps := `{"applications": [`
	for i := 0; i < numApps; i++ {
		if i > 0 {
			apps += ","
		}
		apps += `{"type": "test_fake"}`
	}
	apps += `]}`
	w := workload.New(s, config.MustParse(apps), net)
	return w, fakes
}

func TestFourPhaseHandshake(t *testing.T) {
	w, apps := buildWorkload(t, 2)
	if w.Phase() != workload.Warming {
		t.Fatal("must start warming")
	}
	w.Ready(0)
	if w.Phase() != workload.Warming || apps[0].started != 0 {
		t.Fatal("Start must wait for all Ready signals")
	}
	w.Ready(1)
	if w.Phase() != workload.Generating {
		t.Fatal("all Ready must advance to generating")
	}
	if apps[0].started != 1 || apps[1].started != 1 {
		t.Fatal("Start must broadcast to all applications")
	}
	w.Complete(1)
	if w.Phase() != workload.Generating || apps[0].stopped != 0 {
		t.Fatal("Stop must wait for all Complete signals")
	}
	w.Complete(0)
	if w.Phase() != workload.Finishing || apps[0].stopped != 1 || apps[1].stopped != 1 {
		t.Fatal("all Complete must broadcast Stop")
	}
	w.Done(0)
	w.Done(1)
	if w.Phase() != workload.Draining || apps[0].killed != 1 || apps[1].killed != 1 {
		t.Fatal("all Done must broadcast Kill")
	}
	if w.PhaseTimes[workload.Generating] > w.PhaseTimes[workload.Draining] {
		t.Fatal("phase times must be ordered")
	}
}

func TestSignalValidation(t *testing.T) {
	w, _ := buildWorkload(t, 2)
	mustPanic(t, func() { w.Complete(0) }) // wrong phase
	mustPanic(t, func() { w.Done(0) })     // wrong phase
	w.Ready(0)
	mustPanic(t, func() { w.Ready(0) })  // double signal
	mustPanic(t, func() { w.Ready(99) }) // unknown app
	mustPanic(t, func() { w.Ready(-1) })
}

func TestSingleAppFastPath(t *testing.T) {
	w, apps := buildWorkload(t, 1)
	w.Ready(0)
	w.Complete(0)
	w.Done(0)
	if w.Phase() != workload.Draining {
		t.Fatalf("phase %v", w.Phase())
	}
	if apps[0].started != 1 || apps[0].stopped != 1 || apps[0].killed != 1 {
		t.Fatal("commands not delivered")
	}
}

func TestDemuxRoutesByApp(t *testing.T) {
	w, apps := buildWorkload(t, 2)
	net := w.Network()
	m0 := types.NewMessage(w.NextMessageID(), 0, 0, 1, 1, 1)
	m1 := types.NewMessage(w.NextMessageID(), 1, 0, 1, 1, 1)
	// Deliver through the interface's sink (set by workload.New).
	sinkDeliver(t, net, m0)
	sinkDeliver(t, net, m1)
	if len(apps[0].delivered) != 1 || apps[0].delivered[0] != m0 {
		t.Fatal("app 0 demux wrong")
	}
	if len(apps[1].delivered) != 1 || apps[1].delivered[0] != m1 {
		t.Fatal("app 1 demux wrong")
	}
}

// sinkDeliver pushes a message through interface 1's registered sink by
// simulating the full flit delivery path.
func sinkDeliver(t *testing.T, net network.Network, m *types.Message) {
	t.Helper()
	// The workload installed a demux sink on every interface; exercise it
	// via the interface's ReceiveFlit path would require channel plumbing,
	// so deliver via the sink directly through a one-flit walk:
	ifc := net.Interface(1)
	_ = ifc
	// Interfaces expose the sink only internally; emulate by calling the
	// demux through a delivered flit:
	f := m.Packets[0].Flits[0]
	f.VC = 0
	net.Interface(1).ReceiveFlit(0, f)
}

func TestNextMessageIDUnique(t *testing.T) {
	w, _ := buildWorkload(t, 1)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		id := w.NextMessageID()
		if seen[id] {
			t.Fatal("duplicate message id")
		}
		seen[id] = true
	}
}

func TestWorkloadRequiresApplications(t *testing.T) {
	s := sim.NewSimulator(1)
	netCfg := config.MustParse(`{
	  "topology": "parking_lot",
	  "routers": 2,
	  "channel": {"latency": 2, "period": 1},
	  "injection": {"latency": 1},
	  "router": {"architecture": "input_queued", "num_vcs": 1, "input_buffer_depth": 4, "crossbar_latency": 1}
	}`)
	net := network.New(s, netCfg)
	mustPanic(t, func() { workload.New(s, config.MustParse(`{"applications": []}`), net) })
	mustPanic(t, func() { workload.New(s, config.MustParse(`{"applications": [5]}`), net) })
}

func TestPhaseString(t *testing.T) {
	names := map[workload.Phase]string{
		workload.Warming:    "warming",
		workload.Generating: "generating",
		workload.Finishing:  "finishing",
		workload.Draining:   "draining",
		workload.Phase(9):   "phase(9)",
	}
	for p, want := range names {
		if p.String() != want {
			t.Fatalf("%v", p)
		}
	}
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

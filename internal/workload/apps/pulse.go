package apps

import (
	"fmt"
	"math/rand/v2"

	"supersim/internal/config"
	"supersim/internal/network"
	"supersim/internal/sim"
	"supersim/internal/stats"
	"supersim/internal/traffic"
	"supersim/internal/types"
	"supersim/internal/workload"
)

func init() {
	workload.Registry.Register("pulse", func(s *sim.Simulator, cfg *config.Settings, w *workload.Workload, appID int, net network.Network) workload.Application {
		return NewPulse(s, cfg, w, appID, net)
	})
}

// Pulse generates a bounded burst: each terminal sends `count` messages at
// the configured rate, starting `delay` ticks after the workload's Start
// command. It remains idle through warming (sending Ready immediately),
// reports Complete once the burst has been created, and Done once the burst
// has drained. Paired with Blast it produces a temporary disturbance for
// transient analysis of adaptive routing.
//
// Settings: injection_rate, message_size, max_packet_size, count, delay,
// traffic {type, ...}.
type Pulse struct {
	sim.ComponentBase
	w     *workload.Workload
	appID int
	net   network.Network
	rng   *rand.Rand

	rate    float64
	msgSize int
	maxPkt  int
	count   int
	delay   sim.Tick
	pattern traffic.Pattern
	meanGap float64

	phase       appPhase
	remaining   []int // per terminal: messages still to create
	toCreate    int
	outstanding int
	rec         *stats.Recorder
	next        []float64 // continuous-time arrival clock per terminal
}

// NewPulse builds a Pulse application.
func NewPulse(s *sim.Simulator, cfg *config.Settings, w *workload.Workload, appID int, net network.Network) *Pulse {
	p := &Pulse{
		ComponentBase: sim.NewComponentBase(s, cfg.StringOr("name", "pulse")),
		w:             w,
		appID:         appID,
		net:           net,
		// See Blast: derived per-application stream, partition-independent.
		rng:     s.DeriveRand(fmt.Sprintf("app%d/%s", appID, cfg.StringOr("name", "pulse"))),
		rate:    cfg.Float("injection_rate"),
		msgSize: int(cfg.UIntOr("message_size", 1)),
		count:   int(cfg.UInt("count")),
		delay:   sim.Tick(cfg.UIntOr("delay", 0)),
		rec:     stats.NewRecorder(),
	}
	p.maxPkt = int(cfg.UIntOr("max_packet_size", uint64(p.msgSize)))
	if p.rate <= 0 || p.rate > 1 {
		p.Panicf("injection_rate must be in (0, 1], got %v", p.rate)
	}
	if p.msgSize < 1 || p.maxPkt < 1 || p.count < 1 {
		p.Panicf("message_size, max_packet_size and count must be positive")
	}
	p.pattern = traffic.New(cfg.Sub("traffic"), net.NumTerminals())
	p.meanGap = float64(p.msgSize) / p.rate * float64(net.ChannelPeriod())
	p.remaining = make([]int, net.NumTerminals())
	for i := range p.remaining {
		p.remaining[i] = p.count
	}
	p.next = make([]float64, net.NumTerminals())
	p.toCreate = p.count * net.NumTerminals()
	s.Schedule(p, sim.TimeZero, evInit, nil)
	return p
}

// Stats returns the recorder holding the pulse's own delivered messages.
func (p *Pulse) Stats() *stats.Recorder { return p.rec }

// ProcessEvent drives the application's injectors.
func (p *Pulse) ProcessEvent(ev *sim.Event) {
	switch ev.Type {
	case evInit:
		// Pulse needs no warming; it idles until Start.
		p.w.Ready(p.appID)
	case evInject:
		p.inject(ev.Context.(int))
	default:
		p.Panicf("unknown event type %d", ev.Type)
	}
}

// Start launches the burst after the configured delay.
func (p *Pulse) Start() {
	p.phase = phGenerating
	for t := 0; t < p.net.NumTerminals(); t++ {
		p.scheduleNext(t, p.delay)
	}
}

// Stop transitions to finishing; creation is normally already complete.
func (p *Pulse) Stop() {
	p.phase = phFinishing
	p.maybeDone()
}

// Kill halts any stragglers.
func (p *Pulse) Kill() {
	p.phase = phDraining
}

func (p *Pulse) scheduleNext(term int, extra sim.Tick) {
	if extra > 0 {
		p.next[term] = float64(p.Sim().Now().Tick + extra)
	}
	p.next[term] += p.rng.ExpFloat64() * p.meanGap
	tick := sim.Tick(p.next[term]) + 1
	now := p.Sim().Now().Tick
	if tick <= now {
		tick = now + 1
	}
	p.Sim().Schedule(p, sim.Time{Tick: tick}, evInject, term)
}

func (p *Pulse) inject(term int) {
	if p.phase == phDraining || p.remaining[term] == 0 {
		return
	}
	dst := p.pattern.Dest(p.rng, term)
	m := p.w.NewMessage(p.appID, term, dst, p.msgSize, p.maxPkt)
	m.CreateTime = p.Sim().Now().Tick
	m.Sampled = true
	p.outstanding++
	p.net.Interface(term).SendMessage(m)
	p.remaining[term]--
	p.toCreate--
	if p.remaining[term] > 0 {
		p.scheduleNext(term, 0)
	}
	if p.toCreate == 0 {
		p.w.Complete(p.appID)
	}
}

func (p *Pulse) maybeDone() {
	if p.phase == phFinishing && p.outstanding == 0 {
		p.phase = phDraining
		p.w.Done(p.appID)
	}
}

// DeliverMessage records the burst's deliveries.
func (p *Pulse) DeliverMessage(m *types.Message) {
	p.rec.Record(stats.Sample{
		Start: m.CreateTime,
		End:   m.ReceiveTime,
		Flits: m.TotalFlits(),
		Hops:  m.Packets[0].HopCount,
		App:   m.App,
		Src:   m.Src,
		Dst:   m.Dst,
	})
	p.outstanding--
	if p.outstanding < 0 {
		p.Panicf("outstanding message count went negative")
	}
	p.maybeDone()
}

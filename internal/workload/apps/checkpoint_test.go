package apps_test

import (
	"bytes"
	"testing"

	"supersim/internal/config"
	"supersim/internal/core"
	"supersim/internal/snapshot"
	"supersim/internal/workload/apps"
)

const blastCheckpointDoc = `{
	  "type": "blast",
	  "injection_rate": 0.2,
	  "message_size": 2,
	  "warmup_duration": 200,
	  "sample_duration": 800,
	  "traffic": {"type": "uniform_random"}
	}`

const pulseCheckpointDoc = blastCheckpointDoc + `, {
	  "type": "pulse",
	  "injection_rate": 0.5,
	  "count": 5,
	  "delay": 100,
	  "traffic": {"type": "uniform_random"}
	}`

// saveApp serializes one application's checkpoint state. The apps implement
// workload.AppStater, which the workload drives in registration order; here
// each is driven directly so the package-local state is testable in
// isolation.
type appStater interface {
	SaveState(e *snapshot.Encoder)
	LoadState(d *snapshot.Decoder) error
}

func saveApp(a appStater) []byte {
	e := snapshot.NewEncoder()
	a.SaveState(e)
	return e.Bytes()
}

// roundTripApp saves app appIdx of a completed run, loads it into the same
// app of a freshly built (never run) simulation, and requires the restored
// app to re-serialize byte-identically.
func roundTripApp(t *testing.T, doc string, appIdx int) (orig, restored appStater) {
	t.Helper()
	sm := core.Build(config.MustParse(doc))
	if _, err := sm.Run(); err != nil {
		t.Fatal(err)
	}
	a := sm.Workload.App(appIdx).(appStater)
	data := saveApp(a)

	sm2 := core.Build(config.MustParse(doc))
	a2 := sm2.Workload.App(appIdx).(appStater)
	d := snapshot.NewDecoder(data)
	if err := a2.LoadState(d); err != nil {
		t.Fatal(err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left after load", d.Remaining())
	}
	if !bytes.Equal(saveApp(a2), data) {
		t.Fatal("re-saved application state is not byte-identical")
	}

	// Error paths: every strict prefix of a valid state must fail to load,
	// never panic or succeed.
	for _, n := range []int{0, 1, len(data) / 2, len(data) - 1} {
		sm3 := core.Build(config.MustParse(doc))
		a3 := sm3.Workload.App(appIdx).(appStater)
		if err := a3.LoadState(snapshot.NewDecoder(data[:n])); err == nil {
			t.Fatalf("truncation to %d bytes loaded without error", n)
		}
	}
	return a, a2
}

func TestBlastStateRoundTrip(t *testing.T) {
	orig, restored := roundTripApp(t, baseDoc(blastCheckpointDoc), 0)
	b, b2 := orig.(*apps.Blast), restored.(*apps.Blast)
	if b2.Generated() != b.Generated() || b2.Generated() == 0 {
		t.Fatalf("generated %d, want %d (nonzero)", b2.Generated(), b.Generated())
	}
	if b2.Stats().Count() != b.Stats().Count() {
		t.Fatalf("sampled %d, want %d", b2.Stats().Count(), b.Stats().Count())
	}
}

func TestPulseStateRoundTrip(t *testing.T) {
	orig, restored := roundTripApp(t, baseDoc(pulseCheckpointDoc), 1)
	p, p2 := orig.(*apps.Pulse), restored.(*apps.Pulse)
	if p2.Stats().Count() != p.Stats().Count() || p2.Stats().Count() != 5*3 {
		t.Fatalf("pulse delivered %d, want %d", p2.Stats().Count(), 5*3)
	}
}

package apps

import (
	"supersim/internal/snapshot"
)

// Checkpoint state for the supplied application models. The RNG streams are
// derived per-application from the simulator and serialized with the core;
// traffic patterns are stateless value types. What remains is the lifecycle
// phase, the per-terminal Poisson arrival clocks, sampling bookkeeping, and
// the recorders.

func saveF64Slice(e *snapshot.Encoder, s []float64) {
	e.Int(len(s))
	for _, v := range s {
		e.F64(v)
	}
}

func loadF64SliceInto(d *snapshot.Decoder, s []float64, what string) error {
	n := d.Count()
	if d.Err() != nil {
		return d.Err()
	}
	if n != len(s) {
		return d.Failf("%s has %d entries, snapshot says %d", what, len(s), n)
	}
	for i := 0; i < n; i++ {
		s[i] = d.F64()
	}
	return d.Err()
}

// SaveState implements workload.AppStater.
func (b *Blast) SaveState(e *snapshot.Encoder) {
	b.SaveOrder(e)
	e.Int(int(b.phase))
	e.Int(b.outstanding)
	b.rec.SaveState(e)
	b.pktRec.SaveState(e)
	e.U64(b.skipped)
	e.U64(b.generated)
	saveF64Slice(e, b.next)
}

// LoadState implements workload.AppStater.
func (b *Blast) LoadState(d *snapshot.Decoder) error {
	if err := b.LoadOrder(d); err != nil {
		return err
	}
	ph := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if ph < int(phWarming) || ph > int(phDraining) {
		return d.Failf("blast phase %d out of range", ph)
	}
	b.phase = appPhase(ph)
	b.outstanding = d.Int()
	if err := b.rec.LoadState(d); err != nil {
		return err
	}
	if err := b.pktRec.LoadState(d); err != nil {
		return err
	}
	b.skipped = d.U64()
	b.generated = d.U64()
	return loadF64SliceInto(d, b.next, "blast arrival clocks")
}

// SaveState implements workload.AppStater.
func (p *Pulse) SaveState(e *snapshot.Encoder) {
	p.SaveOrder(e)
	e.Int(int(p.phase))
	e.Int(len(p.remaining))
	for _, r := range p.remaining {
		e.Int(r)
	}
	e.Int(p.toCreate)
	e.Int(p.outstanding)
	p.rec.SaveState(e)
	saveF64Slice(e, p.next)
}

// LoadState implements workload.AppStater.
func (p *Pulse) LoadState(d *snapshot.Decoder) error {
	if err := p.LoadOrder(d); err != nil {
		return err
	}
	ph := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if ph < int(phWarming) || ph > int(phDraining) {
		return d.Failf("pulse phase %d out of range", ph)
	}
	p.phase = appPhase(ph)
	n := d.Count()
	if d.Err() != nil {
		return d.Err()
	}
	if n != len(p.remaining) {
		return d.Failf("pulse has %d terminals, snapshot says %d", len(p.remaining), n)
	}
	for i := 0; i < n; i++ {
		p.remaining[i] = d.Int()
	}
	p.toCreate = d.Int()
	p.outstanding = d.Int()
	if err := p.rec.LoadState(d); err != nil {
		return err
	}
	return loadF64SliceInto(d, p.next, "pulse arrival clocks")
}

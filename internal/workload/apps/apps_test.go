package apps_test

import (
	"fmt"
	"math"
	"testing"

	"supersim/internal/config"
	"supersim/internal/core"
	"supersim/internal/workload/apps"
)

func baseDoc(app string) string {
	return fmt.Sprintf(`{
	  "simulation": {"seed": 31},
	  "network": {
	    "topology": "parking_lot",
	    "routers": 3,
	    "channel": {"latency": 2, "period": 1},
	    "injection": {"latency": 1},
	    "router": {"architecture": "input_queued", "num_vcs": 1, "input_buffer_depth": 8, "crossbar_latency": 1}
	  },
	  "workload": {"applications": [%s]}
	}`, app)
}

func TestBlastRateCalibration(t *testing.T) {
	// The Poisson injector must hit the configured average rate: at rate
	// 0.25 flits/cycle/terminal (period 1 tick), 3 terminals and a 8000-tick
	// window, expect ~6000 messages overall (the window spans warmup too).
	doc := baseDoc(`{
	  "type": "blast",
	  "injection_rate": 0.25,
	  "message_size": 1,
	  "warmup_duration": 1000,
	  "sample_duration": 8000,
	  "traffic": {"type": "uniform_random"}
	}`)
	sm := core.Build(config.MustParse(doc))
	if _, err := sm.Run(); err != nil {
		t.Fatal(err)
	}
	blast := sm.Workload.App(0).(*apps.Blast)
	start, stop := blast.SampleWindow()
	window := float64(stop - start)
	expected := 0.25 * 3 * window
	got := float64(blast.Stats().Count())
	if math.Abs(got-expected)/expected > 0.1 {
		t.Fatalf("sampled %v messages, expected ~%v (rate miscalibrated)", got, expected)
	}
	if blast.Generated() < uint64(got) {
		t.Fatal("generated < sampled")
	}
}

func TestBlastMultiPacketMessages(t *testing.T) {
	doc := baseDoc(`{
	  "type": "blast",
	  "injection_rate": 0.2,
	  "message_size": 7,
	  "max_packet_size": 3,
	  "warmup_duration": 500,
	  "sample_duration": 2000,
	  "traffic": {"type": "neighbor"}
	}`)
	sm := core.Build(config.MustParse(doc))
	if _, err := sm.Run(); err != nil {
		t.Fatal(err)
	}
	blast := sm.Workload.App(0).(*apps.Blast)
	for _, s := range blast.Stats().Samples() {
		if s.Flits != 7 {
			t.Fatalf("sample flits %d", s.Flits)
		}
	}
}

func TestBlastConfigValidation(t *testing.T) {
	bad := []string{
		`{"type": "blast", "injection_rate": 0, "warmup_duration": 1, "sample_duration": 1, "traffic": {"type": "neighbor"}}`,
		`{"type": "blast", "injection_rate": 1.5, "warmup_duration": 1, "sample_duration": 1, "traffic": {"type": "neighbor"}}`,
		`{"type": "blast", "injection_rate": 0.5, "message_size": 0, "warmup_duration": 1, "sample_duration": 1, "traffic": {"type": "neighbor"}}`,
		`{"type": "blast", "injection_rate": 0.5, "warmup_duration": 1, "sample_duration": 1, "traffic": {"type": "nope"}}`,
	}
	for _, app := range bad {
		if _, err := core.BuildE(config.MustParse(baseDoc(app))); err == nil {
			t.Errorf("config accepted: %s", app)
		}
	}
}

func TestPulseConfigValidation(t *testing.T) {
	bad := []string{
		`{"type": "pulse", "injection_rate": 0, "count": 1, "traffic": {"type": "neighbor"}}`,
		`{"type": "pulse", "injection_rate": 0.5, "count": 0, "traffic": {"type": "neighbor"}}`,
		`{"type": "pulse", "injection_rate": 0.5, "count": 1, "message_size": 0, "traffic": {"type": "neighbor"}}`,
	}
	for _, app := range bad {
		if _, err := core.BuildE(config.MustParse(baseDoc(app))); err == nil {
			t.Errorf("config accepted: %s", app)
		}
	}
}

func TestPulseDeliversExactCount(t *testing.T) {
	doc := baseDoc(`{
	  "type": "blast",
	  "injection_rate": 0.1,
	  "warmup_duration": 200,
	  "sample_duration": 3000,
	  "traffic": {"type": "uniform_random"}
	}, {
	  "type": "pulse",
	  "injection_rate": 0.6,
	  "count": 11,
	  "delay": 300,
	  "traffic": {"type": "uniform_random"}
	}`)
	sm := core.Build(config.MustParse(doc))
	if _, err := sm.Run(); err != nil {
		t.Fatal(err)
	}
	pulse := sm.Workload.App(1).(*apps.Pulse)
	if pulse.Stats().Count() != 11*3 {
		t.Fatalf("pulse delivered %d, want %d", pulse.Stats().Count(), 33)
	}
}

func TestBlastSourceQueueCap(t *testing.T) {
	// Parking lot at maximum rate toward one sink: far terminals saturate
	// and the source queue cap must kick in (Skipped > 0), while the run
	// still completes and drains.
	doc := baseDoc(`{
	  "type": "blast",
	  "injection_rate": 1.0,
	  "warmup_duration": 500,
	  "sample_duration": 3000,
	  "source_queue_limit": 4,
	  "traffic": {"type": "fixed", "destination": 0}
	}`)
	sm := core.Build(config.MustParse(doc))
	if _, err := sm.Run(); err != nil {
		t.Fatal(err)
	}
	blast := sm.Workload.App(0).(*apps.Blast)
	if blast.Skipped() == 0 {
		t.Fatal("saturated run should skip injections at the source queue cap")
	}
}

func TestBlastPacketStats(t *testing.T) {
	doc := baseDoc(`{
	  "type": "blast",
	  "injection_rate": 0.2,
	  "message_size": 6,
	  "max_packet_size": 2,
	  "warmup_duration": 300,
	  "sample_duration": 1500,
	  "traffic": {"type": "neighbor"}
	}`)
	sm := core.Build(config.MustParse(doc))
	if _, err := sm.Run(); err != nil {
		t.Fatal(err)
	}
	blast := sm.Workload.App(0).(*apps.Blast)
	msgs, pkts := blast.Stats(), blast.PacketStats()
	if pkts.Count() != 3*msgs.Count() {
		t.Fatalf("packets %d, want 3x messages %d", pkts.Count(), msgs.Count())
	}
	for _, s := range pkts.Samples() {
		if s.Flits != 2 {
			t.Fatalf("packet flits %d", s.Flits)
		}
	}
	// Packet latency (inject->deliver) is below message latency
	// (create->last delivery) on average.
	if pkts.Mean() >= msgs.Mean() {
		t.Fatalf("packet mean %v should be below message mean %v", pkts.Mean(), msgs.Mean())
	}
}

// Package apps implements the supplied application models: Blast (steady
// state traffic at a constant injection rate) and Pulse (a bounded burst
// used as a transient disturbance). The canonical multi-application
// experiment pairs them to study the transient response of adaptive routing.
package apps

import (
	"fmt"
	"math/rand/v2"

	"supersim/internal/config"
	"supersim/internal/network"
	"supersim/internal/sim"
	"supersim/internal/stats"
	"supersim/internal/traffic"
	"supersim/internal/types"
	"supersim/internal/workload"
)

const (
	evInit = iota
	evInject
	evWarmDone
	evSampleDone
)

func init() {
	workload.Registry.Register("blast", func(s *sim.Simulator, cfg *config.Settings, w *workload.Workload, appID int, net network.Network) workload.Application {
		return NewBlast(s, cfg, w, appID, net)
	})
}

// appPhase is an application's own view of its lifecycle.
type appPhase int

const (
	phWarming appPhase = iota
	phGenerating
	phFinishing
	phDraining
)

// Blast injects fixed-size messages at a constant average rate (Poisson
// arrivals) from every terminal, following the configured traffic pattern.
// It warms the network for warmup_duration ticks, samples for
// sample_duration ticks, keeps injecting unsampled traffic until the
// workload kills it, and reports Done once every sampled message has exited
// the network.
//
// Settings: injection_rate (flits/cycle/terminal), message_size,
// max_packet_size, warmup_duration, sample_duration, source_queue_limit,
// traffic {type, ...}.
type Blast struct {
	sim.ComponentBase
	w     *workload.Workload
	appID int
	net   network.Network
	rng   *rand.Rand

	rate      float64
	msgSize   int
	maxPkt    int
	warmup    sim.Tick
	sampleDur sim.Tick
	queueCap  int
	pattern   traffic.Pattern
	meanGap   float64 // ticks between messages per terminal

	phase       appPhase
	outstanding int // sampled messages still in flight
	rec         *stats.Recorder
	pktRec      *stats.Recorder // per-packet samples of sampled messages
	skipped     uint64          // injections suppressed by the source queue cap
	generated   uint64

	// next is the continuous-time Poisson arrival clock per terminal; the
	// discrete injection event fires at ceil(next). Keeping the fractional
	// part preserves the configured average rate exactly.
	next []float64
}

// NewBlast builds a Blast application.
func NewBlast(s *sim.Simulator, cfg *config.Settings, w *workload.Workload, appID int, net network.Network) *Blast {
	b := &Blast{
		ComponentBase: sim.NewComponentBase(s, cfg.StringOr("name", "blast")),
		w:             w,
		appID:         appID,
		net:           net,
		// Derived per-application stream keyed by the (unique) app index:
		// two applications of the same type must not share draws, and the
		// stream must be independent of other components' draw interleaving
		// so results are identical under the parallel engine.
		rng:       s.DeriveRand(fmt.Sprintf("app%d/%s", appID, cfg.StringOr("name", "blast"))),
		rate:      cfg.Float("injection_rate"),
		msgSize:   int(cfg.UIntOr("message_size", 1)),
		warmup:    sim.Tick(cfg.UInt("warmup_duration")),
		sampleDur: sim.Tick(cfg.UInt("sample_duration")),
		queueCap:  int(cfg.UIntOr("source_queue_limit", 32)),
		rec:       stats.NewRecorder(),
		pktRec:    stats.NewRecorder(),
	}
	b.maxPkt = int(cfg.UIntOr("max_packet_size", uint64(b.msgSize)))
	if b.rate <= 0 || b.rate > 1 {
		b.Panicf("injection_rate must be in (0, 1], got %v", b.rate)
	}
	if b.msgSize < 1 || b.maxPkt < 1 {
		b.Panicf("message_size and max_packet_size must be positive")
	}
	b.pattern = traffic.New(cfg.Sub("traffic"), net.NumTerminals())
	b.meanGap = float64(b.msgSize) / b.rate * float64(net.ChannelPeriod())
	b.next = make([]float64, net.NumTerminals())
	s.Schedule(b, sim.TimeZero, evInit, nil)
	return b
}

// Stats returns the recorder holding the sampled messages.
func (b *Blast) Stats() *stats.Recorder { return b.rec }

// PacketStats returns the recorder holding the individual packets of the
// sampled messages — packet latency distributions differ from message
// latency distributions once messages span multiple packets.
func (b *Blast) PacketStats() *stats.Recorder { return b.pktRec }

// Skipped returns injections suppressed because the source queue hit its cap
// — a direct saturation indicator.
func (b *Blast) Skipped() uint64 { return b.skipped }

// Generated returns the number of messages created.
func (b *Blast) Generated() uint64 { return b.generated }

// SampleWindow returns the [start, stop) ticks of the sampling window.
func (b *Blast) SampleWindow() (sim.Tick, sim.Tick) {
	return b.w.PhaseTimes[workload.Generating], b.w.PhaseTimes[workload.Finishing]
}

// ProcessEvent drives the application's timers and injectors.
func (b *Blast) ProcessEvent(ev *sim.Event) {
	switch ev.Type {
	case evInit:
		for t := 0; t < b.net.NumTerminals(); t++ {
			b.scheduleNext(t)
		}
		if b.warmup == 0 {
			b.w.Ready(b.appID)
		} else {
			b.Sim().Schedule(b, sim.Time{Tick: b.warmup}, evWarmDone, nil)
		}
	case evWarmDone:
		b.w.Ready(b.appID)
	case evSampleDone:
		b.w.Complete(b.appID)
	case evInject:
		b.inject(ev.Context.(int))
	default:
		b.Panicf("unknown event type %d", ev.Type)
	}
}

// Start begins the sampling window.
func (b *Blast) Start() {
	b.phase = phGenerating
	b.Sim().Schedule(b, b.Sim().Now().Plus(b.sampleDur).NextEps(), evSampleDone, nil)
}

// Stop ends the sampling window; traffic continues unsampled.
func (b *Blast) Stop() {
	b.phase = phFinishing
	b.maybeDone()
}

// Kill stops all traffic generation.
func (b *Blast) Kill() {
	b.phase = phDraining
}

func (b *Blast) maybeDone() {
	if b.phase == phFinishing && b.outstanding == 0 {
		b.phase = phDraining // guard against double Done before Kill arrives
		b.w.Done(b.appID)
	}
}

func (b *Blast) scheduleNext(term int) {
	b.next[term] += b.rng.ExpFloat64() * b.meanGap
	tick := sim.Tick(b.next[term]) + 1 // ceil to the next whole tick
	now := b.Sim().Now().Tick
	if tick <= now {
		tick = now + 1
	}
	b.Sim().Schedule(b, sim.Time{Tick: tick}, evInject, term)
}

func (b *Blast) inject(term int) {
	if b.phase == phDraining {
		return
	}
	ifc := b.net.Interface(term)
	if ifc.QueueDepth() >= b.queueCap {
		b.skipped++
		b.scheduleNext(term)
		return
	}
	dst := b.pattern.Dest(b.rng, term)
	m := b.w.NewMessage(b.appID, term, dst, b.msgSize, b.maxPkt)
	m.CreateTime = b.Sim().Now().Tick
	if b.phase == phGenerating {
		m.Sampled = true
		b.outstanding++
	}
	b.generated++
	ifc.SendMessage(m)
	b.scheduleNext(term)
}

// DeliverMessage records sampled deliveries and reports Done when the last
// sampled message drains during the finishing phase.
func (b *Blast) DeliverMessage(m *types.Message) {
	if !m.Sampled {
		return
	}
	nonMin := false
	for _, p := range m.Packets {
		if p.NonMinimal {
			nonMin = true
			break
		}
	}
	b.rec.Record(stats.Sample{
		Start:      m.CreateTime,
		End:        m.ReceiveTime,
		Flits:      m.TotalFlits(),
		Hops:       m.Packets[0].HopCount,
		NonMinimal: nonMin,
		App:        m.App,
		Src:        m.Src,
		Dst:        m.Dst,
	})
	for _, p := range m.Packets {
		b.pktRec.Record(stats.Sample{
			Start:      p.InjectTime,
			End:        p.ReceiveTime,
			Flits:      p.Size(),
			Hops:       p.HopCount,
			NonMinimal: p.NonMinimal,
			App:        m.App,
			Src:        m.Src,
			Dst:        m.Dst,
		})
	}
	b.outstanding--
	if b.outstanding < 0 {
		b.Panicf("sampled message count went negative")
	}
	b.maybeDone()
}

package workload_test

import (
	"bytes"
	"strings"
	"testing"

	"supersim/internal/config"
	"supersim/internal/network"
	"supersim/internal/sim"
	"supersim/internal/snapshot"
	"supersim/internal/workload"
)

// staterApp is a checkpointable fake: fakeApp plus AppStater with one
// counter of state, so workload round trips can verify application state
// travels in registration order.
type staterApp struct {
	fakeApp
	counter uint64
}

func (a *staterApp) SaveState(e *snapshot.Encoder)       { e.U64(a.counter) }
func (a *staterApp) LoadState(d *snapshot.Decoder) error { a.counter = d.U64(); return d.Err() }

var staters []*staterApp

func init() {
	workload.Registry.Register("test_stater",
		func(s *sim.Simulator, cfg *config.Settings, w *workload.Workload, appID int, net network.Network) workload.Application {
			a := &staterApp{}
			a.w = w
			a.id = appID
			staters = append(staters, a)
			return a
		})
}

// buildStaterWorkload mirrors buildWorkload with checkpointable apps.
func buildStaterWorkload(t *testing.T, numApps int) (*workload.Workload, []*staterApp) {
	t.Helper()
	staters = nil
	s := sim.NewSimulator(1)
	netCfg := config.MustParse(`{
	  "topology": "parking_lot",
	  "routers": 2,
	  "channel": {"latency": 2, "period": 1},
	  "injection": {"latency": 1},
	  "router": {"architecture": "input_queued", "num_vcs": 1, "input_buffer_depth": 4, "crossbar_latency": 1}
	}`)
	net := network.New(s, netCfg)
	apps := `{"applications": [`
	for i := 0; i < numApps; i++ {
		if i > 0 {
			apps += ","
		}
		apps += `{"type": "test_stater"}`
	}
	apps += `]}`
	w := workload.New(s, config.MustParse(apps), net)
	return w, staters
}

func saveWorkload(w *workload.Workload) []byte {
	e := snapshot.NewEncoder()
	w.SaveState(e)
	return e.Bytes()
}

func TestWorkloadStateRoundTrip(t *testing.T) {
	w, apps := buildStaterWorkload(t, 2)
	// Advance the state machine mid-handshake: one app generating-ready
	// signal outstanding, message IDs drawn, pool counters bumped.
	w.Ready(0)
	w.Ready(1)
	w.Complete(0)
	_ = w.NextMessageID()
	m := w.NewMessage(0, 0, 1, 2, 2)
	w.Pool().Release(m)
	apps[0].counter = 11
	apps[1].counter = 22
	data := saveWorkload(w)

	got, gapps := buildStaterWorkload(t, 2)
	d := snapshot.NewDecoder(data)
	if err := got.LoadState(d); err != nil {
		t.Fatal(err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left after load", d.Remaining())
	}
	if got.Phase() != workload.Generating {
		t.Fatalf("restored phase %v, want generating", got.Phase())
	}
	if gapps[0].counter != 11 || gapps[1].counter != 22 {
		t.Fatalf("restored app counters %d, %d", gapps[0].counter, gapps[1].counter)
	}
	if got.Pool().Stats() != w.Pool().Stats() {
		t.Fatalf("pool stats %+v, want %+v", got.Pool().Stats(), w.Pool().Stats())
	}
	if !bytes.Equal(saveWorkload(got), data) {
		t.Fatal("re-saved workload state is not byte-identical")
	}
	// The restored handshake must accept exactly the outstanding signal.
	got.Complete(1)
	if got.Phase() != workload.Finishing {
		t.Fatalf("phase %v after final Complete", got.Phase())
	}
}

func TestWorkloadSaveRequiresStaterApps(t *testing.T) {
	w, _ := buildWorkload(t, 1) // test_fake does not implement AppStater
	mustPanic(t, func() { saveWorkload(w) })
}

func TestWorkloadLoadRejectsMismatchedBuild(t *testing.T) {
	w, _ := buildStaterWorkload(t, 2)
	data := saveWorkload(w)

	// Fewer applications than the snapshot.
	got, _ := buildStaterWorkload(t, 1)
	if err := got.LoadState(snapshot.NewDecoder(data)); err == nil ||
		!strings.Contains(err.Error(), "applications") {
		t.Fatalf("app count: err = %v", err)
	}

	// Same shape but non-checkpointable applications.
	fw, _ := buildWorkload(t, 2)
	if err := fw.LoadState(snapshot.NewDecoder(data)); err == nil ||
		!strings.Contains(err.Error(), "not checkpointable") {
		t.Fatalf("non-stater: err = %v", err)
	}
}

func TestWorkloadLoadRejectsBadPhase(t *testing.T) {
	w, _ := buildStaterWorkload(t, 1)
	e := snapshot.NewEncoder()
	w.SaveOrder(e)
	e.Int(99)
	if err := w.LoadState(snapshot.NewDecoder(e.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "phase 99") {
		t.Fatalf("err = %v, want phase error", err)
	}
}

func TestWorkloadLoadRejectsTruncation(t *testing.T) {
	w, _ := buildStaterWorkload(t, 2)
	data := saveWorkload(w)
	for _, n := range []int{0, 1, len(data) / 2, len(data) - 1} {
		got, _ := buildStaterWorkload(t, 2)
		if err := got.LoadState(snapshot.NewDecoder(data[:n])); err == nil {
			t.Fatalf("truncation to %d bytes loaded without error", n)
		}
	}
}

package netiface

import (
	"supersim/internal/snapshot"
	"supersim/internal/types"
)

// Checkpoint state for the network interface: the injection queue (packet
// references into the checkpoint's message table), the head packet's
// mid-injection cursor, per-VC downstream credits, the order checker, and
// the reassembly/statistics counters. The send queue is normalized on save
// (the consumed prefix before sendHead is dropped).

// Collect adds every message with a packet queued for injection to the
// checkpoint's message table. Messages that are mid-flight but fully
// dequeued here are collected by the components holding their flits.
func (n *Interface) Collect(t *types.MessageTable) {
	for i := n.sendHead; i < len(n.sendQ); i++ {
		t.Add(n.sendQ[i].Msg)
	}
}

// SaveState serializes the interface's mutable state.
func (n *Interface) SaveState(e *snapshot.Encoder, t *types.MessageTable) {
	n.SaveOrder(e)
	e.Int(len(n.sendQ) - n.sendHead)
	for i := n.sendHead; i < len(n.sendQ); i++ {
		t.EncodePacket(e, n.sendQ[i])
	}
	e.Int(n.curFlit)
	e.Int(n.curVC)
	e.Int(n.injectRR)
	e.Bool(n.scheduled)
	e.Int(len(n.downCred))
	for _, c := range n.downCred {
		e.Int(c)
	}
	n.checker.SaveState(e)
	e.Int(n.partial)
	e.U64(n.flitsSent)
	e.U64(n.flitsReceived)
}

// LoadState restores the counterpart of SaveState onto a freshly built
// interface.
func (n *Interface) LoadState(d *snapshot.Decoder, t *types.MessageTable) error {
	if err := n.LoadOrder(d); err != nil {
		return err
	}
	q := d.Count()
	if d.Err() != nil {
		return d.Err()
	}
	n.sendQ = n.sendQ[:0]
	n.sendHead = 0
	for i := 0; i < q; i++ {
		p, err := t.DecodePacket(d)
		if err != nil {
			return err
		}
		if p == nil {
			return d.Failf("interface %s: injection queue entry %d has no packet", n.Name(), i)
		}
		n.sendQ = append(n.sendQ, p)
	}
	n.curFlit = d.Int()
	n.curVC = d.Int()
	n.injectRR = d.Int()
	n.scheduled = d.Bool()
	vcs := d.Count()
	if d.Err() != nil {
		return d.Err()
	}
	if vcs != len(n.downCred) {
		return d.Failf("interface %s: snapshot has %d VCs, rebuilt interface has %d", n.Name(), vcs, len(n.downCred))
	}
	for vc := 0; vc < vcs; vc++ {
		n.downCred[vc] = d.Int()
	}
	if err := n.checker.LoadState(d); err != nil {
		return err
	}
	n.partial = d.Int()
	n.flitsSent = d.U64()
	n.flitsReceived = d.U64()
	return d.Err()
}

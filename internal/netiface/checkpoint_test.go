package netiface

import (
	"bytes"
	"strings"
	"testing"

	"supersim/internal/snapshot"
	"supersim/internal/types"
)

// stalledIface builds an interface stalled mid-message: one VC, one credit,
// a 4-flit message in two packets — after the run, the head packet is half
// sent and the second packet is still queued.
func stalledIface(t *testing.T) *Interface {
	t.Helper()
	s, n, stub, _ := rig(t, 1, 1, nil)
	n.SendMessage(msg(9, 0, 5, 4, 2))
	s.Run()
	if len(stub.flits) != 1 || n.QueueDepth() != 2 {
		t.Fatalf("rig not stalled as expected: %d flits, depth %d", len(stub.flits), n.QueueDepth())
	}
	return n
}

func saveIface(n *Interface, tab *types.MessageTable) []byte {
	e := snapshot.NewEncoder()
	n.SaveState(e, tab)
	return e.Bytes()
}

func TestInterfaceStateRoundTrip(t *testing.T) {
	n := stalledIface(t)
	tab := types.NewMessageTable()
	n.Collect(tab)
	if tab.Len() != 1 {
		t.Fatalf("collected %d messages, want 1", tab.Len())
	}
	te := snapshot.NewEncoder()
	tab.SaveState(te)
	data := saveIface(n, tab)

	rtab, err := types.LoadMessageTable(snapshot.NewDecoder(te.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	_, got, _, _ := rig(t, 1, 1, nil)
	d := snapshot.NewDecoder(data)
	if err := got.LoadState(d, rtab); err != nil {
		t.Fatal(err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left after load", d.Remaining())
	}
	if got.QueueDepth() != 2 || got.FlitsSent() != 1 || got.curFlit != n.curFlit {
		t.Fatalf("restored interface: depth %d sent %d curFlit %d",
			got.QueueDepth(), got.FlitsSent(), got.curFlit)
	}
	if got.InjectionCredits()[0] != 0 {
		t.Fatalf("restored credits %v, want exhausted", got.InjectionCredits())
	}
	if !bytes.Equal(saveIface(got, rtab), data) {
		t.Fatal("re-saved interface state is not byte-identical")
	}
}

func TestInterfaceLoadRejectsMismatchedBuild(t *testing.T) {
	n := stalledIface(t)
	tab := types.NewMessageTable()
	n.Collect(tab)
	data := saveIface(n, tab)

	// A rebuild with a different VC count must be rejected.
	_, wide, _, _ := rig(t, 2, 1, nil)
	if err := wide.LoadState(snapshot.NewDecoder(data), tab); err == nil ||
		!strings.Contains(err.Error(), "VCs") {
		t.Fatalf("VC mismatch: err = %v", err)
	}

	// An injection-queue entry whose packet reference is absent.
	e := snapshot.NewEncoder()
	n.SaveOrder(e)
	e.Int(1)      // one queued packet
	e.Bool(false) // ... with no message reference
	_, got, _, _ := rig(t, 1, 1, nil)
	if err := got.LoadState(snapshot.NewDecoder(e.Bytes()), tab); err == nil ||
		!strings.Contains(err.Error(), "no packet") {
		t.Fatalf("missing packet: err = %v", err)
	}

	for _, nbytes := range []int{0, 1, len(data) / 2, len(data) - 1} {
		_, fresh, _, _ := rig(t, 1, 1, nil)
		if err := fresh.LoadState(snapshot.NewDecoder(data[:nbytes]), tab); err == nil {
			t.Fatalf("truncation to %d bytes loaded without error", nbytes)
		}
	}
}

// Package netiface implements the network interface that connects one
// terminal (endpoint) to its router. The interface owns the injection side —
// segmenting messages into packets and flits, choosing an injection VC, and
// respecting credits and channel bandwidth — and the ejection side —
// verifying delivery order, returning credits, reassembling packets into
// messages and handing them to the terminal.
package netiface

import (
	"supersim/internal/channel"
	"supersim/internal/config"
	"supersim/internal/sim"
	"supersim/internal/telemetry"
	"supersim/internal/types"
	"supersim/internal/verify"
)

const (
	evInject = iota
)

// MessageSink consumes fully delivered messages (the Terminal).
type MessageSink interface {
	DeliverMessage(m *types.Message)
}

// InjectionPolicy returns the set of VCs a packet may start on. Networks
// supply a policy consistent with their routing algorithm's VC discipline.
type InjectionPolicy func(pkt *types.Packet) []int

// Interface is the per-terminal network interface component.
type Interface struct {
	sim.ComponentBase
	id        int
	vcs       int
	chanClock *sim.Clock

	//sslint:nosnapshot — topology wiring, re-established by ConnectOut during the rebuild
	outCh *channel.Channel // to the router input port
	//sslint:nosnapshot — topology wiring, re-established during the rebuild
	creditOut *channel.CreditChannel // credits back to the router for ejected flits
	downCred  []int                  // per VC credits at the router input buffer
	//sslint:nosnapshot — configuration constant, re-derived from the config during the rebuild
	credInit int // initial per-VC credit count
	policy   InjectionPolicy

	// sendQ[sendHead:] is the FIFO of packets awaiting injection. Dequeuing
	// advances sendHead instead of re-slicing so the buffer's capacity is
	// reused across the run (the injection path must not allocate per packet);
	// the consumed prefix is compacted away once it dominates the buffer.
	sendQ     []*types.Packet
	sendHead  int
	curFlit   int // next flit index of the head packet
	curVC     int // VC the head packet is locked to, -1 before head
	injectRR  int // rotation for VC choice ties
	scheduled bool

	checker *types.OrderChecker
	//sslint:nosnapshot — delivery wiring, re-established by SetSink during the rebuild
	sink    MessageSink
	partial int // messages with some but not all flits delivered

	// invariant verification, nil unless attached to the simulator
	v *verify.Verifier
	//sslint:nosnapshot — verification wiring, re-attached during the rebuild; ledger state is reconstructed from restored credits
	credLed *verify.CreditLedger

	// telemetry probe and span recorder, nil unless attached to the simulator
	tp *telemetry.IfaceProbe
	sp *telemetry.Spans

	// statistics
	flitsSent, flitsReceived uint64
}

// New creates an interface for terminal id. vcs is the VC count of the
// attached network; policy yields legal injection VCs per packet.
func New(s *sim.Simulator, name string, id int, cfg *config.Settings, vcs int, chanPeriod sim.Tick, policy InjectionPolicy) *Interface {
	if vcs <= 0 {
		panic("netiface: vcs must be positive")
	}
	if policy == nil {
		panic("netiface: injection policy required")
	}
	return &Interface{
		ComponentBase: sim.NewComponentBase(s, name),
		id:            id,
		vcs:           vcs,
		chanClock:     sim.NewClock(chanPeriod, 0),
		downCred:      make([]int, vcs),
		policy:        policy,
		curVC:         -1,
		checker:       types.NewOrderChecker(id),
		v:             verify.For(s),
		tp:            telemetry.ForIface(s, name, id),
		sp:            telemetry.SpansFor(s),
	}
}

// ID returns the terminal ID this interface serves.
func (n *Interface) ID() int { return n.id }

// SetMessageSink registers the consumer of delivered messages.
func (n *Interface) SetMessageSink(sink MessageSink) { n.sink = sink }

// ConnectOutput wires the flit channel toward the router.
func (n *Interface) ConnectOutput(ch *channel.Channel) { n.outCh = ch }

// ConnectCreditOut wires the credit channel that returns ejection credits to
// the router.
func (n *Interface) ConnectCreditOut(cc *channel.CreditChannel) { n.creditOut = cc }

// SetDownstreamCredits initializes the per-VC credit pool for the router's
// input buffer.
func (n *Interface) SetDownstreamCredits(perVC int) {
	if perVC <= 0 {
		n.Panicf("downstream credits must be positive")
	}
	n.credInit = perVC
	for vc := range n.downCred {
		n.downCred[vc] = perVC
	}
	if n.v != nil {
		n.credLed = n.v.NewCreditLedger(n.Name()+".inject", n.vcs, perVC)
	}
}

// VerifyIdle panics unless the interface is quiescent: nothing queued for
// injection, all router input buffer credits returned, and no partially
// received messages. The framework calls it after the network drains.
func (n *Interface) VerifyIdle() {
	if n.QueueDepth() != 0 {
		n.Panicf("idle check: %d packets still queued for injection", n.QueueDepth())
	}
	for vc, c := range n.downCred {
		if c != n.credInit {
			n.Panicf("idle check: vc %d holds %d of %d injection credits", vc, c, n.credInit)
		}
	}
	if n.checker.Outstanding() != 0 {
		n.Panicf("idle check: %d packets partially delivered", n.checker.Outstanding())
	}
	if n.partial != 0 {
		n.Panicf("idle check: %d messages partially reassembled", n.partial)
	}
}

// QueueDepth returns the number of packets waiting for injection — the
// source queue. Sustained growth indicates the network is saturated at this
// terminal's injection rate.
func (n *Interface) QueueDepth() int { return len(n.sendQ) - n.sendHead }

// FlitsSent returns the number of flits injected into the network.
func (n *Interface) FlitsSent() uint64 { return n.flitsSent }

// FlitsReceived returns the number of flits ejected from the network.
func (n *Interface) FlitsReceived() uint64 { return n.flitsReceived }

// SendMessage queues a message's packets for injection. The message must
// originate at this terminal.
//
//sslint:hotpath
func (n *Interface) SendMessage(m *types.Message) {
	if m.Src != n.id {
		n.Panicf("message %d src %d sent from terminal %d", m.ID, m.Src, n.id)
	}
	if m.Dst == n.id {
		n.Panicf("message %d targets its own source terminal", m.ID)
	}
	if len(m.Packets) == 0 {
		n.Panicf("message %d has no packets", m.ID)
	}
	if n.sp != nil {
		n.sp.Start(n.Sim(), m)
	}
	//sslint:allow hotpath — amortized send-queue growth, compacted in popPacket
	n.sendQ = append(n.sendQ, m.Packets...)
	if n.tp != nil {
		n.tp.QueueDepth(n.QueueDepth())
	}
	n.scheduleInject()
}

func (n *Interface) scheduleInject() {
	if n.scheduled || n.QueueDepth() == 0 {
		return
	}
	now := n.Sim().Now()
	t := sim.Time{Tick: n.chanClock.NextEdge(now.Tick), Eps: 1}
	if !now.Before(t) {
		t = sim.Time{Tick: n.chanClock.NextEdge(now.Tick + 1), Eps: 1}
	}
	n.scheduled = true
	n.Sim().Schedule(n, t, evInject, nil)
}

// ProcessEvent runs the injection pipeline.
func (n *Interface) ProcessEvent(ev *sim.Event) {
	if ev.Type != evInject {
		n.Panicf("unknown event type %d", ev.Type)
	}
	n.scheduled = false
	n.injectOne()
	if n.QueueDepth() > 0 {
		// Remain scheduled while credits allow progress; if blocked, the
		// next credit arrival reschedules.
		if n.headSendable() {
			n.scheduleInject()
		}
	}
}

// headSendable reports whether the head packet's next flit has a usable VC
// credit right now.
//
//sslint:hotpath
func (n *Interface) headSendable() bool {
	if n.QueueDepth() == 0 {
		return false
	}
	if n.curVC >= 0 {
		return n.downCred[n.curVC] > 0
	}
	for _, vc := range n.policy(n.sendQ[n.sendHead]) {
		if n.downCred[vc] > 0 {
			return true
		}
	}
	return false
}

//sslint:hotpath
func (n *Interface) injectOne() {
	if n.QueueDepth() == 0 {
		return
	}
	pkt := n.sendQ[n.sendHead]
	f := pkt.Flits[n.curFlit]
	if f.Head && n.curVC < 0 {
		// Choose an injection VC: among the policy's legal VCs with credit,
		// take the one with the most credits, rotating ties.
		cands := n.policy(pkt)
		if len(cands) == 0 {
			n.Panicf("injection policy returned no VCs for %v", pkt)
		}
		best := -1
		for i := 0; i < len(cands); i++ {
			vc := cands[(n.injectRR+i)%len(cands)]
			if vc < 0 || vc >= n.vcs {
				n.Panicf("injection policy uses unregistered VC %d", vc)
			}
			if n.downCred[vc] > 0 && (best < 0 || n.downCred[vc] > n.downCred[best]) {
				best = vc
			}
		}
		if best < 0 {
			if n.tp != nil {
				n.tp.Backpressure()
			}
			return // no credits on any legal VC; wait for credit arrival
		}
		n.injectRR++
		n.curVC = best
	}
	if n.curVC < 0 || n.downCred[n.curVC] < 1 {
		if n.tp != nil {
			n.tp.Backpressure()
		}
		return // credit stall mid-packet
	}
	if !n.outCh.Available(n.Sim().Now().Tick) {
		return // channel busy this cycle (should not happen at edge pacing)
	}
	now := n.Sim().Now().Tick
	f.VC = n.curVC
	n.downCred[n.curVC]--
	if n.v != nil {
		// Register the flit in the in-flight ledger before the channel's
		// touch check sees it.
		n.v.FlitInjected(f)
	}
	if n.credLed != nil {
		// Cross-check the credit mirror.
		n.credLed.Debit(n.curVC, n.downCred[n.curVC])
	}
	if f.Head {
		pkt.InjectTime = now
		if pkt.ID == 0 && f.ID == 0 {
			pkt.Msg.InjectTime = now
		}
	}
	if n.sp != nil && n.sp.Tracked(f) {
		// Creation to injection-channel entry is source queueing: the wait
		// behind earlier packets plus credit backpressure.
		n.sp.Step(n.Sim(), now, f, telemetry.SpanQueue)
	}
	n.outCh.Inject(f)
	n.flitsSent++
	if n.tp != nil {
		n.tp.FlitSent(n.Sim(), now, f)
	}
	if f.Tail {
		n.popPacket()
		n.curFlit = 0
		n.curVC = -1
	} else {
		n.curFlit++
	}
}

// popPacket dequeues the head packet. The released slot is dropped lazily:
// the queue resets when it drains and compacts when the consumed prefix is
// at least half of a non-trivial buffer, keeping dequeue O(1) amortized
// without unbounded growth at saturation.
//
//sslint:hotpath
func (n *Interface) popPacket() {
	n.sendQ[n.sendHead] = nil
	n.sendHead++
	switch {
	case n.sendHead == len(n.sendQ):
		n.sendQ = n.sendQ[:0]
		n.sendHead = 0
	case n.sendHead >= 32 && n.sendHead*2 >= len(n.sendQ):
		n.sendQ = n.sendQ[:copy(n.sendQ, n.sendQ[n.sendHead:])]
		n.sendHead = 0
	}
	if n.tp != nil {
		n.tp.QueueDepth(n.QueueDepth())
	}
}

// ReceiveFlit ejects a flit from the network: the delivery checks run, the
// credit returns to the router, and completed messages go to the sink.
//
//sslint:hotpath
func (n *Interface) ReceiveFlit(port int, f *types.Flit) {
	now := n.Sim().Now().Tick
	n.flitsReceived++
	if n.tp != nil {
		n.tp.FlitReceived(n.Sim(), now, f)
	}
	if n.v != nil {
		n.v.FlitRetired(f)
	}
	packetDone := n.checker.Check(f)
	n.creditOut.Inject(types.Credit{VC: f.VC})
	// The reassembly countdown lives in the message (initialized to the flit
	// count at construction) instead of an interface-side map; only the count
	// of partially received messages is tracked here, for VerifyIdle.
	m := f.Pkt.Msg
	if m.RxRemaining == m.TotalFlits() {
		n.partial++ // first flit of a message seen at the receiver
	}
	m.RxRemaining--
	if packetDone {
		f.Pkt.ReceiveTime = now
	}
	if m.RxRemaining == 0 {
		n.partial--
		m.ReceiveTime = now
		if n.sink == nil {
			n.Panicf("message delivered but no sink registered")
		}
		n.sink.DeliverMessage(m)
	}
}

// HeadPacket returns the packet at the head of the injection queue, or nil
// when the queue is empty. The stall diagnostician uses it to name the
// message a blocked terminal is trying to send.
func (n *Interface) HeadPacket() *types.Packet {
	if n.QueueDepth() == 0 {
		return nil
	}
	return n.sendQ[n.sendHead]
}

// InjectionCredits returns a copy of the per-VC credit counts for the
// router's input buffer.
func (n *Interface) InjectionCredits() []int {
	out := make([]int, len(n.downCred))
	copy(out, n.downCred)
	return out
}

// OutputChannel returns the flit channel toward the router.
func (n *Interface) OutputChannel() *channel.Channel { return n.outCh }

// ReceiveCredit restores an injection credit for a VC.
//
//sslint:hotpath
func (n *Interface) ReceiveCredit(port int, c types.Credit) {
	if c.VC < 0 || c.VC >= n.vcs {
		n.Panicf("credit for unregistered VC %d", c.VC)
	}
	n.downCred[c.VC]++
	if n.credLed != nil {
		n.credLed.Credit(c.VC, n.downCred[c.VC])
	}
	n.scheduleInject()
}

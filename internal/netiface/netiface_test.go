package netiface

import (
	"testing"

	"supersim/internal/channel"
	"supersim/internal/config"
	"supersim/internal/sim"
	"supersim/internal/types"
)

// routerStub collects flits arriving from the interface and can return
// credits like a router input buffer would.
type routerStub struct {
	s       *sim.Simulator
	flits   []*types.Flit
	times   []sim.Tick
	creditC *channel.CreditChannel // back to the interface
	auto    bool                   // return a credit immediately on arrival
}

func (r *routerStub) ReceiveFlit(port int, f *types.Flit) {
	r.flits = append(r.flits, f)
	r.times = append(r.times, r.s.Now().Tick)
	if r.auto {
		r.creditC.Inject(types.Credit{VC: f.VC})
	}
}

func (r *routerStub) ReceiveCredit(port int, c types.Credit) {}

// msgSink collects delivered messages.
type msgSink struct{ msgs []*types.Message }

func (m *msgSink) DeliverMessage(msg *types.Message) { m.msgs = append(m.msgs, msg) }

// rig builds an interface wired to a router stub with the given credit count.
func rig(t *testing.T, vcs, credits int, policy InjectionPolicy) (*sim.Simulator, *Interface, *routerStub, *msgSink) {
	t.Helper()
	s := sim.NewSimulator(1)
	if policy == nil {
		all := make([]int, vcs)
		for i := range all {
			all[i] = i
		}
		policy = func(pkt *types.Packet) []int { return all }
	}
	n := New(s, "iface", 0, config.New(), vcs, 2 /* chanPeriod */, policy)
	stub := &routerStub{s: s}
	out := channel.New(s, "inj", 3, 2)
	out.SetSink(stub, 0)
	n.ConnectOutput(out)
	cc := channel.NewCredit(s, "cr", 3)
	cc.SetSink(n, 0)
	stub.creditC = cc
	ej := channel.NewCredit(s, "ej", 3)
	ej.SetSink(stub, 0)
	n.ConnectCreditOut(ej)
	n.SetDownstreamCredits(credits)
	sink := &msgSink{}
	n.SetMessageSink(sink)
	return s, n, stub, sink
}

func msg(id uint64, src, dst, flits, maxPkt int) *types.Message {
	return types.NewMessage(id, 0, src, dst, flits, maxPkt)
}

func TestInjectSingleFlitMessage(t *testing.T) {
	s, n, stub, _ := rig(t, 2, 4, nil)
	m := msg(1, 0, 5, 1, 1)
	m.CreateTime = 0
	n.SendMessage(m)
	s.Run()
	if len(stub.flits) != 1 {
		t.Fatalf("router got %d flits", len(stub.flits))
	}
	if stub.flits[0].VC < 0 || stub.flits[0].VC > 1 {
		t.Fatalf("flit VC %d unset", stub.flits[0].VC)
	}
	if m.InjectTime+3 != stub.times[0] {
		t.Fatalf("inject time %d inconsistent with arrival %d (latency 3)",
			m.InjectTime, stub.times[0])
	}
	if n.FlitsSent() != 1 {
		t.Fatal("FlitsSent")
	}
}

func TestInjectionPacedByChannelPeriod(t *testing.T) {
	s, n, stub, _ := rig(t, 1, 16, nil)
	n.SendMessage(msg(1, 0, 5, 4, 4))
	s.Run()
	if len(stub.flits) != 4 {
		t.Fatalf("got %d flits", len(stub.flits))
	}
	for i := 1; i < 4; i++ {
		if stub.times[i]-stub.times[i-1] != 2 {
			t.Fatalf("flit spacing %d, want channel period 2", stub.times[i]-stub.times[i-1])
		}
	}
}

func TestInjectionRespectsCredits(t *testing.T) {
	// Only 2 credits and no returns: injection must stall after 2 flits.
	s, n, stub, _ := rig(t, 1, 2, nil)
	n.SendMessage(msg(1, 0, 5, 4, 4))
	s.Run()
	if len(stub.flits) != 2 {
		t.Fatalf("sent %d flits with 2 credits", len(stub.flits))
	}
	if n.QueueDepth() != 1 {
		t.Fatalf("queue depth %d", n.QueueDepth())
	}
	// Returning credits resumes the stream.
	stub.creditC.Inject(types.Credit{VC: 0})
	stub.creditC.Inject(types.Credit{VC: 0})
	s.Run()
	if len(stub.flits) != 4 {
		t.Fatalf("sent %d flits after credit return", len(stub.flits))
	}
}

func TestInjectionCreditLoopSustains(t *testing.T) {
	s, n, stub, _ := rig(t, 1, 2, nil)
	stub.auto = true // stub returns credits like a draining router
	n.SendMessage(msg(1, 0, 5, 32, 32))
	s.Run()
	if len(stub.flits) != 32 {
		t.Fatalf("credit loop delivered %d flits", len(stub.flits))
	}
}

func TestInjectionPolicyRestrictsVCs(t *testing.T) {
	s, n, stub, _ := rig(t, 4, 8, func(pkt *types.Packet) []int { return []int{2} })
	n.SendMessage(msg(1, 0, 5, 2, 2))
	s.Run()
	for _, f := range stub.flits {
		if f.VC != 2 {
			t.Fatalf("flit on VC %d, policy allows only 2", f.VC)
		}
	}
}

func TestPacketLockedToOneVC(t *testing.T) {
	s, n, stub, _ := rig(t, 4, 8, nil)
	n.SendMessage(msg(1, 0, 5, 6, 6))
	s.Run()
	vc := stub.flits[0].VC
	for _, f := range stub.flits {
		if f.VC != vc {
			t.Fatal("packet flits switched VCs mid-flight")
		}
	}
}

func TestSendMessageValidation(t *testing.T) {
	_, n, _, _ := rig(t, 1, 4, nil)
	mustPanic(t, func() { n.SendMessage(msg(1, 3, 5, 1, 1)) }) // wrong src
	mustPanic(t, func() { n.SendMessage(msg(1, 0, 0, 1, 1)) }) // self send
}

func TestEjectDeliversAndReturnsCredits(t *testing.T) {
	s, n, _, sink := rig(t, 2, 4, nil)
	m := types.NewMessage(9, 0, 7, 0, 3, 3) // dst is this interface (id 0)
	for _, f := range m.Packets[0].Flits {
		f.VC = 1
		n.ReceiveFlit(0, f)
	}
	s.Run()
	if len(sink.msgs) != 1 || sink.msgs[0] != m {
		t.Fatal("message not delivered to sink")
	}
	if m.ReceiveTime != 0 {
		t.Fatalf("receive time %d, want 0 (flits delivered at tick 0)", m.ReceiveTime)
	}
	// One eject credit per flit must have reached the router stub... they
	// travel via the eject credit channel into stub.ReceiveCredit (no-op),
	// so just verify the flits were counted.
	if n.FlitsReceived() != 3 {
		t.Fatalf("FlitsReceived = %d", n.FlitsReceived())
	}
}

func TestEjectOutOfOrderPanics(t *testing.T) {
	_, n, _, _ := rig(t, 1, 4, nil)
	m := types.NewMessage(9, 0, 7, 0, 2, 2)
	m.Packets[0].Flits[1].VC = 0
	mustPanic(t, func() { n.ReceiveFlit(0, m.Packets[0].Flits[1]) })
}

func TestEjectWrongDestinationPanics(t *testing.T) {
	_, n, _, _ := rig(t, 1, 4, nil)
	m := types.NewMessage(9, 0, 7, 3, 1, 1) // dst 3, interface is 0
	m.Packets[0].Flits[0].VC = 0
	mustPanic(t, func() { n.ReceiveFlit(0, m.Packets[0].Flits[0]) })
}

func TestMultiPacketMessageReassembly(t *testing.T) {
	s, n, _, sink := rig(t, 1, 4, nil)
	m := types.NewMessage(9, 0, 7, 0, 8, 3) // 3 packets: 3+3+2
	for _, p := range m.Packets {
		for _, f := range p.Flits {
			f.VC = 0
			n.ReceiveFlit(0, f)
		}
	}
	s.Run()
	if len(sink.msgs) != 1 {
		t.Fatal("multi-packet message not reassembled")
	}
	if n.QueueDepth() != 0 {
		t.Fatal("queue depth should be zero")
	}
}

func TestConstructorValidation(t *testing.T) {
	s := sim.NewSimulator(1)
	pol := func(pkt *types.Packet) []int { return []int{0} }
	mustPanic(t, func() { New(s, "x", 0, config.New(), 0, 1, pol) })
	mustPanic(t, func() { New(s, "x", 0, config.New(), 1, 1, nil) })
	n := New(s, "x", 0, config.New(), 1, 1, pol)
	mustPanic(t, func() { n.SetDownstreamCredits(0) })
	mustPanic(t, func() { n.ReceiveCredit(0, types.Credit{VC: 5}) })
}

func TestBadPolicyCaught(t *testing.T) {
	s, n, _, _ := rig(t, 2, 4, func(pkt *types.Packet) []int { return []int{7} })
	n.SendMessage(msg(1, 0, 5, 1, 1))
	panicked := false
	func() {
		defer func() { panicked = recover() != nil }()
		s.Run()
	}()
	if !panicked {
		t.Fatal("unregistered VC from policy must panic")
	}
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

func TestVerifyIdleCleanAfterDrain(t *testing.T) {
	s, n, stub, _ := rig(t, 1, 2, nil)
	stub.auto = true
	n.SendMessage(msg(1, 0, 5, 5, 5))
	s.Run()
	n.VerifyIdle() // must not panic
}

func TestVerifyIdleDetectsQueuedPackets(t *testing.T) {
	_, n, _, _ := rig(t, 1, 1, nil)
	n.SendMessage(msg(1, 0, 5, 4, 4)) // credits too low to drain without returns
	mustPanic(t, func() { n.VerifyIdle() })
}

func TestVerifyIdleDetectsMissingCredits(t *testing.T) {
	s, n, _, _ := rig(t, 1, 4, nil) // stub does NOT auto-return credits
	n.SendMessage(msg(1, 0, 5, 2, 2))
	s.Run()
	mustPanic(t, func() { n.VerifyIdle() }) // two credits still downstream
}

func TestVerifyIdleDetectsPartialMessage(t *testing.T) {
	s, n, _, _ := rig(t, 1, 4, nil)
	m := types.NewMessage(9, 0, 7, 0, 3, 3)
	m.Packets[0].Flits[0].VC = 0
	n.ReceiveFlit(0, m.Packets[0].Flits[0]) // only 1 of 3 flits arrives
	s.Run()
	mustPanic(t, func() { n.VerifyIdle() })
}

func TestInspectionAccessors(t *testing.T) {
	s, n, _, _ := rig(t, 2, 3, nil)
	if n.OutputChannel() == nil {
		t.Fatal("OutputChannel is nil on a connected interface")
	}
	if n.HeadPacket() != nil {
		t.Fatal("HeadPacket non-nil on an idle interface")
	}
	creds := n.InjectionCredits()
	if len(creds) != 2 || creds[0] != 3 || creds[1] != 3 {
		t.Fatalf("InjectionCredits = %v, want [3 3]", creds)
	}
	creds[0] = -99 // the returned slice must be a copy
	if n.InjectionCredits()[0] != 3 {
		t.Fatal("InjectionCredits aliases internal state")
	}

	m := msg(1, 0, 5, 4, 2)
	n.SendMessage(m)
	if hp := n.HeadPacket(); hp == nil || hp.Msg != m || hp.ID != 0 {
		t.Fatalf("HeadPacket = %v, want packet 0 of the queued message", hp)
	}
	s.Run()
	if n.HeadPacket() != nil {
		t.Fatal("HeadPacket non-nil after the queue drained")
	}
	if got := n.InjectionCredits(); got[0]+got[1] != 2 {
		// 4 flits debited from 6 total credits, none returned by the stub
		t.Fatalf("InjectionCredits = %v after sending 4 flits, want 2 remaining in total", got)
	}
}

package config

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadFileBasic(t *testing.T) {
	dir := t.TempDir()
	p := writeFile(t, dir, "a.json", `{"x": 1, "y": {"z": "s"}}`)
	s, err := LoadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.UInt("x") != 1 || s.String("y.z") != "s" {
		t.Fatal("values wrong")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/file.json"); err == nil {
		t.Fatal("expected error")
	}
}

func TestIncludeMergesAndOverrides(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "base.json", `{
	  "router": {"architecture": "input_queued", "num_vcs": 2},
	  "latency": 50
	}`)
	p := writeFile(t, dir, "top.json", `{
	  "network": {
	    "$include": "base.json",
	    "router": {"num_vcs": 8},
	    "extra": true
	  }
	}`)
	s, err := LoadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	// base value preserved
	if s.String("network.router.architecture") != "input_queued" {
		t.Error("included value lost")
	}
	// overlay wins
	if s.UInt("network.router.num_vcs") != 8 {
		t.Error("overlay did not override include")
	}
	if s.UInt("network.latency") != 50 {
		t.Error("included sibling lost")
	}
	if !s.Bool("network.extra") {
		t.Error("overlay sibling lost")
	}
}

func TestNestedIncludes(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "inner.json", `{"deep": 3}`)
	writeFile(t, dir, "mid.json", `{"inner": {"$include": "inner.json"}, "mid": 2}`)
	p := writeFile(t, dir, "outer.json", `{"a": {"$include": "mid.json"}}`)
	s, err := LoadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.UInt("a.inner.deep") != 3 || s.UInt("a.mid") != 2 {
		t.Fatal("nested include values wrong")
	}
}

func TestIncludeCycleDetected(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "a.json", `{"b": {"$include": "b.json"}}`)
	p := writeFile(t, dir, "b.json", `{"a": {"$include": "a.json"}}`)
	_, err := LoadFile(p)
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("expected cycle error, got %v", err)
	}
}

func TestIncludeInArray(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "app.json", `{"type": "blast", "rate": 0.5}`)
	p := writeFile(t, dir, "top.json", `{"apps": [{"$include": "app.json"}, {"type": "pulse"}]}`)
	s, err := LoadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	apps := s.Array("apps")
	if len(apps) != 2 {
		t.Fatalf("apps len %d", len(apps))
	}
	first := FromMap(apps[0].(map[string]any))
	if first.String("type") != "blast" || first.Float("rate") != 0.5 {
		t.Fatal("array include wrong")
	}
}

func TestRefResolution(t *testing.T) {
	dir := t.TempDir()
	p := writeFile(t, dir, "c.json", `{
	  "defaults": {"buffer": {"depth": 128, "kind": "fifo"}},
	  "router": {
	    "input_buffer": {"$ref": "defaults.buffer"},
	    "output_buffer": {"$ref": "defaults.buffer"}
	  }
	}`)
	s, err := LoadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.UInt("router.input_buffer.depth") != 128 {
		t.Fatal("ref not resolved")
	}
	// The copies must be independent.
	s.Set("router.input_buffer.depth", 64)
	if s.UInt("router.output_buffer.depth") != 128 {
		t.Fatal("refs share storage")
	}
}

func TestRefToRef(t *testing.T) {
	p := writeFile(t, t.TempDir(), "c.json", `{
	  "a": 5,
	  "b": {"$ref": "a"},
	  "c": {"$ref": "b"}
	}`)
	s, err := LoadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.UInt("c") != 5 {
		t.Fatalf("c = %v", s.UInt("c"))
	}
}

func TestRefMissingPath(t *testing.T) {
	p := writeFile(t, t.TempDir(), "c.json", `{"a": {"$ref": "no.such.path"}}`)
	if _, err := LoadFile(p); err == nil || !strings.Contains(err.Error(), "no such path") {
		t.Fatalf("expected ref error, got %v", err)
	}
}

func TestRefCycle(t *testing.T) {
	p := writeFile(t, t.TempDir(), "c.json", `{"a": {"$ref": "b"}, "b": {"$ref": "a"}}`)
	if _, err := LoadFile(p); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestOverrides(t *testing.T) {
	s := MustParse(`{"network": {"concentration": 4, "router": {"architecture": "oq"}}}`)
	err := s.ApplyOverrides([]string{
		"network.router.architecture=string=my_arch",
		"network.concentration=uint=16",
		"network.enable=bool=true",
		"network.scale=float=0.75",
		"network.offset=int=-2",
		"network.widths=json=[4,4]",
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.String("network.router.architecture") != "my_arch" {
		t.Error("string override")
	}
	if s.UInt("network.concentration") != 16 {
		t.Error("uint override")
	}
	if !s.Bool("network.enable") {
		t.Error("bool override")
	}
	if s.Float("network.scale") != 0.75 {
		t.Error("float override")
	}
	if s.Int("network.offset") != -2 {
		t.Error("int override")
	}
	if w := s.UIntList("network.widths"); len(w) != 2 || w[0] != 4 {
		t.Error("json override")
	}
}

func TestOverrideErrors(t *testing.T) {
	s := New()
	for _, bad := range []string{
		"noequals",
		"a=b",
		"a=uint=notanumber",
		"a=int=x",
		"a=float=x",
		"a=bool=x",
		"a=json={bad",
		"a=mystery=1",
		"=uint=1",
	} {
		if err := s.ApplyOverride(bad); err == nil {
			t.Errorf("override %q: expected error", bad)
		}
	}
}

package config

import (
	"fmt"
	"strconv"
	"strings"
)

// ApplyOverride applies one command line override of the form
//
//	path.to.setting=type=value
//
// where type is one of uint, int, float, string, bool or json. For example:
//
//	network.router.architecture=string=my_arch
//	network.concentration=uint=16
//	workload.applications.0.enabled=bool=true   (array indexing unsupported;
//	                                             use object keys)
func (s *Settings) ApplyOverride(arg string) error {
	parts := strings.SplitN(arg, "=", 3)
	if len(parts) != 3 {
		return fmt.Errorf("config: override %q: want path=type=value", arg)
	}
	path, typ, raw := parts[0], parts[1], parts[2]
	if path == "" {
		return fmt.Errorf("config: override %q: empty path", arg)
	}
	var value any
	switch typ {
	case "uint":
		u, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			return fmt.Errorf("config: override %q: %v", arg, err)
		}
		value = u
	case "int":
		i, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return fmt.Errorf("config: override %q: %v", arg, err)
		}
		value = i
	case "float":
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return fmt.Errorf("config: override %q: %v", arg, err)
		}
		value = f
	case "string":
		value = raw
	case "bool":
		b, err := strconv.ParseBool(raw)
		if err != nil {
			return fmt.Errorf("config: override %q: %v", arg, err)
		}
		value = b
	case "json":
		sub, err := Parse([]byte(`{"v":` + raw + `}`))
		if err != nil {
			return fmt.Errorf("config: override %q: %v", arg, err)
		}
		value = sub.Map()["v"]
	default:
		return fmt.Errorf("config: override %q: unknown type %q", arg, typ)
	}
	// Set panics with *Error when the path traverses a non-object value;
	// overrides come straight from the command line, so that becomes a
	// returned error rather than a crash.
	return func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				if ce, ok := r.(*Error); ok {
					err = fmt.Errorf("config: override %q: %w", arg, ce)
					return
				}
				panic(r)
			}
		}()
		s.Set(path, value)
		return nil
	}()
}

// ApplyOverrides applies a list of command line overrides in order.
func (s *Settings) ApplyOverrides(args []string) error {
	for _, a := range args {
		if err := s.ApplyOverride(a); err != nil {
			return err
		}
	}
	return nil
}

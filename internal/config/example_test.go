package config_test

import (
	"fmt"

	"supersim/internal/config"
)

// Settings are hierarchical JSON; blocks are passed to component
// constructors without the parents peeking inside them.
func Example() {
	s := config.MustParse(`{
	  "network": {
	    "topology": "torus",
	    "router": {"architecture": "input_queued", "num_vcs": 2}
	  }
	}`)
	router := s.Sub("network.router")
	fmt.Println(router.String("architecture"), router.UInt("num_vcs"))
	// Output: input_queued 2
}

// Command line overrides use the path=type=value syntax from the paper's
// Listing 1.
func ExampleSettings_ApplyOverride() {
	s := config.MustParse(`{"network": {"concentration": 4}}`)
	_ = s.ApplyOverride("network.router.architecture=string=my_arch")
	_ = s.ApplyOverride("network.concentration=uint=16")
	fmt.Println(s.String("network.router.architecture"), s.UInt("network.concentration"))
	// Output: my_arch 16
}

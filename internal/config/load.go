package config

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// LoadFile reads a JSON settings file and post-processes it:
//
//   - File inclusion: an object containing a "$include" key whose value is a
//     file path (relative to the including file) is replaced by that file's
//     contents, with the including object's other keys merged over it.
//   - Object referencing: an object of the form {"$ref": "a.b.c"} is replaced
//     by a deep copy of the value at the absolute dotted path a.b.c in the
//     fully-included document. References may point at referenced values;
//     cycles are detected and reported.
func LoadFile(path string) (*Settings, error) {
	node, err := loadRaw(path, nil)
	if err != nil {
		return nil, err
	}
	m, ok := node.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("config: %s: top level must be a JSON object", path)
	}
	s := FromMap(m)
	if err := s.ResolveRefs(); err != nil {
		return nil, err
	}
	return s, nil
}

func loadRaw(path string, stack []string) (any, error) {
	for _, p := range stack {
		if p == path {
			return nil, fmt.Errorf("config: include cycle: %s", strings.Join(append(stack, path), " -> "))
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("config: %s: %w", path, err)
	}
	return expandIncludes(s.Map(), filepath.Dir(path), append(stack, path))
}

func expandIncludes(v any, dir string, stack []string) (any, error) {
	switch t := v.(type) {
	case map[string]any:
		if inc, ok := t["$include"]; ok {
			incPath, ok := inc.(string)
			if !ok {
				return nil, fmt.Errorf("config: $include value must be a string, got %T", inc)
			}
			if !filepath.IsAbs(incPath) {
				incPath = filepath.Join(dir, incPath)
			}
			base, err := loadRaw(incPath, stack)
			if err != nil {
				return nil, err
			}
			baseMap, ok := base.(map[string]any)
			if !ok {
				return nil, fmt.Errorf("config: %s: included file must hold a JSON object", incPath)
			}
			// The including object's other keys override the included file.
			overlay := make(map[string]any, len(t)-1)
			for k, val := range t {
				if k == "$include" {
					continue
				}
				ev, err := expandIncludes(val, dir, stack)
				if err != nil {
					return nil, err
				}
				overlay[k] = ev
			}
			return mergeMaps(baseMap, overlay), nil
		}
		out := make(map[string]any, len(t))
		for k, val := range t {
			ev, err := expandIncludes(val, dir, stack)
			if err != nil {
				return nil, err
			}
			out[k] = ev
		}
		return out, nil
	case []any:
		out := make([]any, len(t))
		for i, val := range t {
			ev, err := expandIncludes(val, dir, stack)
			if err != nil {
				return nil, err
			}
			out[i] = ev
		}
		return out, nil
	default:
		return v, nil
	}
}

// mergeMaps deep-merges overlay into base (overlay wins; nested objects merge
// recursively). base is mutated and returned.
func mergeMaps(base, overlay map[string]any) map[string]any {
	for k, ov := range overlay {
		if bm, ok := base[k].(map[string]any); ok {
			if om, ok := ov.(map[string]any); ok {
				base[k] = mergeMaps(bm, om)
				continue
			}
		}
		base[k] = ov
	}
	return base
}

// ResolveRefs replaces every {"$ref": "a.b.c"} object in the document with a
// deep copy of the referenced value. Paths are absolute in this document.
func (s *Settings) ResolveRefs() error {
	const maxDepth = 64
	var resolve func(v any, depth int) (any, error)
	resolve = func(v any, depth int) (any, error) {
		if depth > maxDepth {
			return nil, fmt.Errorf("config: $ref chain too deep (cycle?)")
		}
		switch t := v.(type) {
		case map[string]any:
			if ref, ok := t["$ref"]; ok && len(t) == 1 {
				refPath, ok := ref.(string)
				if !ok {
					return nil, fmt.Errorf("config: $ref value must be a string, got %T", ref)
				}
				target, ok := s.lookup(refPath)
				if !ok {
					return nil, fmt.Errorf("config: $ref %q: no such path", refPath)
				}
				return resolve(deepCopy(target), depth+1)
			}
			for k, val := range t {
				rv, err := resolve(val, depth+1)
				if err != nil {
					return nil, err
				}
				t[k] = rv
			}
			return t, nil
		case []any:
			for i, val := range t {
				rv, err := resolve(val, depth+1)
				if err != nil {
					return nil, err
				}
				t[i] = rv
			}
			return t, nil
		default:
			return v, nil
		}
	}
	_, err := resolve(s.node, 0)
	return err
}

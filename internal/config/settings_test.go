package config

import (
	"strings"
	"testing"
	"testing/quick"
)

const sample = `{
  "network": {
    "topology": "torus",
    "concentration": 4,
    "channel": {"latency": 50, "scale": 1.5},
    "router": {
      "architecture": "input_queued",
      "num_vcs": 2,
      "adaptive": true,
      "widths": [8, 8, 8, 8],
      "names": ["a", "b"],
      "rates": [0.5, 1.0]
    }
  },
  "workload": {"message_size": 1}
}`

func TestParseAndGetters(t *testing.T) {
	s := MustParse(sample)
	if got := s.String("network.topology"); got != "torus" {
		t.Errorf("topology = %q", got)
	}
	if got := s.UInt("network.concentration"); got != 4 {
		t.Errorf("concentration = %d", got)
	}
	if got := s.Float("network.channel.scale"); got != 1.5 {
		t.Errorf("scale = %v", got)
	}
	if got := s.Bool("network.router.adaptive"); got != true {
		t.Errorf("adaptive = %v", got)
	}
	if got := s.Int("workload.message_size"); got != 1 {
		t.Errorf("message_size = %d", got)
	}
}

func TestSubBlocks(t *testing.T) {
	s := MustParse(sample)
	router := s.Sub("network.router")
	if got := router.String("architecture"); got != "input_queued" {
		t.Errorf("architecture = %q", got)
	}
	if router.Path() != "network.router" {
		t.Errorf("Path = %q", router.Path())
	}
	// Sub of sub
	net := s.Sub("network")
	ch := net.Sub("channel")
	if got := ch.UInt("latency"); got != 50 {
		t.Errorf("latency = %d", got)
	}
	if ch.Path() != "network.channel" {
		t.Errorf("nested Path = %q", ch.Path())
	}
}

func TestSubOrEmpty(t *testing.T) {
	s := MustParse(sample)
	e := s.SubOr("network.nonexistent")
	if len(e.Map()) != 0 {
		t.Fatal("SubOr of missing path should be empty")
	}
	if e.UIntOr("x", 9) != 9 {
		t.Fatal("default on empty SubOr")
	}
}

func TestLists(t *testing.T) {
	s := MustParse(sample)
	w := s.UIntList("network.router.widths")
	if len(w) != 4 || w[0] != 8 {
		t.Errorf("widths = %v", w)
	}
	n := s.StringList("network.router.names")
	if len(n) != 2 || n[1] != "b" {
		t.Errorf("names = %v", n)
	}
	r := s.FloatList("network.router.rates")
	if len(r) != 2 || r[0] != 0.5 {
		t.Errorf("rates = %v", r)
	}
}

func TestDefaults(t *testing.T) {
	s := MustParse(sample)
	if s.UIntOr("network.missing", 7) != 7 {
		t.Error("UIntOr default")
	}
	if s.StringOr("network.missing", "x") != "x" {
		t.Error("StringOr default")
	}
	if s.FloatOr("network.missing", 2.5) != 2.5 {
		t.Error("FloatOr default")
	}
	if s.BoolOr("network.missing", true) != true {
		t.Error("BoolOr default")
	}
	if s.IntOr("network.missing", -3) != -3 {
		t.Error("IntOr default")
	}
	// present values ignore defaults
	if s.UIntOr("network.concentration", 7) != 4 {
		t.Error("UIntOr present")
	}
}

func TestMissingPanicsWithPath(t *testing.T) {
	s := MustParse(sample)
	checkPanicPath := func(fn func(), wantPath string) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("expected panic")
			}
			ce, ok := r.(*Error)
			if !ok {
				t.Fatalf("panic value %T, want *Error", r)
			}
			if ce.Path != wantPath {
				t.Fatalf("error path %q, want %q", ce.Path, wantPath)
			}
		}()
		fn()
	}
	checkPanicPath(func() { s.String("network.nope") }, "network.nope")
	checkPanicPath(func() { s.UInt("network.topology") }, "network.topology")
	checkPanicPath(func() { s.Sub("network.topology") }, "network.topology")
	r := s.Sub("network.router")
	checkPanicPath(func() { r.String("ghost") }, "network.router.ghost")
}

func TestTypeMismatches(t *testing.T) {
	s := MustParse(sample)
	for _, fn := range []func(){
		func() { s.Bool("network.topology") },
		func() { s.Array("network.topology") },
		func() { s.Int("network.router.names") },
		func() { s.UInt("network.channel.scale") }, // 1.5 is not a uint
		func() { s.StringList("network.router.widths") },
		func() { s.UIntList("network.router.names") },
		func() { s.FloatList("network.router.names") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected type-mismatch panic")
				}
			}()
			fn()
		}()
	}
}

func TestSetCreatesPath(t *testing.T) {
	s := New()
	s.Set("a.b.c", 42)
	if got := s.UInt("a.b.c"); got != 42 {
		t.Fatalf("a.b.c = %d", got)
	}
	s.Set("a.b.d", "hello")
	if got := s.String("a.b.d"); got != "hello" {
		t.Fatalf("a.b.d = %q", got)
	}
	s.Set("a.b.c", 43) // overwrite
	if got := s.UInt("a.b.c"); got != 43 {
		t.Fatalf("overwrite = %d", got)
	}
}

func TestSetNumericNormalization(t *testing.T) {
	s := New()
	s.Set("u", uint64(1<<62))
	s.Set("i", int64(-5))
	s.Set("f", 3.25)
	s.Set("n", 7)
	if s.UInt("u") != 1<<62 {
		t.Error("uint64 round trip")
	}
	if s.Int("i") != -5 {
		t.Error("int64 round trip")
	}
	if s.Float("f") != 3.25 {
		t.Error("float round trip")
	}
	if s.UInt("n") != 7 || s.Int("n") != 7 {
		t.Error("int round trip")
	}
}

func TestCloneIsolation(t *testing.T) {
	s := MustParse(sample)
	c := s.Clone()
	c.Set("network.topology", "dragonfly")
	if s.String("network.topology") != "torus" {
		t.Fatal("Clone shares state with original")
	}
	if c.String("network.topology") != "dragonfly" {
		t.Fatal("Clone lost mutation")
	}
	// nested arrays too
	c.Array("network.router.widths")[0] = "mutated"
	if _, ok := s.Array("network.router.widths")[0].(string); ok {
		t.Fatal("Clone shares nested arrays")
	}
}

func TestKeysSorted(t *testing.T) {
	s := MustParse(`{"c": 1, "a": 2, "b": 3}`)
	got := s.Keys()
	if strings.Join(got, ",") != "a,b,c" {
		t.Fatalf("Keys = %v", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := MustParse(sample)
	out := s.JSON()
	s2, err := Parse([]byte(out))
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if s2.UInt("network.concentration") != 4 {
		t.Fatal("round trip lost data")
	}
}

func TestBigIntegerPrecision(t *testing.T) {
	// Values beyond float64's 53-bit mantissa must survive.
	s := MustParse(`{"big": 9007199254740993}`)
	if got := s.UInt("big"); got != 9007199254740993 {
		t.Fatalf("big = %d", got)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse([]byte("not json")); err == nil {
		t.Error("expected parse error")
	}
	if _, err := Parse([]byte(`[1,2,3]`)); err == nil {
		t.Error("expected object-required error")
	}
}

func TestSetGetProperty(t *testing.T) {
	// Property: Set then UInt returns the value, for any key and value.
	prop := func(key uint8, val uint32) bool {
		s := New()
		path := "k" + strings.Repeat("x", int(key%5)) + ".leaf"
		s.Set(path, uint64(val))
		return s.UInt(path) == uint64(val)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFromMapNil(t *testing.T) {
	s := FromMap(nil)
	if s.Has("anything") {
		t.Fatal("nil map should be empty")
	}
	s.Set("x", 1)
	if s.UInt("x") != 1 {
		t.Fatal("Set on nil-backed settings")
	}
}

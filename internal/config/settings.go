// Package config implements the simulator's JSON-based configuration system.
//
// Instead of a custom file format, configuration uses the JSON open-standard
// format. The natural hierarchy of JSON maps onto the component hierarchy:
// the top level of a network simulation holds a "network" block and a
// "workload" block; beneath "network" are blocks such as "router" and
// "interface"; "router" holds blocks such as "arbiter"; and so on. When the
// simulator builds a component it passes the relevant sub-block to that
// component's constructor without peeking inside it.
//
// On top of plain JSON the package provides command line overrides
// ("network.concentration=uint=16"), file inclusion ("$include") and object
// referencing ("$ref") — mirroring the original simulator's settings layer.
package config

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Error is a configuration error. Builders treat configuration problems as
// fatal, so accessors panic with *Error; top-level entry points may recover
// it into an ordinary error.
type Error struct {
	Path string // settings path, e.g. "network.router.architecture"
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("config %q: %s", e.Path, e.Msg) }

func fail(path, format string, args ...any) {
	panic(&Error{Path: path, Msg: fmt.Sprintf(format, args...)})
}

// Settings is a hierarchical view into a JSON configuration document. A
// Settings value addresses one JSON object node; Sub returns views of nested
// blocks. Numbers are kept as json.Number internally so 64-bit integers do
// not lose precision.
type Settings struct {
	node map[string]any
	path string // absolute dotted path of this node, "" for root
}

// New creates an empty root Settings.
func New() *Settings {
	return &Settings{node: map[string]any{}}
}

// FromMap wraps an already-decoded JSON object. The map must follow
// encoding/json conventions (map[string]any, []any, json.Number or float64,
// string, bool, nil).
func FromMap(m map[string]any) *Settings {
	if m == nil {
		m = map[string]any{}
	}
	return &Settings{node: m}
}

// Parse decodes a JSON document into a root Settings. Numbers are preserved
// exactly via json.Number.
func Parse(data []byte) (*Settings, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.UseNumber()
	var m map[string]any
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("config: parse: %w", err)
	}
	return FromMap(m), nil
}

// MustParse is Parse for tests and literals; it panics on error.
func MustParse(data string) *Settings {
	s, err := Parse([]byte(data))
	if err != nil {
		panic(err)
	}
	return s
}

// Map returns the underlying JSON object of this node. Mutating it mutates
// the settings.
func (s *Settings) Map() map[string]any { return s.node }

// Path returns the absolute dotted path of this node ("" for the root).
func (s *Settings) Path() string { return s.path }

func (s *Settings) abs(rel string) string {
	if s.path == "" {
		return rel
	}
	if rel == "" {
		return s.path
	}
	return s.path + "." + rel
}

// lookup walks a dotted path and returns the value and whether it exists.
func (s *Settings) lookup(path string) (any, bool) {
	if path == "" {
		return s.node, true
	}
	cur := any(s.node)
	for _, part := range strings.Split(path, ".") {
		m, ok := cur.(map[string]any)
		if !ok {
			return nil, false
		}
		cur, ok = m[part]
		if !ok {
			return nil, false
		}
	}
	return cur, true
}

// Has reports whether a value exists at the dotted path.
func (s *Settings) Has(path string) bool {
	_, ok := s.lookup(path)
	return ok
}

// Keys returns the sorted keys of this object node.
func (s *Settings) Keys() []string {
	keys := make([]string, 0, len(s.node))
	for k := range s.node {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Sub returns the nested object at the dotted path. It panics if the path is
// missing or not an object.
func (s *Settings) Sub(path string) *Settings {
	v, ok := s.lookup(path)
	if !ok {
		fail(s.abs(path), "required block missing")
	}
	m, ok := v.(map[string]any)
	if !ok {
		fail(s.abs(path), "expected object, got %T", v)
	}
	return &Settings{node: m, path: s.abs(path)}
}

// SubOr returns the nested object at the path, or an empty Settings if the
// path is absent.
func (s *Settings) SubOr(path string) *Settings {
	if !s.Has(path) {
		return &Settings{node: map[string]any{}, path: s.abs(path)}
	}
	return s.Sub(path)
}

// String returns the string at the path, panicking if missing or mistyped.
func (s *Settings) String(path string) string {
	v, ok := s.lookup(path)
	if !ok {
		fail(s.abs(path), "required string missing")
	}
	str, ok := v.(string)
	if !ok {
		fail(s.abs(path), "expected string, got %T", v)
	}
	return str
}

// StringOr returns the string at the path or the default if absent.
func (s *Settings) StringOr(path, def string) string {
	if !s.Has(path) {
		return def
	}
	return s.String(path)
}

func (s *Settings) number(path string) json.Number {
	v, ok := s.lookup(path)
	if !ok {
		fail(s.abs(path), "required number missing")
	}
	switch n := v.(type) {
	case json.Number:
		return n
	case float64:
		return json.Number(strconv.FormatFloat(n, 'g', -1, 64))
	case int:
		return json.Number(strconv.Itoa(n))
	case int64:
		return json.Number(strconv.FormatInt(n, 10))
	case uint64:
		return json.Number(strconv.FormatUint(n, 10))
	default:
		fail(s.abs(path), "expected number, got %T", v)
		return ""
	}
}

// UInt returns the unsigned integer at the path.
func (s *Settings) UInt(path string) uint64 {
	n := s.number(path)
	u, err := strconv.ParseUint(n.String(), 10, 64)
	if err != nil {
		fail(s.abs(path), "expected unsigned integer, got %s", n)
	}
	return u
}

// UIntOr returns the unsigned integer at the path or the default if absent.
func (s *Settings) UIntOr(path string, def uint64) uint64 {
	if !s.Has(path) {
		return def
	}
	return s.UInt(path)
}

// Int returns the signed integer at the path.
func (s *Settings) Int(path string) int64 {
	n := s.number(path)
	i, err := strconv.ParseInt(n.String(), 10, 64)
	if err != nil {
		fail(s.abs(path), "expected integer, got %s", n)
	}
	return i
}

// IntOr returns the signed integer at the path or the default if absent.
func (s *Settings) IntOr(path string, def int64) int64 {
	if !s.Has(path) {
		return def
	}
	return s.Int(path)
}

// Float returns the floating point number at the path.
func (s *Settings) Float(path string) float64 {
	n := s.number(path)
	f, err := n.Float64()
	if err != nil {
		fail(s.abs(path), "expected float, got %s", n)
	}
	return f
}

// FloatOr returns the float at the path or the default if absent.
func (s *Settings) FloatOr(path string, def float64) float64 {
	if !s.Has(path) {
		return def
	}
	return s.Float(path)
}

// Bool returns the boolean at the path.
func (s *Settings) Bool(path string) bool {
	v, ok := s.lookup(path)
	if !ok {
		fail(s.abs(path), "required bool missing")
	}
	b, ok := v.(bool)
	if !ok {
		fail(s.abs(path), "expected bool, got %T", v)
	}
	return b
}

// BoolOr returns the bool at the path or the default if absent.
func (s *Settings) BoolOr(path string, def bool) bool {
	if !s.Has(path) {
		return def
	}
	return s.Bool(path)
}

// Array returns the raw array at the path.
func (s *Settings) Array(path string) []any {
	v, ok := s.lookup(path)
	if !ok {
		fail(s.abs(path), "required array missing")
	}
	a, ok := v.([]any)
	if !ok {
		fail(s.abs(path), "expected array, got %T", v)
	}
	return a
}

// UIntList returns the array of unsigned integers at the path.
func (s *Settings) UIntList(path string) []uint64 {
	raw := s.Array(path)
	out := make([]uint64, len(raw))
	for i, v := range raw {
		n, ok := v.(json.Number)
		if !ok {
			fail(s.abs(path), "element %d: expected number, got %T", i, v)
		}
		u, err := strconv.ParseUint(n.String(), 10, 64)
		if err != nil {
			fail(s.abs(path), "element %d: expected unsigned integer, got %s", i, n)
		}
		out[i] = u
	}
	return out
}

// FloatList returns the array of floats at the path.
func (s *Settings) FloatList(path string) []float64 {
	raw := s.Array(path)
	out := make([]float64, len(raw))
	for i, v := range raw {
		n, ok := v.(json.Number)
		if !ok {
			fail(s.abs(path), "element %d: expected number, got %T", i, v)
		}
		f, err := n.Float64()
		if err != nil {
			fail(s.abs(path), "element %d: expected float, got %s", i, n)
		}
		out[i] = f
	}
	return out
}

// StringList returns the array of strings at the path.
func (s *Settings) StringList(path string) []string {
	raw := s.Array(path)
	out := make([]string, len(raw))
	for i, v := range raw {
		str, ok := v.(string)
		if !ok {
			fail(s.abs(path), "element %d: expected string, got %T", i, v)
		}
		out[i] = str
	}
	return out
}

// Set stores a value at the dotted path, creating intermediate objects as
// needed. The value must be a JSON-compatible Go value.
func (s *Settings) Set(path string, value any) {
	if path == "" {
		fail(s.abs(path), "cannot set empty path")
	}
	parts := strings.Split(path, ".")
	m := s.node
	for _, part := range parts[:len(parts)-1] {
		next, ok := m[part]
		if !ok {
			nm := map[string]any{}
			m[part] = nm
			m = nm
			continue
		}
		nm, ok := next.(map[string]any)
		if !ok {
			fail(s.abs(path), "path element %q is not an object", part)
		}
		m = nm
	}
	m[parts[len(parts)-1]] = normalize(value)
}

// normalize converts native Go numbers to json.Number so typed getters work
// uniformly regardless of how the value entered the settings. Arrays and
// objects are normalized recursively (in place).
func normalize(v any) any {
	switch n := v.(type) {
	case int:
		return json.Number(strconv.Itoa(n))
	case int64:
		return json.Number(strconv.FormatInt(n, 10))
	case uint64:
		return json.Number(strconv.FormatUint(n, 10))
	case uint:
		return json.Number(strconv.FormatUint(uint64(n), 10))
	case float64:
		return json.Number(strconv.FormatFloat(n, 'g', -1, 64))
	case []any:
		for i, el := range n {
			n[i] = normalize(el)
		}
		return n
	case map[string]any:
		for k, el := range n {
			n[k] = normalize(el)
		}
		return n
	default:
		return v
	}
}

// Clone returns a deep copy of the settings rooted at this node.
func (s *Settings) Clone() *Settings {
	return &Settings{node: deepCopy(s.node).(map[string]any), path: s.path}
}

func deepCopy(v any) any {
	switch t := v.(type) {
	case map[string]any:
		m := make(map[string]any, len(t))
		for k, val := range t {
			m[k] = deepCopy(val)
		}
		return m
	case []any:
		a := make([]any, len(t))
		for i, val := range t {
			a[i] = deepCopy(val)
		}
		return a
	default:
		return v
	}
}

// JSON renders the settings as indented JSON.
func (s *Settings) JSON() string {
	b, err := json.MarshalIndent(s.node, "", "  ")
	if err != nil {
		fail(s.path, "marshal: %v", err)
	}
	return string(b)
}

package config

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzLoadConfig feeds arbitrary bytes through the full settings pipeline —
// JSON parse, $include expansion, $ref resolution — via a real file, the way
// every tool entry point consumes configuration. The pipeline must either
// return an error or produce a Settings document whose canonical JSON
// round-trips; it must never panic, hang on include cycles, or recurse
// without bound on $ref chains. Seed corpus: testdata/fuzz/FuzzLoadConfig.
func FuzzLoadConfig(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"simulation": {"seed": 1}, "network": {"topology": "torus"}}`,
		`{"a": {"$ref": "b"}, "b": 42}`,
		`{"a": {"$ref": "a"}}`,
		`{"$include": "other.json"}`,
		`{"$include": 7}`,
		`{"a": [1, 2.5, "x", true, null, {"b": []}]}`,
		`[1, 2, 3]`,
		`not json at all`,
		`{"deep": {"deep": {"deep": {"$ref": "deep.deep"}}}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// $include opens arbitrary paths; keep the fuzzer away from device
		// and kernel pseudo-files that can block a read forever.
		if s := string(data); strings.Contains(s, "/dev") ||
			strings.Contains(s, "/proc") || strings.Contains(s, "/sys") {
			t.Skip("include path outside sandbox")
		}
		path := filepath.Join(t.TempDir(), "config.json")
		if err := os.WriteFile(path, data, 0o600); err != nil {
			t.Fatal(err)
		}
		s, err := LoadFile(path)
		if err != nil {
			return // rejecting the input is fine; crashing is not
		}
		// A loaded document must survive a canonical-JSON round trip.
		if _, err := Parse([]byte(s.JSON())); err != nil {
			t.Fatalf("loaded settings do not round-trip: %v\n%s", err, s.JSON())
		}
	})
}

// FuzzSettingsOverride feeds arbitrary documents and override strings through
// the path=type=value command line override parser. Malformed overrides and
// paths that traverse non-object values must come back as errors — never
// panics — because they arrive verbatim from user command lines.
func FuzzSettingsOverride(f *testing.F) {
	f.Add(`{}`, "a.b=uint=3")
	f.Add(`{"a": 1}`, "a.b=uint=3")
	f.Add(`{"a": {"b": 2}}`, "a.b=int=-4")
	f.Add(`{"a": {"b": 2}}`, "a.b=float=0.25")
	f.Add(`{"a": {}}`, "a.b=string=hello")
	f.Add(`{"a": {}}`, "a.b=bool=true")
	f.Add(`{"a": {}}`, "a.b=json={\"c\": [1, 2]}")
	f.Add(`{}`, "=uint=3")
	f.Add(`{}`, "a=nosuchtype=3")
	f.Add(`{}`, "a.b")
	f.Add(`{"arr": [1, 2]}`, "arr.0=uint=9")
	f.Fuzz(func(t *testing.T, doc, arg string) {
		s, err := Parse([]byte(doc))
		if err != nil {
			t.Skip("document must parse; override parsing is under test")
		}
		if err := s.ApplyOverride(arg); err != nil {
			return
		}
		// An accepted override must leave a document that still serializes.
		if _, err := Parse([]byte(s.JSON())); err != nil {
			t.Fatalf("settings corrupt after override %q: %v", arg, err)
		}
	})
}

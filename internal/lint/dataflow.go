package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file implements the forward nil-facts dataflow analysis over the CFG
// in cfg.go. A fact is "expression key K is definitely non-nil here" or
// "definitely nil here"; keys are the canonical renderings from guards.go.
// The analysis is a must-analysis: a fact survives a join only when it holds
// on every incoming path, which is exactly the dominance property probeguard
// needs ("every path to this probe call passed a nil check") and shardsafety
// needs ("every path to this write established remote == nil").
//
// Facts come from three sources:
//
//   - branch edges: the CFG records (cond, polarity) on if/for/switch edges,
//     and condFacts extracts x != nil / x == nil conjuncts, following
//     short-circuit structure and inlining single-return guard helpers from
//     the same package;
//   - assignments: `x := y` copies y's facts to x, `x := nil` and `var x *T`
//     set the nil fact, `x := &T{...}` / new/make set the non-nil fact, and
//     every assignment kills stale facts about the target and its selector/
//     index extensions;
//   - intra-statement short-circuit: for a node inside `x != nil && x.M()`,
//     factsAt composes the left operand's facts on top of the statement-
//     entry facts.
//
// Method calls deliberately do not kill receiver facts (matching the v1
// syntactic analysis): a probe field does not become nil because an
// unrelated method ran. That is unsound in general and right for this
// codebase, where probes and remote ports are wired once at construction.

// nilFacts is a set of nil/non-nil facts keyed by canonical expression
// rendering. The nil *nilFacts value represents ⊤ (unreachable / unvisited):
// every fact holds vacuously.
type nilFacts struct {
	nonnil map[string]bool
	isnil  map[string]bool
}

func newFacts() *nilFacts {
	return &nilFacts{nonnil: map[string]bool{}, isnil: map[string]bool{}}
}

func cloneFacts(f *nilFacts) *nilFacts {
	if f == nil {
		return nil
	}
	c := newFacts()
	for k := range f.nonnil {
		c.nonnil[k] = true
	}
	for k := range f.isnil {
		c.isnil[k] = true
	}
	return c
}

// meetFacts intersects b into a and reports whether a changed. A nil a is ⊤.
func meetFacts(a, b *nilFacts) (*nilFacts, bool) {
	if a == nil {
		return cloneFacts(b), true
	}
	if b == nil {
		return a, false
	}
	changed := false
	for k := range a.nonnil {
		if !b.nonnil[k] {
			delete(a.nonnil, k)
			changed = true
		}
	}
	for k := range a.isnil {
		if !b.isnil[k] {
			delete(a.isnil, k)
			changed = true
		}
	}
	return a, changed
}

// killKey removes every fact about key k and about expressions rooted in it
// (k.f, k[i], ...): once k is reassigned, nothing derived from its old value
// is known.
func (f *nilFacts) killKey(k string) {
	if f == nil || k == "" || k == "_" {
		return
	}
	kill := func(m map[string]bool) {
		for key := range m {
			if key == k || strings.HasPrefix(key, k+".") || strings.HasPrefix(key, k+"[") {
				delete(m, key)
			}
		}
	}
	kill(f.nonnil)
	kill(f.isnil)
}

// substKey rewrites a key from a guard helper's namespace into the caller's:
// the helper parameter (or receiver) name maps to the argument's key.
func substKey(k string, subst map[string]string) string {
	if len(subst) == 0 {
		return k
	}
	for name, repl := range subst {
		if k == name {
			return repl
		}
		if strings.HasPrefix(k, name+".") || strings.HasPrefix(k, name+"[") {
			return repl + k[len(name):]
		}
	}
	return k
}

// condFacts adds to f the facts implied by cond evaluating to `when`. subst
// rewrites keys when cond comes from an inlined guard helper; depth bounds
// helper nesting.
func condFacts(p *Package, cond ast.Expr, when bool, f *nilFacts, subst map[string]string, depth int) {
	if f == nil || cond == nil {
		return
	}
	switch c := cond.(type) {
	case *ast.ParenExpr:
		condFacts(p, c.X, when, f, subst, depth)
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			condFacts(p, c.X, !when, f, subst, depth)
		}
	case *ast.BinaryExpr:
		switch {
		case c.Op == token.LAND && when:
			condFacts(p, c.X, true, f, subst, depth)
			condFacts(p, c.Y, true, f, subst, depth)
		case c.Op == token.LOR && !when:
			condFacts(p, c.X, false, f, subst, depth)
			condFacts(p, c.Y, false, f, subst, depth)
		case c.Op == token.NEQ || c.Op == token.EQL:
			k, ok := nilComparand(c)
			if !ok || k == "" {
				return
			}
			k = substKey(k, subst)
			if (c.Op == token.NEQ) == when {
				f.nonnil[k] = true
			} else {
				f.isnil[k] = true
			}
		}
	case *ast.CallExpr:
		if depth >= 2 {
			return
		}
		ret, inner := p.inlinableGuard(c, subst)
		if ret != nil {
			condFacts(p, ret, when, f, inner, depth+1)
		}
	}
}

// inlinableGuard resolves a call to a same-package guard helper whose body is
// a single `return <expr>`, returning the result expression and the key
// substitution mapping helper parameter/receiver names to argument keys.
// outer is the substitution active at the call site (for nested helpers).
func (p *Package) inlinableGuard(call *ast.CallExpr, outer map[string]string) (ast.Expr, map[string]string) {
	var obj *types.Func
	var recvExpr ast.Expr
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			obj = fn
		}
	case *ast.SelectorExpr:
		if sel := p.Info.Selections[fun]; sel != nil && sel.Kind() == types.MethodVal {
			if fn, ok := sel.Obj().(*types.Func); ok {
				obj = fn
				recvExpr = fun.X
			}
		}
	}
	if obj == nil || obj.Pkg() != p.Pkg {
		return nil, nil
	}
	fd := p.funcDeclOf(obj)
	if fd == nil || fd.Body == nil || len(fd.Body.List) != 1 {
		return nil, nil
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return nil, nil
	}
	subst := map[string]string{}
	if recvExpr != nil {
		if fd.Recv == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
			return nil, nil
		}
		rk, ok := exprKey(recvExpr)
		if !ok {
			return nil, nil
		}
		subst[fd.Recv.List[0].Names[0].Name] = substKey(rk, outer)
	}
	// Map parameters positionally; bail on variadics and signature shapes we
	// cannot line up with the arguments.
	var params []*ast.Ident
	if fd.Type.Params != nil {
		for _, fld := range fd.Type.Params.List {
			if _, variadic := fld.Type.(*ast.Ellipsis); variadic {
				return nil, nil
			}
			params = append(params, fld.Names...)
		}
	}
	if len(params) != len(call.Args) {
		return nil, nil
	}
	for i, prm := range params {
		ak, ok := exprKey(call.Args[i])
		if !ok {
			continue // the parameter's facts just won't map back
		}
		subst[prm.Name] = substKey(ak, outer)
	}
	return ret.Results[0], subst
}

// funcDeclOf returns the declaration of a package-level function or method
// object, building the index lazily.
func (p *Package) funcDeclOf(obj types.Object) *ast.FuncDecl {
	if p.fdecls == nil {
		p.fdecls = map[types.Object]*ast.FuncDecl{}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if o := p.Info.Defs[fd.Name]; o != nil {
					p.fdecls[o] = fd
				}
			}
		}
	}
	return p.fdecls[obj]
}

// funcAnalysis holds the fixpoint solution for one function body.
type funcAnalysis struct {
	p    *Package
	body *ast.BlockStmt
	g    *cfg
	in   []*nilFacts // facts at each block entry; nil = unreachable (⊤)
}

// analyzeBody runs the nil-facts fixpoint over a function body. seed holds
// the facts valid at entry (used to seed closures with the facts at their
// creation point); nil means no facts.
func analyzeBody(p *Package, body *ast.BlockStmt, seed *nilFacts) *funcAnalysis {
	g := buildCFG(body)
	fa := &funcAnalysis{p: p, body: body, g: g, in: make([]*nilFacts, len(g.blocks))}
	if seed == nil {
		seed = newFacts()
	}
	fa.in[cfgEntry] = cloneFacts(seed)

	work := []int{cfgEntry}
	queued := map[int]bool{cfgEntry: true}
	for len(work) > 0 {
		id := work[0]
		work = work[1:]
		queued[id] = false
		blk := g.blocks[id]
		out := cloneFacts(fa.in[id])
		for _, nd := range blk.nodes {
			fa.transferNode(nd, out)
		}
		for _, e := range blk.succs {
			ef := cloneFacts(out)
			if e.cond != nil {
				condFacts(p, e.cond, e.when, ef, nil, 0)
			}
			merged, changed := meetFacts(fa.in[e.to], ef)
			fa.in[e.to] = merged
			if changed && !queued[e.to] {
				queued[e.to] = true
				work = append(work, e.to)
			}
		}
	}
	return fa
}

// transferNode applies one block node's effect to the facts in place.
func (fa *funcAnalysis) transferNode(nd cfgNode, f *nilFacts) {
	if f == nil {
		return
	}
	switch nd.role {
	case roleHeader:
		return
	case roleRangeAssign:
		rs := nd.stmt.(*ast.RangeStmt)
		for _, e := range []ast.Expr{rs.Key, rs.Value} {
			if e != nil {
				if k, ok := exprKey(e); ok {
					f.killKey(k)
				}
			}
		}
		return
	}
	switch s := nd.stmt.(type) {
	case *ast.AssignStmt:
		fa.transferAssign(s, f)
	case *ast.IncDecStmt:
		if k, ok := exprKey(s.X); ok {
			f.killKey(k)
		}
	case *ast.DeclStmt:
		fa.transferDecl(s, f)
	}
}

func (fa *funcAnalysis) transferAssign(s *ast.AssignStmt, f *nilFacts) {
	if len(s.Lhs) == len(s.Rhs) {
		// Classify right-hand sides against the pre-assignment facts, then
		// kill and install — this keeps `x = x.next` correct.
		type rhsInfo struct{ nonnil, isnil bool }
		infos := make([]rhsInfo, len(s.Rhs))
		for i, r := range s.Rhs {
			infos[i] = fa.classifyRHS(r, f)
		}
		for i, l := range s.Lhs {
			k, ok := exprKey(l)
			if !ok || k == "_" {
				continue
			}
			f.killKey(k)
			if infos[i].nonnil {
				f.nonnil[k] = true
			}
			if infos[i].isnil {
				f.isnil[k] = true
			}
		}
		return
	}
	for _, l := range s.Lhs {
		if k, ok := exprKey(l); ok {
			f.killKey(k)
		}
	}
}

func (fa *funcAnalysis) classifyRHS(r ast.Expr, f *nilFacts) (info struct{ nonnil, isnil bool }) {
	for {
		if pr, ok := r.(*ast.ParenExpr); ok {
			r = pr.X
			continue
		}
		break
	}
	if isNilIdent(r) {
		info.isnil = true
		return
	}
	switch x := r.(type) {
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			info.nonnil = true
		}
		return
	case *ast.CompositeLit:
		info.nonnil = true
		return
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok {
			if b, ok := fa.p.Info.Uses[id].(*types.Builtin); ok {
				if b.Name() == "new" || b.Name() == "make" {
					info.nonnil = true
				}
			}
		}
		return
	}
	if k, ok := exprKey(r); ok {
		info.nonnil = f.nonnil[k]
		info.isnil = f.isnil[k]
	}
	return
}

func (fa *funcAnalysis) transferDecl(s *ast.DeclStmt, f *nilFacts) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		if len(vs.Values) == 0 {
			// var x *T / var x I: the zero value of a nilable type is nil.
			nilable := false
			if vs.Type != nil {
				if t := fa.p.TypeOf(vs.Type); t != nil {
					switch t.Underlying().(type) {
					case *types.Pointer, *types.Interface, *types.Map,
						*types.Slice, *types.Chan, *types.Signature:
						nilable = true
					}
				}
			}
			for _, name := range vs.Names {
				f.killKey(name.Name)
				if nilable {
					f.isnil[name.Name] = true
				}
			}
			continue
		}
		if len(vs.Values) == len(vs.Names) {
			for i, name := range vs.Names {
				info := fa.classifyRHS(vs.Values[i], f)
				f.killKey(name.Name)
				if info.nonnil {
					f.nonnil[name.Name] = true
				}
				if info.isnil {
					f.isnil[name.Name] = true
				}
			}
			continue
		}
		for _, name := range vs.Names {
			f.killKey(name.Name)
		}
	}
}

// factsAt returns the facts valid just before n executes: the entry facts of
// n's block, composed with the transfers of the preceding statements in the
// block and with the short-circuit facts of any enclosing && / || whose
// right operand contains n. A nil result means n is unreachable.
func (fa *funcAnalysis) factsAt(n ast.Node) *nilFacts {
	var s ast.Stmt
	for c := n; c != nil; c = fa.p.Parent(c) {
		if st, ok := c.(ast.Stmt); ok {
			if _, recorded := fa.g.stmtBlock[st]; recorded {
				s = st
				break
			}
		}
		if c == ast.Node(fa.body) {
			break
		}
	}
	if s == nil {
		return newFacts()
	}
	pos := fa.g.stmtBlock[s]
	f := cloneFacts(fa.in[pos.block])
	if f == nil {
		return nil // unreachable: every fact holds vacuously
	}
	for i := 0; i < pos.index; i++ {
		fa.transferNode(fa.g.blocks[pos.block].nodes[i], f)
	}
	for child := n; child != ast.Node(s); {
		par := fa.p.Parent(child)
		if par == nil {
			break
		}
		if be, ok := par.(*ast.BinaryExpr); ok && be.Y == child {
			switch be.Op {
			case token.LAND:
				condFacts(fa.p, be.X, true, f, nil, 0)
			case token.LOR:
				condFacts(fa.p, be.X, false, f, nil, 0)
			}
		}
		child = par
	}
	return f
}

// anyNonNil reports whether any of the keys is known non-nil. A nil facts
// value (unreachable code) answers true for everything.
func (f *nilFacts) anyNonNil(keys []string) bool {
	if f == nil {
		return true
	}
	for _, k := range keys {
		if f.nonnil[k] {
			return true
		}
	}
	return false
}

// knownNil reports whether the key is known nil. A nil facts value
// (unreachable code) answers true.
func (f *nilFacts) knownNil(key string) bool {
	return f == nil || f.isnil[key]
}

// bodyAnalyses lazily runs and caches the dataflow analysis per function
// body within one package, seeding each function literal's entry with the
// facts at its creation point (closures capture their environment; the v1
// ancestor walk crossed literal boundaries the same way).
type bodyAnalyses struct {
	p *Package
	m map[*ast.BlockStmt]*funcAnalysis
}

func newBodyAnalyses(p *Package) *bodyAnalyses {
	return &bodyAnalyses{p: p, m: map[*ast.BlockStmt]*funcAnalysis{}}
}

// forNode returns the analysis of the innermost function body enclosing n,
// or nil when n is not inside a function body.
func (ba *bodyAnalyses) forNode(n ast.Node) *funcAnalysis {
	for c := ba.p.Parent(n); c != nil; c = ba.p.Parent(c) {
		switch fn := c.(type) {
		case *ast.FuncLit:
			return ba.forBody(fn.Body, fn)
		case *ast.FuncDecl:
			if fn.Body == nil {
				return nil
			}
			return ba.forBody(fn.Body, nil)
		}
	}
	return nil
}

func (ba *bodyAnalyses) forBody(body *ast.BlockStmt, lit *ast.FuncLit) *funcAnalysis {
	if fa, ok := ba.m[body]; ok {
		return fa
	}
	var seed *nilFacts
	if lit != nil {
		if outer := ba.forNode(lit); outer != nil {
			seed = outer.factsAt(lit)
		}
		// Parameters and results shadow captured names.
		if seed != nil {
			killFieldListKeys(seed, lit.Type.Params)
			killFieldListKeys(seed, lit.Type.Results)
		}
	}
	fa := analyzeBody(ba.p, body, seed)
	ba.m[body] = fa
	return fa
}

func killFieldListKeys(f *nilFacts, fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, fld := range fl.List {
		for _, name := range fld.Names {
			f.killKey(name.Name)
		}
	}
}

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Hotpath flags syntactic heap-allocation sources inside functions marked
// //sslint:hotpath — the pooled message/packet/flit lifecycle and the other
// per-flit/per-event paths whose zero-allocation property the benchmark
// ceiling (bench_ceiling.txt) only measures in aggregate. The rule makes the
// property local and structural: each marked function must be free of
//
//   - escaping composite literals (&T{...}) and slice/map literals,
//   - make and new,
//   - append (the growth path allocates),
//   - function literals (closure captures allocate),
//   - string<->[]byte/[]rune conversions,
//   - method values (a bound-method closure allocates).
//
// Amortized-growth lines that are deliberate (ring-buffer doubling, free-list
// growth) carry a //sslint:allow hotpath with a justification.
//
// The analysis is per-function: calls into helpers are not followed, so every
// function on a zero-alloc path should carry its own mark.
type Hotpath struct{}

// NewHotpath returns the analyzer.
func NewHotpath() *Hotpath { return &Hotpath{} }

// Name implements Analyzer.
func (*Hotpath) Name() string { return RuleHotpath }

// Check implements Analyzer.
func (a *Hotpath) Check(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, fd := range p.HotpathFuncs() {
		name := fd.Name.Name
		if fd.Recv != nil && len(fd.Recv.List) == 1 {
			name = recvString(fd.Recv.List[0].Type) + "." + name
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				diags = append(diags, a.diag(p, x.Pos(), name, "function literal allocates a closure"))
				return false // the literal's body is a different function
			case *ast.CompositeLit:
				if d, ok := a.checkComposite(p, x, name); ok {
					diags = append(diags, d)
				}
			case *ast.CallExpr:
				if d, ok := a.checkCall(p, x, name); ok {
					diags = append(diags, d)
				}
			case *ast.SelectorExpr:
				if d, ok := a.checkMethodValue(p, x, name); ok {
					diags = append(diags, d)
				}
			}
			return true
		})
	}
	return diags
}

func (a *Hotpath) diag(p *Package, pos token.Pos, fn, msg string) Diagnostic {
	return Diagnostic{
		Rule: RuleHotpath, Pos: p.Position(pos),
		Message: fmt.Sprintf("%s in //sslint:hotpath function %s", msg, fn),
	}
}

// checkComposite flags composite literals that reach the heap: any literal
// under a unary &, and slice/map literals (their backing store always
// allocates). Plain struct/array value literals are stack values and pass.
func (a *Hotpath) checkComposite(p *Package, lit *ast.CompositeLit, fn string) (Diagnostic, bool) {
	if par, ok := p.Parent(lit).(*ast.UnaryExpr); ok && par.Op == token.AND {
		return a.diag(p, par.Pos(), fn, "composite literal escapes to the heap (&T{...})"), true
	}
	t := p.TypeOf(lit)
	if t == nil {
		return Diagnostic{}, false
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		return a.diag(p, lit.Pos(), fn, "slice literal allocates its backing array"), true
	case *types.Map:
		return a.diag(p, lit.Pos(), fn, "map literal allocates"), true
	}
	return Diagnostic{}, false
}

// checkCall flags the allocating builtins and allocating conversions.
func (a *Hotpath) checkCall(p *Package, call *ast.CallExpr, fn string) (Diagnostic, bool) {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := p.Info.Uses[f].(*types.Builtin); ok {
			switch b.Name() {
			case "new":
				return a.diag(p, call.Pos(), fn, "new allocates"), true
			case "make":
				return a.diag(p, call.Pos(), fn, "make allocates"), true
			case "append":
				return a.diag(p, call.Pos(), fn, "append may grow the backing array"), true
			}
			return Diagnostic{}, false
		}
	}
	// Conversions between string and byte/rune slices copy into fresh
	// storage.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		from := p.TypeOf(call.Args[0])
		to := tv.Type
		if from != nil && stringSliceConversion(from, to) {
			return a.diag(p, call.Pos(), fn, "string/slice conversion allocates"), true
		}
	}
	return Diagnostic{}, false
}

func stringSliceConversion(from, to types.Type) bool {
	isString := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isSlice := func(t types.Type) bool {
		_, ok := t.Underlying().(*types.Slice)
		return ok
	}
	return (isString(from) && isSlice(to)) || (isSlice(from) && isString(to))
}

// checkMethodValue flags x.M used as a value (not called): binding the
// receiver allocates a closure.
func (a *Hotpath) checkMethodValue(p *Package, sel *ast.SelectorExpr, fn string) (Diagnostic, bool) {
	s := p.Info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return Diagnostic{}, false
	}
	if call, ok := p.Parent(sel).(*ast.CallExpr); ok && call.Fun == sel {
		return Diagnostic{}, false // ordinary method call
	}
	return a.diag(p, sel.Pos(), fn, "method value allocates a bound-method closure"), true
}

// recvString renders a receiver type expression for diagnostics.
func recvString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.StarExpr:
		return "(*" + recvString(x.X) + ")"
	case *ast.Ident:
		return x.Name
	case *ast.IndexExpr:
		return recvString(x.X)
	case *ast.IndexListExpr:
		return recvString(x.X)
	}
	return "recv"
}

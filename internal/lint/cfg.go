package lint

import (
	"go/ast"
	"go/token"
)

// This file builds an intraprocedural control-flow graph at statement
// granularity. It is the substrate shared by the dataflow analysis in
// dataflow.go: probeguard and shardsafety both ask "which nil facts hold at
// this program point?", and the answer is a forward must-analysis over this
// graph. The builder handles the full statement grammar — if/else chains,
// all three loop forms, tagged and tagless switches, type switches, select,
// labeled break/continue, and goto (including the irreducible shapes goto
// can produce) — because the v1 ancestor-walk heuristics missed exactly the
// guards that cross those constructs.
//
// Design notes:
//
//   - Blocks hold statement-level nodes. Compound statements (if, for,
//     switch, ...) appear as a header node in the block where their
//     condition is evaluated; their Init statements are appended as ordinary
//     nodes just before the header, so transfer functions see them.
//   - Edges carry an optional branch condition plus a polarity: the edge is
//     taken when the condition evaluates to `when`. The dataflow layer turns
//     (cond, when) into nil/non-nil facts. Edges from range/select/type-
//     switch headers and multi-expression case clauses carry no condition.
//   - panic(...) and the component Panicf/Assert-style helpers recognized by
//     terminatesStmt end their block with no successors, so facts established
//     by `if x == nil { panic(...) }` survive to the statements below.
//   - Function literals are *not* inlined: each FuncLit body gets its own
//     CFG (see dataflow.go for how its entry facts are seeded).

// cfgNodeRole distinguishes how a statement appears inside a block: as an
// ordinary statement (full transfer), as a loop/switch header (condition
// position only, no transfer), or as a range header (per-iteration key/value
// assignment).
type cfgNodeRole int

const (
	roleStmt cfgNodeRole = iota
	roleHeader
	roleRangeAssign
)

// cfgNode is one statement occurrence inside a block.
type cfgNode struct {
	stmt ast.Stmt
	role cfgNodeRole
}

// cfgEdge is one control transfer. cond is nil for unconditional edges;
// otherwise the edge is taken when cond evaluates to `when`.
type cfgEdge struct {
	to   int
	cond ast.Expr
	when bool
}

// cfgBlock is a basic block: a run of statement nodes with one entry point
// and a set of outgoing edges.
type cfgBlock struct {
	id    int
	nodes []cfgNode
	succs []cfgEdge
	preds []int
}

// stmtPos locates a statement inside the graph: its block and its node index
// within that block.
type stmtPos struct {
	block int
	index int
}

// cfg is the control-flow graph of one function body. Block 0 is the entry.
type cfg struct {
	blocks []*cfgBlock
	// stmtBlock maps each recorded statement to its position. Compound
	// statements map to their header position.
	stmtBlock map[ast.Stmt]stmtPos
}

const cfgEntry = 0

// loopFrame tracks the break/continue targets of an enclosing loop, switch,
// or select, plus the statement label when the construct is labeled.
type loopFrame struct {
	label   string
	breakTo int
	contTo  int // -1 when continue does not apply (switch/select)
	stmt    ast.Stmt
}

type pendingGoto struct {
	from  int
	label string
}

type cfgBuilder struct {
	g      *cfg
	cur    int // current block; -1 after a terminator
	frames []loopFrame
	labels map[string]int
	gotos  []pendingGoto
	// nextLabel carries the label of a LabeledStmt into the loop/switch it
	// labels, so labeled break/continue resolve.
	nextLabel string
}

// buildCFG constructs the control-flow graph of a function body. The builder
// is purely syntactic: it needs no type information, which keeps it
// unit-testable from parsed source snippets.
func buildCFG(body *ast.BlockStmt) *cfg {
	b := &cfgBuilder{
		g:      &cfg{stmtBlock: map[ast.Stmt]stmtPos{}},
		labels: map[string]int{},
	}
	b.cur = b.newBlock()
	b.stmtList(body.List)
	for _, pg := range b.gotos {
		if to, ok := b.labels[pg.label]; ok {
			b.edgeFrom(pg.from, cfgEdge{to: to})
		}
	}
	b.computePreds()
	return b.g
}

func (b *cfgBuilder) newBlock() int {
	id := len(b.g.blocks)
	b.g.blocks = append(b.g.blocks, &cfgBlock{id: id})
	return id
}

// ensureCur makes sure there is a current block to append to, opening a
// fresh (unreachable) one after a terminator so dead statements still get
// positions.
func (b *cfgBuilder) ensureCur() {
	if b.cur < 0 {
		b.cur = b.newBlock()
	}
}

func (b *cfgBuilder) append(s ast.Stmt, role cfgNodeRole) {
	b.ensureCur()
	blk := b.g.blocks[b.cur]
	b.g.stmtBlock[s] = stmtPos{block: b.cur, index: len(blk.nodes)}
	blk.nodes = append(blk.nodes, cfgNode{stmt: s, role: role})
}

func (b *cfgBuilder) edge(e cfgEdge) { b.edgeFrom(b.cur, e) }

func (b *cfgBuilder) edgeFrom(from int, e cfgEdge) {
	if from < 0 {
		return
	}
	b.g.blocks[from].succs = append(b.g.blocks[from].succs, e)
}

func (b *cfgBuilder) computePreds() {
	for _, blk := range b.g.blocks {
		for _, e := range blk.succs {
			b.g.blocks[e.to].preds = append(b.g.blocks[e.to].preds, blk.id)
		}
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the construct being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.nextLabel
	b.nextLabel = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ReturnStmt:
		b.append(s, roleStmt)
		b.cur = -1
	default:
		// Assignments, declarations, expression statements, incdec, defer,
		// go, send, empty. Calls that provably never return end the block.
		b.append(s, roleStmt)
		if terminatesStmt(s) {
			b.cur = -1
		}
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	b.takeLabel() // labeled if: the label is only a goto target, already bound
	if s.Init != nil {
		b.append(s.Init, roleStmt)
	}
	b.append(s, roleHeader)
	condBlock := b.cur

	thenB := b.newBlock()
	b.edgeFrom(condBlock, cfgEdge{to: thenB, cond: s.Cond, when: true})
	b.cur = thenB
	b.stmtList(s.Body.List)
	thenEnd := b.cur

	if s.Else == nil {
		after := b.newBlock()
		b.edgeFrom(condBlock, cfgEdge{to: after, cond: s.Cond, when: false})
		b.edgeFrom(thenEnd, cfgEdge{to: after})
		b.cur = after
		return
	}
	elseB := b.newBlock()
	b.edgeFrom(condBlock, cfgEdge{to: elseB, cond: s.Cond, when: false})
	b.cur = elseB
	b.stmt(s.Else) // BlockStmt or a chained IfStmt
	elseEnd := b.cur

	after := b.newBlock()
	b.edgeFrom(thenEnd, cfgEdge{to: after})
	b.edgeFrom(elseEnd, cfgEdge{to: after})
	b.cur = after
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.append(s.Init, roleStmt)
	}
	b.ensureCur()
	header := b.newBlock()
	b.edge(cfgEdge{to: header})
	b.cur = header
	b.append(s, roleHeader)

	body := b.newBlock()
	after := b.newBlock()
	if s.Cond != nil {
		b.edgeFrom(header, cfgEdge{to: body, cond: s.Cond, when: true})
		b.edgeFrom(header, cfgEdge{to: after, cond: s.Cond, when: false})
	} else {
		b.edgeFrom(header, cfgEdge{to: body}) // for {}: after is break-only
	}

	contTo := header
	post := -1
	if s.Post != nil {
		post = b.newBlock()
		contTo = post
	}
	b.frames = append(b.frames, loopFrame{label: label, breakTo: after, contTo: contTo, stmt: s})
	b.cur = body
	b.stmtList(s.Body.List)
	bodyEnd := b.cur
	b.frames = b.frames[:len(b.frames)-1]

	if post >= 0 {
		b.edgeFrom(bodyEnd, cfgEdge{to: post})
		b.cur = post
		b.append(s.Post, roleStmt)
		b.edge(cfgEdge{to: header})
	} else {
		b.edgeFrom(bodyEnd, cfgEdge{to: header})
	}
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	b.ensureCur()
	header := b.newBlock()
	b.edge(cfgEdge{to: header})
	b.cur = header
	b.append(s, roleRangeAssign)

	body := b.newBlock()
	after := b.newBlock()
	b.edgeFrom(header, cfgEdge{to: body})
	b.edgeFrom(header, cfgEdge{to: after})

	b.frames = append(b.frames, loopFrame{label: label, breakTo: after, contTo: header, stmt: s})
	b.cur = body
	b.stmtList(s.Body.List)
	b.edgeFrom(b.cur, cfgEdge{to: header})
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.append(s.Init, roleStmt)
	}
	b.append(s, roleHeader)
	head := b.cur
	after := b.newBlock()

	var clauses []*ast.CaseClause
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	// Pre-create body blocks so fallthrough can target the next clause.
	bodies := make([]int, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
	}

	// A tagless switch with single-expression cases is an if/else chain:
	// each test block refines the facts with the negation of the previous
	// cases. Tagged switches and multi-expression cases get fact-free edges.
	tagless := s.Tag == nil
	test := head
	defaultBody := -1
	for i, cc := range clauses {
		if len(cc.List) == 0 {
			defaultBody = bodies[i]
			continue
		}
		if tagless && len(cc.List) == 1 {
			b.edgeFrom(test, cfgEdge{to: bodies[i], cond: cc.List[0], when: true})
			next := b.newBlock()
			b.edgeFrom(test, cfgEdge{to: next, cond: cc.List[0], when: false})
			test = next
		} else {
			b.edgeFrom(test, cfgEdge{to: bodies[i]})
		}
	}
	if defaultBody >= 0 {
		b.edgeFrom(test, cfgEdge{to: defaultBody})
	} else {
		b.edgeFrom(test, cfgEdge{to: after})
	}

	b.frames = append(b.frames, loopFrame{label: label, breakTo: after, contTo: -1, stmt: s})
	for i, cc := range clauses {
		b.cur = bodies[i]
		body, fallsThrough := splitFallthrough(cc.Body)
		b.stmtList(body)
		if fallsThrough && i+1 < len(clauses) {
			b.edgeFrom(b.cur, cfgEdge{to: bodies[i+1]})
		} else {
			b.edgeFrom(b.cur, cfgEdge{to: after})
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

// splitFallthrough removes a trailing fallthrough statement from a case body
// and reports whether one was present.
func splitFallthrough(body []ast.Stmt) ([]ast.Stmt, bool) {
	if n := len(body); n > 0 {
		if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
			return body[:n-1], true
		}
	}
	return body, false
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.append(s.Init, roleStmt)
	}
	// The assign (`x := y.(type)` or bare `y.(type)`) evaluates in the head.
	b.append(s.Assign, roleStmt)
	b.append(s, roleHeader)
	head := b.cur
	after := b.newBlock()

	hasDefault := false
	b.frames = append(b.frames, loopFrame{label: label, breakTo: after, contTo: -1, stmt: s})
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if len(cc.List) == 0 {
			hasDefault = true
		}
		body := b.newBlock()
		b.edgeFrom(head, cfgEdge{to: body})
		b.cur = body
		b.stmtList(cc.Body)
		b.edgeFrom(b.cur, cfgEdge{to: after})
	}
	b.frames = b.frames[:len(b.frames)-1]
	if !hasDefault {
		b.edgeFrom(head, cfgEdge{to: after})
	}
	b.cur = after
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	b.append(s, roleHeader)
	head := b.cur
	after := b.newBlock()

	any := false
	b.frames = append(b.frames, loopFrame{label: label, breakTo: after, contTo: -1, stmt: s})
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		any = true
		body := b.newBlock()
		b.edgeFrom(head, cfgEdge{to: body})
		b.cur = body
		if cc.Comm != nil {
			b.append(cc.Comm, roleStmt)
		}
		b.stmtList(cc.Body)
		b.edgeFrom(b.cur, cfgEdge{to: after})
	}
	b.frames = b.frames[:len(b.frames)-1]
	if !any {
		// select {} blocks forever.
		b.cur = -1
		return
	}
	b.cur = after
}

func (b *cfgBuilder) labeledStmt(s *ast.LabeledStmt) {
	b.ensureCur()
	target := b.newBlock()
	b.edge(cfgEdge{to: target})
	b.labels[s.Label.Name] = target
	b.cur = target
	b.nextLabel = s.Label.Name
	b.stmt(s.Stmt)
	b.nextLabel = ""
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	b.append(s, roleStmt)
	switch s.Tok {
	case token.BREAK:
		if f := b.findFrame(s.Label, false); f != nil {
			b.edge(cfgEdge{to: f.breakTo})
		}
	case token.CONTINUE:
		if f := b.findFrame(s.Label, true); f != nil {
			b.edge(cfgEdge{to: f.contTo})
		}
	case token.GOTO:
		if to, ok := b.labels[s.Label.Name]; ok {
			b.edge(cfgEdge{to: to})
		} else {
			b.ensureCur()
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
		}
	case token.FALLTHROUGH:
		// Handled by the switch builder; a stray one (inside a nested block)
		// does not compile, so nothing to do.
	}
	b.cur = -1
}

// findFrame resolves the target of a break/continue, optionally requiring a
// loop frame (continue never targets a switch/select).
func (b *cfgBuilder) findFrame(label *ast.Ident, needLoop bool) *loopFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if needLoop && f.contTo < 0 {
			continue
		}
		if label == nil || f.label == label.Name {
			return f
		}
	}
	return nil
}

// terminatesStmt reports whether a single statement always transfers control
// away: a panic call or one of the component panic helpers (Panicf).
func terminatesStmt(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
		return true
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Panicf"
}

// dominators computes the dominator sets of every block with the classic
// iterative intersection algorithm, which is correct on arbitrary graphs —
// including the irreducible shapes goto produces. doms[b] is the set of
// blocks (as a bitset indexed by block id) that dominate b. Unreachable
// blocks keep the full set (vacuously dominated by everything).
func (c *cfg) dominators() []map[int]bool {
	n := len(c.blocks)
	full := func() map[int]bool {
		m := make(map[int]bool, n)
		for i := 0; i < n; i++ {
			m[i] = true
		}
		return m
	}
	doms := make([]map[int]bool, n)
	for i := range doms {
		doms[i] = full()
	}
	doms[cfgEntry] = map[int]bool{cfgEntry: true}

	changed := true
	for changed {
		changed = false
		for i := 0; i < n; i++ {
			if i == cfgEntry {
				continue
			}
			var meet map[int]bool
			for _, p := range c.blocks[i].preds {
				if meet == nil {
					meet = map[int]bool{}
					for k := range doms[p] {
						meet[k] = true
					}
					continue
				}
				for k := range meet {
					if !doms[p][k] {
						delete(meet, k)
					}
				}
			}
			if meet == nil {
				continue // unreachable: keep the full set
			}
			meet[i] = true
			if len(meet) != len(doms[i]) {
				doms[i] = meet
				changed = true
			}
		}
	}
	return doms
}

// dominates reports whether block a dominates block b.
func (c *cfg) dominates(a, b int) bool {
	return c.dominators()[b][a]
}

// blockOf returns the position of a recorded statement.
func (c *cfg) blockOf(s ast.Stmt) (stmtPos, bool) {
	p, ok := c.stmtBlock[s]
	return p, ok
}

package lint

import (
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// All fixture loads share one Loader so stdlib and repo dependencies are
// type-checked once per test binary, and one cache so a fixture is loaded at
// most once per import path.
var (
	loaderMu sync.Mutex
	loader   *Loader
	pkgCache = map[string]*Package{}
)

func loadFixture(t *testing.T, name, importPath string) *Package {
	t.Helper()
	loaderMu.Lock()
	defer loaderMu.Unlock()
	if loader == nil {
		loader = NewLoader()
	}
	if p, ok := pkgCache[importPath]; ok {
		return p
	}
	p, err := loader.Load(filepath.Join("testdata", "src", name), importPath)
	if err != nil {
		t.Fatalf("loading fixture %s as %s: %v", name, importPath, err)
	}
	pkgCache[importPath] = p
	return p
}

// want comments mark expected diagnostics in fixture files:
//
//	for k := range m { // want `map iteration order`
//
// Each backquoted string is a regexp that must match a diagnostic rendered as
// "message [rule]" on the comment's line, and every diagnostic must match
// some want.
var (
	wantRE     = regexp.MustCompile("want ((?:`[^`]*`)(?:\\s+`[^`]*`)*)")
	wantItemRE = regexp.MustCompile("`[^`]*`")
)

type want struct {
	line int
	re   *regexp.Regexp
	hit  bool
}

func collectWants(t *testing.T, p *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := p.Position(c.Pos()).Line
				for _, item := range wantItemRE.FindAllString(m[1], -1) {
					re, err := regexp.Compile(item[1 : len(item)-1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", p.ImportPath, line, item, err)
					}
					wants = append(wants, &want{line: line, re: re})
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("%s: fixture has no want comments", p.ImportPath)
	}
	return wants
}

// runWantTest runs the analyzers (with directive checking, as the driver
// does) and matches the surviving diagnostics against the fixture's want
// comments in both directions.
func runWantTest(t *testing.T, p *Package, analyzers []Analyzer) {
	t.Helper()
	r := &Runner{Analyzers: analyzers, CheckDirectives: true}
	diags := r.Run([]*Package{p})
	if len(diags) == 0 {
		t.Fatalf("%s: analyzers produced no diagnostics at all — the rule is vacuous", p.ImportPath)
	}
	wants := collectWants(t, p)
	for _, d := range diags {
		text := d.Message + " [" + d.Rule + "]"
		matched := false
		for _, w := range wants {
			if w.line == d.Pos.Line && w.re.MatchString(text) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s: no diagnostic matching %q on line %d", p.ImportPath, w.re, w.line)
		}
	}
}

func TestDeterminismFixture(t *testing.T) {
	// Loaded under a sim-core import path: the fixture plays an internal/sim
	// subpackage.
	p := loadFixture(t, "determinism", "supersim/internal/sim/lintfixture")
	runWantTest(t, p, []Analyzer{NewDeterminism()})
}

func TestDeterminismCoversSnapshotPackage(t *testing.T) {
	// Snapshot encode/decode is byte-compared by the import/export
	// equivalence tests, so the codec package is sim-core for the
	// determinism rule: the fixture loaded under its import path must
	// produce the same diagnostics as under internal/sim.
	p := loadFixture(t, "determinism", "supersim/internal/snapshot/lintfixture")
	runWantTest(t, p, []Analyzer{NewDeterminism()})
}

func TestDeterminismOutOfScope(t *testing.T) {
	// The same files outside the sim-core prefixes produce nothing.
	p := loadFixture(t, "determinism", "supersim/internal/lint/testdata/src/determinism")
	if diags := NewDeterminism().Check(p); len(diags) != 0 {
		t.Fatalf("determinism fired outside sim-core: %v", diags)
	}
}

func TestDeterminismCoversTaskrunPackage(t *testing.T) {
	// The task runner's journals are byte-compared by fixed-clock goldens, so
	// taskrun is sim-core with two file-scoped seams: clock.go may read the
	// wall clock and taskrun.go may import sync and launch goroutines.
	// Everything else in the fixture is flagged as usual.
	p := loadFixture(t, "taskrun", "supersim/internal/taskrun/lintfixture")
	runWantTest(t, p, []Analyzer{NewDeterminism()})
}

func TestDeterminismTaskrunSeamsAreScoped(t *testing.T) {
	// Outside the taskrun import path the same files produce nothing — the
	// file-suffix allowlists never widen the rule's package scope.
	p := loadFixture(t, "taskrun", "supersim/internal/lint/testdata/src/taskrun")
	if diags := NewDeterminism().Check(p); len(diags) != 0 {
		t.Fatalf("determinism fired outside sim-core: %v", diags)
	}
}

func TestHotpathFixture(t *testing.T) {
	p := loadFixture(t, "hotpath", "supersim/internal/lint/testdata/src/hotpath")
	runWantTest(t, p, []Analyzer{NewHotpath()})
}

func TestProbeguardFixture(t *testing.T) {
	p := loadFixture(t, "probeguard", "supersim/internal/lint/testdata/src/probeguard")
	runWantTest(t, p, []Analyzer{NewProbeguard()})
}

func TestFactoryregFixture(t *testing.T) {
	p := loadFixture(t, "factoryreg", "supersim/internal/lint/testdata/src/factoryreg")
	runWantTest(t, p, []Analyzer{NewFactoryReg()})
}

func TestProbeguardExemptPackages(t *testing.T) {
	// Inside a probe-defining package the receivers are the probes themselves.
	p := loadFixture(t, "probeguard", "supersim/internal/lint/testdata/src/probeguard")
	a := NewProbeguard()
	a.ExemptPackages = append(a.ExemptPackages, p.ImportPath)
	if diags := a.Check(p); len(diags) != 0 {
		t.Fatalf("probeguard fired in an exempt package: %v", diags)
	}
}

func TestDirectiveProblems(t *testing.T) {
	p := loadFixture(t, "directive", "supersim/internal/lint/testdata/src/directive")
	wantSubstr := []string{
		"requires a justification",
		`unknown rule "nosuchrule"`,
		`unknown sslint directive "//sslint:frobnicate"`,
		"doc comment of a function",
	}
	probs := p.directives.problems
	if len(probs) != len(wantSubstr) {
		t.Fatalf("got %d directive problems, want %d: %v", len(probs), len(wantSubstr), probs)
	}
	for i, sub := range wantSubstr {
		if !strings.Contains(probs[i].Message, sub) {
			t.Errorf("problem %d = %q, want substring %q", i, probs[i].Message, sub)
		}
		if probs[i].Rule != RuleDirective {
			t.Errorf("problem %d rule = %q, want %q", i, probs[i].Rule, RuleDirective)
		}
	}
	// The problems surface through Runner.Run only when directive checking is
	// on, and never from a rule-subset run.
	if diags := (&Runner{Analyzers: []Analyzer{NewHotpath()}}).Run([]*Package{p}); len(diags) != 0 {
		t.Errorf("rule-subset run leaked directive problems: %v", diags)
	}
	if diags := (&Runner{Analyzers: AllAnalyzers(), CheckDirectives: true}).Run([]*Package{p}); len(diags) != len(wantSubstr) {
		t.Errorf("full run reported %d diagnostics, want %d: %v", len(diags), len(wantSubstr), diags)
	}
}

func TestNewAnalyzer(t *testing.T) {
	for _, r := range Rules() {
		a, err := NewAnalyzer(r)
		if err != nil {
			t.Fatalf("NewAnalyzer(%q): %v", r, err)
		}
		if a.Name() != r {
			t.Errorf("NewAnalyzer(%q).Name() = %q", r, a.Name())
		}
	}
	if _, err := NewAnalyzer("bogus"); err == nil {
		t.Fatal("NewAnalyzer accepted an unknown rule")
	}
	if !KnownRule(RuleHotpath) || KnownRule("bogus") || KnownRule(RuleDirective) {
		t.Fatal("KnownRule misclassifies")
	}
}

func TestLoadErrNoGoFiles(t *testing.T) {
	dir := t.TempDir()
	if _, err := NewLoader().Load(dir, "example.com/empty"); err == nil {
		t.Fatal("Load of an empty directory succeeded")
	}
}

package lint

import (
	"strings"
	"sync"
	"testing"
)

// All fixture loads share one Loader so stdlib and repo dependencies are
// type-checked once per test binary, and one cache so a fixture is loaded at
// most once per import path.
var (
	loaderMu sync.Mutex
	loader   *Loader
	pkgCache = map[string]*Package{}
)

func loadFixture(t *testing.T, name, importPath string) *Package {
	t.Helper()
	loaderMu.Lock()
	defer loaderMu.Unlock()
	if loader == nil {
		loader = NewLoader()
	}
	p, err := LoadFixture(loader, ".", FixtureSpec{Dir: name, ImportPath: importPath}, pkgCache)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFixtures replays the shared registry — the same runs `sslint
// -fixtures` performs — so the tests and the self-check can never disagree
// about what the fixtures mean.
func TestFixtures(t *testing.T) {
	seen := map[string]bool{}
	for _, spec := range FixtureSpecs() {
		if spec.Name == "" || seen[spec.Name] {
			t.Fatalf("fixture spec name %q is empty or duplicated", spec.Name)
		}
		seen[spec.Name] = true
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			loaderMu.Lock()
			defer loaderMu.Unlock()
			if loader == nil {
				loader = NewLoader()
			}
			problems, err := CheckFixture(loader, ".", spec, pkgCache)
			if err != nil {
				t.Fatal(err)
			}
			for _, pr := range problems {
				t.Error(pr)
			}
		})
	}
}

func TestProbeguardExemptPackages(t *testing.T) {
	// Inside a probe-defining package the receivers are the probes themselves.
	p := loadFixture(t, "probeguard", "supersim/internal/lint/testdata/src/probeguard")
	a := NewProbeguard()
	a.ExemptPackages = append(a.ExemptPackages, p.ImportPath)
	if diags := a.Check(p); len(diags) != 0 {
		t.Fatalf("probeguard fired in an exempt package: %v", diags)
	}
}

func TestDirectiveProblems(t *testing.T) {
	p := loadFixture(t, "directive", "supersim/internal/lint/testdata/src/directive")
	wantSubstr := []string{
		"//sslint:allow requires a justification",
		`unknown rule "nosuchrule"`,
		`lists rule "determinism" twice`,
		`unknown sslint directive "//sslint:frobnicate"`,
		"//sslint:nosnapshot requires a justification",
		"doc comment of a function",
	}
	probs := p.directives.problems
	if len(probs) != len(wantSubstr) {
		t.Fatalf("got %d directive problems, want %d: %v", len(probs), len(wantSubstr), probs)
	}
	for i, sub := range wantSubstr {
		if !strings.Contains(probs[i].Message, sub) {
			t.Errorf("problem %d = %q, want substring %q", i, probs[i].Message, sub)
		}
		if probs[i].Rule != RuleDirective {
			t.Errorf("problem %d rule = %q, want %q", i, probs[i].Rule, RuleDirective)
		}
	}
	// The problems surface through Runner.Run only when directive checking is
	// on, and never from a rule-subset run.
	if diags := (&Runner{Analyzers: []Analyzer{NewHotpath()}}).Run([]*Package{p}); len(diags) != 0 {
		t.Errorf("rule-subset run leaked directive problems: %v", diags)
	}
	// The full run adds one finding beyond the parse problems: the allow the
	// duplicate listing registered suppresses nothing.
	diags := (&Runner{Analyzers: AllAnalyzers(), CheckDirectives: true}).Run([]*Package{p})
	if len(diags) != len(wantSubstr)+1 {
		t.Errorf("full run reported %d diagnostics, want %d: %v", len(diags), len(wantSubstr)+1, diags)
	}
	unused := 0
	for _, d := range diags {
		if strings.Contains(d.Message, "suppresses nothing") {
			unused++
		}
	}
	if unused != 1 {
		t.Errorf("full run reported %d unused-allow findings, want 1: %v", unused, diags)
	}
}

func TestNewAnalyzer(t *testing.T) {
	for _, r := range Rules() {
		a, err := NewAnalyzer(r)
		if err != nil {
			t.Fatalf("NewAnalyzer(%q): %v", r, err)
		}
		if a.Name() != r {
			t.Errorf("NewAnalyzer(%q).Name() = %q", r, a.Name())
		}
	}
	if _, err := NewAnalyzer("bogus"); err == nil {
		t.Fatal("NewAnalyzer accepted an unknown rule")
	}
	if !KnownRule(RuleHotpath) || KnownRule("bogus") || KnownRule(RuleDirective) {
		t.Fatal("KnownRule misclassifies")
	}
}

func TestRuleDoc(t *testing.T) {
	for _, r := range append(Rules(), RuleDirective) {
		if RuleDoc(r) == "" {
			t.Errorf("RuleDoc(%q) is empty", r)
		}
	}
	if RuleDoc("bogus") != "" {
		t.Error("RuleDoc invented documentation for an unknown rule")
	}
}

func TestLoadErrNoGoFiles(t *testing.T) {
	dir := t.TempDir()
	if _, err := NewLoader().Load(dir, "example.com/empty"); err == nil {
		t.Fatal("Load of an empty directory succeeded")
	}
}

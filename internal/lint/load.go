package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ErrNoGoFiles is returned by Loader.Load for directories with no non-test Go
// files (test-only packages, empty directories). Callers typically skip them.
var ErrNoGoFiles = fmt.Errorf("lint: no non-test Go files")

// Package is one loaded, type-checked package plus the lint bookkeeping the
// analyzers share: parsed //sslint: directives and an AST parent index.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info

	directives *directives
	parents    map[ast.Node]ast.Node
	fdecls     map[types.Object]*ast.FuncDecl // lazy; see funcDecl in dataflow.go
}

// TypeOf returns the type of an expression, or nil when untyped.
func (p *Package) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Parent returns the syntactic parent of a node within this package, or nil
// for file roots and foreign nodes.
func (p *Package) Parent(n ast.Node) ast.Node { return p.parents[n] }

// Position resolves a token position.
func (p *Package) Position(pos token.Pos) token.Position { return p.Fset.Position(pos) }

// HotpathFuncs returns the function declarations marked //sslint:hotpath.
func (p *Package) HotpathFuncs() []*ast.FuncDecl { return p.directives.hotpath }

// Loader parses and type-checks packages. All packages loaded through one
// Loader share a FileSet and a source importer, so dependency packages are
// type-checked once per Loader regardless of how many targets import them.
type Loader struct {
	Fset *token.FileSet
	imp  types.Importer
}

// NewLoader creates a loader backed by the stdlib source importer
// (importer.ForCompiler with the "source" toolchain), which type-checks
// dependencies from source — no installed export data and no external
// analysis framework required.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{Fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Load parses every non-test Go file in dir and type-checks them as the
// package with the given import path. It returns ErrNoGoFiles when the
// directory holds no non-test Go files.
func (l *Loader) Load(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") ||
			strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%w in %s", ErrNoGoFiles, dir)
	}
	sort.Strings(names) // deterministic file order -> deterministic output
	files := make([]*ast.File, 0, len(names))
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	p := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}
	p.buildParents()
	p.directives = parseDirectives(p)
	return p, nil
}

// buildParents indexes every node's syntactic parent across the package's
// files, for the guard-domination walk and composite-literal context checks.
func (p *Package) buildParents() {
	p.parents = make(map[ast.Node]ast.Node)
	for _, f := range p.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if len(stack) > 0 {
				p.parents[n] = stack[len(stack)-1]
			}
			stack = append(stack, n)
			return true
		})
	}
}

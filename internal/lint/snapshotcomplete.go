package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// SnapshotComplete cross-references the hand-written checkpoint codecs
// against the structs they serialize. A codec is any function or method that
// takes (or, for Save/Load-named functions, locally creates) a
// *snapshot.Encoder or *snapshot.Decoder; its subject struct comes from the
// receiver, a name hint (loadMessage -> Message), or the single struct
// parameter/result. Save and load codecs pair up by subject type and
// normalized name (SaveState/LoadState, EncodeFlit/DecodeFlit,
// SaveTracker/LoadTracker, MessageTable.SaveState/LoadMessageTable,
// Snapshot/Restore all pair).
//
// Four drift classes are reported:
//
//   - a mutable field the codecs never mention: state was added to the
//     struct but not to the checkpoint. "Mutable" means some non-codec
//     method of the package writes it — fields only ever set by
//     constructors (plain functions) are configuration and exempt, and
//     //sslint:nosnapshot exempts genuinely ephemeral fields explicitly;
//   - a field the save codec feeds into an encoder call but no load codec
//     mentions: encoded bytes that restore nowhere;
//   - a field a load codec fills from a decoder call but no save codec
//     mentions: a read of bytes nothing wrote, which desynchronizes the
//     stream;
//   - save and load visiting the fields both attribute in different orders.
//
// The comparison is deliberately field-anchored rather than a raw
// operation-trace diff: real codecs delegate asymmetrically (a save loops
// over a helper while the load inlines the reads), reset fields on load
// only, and validate names on load — all legal shapes that an exact
// op-sequence comparison would flag. Field mentions inside methods of the
// subject type called by a codec (one level deep) count as coverage, so
// delegation like Registry.LoadState -> register keeps its fields covered.
type SnapshotComplete struct {
	// SnapshotPackage is the import path of the codec-primitive package.
	SnapshotPackage string
}

// NewSnapshotComplete returns the analyzer bound to the repo's snapshot
// package.
func NewSnapshotComplete() *SnapshotComplete {
	return &SnapshotComplete{SnapshotPackage: "supersim/internal/snapshot"}
}

// Name implements Analyzer.
func (*SnapshotComplete) Name() string { return RuleSnapshotComplete }

type codecDir int

const (
	codecSave codecDir = iota
	codecLoad
)

func (d codecDir) String() string {
	if d == codecSave {
		return "save"
	}
	return "load"
}

// codecInfo is one analyzed codec function.
type codecInfo struct {
	fd       *ast.FuncDecl
	name     string
	dir      codecDir
	subject  *types.Named
	tail     string
	codecObj types.Object
	// mentions maps every subject field the body (plus one level of
	// same-subject method calls) touches to its first position.
	mentions map[*types.Var]token.Pos
	// attr maps fields attributed to encoder/decoder operations to the
	// first such operation's position; attrOrder is their first-occurrence
	// order.
	attr      map[*types.Var]token.Pos
	attrOrder []*types.Var
}

// nonDataMethods are Encoder/Decoder methods that move no payload bytes;
// calls to them are not codec operations.
var nonDataMethods = map[string]bool{
	"Err": true, "Failf": true, "Done": true, "Remaining": true,
	"Bytes": true, "Len": true,
}

// directionPrefixes map a codec-name prefix to its direction. Order matters:
// longer prefixes first so "snapshot" wins over "s..." style overlaps.
var directionPrefixes = []struct {
	prefix string
	dir    codecDir
}{
	{"snapshot", codecSave}, {"restore", codecLoad},
	{"save", codecSave}, {"load", codecLoad},
	{"encode", codecSave}, {"decode", codecLoad},
	{"write", codecSave}, {"read", codecLoad},
}

// Check implements Analyzer.
func (a *SnapshotComplete) Check(p *Package) []Diagnostic {
	var codecs []*codecInfo
	codecFDs := map[*ast.FuncDecl]bool{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ci := a.classify(p, fd)
			if ci != nil {
				codecs = append(codecs, ci)
				codecFDs[fd] = true
			}
		}
	}
	if len(codecs) == 0 {
		return nil
	}
	for _, ci := range codecs {
		a.scan(p, ci, codecFDs)
	}
	mutable := a.mutableFields(p, codecFDs)

	// Group by subject, then by normalized tail.
	type group struct {
		saves, loads []*codecInfo
	}
	subjects := map[*types.Named]map[string]*group{}
	var subjectOrder []*types.Named
	for _, ci := range codecs {
		tails, ok := subjects[ci.subject]
		if !ok {
			tails = map[string]*group{}
			subjects[ci.subject] = tails
			subjectOrder = append(subjectOrder, ci.subject)
		}
		g := tails[ci.tail]
		if g == nil {
			g = &group{}
			tails[ci.tail] = g
		}
		if ci.dir == codecSave {
			g.saves = append(g.saves, ci)
		} else {
			g.loads = append(g.loads, ci)
		}
	}
	sort.Slice(subjectOrder, func(i, j int) bool {
		return subjectOrder[i].Obj().Name() < subjectOrder[j].Obj().Name()
	})

	var diags []Diagnostic
	for _, subj := range subjectOrder {
		tails := subjects[subj]
		var tailOrder []string
		for t := range tails {
			tailOrder = append(tailOrder, t)
		}
		sort.Strings(tailOrder)

		paired := false
		saveMentions := map[*types.Var]bool{}
		loadMentions := map[*types.Var]bool{}
		saveAttr := map[*types.Var]token.Pos{}
		loadAttr := map[*types.Var]token.Pos{}
		for _, t := range tailOrder {
			g := tails[t]
			if len(g.saves) > 0 && len(g.loads) > 0 {
				paired = true
			}
			for _, ci := range g.saves {
				if len(g.loads) == 0 {
					diags = append(diags, Diagnostic{
						Rule: RuleSnapshotComplete, Pos: p.Position(ci.fd.Name.Pos()),
						Message: fmt.Sprintf(
							"save codec %s for %s has no matching load codec (looked for a load/%s pair)",
							ci.name, subj.Obj().Name(), t),
					})
				}
				for v := range ci.mentions {
					saveMentions[v] = true
				}
				for v, pos := range ci.attr {
					if _, ok := saveAttr[v]; !ok {
						saveAttr[v] = pos
					}
				}
			}
			for _, ci := range g.loads {
				if len(g.saves) == 0 {
					diags = append(diags, Diagnostic{
						Rule: RuleSnapshotComplete, Pos: p.Position(ci.fd.Name.Pos()),
						Message: fmt.Sprintf(
							"load codec %s for %s has no matching save codec (looked for a save/%s pair)",
							ci.name, subj.Obj().Name(), t),
					})
				}
				for v := range ci.mentions {
					loadMentions[v] = true
				}
				for v, pos := range ci.attr {
					if _, ok := loadAttr[v]; !ok {
						loadAttr[v] = pos
					}
				}
			}
			// Order comparison for one-to-one pairs.
			if len(g.saves) == 1 && len(g.loads) == 1 {
				diags = append(diags, a.orderDiags(p, subj, g.saves[0], g.loads[0])...)
			}
		}
		if !paired {
			continue // no complete pair: field-level auditing would misfire
		}

		// Presence: fields fed into encoder ops must be mentioned by a load,
		// fields filled from decoder ops must be mentioned by a save.
		for _, v := range sortedVars(saveAttr) {
			if !loadMentions[v] {
				diags = append(diags, Diagnostic{
					Rule: RuleSnapshotComplete, Pos: p.Position(saveAttr[v]),
					Message: fmt.Sprintf(
						"field %s.%s is encoded here but no load codec restores it",
						subj.Obj().Name(), v.Name()),
				})
			}
		}
		for _, v := range sortedVars(loadAttr) {
			if !saveMentions[v] {
				diags = append(diags, Diagnostic{
					Rule: RuleSnapshotComplete, Pos: p.Position(loadAttr[v]),
					Message: fmt.Sprintf(
						"field %s.%s is restored here but no save codec encodes it — the decode stream is misaligned",
						subj.Obj().Name(), v.Name()),
				})
			}
		}

		// Coverage: every mutable field of a locally-defined subject must be
		// mentioned by some codec or annotated //sslint:nosnapshot.
		if subj.Obj().Pkg() != p.Pkg {
			continue
		}
		st, ok := subj.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			fld := st.Field(i)
			if fld.Anonymous() {
				continue // embedded types are audited via their own codecs
			}
			fpos := p.Position(fld.Pos())
			covered := saveMentions[fld] || loadMentions[fld]
			dir := p.directives.nosnapshotFor(fpos)
			switch {
			case covered && dir != nil:
				diags = append(diags, Diagnostic{
					Rule: RuleSnapshotComplete, Pos: dir.pos,
					Message: fmt.Sprintf(
						"field %s.%s is marked //sslint:nosnapshot but the codecs serialize it — remove the directive",
						subj.Obj().Name(), fld.Name()),
				})
			case !covered && dir == nil && mutable[fld]:
				diags = append(diags, Diagnostic{
					Rule: RuleSnapshotComplete, Pos: fpos,
					Message: fmt.Sprintf(
						"field %s.%s is mutated by methods of this package but never serialized — add it to the %s save/load codecs or mark it //sslint:nosnapshot with a justification",
						subj.Obj().Name(), fld.Name(), subj.Obj().Name()),
				})
			}
		}
	}
	return diags
}

// orderDiags compares the field order of a one-to-one save/load pair over
// the fields both sides attribute to codec operations.
func (a *SnapshotComplete) orderDiags(p *Package, subj *types.Named, save, load *codecInfo) []Diagnostic {
	inLoad := map[*types.Var]bool{}
	for _, v := range load.attrOrder {
		inLoad[v] = true
	}
	var saveSeq []*types.Var
	for _, v := range save.attrOrder {
		if inLoad[v] {
			saveSeq = append(saveSeq, v)
		}
	}
	inSave := map[*types.Var]bool{}
	for _, v := range save.attrOrder {
		inSave[v] = true
	}
	var loadSeq []*types.Var
	for _, v := range load.attrOrder {
		if inSave[v] {
			loadSeq = append(loadSeq, v)
		}
	}
	for i := 0; i < len(saveSeq) && i < len(loadSeq); i++ {
		if saveSeq[i] != loadSeq[i] {
			return []Diagnostic{{
				Rule: RuleSnapshotComplete, Pos: p.Position(load.fd.Name.Pos()),
				Message: fmt.Sprintf(
					"save/load codecs for %s disagree on field order: %s encodes %s before %s, but %s decodes %s first (save at %s)",
					subj.Obj().Name(), save.name, saveSeq[i].Name(), findAfter(saveSeq, i, loadSeq[i]),
					load.name, loadSeq[i].Name(), p.Position(save.fd.Name.Pos())),
			}}
		}
	}
	return nil
}

// findAfter names the load-side field as it appears later in the save
// sequence, for the order-mismatch message; falls back to the mismatched
// save field's counterpart name.
func findAfter(saveSeq []*types.Var, i int, loadField *types.Var) string {
	for _, v := range saveSeq[i:] {
		if v == loadField {
			return v.Name()
		}
	}
	return loadField.Name()
}

func sortedVars(m map[*types.Var]token.Pos) []*types.Var {
	out := make([]*types.Var, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return m[out[i]] < m[out[j]] })
	return out
}

// classify decides whether fd is a codec and resolves its direction, codec
// value, subject, and normalized tail.
func (a *SnapshotComplete) classify(p *Package, fd *ast.FuncDecl) *codecInfo {
	obj, dir, ok := a.codecValue(p, fd)
	if !ok {
		return nil
	}
	subject := a.subjectOf(p, fd, obj)
	if subject == nil {
		return nil
	}
	ci := &codecInfo{
		fd: fd, name: codecDisplayName(fd), dir: dir, subject: subject,
		tail:     normalizeTail(fd.Name.Name, subject.Obj().Name()),
		mentions: map[*types.Var]token.Pos{},
		attr:     map[*types.Var]token.Pos{},
	}
	ci.codecObj = obj
	return ci
}

func codecDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		return recvString(fd.Recv.List[0].Type) + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// codecValue finds the encoder/decoder value a function operates on: a
// parameter of type *snapshot.Encoder/*snapshot.Decoder, or — for functions
// whose name carries a codec direction prefix — a local created via
// snapshot.NewEncoder/NewDecoder.
func (a *SnapshotComplete) codecValue(p *Package, fd *ast.FuncDecl) (types.Object, codecDir, bool) {
	if fd.Type.Params != nil {
		for _, fld := range fd.Type.Params.List {
			dir, ok := a.codecType(p.TypeOf(fld.Type))
			if !ok {
				continue
			}
			if len(fld.Names) != 1 {
				return nil, 0, false
			}
			return p.Info.Defs[fld.Names[0]], dir, true
		}
	}
	nameDir, named := nameDirection(fd.Name.Name)
	if !named {
		return nil, 0, false
	}
	var obj types.Object
	var dir codecDir
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if obj != nil {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != a.SnapshotPackage {
			return true
		}
		var d codecDir
		switch fn.Name() {
		case "NewEncoder":
			d = codecSave
		case "NewDecoder":
			d = codecLoad
		default:
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if o := p.Info.Defs[id]; o != nil {
				obj, dir = o, d
			}
		}
		return true
	})
	if obj == nil || dir != nameDir {
		return nil, 0, false
	}
	return obj, dir, true
}

// codecType reports whether t is *snapshot.Encoder or *snapshot.Decoder.
func (a *SnapshotComplete) codecType(t types.Type) (codecDir, bool) {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return 0, false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != a.SnapshotPackage {
		return 0, false
	}
	switch named.Obj().Name() {
	case "Encoder":
		return codecSave, true
	case "Decoder":
		return codecLoad, true
	}
	return 0, false
}

// nameDirection resolves the codec direction a function name implies.
func nameDirection(name string) (codecDir, bool) {
	low := strings.ToLower(name)
	for _, dp := range directionPrefixes {
		if strings.HasPrefix(low, dp.prefix) {
			return dp.dir, true
		}
	}
	return 0, false
}

// normalizeTail maps a codec name to its pairing key: the name minus its
// direction prefix, with "", "state", and the subject's own name all
// canonicalized to "state" (SaveState, Snapshot/Restore, and
// LoadMessageTable-style names all pair up).
func normalizeTail(name, subject string) string {
	low := strings.ToLower(name)
	for _, dp := range directionPrefixes {
		if strings.HasPrefix(low, dp.prefix) {
			low = low[len(dp.prefix):]
			break
		}
	}
	if low == "" || low == "state" || low == strings.ToLower(subject) {
		return "state"
	}
	return low
}

// subjectOf resolves the struct a codec serializes: the receiver type, the
// name-hinted parameter/result type, or the single named-struct
// parameter/result.
func (a *SnapshotComplete) subjectOf(p *Package, fd *ast.FuncDecl, codecObj types.Object) *types.Named {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		return namedStruct(p.TypeOf(fd.Recv.List[0].Type))
	}
	var candidates []*types.Named
	add := func(t types.Type) {
		if n := namedStruct(t); n != nil {
			candidates = append(candidates, n)
		}
	}
	if fd.Type.Params != nil {
		for _, fld := range fd.Type.Params.List {
			if len(fld.Names) == 1 && p.Info.Defs[fld.Names[0]] == codecObj {
				continue
			}
			add(p.TypeOf(fld.Type))
		}
	}
	nparams := len(candidates)
	if fd.Type.Results != nil {
		for _, fld := range fd.Type.Results.List {
			add(p.TypeOf(fld.Type))
		}
	}
	// Name hint first: loadMessage -> Message beats the *Pool parameter.
	low := strings.ToLower(fd.Name.Name)
	for _, dp := range directionPrefixes {
		if strings.HasPrefix(low, dp.prefix) {
			low = low[len(dp.prefix):]
			break
		}
	}
	for _, c := range candidates {
		if low != "" && strings.ToLower(c.Obj().Name()) == low {
			return c
		}
	}
	if nparams == 1 {
		return candidates[0]
	}
	if len(candidates)-nparams == 1 {
		return candidates[nparams]
	}
	return nil
}

// namedStruct unwraps pointers and reports the named struct type, if any.
func namedStruct(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// subjectFields returns the set of field objects of the subject struct.
func subjectFields(subj *types.Named) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	st, ok := subj.Underlying().(*types.Struct)
	if !ok {
		return out
	}
	for i := 0; i < st.NumFields(); i++ {
		out[st.Field(i)] = true
	}
	return out
}

// scan walks a codec body collecting field mentions and attributed codec
// operations.
func (a *SnapshotComplete) scan(p *Package, ci *codecInfo, codecFDs map[*ast.FuncDecl]bool) {
	fields := subjectFields(ci.subject)
	a.collectMentions(p, ci.fd.Body, fields, ci.mentions)

	// One level of delegation: mentions inside same-subject methods called
	// from the codec body also count as coverage.
	ast.Inspect(ci.fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := p.Info.Selections[sel]
		if s == nil || s.Kind() != types.MethodVal {
			return true
		}
		if namedStruct(s.Recv()) != ci.subject {
			return true
		}
		fd := p.funcDeclOf(s.Obj())
		if fd == nil || fd.Body == nil || fd == ci.fd || codecFDs[fd] {
			return true
		}
		a.collectMentions(p, fd.Body, fields, ci.mentions)
		return true
	})

	// Codec operations and their field attribution.
	ast.Inspect(ci.fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !a.isCodecOp(p, call, ci.codecObj) {
			return true
		}
		stmt := enclosingStmt(p, call)
		if stmt == nil {
			return true
		}
		if v := firstFieldMention(p, stmt, fields); v != nil {
			if _, seen := ci.attr[v]; !seen {
				ci.attr[v] = call.Pos()
				ci.attrOrder = append(ci.attrOrder, v)
			}
		}
		return true
	})
}

// isCodecOp reports whether the call moves codec bytes: a data method on the
// codec value itself, or a helper call that receives the codec value as an
// argument or receiver.
func (a *SnapshotComplete) isCodecOp(p *Package, call *ast.CallExpr, codecObj types.Object) bool {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok && p.Info.Uses[id] == codecObj {
			return !nonDataMethods[sel.Sel.Name]
		}
	}
	for _, arg := range call.Args {
		if usesObject(p, arg, codecObj) {
			return true
		}
	}
	return false
}

func usesObject(p *Package, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// collectMentions records every reference to a subject field: selector
// expressions and composite-literal keys.
func (a *SnapshotComplete) collectMentions(p *Package, body *ast.BlockStmt, fields map[*types.Var]bool, out map[*types.Var]token.Pos) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if s := p.Info.Selections[x]; s != nil && s.Kind() == types.FieldVal {
				if v, ok := s.Obj().(*types.Var); ok && fields[v] {
					if _, seen := out[v]; !seen {
						out[v] = x.Sel.Pos()
					}
				}
			}
		case *ast.KeyValueExpr:
			if id, ok := x.Key.(*ast.Ident); ok {
				if v, ok := p.Info.Uses[id].(*types.Var); ok && fields[v] {
					if _, seen := out[v]; !seen {
						out[v] = id.Pos()
					}
				}
			}
		}
		return true
	})
}

// firstFieldMention returns the first (source-order) subject field mentioned
// within the statement, or nil.
func firstFieldMention(p *Package, stmt ast.Stmt, fields map[*types.Var]bool) *types.Var {
	var best *types.Var
	var bestPos token.Pos
	ast.Inspect(stmt, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := p.Info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		v, ok := s.Obj().(*types.Var)
		if !ok || !fields[v] {
			return true
		}
		if best == nil || sel.Sel.Pos() < bestPos {
			best, bestPos = v, sel.Sel.Pos()
		}
		return true
	})
	return best
}

func enclosingStmt(p *Package, n ast.Node) ast.Stmt {
	for c := ast.Node(n); c != nil; c = p.Parent(c) {
		if s, ok := c.(ast.Stmt); ok {
			return s
		}
	}
	return nil
}

// mutableFields computes the fields written by any method in the package
// outside the codec bodies: assignments, inc/dec, and address-taking all
// count. Fields written only by plain functions (constructors) stay
// immutable.
func (a *SnapshotComplete) mutableFields(p *Package, codecFDs map[*ast.FuncDecl]bool) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	markFields := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if s := p.Info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
				if v, ok := s.Obj().(*types.Var); ok {
					out[v] = true
				}
			}
			return true
		})
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || codecFDs[fd] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.AssignStmt:
					for _, l := range x.Lhs {
						markFields(l)
					}
				case *ast.IncDecStmt:
					markFields(x.X)
				case *ast.UnaryExpr:
					if x.Op == token.AND {
						markFields(x.X)
					}
				}
				return true
			})
		}
	}
	return out
}

// Package lintfixture exercises the shardsafety analyzer. link mirrors
// channel.Channel: a shard-spanning component whose inbox methods own
// pending/head/scheduled, with a remote-port guard making the local path
// provably single-shard. The sync/atomic cases exercise the access-level
// confinement that catches promoted methods no import line reveals. Never
// part of the build.
package lintfixture

import (
	"sync"
	"sync/atomic"

	"supersim/internal/sim"
)

// link is a shard-spanning component: remote is non-nil when its inbox
// methods run on another shard's goroutine.
type link struct {
	sim.ComponentBase
	remote    *sim.RemotePort
	pending   []int
	head      int
	scheduled bool
	nextSlot  int // source-owned: never written by the inbox methods
}

func (l *link) SetRemote(p *sim.RemotePort) { l.remote = p }

// ReceiveRemote and ProcessEvent are the inbox methods; the fields they
// write become destination-owned.
func (l *link) ReceiveRemote(at sim.Tick, ptr any, aux int) {
	l.pending = append(l.pending, aux)
	if !l.scheduled {
		l.scheduled = true
	}
}

func (l *link) ProcessEvent(ev *sim.Event) {
	l.head++
	if l.head == len(l.pending) {
		l.pending = l.pending[:0]
		l.head = 0
		l.scheduled = false
	}
}

// injectUnguarded races: on the source shard these fields belong to the
// destination's goroutine.
func (l *link) injectUnguarded(v int) {
	l.pending = append(l.pending, v) // want `write to link\.pending outside the inbox methods`
	l.scheduled = true               // want `write to link\.scheduled outside the inbox methods`
}

// injectGuarded is the sanctioned shape: cross-shard traffic goes through
// the RemotePort seam, and the fall-through proves remote == nil, so the
// local writes and the destination-bound clock read cannot race.
func (l *link) injectGuarded(v int) {
	if l.remote != nil {
		l.remote.Send(sim.Tick(v), nil, v)
		return
	}
	l.pending = append(l.pending, v)
	l.scheduled = true
	_ = l.Sim().Now()
}

func (l *link) clockUnguarded() sim.Time {
	return l.Sim().Now() // want `l\.Sim\(\) on a shard-spanning component outside the inbox methods`
}

func (l *link) panicUnguarded() {
	l.Panicf("boom") // want `l\.Panicf\(\) on a shard-spanning component outside the inbox methods`
}

func (l *link) panicGuarded() {
	if l.remote != nil {
		return
	}
	l.Panicf("local only")
}

// sourceSide writes a field the inbox methods never touch — source-owned,
// unconstrained.
func (l *link) sourceSide(v int) {
	l.nextSlot = v
}

// Collect runs while the engine is quiesced and is exempt.
func (l *link) Collect(xs []int) {
	l.pending = append(l.pending, xs...)
}

// local has no RemotePort field: single-shard by construction, so its
// ProcessEvent-written fields are unconstrained.
type local struct {
	sim.ComponentBase
	pending []int
}

func (n *local) ProcessEvent(ev *sim.Event) { n.pending = n.pending[:0] }

func (n *local) inject(v int) {
	n.pending = append(n.pending, v)
	_ = n.Sim().Now()
}

// counter embeds a mutex: the Lock/Unlock calls are promoted sync methods
// that the import-level determinism check cannot see from the call site.
type counter struct {
	sync.Mutex // want `use of sync\.Mutex in sim-core package`
	n          int
}

func (c *counter) bump() {
	c.Lock() // want `use of sync\.Lock in sim-core package`
	c.n++
	c.Unlock() // want `use of sync\.Unlock in sim-core package`
}

var total atomic.Uint64 // want `use of sync/atomic\.Uint64 in sim-core package`

func addTotal() {
	total.Add(1) // want `use of sync/atomic\.Add in sim-core package`
}

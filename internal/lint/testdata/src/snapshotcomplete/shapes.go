// Codec shapes beyond the plain SaveState/LoadState method pair: locally
// created encoders (core.Snapshot/Restore style), free functions paired by
// name hint (types.EncodeFlit style), helper functions that carry the codec,
// field coverage through non-codec method delegation, and the delA/delB/delC
// family, which statically enumerates every single-encoder-call deletion of
// the full codec — each deletion must produce a finding.
package lintfixture

import "supersim/internal/snapshot"

// box serializes through a locally created encoder/decoder, paired by the
// snapshot/restore direction prefixes.
type box struct {
	v uint64
	w uint64
}

func (b *box) mutate() { b.v++; b.w++ }

func (b *box) Snapshot() []byte {
	e := snapshot.NewEncoder()
	e.U64(b.v)
	e.U64(b.w)
	return e.Bytes()
}

func (b *box) Restore(data []byte) error {
	d := snapshot.NewDecoder(data)
	b.v = d.U64()
	b.w = d.U64()
	return d.Err()
}

// blob is serialized by free functions, paired with the subject through the
// encodeBlob/decodeBlob name hint; the codec bytes move through helper
// functions that receive the codec as an argument.
type blob struct {
	xs []int
}

func (b *blob) grow() { b.xs = append(b.xs, 1) }

func encodeBlob(e *snapshot.Encoder, b *blob) {
	saveInts(e, b.xs)
}

func decodeBlob(d *snapshot.Decoder, b *blob) error {
	b.xs = loadInts(d)
	return d.Err()
}

func saveInts(e *snapshot.Encoder, xs []int) {
	e.Int(len(xs))
	for _, x := range xs {
		e.Int(x)
	}
}

func loadInts(d *snapshot.Decoder) []int {
	n := d.Count()
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.Int())
	}
	return out
}

// journal's sealed field is never mentioned by the codec bodies themselves —
// coverage flows through the seal() delegation, one level deep, the way
// Registry.SaveState covers its fields via sortLocked.
type journal struct {
	entries []int
	sealed  bool
}

func (j *journal) add(v int) { j.entries = append(j.entries, v); j.sealed = false }

func (j *journal) seal() { j.sealed = true }

func (j *journal) SaveState(e *snapshot.Encoder) {
	j.seal()
	e.Int(len(j.entries))
	for _, v := range j.entries {
		e.Int(v)
	}
}

func (j *journal) LoadState(d *snapshot.Decoder) error {
	n := d.Count()
	j.entries = j.entries[:0]
	for i := 0; i < n; i++ {
		j.entries = append(j.entries, d.Int())
	}
	j.seal()
	return d.Err()
}

// full is the reference codec for the deletion family below: three fields,
// encoded and decoded in the same order. No findings.
type full struct {
	a uint64
	b uint64
	c uint64
}

func (f *full) touch() { f.a++; f.b++; f.c++ }

func (f *full) SaveState(e *snapshot.Encoder) {
	e.U64(f.a)
	e.U64(f.b)
	e.U64(f.c)
}

func (f *full) LoadState(d *snapshot.Decoder) error {
	f.a = d.U64()
	f.b = d.U64()
	f.c = d.U64()
	return d.Err()
}

// delA is full with the first encoder call deleted.
type delA struct {
	a uint64
	b uint64
	c uint64
}

func (f *delA) touch() { f.a++; f.b++; f.c++ }

func (f *delA) SaveState(e *snapshot.Encoder) {
	e.U64(f.b)
	e.U64(f.c)
}

func (f *delA) LoadState(d *snapshot.Decoder) error {
	f.a = d.U64() // want `field delA\.a is restored here but no save codec encodes it`
	f.b = d.U64()
	f.c = d.U64()
	return d.Err()
}

// delB is full with the middle encoder call deleted.
type delB struct {
	a uint64
	b uint64
	c uint64
}

func (f *delB) touch() { f.a++; f.b++; f.c++ }

func (f *delB) SaveState(e *snapshot.Encoder) {
	e.U64(f.a)
	e.U64(f.c)
}

func (f *delB) LoadState(d *snapshot.Decoder) error {
	f.a = d.U64()
	f.b = d.U64() // want `field delB\.b is restored here but no save codec encodes it`
	f.c = d.U64()
	return d.Err()
}

// delC is full with the last encoder call deleted.
type delC struct {
	a uint64
	b uint64
	c uint64
}

func (f *delC) touch() { f.a++; f.b++; f.c++ }

func (f *delC) SaveState(e *snapshot.Encoder) {
	e.U64(f.a)
	e.U64(f.b)
}

func (f *delC) LoadState(d *snapshot.Decoder) error {
	f.a = d.U64()
	f.b = d.U64()
	f.c = d.U64() // want `field delC\.c is restored here but no save codec encodes it`
	return d.Err()
}

// A nosnapshot that covers no audited struct field is rot and is reported
// when the snapshotcomplete analyzer runs with directive checking.
//
//sslint:nosnapshot — attached to nothing // want `does not cover any audited struct field`
var strayDirective = 0

// Package lintfixture exercises the snapshotcomplete analyzer: symmetric
// codecs pass, drifted structs and asymmetric codecs are flagged, and the
// //sslint:nosnapshot directive exempts (only) genuinely ephemeral fields.
// Never part of the build.
package lintfixture

import "supersim/internal/snapshot"

// rec is the well-behaved case: every mutable field is serialized, in the
// same order on both sides, and the ephemeral scratch field carries a
// justified nosnapshot.
type rec struct {
	count uint64
	label string
	open  bool
	//sslint:nosnapshot — derived cache, rebuilt on first use
	cache []int
	seed  uint64 // set only by newRec: configuration, auto-exempt
}

func newRec(seed uint64) *rec { return &rec{seed: seed} }

func (r *rec) bump() {
	r.count++
	r.open = true
	r.label = "x"
	r.cache = append(r.cache, 1)
}

func (r *rec) SaveState(e *snapshot.Encoder) {
	e.U64(r.count)
	e.Str(r.label)
	e.Bool(r.open)
}

func (r *rec) LoadState(d *snapshot.Decoder) error {
	r.count = d.U64()
	r.label = d.Str()
	r.open = d.Bool()
	return d.Err()
}

// recDrift is rec after someone adds a mutable field without touching the
// codecs — the core drift the rule exists to catch.
type recDrift struct {
	count uint64
	extra int // want `field recDrift\.extra is mutated by methods of this package but never serialized`
}

func (r *recDrift) bump() {
	r.count++
	r.extra++
}

func (r *recDrift) SaveState(e *snapshot.Encoder) {
	e.U64(r.count)
}

func (r *recDrift) LoadState(d *snapshot.Decoder) error {
	r.count = d.U64()
	return d.Err()
}

// halfSaved encodes a field no load codec restores: dead bytes in the
// stream.
type halfSaved struct {
	a uint64
	b uint64
}

func (h *halfSaved) touch() { h.a++; h.b++ }

func (h *halfSaved) SaveState(e *snapshot.Encoder) {
	e.U64(h.a)
	e.U64(h.b) // want `field halfSaved\.b is encoded here but no load codec restores it`
}

func (h *halfSaved) LoadState(d *snapshot.Decoder) error {
	h.a = d.U64()
	return d.Err()
}

// halfLoaded decodes a field no save codec wrote: the read misaligns every
// later field in the stream.
type halfLoaded struct {
	a uint64
	b uint64
}

func (h *halfLoaded) touch() { h.a++ }

func (h *halfLoaded) SaveState(e *snapshot.Encoder) {
	e.U64(h.a)
}

func (h *halfLoaded) LoadState(d *snapshot.Decoder) error {
	h.a = d.U64()
	h.b = d.U64() // want `field halfLoaded\.b is restored here but no save codec encodes it`
	return d.Err()
}

// swapped saves a then b but loads b then a — byte-compatible only by
// accident of width, value-corrupting always.
type swapped struct {
	a uint64
	b uint64
}

func (s *swapped) touch() { s.a++; s.b++ }

func (s *swapped) SaveState(e *snapshot.Encoder) {
	e.U64(s.a)
	e.U64(s.b)
}

func (s *swapped) LoadState(d *snapshot.Decoder) error { // want `disagree on field order`
	s.b = d.U64()
	s.a = d.U64()
	return d.Err()
}

// orphanSave has no load counterpart at all.
type orphanSave struct {
	n uint64
}

func (o *orphanSave) SaveState(e *snapshot.Encoder) { // want `save codec \(\*orphanSave\)\.SaveState for orphanSave has no matching load codec`
	e.U64(o.n)
}

// orphanLoad has no save counterpart at all.
type orphanLoad struct {
	n uint64
}

func (o *orphanLoad) LoadState(d *snapshot.Decoder) error { // want `load codec \(\*orphanLoad\)\.LoadState for orphanLoad has no matching save codec`
	o.n = d.U64()
	return d.Err()
}

// overSuppressed marks a field nosnapshot even though the codecs serialize
// it — the directive is stale and must go.
type overSuppressed struct {
	//sslint:nosnapshot — stale claim, the codecs do cover this field // want `marked //sslint:nosnapshot but the codecs serialize it`
	n uint64
}

func (o *overSuppressed) touch() { o.n++ }

func (o *overSuppressed) SaveState(e *snapshot.Encoder) {
	e.U64(o.n)
}

func (o *overSuppressed) LoadState(d *snapshot.Decoder) error {
	o.n = d.U64()
	return d.Err()
}

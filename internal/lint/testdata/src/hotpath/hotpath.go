// Package lintfixture exercises the hotpath analyzer. Only the functions
// marked //sslint:hotpath are checked; it is never part of the build.
package lintfixture

type ring struct {
	buf  []int
	head int
	tail int
	n    int
}

//sslint:hotpath
func (r *ring) pop() (int, bool) { // clean hot function: no findings
	if r.n == 0 {
		return 0, false
	}
	v := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	var scratch ring // a value composite stays on the stack: no finding
	_ = scratch
	return v, true
}

//sslint:hotpath
func (r *ring) push(v int) {
	if r.n == len(r.buf) {
		//sslint:allow hotpath — fixture: amortized ring growth is deliberate
		r.buf = append(r.buf, 0)
		r.tail = r.n
	}
	r.buf[r.tail] = v
	r.tail = (r.tail + 1) % len(r.buf)
	r.n++
}

//sslint:hotpath
func escapes() *ring {
	return &ring{} // want `composite literal escapes to the heap`
}

//sslint:hotpath
func allocators() {
	s := make([]int, 4) // want `make allocates`
	s = append(s, 1)    // want `append may grow the backing array`
	_ = s
	p := new(ring) // want `new allocates`
	_ = p
	lit := []int{1, 2} // want `slice literal allocates its backing array`
	_ = lit
	m := map[int]int{} // want `map literal allocates`
	_ = m
	f := func() {} // want `function literal allocates a closure`
	f()
	b := []byte("hi") // want `string/slice conversion allocates`
	_ = b
}

//sslint:hotpath
func methodValue(r *ring) func() (int, bool) {
	return r.pop // want `method value allocates a bound-method closure`
}

func unmarked() []int {
	return append(append([]int{}, 1), 2) // unmarked function: no findings
}

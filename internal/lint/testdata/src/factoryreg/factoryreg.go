// Package lintfixture exercises the factoryreg analyzer against the real
// factory package; it is never part of the build (the duplicate registration
// below would panic if it ever ran).
package lintfixture

import "supersim/internal/factory"

// Widget is the fixture's component interface.
type Widget interface {
	Spin(int) int
}

// Ctor is the constructor type the fixture registry holds.
type Ctor func(scale int) Widget

// Registry is the fixture's component registry.
var Registry = factory.NewRegistry[Ctor]("widget")

// Good is registered through a named constructor.
type Good struct{}

func (*Good) Spin(x int) int { return x }

// NewGood constructs a Good.
func NewGood(scale int) Widget { return &Good{} }

// Inline is registered through a function literal.
type Inline struct{ bias int }

func (i *Inline) Spin(x int) int { return x + i.bias }

func init() {
	Registry.Register("good", NewGood)
	Registry.Register("inline", func(scale int) Widget { return &Inline{bias: scale} })
	Registry.Register("dup", NewGood)
	Registry.Register("dup", NewGood) // want `duplicate registration name "dup"`
}

// Bad implements Widget but nothing registers it.
type Bad struct{} // want `Bad implements factoryreg\.Widget but is not registered`

func (*Bad) Spin(x int) int { return x + 1 }

// NotAWidget does not implement Widget and must not be reported.
type NotAWidget struct{}

func registerLate() {
	Registry.Register("late", NewGood) // want `must be called from an init\(\)`
}

func init() {
	name := "computed"
	Registry.Register(name, NewGood) // want `must be a string literal`
}

// Package lintfixture exercises the directive meta-rule: every //sslint:
// comment below is malformed in a distinct way. The expected problems are
// asserted explicitly in TestDirectiveProblems (a malformed directive cannot
// carry a trailing want marker without changing what is parsed).
package lintfixture

//sslint:allow determinism
func missingJustification() {}

//sslint:allow nosuchrule — the rule name does not exist
func unknownRule() {}

//sslint:frobnicate
func unknownDirective() {}

var notAFunc = 1 //sslint:hotpath

// Package lintfixture exercises the directive meta-rule: every //sslint:
// comment below is malformed in a distinct way. The expected problems are
// asserted explicitly in TestDirectiveProblems (a malformed directive cannot
// carry a trailing want marker without changing what is parsed).
package lintfixture

//sslint:allow determinism
func missingJustification() {}

//sslint:allow nosuchrule — the rule name does not exist
func unknownRule() {}

// The first "determinism" registers an (unused) allow; the second listing is
// a duplicate. Both outcomes are asserted by the test.
//
//sslint:allow determinism,determinism — duplicate listing
func duplicateRule() {}

//sslint:frobnicate
func unknownDirective() {}

//sslint:nosnapshot
func nosnapshotWithoutJustification() {}

var notAFunc = 1 //sslint:hotpath

package lintfixture

import (
	"sync" // want `import of "sync"`
	"time"
)

// Outside the two allowlisted files the package is ordinary sim-core: the
// journal bytes are golden-compared, so wall-clock reads, ad-hoc goroutines
// and order-sensitive map iteration are all flagged here.

var flagMu sync.Mutex

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `wall-clock read time\.Since`
}

func spawn(fn func()) {
	flagMu.Lock()
	defer flagMu.Unlock()
	go fn() // want `goroutine launched`
}

// emit appends in map order — observable nondeterminism in journal output.
func emit(resources map[string]int) []string {
	var out []string
	for name := range resources { // want `map iteration order`
		out = append(out, name)
	}
	return out
}

// release subtracts demands back into the pool: -= commutes, so this
// map-range is order-insensitive and must NOT be flagged.
func release(demand map[string]int, avail map[string]int) {
	for res, n := range demand {
		avail[res] -= n
	}
}

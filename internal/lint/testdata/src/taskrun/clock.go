// Package lintfixture exercises the determinism rule's taskrun seams: the
// wall-clock allowlist stops at clock.go, the concurrency allowlist at
// taskrun.go, and everything else in the package is held to full sim-core
// discipline. Loaded under supersim/internal/taskrun/lintfixture by the lint
// tests; never part of the build.
package lintfixture

import "time"

// now mirrors taskrun.WallClock: clock.go is the sanctioned time.Now seam,
// so this read must NOT be flagged.
func now() time.Time {
	return time.Now()
}

package lintfixture

import "sync"

// scheduler mirrors the runner's sanctioned concurrency: taskrun.go may
// import sync and launch worker goroutines, so nothing in this file is
// flagged.
type scheduler struct {
	mu   sync.Mutex
	done int
}

func (s *scheduler) launch(fn func()) {
	go func() {
		fn()
		s.mu.Lock()
		s.done++
		s.mu.Unlock()
	}()
}

// Package lintfixture exercises the determinism analyzer. The lint tests load
// it under a sim-core import path (supersim/internal/sim/lintfixture); it is
// never part of the build.
package lintfixture

import (
	"math/rand"
	"sync"        // want `import of "sync"`
	"sync/atomic" // want `import of "sync/atomic"`
	"time"
)

var sink int64

func wallClock() {
	t := time.Now() // want `wall-clock read time\.Now`
	sink += t.Unix()
	d := time.Since(t) // want `wall-clock read time\.Since`
	_ = d
	_ = time.Duration(3) // a type conversion, not a clock read: no finding
}

func globalRand() {
	sink += int64(rand.Intn(8)) // want `global rand\.Intn`
	r := rand.New(rand.NewSource(42))
	sink += int64(r.Intn(8)) // methods of a seeded *rand.Rand are fine
}

func mapOrder(m map[int]int) []int {
	var order []int
	for k := range m { // want `map iteration order`
		order = append(order, k)
	}
	return order
}

func mapOK(m map[int]int) (int, map[int]int) {
	total := 0
	count := 0
	inverse := map[int]int{}
	for k, v := range m { // order-insensitive body: no finding
		total += v
		count++
		inverse[k] = v
		if v == 0 {
			delete(inverse, k)
			continue
		}
	}
	return total + count, inverse
}

func allowedWallClock() {
	//sslint:allow determinism — fixture: suppression-by-line under test
	sink += time.Now().Unix()
}

//sslint:allow determinism — fixture: function-scope suppression under test
func allowedScoped() {
	sink += time.Now().UnixNano()
}

//sslint:allow determinism — fixture: nothing to suppress; want `suppresses nothing`
func cleanFunc() int {
	return 7
}

func spawns() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `goroutine launched`
		defer wg.Done()
		atomic.AddInt64(&sink, 1)
	}()
	wg.Wait()
}

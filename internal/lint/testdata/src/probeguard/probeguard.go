// Package lintfixture exercises the probeguard analyzer against the verify
// ledgers (the cheapest real probe types to type-check) and the engine's
// ShardProbe — an interface-typed probe, unlike the pointer-to-struct
// telemetry probes; it is never part of the build.
package lintfixture

import (
	"supersim/internal/sim"
	"supersim/internal/taskrun"
	"supersim/internal/verify"
)

type node struct {
	v    *verify.Verifier
	cl   *verify.CreditLedger
	leds []*verify.BufferLedger
	sp   sim.ShardProbe
	tp   taskrun.Probe
}

func (n *node) unguarded() {
	n.v.FlitInjected(nil) // want `not dominated by a nil check of n\.v`
}

func (n *node) guardedIf() {
	if n.v != nil {
		n.v.FlitInjected(nil)
	}
}

func (n *node) guardedEarlyReturn() {
	if n.v == nil {
		return
	}
	n.v.FlitRetired(nil)
}

func (n *node) guardedShortCircuit() bool {
	return n.v != nil && n.v.InFlight() > 0
}

func (n *node) guardedDisjunction() bool {
	return n.v == nil || n.v.InFlight() == 0
}

func (n *node) guardedInit() {
	if cl := n.cl; cl != nil {
		cl.Credit(0, 0)
	}
}

func (n *node) guardedElse() {
	if n.cl == nil {
		return
	} else {
		n.cl.Debit(0, 0)
	}
}

func (n *node) wrongGuard() {
	if n.v != nil {
		n.cl.Credit(0, 1) // want `nil check of n\.cl`
	}
}

func (n *node) shardUnguarded() {
	n.sp.BlockedEnter() // want `not dominated by a nil check of n\.sp`
}

func (n *node) shardGuarded(h uint64, events uint64) {
	if n.sp != nil {
		n.sp.WindowCommitted(sim.Tick(h), events)
	}
	if n.sp == nil {
		return
	}
	n.sp.InboxDrained(1)
}

func (n *node) taskUnguarded() {
	n.tp.TaskReady("sim") // want `not dominated by a nil check of n\.tp`
}

func (n *node) taskGuarded() {
	if n.tp != nil {
		n.tp.TaskStarted("sim")
	}
	if n.tp == nil {
		return
	}
	n.tp.RunFinished()
}

func (n *node) indexPrefix(port int) {
	if n.leds != nil {
		n.leds[port].Arrive(0)
	}
	n.leds[port].Free(0) // want `nil check of n\.leds\[port\]`
}

// CFG-era guard idioms: shapes the v1 ancestor walk could not follow —
// switches, loops with guard-killing reassignment, goto joins, guard-helper
// predicates, and closures. Never part of the build.
package lintfixture

import "supersim/internal/verify"

func (n *node) guardedSwitch(mode int) {
	if n.v == nil {
		return
	}
	switch mode {
	case 0:
		n.v.FlitInjected(nil)
	default:
		n.v.FlitRetired(nil)
	}
}

func (n *node) guardedSwitchCase() {
	switch {
	case n.v == nil:
		return
	}
	n.v.FlitInjected(nil)
}

func (n *node) guardedLoop(k int) {
	if n.v == nil {
		return
	}
	for i := 0; i < k; i++ {
		n.v.FlitInjected(nil)
	}
}

func (n *node) loopKillsGuard(k int) {
	if n.v == nil {
		return
	}
	for i := 0; i < k; i++ {
		n.v.FlitInjected(nil) // want `nil check of n\.v`
		n.v = nil
	}
}

func (n *node) hasVerifier() bool { return n.v != nil }

func (n *node) viaGuardHelperMethod() {
	if n.hasVerifier() {
		n.v.FlitInjected(nil)
	}
}

func hasLedger(cl *verify.CreditLedger) bool { return cl != nil }

func (n *node) viaGuardHelperFunc() {
	if hasLedger(n.cl) {
		n.cl.Credit(0, 0)
	}
}

func (n *node) gotoJoin() {
	if n.v == nil {
		goto done
	}
	n.v.FlitInjected(nil)
done:
	n.v.FlitRetired(nil) // want `nil check of n\.v`
}

func (n *node) reassignedInsideGuard() {
	if n.v != nil {
		n.v = nil
		n.v.FlitInjected(nil) // want `nil check of n\.v`
	}
}

func (n *node) guardedContinue(ks []int) {
	for _, k := range ks {
		if n.cl == nil {
			continue
		}
		n.cl.Credit(k, 0)
	}
}

func (n *node) closureAtGuardedPoint() func() {
	if n.v == nil {
		return nil
	}
	return func() { n.v.FlitRetired(nil) }
}

func (n *node) closureUnguarded() func() {
	return func() { n.v.FlitRetired(nil) } // want `nil check of n\.v`
}

func (n *node) typeSwitchGuard(x any) {
	if n.tp == nil {
		return
	}
	switch x.(type) {
	case int:
		n.tp.TaskReady("a")
	default:
		n.tp.TaskStarted("b")
	}
}

func (n *node) zeroValueLocal() {
	var v *verify.Verifier
	v.InFlight() // want `nil check of v`
}

func (n *node) guardThenPanic() {
	if n.v == nil {
		panic("verifier required")
	}
	n.v.FlitInjected(nil)
}

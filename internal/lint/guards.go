package lint

import (
	"go/ast"
	"go/token"
)

// This file implements the nil-guard domination analysis shared by the
// probeguard analyzer: deciding whether a call like n.tp.FlitSent(...) is
// dominated by a nil check of n.tp. The analysis is syntactic — expressions
// are compared by a canonical rendering — and walks the AST upward from the
// call instead of building a CFG, which covers every guard idiom the
// simulator uses:
//
//	if n.tp != nil { n.tp.FlitSent(...) }
//	if n.sp != nil && n.sp.Tracked(f) { n.sp.Step(...) }
//	if tp := d.w.tp; tp != nil { tp.MessageDelivered(...) }
//	if x == nil { return }; ...; x.M()
//	x == nil || x.M()
//
// A nil check of a strict index prefix also counts: a check of b.credLed
// guards a call on b.credLed[port], because indexing a nil slice cannot be
// nil-checked directly.

// exprKey renders a restricted expression (identifiers, selector chains,
// index expressions with simple indices, basic literals) as a canonical
// string. It returns false for anything with evaluation side effects (calls,
// etc.), which can never participate in guard matching.
func exprKey(e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name, true
	case *ast.SelectorExpr:
		base, ok := exprKey(x.X)
		if !ok {
			return "", false
		}
		return base + "." + x.Sel.Name, true
	case *ast.IndexExpr:
		base, ok := exprKey(x.X)
		if !ok {
			return "", false
		}
		idx, ok := exprKey(x.Index)
		if !ok {
			return "", false
		}
		return base + "[" + idx + "]", true
	case *ast.BasicLit:
		return x.Value, true
	case *ast.ParenExpr:
		return exprKey(x.X)
	}
	return "", false
}

// receiverKeys returns the canonical key of a receiver expression plus the
// keys obtained by stripping trailing index operations (b.credLed[port] ->
// b.credLed), which are the expressions whose nil checks guard the receiver.
func receiverKeys(e ast.Expr) []string {
	var keys []string
	for {
		if k, ok := exprKey(e); ok {
			keys = append(keys, k)
		}
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return keys
		}
	}
}

// nonNilWhenTrue returns the keys of expressions known non-nil when cond is
// true: the conjuncts of the form `x != nil`.
func nonNilWhenTrue(cond ast.Expr) []string {
	switch x := cond.(type) {
	case *ast.ParenExpr:
		return nonNilWhenTrue(x.X)
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			return append(nonNilWhenTrue(x.X), nonNilWhenTrue(x.Y)...)
		case token.NEQ:
			if k, ok := nilComparand(x); ok {
				return []string{k}
			}
		}
	}
	return nil
}

// nonNilWhenFalse returns the keys of expressions known non-nil when cond is
// false: the disjuncts of the form `x == nil`.
func nonNilWhenFalse(cond ast.Expr) []string {
	switch x := cond.(type) {
	case *ast.ParenExpr:
		return nonNilWhenFalse(x.X)
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LOR:
			return append(nonNilWhenFalse(x.X), nonNilWhenFalse(x.Y)...)
		case token.EQL:
			if k, ok := nilComparand(x); ok {
				return []string{k}
			}
		}
	}
	return nil
}

// nilComparand extracts the canonical key of the non-nil side of a
// comparison against the nil literal.
func nilComparand(b *ast.BinaryExpr) (string, bool) {
	if isNilIdent(b.Y) {
		return exprKey(b.X)
	}
	if isNilIdent(b.X) {
		return exprKey(b.Y)
	}
	return "", false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// nilGuarded reports whether the node (a probe call) is dominated by a nil
// check of any of the receiver keys. It walks the ancestor chain looking for
// guarding if-statements, short-circuit && / || operands, and preceding
// early-return guards in enclosing blocks.
func nilGuarded(p *Package, n ast.Node, recvKeys []string) bool {
	if len(recvKeys) == 0 {
		return false
	}
	hit := func(keys []string) bool {
		for _, k := range keys {
			for _, r := range recvKeys {
				if k == r {
					return true
				}
			}
		}
		return false
	}
	child := n
	for anc := p.Parent(child); anc != nil; child, anc = anc, p.Parent(anc) {
		switch s := anc.(type) {
		case *ast.BinaryExpr:
			// x != nil && x.M(...): the call in the right operand runs only
			// when the left operand held. Dually for x == nil || x.M(...).
			if s.Y == child {
				if s.Op == token.LAND && hit(nonNilWhenTrue(s.X)) {
					return true
				}
				if s.Op == token.LOR && hit(nonNilWhenFalse(s.X)) {
					return true
				}
			}
		case *ast.IfStmt:
			if s.Body == child && hit(nonNilWhenTrue(s.Cond)) {
				return true
			}
			if s.Else == child && hit(nonNilWhenFalse(s.Cond)) {
				return true
			}
		case *ast.BlockStmt:
			// Early-return guard: a preceding `if x == nil { return }` (or a
			// body otherwise terminating) in an enclosing block dominates
			// everything after it.
			for _, st := range s.List {
				if st == child {
					break
				}
				ifs, ok := st.(*ast.IfStmt)
				if ok && ifs.Else == nil && ifs.Init == nil &&
					terminates(ifs.Body) && hit(nonNilWhenFalse(ifs.Cond)) {
					return true
				}
			}
		}
	}
	return false
}

// terminates reports whether a block always transfers control away: its last
// statement is a return, a panic call, or a loop/branch escape.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
			return true
		}
		// Component panic helpers (Panicf) also never return.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Panicf" {
			return true
		}
	}
	return false
}

package lint

import (
	"go/ast"
)

// This file holds the canonical expression rendering shared by the nil-facts
// dataflow (dataflow.go) and its clients: deciding whether a guard of
// expression A covers a use of expression B reduces to comparing canonical
// keys. A nil check of a strict index prefix also counts: a check of
// b.credLed guards a call on b.credLed[port], because indexing a nil slice
// cannot be nil-checked directly — receiverKeys returns both renderings.

// exprKey renders a restricted expression (identifiers, selector chains,
// index expressions with simple indices, basic literals) as a canonical
// string. It returns false for anything with evaluation side effects (calls,
// etc.), which can never participate in guard matching.
func exprKey(e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name, true
	case *ast.SelectorExpr:
		base, ok := exprKey(x.X)
		if !ok {
			return "", false
		}
		return base + "." + x.Sel.Name, true
	case *ast.IndexExpr:
		base, ok := exprKey(x.X)
		if !ok {
			return "", false
		}
		idx, ok := exprKey(x.Index)
		if !ok {
			return "", false
		}
		return base + "[" + idx + "]", true
	case *ast.BasicLit:
		return x.Value, true
	case *ast.ParenExpr:
		return exprKey(x.X)
	}
	return "", false
}

// receiverKeys returns the canonical key of a receiver expression plus the
// keys obtained by stripping trailing index operations (b.credLed[port] ->
// b.credLed), which are the expressions whose nil checks guard the receiver.
func receiverKeys(e ast.Expr) []string {
	var keys []string
	for {
		if k, ok := exprKey(e); ok {
			keys = append(keys, k)
		}
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return keys
		}
	}
}

// nilComparand extracts the canonical key of the non-nil side of a
// comparison against the nil literal.
func nilComparand(b *ast.BinaryExpr) (string, bool) {
	if isNilIdent(b.Y) {
		return exprKey(b.X)
	}
	if isNilIdent(b.X) {
		return exprKey(b.Y)
	}
	return "", false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

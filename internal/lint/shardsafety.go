package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ShardSafety extends the determinism rule's import-level concurrency
// confinement to the access level, and checks the ownership discipline of
// cross-shard components.
//
// Part one: any reference to an object from sync or sync/atomic — a type, a
// function, or a (possibly promoted) method — inside a sim-core file outside
// the sanctioned-synchronizer allow list is flagged. The determinism rule
// already rejects the imports; this catches uses that need no import line,
// such as Lock/Unlock promoted through a struct embedded from another
// package.
//
// Part two: a struct with a *sim.RemotePort field is a shard-spanning
// component. Its fields partition by goroutine: whatever its inbox methods
// (ReceiveRemote, ProcessEvent) write is destination-shard state, and no
// other method may touch it — or call the destination-bound ComponentBase
// accessors Sim, Panicf, Assert — unless the nil-facts dataflow proves the
// remote port is nil at that point (the component is local, so there is
// only one shard). The canonical safe shape is Channel.Inject:
//
//	if c.remote != nil { c.injectRemote(f); return } // source side: inbox seam
//	... writes to c.pending, calls c.Sim() ...       // remote == nil here
type ShardSafety struct {
	// SimCore holds the import-path prefixes the rule applies to.
	SimCore []string
	// ConcurrencyAllow holds file-path suffixes exempt from the sync-access
	// check (the sanctioned synchronizer files).
	ConcurrencyAllow []string
	// SimPackage is the import path of the package defining RemotePort.
	SimPackage string
	// InboxMethods are the method names that run on the destination shard's
	// goroutine; the fields they write are destination-owned.
	InboxMethods map[string]bool
	// ExemptMethods additionally never race: checkpoint codecs and the
	// message-table collector run while the engine is quiesced.
	ExemptMethods map[string]bool
}

// NewShardSafety returns the analyzer with the repo's default scope.
func NewShardSafety() *ShardSafety {
	return &ShardSafety{
		SimCore:          DefaultSimCorePackages,
		ConcurrencyAllow: DefaultConcurrencyAllow,
		SimPackage:       "supersim/internal/sim",
		InboxMethods:     map[string]bool{"ReceiveRemote": true, "ProcessEvent": true},
		ExemptMethods: map[string]bool{
			"ReceiveRemote": true, "ProcessEvent": true,
			"SaveState": true, "LoadState": true, "Collect": true,
		},
	}
}

// Name implements Analyzer.
func (*ShardSafety) Name() string { return RuleShardSafety }

func (a *ShardSafety) inScope(path string) bool {
	for _, pre := range a.SimCore {
		if path == pre || strings.HasPrefix(path, pre+"/") {
			return true
		}
	}
	return false
}

func (a *ShardSafety) concurrencyAllowed(file string) bool {
	for _, suf := range a.ConcurrencyAllow {
		if strings.HasSuffix(file, suf) {
			return true
		}
	}
	return false
}

// Check implements Analyzer.
func (a *ShardSafety) Check(p *Package) []Diagnostic {
	if !a.inScope(p.ImportPath) {
		return nil
	}
	diags := a.checkSyncAccess(p)
	diags = append(diags, a.checkRemoteOwnership(p)...)
	return diags
}

// checkSyncAccess flags every reference to a sync / sync/atomic object in
// non-allowed sim-core files.
func (a *ShardSafety) checkSyncAccess(p *Package) []Diagnostic {
	var diags []Diagnostic
	seen := map[token.Pos]bool{}
	for id, obj := range p.Info.Uses {
		if obj == nil || obj.Pkg() == nil {
			continue
		}
		path := obj.Pkg().Path()
		if path != "sync" && path != "sync/atomic" {
			continue
		}
		if seen[id.Pos()] {
			continue
		}
		seen[id.Pos()] = true
		pos := p.Position(id.Pos())
		if a.concurrencyAllowed(pos.Filename) {
			continue
		}
		diags = append(diags, Diagnostic{
			Rule: RuleShardSafety, Pos: pos,
			Message: fmt.Sprintf(
				"use of %s.%s in sim-core package %s — shared-memory synchronization belongs in the conservative engine (internal/sim/parallel.go)",
				path, obj.Name(), p.ImportPath),
		})
	}
	return diags
}

// remoteStruct is one shard-spanning component type of the package.
type remoteStruct struct {
	named *types.Named
	// remoteFields are the *sim.RemotePort fields, by object.
	remoteFields map[*types.Var]bool
	// destOwned are the fields written by the inbox methods.
	destOwned map[*types.Var]bool
}

// checkRemoteOwnership enforces the destination-shard ownership discipline
// on structs holding a *sim.RemotePort.
func (a *ShardSafety) checkRemoteOwnership(p *Package) []Diagnostic {
	structs := a.remoteStructs(p)
	if len(structs) == 0 {
		return nil
	}

	// Pass one: collect destination-owned fields from the inbox methods.
	methods := map[*remoteStruct][]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) != 1 {
				continue
			}
			rs := structs[namedStruct(p.TypeOf(fd.Recv.List[0].Type))]
			if rs == nil {
				continue
			}
			methods[rs] = append(methods[rs], fd)
			if a.InboxMethods[fd.Name.Name] {
				collectFieldWrites(p, fd.Body, rs.named, rs.destOwned)
			}
		}
	}

	var diags []Diagnostic
	analyses := newBodyAnalyses(p)
	for rs, fds := range methods {
		if len(rs.destOwned) == 0 {
			continue
		}
		for _, fd := range fds {
			if a.ExemptMethods[fd.Name.Name] || a.InboxMethods[fd.Name.Name] {
				continue
			}
			diags = append(diags, a.checkMethod(p, analyses, rs, fd)...)
		}
	}
	return diags
}

// remoteStructs indexes the package's struct types holding a
// *sim.RemotePort field.
func (a *ShardSafety) remoteStructs(p *Package) map[*types.Named]*remoteStruct {
	out := map[*types.Named]*remoteStruct{}
	for _, name := range p.Pkg.Scope().Names() {
		tn, ok := p.Pkg.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		var remotes map[*types.Var]bool
		for i := 0; i < st.NumFields(); i++ {
			fld := st.Field(i)
			if a.isRemotePort(fld.Type()) {
				if remotes == nil {
					remotes = map[*types.Var]bool{}
				}
				remotes[fld] = true
			}
		}
		if remotes != nil {
			out[named] = &remoteStruct{
				named: named, remoteFields: remotes, destOwned: map[*types.Var]bool{},
			}
		}
	}
	return out
}

// isRemotePort reports whether t is *sim.RemotePort.
func (a *ShardSafety) isRemotePort(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "RemotePort" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == a.SimPackage
}

// collectFieldWrites records the receiver fields a body assigns.
func collectFieldWrites(p *Package, body *ast.BlockStmt, subj *types.Named, out map[*types.Var]bool) {
	mark := func(e ast.Expr) {
		v := receiverFieldOf(p, e, subj)
		if v != nil {
			out[v] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, l := range x.Lhs {
				mark(l)
			}
		case *ast.IncDecStmt:
			mark(x.X)
		}
		return true
	})
}

// receiverFieldOf resolves an lvalue expression to the subject-struct field
// it writes, looking through index and slice expressions (c.pending[i] = v
// and c.pending = c.pending[:0] both write the pending field).
func receiverFieldOf(p *Package, e ast.Expr, subj *types.Named) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			s := p.Info.Selections[x]
			if s == nil || s.Kind() != types.FieldVal {
				return nil
			}
			v, ok := s.Obj().(*types.Var)
			if !ok {
				return nil
			}
			if namedStruct(s.Recv()) != subj {
				return nil
			}
			return v
		default:
			return nil
		}
	}
}

// destBoundAccessors are the ComponentBase methods bound to the adopting
// (destination) shard: Sim returns the destination simulator, and Panicf /
// Assert read its clock.
var destBoundAccessors = map[string]bool{"Sim": true, "Panicf": true, "Assert": true}

// checkMethod flags destination-owned accesses in one source-side method
// unless the remote port is provably nil at the access point.
func (a *ShardSafety) checkMethod(p *Package, analyses *bodyAnalyses, rs *remoteStruct, fd *ast.FuncDecl) []Diagnostic {
	recvName := ""
	if names := fd.Recv.List[0].Names; len(names) == 1 {
		recvName = names[0].Name
	}
	if recvName == "" || recvName == "_" {
		return nil
	}
	var remoteKeys []string
	for v := range rs.remoteFields {
		remoteKeys = append(remoteKeys, recvName+"."+v.Name())
	}
	localProven := func(n ast.Node) bool {
		fa := analyses.forNode(n)
		if fa == nil {
			return false
		}
		facts := fa.factsAt(n)
		if facts == nil {
			return true // unreachable
		}
		for _, k := range remoteKeys {
			if facts.knownNil(k) {
				return true
			}
		}
		return false
	}

	var diags []Diagnostic
	flagWrite := func(e ast.Expr, at ast.Node) {
		v := receiverFieldOf(p, e, rs.named)
		if v == nil || !rs.destOwned[v] || localProven(at) {
			return
		}
		diags = append(diags, Diagnostic{
			Rule: RuleShardSafety, Pos: p.Position(at.Pos()),
			Message: fmt.Sprintf(
				"write to %s.%s outside the inbox methods — the field is destination-shard state (written by %s); post through the RemotePort seam or guard with `if %s == nil`",
				rs.named.Obj().Name(), v.Name(), inboxNames(a.InboxMethods), strings.Join(remoteKeys, " / ")),
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, l := range x.Lhs {
				flagWrite(l, x)
			}
		case *ast.IncDecStmt:
			flagWrite(x.X, x)
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok || !destBoundAccessors[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != recvName {
				return true
			}
			s := p.Info.Selections[sel]
			if s == nil || s.Kind() != types.MethodVal {
				return true
			}
			if fn, ok := s.Obj().(*types.Func); !ok || fn.Pkg() == nil || fn.Pkg().Path() != a.SimPackage {
				return true
			}
			if localProven(x) {
				return true
			}
			diags = append(diags, Diagnostic{
				Rule: RuleShardSafety, Pos: p.Position(x.Pos()),
				Message: fmt.Sprintf(
					"%s.%s() on a shard-spanning component outside the inbox methods — it is bound to the destination shard; use the RemotePort (SrcNow/Send) or guard with `if %s == nil`",
					recvName, sel.Sel.Name, strings.Join(remoteKeys, " / ")),
			})
		}
		return true
	})
	return diags
}

// inboxNames renders the inbox-method set for messages, sorted.
func inboxNames(m map[string]bool) string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, "/")
}

package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
)

// The want-comment fixture packages under testdata/src double as executable
// documentation of each rule. The specs here are shared by the package tests
// and by `sslint -fixtures`, which replays them as a tooling self-check: a
// rule that drifts from its fixtures fails `make lint`, not just `go test`.

// FixtureSpec describes one fixture run: which testdata/src directory to
// load, the import path to load it under (scoped rules key off the path),
// and the rules to run over it.
type FixtureSpec struct {
	Name       string   // unique display name for reports
	Dir        string   // directory under testdata/src
	ImportPath string   // import path the fixture is loaded as
	Rules      []string // rule names, resolved through NewAnalyzer

	// WantClean inverts the check: the rules must produce zero diagnostics
	// (scope tests reloading a fixture outside its rule's package scope),
	// and the fixture's want comments are ignored.
	WantClean bool
}

// FixtureSpecs returns every fixture run, in a stable order.
func FixtureSpecs() []FixtureSpec {
	det := []string{RuleDeterminism}
	return []FixtureSpec{
		// Loaded under a sim-core import path: the fixture plays an
		// internal/sim subpackage.
		{Name: "determinism", Dir: "determinism",
			ImportPath: "supersim/internal/sim/lintfixture", Rules: det},
		// Snapshot encode/decode is byte-compared by the import/export
		// equivalence tests, so the codec package is sim-core for the
		// determinism rule: the same fixture must produce the same
		// diagnostics under the snapshot import path.
		{Name: "determinism-snapshot-scope", Dir: "determinism",
			ImportPath: "supersim/internal/snapshot/lintfixture", Rules: det},
		// The same files outside the sim-core prefixes produce nothing.
		{Name: "determinism-out-of-scope", Dir: "determinism",
			ImportPath: "supersim/internal/lint/testdata/src/determinism",
			Rules:      det, WantClean: true},
		// The task runner's journals are byte-compared by fixed-clock
		// goldens, so taskrun is sim-core with two file-scoped seams:
		// clock.go may read the wall clock and taskrun.go may import sync.
		{Name: "taskrun", Dir: "taskrun",
			ImportPath: "supersim/internal/taskrun/lintfixture", Rules: det},
		// The file-suffix allowlists never widen the rule's package scope.
		{Name: "taskrun-out-of-scope", Dir: "taskrun",
			ImportPath: "supersim/internal/lint/testdata/src/taskrun",
			Rules:      det, WantClean: true},
		{Name: "hotpath", Dir: "hotpath",
			ImportPath: "supersim/internal/lint/testdata/src/hotpath",
			Rules:      []string{RuleHotpath}},
		{Name: "probeguard", Dir: "probeguard",
			ImportPath: "supersim/internal/lint/testdata/src/probeguard",
			Rules:      []string{RuleProbeguard}},
		{Name: "factoryreg", Dir: "factoryreg",
			ImportPath: "supersim/internal/lint/testdata/src/factoryreg",
			Rules:      []string{RuleFactoryReg}},
		{Name: "snapshotcomplete", Dir: "snapshotcomplete",
			ImportPath: "supersim/internal/lint/testdata/src/snapshotcomplete",
			Rules:      []string{RuleSnapshotComplete}},
		// Loaded under a sim-core import path: the fixture plays an
		// internal/channel subpackage, the home of the real shard-spanning
		// components.
		{Name: "shardsafety", Dir: "shardsafety",
			ImportPath: "supersim/internal/channel/lintfixture",
			Rules:      []string{RuleShardSafety}},
		{Name: "shardsafety-out-of-scope", Dir: "shardsafety",
			ImportPath: "supersim/internal/lint/testdata/src/shardsafety",
			Rules:      []string{RuleShardSafety}, WantClean: true},
	}
}

// want comments mark expected diagnostics in fixture files:
//
//	for k := range m { // want `map iteration order`
//
// Each backquoted string is a regexp that must match a diagnostic rendered
// as "message [rule]" on the comment's line, and every diagnostic must match
// some want.
var (
	wantRE     = regexp.MustCompile("want ((?:`[^`]*`)(?:\\s+`[^`]*`)*)")
	wantItemRE = regexp.MustCompile("`[^`]*`")
)

type fixtureWant struct {
	line int
	re   *regexp.Regexp
	hit  bool
}

func collectFixtureWants(p *Package) ([]*fixtureWant, error) {
	var wants []*fixtureWant
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := p.Position(c.Pos()).Line
				for _, item := range wantItemRE.FindAllString(m[1], -1) {
					re, err := regexp.Compile(item[1 : len(item)-1])
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v",
							p.ImportPath, line, item, err)
					}
					wants = append(wants, &fixtureWant{line: line, re: re})
				}
			}
		}
	}
	return wants, nil
}

// LoadFixture loads spec's package from the testdata tree under lintDir
// (the directory holding this package's testdata/), consulting and filling
// cache — keyed by import path — when it is non-nil.
func LoadFixture(l *Loader, lintDir string, spec FixtureSpec, cache map[string]*Package) (*Package, error) {
	if p, ok := cache[spec.ImportPath]; ok {
		return p, nil
	}
	p, err := l.Load(filepath.Join(lintDir, "testdata", "src", spec.Dir), spec.ImportPath)
	if err != nil {
		return nil, fmt.Errorf("loading fixture %s as %s: %w", spec.Dir, spec.ImportPath, err)
	}
	if cache != nil {
		cache[spec.ImportPath] = p
	}
	return p, nil
}

// CheckFixture runs one spec and returns a description of every mismatch
// between the diagnostics and the fixture's want comments (or, for
// WantClean specs, every diagnostic produced). An empty slice means the
// fixture holds; a non-nil error means the run itself could not happen.
func CheckFixture(l *Loader, lintDir string, spec FixtureSpec, cache map[string]*Package) ([]string, error) {
	p, err := LoadFixture(l, lintDir, spec, cache)
	if err != nil {
		return nil, err
	}
	analyzers := make([]Analyzer, 0, len(spec.Rules))
	for _, rule := range spec.Rules {
		a, err := NewAnalyzer(rule)
		if err != nil {
			return nil, fmt.Errorf("fixture %s: %w", spec.Name, err)
		}
		analyzers = append(analyzers, a)
	}

	if spec.WantClean {
		// Bare Check, as the scope tests do: directive processing would
		// suppress nothing here, and an out-of-scope rule must already be
		// silent before suppression.
		var problems []string
		for _, a := range analyzers {
			for _, d := range a.Check(p) {
				problems = append(problems, fmt.Sprintf("rule fired out of scope: %s", d))
			}
		}
		return problems, nil
	}

	// The full pipeline, as the driver runs it: directive suppression on, so
	// fixtures can also assert unused-directive findings.
	r := &Runner{Analyzers: analyzers, CheckDirectives: true}
	diags := r.Run([]*Package{p})
	if len(diags) == 0 {
		return []string{fmt.Sprintf("%s: analyzers produced no diagnostics at all — the rule is vacuous", p.ImportPath)}, nil
	}
	wants, err := collectFixtureWants(p)
	if err != nil {
		return nil, err
	}
	if len(wants) == 0 {
		return []string{fmt.Sprintf("%s: fixture has no want comments", p.ImportPath)}, nil
	}
	var problems []string
	for _, d := range diags {
		text := d.Message + " [" + d.Rule + "]"
		matched := false
		for _, w := range wants {
			if w.line == d.Pos.Line && w.re.MatchString(text) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for _, w := range wants {
		if !w.hit {
			problems = append(problems, fmt.Sprintf("%s: no diagnostic matching %q on line %d", p.ImportPath, w.re, w.line))
		}
	}
	return problems, nil
}

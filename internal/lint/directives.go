package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

const (
	allowPrefix      = "//sslint:allow"
	hotpathMarker    = "//sslint:hotpath"
	nosnapshotPrefix = "//sslint:nosnapshot"
	anyPrefix        = "//sslint:"
)

// allowDirective is one parsed //sslint:allow for one rule. A single comment
// naming several rules expands to one directive per rule, so each suppression
// is tracked (and reported when unused) independently.
type allowDirective struct {
	rule string
	file string
	line int
	// scopeStart/scopeEnd bound the enclosing function body when the
	// directive sits in a function doc comment; 0 when line-scoped.
	scopeStart, scopeEnd int
	pos                  token.Position
	used                 bool
}

// matches reports whether this directive suppresses the diagnostic: same
// rule, same file, and the diagnostic sits on the directive's line, the line
// directly below it, or inside its function scope.
func (a *allowDirective) matches(d Diagnostic) bool {
	if a.rule != d.Rule || a.file != d.Pos.Filename {
		return false
	}
	if d.Pos.Line == a.line || d.Pos.Line == a.line+1 {
		return true
	}
	return a.scopeStart != 0 && a.scopeStart <= d.Pos.Line && d.Pos.Line <= a.scopeEnd
}

// nosnapshotDirective is one parsed //sslint:nosnapshot: a declaration that
// the struct field on its line (or the line below, for a comment above the
// field) is genuinely ephemeral and exempt from snapshot-completeness.
type nosnapshotDirective struct {
	file string
	line int
	pos  token.Position
	used bool
}

// coversLine reports whether the directive applies to a field declared at
// the given position: the directive sits on the field's line (trailing
// comment) or the line above it.
func (n *nosnapshotDirective) coversLine(file string, line int) bool {
	return n.file == file && (n.line == line || n.line == line-1)
}

// directives holds one package's parsed //sslint: comments.
type directives struct {
	hotpath     []*ast.FuncDecl
	allows      []*allowDirective
	nosnapshots []*nosnapshotDirective
	problems    []Diagnostic // malformed directives, reported under RuleDirective
}

// nosnapshotFor returns the directive covering a field at the position, if
// any, marking it used.
func (d *directives) nosnapshotFor(pos token.Position) *nosnapshotDirective {
	for _, n := range d.nosnapshots {
		if n.coversLine(pos.Filename, pos.Line) {
			n.used = true
			return n
		}
	}
	return nil
}

// parseDirectives scans every comment of the package for //sslint: markers.
func parseDirectives(p *Package) *directives {
	d := &directives{}
	for _, f := range p.Files {
		// Map each doc-comment line to its function, so directives in doc
		// comments get function scope and hotpath marks find their target.
		docOwner := map[*ast.Comment]*ast.FuncDecl{}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Doc != nil {
				for _, c := range fd.Doc.List {
					docOwner[c] = fd
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimRight(c.Text, " \t")
				if !strings.HasPrefix(text, anyPrefix) {
					continue
				}
				pos := p.Position(c.Pos())
				switch {
				case text == hotpathMarker:
					fd := docOwner[c]
					if fd == nil || fd.Body == nil {
						d.problems = append(d.problems, Diagnostic{
							Rule: RuleDirective, Pos: pos,
							Message: "//sslint:hotpath must appear in the doc comment of a function with a body",
						})
						continue
					}
					d.hotpath = append(d.hotpath, fd)
				case strings.HasPrefix(text, allowPrefix+" "):
					d.parseAllow(p, c, docOwner[c], pos)
				case text == nosnapshotPrefix || strings.HasPrefix(text, nosnapshotPrefix+" "):
					d.parseNosnapshot(c, pos)
				default:
					d.problems = append(d.problems, Diagnostic{
						Rule: RuleDirective, Pos: pos,
						Message: fmt.Sprintf("unknown sslint directive %q", firstField(text)),
					})
				}
			}
		}
	}
	return d
}

// parseAllow validates one //sslint:allow comment and expands it into
// per-rule directives.
func (d *directives) parseAllow(p *Package, c *ast.Comment, owner *ast.FuncDecl, pos token.Position) {
	rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
	ruleList, justification, _ := strings.Cut(rest, " ")
	justification = strings.TrimSpace(strings.TrimLeft(justification, "—-: \t"))
	if justification == "" {
		d.problems = append(d.problems, Diagnostic{
			Rule: RuleDirective, Pos: pos,
			Message: "//sslint:allow requires a justification after the rule name",
		})
		return
	}
	seen := map[string]bool{}
	for _, rule := range strings.Split(ruleList, ",") {
		rule = strings.TrimSpace(rule)
		if seen[rule] {
			d.problems = append(d.problems, Diagnostic{
				Rule: RuleDirective, Pos: pos,
				Message: fmt.Sprintf("//sslint:allow lists rule %q twice — drop the duplicate", rule),
			})
			continue
		}
		seen[rule] = true
		if !KnownRule(rule) {
			d.problems = append(d.problems, Diagnostic{
				Rule: RuleDirective, Pos: pos,
				Message: fmt.Sprintf("//sslint:allow names unknown rule %q (have %v)", rule, Rules()),
			})
			continue
		}
		a := &allowDirective{rule: rule, file: pos.Filename, line: pos.Line, pos: pos}
		if owner != nil && owner.Body != nil {
			a.scopeStart = p.Position(owner.Body.Lbrace).Line
			a.scopeEnd = p.Position(owner.Body.Rbrace).Line
		}
		d.allows = append(d.allows, a)
	}
}

// parseNosnapshot validates one //sslint:nosnapshot comment. Whether it
// actually sits on a struct field is checked by the snapshotcomplete
// analyzer (a directive no field claims is reported as unused).
func (d *directives) parseNosnapshot(c *ast.Comment, pos token.Position) {
	rest := strings.TrimSpace(strings.TrimPrefix(c.Text, nosnapshotPrefix))
	justification := strings.TrimSpace(strings.TrimLeft(rest, "—-: \t"))
	if justification == "" {
		d.problems = append(d.problems, Diagnostic{
			Rule: RuleDirective, Pos: pos,
			Message: "//sslint:nosnapshot requires a justification (why is the field ephemeral?)",
		})
		return
	}
	d.nosnapshots = append(d.nosnapshots, &nosnapshotDirective{
		file: pos.Filename, line: pos.Line, pos: pos,
	})
}

func firstField(s string) string {
	if f := strings.Fields(s); len(f) > 0 {
		return f[0]
	}
	return s
}

package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildFromSrc parses a file containing a function f, builds its CFG, and
// maps each mark("name") call to its block id.
func buildFromSrc(t *testing.T, fn string) (*cfg, map[string]int) {
	t.Helper()
	src := "package p\n\nfunc mark(s string) {}\n\n" + fn
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var body *ast.BlockStmt
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			body = fd.Body
		}
	}
	if body == nil {
		t.Fatal("no func f in source")
	}
	g := buildCFG(body)
	marks := map[string]int{}
	ast.Inspect(body, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "mark" || len(call.Args) != 1 {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok {
			return true
		}
		name := lit.Value[1 : len(lit.Value)-1]
		pos, ok := g.blockOf(es)
		if !ok {
			t.Fatalf("mark(%q) not recorded in the CFG", name)
		}
		marks[name] = pos.block
		return true
	})
	return g, marks
}

func assertDom(t *testing.T, g *cfg, marks map[string]int, a, b string, want bool) {
	t.Helper()
	if got := g.dominates(marks[a], marks[b]); got != want {
		t.Errorf("dominates(%s, %s) = %v, want %v", a, b, got, want)
	}
}

func TestCFGDiamond(t *testing.T) {
	g, m := buildFromSrc(t, `
func f(a bool) {
	mark("entry")
	if a {
		mark("then")
	} else {
		mark("else")
	}
	mark("after")
}`)
	assertDom(t, g, m, "entry", "then", true)
	assertDom(t, g, m, "entry", "else", true)
	assertDom(t, g, m, "entry", "after", true)
	assertDom(t, g, m, "then", "after", false)
	assertDom(t, g, m, "else", "after", false)
	assertDom(t, g, m, "after", "then", false)
}

func TestCFGLoop(t *testing.T) {
	g, m := buildFromSrc(t, `
func f(n int) {
	mark("entry")
	for i := 0; i < n; i++ {
		mark("body")
		if i == 3 {
			mark("brk")
			break
		}
		if i == 2 {
			continue
		}
		mark("tail")
	}
	mark("after")
}`)
	assertDom(t, g, m, "entry", "body", true)
	assertDom(t, g, m, "entry", "after", true)
	assertDom(t, g, m, "body", "tail", true)
	assertDom(t, g, m, "body", "after", false) // the cond-false exit skips the body
	assertDom(t, g, m, "brk", "after", false)
	assertDom(t, g, m, "tail", "body", false) // the back edge re-enters body
}

// TestCFGIrreducible exercises a two-entry cycle built with goto — the shape
// structured algorithms reject and the iterative dominator computation must
// still get right: neither cycle block dominates the other.
func TestCFGIrreducible(t *testing.T) {
	g, m := buildFromSrc(t, `
func f(a, b, c bool) {
	mark("entry")
	if a {
		goto l2
	}
l1:
	mark("b1")
	if b {
		goto l2
	}
	goto done
l2:
	mark("b2")
	if c {
		goto l1
	}
done:
	mark("after")
}`)
	assertDom(t, g, m, "entry", "b1", true)
	assertDom(t, g, m, "entry", "b2", true)
	assertDom(t, g, m, "entry", "after", true)
	assertDom(t, g, m, "b1", "b2", false)
	assertDom(t, g, m, "b2", "b1", false)
	assertDom(t, g, m, "b1", "after", false)
	assertDom(t, g, m, "b2", "after", false)
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g, m := buildFromSrc(t, `
func f(x int) {
	mark("entry")
	switch x {
	case 0:
		mark("zero")
		fallthrough
	case 1:
		mark("one")
	default:
		mark("dflt")
	}
	mark("after")
}`)
	assertDom(t, g, m, "entry", "one", true)
	assertDom(t, g, m, "zero", "one", false) // case 1 is reachable directly too
	assertDom(t, g, m, "one", "after", false)
	assertDom(t, g, m, "dflt", "after", false)
	// Fallthrough edge exists: zero's block must reach one's block.
	found := false
	for _, e := range g.blocks[m["zero"]].succs {
		if e.to == m["one"] {
			found = true
		}
	}
	if !found {
		t.Error("no fallthrough edge from case 0 to case 1")
	}
}

func TestCFGLabeledBreakContinue(t *testing.T) {
	g, m := buildFromSrc(t, `
func f(xs []int) {
	mark("entry")
outer:
	for _, x := range xs {
		mark("obody")
		for {
			mark("ibody")
			if x > 0 {
				continue outer
			}
			break outer
		}
	}
	mark("after")
}`)
	assertDom(t, g, m, "entry", "after", true)
	assertDom(t, g, m, "obody", "ibody", true)
	assertDom(t, g, m, "ibody", "after", false)
	// `for {}` with a labeled break: after is reachable (has predecessors).
	if len(g.blocks[m["after"]].preds) == 0 {
		t.Error("labeled break did not wire an edge to the loop exit")
	}
}

func TestCFGSelectAndTypeSwitch(t *testing.T) {
	g, m := buildFromSrc(t, `
func f(ch chan int, v any) {
	mark("entry")
	select {
	case x := <-ch:
		mark("recv")
		_ = x
	default:
		mark("none")
	}
	switch v.(type) {
	case int:
		mark("int")
	}
	mark("after")
}`)
	assertDom(t, g, m, "entry", "recv", true)
	assertDom(t, g, m, "recv", "after", false)
	assertDom(t, g, m, "none", "after", false)
	assertDom(t, g, m, "int", "after", false)
	assertDom(t, g, m, "entry", "after", true)
}

func TestCFGTerminators(t *testing.T) {
	g, m := buildFromSrc(t, `
func f(a bool) int {
	mark("entry")
	if a {
		mark("ret")
		return 1
	}
	panic("no")
	mark("dead")
	return 0
}`)
	// The return and panic blocks have no successors.
	for _, name := range []string{"ret"} {
		if n := len(g.blocks[m[name]].succs); n != 0 {
			t.Errorf("%s block has %d successors, want 0", name, n)
		}
	}
	// Dead code lands in an unreachable block, vacuously dominated by all.
	if len(g.blocks[m["dead"]].preds) != 0 {
		t.Error("statements after panic should be unreachable")
	}
	assertDom(t, g, m, "ret", "dead", true) // vacuous: dead is unreachable
}

func TestCFGInfiniteLoopBreakOnly(t *testing.T) {
	g, m := buildFromSrc(t, `
func f(a bool) {
	mark("entry")
	for {
		mark("body")
		if a {
			break
		}
	}
	mark("after")
}`)
	assertDom(t, g, m, "entry", "body", true)
	assertDom(t, g, m, "body", "after", true) // only exit is the break inside body
}

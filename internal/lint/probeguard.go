package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// probeType names one observation-probe type by defining package and type
// name. Matching is by name rather than object identity so it works across
// the independent type-checking universes of separately loaded packages.
type probeType struct {
	Pkg  string
	Name string
}

// DefaultProbeTypes are the observation-probe types whose methods must only
// be called behind a nil check of the receiver: the telemetry probes and
// span recorder (PRs 3–4) and the verify ledgers (PR 2). Their constructors
// return nil when the subsystem is not attached, and the disabled-path-is-
// free guarantee rests on every call site guarding for that.
var DefaultProbeTypes = []probeType{
	{"supersim/internal/telemetry", "ChannelProbe"},
	{"supersim/internal/telemetry", "RouterProbe"},
	{"supersim/internal/telemetry", "IfaceProbe"},
	{"supersim/internal/telemetry", "WorkloadProbe"},
	{"supersim/internal/telemetry", "Spans"},
	{"supersim/internal/telemetry", "Tracer"},
	{"supersim/internal/telemetry", "EngineProbe"},
	{"supersim/internal/sim", "ShardProbe"},
	{"supersim/internal/taskrun", "Probe"},
	{"supersim/internal/verify", "Verifier"},
	{"supersim/internal/verify", "CreditLedger"},
	{"supersim/internal/verify", "BufferLedger"},
}

// DefaultProbeExemptPackages are the packages that define the probes: inside
// them, methods legitimately run on receivers the package itself guarantees
// non-nil.
var DefaultProbeExemptPackages = []string{
	"supersim/internal/telemetry",
	"supersim/internal/verify",
}

// Probeguard enforces probe hygiene: every call to a method of a probe type
// must be dominated by a nil check of the receiver expression (or of an
// index prefix of it — a check of b.credLed guards a call on
// b.credLed[port]). A probe call without the guard either crashes
// observation-disabled runs or silently depends on a guard of a *different*
// field that merely happens to be created together with the receiver.
//
// Since v2 the domination question is answered by the CFG nil-facts
// dataflow (cfg.go, dataflow.go) instead of an ancestor walk, so guards
// survive early returns, switch dispatch, loops, guard-helper predicates
// (`if n.hasProbe() { ... }` where hasProbe is `return n.v != nil`), and
// reassignment kills stale guards (`if n.v != nil { n.v = nil; n.v.M() }`
// is flagged).
type Probeguard struct {
	// Probes are the guarded types.
	Probes []probeType
	// ExemptPackages are skipped entirely (the probe-defining packages).
	ExemptPackages []string
}

// NewProbeguard returns the analyzer with the repo's default probe set.
func NewProbeguard() *Probeguard {
	return &Probeguard{Probes: DefaultProbeTypes, ExemptPackages: DefaultProbeExemptPackages}
}

// Name implements Analyzer.
func (*Probeguard) Name() string { return RuleProbeguard }

func (a *Probeguard) isProbe(t types.Type) (probeType, bool) {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return probeType{}, false
	}
	got := probeType{Pkg: named.Obj().Pkg().Path(), Name: named.Obj().Name()}
	for _, want := range a.Probes {
		if got == want {
			return got, true
		}
	}
	return probeType{}, false
}

// Check implements Analyzer.
func (a *Probeguard) Check(p *Package) []Diagnostic {
	for _, exempt := range a.ExemptPackages {
		if p.ImportPath == exempt {
			return nil
		}
	}
	analyses := newBodyAnalyses(p)
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := p.Info.Selections[sel]
			if s == nil || s.Kind() != types.MethodVal {
				return true // package-qualified call or field access
			}
			pt, ok := a.isProbe(s.Recv())
			if !ok {
				return true
			}
			recv := sel.X
			if provablyNonNil(recv) {
				return true
			}
			keys := receiverKeys(recv)
			fa := analyses.forNode(call)
			if fa != nil && fa.factsAt(call).anyNonNil(keys) {
				return true
			}
			recvText := types.ExprString(recv)
			guard := recvText
			if len(keys) > 0 {
				guard = keys[0]
			}
			diags = append(diags, Diagnostic{
				Rule: RuleProbeguard, Pos: p.Position(call.Pos()),
				Message: fmt.Sprintf(
					"call to (*%s.%s).%s is not dominated by a nil check of %s — probes are nil when observation is disabled; guard the call with `if %s != nil`",
					shortPkg(pt.Pkg), pt.Name, sel.Sel.Name, recvText, guard),
			})
			return true
		})
	}
	return diags
}

// provablyNonNil reports whether the receiver expression cannot be nil by
// construction: taking the address of a composite literal or of a variable.
func provablyNonNil(e ast.Expr) bool {
	if par, ok := e.(*ast.ParenExpr); ok {
		return provablyNonNil(par.X)
	}
	u, ok := e.(*ast.UnaryExpr)
	return ok && u.Op == token.AND
}

func shortPkg(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

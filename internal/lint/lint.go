// Package lint implements sslint, a simulator-aware static analysis suite.
//
// SuperSim's value rests on bit-exact reproducibility: identical configs must
// yield identical results, the zero-allocation traffic hot path must stay
// allocation-free, and every observation probe must be free when disabled.
// The runtime test suite (golden traces, byte-identical observation-only e2e,
// the verify subsystem) catches violations after the fact; this package
// catches them at lint time, as structural properties of the source.
//
// Six analyzers encode the repo's invariants:
//
//   - determinism: sim-core packages must not read the wall clock, draw from
//     the global math/rand source, or let map iteration order feed simulation
//     state (Determinism).
//   - hotpath: functions marked //sslint:hotpath must not contain syntactic
//     allocation sources (Hotpath).
//   - probeguard: calls to telemetry/spans/verify probes must be dominated by
//     a nil check of the receiver, preserving the disabled-path-is-free
//     guarantee (Probeguard).
//   - factoryreg: every concrete implementation of a factory-registered
//     component interface must be registered in an init(), and registration
//     names must be unique per registry (FactoryReg).
//   - snapshotcomplete: the hand-written checkpoint codecs must cover every
//     mutable field of the structs they serialize — encoded, restored, and
//     in a consistent order (SnapshotComplete).
//   - shardsafety: state owned by a destination shard must only be written
//     from the owning shard's event context; source-side code goes through
//     the RemotePort seam or a remote == nil guard (ShardSafety).
//
// The engine is stdlib-only: packages are loaded with go/parser and
// type-checked with go/types using importer.ForCompiler's source importer.
// Since v2 a shared statement-level CFG (cfg.go) and a nil-facts
// must-dataflow (dataflow.go) answer the dominance questions probeguard and
// shardsafety ask; no external analysis framework is required.
//
// # Directives
//
// Three comment directives steer the analyzers:
//
//	//sslint:hotpath
//
// in a function's doc comment marks it for the hotpath analyzer.
//
//	//sslint:allow <rule>[,<rule>...] — <justification>
//
// suppresses findings of the named rules on the same line, the line below,
// or (when placed in a function's doc comment) anywhere in that function.
// The justification text is mandatory, and an allow that suppresses nothing
// is itself reported, so suppressions cannot rot.
//
//	//sslint:nosnapshot — <justification>
//
// on a struct field (same line or the line above) declares the field
// genuinely ephemeral for the snapshotcomplete analyzer: rebuilt wiring,
// derived caches, scratch state. The justification is mandatory, and a
// nosnapshot on a field the codecs do serialize — or on no field at all —
// is reported.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Rule names of the shipped analyzers plus the internal directive checker.
const (
	RuleDeterminism      = "determinism"
	RuleHotpath          = "hotpath"
	RuleProbeguard       = "probeguard"
	RuleFactoryReg       = "factoryreg"
	RuleSnapshotComplete = "snapshotcomplete"
	RuleShardSafety      = "shardsafety"

	// RuleDirective reports misuse of the //sslint: directives themselves:
	// unknown rule names, missing justifications, allows that suppress
	// nothing, and hotpath marks outside function doc comments. It is active
	// whenever the full analyzer set runs.
	RuleDirective = "directive"
)

// Rules returns the names of the selectable analyzers, sorted.
func Rules() []string {
	return []string{RuleDeterminism, RuleFactoryReg, RuleHotpath, RuleProbeguard,
		RuleShardSafety, RuleSnapshotComplete}
}

// RuleDoc returns a one-line description of a rule, for `sslint -list-rules`
// and the make lint-rules target.
func RuleDoc(name string) string {
	switch name {
	case RuleDeterminism:
		return "sim-core code must not read the wall clock, draw global randomness, iterate maps into state, or spawn ad-hoc concurrency"
	case RuleHotpath:
		return "//sslint:hotpath functions must be free of syntactic allocation sources"
	case RuleProbeguard:
		return "probe/ledger method calls must be dominated by a nil check of the receiver (CFG dataflow)"
	case RuleFactoryReg:
		return "every concrete factory component must be registered in an init() under a unique name"
	case RuleSnapshotComplete:
		return "checkpoint codecs must cover every mutable field symmetrically: encoded, restored, and in the same order"
	case RuleShardSafety:
		return "destination-shard state must only be touched by the owning shard; cross-shard writes go through the RemotePort seam"
	case RuleDirective:
		return "//sslint: directives must be well-formed, justified, and in active use"
	}
	return ""
}

// KnownRule reports whether name identifies a selectable analyzer.
func KnownRule(name string) bool {
	for _, r := range Rules() {
		if r == name {
			return true
		}
	}
	return false
}

// NewAnalyzer constructs the analyzer implementing the named rule with its
// default configuration.
func NewAnalyzer(name string) (Analyzer, error) {
	switch name {
	case RuleDeterminism:
		return NewDeterminism(), nil
	case RuleHotpath:
		return NewHotpath(), nil
	case RuleProbeguard:
		return NewProbeguard(), nil
	case RuleFactoryReg:
		return NewFactoryReg(), nil
	case RuleSnapshotComplete:
		return NewSnapshotComplete(), nil
	case RuleShardSafety:
		return NewShardSafety(), nil
	}
	return nil, fmt.Errorf("lint: unknown rule %q (have %v)", name, Rules())
}

// AllAnalyzers returns fresh instances of every shipped analyzer.
func AllAnalyzers() []Analyzer {
	out := make([]Analyzer, 0, len(Rules()))
	for _, r := range Rules() {
		a, err := NewAnalyzer(r)
		if err != nil {
			panic(err)
		}
		out = append(out, a)
	}
	return out
}

// Diagnostic is one finding: a rule violation at a source position.
type Diagnostic struct {
	Rule    string
	Pos     token.Position
	Message string
}

// String renders the diagnostic in the canonical file:line:col form used by
// the text output and the baseline file.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Rule)
}

// Analyzer is one lint rule. Check is called once per loaded package;
// analyzers that need a whole-program view (FactoryReg) accumulate state
// across Check calls and implement Finisher.
type Analyzer interface {
	// Name returns the rule identifier reported with each diagnostic.
	Name() string
	// Check analyzes one package and returns its diagnostics.
	Check(p *Package) []Diagnostic
}

// Finisher is implemented by analyzers that report cross-package diagnostics
// after every package has been checked.
type Finisher interface {
	Finish() []Diagnostic
}

// Runner drives a set of analyzers over loaded packages and applies the
// //sslint:allow suppression pass.
type Runner struct {
	// Analyzers to run. Use AllAnalyzers for the full suite.
	Analyzers []Analyzer
	// CheckDirectives enables the RuleDirective meta-findings (malformed
	// directives and allows that suppressed nothing). It should be true only
	// when the full analyzer set runs — with a rule subset, allows for the
	// disabled rules would be falsely reported as unused.
	CheckDirectives bool
}

// Run checks every package with every analyzer, applies suppression, and
// returns the surviving diagnostics sorted by position.
func (r *Runner) Run(pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, p := range pkgs {
		for _, a := range r.Analyzers {
			diags = append(diags, a.Check(p)...)
		}
	}
	for _, a := range r.Analyzers {
		if f, ok := a.(Finisher); ok {
			diags = append(diags, f.Finish()...)
		}
	}

	// Suppression: an allow directive absorbs matching diagnostics; the
	// directive problems (and unused allows) are findings of their own.
	var allows []*allowDirective
	for _, p := range pkgs {
		allows = append(allows, p.directives.allows...)
	}
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, a := range allows {
			if a.matches(d) {
				a.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	diags = kept

	if r.CheckDirectives {
		for _, p := range pkgs {
			diags = append(diags, p.directives.problems...)
		}
		for _, a := range allows {
			if !a.used {
				diags = append(diags, Diagnostic{
					Rule: RuleDirective,
					Pos:  a.pos,
					Message: fmt.Sprintf(
						"//sslint:allow %s suppresses nothing — remove it", a.rule),
				})
			}
		}
		// A nosnapshot no field claimed is rot — but only the
		// snapshotcomplete analyzer marks them used, so only a run that
		// includes it can tell.
		ranSnapshot := false
		for _, a := range r.Analyzers {
			if a.Name() == RuleSnapshotComplete {
				ranSnapshot = true
			}
		}
		if ranSnapshot {
			for _, p := range pkgs {
				for _, n := range p.directives.nosnapshots {
					if !n.used {
						diags = append(diags, Diagnostic{
							Rule: RuleDirective, Pos: n.pos,
							Message: "//sslint:nosnapshot does not cover any audited struct field — remove it",
						})
					}
				}
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return diags
}

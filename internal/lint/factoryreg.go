package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// DefaultFactoryPath is the import path of the smart-object factory package.
const DefaultFactoryPath = "supersim/internal/factory"

// FactoryReg enforces the factory registration convention:
//
//   - every Registry.Register call happens inside an init() (the convention
//     that makes dropping in a new model file sufficient to enable it);
//   - registration names are string literals, unique per registry across the
//     whole build — two models silently claiming one name is only caught at
//     process start of whichever binary links both, and a config typo
//     selecting the wrong one is never caught at all;
//   - every package-level concrete type implementing a factory-registered
//     component interface is actually registered, catching the
//     implemented-but-forgotten model whose config name fails at runtime.
//
// The analyzer is cross-package: Check accumulates registries, registrations
// and candidate types; Finish reports duplicates and unregistered
// implementations. Constructor expressions are resolved structurally (func
// literals and same-package constructor functions, following return
// statements); a registry with a constructor the analyzer cannot resolve is
// excluded from the unregistered-implementation check rather than guessed at.
type FactoryReg struct {
	// FactoryPath is the import path of the package defining Registry.
	FactoryPath string

	regs map[string]*regInfo // key: defining pkg path + "." + var name
	pkgs []*Package
}

type regInfo struct {
	name       string // display name: pkg.Var
	kind       string // registry kind string when statically known
	ifacePkg   string // qualified component interface
	ifaceName  string
	registered map[string]bool             // concrete impls: "pkgpath.Type"
	names      map[string][]token.Position // registration name -> sites
	incomplete bool                        // some ctor unresolvable
}

// NewFactoryReg returns the analyzer with the repo's factory package.
func NewFactoryReg() *FactoryReg {
	return &FactoryReg{FactoryPath: DefaultFactoryPath, regs: map[string]*regInfo{}}
}

// Name implements Analyzer.
func (*FactoryReg) Name() string { return RuleFactoryReg }

// Check implements Analyzer. It records the package for Finish and processes
// its Register calls.
func (a *FactoryReg) Check(p *Package) []Diagnostic {
	a.pkgs = append(a.pkgs, p)
	var diags []Diagnostic
	// Registries can be discovered both from their defining package's scope
	// and from Register call receivers in other packages; both routes feed
	// ensureReg, so load order does not matter.
	for _, name := range p.Pkg.Scope().Names() {
		if v, ok := p.Pkg.Scope().Lookup(name).(*types.Var); ok {
			a.ensureReg(v)
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if d := a.checkRegisterCall(p, call); d != nil {
				diags = append(diags, *d)
			}
			return true
		})
	}
	return diags
}

// registryVar resolves an expression to a registry variable, or nil.
func (a *FactoryReg) registryVar(p *Package, e ast.Expr) *types.Var {
	var obj types.Object
	switch x := e.(type) {
	case *ast.Ident:
		obj = p.Info.Uses[x]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[x.Sel]
	}
	v, ok := obj.(*types.Var)
	if !ok || a.ensureReg(v) == nil {
		return nil
	}
	return v
}

// ensureReg records (once) a package-level variable of type
// *factory.Registry[C] and extracts the component interface from C's result.
func (a *FactoryReg) ensureReg(v *types.Var) *regInfo {
	if v.Pkg() == nil {
		return nil
	}
	key := v.Pkg().Path() + "." + v.Name()
	if r, ok := a.regs[key]; ok {
		return r
	}
	ptr, ok := v.Type().(*types.Pointer)
	if !ok {
		return nil
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil ||
		named.Obj().Pkg().Path() != a.FactoryPath || named.Obj().Name() != "Registry" ||
		named.TypeArgs().Len() != 1 {
		return nil
	}
	r := &regInfo{
		name:       v.Pkg().Path() + "." + v.Name(),
		registered: map[string]bool{},
		names:      map[string][]token.Position{},
	}
	if sig, ok := named.TypeArgs().At(0).Underlying().(*types.Signature); ok && sig.Results().Len() > 0 {
		res := sig.Results().At(sig.Results().Len() - 1).Type()
		if resNamed, ok := res.(*types.Named); ok && resNamed.Obj().Pkg() != nil {
			if _, isIface := resNamed.Underlying().(*types.Interface); isIface {
				r.ifacePkg = resNamed.Obj().Pkg().Path()
				r.ifaceName = resNamed.Obj().Name()
			}
		}
	}
	a.regs[key] = r
	return r
}

// checkRegisterCall processes one potential Registry.Register call: records
// the registration and returns a diagnostic for convention violations
// (registration outside init, non-literal name).
func (a *FactoryReg) checkRegisterCall(p *Package, call *ast.CallExpr) *Diagnostic {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Register" || len(call.Args) != 2 {
		return nil
	}
	v := a.registryVar(p, sel.X)
	if v == nil {
		return nil
	}
	r := a.regs[v.Pkg().Path()+"."+v.Name()]
	pos := p.Position(call.Pos())

	if !inInitFunc(p, call) {
		return &Diagnostic{
			Rule: RuleFactoryReg, Pos: pos,
			Message: fmt.Sprintf(
				"%s.Register must be called from an init() so the model is available as soon as its file links in",
				v.Name()),
		}
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return &Diagnostic{
			Rule: RuleFactoryReg, Pos: pos,
			Message: fmt.Sprintf(
				"registration name passed to %s.Register must be a string literal so name collisions are checkable at lint time",
				v.Name()),
		}
	}
	name := lit.Value[1 : len(lit.Value)-1]
	r.names[name] = append(r.names[name], p.Position(lit.Pos()))

	concrete, resolved := a.ctorTypes(p, call.Args[1], map[*ast.FuncDecl]bool{})
	if !resolved {
		r.incomplete = true
	}
	for _, c := range concrete {
		r.registered[c] = true
	}
	return nil
}

// inInitFunc reports whether the node sits inside a top-level func init().
func inInitFunc(p *Package, n ast.Node) bool {
	for anc := p.Parent(n); anc != nil; anc = p.Parent(anc) {
		if fd, ok := anc.(*ast.FuncDecl); ok {
			return fd.Recv == nil && fd.Name.Name == "init"
		}
	}
	return false
}

// ctorTypes resolves the concrete component types a constructor expression
// can return: function literals and same-package functions are followed
// through their return statements (constructor-call results recurse one
// definition at a time). ok is false when any path cannot be resolved.
func (a *FactoryReg) ctorTypes(p *Package, e ast.Expr, visited map[*ast.FuncDecl]bool) ([]string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return a.scanReturns(p, x.Body, visited)
	case *ast.Ident, *ast.SelectorExpr:
		fd := p.funcDecl(x.(ast.Expr))
		if fd == nil || fd.Body == nil || visited[fd] {
			return nil, false
		}
		visited[fd] = true
		return a.scanReturns(p, fd.Body, visited)
	}
	return nil, false
}

// funcDecl finds the declaration of a function referenced by e within the
// same package, or nil.
func (p *Package) funcDecl(e ast.Expr) *ast.FuncDecl {
	var obj types.Object
	switch x := e.(type) {
	case *ast.Ident:
		obj = p.Info.Uses[x]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[x.Sel]
	}
	if obj == nil {
		return nil
	}
	return p.funcDeclOf(obj)
}

// scanReturns collects the concrete types of every return expression in a
// constructor body.
func (a *FactoryReg) scanReturns(p *Package, body *ast.BlockStmt, visited map[*ast.FuncDecl]bool) ([]string, bool) {
	var out []string
	ok := true
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // different function
		}
		ret, isRet := n.(*ast.ReturnStmt)
		if !isRet || len(ret.Results) == 0 {
			return true
		}
		expr := ast.Unparen(ret.Results[0])
		if isNilIdent(expr) {
			return true
		}
		t := p.TypeOf(expr)
		if t == nil {
			ok = false
			return true
		}
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		named, isNamed := t.(*types.Named)
		if isNamed && named.Obj().Pkg() != nil {
			if _, isIface := named.Underlying().(*types.Interface); !isIface {
				out = append(out, named.Obj().Pkg().Path()+"."+named.Obj().Name())
				return true
			}
		}
		// Interface-typed return: follow a direct constructor call.
		if call, isCall := expr.(*ast.CallExpr); isCall {
			sub, subOK := a.ctorTypes(p, call.Fun, visited)
			out = append(out, sub...)
			ok = ok && subOK
			return true
		}
		ok = false
		return true
	})
	return out, ok
}

// Finish implements Finisher: duplicate registration names and unregistered
// implementations, resolved across every checked package.
func (a *FactoryReg) Finish() []Diagnostic {
	var diags []Diagnostic
	regKeys := make([]string, 0, len(a.regs))
	for k := range a.regs {
		regKeys = append(regKeys, k)
	}
	sort.Strings(regKeys)

	for _, k := range regKeys {
		r := a.regs[k]
		names := make([]string, 0, len(r.names))
		for n := range r.names {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			sites := r.names[n]
			if len(sites) < 2 {
				continue
			}
			sort.Slice(sites, func(i, j int) bool {
				if sites[i].Filename != sites[j].Filename {
					return sites[i].Filename < sites[j].Filename
				}
				return sites[i].Line < sites[j].Line
			})
			for _, pos := range sites[1:] {
				diags = append(diags, Diagnostic{
					Rule: RuleFactoryReg, Pos: pos,
					Message: fmt.Sprintf(
						"duplicate registration name %q in %s (first registered at %s:%d)",
						n, r.name, sites[0].Filename, sites[0].Line),
				})
			}
		}
	}

	for _, p := range a.pkgs {
		for _, k := range regKeys {
			r := a.regs[k]
			if r.incomplete || r.ifaceName == "" || len(r.names) == 0 {
				continue
			}
			iface := lookupInterface(p.Pkg, r.ifacePkg, r.ifaceName)
			if iface == nil || iface.NumMethods() == 0 {
				continue
			}
			scope := p.Pkg.Scope()
			for _, name := range scope.Names() {
				tn, ok := scope.Lookup(name).(*types.TypeName)
				if !ok || tn.IsAlias() {
					continue
				}
				t := tn.Type()
				if _, isIface := t.Underlying().(*types.Interface); isIface {
					continue
				}
				if !types.Implements(t, iface) && !types.Implements(types.NewPointer(t), iface) {
					continue
				}
				qual := p.Pkg.Path() + "." + tn.Name()
				if r.registered[qual] {
					continue
				}
				diags = append(diags, Diagnostic{
					Rule: RuleFactoryReg, Pos: p.Position(tn.Pos()),
					Message: fmt.Sprintf(
						"%s implements %s.%s but is not registered with %s — it can never be selected from a config",
						tn.Name(), shortPkg(r.ifacePkg), r.ifaceName, r.name),
				})
			}
		}
	}
	return diags
}

// lookupInterface finds the named interface within the package's own scope
// or its transitive imports — the same type-checking universe as the
// package's types, so types.Implements is exact.
func lookupInterface(pkg *types.Package, path, name string) *types.Interface {
	target := findImport(pkg, path, map[*types.Package]bool{})
	if target == nil {
		return nil
	}
	tn, ok := target.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	iface, _ := tn.Type().Underlying().(*types.Interface)
	return iface
}

func findImport(pkg *types.Package, path string, seen map[*types.Package]bool) *types.Package {
	if pkg.Path() == path {
		return pkg
	}
	if seen[pkg] {
		return nil
	}
	seen[pkg] = true
	for _, imp := range pkg.Imports() {
		if found := findImport(imp, path, seen); found != nil {
			return found
		}
	}
	return nil
}

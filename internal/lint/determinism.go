package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DefaultSimCorePackages are the import-path prefixes of the sim-core
// packages: the code whose behavior must be a pure function of (config,
// seed). A prefix matches the package itself and every subpackage.
var DefaultSimCorePackages = []string{
	"supersim/internal/sim",
	"supersim/internal/router",
	"supersim/internal/netiface",
	"supersim/internal/channel",
	"supersim/internal/workload",
	"supersim/internal/traffic",
	"supersim/internal/routing",
	"supersim/internal/allocator",
	"supersim/internal/network",
	"supersim/internal/arbiter",
	"supersim/internal/congestion",
	"supersim/internal/types",
	// Snapshot encoding is compared byte-for-byte by the import/export
	// equivalence tests, so the codec must never iterate a raw Go map.
	"supersim/internal/snapshot",
	// Task journals are compared byte-for-byte by the fixed-clock goldens:
	// outside its two sanctioned seams (the Clock constructor and the
	// runner's lock discipline) the package must not read the wall clock,
	// iterate raw maps into output, or spawn ad-hoc goroutines.
	"supersim/internal/taskrun",
}

// DefaultWallClockAllow lists file-path suffixes exempt from the wall-clock
// check: the progress monitor reads time.Now to report ticks/sec and ETA,
// which is presentation-only and never feeds simulation state.
var DefaultWallClockAllow = []string{
	"internal/sim/progress.go",
	// taskrun's injectable-clock seam: WallClock() is the package's only
	// time.Now read; journals under test use FixedClock instead.
	"taskrun/clock.go",
}

// DefaultConcurrencyAllow lists file-path suffixes exempt from the
// concurrency check: the conservative parallel engine, whose goroutines are
// the one sanctioned concurrency in sim-core (its determinism is proven by
// the serial/parallel conformance oracle, not by absence of threads), and the
// progress monitor's expvar once-guard (observation-only).
var DefaultConcurrencyAllow = []string{
	"internal/sim/parallel.go",
	"internal/sim/progress.go",
	// The task runner's scheduler: one mutex + cond and one goroutine per
	// running task, with every probe call serialized under the lock (the
	// journal race test enforces the discipline).
	"taskrun/taskrun.go",
}

// Determinism enforces that sim-core packages stay bit-exact reproducible:
//
//   - no wall-clock reads (time.Now, time.Since, time.Until);
//   - no draws from the global math/rand or math/rand/v2 source — components
//     must use the seeded simulation PRNG (sim.Simulator.Rand);
//   - no map-range iteration whose body feeds simulation state, event
//     scheduling, or emitted output. A map-range loop is accepted only when
//     its body is provably order-insensitive: commutative accumulation
//     (x++, x += e, x |= e, ...), deletes, or writes to another map keyed by
//     the iteration key. Everything else must iterate over sorted keys.
//   - no ad-hoc concurrency: goroutine launches and imports of sync or
//     sync/atomic are confined to the conservative parallel engine
//     (internal/sim/parallel.go). Anywhere else in sim-core, shared-memory
//     concurrency makes event order depend on the goroutine schedule.
type Determinism struct {
	// SimCore holds the import-path prefixes the rule applies to.
	SimCore []string
	// WallClockAllow holds file-path suffixes exempt from the wall-clock
	// check (observation-only reporters).
	WallClockAllow []string
	// ConcurrencyAllow holds file-path suffixes exempt from the goroutine
	// and sync-import checks (the sanctioned synchronizer).
	ConcurrencyAllow []string
}

// NewDeterminism returns the analyzer with the repo's default package set.
func NewDeterminism() *Determinism {
	return &Determinism{
		SimCore:          DefaultSimCorePackages,
		WallClockAllow:   DefaultWallClockAllow,
		ConcurrencyAllow: DefaultConcurrencyAllow,
	}
}

// Name implements Analyzer.
func (*Determinism) Name() string { return RuleDeterminism }

// inScope reports whether the import path is sim-core.
func (a *Determinism) inScope(path string) bool {
	for _, pre := range a.SimCore {
		if path == pre || strings.HasPrefix(path, pre+"/") {
			return true
		}
	}
	return false
}

func (a *Determinism) wallClockAllowed(file string) bool {
	for _, suf := range a.WallClockAllow {
		if strings.HasSuffix(file, suf) {
			return true
		}
	}
	return false
}

func (a *Determinism) concurrencyAllowed(file string) bool {
	for _, suf := range a.ConcurrencyAllow {
		if strings.HasSuffix(file, suf) {
			return true
		}
	}
	return false
}

// Check implements Analyzer.
func (a *Determinism) Check(p *Package) []Diagnostic {
	if !a.inScope(p.ImportPath) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		allowConc := a.concurrencyAllowed(p.Position(f.Pos()).Filename)
		if !allowConc {
			for _, imp := range f.Imports {
				switch imp.Path.Value {
				case `"sync"`, `"sync/atomic"`:
					diags = append(diags, Diagnostic{
						Rule: RuleDeterminism, Pos: p.Position(imp.Pos()),
						Message: fmt.Sprintf(
							"import of %s in sim-core package %s — shared-memory concurrency belongs in the conservative engine (internal/sim/parallel.go)",
							imp.Path.Value, p.ImportPath),
					})
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				if d, ok := a.checkSelector(p, x); ok {
					diags = append(diags, d)
				}
			case *ast.RangeStmt:
				if d, ok := a.checkRange(p, x); ok {
					diags = append(diags, d)
				}
			case *ast.GoStmt:
				if !allowConc {
					diags = append(diags, Diagnostic{
						Rule: RuleDeterminism, Pos: p.Position(x.Go),
						Message: fmt.Sprintf(
							"goroutine launched in sim-core package %s — event order must not depend on the goroutine schedule; concurrency belongs in the conservative engine (internal/sim/parallel.go)",
							p.ImportPath),
					})
				}
			}
			return true
		})
	}
	return diags
}

// checkSelector flags wall-clock reads and global math/rand draws.
func (a *Determinism) checkSelector(p *Package, sel *ast.SelectorExpr) (Diagnostic, bool) {
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return Diagnostic{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return Diagnostic{}, false // method: rand.Rand methods etc. are fine
	}
	pos := p.Position(sel.Pos())
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			if a.wallClockAllowed(pos.Filename) {
				return Diagnostic{}, false
			}
			return Diagnostic{
				Rule: RuleDeterminism, Pos: pos,
				Message: fmt.Sprintf(
					"wall-clock read time.%s in sim-core package %s — results must be a pure function of (config, seed)",
					fn.Name(), p.ImportPath),
			}, true
		}
	case "math/rand", "math/rand/v2":
		// Package-level draw functions use the process-global, run-dependent
		// source. Constructors (New, NewPCG, NewSource, ...) take explicit
		// seeds and are fine.
		if strings.HasPrefix(fn.Name(), "New") {
			return Diagnostic{}, false
		}
		return Diagnostic{
			Rule: RuleDeterminism, Pos: pos,
			Message: fmt.Sprintf(
				"global rand.%s in sim-core package %s — use the seeded simulation PRNG (sim.Simulator.Rand)",
				fn.Name(), p.ImportPath),
		}, true
	}
	return Diagnostic{}, false
}

// checkRange flags map-range loops whose body is not provably
// order-insensitive.
func (a *Determinism) checkRange(p *Package, rs *ast.RangeStmt) (Diagnostic, bool) {
	t := p.TypeOf(rs.X)
	if t == nil {
		return Diagnostic{}, false
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return Diagnostic{}, false
	}
	var key *ast.Ident
	if id, ok := rs.Key.(*ast.Ident); ok && id.Name != "_" {
		key = id
	}
	if blockOrderInsensitive(rs.Body, key) {
		return Diagnostic{}, false
	}
	return Diagnostic{
		Rule: RuleDeterminism, Pos: p.Position(rs.Range),
		Message: fmt.Sprintf(
			"map iteration order feeds simulation state in sim-core package %s — iterate over sorted keys",
			p.ImportPath),
	}, true
}

// blockOrderInsensitive reports whether every statement of a map-range body
// is order-commutative, so the nondeterministic iteration order cannot be
// observed.
func blockOrderInsensitive(b *ast.BlockStmt, key *ast.Ident) bool {
	for _, st := range b.List {
		if !stmtOrderInsensitive(st, key) {
			return false
		}
	}
	return true
}

func stmtOrderInsensitive(st ast.Stmt, key *ast.Ident) bool {
	switch s := st.(type) {
	case *ast.IncDecStmt:
		return sideEffectFree(s.X)
	case *ast.AssignStmt:
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			// Commutative accumulation into a fixed location (subtraction is
			// addition of the negation, so -= commutes too).
			return len(s.Lhs) == 1 && sideEffectFree(s.Lhs[0]) && sideEffectFree(s.Rhs[0])
		case token.ASSIGN:
			// m2[k] = v writes a distinct key per iteration (range keys are
			// unique), so order cannot be observed.
			if key == nil || len(s.Lhs) != 1 || !sideEffectFree(s.Rhs[0]) {
				return false
			}
			idx, ok := s.Lhs[0].(*ast.IndexExpr)
			if !ok || !sideEffectFree(idx.X) {
				return false
			}
			kid, ok := idx.Index.(*ast.Ident)
			return ok && kid.Name == key.Name
		}
		return false
	case *ast.ExprStmt:
		// delete(m, k) removals commute with each other.
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "delete" {
			return false
		}
		for _, arg := range call.Args {
			if !sideEffectFree(arg) {
				return false
			}
		}
		return true
	case *ast.IfStmt:
		if s.Init != nil || !sideEffectFree(s.Cond) {
			return false
		}
		if !blockOrderInsensitive(s.Body, key) {
			return false
		}
		switch e := s.Else.(type) {
		case nil:
			return true
		case *ast.BlockStmt:
			return blockOrderInsensitive(e, key)
		case *ast.IfStmt:
			return stmtOrderInsensitive(e, key)
		}
		return false
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE && s.Label == nil
	}
	return false
}

// sideEffectFree reports whether evaluating the expression cannot observe or
// affect iteration order: no calls, sends, or receives.
func sideEffectFree(e ast.Expr) bool {
	ok := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr, *ast.FuncLit:
			ok = false
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				ok = false
				return false
			}
		}
		return ok
	})
	return ok
}

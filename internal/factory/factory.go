// Package factory implements the simulator's smart object factories.
//
// Each major component type (Network, Router, RoutingAlgorithm, Arbiter,
// Allocator, Application, TrafficPattern, ...) is abstractly defined by an
// interface in its own package and owns a Registry mapping implementation
// names to constructor functions. New component models self-register from an
// init function in their own source file:
//
//	func init() { arbiter.Register("round_robin", NewRoundRobin) }
//
// which mirrors the original simulator's registerWithObjectFactory macro:
// adding a model requires dropping in a new source file with zero changes to
// the existing code base. When the simulator builds components it calls the
// registry with the name specified in the JSON settings.
package factory

import (
	"fmt"
	"sort"
	"sync"
)

// Registry maps implementation names to constructors of type C (a func type
// chosen by each component package).
type Registry[C any] struct {
	kind string
	mu   sync.RWMutex
	ctor map[string]C
}

// NewRegistry creates a registry for a component kind; the kind name appears
// in error messages ("no router named ...").
func NewRegistry[C any](kind string) *Registry[C] {
	return &Registry[C]{kind: kind, ctor: map[string]C{}}
}

// Register adds a constructor under the given name. Registering a duplicate
// name panics: it is always a programming error (two models claiming one
// name) and should fail loudly at process start.
func (r *Registry[C]) Register(name string, ctor C) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.ctor[name]; dup {
		panic(fmt.Sprintf("factory: duplicate %s implementation %q", r.kind, name))
	}
	r.ctor[name] = ctor
}

// Lookup returns the constructor registered under name.
func (r *Registry[C]) Lookup(name string) (C, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.ctor[name]
	if !ok {
		var zero C
		return zero, fmt.Errorf("factory: no %s implementation named %q (have %v)",
			r.kind, name, r.names())
	}
	return c, nil
}

// MustLookup is Lookup that panics on unknown names. Component builders use
// it because an unknown name is a fatal configuration error.
func (r *Registry[C]) MustLookup(name string) C {
	c, err := r.Lookup(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Names returns the sorted registered implementation names.
func (r *Registry[C]) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.names()
}

func (r *Registry[C]) names() []string {
	out := make([]string, 0, len(r.ctor))
	for n := range r.ctor {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Kind returns the component kind this registry serves.
func (r *Registry[C]) Kind() string { return r.kind }

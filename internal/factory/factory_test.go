package factory

import (
	"strings"
	"testing"
)

type widget interface{ Kind() string }

type gadget struct{ kind string }

func (g *gadget) Kind() string { return g.kind }

type widgetCtor func(arg int) widget

func TestRegisterAndLookup(t *testing.T) {
	r := NewRegistry[widgetCtor]("widget")
	r.Register("gadget", func(arg int) widget { return &gadget{kind: "gadget"} })
	ctor, err := r.Lookup("gadget")
	if err != nil {
		t.Fatal(err)
	}
	if w := ctor(1); w.Kind() != "gadget" {
		t.Fatalf("Kind = %q", w.Kind())
	}
}

func TestLookupUnknownListsAvailable(t *testing.T) {
	r := NewRegistry[widgetCtor]("widget")
	r.Register("alpha", nil)
	r.Register("beta", nil)
	_, err := r.Lookup("gamma")
	if err == nil {
		t.Fatal("expected error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "widget") || !strings.Contains(msg, "gamma") ||
		!strings.Contains(msg, "alpha") || !strings.Contains(msg, "beta") {
		t.Fatalf("unhelpful error: %s", msg)
	}
}

func TestMustLookupPanics(t *testing.T) {
	r := NewRegistry[widgetCtor]("widget")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.MustLookup("missing")
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry[widgetCtor]("widget")
	r.Register("x", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Register("x", nil)
}

func TestNamesSorted(t *testing.T) {
	r := NewRegistry[widgetCtor]("widget")
	for _, n := range []string{"zeta", "alpha", "mid"} {
		r.Register(n, nil)
	}
	names := r.Names()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v", names)
		}
	}
	if r.Kind() != "widget" {
		t.Fatalf("Kind = %q", r.Kind())
	}
}

func TestConcurrentLookup(t *testing.T) {
	r := NewRegistry[widgetCtor]("widget")
	r.Register("g", func(arg int) widget { return &gadget{} })
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 1000; j++ {
				if _, err := r.Lookup("g"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}

package core

import (
	"fmt"
	"strings"
	"testing"

	"supersim/internal/config"
	"supersim/internal/stats"
	"supersim/internal/workload/apps"
)

// runCfg builds, runs and returns the blast recorder summary.
func runCfg(t *testing.T, doc string) (*Simulation, stats.Summary) {
	t.Helper()
	sm := Build(config.MustParse(doc))
	if _, err := sm.Run(); err != nil {
		t.Fatal(err)
	}
	blast := sm.Workload.App(0).(*apps.Blast)
	if blast.Stats().Count() == 0 {
		t.Fatal("no samples recorded")
	}
	return sm, blast.Stats().Summarize()
}

func netDoc(network, traffic string, rate float64) string {
	return fmt.Sprintf(`{
	  "simulation": {"seed": 9},
	  "network": %s,
	  "workload": {
	    "applications": [{
	      "type": "blast",
	      "injection_rate": %g,
	      "message_size": 1,
	      "warmup_duration": 400,
	      "sample_duration": 1500,
	      "traffic": %s
	    }]
	  }
	}`, network, rate, traffic)
}

const stdRouter = `"router": {
  "architecture": "input_queued",
  "num_vcs": %d,
  "input_buffer_depth": 8,
  "crossbar_latency": 2
}`

func TestTorus3DOddWidths(t *testing.T) {
	// Odd widths exercise the minus direction and asymmetric ring halves.
	net := `{
	  "topology": "torus",
	  "dimensions": [3, 5, 3],
	  "concentration": 2,
	  "channel": {"latency": 4, "period": 2},
	  "injection": {"latency": 2},
	  ` + fmt.Sprintf(stdRouter, 2) + `
	}`
	sm, sum := runCfg(t, netDoc(net, `{"type": "uniform_random"}`, 0.1))
	if sm.Net.NumTerminals() != 90 {
		t.Fatalf("terminals = %d", sm.Net.NumTerminals())
	}
	// Max hops: ceil(3/2)? per dim: 1 + 2 + 1 = 4 router-router, +1 leaf.
	if sum.MeanHops < 1 || sum.MeanHops > 6 {
		t.Fatalf("mean hops %v implausible", sum.MeanHops)
	}
}

func TestTorusTornadoTraffic(t *testing.T) {
	net := `{
	  "topology": "torus",
	  "dimensions": [6],
	  "concentration": 1,
	  "channel": {"latency": 4, "period": 2},
	  "injection": {"latency": 2},
	  ` + fmt.Sprintf(stdRouter, 2) + `
	}`
	traffic := `{"type": "tornado", "widths": [6], "concentration": 1}`
	_, sum := runCfg(t, netDoc(net, traffic, 0.15))
	// Tornado on width 6: offset 2, all shortest paths 2 hops + eject = 3.
	if sum.MeanHops != 3 {
		t.Fatalf("tornado hops %v, want 3", sum.MeanHops)
	}
}

func TestHyperX2D(t *testing.T) {
	net := `{
	  "topology": "hyperx",
	  "widths": [3, 4],
	  "concentration": 2,
	  "channel": {"latency": 4, "period": 2},
	  "injection": {"latency": 2},
	  ` + fmt.Sprintf(stdRouter, 2) + `,
	  "routing": {"algorithm": "dimension_order"}
	}`
	sm, sum := runCfg(t, netDoc(net, `{"type": "uniform_random"}`, 0.1))
	if sm.Net.NumTerminals() != 24 {
		t.Fatalf("terminals = %d", sm.Net.NumTerminals())
	}
	// At most one hop per dimension plus ejection: hops in [1, 3].
	if sum.MeanHops < 1 || sum.MeanHops > 3 {
		t.Fatalf("hyperx hops %v", sum.MeanHops)
	}
}

func TestHyperXValiantDeroutesEverything(t *testing.T) {
	net := `{
	  "topology": "hyperx",
	  "widths": [6],
	  "concentration": 1,
	  "channel": {"latency": 4, "period": 2},
	  "injection": {"latency": 2},
	  ` + fmt.Sprintf(stdRouter, 2) + `,
	  "routing": {"algorithm": "valiant"}
	}`
	sm, sum := runCfg(t, netDoc(net, `{"type": "uniform_random"}`, 0.1))
	_ = sm
	if sum.NonMinimal < 0.5 {
		t.Fatalf("valiant nonminimal fraction %v, want most traffic derouted", sum.NonMinimal)
	}
	if sum.MeanHops <= 2 {
		t.Fatalf("valiant hops %v should exceed minimal 2", sum.MeanHops)
	}
}

func TestHyperXUGALMostlyMinimalAtLowLoad(t *testing.T) {
	net := `{
	  "topology": "hyperx",
	  "widths": [6],
	  "concentration": 1,
	  "channel": {"latency": 4, "period": 2},
	  "injection": {"latency": 2},
	  ` + fmt.Sprintf(stdRouter, 2) + `,
	  "routing": {"algorithm": "ugal"}
	}`
	_, sum := runCfg(t, netDoc(net, `{"type": "uniform_random"}`, 0.05))
	if sum.NonMinimal > 0.5 {
		t.Fatalf("ugal at low uniform load deroutes %v of traffic", sum.NonMinimal)
	}
}

func TestDragonflyValiant(t *testing.T) {
	net := `{
	  "topology": "dragonfly",
	  "concentration": 1,
	  "group_size": 2,
	  "global_links": 1,
	  "channel": {"latency": 4, "period": 2},
	  "injection": {"latency": 2},
	  ` + fmt.Sprintf(stdRouter, 3) + `,
	  "routing": {"algorithm": "valiant"}
	}`
	_, sum := runCfg(t, netDoc(net, `{"type": "uniform_random"}`, 0.1))
	if sum.NonMinimal == 0 {
		t.Fatal("valiant never derouted")
	}
}

func TestDragonflyUGALAdversarial(t *testing.T) {
	// With all traffic from each group aimed at the "next" terminal, the
	// single inter-group link saturates; UGAL must deroute some traffic.
	net := `{
	  "topology": "dragonfly",
	  "concentration": 2,
	  "group_size": 2,
	  "global_links": 1,
	  "channel": {"latency": 4, "period": 2},
	  "injection": {"latency": 2},
	  "router": {
	    "architecture": "input_queued",
	    "num_vcs": 3,
	    "input_buffer_depth": 8,
	    "crossbar_latency": 2,
	    "congestion_sensor": {"granularity": "port", "source": "downstream"}
	  },
	  "routing": {"algorithm": "ugal"}
	}`
	// group size a=2, h=1 => 3 groups, 6 routers, 12 terminals.
	traffic := `{"type": "neighbor"}`
	_, sum := runCfg(t, netDoc(net, traffic, 0.2))
	if sum.Count == 0 {
		t.Fatal("nothing sampled")
	}
}

func TestFoldedClosObliviousUprouting(t *testing.T) {
	net := `{
	  "topology": "folded_clos",
	  "half_radix": 2,
	  "levels": 2,
	  "channel": {"latency": 4, "period": 2},
	  "injection": {"latency": 2},
	  "router": {
	    "architecture": "input_queued",
	    "num_vcs": 2,
	    "input_buffer_depth": 8,
	    "crossbar_latency": 2
	  },
	  "routing": {"algorithm": "oblivious_uprouting"}
	}`
	sm, _ := runCfg(t, netDoc(net, `{"type": "uniform_random"}`, 0.2))
	if sm.Net.NumTerminals() != 4 {
		t.Fatalf("terminals = %d", sm.Net.NumTerminals())
	}
}

func TestOQInfiniteQueues(t *testing.T) {
	net := `{
	  "topology": "folded_clos",
	  "half_radix": 2,
	  "levels": 2,
	  "channel": {"latency": 4, "period": 1},
	  "injection": {"latency": 1},
	  "router": {
	    "architecture": "output_queued",
	    "num_vcs": 1,
	    "input_buffer_depth": 16,
	    "queue_latency": 3,
	    "output_queue_depth": 0
	  }
	}`
	_, sum := runCfg(t, netDoc(net, `{"type": "uniform_random"}`, 0.5))
	if sum.Mean <= 0 {
		t.Fatal("no latency measured")
	}
}

func TestIOQWithoutSpeedup(t *testing.T) {
	net := `{
	  "topology": "hyperx",
	  "widths": [4],
	  "concentration": 2,
	  "channel": {"latency": 4, "period": 2},
	  "injection": {"latency": 2},
	  "router": {
	    "architecture": "input_output_queued",
	    "num_vcs": 2,
	    "input_buffer_depth": 8,
	    "output_queue_depth": 16,
	    "crossbar_latency": 2
	  },
	  "routing": {"algorithm": "dimension_order"}
	}`
	runCfg(t, netDoc(net, `{"type": "uniform_random"}`, 0.3))
}

func TestMultiDimTornadoOnTorusIQHighLoad(t *testing.T) {
	net := `{
	  "topology": "torus",
	  "dimensions": [4, 4],
	  "concentration": 1,
	  "channel": {"latency": 4, "period": 2},
	  "injection": {"latency": 2},
	  ` + fmt.Sprintf(stdRouter, 4) + `
	}`
	traffic := `{"type": "tornado", "widths": [4, 4], "concentration": 1}`
	_, sum := runCfg(t, netDoc(net, traffic, 0.4))
	if sum.Count == 0 {
		t.Fatal("no samples")
	}
}

func TestBuildEErrors(t *testing.T) {
	_, err := BuildE(config.MustParse(`{"network": {"topology": "nope"}, "workload": {"applications": []}}`))
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("BuildE error %v", err)
	}
	_, err = BuildE(config.MustParse(`{}`))
	if err == nil {
		t.Fatal("missing network block must fail")
	}
}

func TestInvalidTopologyConfigs(t *testing.T) {
	bad := []string{
		`{"topology": "torus", "dimensions": [], "router": {"num_vcs": 2}}`,
		`{"topology": "torus", "dimensions": [1], "router": {"num_vcs": 2}}`,
		`{"topology": "torus", "dimensions": [4], "concentration": 0, "router": {"num_vcs": 2}}`,
		`{"topology": "torus", "dimensions": [4], "router": {"num_vcs": 3}}`,
		`{"topology": "torus", "dimensions": [4], "router": {"num_vcs": 2}, "routing": {"algorithm": "x"}}`,
		`{"topology": "hyperx", "widths": [], "router": {}}`,
		`{"topology": "hyperx", "widths": [1], "router": {}}`,
		`{"topology": "hyperx", "widths": [4], "router": {"num_vcs": 1}, "routing": {"algorithm": "ugal"}}`,
		`{"topology": "hyperx", "widths": [4], "router": {}, "routing": {"algorithm": "x"}}`,
		`{"topology": "folded_clos", "half_radix": 1, "levels": 3, "router": {}}`,
		`{"topology": "folded_clos", "half_radix": 4, "levels": 1, "router": {}}`,
		`{"topology": "folded_clos", "half_radix": 4, "levels": 2, "router": {}, "routing": {"algorithm": "x"}}`,
		`{"topology": "dragonfly", "concentration": 0, "group_size": 2, "global_links": 1, "router": {}}`,
		`{"topology": "dragonfly", "concentration": 1, "group_size": 2, "global_links": 1, "router": {"num_vcs": 1}}`,
		`{"topology": "dragonfly", "concentration": 1, "group_size": 2, "global_links": 1, "router": {"num_vcs": 3}, "routing": {"algorithm": "x"}}`,
		`{"topology": "parking_lot", "routers": 1, "router": {}}`,
	}
	for _, net := range bad {
		doc := netDoc(net, `{"type": "uniform_random"}`, 0.1)
		if _, err := BuildE(config.MustParse(doc)); err == nil {
			t.Errorf("config should be rejected: %s", net)
		}
	}
}

func TestPacketBufferHighLoadDrains(t *testing.T) {
	// Packet-buffer flow control with long messages at saturating load on a
	// wrapped ring is the most deadlock-prone combination: full-packet
	// credit reservations plus dateline VC switching. The run must still
	// complete all four phases and drain (Run verifies quiescence).
	net := `{
	  "topology": "torus",
	  "dimensions": [4],
	  "concentration": 1,
	  "channel": {"latency": 4, "period": 2},
	  "injection": {"latency": 2},
	  "router": {
	    "architecture": "input_queued",
	    "num_vcs": 4,
	    "input_buffer_depth": 16,
	    "crossbar_latency": 2,
	    "flow_control": "packet_buffer"
	  }
	}`
	doc := strings.Replace(netDoc(net, `{"type": "uniform_random"}`, 0.95),
		`"message_size": 1`, `"message_size": 8, "source_queue_limit": 8`, 1)
	sm := Build(config.MustParse(doc))
	if _, err := sm.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWTAHighLoadDrains(t *testing.T) {
	net := `{
	  "topology": "torus",
	  "dimensions": [4],
	  "concentration": 1,
	  "channel": {"latency": 4, "period": 2},
	  "injection": {"latency": 2},
	  "router": {
	    "architecture": "input_queued",
	    "num_vcs": 2,
	    "input_buffer_depth": 8,
	    "crossbar_latency": 2,
	    "flow_control": "winner_take_all"
	  }
	}`
	doc := strings.Replace(netDoc(net, `{"type": "uniform_random"}`, 0.95),
		`"message_size": 1`, `"message_size": 16, "source_queue_limit": 8`, 1)
	sm := Build(config.MustParse(doc))
	if _, err := sm.Run(); err != nil {
		t.Fatal(err)
	}
}

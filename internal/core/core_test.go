package core

import (
	"strings"
	"testing"

	"supersim/internal/config"
	"supersim/internal/workload/apps"
)

// buildAndRun assembles the config, runs it, and returns the simulation.
func buildAndRun(t *testing.T, doc string) *Simulation {
	t.Helper()
	sm := Build(config.MustParse(doc))
	if _, err := sm.Run(); err != nil {
		t.Fatal(err)
	}
	return sm
}

// tinyTorusConfig is a 4x4 torus with IQ routers and a light blast load.
func tinyTorusConfig(extra string) string {
	return `{
	  "simulation": {"seed": 7},
	  "network": {
	    "topology": "torus",
	    "dimensions": [4, 4],
	    "concentration": 1,
	    "channel": {"latency": 10, "period": 2},
	    "injection": {"latency": 2},
	    "interface": {"receive_buffer_depth": 16},
	    "router": {
	      "architecture": "input_queued",
	      "num_vcs": 2,
	      "input_buffer_depth": 8,
	      "crossbar_latency": 4
	    }
	  },
	  "workload": {
	    "applications": [{
	      "type": "blast",
	      "injection_rate": 0.2,
	      "message_size": 1,
	      "warmup_duration": 500,
	      "sample_duration": 2000,
	      "traffic": {"type": "uniform_random"}
	      ` + extra + `
	    }]
	  }
	}`
}

func TestTorusIQEndToEnd(t *testing.T) {
	sm := buildAndRun(t, tinyTorusConfig(""))
	blast := sm.Workload.App(0).(*apps.Blast)
	if blast.Stats().Count() < 50 {
		t.Fatalf("only %d sampled messages", blast.Stats().Count())
	}
	sum := blast.Stats().Summarize()
	if sum.Mean <= 0 || sum.Max < sum.Min || sum.P99 < sum.P50 {
		t.Fatalf("implausible summary: %+v", sum)
	}
	// Minimum possible latency: injection + a couple of router traversals.
	if sum.Min < 10 {
		t.Fatalf("min latency %v is below physical minimum", sum.Min)
	}
	if blast.Skipped() > 0 {
		t.Fatalf("low load should not saturate, skipped=%d", blast.Skipped())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := buildAndRun(t, tinyTorusConfig(""))
	b := buildAndRun(t, tinyTorusConfig(""))
	sa := a.Workload.App(0).(*apps.Blast).Stats().Summarize()
	sb := b.Workload.App(0).(*apps.Blast).Stats().Summarize()
	if sa != sb {
		t.Fatalf("same seed produced different results:\n%+v\n%+v", sa, sb)
	}
}

func TestSeedChangesResults(t *testing.T) {
	a := buildAndRun(t, tinyTorusConfig(""))
	doc := strings.Replace(tinyTorusConfig(""), `"seed": 7`, `"seed": 8`, 1)
	b := buildAndRun(t, doc)
	sa := a.Workload.App(0).(*apps.Blast).Stats().Summarize()
	sb := b.Workload.App(0).(*apps.Blast).Stats().Summarize()
	if sa == sb {
		t.Fatal("different seeds produced identical results")
	}
}

func TestMultiFlitMessagesOnTorus(t *testing.T) {
	doc := strings.Replace(tinyTorusConfig(""), `"message_size": 1`, `"message_size": 4`, 1)
	sm := buildAndRun(t, doc)
	blast := sm.Workload.App(0).(*apps.Blast)
	if blast.Stats().Count() < 20 {
		t.Fatalf("only %d sampled messages", blast.Stats().Count())
	}
	for _, s := range blast.Stats().Samples() {
		if s.Flits != 4 {
			t.Fatalf("sample flits = %d, want 4", s.Flits)
		}
	}
}

func TestFlowControlModesRun(t *testing.T) {
	for _, fc := range []string{"flit_buffer", "packet_buffer", "winner_take_all"} {
		doc := strings.Replace(tinyTorusConfig(""),
			`"architecture": "input_queued",`,
			`"architecture": "input_queued", "flow_control": "`+fc+`",`, 1)
		doc = strings.Replace(doc, `"message_size": 1`, `"message_size": 3`, 1)
		sm := buildAndRun(t, doc)
		if sm.Workload.App(0).(*apps.Blast).Stats().Count() == 0 {
			t.Fatalf("%s: no samples", fc)
		}
	}
}

func TestFoldedClosOQEndToEnd(t *testing.T) {
	doc := `{
	  "simulation": {"seed": 3},
	  "network": {
	    "topology": "folded_clos",
	    "half_radix": 2,
	    "levels": 3,
	    "channel": {"latency": 10, "period": 2},
	    "injection": {"latency": 2},
	    "router": {
	      "architecture": "output_queued",
	      "num_vcs": 1,
	      "input_buffer_depth": 16,
	      "queue_latency": 10,
	      "output_queue_depth": 32,
	      "congestion_sensor": {"granularity": "port", "source": "output", "latency": 4}
	    }
	  },
	  "workload": {
	    "applications": [{
	      "type": "blast",
	      "injection_rate": 0.3,
	      "message_size": 1,
	      "warmup_duration": 500,
	      "sample_duration": 2000,
	      "traffic": {"type": "cross_subtree", "group_size": 4}
	    }]
	  }
	}`
	sm := buildAndRun(t, doc)
	blast := sm.Workload.App(0).(*apps.Blast)
	if blast.Stats().Count() < 20 {
		t.Fatalf("only %d samples", blast.Stats().Count())
	}
	// Cross-subtree traffic on a 3-level tree traverses 5 routers:
	// leaf, mid, root, mid, leaf.
	if h := blast.Stats().MeanHops(); h != 5 {
		t.Fatalf("mean hops %v, want exactly 5 (through the root)", h)
	}
}

func TestHyperXIOQWithUGAL(t *testing.T) {
	doc := `{
	  "simulation": {"seed": 5},
	  "network": {
	    "topology": "hyperx",
	    "widths": [8],
	    "concentration": 2,
	    "channel": {"latency": 10, "period": 2},
	    "injection": {"latency": 2},
	    "router": {
	      "architecture": "input_output_queued",
	      "num_vcs": 2,
	      "speedup": 2,
	      "input_buffer_depth": 8,
	      "output_queue_depth": 16,
	      "crossbar_latency": 4,
	      "congestion_sensor": {"granularity": "port", "source": "both"},
	      "routing": {}
	    },
	    "routing": {"algorithm": "ugal"}
	  },
	  "workload": {
	    "applications": [{
	      "type": "blast",
	      "injection_rate": 0.3,
	      "message_size": 1,
	      "warmup_duration": 500,
	      "sample_duration": 3000,
	      "traffic": {"type": "bit_complement"}
	    }]
	  }
	}`
	sm := buildAndRun(t, doc)
	blast := sm.Workload.App(0).(*apps.Blast)
	if blast.Stats().Count() < 20 {
		t.Fatalf("only %d samples", blast.Stats().Count())
	}
}

func TestDragonflyMinimalEndToEnd(t *testing.T) {
	doc := `{
	  "simulation": {"seed": 11},
	  "network": {
	    "topology": "dragonfly",
	    "concentration": 2,
	    "group_size": 2,
	    "global_links": 1,
	    "channel": {"latency": 10, "period": 2},
	    "injection": {"latency": 2},
	    "router": {
	      "architecture": "input_queued",
	      "num_vcs": 2,
	      "input_buffer_depth": 8,
	      "crossbar_latency": 2
	    },
	    "routing": {"algorithm": "minimal"}
	  },
	  "workload": {
	    "applications": [{
	      "type": "blast",
	      "injection_rate": 0.15,
	      "message_size": 1,
	      "warmup_duration": 500,
	      "sample_duration": 2000,
	      "traffic": {"type": "uniform_random"}
	    }]
	  }
	}`
	sm := buildAndRun(t, doc)
	if sm.Workload.App(0).(*apps.Blast).Stats().Count() < 20 {
		t.Fatal("too few samples")
	}
}

func TestBlastPlusPulseTransient(t *testing.T) {
	doc := `{
	  "simulation": {"seed": 13},
	  "network": {
	    "topology": "torus",
	    "dimensions": [4],
	    "concentration": 1,
	    "channel": {"latency": 10, "period": 2},
	    "injection": {"latency": 2},
	    "router": {
	      "architecture": "input_queued",
	      "num_vcs": 2,
	      "input_buffer_depth": 8,
	      "crossbar_latency": 2
	    }
	  },
	  "workload": {
	    "applications": [
	      {
	        "type": "blast",
	        "injection_rate": 0.2,
	        "message_size": 1,
	        "warmup_duration": 400,
	        "sample_duration": 3000,
	        "traffic": {"type": "uniform_random"}
	      },
	      {
	        "type": "pulse",
	        "injection_rate": 0.5,
	        "message_size": 1,
	        "count": 30,
	        "delay": 500,
	        "traffic": {"type": "uniform_random"}
	      }
	    ]
	  }
	}`
	sm := buildAndRun(t, doc)
	blast := sm.Workload.App(0).(*apps.Blast)
	pulse := sm.Workload.App(1).(*apps.Pulse)
	if blast.Stats().Count() == 0 {
		t.Fatal("blast recorded nothing")
	}
	if pulse.Stats().Count() != 30*4 {
		t.Fatalf("pulse delivered %d messages, want %d", pulse.Stats().Count(), 30*4)
	}
	series := blast.Stats().TimeSeries(500)
	if len(series) < 3 {
		t.Fatalf("transient series too short: %v", series)
	}
}

func TestParkingLotAgeBasedFairness(t *testing.T) {
	// All terminals send to terminal 0 at a rate that oversubscribes the
	// merge links. With age-based arbitration the far terminal must receive
	// service comparable to the near one; round-robin starves it.
	run := func(policy string) map[int]int {
		doc := `{
		  "simulation": {"seed": 21},
		  "network": {
		    "topology": "parking_lot",
		    "routers": 5,
		    "channel": {"latency": 4, "period": 2},
		    "injection": {"latency": 2},
		    "router": {
		      "architecture": "input_queued",
		      "num_vcs": 1,
		      "input_buffer_depth": 8,
		      "crossbar_latency": 2,
		      "crossbar_policy": "` + policy + `",
		      "vc_policy": "` + policy + `"
		    }
		  },
		  "workload": {
		    "applications": [{
		      "type": "blast",
		      "injection_rate": 0.9,
		      "message_size": 1,
		      "warmup_duration": 1000,
		      "sample_duration": 8000,
		      "source_queue_limit": 16,
		      "traffic": {"type": "fixed", "destination": 0}
		    }]
		  }
		}`
		sm := buildAndRun(t, doc)
		counts := map[int]int{}
		for _, s := range sm.Workload.App(0).(*apps.Blast).Stats().Samples() {
			counts[s.Src]++
		}
		return counts
	}
	rr := run("round_robin")
	age := run("age_based")
	// Fairness metric: deliveries from the farthest source vs the nearest.
	frac := func(c map[int]int) float64 {
		if c[1] == 0 {
			return 0
		}
		return float64(c[4]) / float64(c[1])
	}
	if frac(age) <= frac(rr) {
		t.Fatalf("age-based (%v) should serve the far terminal better than round robin (%v)\nrr=%v age=%v",
			frac(age), frac(rr), rr, age)
	}
	if frac(age) < 0.5 {
		t.Fatalf("age-based fairness too low: %v (%v)", frac(age), age)
	}
}

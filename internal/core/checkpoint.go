// Checkpoint/restore for assembled simulations.
//
// A snapshot is a complete, versioned serialization of simulator state at a
// tick boundary T: the settings document, every PRNG stream, all live
// messages, every component's mutable state, the verify and telemetry
// registries, and the merged event queue in partition-independent order.
// Restore rebuilds the identical component graph by re-running Build on the
// embedded settings — construction is deterministic, so every component
// reoccupies its construction-order slot — then overwrites the fresh state
// with the snapshot's and re-injects the saved events with their exact
// ordering keys. Because event records are keyed by (tick, epsilon, owner,
// oseq) and component state is serialized per component rather than per
// shard, a snapshot taken at one worker count restores into any other with
// identical results.
package core

import (
	"fmt"

	"supersim/internal/config"
	"supersim/internal/router"
	"supersim/internal/sim"
	"supersim/internal/snapshot"
	"supersim/internal/types"
)

// Snapshot section tags, in stream order.
const (
	secConfig    = "CFG"
	secTime      = "TIM"
	secSim       = "SIM"
	secMessages  = "MSG"
	secWorkload  = "WKL"
	secNetwork   = "NET"
	secVerify    = "VER"
	secTelemetry = "TEL"
	secEvents    = "EVQ"
)

// keyed is the view of a component the checkpoint machinery needs: it
// processes events, carries a construction-order key, and knows its owning
// (possibly shard) simulator. Every type embedding sim.ComponentBase
// satisfies it.
type keyed interface {
	sim.Handler
	OrderKey() uint32
	Sim() *sim.Simulator
}

// handlers walks every component that can own queued events, in a fixed
// deterministic order. fn receives each component exactly once.
func (sm *Simulation) handlers(fn func(keyed) error) error {
	add := func(what string, c any) error {
		k, ok := c.(keyed)
		if !ok {
			return fmt.Errorf("core: %s (%T) does not embed sim.ComponentBase and cannot be checkpointed", what, c)
		}
		return fn(k)
	}
	if err := add("workload", sm.Workload); err != nil {
		return err
	}
	for i := 0; i < sm.Workload.NumApps(); i++ {
		if err := add(fmt.Sprintf("application %d", i), sm.Workload.App(i)); err != nil {
			return err
		}
	}
	for i := 0; i < sm.Net.NumRouters(); i++ {
		if err := add(fmt.Sprintf("router %d", i), sm.Net.Router(i)); err != nil {
			return err
		}
	}
	for i := 0; i < sm.Net.NumTerminals(); i++ {
		if err := add(fmt.Sprintf("interface %d", i), sm.Net.Interface(i)); err != nil {
			return err
		}
	}
	for i, l := range sm.Net.Links() {
		if err := add(fmt.Sprintf("link %d flit channel", i), l.Ch); err != nil {
			return err
		}
		if err := add(fmt.Sprintf("link %d credit channel", i), l.Cr); err != nil {
			return err
		}
	}
	if sm.Verify != nil {
		if err := add("verifier", sm.Verify); err != nil {
			return err
		}
	}
	if sm.Telemetry != nil {
		if err := add("telemetry", sm.Telemetry); err != nil {
			return err
		}
	}
	return nil
}

// sims returns every simulator of the partition (just the host when serial).
func (sm *Simulation) sims() []*sim.Simulator {
	if len(sm.Shards) == 0 {
		return []*sim.Simulator{sm.Sim}
	}
	out := make([]*sim.Simulator, len(sm.Shards))
	for i, sh := range sm.Shards {
		out[i] = sh.Sim
	}
	return out
}

// routerState returns router i's checkpoint interface.
func (sm *Simulation) routerState(i int) (router.Stater, error) {
	st, ok := sm.Net.Router(i).(router.Stater)
	if !ok {
		return nil, fmt.Errorf("core: router %d (%T) does not support checkpointing", i, sm.Net.Router(i))
	}
	return st, nil
}

// Snapshot serializes the complete simulation state at the tick boundary T.
// The simulation must be paused at T: serially, after RunUntil(T); sharded,
// after Engine.RunUntil(T) followed by DrainCross, so every cross-shard post
// has become a locally queued event.
func (sm *Simulation) Snapshot(tick sim.Tick) ([]byte, error) {
	e := snapshot.NewEncoder()
	e.WriteHeader()

	e.Section(secConfig)
	//sslint:allow snapshotcomplete — the config blob is restored indirectly: Restore re-parses it and rebuilds via Build(cfg), which sets cfg
	e.Blob([]byte(sm.cfg.JSON()))

	// Partition-independent progress totals: the per-shard split of executed
	// events depends on the worker count, so only the run-wide sums are state.
	var executed uint64
	var last sim.Time
	for _, s := range sm.sims() {
		executed += s.Executed()
		if last.Before(s.LastWork()) {
			last = s.LastWork()
		}
	}
	e.Section(secTime)
	e.U64(uint64(tick))
	e.U64(executed)
	e.U64(uint64(last.Tick))
	e.U32(uint32(last.Eps))

	// Host simulator core state: scheduling counters and every PRNG stream.
	// Components are constructed against the host, so the host owns all order
	// keys and derived streams regardless of the partition.
	e.Section(secSim)
	sm.Sim.SaveState(e)

	// Live messages, collected from every flit- or packet-holding component.
	table := types.NewMessageTable()
	for i := 0; i < sm.Net.NumTerminals(); i++ {
		sm.Net.Interface(i).Collect(table)
	}
	for i := 0; i < sm.Net.NumRouters(); i++ {
		st, err := sm.routerState(i)
		if err != nil {
			return nil, err
		}
		st.Collect(table)
	}
	for _, l := range sm.Net.Links() {
		l.Ch.Collect(table)
	}
	e.Section(secMessages)
	table.SaveState(e)

	e.Section(secWorkload)
	sm.Workload.SaveState(e)

	e.Section(secNetwork)
	for i := 0; i < sm.Net.NumRouters(); i++ {
		st, err := sm.routerState(i)
		if err != nil {
			return nil, err
		}
		st.SaveState(e, table)
	}
	for i := 0; i < sm.Net.NumTerminals(); i++ {
		sm.Net.Interface(i).SaveState(e, table)
	}
	for _, l := range sm.Net.Links() {
		l.Ch.SaveState(e, table)
		l.Cr.SaveState(e)
	}

	e.Section(secVerify)
	e.Bool(sm.Verify != nil)
	if sm.Verify != nil {
		sm.Verify.SaveState(e)
	}

	e.Section(secTelemetry)
	e.Bool(sm.Telemetry != nil)
	if sm.Telemetry != nil {
		sm.Telemetry.SaveState(e)
	}

	// The merged event queue: records from every shard, sorted by the heap's
	// total order so the bytes are partition-independent.
	var recs []sim.EventRecord
	for _, s := range sm.sims() {
		r, err := s.ExportEvents()
		if err != nil {
			return nil, err
		}
		recs = append(recs, r...)
	}
	sim.SortEventRecords(recs)
	e.Section(secEvents)
	e.Int(len(recs))
	for i := range recs {
		recs[i].Save(e)
	}

	return e.Bytes(), nil
}

// Restore rebuilds a simulation from snapshot bytes and returns it with the
// checkpoint tick. workers overrides the snapshot's simulation.workers when
// positive; zero keeps the snapshot's configured value. Any panic on the
// decode path (including a Build failure on a corrupted embedded config) is
// recovered into an error — a snapshot is external input and must never
// crash the process.
func Restore(data []byte, workers int) (sm *Simulation, tick sim.Tick, err error) {
	defer func() {
		if r := recover(); r != nil {
			sm, tick, err = nil, 0, fmt.Errorf("core: restore failed: %v", r)
		}
	}()
	d := snapshot.NewDecoder(data)
	if err := d.ReadHeader(); err != nil {
		return nil, 0, err
	}

	if err := d.Section(secConfig); err != nil {
		return nil, 0, err
	}
	cfgJSON := d.Blob()
	if d.Err() != nil {
		return nil, 0, d.Err()
	}
	cfg, err := config.Parse(cfgJSON)
	if err != nil {
		return nil, 0, fmt.Errorf("core: snapshot config: %w", err)
	}
	if workers > 0 {
		cfg.Set("simulation.workers", workers)
	}

	if err := d.Section(secTime); err != nil {
		return nil, 0, err
	}
	tick = sim.Tick(d.U64())
	executed := d.U64()
	last := sim.Time{Tick: sim.Tick(d.U64()), Eps: sim.Epsilon(d.U32())}
	if d.Err() != nil {
		return nil, 0, d.Err()
	}

	sm = Build(cfg)

	if err := d.Section(secSim); err != nil {
		return nil, 0, err
	}
	if err := sm.Sim.LoadState(d); err != nil {
		return nil, 0, err
	}

	if err := d.Section(secMessages); err != nil {
		return nil, 0, err
	}
	table, err := types.LoadMessageTable(d, sm.Workload.Pool())
	if err != nil {
		return nil, 0, err
	}

	if err := d.Section(secWorkload); err != nil {
		return nil, 0, err
	}
	if err := sm.Workload.LoadState(d); err != nil {
		return nil, 0, err
	}

	if err := d.Section(secNetwork); err != nil {
		return nil, 0, err
	}
	for i := 0; i < sm.Net.NumRouters(); i++ {
		st, err := sm.routerState(i)
		if err != nil {
			return nil, 0, err
		}
		if err := st.LoadState(d, table); err != nil {
			return nil, 0, err
		}
	}
	for i := 0; i < sm.Net.NumTerminals(); i++ {
		if err := sm.Net.Interface(i).LoadState(d, table); err != nil {
			return nil, 0, err
		}
	}
	for _, l := range sm.Net.Links() {
		if err := l.Ch.LoadState(d, table); err != nil {
			return nil, 0, err
		}
		if err := l.Cr.LoadState(d); err != nil {
			return nil, 0, err
		}
	}

	if err := d.Section(secVerify); err != nil {
		return nil, 0, err
	}
	hasVer := d.Bool()
	if d.Err() != nil {
		return nil, 0, d.Err()
	}
	if hasVer != (sm.Verify != nil) {
		return nil, 0, d.Failf("snapshot verifier state %v, rebuilt simulation %v", hasVer, sm.Verify != nil)
	}
	if sm.Verify != nil {
		if err := sm.Verify.LoadState(d); err != nil {
			return nil, 0, err
		}
	}

	if err := d.Section(secTelemetry); err != nil {
		return nil, 0, err
	}
	hasTel := d.Bool()
	if d.Err() != nil {
		return nil, 0, d.Err()
	}
	if hasTel != (sm.Telemetry != nil) {
		return nil, 0, d.Failf("snapshot telemetry state %v, rebuilt simulation %v", hasTel, sm.Telemetry != nil)
	}
	if sm.Telemetry != nil {
		if err := sm.Telemetry.LoadState(d); err != nil {
			return nil, 0, err
		}
	}

	// Event queue: map each record's owner key back to the rebuilt component
	// and inject it — on the component's owning simulator, so a record lands
	// on whichever shard the new partition placed its handler.
	keyMap := map[uint32]keyed{}
	if err := sm.handlers(func(k keyed) error {
		if prev, dup := keyMap[k.OrderKey()]; dup {
			return fmt.Errorf("core: components share construction-order key %d (%T, %T)", k.OrderKey(), prev, k)
		}
		keyMap[k.OrderKey()] = k
		return nil
	}); err != nil {
		return nil, 0, err
	}
	if err := d.Section(secEvents); err != nil {
		return nil, 0, err
	}
	n := d.Count()
	if d.Err() != nil {
		return nil, 0, d.Err()
	}
	// The fresh build scheduled its own initial events (application init,
	// observer daemons); the snapshot's queue holds their in-flight
	// successors, so the initial set is dropped wholesale before injection.
	for _, s := range sm.sims() {
		s.ResetQueue()
	}
	for i := 0; i < n; i++ {
		var r sim.EventRecord
		if err := r.Load(d); err != nil {
			return nil, 0, err
		}
		if r.Tick < tick {
			return nil, 0, d.Failf("event %d at tick %d predates the checkpoint tick %d", i, r.Tick, tick)
		}
		h, ok := keyMap[r.Owner]
		if !ok {
			return nil, 0, d.Failf("event %d owned by unknown component key %d", i, r.Owner)
		}
		h.Sim().InjectEvent(h, r)
	}
	if err := d.Done(); err != nil {
		return nil, 0, err
	}

	for _, s := range sm.sims() {
		s.SetNow(sim.Time{Tick: tick})
	}
	// Run-wide progress totals live on the host; shard counters stay zero.
	sm.Sim.SetProgress(executed, last)
	if sm.engine != nil {
		// Every queued event is at tick or later, so every shard has
		// vacuously committed the checkpoint tick; without this the first
		// phase would crawl from tick 0 in empty lookahead windows.
		sm.engine.SeedCommit(tick)
	}
	return sm, tick, nil
}

// RunCheckpointed executes the simulation to completion like Run, pausing at
// every multiple of `every` ticks while real work remains to hand a snapshot
// to sink. The checkpoint boundaries are invisible to the simulation — a
// checkpointed run's results are identical to an uninterrupted one's — and
// sink errors abort the run.
func (sm *Simulation) RunCheckpointed(every sim.Tick, sink func(tick sim.Tick, data []byte) error) (Result, error) {
	if every == 0 {
		return Result{}, fmt.Errorf("core: checkpoint interval must be positive")
	}
	if sm.Telemetry != nil {
		defer sm.Telemetry.Close()
	}
	checkpoint := func(at sim.Tick) error {
		data, err := sm.Snapshot(at)
		if err != nil {
			return err
		}
		return sink(at, data)
	}
	var events uint64
	var end sim.Time
	if sm.engine != nil {
		for at := every; ; at += every {
			sm.engine.RunUntil(at)
			sm.engine.DrainCross()
			if sm.engine.Stopped() || sm.engine.Quiesced() {
				break
			}
			if err := checkpoint(at); err != nil {
				return Result{}, err
			}
		}
		sm.engine.RunUntil(^sim.Tick(0))
		events, end = sm.engine.Finish()
	} else {
		for at := every; ; at += every {
			sm.Sim.RunUntil(at)
			if sm.Sim.Stopped() || sm.Sim.PendingNonDaemon() == 0 {
				break
			}
			if err := checkpoint(at); err != nil {
				return Result{}, err
			}
		}
		// Trailing daemon events and the final monitor flush, exactly as an
		// un-checkpointed serial Run would.
		sm.Sim.Run()
		events = sm.Sim.Executed()
		end = sm.Sim.LastWork()
	}
	return sm.verifyOutcome(events, end)
}

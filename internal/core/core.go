// Package core assembles complete simulations from JSON settings: it builds
// the simulator, the network (topology, routers, interfaces, channels) and
// the workload (applications, terminals), runs the four-phase protocol to
// completion, and reports the outcome.
//
// The top level of any network simulation holds two blocks — "network" and
// "workload" — plus an optional "simulation" block for the seed:
//
//	{
//	  "simulation": {"seed": 1},
//	  "network":    {"topology": "...", "router": {...}, ...},
//	  "workload":   {"applications": [{"type": "blast", ...}]}
//	}
package core

import (
	"fmt"
	"io"
	"os"

	"supersim/internal/config"
	"supersim/internal/diagnose"
	"supersim/internal/network"
	"supersim/internal/sim"
	"supersim/internal/telemetry"
	"supersim/internal/verify"
	"supersim/internal/workload"

	// Component model registrations: each topology and application model
	// self-registers from its own package, so assembling a simulator is just
	// importing the models it should know about.
	_ "supersim/internal/network/dragonfly"
	_ "supersim/internal/network/foldedclos"
	_ "supersim/internal/network/hyperx"
	_ "supersim/internal/network/parkinglot"
	_ "supersim/internal/network/torus"
	_ "supersim/internal/workload/apps"
)

// Simulation is a fully assembled simulation.
type Simulation struct {
	Sim       *sim.Simulator
	Net       network.Network
	Workload  *workload.Workload
	Verify    *verify.Verifier     // nil unless simulation.verify.enabled
	Telemetry *telemetry.Telemetry // nil unless simulation.telemetry.enabled

	// Shards is the parallel partition (simulation.workers > 1), or nil for
	// a serial simulation. Shard 0 is the host shard.
	Shards []*Shard
	engine *sim.Engine

	// cfg is the settings document the simulation was built from, retained so
	// checkpoints can embed it (a snapshot restores by rebuilding the identical
	// component graph and overwriting its state).
	cfg *config.Settings
}

// Config returns the settings document the simulation was built from. For a
// restored simulation this is the snapshot's embedded document (plus any
// worker-count override), so drivers can read effective settings either way.
func (sm *Simulation) Config() *config.Settings { return sm.cfg }

// Build assembles a simulation from the full settings document. It panics
// (with *config.Error where applicable) on invalid settings; use BuildE for
// an error-returning wrapper.
func Build(cfg *config.Settings) *Simulation {
	seed := cfg.UIntOr("simulation.seed", 1)
	s := sim.NewSimulator(seed)
	// Opt-in progress reporting: "simulation": {"monitor_interval": N} emits
	// an events/sec + heap line to stderr (and the supersim.* expvar gauges)
	// every N executed events. Reporting is observation-only and cannot
	// perturb determinism.
	// simulation.monitor_end_tick, when the driver knows the run's horizon,
	// adds an ETA to each progress line.
	if mi := cfg.UIntOr("simulation.monitor_interval", 0); mi > 0 {
		pm := &sim.ProgressMonitor{
			Out:     os.Stderr,
			EndTick: sim.Tick(cfg.UIntOr("simulation.monitor_end_tick", 0)),
		}
		pm.Attach(s, mi)
	}
	// Opt-in invariant verification: "simulation": {"verify": {"enabled": true}}
	// attaches the runtime checker before any component is constructed, so
	// every interface, channel, and router picks it up via verify.For.
	var v *verify.Verifier
	if cfg.BoolOr("simulation.verify.enabled", false) {
		v = verify.Attach(s, verify.Options{
			WatchdogEpoch: sim.Tick(cfg.UIntOr("simulation.verify.watchdog_epoch", 100000)),
		})
	}
	// Opt-in telemetry: "simulation": {"telemetry": {"enabled": true, ...}}
	// attaches the metrics/tracing subsystem before components are built, so
	// channels, routers, interfaces and the workload pick up their probes via
	// the telemetry.For* constructors. Like verification it is observation-
	// only: traffic results are identical with it on or off.
	var tel *telemetry.Telemetry
	if cfg.BoolOr("simulation.telemetry.enabled", false) {
		opts := telemetry.Options{
			BinTicks: sim.Tick(cfg.UIntOr("simulation.telemetry.bin", 1000)),
		}
		if path := cfg.StringOr("simulation.telemetry.snapshot_file", ""); path != "" {
			f, err := os.Create(path)
			if err != nil {
				panic(fmt.Sprintf("core: telemetry snapshot file: %v", err))
			}
			opts.SnapshotW = f
		}
		if path := cfg.StringOr("simulation.telemetry.trace_file", ""); path != "" {
			f, err := os.Create(path)
			if err != nil {
				panic(fmt.Sprintf("core: telemetry trace file: %v", err))
			}
			opts.Tracer = telemetry.NewTracer(f, cfg.FloatOr("simulation.telemetry.trace_sample", 1.0))
		}
		// Span recording: "spans_file" streams per-message latency
		// decompositions as JSONL; "spans_sample" alone folds sampled spans
		// into the registry histograms without a stream (the critical-path
		// report still reaches snapshots and Prometheus).
		spansPath := cfg.StringOr("simulation.telemetry.spans_file", "")
		spansSample := cfg.FloatOr("simulation.telemetry.spans_sample", 0)
		if spansPath != "" && !cfg.Has("simulation.telemetry.spans_sample") {
			spansSample = 1.0
		}
		if spansPath != "" || spansSample > 0 {
			var w io.Writer
			if spansPath != "" {
				f, err := os.Create(spansPath)
				if err != nil {
					panic(fmt.Sprintf("core: telemetry spans file: %v", err))
				}
				w = f
			}
			opts.Spans = telemetry.NewSpans(w, spansSample)
		}
		tel = telemetry.Attach(s, opts)
	}
	net := network.New(s, cfg.Sub("network"))
	if v != nil {
		// With the network built the watchdog can do better than an occupancy
		// dump: the diagnostician walks head-of-line dependency chains and
		// names the resource each blocked flit waits on.
		v.SetDiagnoser(diagnose.New(net).Report)
	}
	w := workload.New(s, cfg.Sub("workload"), net)
	if v != nil {
		// The workload's message pool reports obtain/release so stale pooled
		// pointers (aliasing bugs) are caught by the generation sentinel.
		w.Pool().SetObserver(v)
	}
	sm := &Simulation{Sim: s, Net: net, Workload: w, Verify: v, Telemetry: tel, cfg: cfg}
	// Opt-in parallel execution: "simulation": {"workers": N} partitions the
	// routers across N-1 shards coordinated by the conservative engine, with
	// results byte-identical to the serial path (workers <= 1, the default).
	if workers := int(cfg.UIntOr("simulation.workers", 1)); workers > 1 {
		attachParallel(sm, workers)
	}
	return sm
}

// BuildE is Build with panics recovered into errors.
func BuildE(cfg *config.Settings) (sm *Simulation, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: build failed: %v", r)
		}
	}()
	return Build(cfg), nil
}

// Result summarizes a completed run.
type Result struct {
	Events  uint64   // non-daemon events executed
	EndTick sim.Tick // time of the last non-daemon event — the logical end
	Drained bool     // the workload reached the draining phase
}

// Run executes the simulation until the event queue runs empty and verifies
// the workload protocol completed. It returns an error when the queue
// drained in an earlier phase, which indicates stalled traffic (for example
// a deadlock or a misconfigured application).
func (sm *Simulation) Run() (Result, error) {
	if sm.Telemetry != nil {
		// Final snapshot bin, stream flush, and trace termination happen even
		// when the run errors out — a truncated trace of a stalled run is
		// exactly what the diagnosis needs.
		defer sm.Telemetry.Close()
	}
	var events uint64
	var end sim.Time
	if sm.engine != nil {
		events, end = sm.engine.Run()
	} else {
		// Cumulative rather than this call's delta: a restored simulation
		// resumes with the checkpoint's executed-event total already seeded,
		// and its final count must match the uninterrupted run's.
		sm.Sim.Run()
		events = sm.Sim.Executed()
		end = sm.Sim.LastWork()
	}
	return sm.verifyOutcome(events, end)
}

// verifyOutcome assembles the Result and runs the post-drain checks shared by
// Run and RunCheckpointed.
func (sm *Simulation) verifyOutcome(events uint64, end sim.Time) (Result, error) {
	res := Result{
		Events:  events,
		EndTick: end.Tick,
		Drained: sm.Workload.Phase() == workload.Draining,
	}
	if !res.Drained {
		return res, fmt.Errorf("core: event queue drained during %v phase — traffic stalled",
			sm.Workload.Phase())
	}
	// Post-drain quiescence: every router and interface must be completely
	// idle — empty queues, no held allocations, all credits returned. Any
	// leak panics with component context.
	for i := 0; i < sm.Net.NumRouters(); i++ {
		sm.Net.Router(i).VerifyIdle()
	}
	for i := 0; i < sm.Net.NumTerminals(); i++ {
		sm.Net.Interface(i).VerifyIdle()
	}
	if sm.Verify != nil {
		sm.Verify.VerifyDrained()
	}
	return res, nil
}

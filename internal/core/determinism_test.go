package core

import (
	"testing"

	"supersim/internal/config"
	"supersim/internal/stats"
	"supersim/internal/types"
	"supersim/internal/workload/apps"
)

// closDoc is a small folded-Clos Blast run used for determinism checks.
const closDoc = `{
  "simulation": {"seed": 11},
  "network": {
    "topology": "folded_clos", "half_radix": 2, "levels": 2,
    "channel": {"latency": 10, "period": 1},
    "injection": {"latency": 1},
    "router": {
      "architecture": "output_queued", "num_vcs": 1,
      "input_buffer_depth": 32, "queue_latency": 5
    }
  },
  "workload": {"applications": [{
    "type": "blast", "injection_rate": 0.4, "message_size": 4,
    "max_packet_size": 2,
    "warmup_duration": 300, "sample_duration": 2000,
    "traffic": {"type": "uniform_random"}
  }]}
}`

// TestPoolingDeterminism is the guardrail that message pooling never changes
// simulation results: the same configuration and seed must produce identical
// executed-event counts and latency statistics whether messages come from a
// cold-started pool (the first messages are freshly allocated, recycling
// begins as messages retire mid-run) or a pre-warmed pool (every NewMessage
// recycles a retired block from the previous run). A behavioral difference
// here means a reset/reuse bug — some mutable field surviving recycling.
func TestPoolingDeterminism(t *testing.T) {
	run := func(pool *types.Pool) (uint64, stats.Summary) {
		sm := Build(config.MustParse(closDoc))
		if pool != nil {
			sm.Workload.SetPool(pool)
		}
		if _, err := sm.Run(); err != nil {
			t.Fatal(err)
		}
		return sm.Sim.Executed(), sm.Workload.App(0).(*apps.Blast).Stats().Summarize()
	}

	pool := types.NewPool()
	coldEvents, coldSum := run(pool) // cold start: the first messages allocate
	coldStats := pool.Stats()
	if coldStats.Hits >= coldStats.Gets {
		t.Fatalf("cold run allocated nothing (%d gets, %d hits); pool did not start empty",
			coldStats.Gets, coldStats.Hits)
	}
	warmEvents, warmSum := run(pool) // second run: the pool is primed
	st := pool.Stats()
	if warmHits, warmGets := st.Hits-coldStats.Hits, st.Gets-coldStats.Gets; warmHits != warmGets {
		t.Fatalf("warm run allocated %d messages, want 0 (pool was primed)", warmGets-warmHits)
	}
	if st.Releases != st.Gets {
		t.Fatalf("pool leak: %d gets vs %d releases", st.Gets, st.Releases)
	}

	if coldEvents != warmEvents {
		t.Errorf("executed events diverged: cold %d, warm %d", coldEvents, warmEvents)
	}
	if coldSum != warmSum {
		t.Errorf("latency summary diverged:\ncold %+v\nwarm %+v", coldSum, warmSum)
	}

	// A fresh default-pool run must agree too (pooled vs pooled-from-scratch).
	freshEvents, freshSum := run(nil)
	if freshEvents != coldEvents || freshSum != coldSum {
		t.Errorf("fresh-pool run diverged: %d events %+v, want %d events %+v",
			freshEvents, freshSum, coldEvents, coldSum)
	}
}

// TestUnpooledMessagesPassThrough verifies the retirement point tolerates
// messages that did not come from the workload's pool: Release must be a
// no-op for them (tests and external tools inject unpooled messages).
func TestUnpooledReleaseNoOp(t *testing.T) {
	p := types.NewPool()
	m := types.NewMessage(1, 0, 0, 1, 4, 2)
	p.Release(m) // foreign message: ignored
	if st := p.Stats(); st.Releases != 0 {
		t.Fatalf("foreign release recorded: %+v", st)
	}
}

package core

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"supersim/internal/config"
	"supersim/internal/sim"
)

// The checkpoint equivalence harness proves the snapshot format complete: a
// run paused for snapshots is identical to an uninterrupted one, and a run
// killed at a checkpoint and restored from the snapshot — possibly with a
// different worker count — finishes with the committed golden fingerprint.
// Anything the serializer misses (a queue, a counter, a PRNG stream, an
// in-flight flit) perturbs the continuation and shows up as a fingerprint
// diff against the golden.

// checkpointEvery is the snapshot interval for the golden runs. The goldens
// end around tick ~2000, so this yields checkpoints at 500/1000/1500/2000 —
// warmup, the sampling window, and the drain tail all get one.
const checkpointEvery = 500

type snap struct {
	tick sim.Tick
	data []byte
}

// runCheckpointed executes one golden case with a snapshot at every interval
// boundary and returns the run's fingerprint plus the captured snapshots.
func runCheckpointed(t *testing.T, gc goldenCase, workers int) (fingerprint, []snap) {
	t.Helper()
	cfg := config.MustParse(gc.doc)
	if workers > 1 {
		cfg.Set("simulation.workers", uint64(workers))
	}
	sm := Build(cfg)
	var snaps []snap
	res, err := sm.RunCheckpointed(checkpointEvery, func(tick sim.Tick, data []byte) error {
		snaps = append(snaps, snap{tick, append([]byte(nil), data...)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return goldenFingerprint(t, gc, sm, res), snaps
}

// resumeFingerprint restores a snapshot (workers > 0 overrides the snapshot's
// worker count), runs the continuation to completion, and fingerprints it.
func resumeFingerprint(t *testing.T, gc goldenCase, data []byte, workers int) fingerprint {
	t.Helper()
	sm, tick, err := Restore(data, workers)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if tick == 0 {
		t.Fatal("restore reported checkpoint tick 0")
	}
	res, err := sm.Run()
	if err != nil {
		t.Fatalf("restored continuation: %v", err)
	}
	return goldenFingerprint(t, gc, sm, res)
}

// TestCheckpointedRunMatchesGolden proves checkpoint boundaries are invisible:
// a run paused for a snapshot every 500 ticks produces the committed golden
// fingerprint, serial and sharded.
func TestCheckpointedRunMatchesGolden(t *testing.T) {
	for _, workers := range []int{1, 2} {
		for _, gc := range goldenCases() {
			t.Run(fmt.Sprintf("%s_w%d", gc.name, workers), func(t *testing.T) {
				got, snaps := runCheckpointed(t, gc, workers)
				if len(snaps) < 2 {
					t.Fatalf("expected at least 2 checkpoints, got %d", len(snaps))
				}
				if want := loadGolden(t, gc); !reflect.DeepEqual(got, want) {
					t.Fatalf("checkpointed run (workers=%d) diverged from golden:\ngot:  %+v\nwant: %+v",
						workers, got, want)
				}
			})
		}
	}
}

// TestSimulationAfterImport is the import/export oracle: for every golden
// topology, a run checkpointed mid-flight and restored from that snapshot
// must finish byte-identical — same event count, end tick, conservation
// ledger totals, and latency histogram — to the uninterrupted run.
func TestSimulationAfterImport(t *testing.T) {
	for _, workers := range []int{1, 2} {
		for _, gc := range goldenCases() {
			t.Run(fmt.Sprintf("%s_w%d", gc.name, workers), func(t *testing.T) {
				_, snaps := runCheckpointed(t, gc, workers)
				if len(snaps) == 0 {
					t.Fatal("no checkpoints captured")
				}
				// The middle snapshot: traffic in full flight, flits occupying
				// every layer the serializer has to capture.
				mid := snaps[len(snaps)/2]
				got := resumeFingerprint(t, gc, mid.data, 0)
				if want := loadGolden(t, gc); !reflect.DeepEqual(got, want) {
					t.Fatalf("continuation restored at tick %d (workers=%d) diverged from golden:\ngot:  %+v\nwant: %+v",
						mid.tick, workers, got, want)
				}
			})
		}
	}
}

// TestRestoreAcrossWorkerCounts proves snapshots are partition-independent:
// a snapshot taken at one worker count restores into any other with the
// identical golden result.
func TestRestoreAcrossWorkerCounts(t *testing.T) {
	gc := goldenCases()[0]
	want := loadGolden(t, gc)
	for _, snapW := range []int{1, 2} {
		_, snaps := runCheckpointed(t, gc, snapW)
		if len(snaps) == 0 {
			t.Fatal("no checkpoints captured")
		}
		mid := snaps[len(snaps)/2]
		for _, restoreW := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("snap_w%d_restore_w%d", snapW, restoreW), func(t *testing.T) {
				got := resumeFingerprint(t, gc, mid.data, restoreW)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("snapshot at workers=%d restored at workers=%d diverged from golden:\ngot:  %+v\nwant: %+v",
						snapW, restoreW, got, want)
				}
			})
		}
	}
}

// TestSnapshotRoundTrip is the exact export/import identity: restoring a
// snapshot and immediately re-snapshotting at the same tick reproduces the
// original byte-for-byte. Any state the decoder drops, defaults, or reorders
// breaks this before it could show up as a behavioral diff.
func TestSnapshotRoundTrip(t *testing.T) {
	gc := goldenCases()[0]
	for _, workers := range []int{1, 2} {
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			_, snaps := runCheckpointed(t, gc, workers)
			if len(snaps) == 0 {
				t.Fatal("no checkpoints captured")
			}
			for _, s := range snaps {
				sm, tick, err := Restore(s.data, 0)
				if err != nil {
					t.Fatalf("restore at tick %d: %v", s.tick, err)
				}
				if tick != s.tick {
					t.Fatalf("restore reported tick %d, snapshot taken at %d", tick, s.tick)
				}
				again, err := sm.Snapshot(tick)
				if err != nil {
					t.Fatalf("re-snapshot at tick %d: %v", tick, err)
				}
				if !bytes.Equal(again, s.data) {
					t.Fatalf("round-trip at tick %d not byte-identical: %d bytes re-encoded vs %d original",
						tick, len(again), len(s.data))
				}
			}
		})
	}
}

// FuzzRestore feeds arbitrary bytes to Restore: corrupted, truncated, or
// version-skewed snapshots must produce an error, never a panic. The seed
// corpus is a real snapshot from the smallest golden topology plus its
// truncations and a bare magic header.
func FuzzRestore(f *testing.F) {
	gc := goldenCases()[4] // parking_lot: smallest network, smallest snapshot
	sm := Build(config.MustParse(gc.doc))
	var seed []byte
	if _, err := sm.RunCheckpointed(checkpointEvery, func(tick sim.Tick, data []byte) error {
		if seed == nil {
			seed = append([]byte(nil), data...)
		}
		return nil
	}); err != nil {
		f.Fatal(err)
	}
	if seed == nil {
		f.Fatal("no snapshot captured for the fuzz corpus")
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add(seed[:16])
	f.Add([]byte("SSIMSNAP"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sm, _, err := Restore(data, 0)
		if err == nil && sm == nil {
			t.Fatal("Restore returned nil simulation with nil error")
		}
	})
}

package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"supersim/internal/config"
	"supersim/internal/sim"
	"supersim/internal/ssparse"
	"supersim/internal/telemetry"
	"supersim/internal/workload/apps"
)

// runForSamples builds and runs one simulation from doc (plus overrides) and
// returns the sampled-transaction log bytes — the full per-message record
// stream ssparse consumes — plus the flit conservation totals.
func runForSamples(t *testing.T, doc string, overrides []string) (sampleLog []byte, injected, retired uint64, sm *Simulation) {
	t.Helper()
	cfg := config.MustParse(doc)
	if err := cfg.ApplyOverrides(overrides); err != nil {
		t.Fatal(err)
	}
	sm = Build(cfg)
	if _, err := sm.Run(); err != nil {
		t.Fatal(err)
	}
	blast := sm.Workload.App(0).(*apps.Blast)
	var buf bytes.Buffer
	if err := ssparse.Write(&buf, blast.Stats().Samples()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), sm.Verify.Injected(), sm.Verify.Retired(), sm
}

// TestTelemetryObservationOnly is the end-to-end determinism gate for the
// telemetry subsystem: the same seeded simulation run with snapshotting and
// flit tracing fully enabled must produce a byte-identical sampled-transaction
// log (every message's create/receive times, latencies, and hop counts) and
// identical flit conservation totals as the run with telemetry disabled.
//
// Event counts and the final tick are deliberately NOT compared: telemetry's
// periodic snapshot is a daemon event, so the executed-event total includes it
// by design. What must not move is anything the simulation computes.
func TestTelemetryObservationOnly(t *testing.T) {
	gc := goldenCases()[0] // torus tornado, verification enabled
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "telemetry.jsonl")
	tracePath := filepath.Join(dir, "trace.json")
	spansPath := filepath.Join(dir, "spans.jsonl")

	// Both runs have verification on (gc.doc), so the stall diagnostician is
	// armed behind the watchdog in each; the instrumented run additionally
	// enables snapshotting, tracing, and span recording together.
	base, baseInj, baseRet, _ := runForSamples(t, gc.doc, nil)
	tele, teleInj, teleRet, sm := runForSamples(t, gc.doc, []string{
		"simulation.telemetry.enabled=bool=true",
		"simulation.telemetry.bin=uint=250",
		"simulation.telemetry.snapshot_file=string=" + snapPath,
		"simulation.telemetry.trace_file=string=" + tracePath,
		"simulation.telemetry.trace_sample=float=0.5",
		"simulation.telemetry.spans_file=string=" + spansPath,
		"simulation.telemetry.spans_sample=float=0.5",
	})
	if sm.Telemetry == nil {
		t.Fatal("telemetry run did not attach telemetry")
	}

	if !bytes.Equal(base, tele) {
		t.Errorf("sampled-transaction logs differ between telemetry-off (%d bytes) and telemetry-on (%d bytes) runs",
			len(base), len(tele))
	}
	if baseInj != teleInj || baseRet != teleRet {
		t.Errorf("flit conservation totals differ: off=%d/%d on=%d/%d",
			baseInj, baseRet, teleInj, teleRet)
	}

	// The telemetry run must also have produced usable artifacts: a parseable
	// JSONL stream whose baseline bin covers channels, routers, interfaces and
	// the workload, and a valid Chrome trace document.
	sf, err := os.Open(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	metrics := map[string]bool{}
	records := 0
	if err := telemetry.ReadRecords(sf, func(rec telemetry.Record) error {
		metrics[rec.Metric] = true
		records++
		return nil
	}); err != nil {
		t.Fatalf("snapshot stream unreadable: %v", err)
	}
	if records == 0 {
		t.Fatal("snapshot stream is empty")
	}
	for _, m := range []string{"chan_flits", "flits_routed", "iface_flits_sent", "offered_flits", "delivered_flits", "msg_latency"} {
		if !metrics[m] {
			t.Errorf("snapshot stream missing metric %q", m)
		}
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace file has no events at 50%% sampling")
	}
	// Async begin/end events come in pairs: every sampled flit enters and
	// (by flit conservation) leaves the network.
	if len(doc.TraceEvents)%2 != 0 {
		t.Fatalf("trace has %d events, want an even begin/end count", len(doc.TraceEvents))
	}

	// The spans stream must be valid and exact, and its histograms must have
	// reached the registry snapshot stream (the critical-path report).
	spf, err := os.Open(spansPath)
	if err != nil {
		t.Fatal(err)
	}
	defer spf.Close()
	spanRecs := uint64(0)
	if _, err := telemetry.ReadSpans(spf, func(rec telemetry.SpanRecord) error {
		spanRecs++
		if rec.ComponentSum() != rec.E2E {
			t.Errorf("message %d decomposition inexact: %+v", rec.Msg, rec)
		}
		return nil
	}); err != nil {
		t.Fatalf("spans stream unreadable: %v", err)
	}
	if spanRecs == 0 {
		t.Fatal("no span records at 50% sampling")
	}
	if spanRecs != sm.Telemetry.Spans().Records() {
		t.Errorf("spans stream has %d records, recorder counted %d", spanRecs, sm.Telemetry.Spans().Records())
	}
	for _, m := range []string{"span_e2e", "span_queue", "span_eject", "span_wire", "span_vc_alloc"} {
		if !metrics[m] {
			t.Errorf("snapshot stream missing span metric %q", m)
		}
	}
}

// stripEngineLines removes engine_* metric lines from a Prometheus
// exposition. The engine metrics exist only on parallel runs and several
// (rounds, stalls, blocked_ns) are goroutine-schedule- or wall-clock-
// dependent, so cross-worker-count comparisons exclude them; everything the
// simulation computes must match exactly.
func stripEngineLines(prom []byte) []byte {
	var out bytes.Buffer
	for _, line := range bytes.Split(prom, []byte("\n")) {
		if bytes.Contains(line, []byte("engine_")) {
			continue
		}
		out.Write(line)
		out.WriteByte('\n')
	}
	return out.Bytes()
}

// TestShardedObserversByteIdentical is the tentpole gate for shard-aware
// observability: on every golden topology, the Chrome trace JSON, the spans
// JSONL stream, the sampled-transaction log, and the Prometheus exposition
// (minus the engine_* self-metrics) of a parallel run at workers {2,4} must
// be byte-identical to the serial run. Per-shard recording lanes tagged with
// partition-independent event stamps, merged at seal time, are what makes
// this hold.
func TestShardedObserversByteIdentical(t *testing.T) {
	type artifacts struct {
		log, trace, spans, prom []byte
	}
	for _, gc := range goldenCases() {
		t.Run(gc.name, func(t *testing.T) {
			run := func(workers int) artifacts {
				dir := t.TempDir()
				tracePath := filepath.Join(dir, "trace.json")
				spansPath := filepath.Join(dir, "spans.jsonl")
				ov := []string{
					"simulation.telemetry.enabled=bool=true",
					"simulation.telemetry.trace_file=string=" + tracePath,
					"simulation.telemetry.trace_sample=float=0.5",
					"simulation.telemetry.spans_file=string=" + spansPath,
					"simulation.telemetry.spans_sample=float=0.5",
				}
				if workers > 1 {
					ov = append(ov, fmt.Sprintf("simulation.workers=uint=%d", workers))
				}
				log, _, _, sm := runForSamples(t, gc.doc, ov)
				if workers > 1 {
					if sm.Shards == nil {
						t.Fatalf("workers=%d did not produce a parallel partition", workers)
					}
					// The engine introspection must be live on parallel runs:
					// one shard doc per shard, every shard committed to the
					// end, the host shard's windows counted.
					docs := sm.Telemetry.ShardDocs()
					if len(docs) != len(sm.Shards) {
						t.Fatalf("ShardDocs has %d entries, want %d", len(docs), len(sm.Shards))
					}
					for _, d := range docs {
						if d.Windows == 0 {
							t.Errorf("shard %d committed no windows", d.ID)
						}
					}
				} else if len(sm.Telemetry.ShardDocs()) != 0 {
					t.Fatal("serial run has shard docs")
				}
				trace, err := os.ReadFile(tracePath)
				if err != nil {
					t.Fatal(err)
				}
				spans, err := os.ReadFile(spansPath)
				if err != nil {
					t.Fatal(err)
				}
				var pb bytes.Buffer
				if err := sm.Telemetry.Registry().WritePrometheus(&pb); err != nil {
					t.Fatal(err)
				}
				if workers > 1 && !bytes.Contains(pb.Bytes(), []byte("engine_windows")) {
					t.Error("parallel exposition is missing engine_* metrics")
				}
				return artifacts{log: log, trace: trace, spans: spans, prom: stripEngineLines(pb.Bytes())}
			}
			serial := run(1)
			if len(serial.trace) == 0 || len(serial.spans) == 0 {
				t.Fatal("serial run produced empty observer streams")
			}
			for _, w := range []int{2, 4} {
				par := run(w)
				if !bytes.Equal(serial.trace, par.trace) {
					t.Errorf("workers=%d trace differs from serial (%d vs %d bytes)", w, len(par.trace), len(serial.trace))
				}
				if !bytes.Equal(serial.spans, par.spans) {
					t.Errorf("workers=%d spans differ from serial (%d vs %d bytes)", w, len(par.spans), len(serial.spans))
				}
				if !bytes.Equal(serial.log, par.log) {
					t.Errorf("workers=%d sampled-transaction log differs from serial", w)
				}
				if !bytes.Equal(serial.prom, par.prom) {
					t.Errorf("workers=%d Prometheus exposition (minus engine_*) differs from serial", w)
				}
			}
		})
	}
}

// TestEngineMetricsCheckpointRestore pins engine-metric snapshot safety: a
// parallel checkpointed run's engine_* values ride the registry section, a
// restore into the same worker count re-creates them, and an immediate
// re-snapshot at the checkpoint tick is byte-identical — the same
// import/export equivalence the rest of the simulator state obeys. Span
// recording is enabled (fold-only) so the checkpoint barrier also exercises
// lane sealing mid-run.
func TestEngineMetricsCheckpointRestore(t *testing.T) {
	gc := goldenCases()[0]
	cfg := config.MustParse(gc.doc)
	cfg.Set("simulation.workers", uint64(2))
	cfg.Set("simulation.telemetry.enabled", true)
	cfg.Set("simulation.telemetry.spans_sample", 1.0)
	sm := Build(cfg)
	if sm.Shards == nil {
		t.Fatal("workers=2 did not produce a parallel partition")
	}
	type snap struct {
		tick sim.Tick
		data []byte
	}
	var snaps []snap
	if _, err := sm.RunCheckpointed(500, func(tick sim.Tick, data []byte) error {
		snaps = append(snaps, snap{tick, append([]byte(nil), data...)})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("run produced no checkpoints")
	}
	var pb bytes.Buffer
	if err := sm.Telemetry.Registry().WritePrometheus(&pb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(pb.Bytes(), []byte(`supersim_engine_windows{component="shard1"}`)) {
		t.Fatal("parallel run did not register per-shard engine metrics")
	}

	last := snaps[len(snaps)-1]
	rm, tick, err := Restore(last.data, 2)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if tick != last.tick {
		t.Fatalf("restore tick = %d, want %d", tick, last.tick)
	}
	var rb bytes.Buffer
	if err := rm.Telemetry.Registry().WritePrometheus(&rb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(rb.Bytes(), []byte("supersim_engine_")) {
		t.Fatal("restored registry is missing engine_* metrics")
	}
	again, err := rm.Snapshot(tick)
	if err != nil {
		t.Fatalf("re-snapshot: %v", err)
	}
	if !bytes.Equal(last.data, again) {
		t.Fatalf("re-snapshot after restore differs: %d vs %d bytes", len(again), len(last.data))
	}
}

// TestTelemetryProgressDoc checks the run-progress document reflects a
// completed run: final phase "done" and a tick/metric population consistent
// with the simulation that produced it.
func TestTelemetryProgressDoc(t *testing.T) {
	gc := goldenCases()[0]
	_, _, _, sm := runForSamples(t, gc.doc, []string{
		"simulation.telemetry.enabled=bool=true",
		"simulation.telemetry.bin=uint=500",
	})
	p := sm.Telemetry.ProgressDoc()
	if p.Phase != "done" {
		t.Fatalf("final phase = %q, want done", p.Phase)
	}
	if p.Tick == 0 || p.Events == 0 || p.Metrics == 0 {
		t.Fatalf("progress document not populated: %+v", p)
	}
}

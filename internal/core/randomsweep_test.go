package core

import (
	"fmt"
	"math/rand/v2"
	"reflect"
	"testing"

	"supersim/internal/config"
	"supersim/internal/sim"
	"supersim/internal/workload/apps"
)

// TestRandomizedConfigSweep generates a deterministic batch of randomized
// configurations — topology, router architecture, buffer depths, VC counts,
// traffic, load — and runs each with the invariant-verification subsystem
// enabled. Every run must complete the four-phase protocol (drain), deliver
// sampled traffic, and satisfy the flit-conservation ledger. In-order
// delivery is enforced inside the run: the per-terminal OrderChecker panics
// on any out-of-order flit, and quiescence panics on any leak. The PRNG is
// fixed-seeded so failures reproduce exactly.
func TestRandomizedConfigSweep(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xC0FFEE, 42))
	pick := func(vals ...int) int { return vals[rng.IntN(len(vals))] }
	rates := []float64{0.05, 0.1, 0.15, 0.2}

	type gen struct {
		topo string
		net  func() string
	}
	iq := func(vcs, depth int) string {
		return fmt.Sprintf(`"router": {
		  "architecture": "input_queued",
		  "num_vcs": %d,
		  "input_buffer_depth": %d,
		  "crossbar_latency": %d
		}`, vcs, depth, pick(1, 2))
	}
	gens := []gen{
		{"torus", func() string {
			return fmt.Sprintf(`{
			  "topology": "torus",
			  "dimensions": [%d, %d],
			  "concentration": %d,
			  "channel": {"latency": %d, "period": 2},
			  "injection": {"latency": 2},
			  %s
			}`, pick(3, 4, 5), pick(3, 4), pick(1, 2), pick(2, 4), iq(pick(2, 4), pick(4, 8, 16)))
		}},
		{"hyperx", func() string {
			arch := fmt.Sprintf(`"router": {
			  "architecture": "input_output_queued",
			  "num_vcs": %d,
			  "input_buffer_depth": %d,
			  "output_queue_depth": 16,
			  "crossbar_latency": 2
			}`, pick(2, 3), pick(4, 8))
			if rng.IntN(2) == 0 {
				arch = iq(pick(2, 3), pick(4, 8))
			}
			return fmt.Sprintf(`{
			  "topology": "hyperx",
			  "widths": [%d, %d],
			  "concentration": %d,
			  "channel": {"latency": %d, "period": 2},
			  "injection": {"latency": 2},
			  %s,
			  "routing": {"algorithm": "dimension_order"}
			}`, pick(2, 3, 4), pick(2, 3), pick(1, 2), pick(2, 4), arch)
		}},
		{"folded_clos", func() string {
			arch := iq(pick(2, 3), pick(4, 8))
			if rng.IntN(2) == 0 {
				arch = `"router": {
				  "architecture": "output_queued",
				  "num_vcs": 2,
				  "input_buffer_depth": 8,
				  "queue_latency": 2,
				  "output_queue_depth": 0
				}`
			}
			return fmt.Sprintf(`{
			  "topology": "folded_clos",
			  "half_radix": 2,
			  "levels": %d,
			  "channel": {"latency": %d, "period": 2},
			  "injection": {"latency": 2},
			  %s,
			  "routing": {"algorithm": "oblivious_uprouting"}
			}`, pick(2, 3), pick(2, 4), arch)
		}},
		{"dragonfly", func() string {
			return fmt.Sprintf(`{
			  "topology": "dragonfly",
			  "concentration": %d,
			  "group_size": 2,
			  "global_links": 1,
			  "channel": {"latency": %d, "period": 2},
			  "injection": {"latency": 2},
			  %s,
			  "routing": {"algorithm": "%s"}
			}`, pick(1, 2), pick(2, 4), iq(3, pick(8, 16)), []string{"minimal", "valiant"}[rng.IntN(2)])
		}},
		{"parking_lot", func() string {
			return fmt.Sprintf(`{
			  "topology": "parking_lot",
			  "routers": %d,
			  "channel": {"latency": %d, "period": 2},
			  "injection": {"latency": 2},
			  %s
			}`, pick(3, 5, 8), pick(2, 4), iq(pick(1, 2), pick(4, 8)))
		}},
	}

	const runs = 12
	for i := 0; i < runs; i++ {
		g := gens[rng.IntN(len(gens))]
		net := g.net()
		// Alternate worker counts across the sweep so the randomized configs
		// also exercise the sharded parallel engine (including under -race
		// via `make race`); every parallel run is additionally compared
		// against its serial twin below.
		workers := []int{1, 2, 3, 4}[i%4]
		doc := fmt.Sprintf(`{
		  "simulation": {
		    "seed": %d,
		    "verify": {"enabled": true, "watchdog_epoch": 20000}
		  },
		  "network": %s,
		  "workload": {
		    "applications": [{
		      "type": "blast",
		      "injection_rate": %g,
		      "message_size": %d,
		      "max_packet_size": 2,
		      "warmup_duration": 300,
		      "sample_duration": 1000,
		      "traffic": {"type": "uniform_random"}
		    }]
		  }
		}`, rng.Uint64N(1<<20)+1, net, rates[rng.IntN(len(rates))], pick(1, 2, 4))
		t.Run(fmt.Sprintf("run%02d_%s_w%d", i, g.topo, workers), func(t *testing.T) {
			sm := Build(config.MustParse(doc))
			res, err := sm.Run()
			if err != nil {
				t.Fatalf("config:\n%s\nerror: %v", doc, err)
			}
			if !res.Drained {
				t.Fatalf("run did not drain: %+v", res)
			}
			blast := sm.Workload.App(0).(*apps.Blast)
			if blast.Stats().Count() == 0 {
				t.Fatalf("nothing delivered in sample window:\n%s", doc)
			}
			if sm.Verify.Injected() == 0 || sm.Verify.Injected() != sm.Verify.Retired() {
				t.Fatalf("flit conservation: injected %d, retired %d",
					sm.Verify.Injected(), sm.Verify.Retired())
			}
			if sm.Verify.InFlight() != 0 {
				t.Fatalf("%d flits still in flight after drain", sm.Verify.InFlight())
			}
			if workers == 1 {
				return
			}
			// Parallel twin: the same document on the sharded engine must
			// reproduce the serial run exactly — same event count, end tick,
			// conservation totals, and sampled latency distribution.
			pcfg := config.MustParse(doc)
			pcfg.Set("simulation.workers", uint64(workers))
			pm := Build(pcfg)
			if pm.Shards == nil {
				t.Fatalf("workers=%d did not produce a parallel partition", workers)
			}
			pres, err := pm.Run()
			if err != nil {
				t.Fatalf("parallel (workers=%d) config:\n%s\nerror: %v", workers, doc, err)
			}
			if pres != res {
				t.Fatalf("parallel result diverged (workers=%d): serial %+v, parallel %+v",
					workers, res, pres)
			}
			pblast := pm.Workload.App(0).(*apps.Blast)
			if pm.Verify.Injected() != sm.Verify.Injected() || pm.Verify.Retired() != sm.Verify.Retired() {
				t.Fatalf("parallel conservation diverged: serial %d/%d, parallel %d/%d",
					sm.Verify.Injected(), sm.Verify.Retired(), pm.Verify.Injected(), pm.Verify.Retired())
			}
			sh, ph := histogram(blast.Stats().Samples()), histogram(pblast.Stats().Samples())
			if !reflect.DeepEqual(sh, ph) {
				t.Fatalf("parallel latency histogram diverged (workers=%d):\nserial:   %v\nparallel: %v",
					workers, sh, ph)
			}
		})
	}
}

// TestRandomizedCheckpointRestore is the randomized twin of the checkpoint
// equivalence harness: each short randomized configuration runs once
// uninterrupted and once with a snapshot at every 100-tick boundary, then a
// continuation is restored from every captured snapshot — rotating the
// worker-count override through {keep, 1, 2, 4} — and must reproduce the
// uninterrupted run's result, conservation totals, and sampled latency
// histogram exactly. The PRNG is fixed-seeded so failures reproduce.
func TestRandomizedCheckpointRestore(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x5EEDC0DE, 7))
	pick := func(vals ...int) int { return vals[rng.IntN(len(vals))] }
	nets := []func() string{
		func() string {
			return fmt.Sprintf(`{
			  "topology": "torus",
			  "dimensions": [%d, %d],
			  "concentration": 1,
			  "channel": {"latency": %d, "period": 2},
			  "injection": {"latency": 2},
			  "router": {
			    "architecture": "input_queued",
			    "num_vcs": %d,
			    "input_buffer_depth": %d,
			    "crossbar_latency": 2
			  }
			}`, pick(3, 4), pick(3, 4), pick(2, 4), pick(2, 4), pick(4, 8))
		},
		func() string {
			return fmt.Sprintf(`{
			  "topology": "parking_lot",
			  "routers": %d,
			  "channel": {"latency": %d, "period": 2},
			  "injection": {"latency": 2},
			  "router": {
			    "architecture": "input_queued",
			    "num_vcs": 2,
			    "input_buffer_depth": %d,
			    "crossbar_latency": 1
			  }
			}`, pick(3, 5), pick(2, 4), pick(4, 8))
		},
	}
	type signature struct {
		res      Result
		injected uint64
		retired  uint64
		hist     [][2]uint64
	}
	sig := func(sm *Simulation, res Result) signature {
		blast := sm.Workload.App(0).(*apps.Blast)
		return signature{res, sm.Verify.Injected(), sm.Verify.Retired(),
			histogram(blast.Stats().Samples())}
	}
	const runs = 4
	for i := 0; i < runs; i++ {
		doc := fmt.Sprintf(`{
		  "simulation": {
		    "seed": %d,
		    "workers": %d,
		    "verify": {"enabled": true, "watchdog_epoch": 20000}
		  },
		  "network": %s,
		  "workload": {
		    "applications": [{
		      "type": "blast",
		      "injection_rate": %g,
		      "message_size": %d,
		      "max_packet_size": 2,
		      "warmup_duration": 150,
		      "sample_duration": 400,
		      "traffic": {"type": "uniform_random"}
		    }]
		  }
		}`, rng.Uint64N(1<<20)+1, pick(1, 2), nets[i%len(nets)](),
			[]float64{0.05, 0.1, 0.15}[rng.IntN(3)], pick(1, 2, 4))
		t.Run(fmt.Sprintf("run%02d", i), func(t *testing.T) {
			base := Build(config.MustParse(doc))
			bres, err := base.Run()
			if err != nil {
				t.Fatalf("config:\n%s\nerror: %v", doc, err)
			}
			want := sig(base, bres)

			type snap struct {
				tick sim.Tick
				data []byte
			}
			var snaps []snap
			ck := Build(config.MustParse(doc))
			cres, err := ck.RunCheckpointed(100, func(tick sim.Tick, data []byte) error {
				snaps = append(snaps, snap{tick, append([]byte(nil), data...)})
				return nil
			})
			if err != nil {
				t.Fatalf("checkpointed run: %v", err)
			}
			if got := sig(ck, cres); !reflect.DeepEqual(got, want) {
				t.Fatalf("checkpointed run diverged:\ngot:  %+v\nwant: %+v", got, want)
			}
			if len(snaps) == 0 {
				t.Fatal("no checkpoints captured")
			}
			for j, s := range snaps {
				workers := []int{0, 1, 2, 4}[j%4]
				rm, tick, err := Restore(s.data, workers)
				if err != nil {
					t.Fatalf("restore at tick %d (workers=%d): %v", s.tick, workers, err)
				}
				if tick != s.tick {
					t.Fatalf("restore reported tick %d, snapshot taken at %d", tick, s.tick)
				}
				rres, err := rm.Run()
				if err != nil {
					t.Fatalf("continuation from tick %d (workers=%d): %v", s.tick, workers, err)
				}
				if got := sig(rm, rres); !reflect.DeepEqual(got, want) {
					t.Fatalf("continuation from tick %d (workers=%d) diverged:\ngot:  %+v\nwant: %+v",
						s.tick, workers, got, want)
				}
			}
		})
	}
}

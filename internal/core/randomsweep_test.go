package core

import (
	"fmt"
	"math/rand/v2"
	"reflect"
	"testing"

	"supersim/internal/config"
	"supersim/internal/workload/apps"
)

// TestRandomizedConfigSweep generates a deterministic batch of randomized
// configurations — topology, router architecture, buffer depths, VC counts,
// traffic, load — and runs each with the invariant-verification subsystem
// enabled. Every run must complete the four-phase protocol (drain), deliver
// sampled traffic, and satisfy the flit-conservation ledger. In-order
// delivery is enforced inside the run: the per-terminal OrderChecker panics
// on any out-of-order flit, and quiescence panics on any leak. The PRNG is
// fixed-seeded so failures reproduce exactly.
func TestRandomizedConfigSweep(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xC0FFEE, 42))
	pick := func(vals ...int) int { return vals[rng.IntN(len(vals))] }
	rates := []float64{0.05, 0.1, 0.15, 0.2}

	type gen struct {
		topo string
		net  func() string
	}
	iq := func(vcs, depth int) string {
		return fmt.Sprintf(`"router": {
		  "architecture": "input_queued",
		  "num_vcs": %d,
		  "input_buffer_depth": %d,
		  "crossbar_latency": %d
		}`, vcs, depth, pick(1, 2))
	}
	gens := []gen{
		{"torus", func() string {
			return fmt.Sprintf(`{
			  "topology": "torus",
			  "dimensions": [%d, %d],
			  "concentration": %d,
			  "channel": {"latency": %d, "period": 2},
			  "injection": {"latency": 2},
			  %s
			}`, pick(3, 4, 5), pick(3, 4), pick(1, 2), pick(2, 4), iq(pick(2, 4), pick(4, 8, 16)))
		}},
		{"hyperx", func() string {
			arch := fmt.Sprintf(`"router": {
			  "architecture": "input_output_queued",
			  "num_vcs": %d,
			  "input_buffer_depth": %d,
			  "output_queue_depth": 16,
			  "crossbar_latency": 2
			}`, pick(2, 3), pick(4, 8))
			if rng.IntN(2) == 0 {
				arch = iq(pick(2, 3), pick(4, 8))
			}
			return fmt.Sprintf(`{
			  "topology": "hyperx",
			  "widths": [%d, %d],
			  "concentration": %d,
			  "channel": {"latency": %d, "period": 2},
			  "injection": {"latency": 2},
			  %s,
			  "routing": {"algorithm": "dimension_order"}
			}`, pick(2, 3, 4), pick(2, 3), pick(1, 2), pick(2, 4), arch)
		}},
		{"folded_clos", func() string {
			arch := iq(pick(2, 3), pick(4, 8))
			if rng.IntN(2) == 0 {
				arch = `"router": {
				  "architecture": "output_queued",
				  "num_vcs": 2,
				  "input_buffer_depth": 8,
				  "queue_latency": 2,
				  "output_queue_depth": 0
				}`
			}
			return fmt.Sprintf(`{
			  "topology": "folded_clos",
			  "half_radix": 2,
			  "levels": %d,
			  "channel": {"latency": %d, "period": 2},
			  "injection": {"latency": 2},
			  %s,
			  "routing": {"algorithm": "oblivious_uprouting"}
			}`, pick(2, 3), pick(2, 4), arch)
		}},
		{"dragonfly", func() string {
			return fmt.Sprintf(`{
			  "topology": "dragonfly",
			  "concentration": %d,
			  "group_size": 2,
			  "global_links": 1,
			  "channel": {"latency": %d, "period": 2},
			  "injection": {"latency": 2},
			  %s,
			  "routing": {"algorithm": "%s"}
			}`, pick(1, 2), pick(2, 4), iq(3, pick(8, 16)), []string{"minimal", "valiant"}[rng.IntN(2)])
		}},
		{"parking_lot", func() string {
			return fmt.Sprintf(`{
			  "topology": "parking_lot",
			  "routers": %d,
			  "channel": {"latency": %d, "period": 2},
			  "injection": {"latency": 2},
			  %s
			}`, pick(3, 5, 8), pick(2, 4), iq(pick(1, 2), pick(4, 8)))
		}},
	}

	const runs = 12
	for i := 0; i < runs; i++ {
		g := gens[rng.IntN(len(gens))]
		net := g.net()
		// Alternate worker counts across the sweep so the randomized configs
		// also exercise the sharded parallel engine (including under -race
		// via `make race`); every parallel run is additionally compared
		// against its serial twin below.
		workers := []int{1, 2, 3, 4}[i%4]
		doc := fmt.Sprintf(`{
		  "simulation": {
		    "seed": %d,
		    "verify": {"enabled": true, "watchdog_epoch": 20000}
		  },
		  "network": %s,
		  "workload": {
		    "applications": [{
		      "type": "blast",
		      "injection_rate": %g,
		      "message_size": %d,
		      "max_packet_size": 2,
		      "warmup_duration": 300,
		      "sample_duration": 1000,
		      "traffic": {"type": "uniform_random"}
		    }]
		  }
		}`, rng.Uint64N(1<<20)+1, net, rates[rng.IntN(len(rates))], pick(1, 2, 4))
		t.Run(fmt.Sprintf("run%02d_%s_w%d", i, g.topo, workers), func(t *testing.T) {
			sm := Build(config.MustParse(doc))
			res, err := sm.Run()
			if err != nil {
				t.Fatalf("config:\n%s\nerror: %v", doc, err)
			}
			if !res.Drained {
				t.Fatalf("run did not drain: %+v", res)
			}
			blast := sm.Workload.App(0).(*apps.Blast)
			if blast.Stats().Count() == 0 {
				t.Fatalf("nothing delivered in sample window:\n%s", doc)
			}
			if sm.Verify.Injected() == 0 || sm.Verify.Injected() != sm.Verify.Retired() {
				t.Fatalf("flit conservation: injected %d, retired %d",
					sm.Verify.Injected(), sm.Verify.Retired())
			}
			if sm.Verify.InFlight() != 0 {
				t.Fatalf("%d flits still in flight after drain", sm.Verify.InFlight())
			}
			if workers == 1 {
				return
			}
			// Parallel twin: the same document on the sharded engine must
			// reproduce the serial run exactly — same event count, end tick,
			// conservation totals, and sampled latency distribution.
			pcfg := config.MustParse(doc)
			pcfg.Set("simulation.workers", uint64(workers))
			pm := Build(pcfg)
			if pm.Shards == nil {
				t.Fatalf("workers=%d did not produce a parallel partition", workers)
			}
			pres, err := pm.Run()
			if err != nil {
				t.Fatalf("parallel (workers=%d) config:\n%s\nerror: %v", workers, doc, err)
			}
			if pres != res {
				t.Fatalf("parallel result diverged (workers=%d): serial %+v, parallel %+v",
					workers, res, pres)
			}
			pblast := pm.Workload.App(0).(*apps.Blast)
			if pm.Verify.Injected() != sm.Verify.Injected() || pm.Verify.Retired() != sm.Verify.Retired() {
				t.Fatalf("parallel conservation diverged: serial %d/%d, parallel %d/%d",
					sm.Verify.Injected(), sm.Verify.Retired(), pm.Verify.Injected(), pm.Verify.Retired())
			}
			sh, ph := histogram(blast.Stats().Samples()), histogram(pblast.Stats().Samples())
			if !reflect.DeepEqual(sh, ph) {
				t.Fatalf("parallel latency histogram diverged (workers=%d):\nserial:   %v\nparallel: %v",
					workers, sh, ph)
			}
		})
	}
}

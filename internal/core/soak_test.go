package core

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"supersim/internal/config"
	"supersim/internal/stats"
)

// TestRandomConfigSoak runs many randomized small configurations end to end.
// Every run must complete the four-phase protocol, deliver every sampled
// message, conserve flits (sent == received network-wide) and leave every
// router and interface quiescent (checked by Run itself). This is the
// failure-injection net that catches interaction bugs the targeted tests
// miss.
func TestRandomConfigSoak(t *testing.T) {
	rng := rand.New(rand.NewPCG(2024, 7))
	pick := func(xs ...string) string { return xs[rng.IntN(len(xs))] }
	runs := 25
	if testing.Short() {
		runs = 6
	}
	for i := 0; i < runs; i++ {
		arch := pick("input_queued", "input_output_queued", "output_queued")
		fc := pick("flit_buffer", "packet_buffer", "winner_take_all")
		pol := pick("round_robin", "age_based", "random")
		vcpol := pick("round_robin", "age_based")
		gran := pick("vc", "port")
		src := pick("output", "downstream", "both")
		vcs := 2 * (1 + rng.IntN(2)) // 2 or 4
		msg := 1 + rng.IntN(6)
		maxPkt := 1 + rng.IntN(msg)
		rate := 0.05 + rng.Float64()*0.4
		seed := rng.Uint64()

		topo := ""
		switch pick("torus", "hyperx", "folded_clos", "dragonfly", "parking_lot") {
		case "torus":
			topo = fmt.Sprintf(`"topology": "torus", "dimensions": [%d, %d], "concentration": %d`,
				2+rng.IntN(3), 2+rng.IntN(3), 1+rng.IntN(2))
		case "hyperx":
			if rng.IntN(2) == 0 {
				topo = fmt.Sprintf(`"topology": "hyperx", "widths": [%d], "concentration": %d,
				  "routing": {"algorithm": "%s"}`,
					3+rng.IntN(4), 1+rng.IntN(3), pick("dimension_order", "valiant", "ugal"))
			} else {
				topo = fmt.Sprintf(`"topology": "hyperx", "widths": [%d, %d], "concentration": 1,
				  "routing": {"algorithm": "%s"}`,
					2+rng.IntN(3), 2+rng.IntN(3), pick("dimension_order", "ugal"))
			}
		case "folded_clos":
			topo = fmt.Sprintf(`"topology": "folded_clos", "half_radix": 2, "levels": %d,
			  "routing": {"algorithm": "%s"}`,
				2+rng.IntN(2), pick("adaptive_uprouting", "oblivious_uprouting"))
		case "dragonfly":
			topo = fmt.Sprintf(`"topology": "dragonfly", "concentration": 2, "group_size": 2, "global_links": 1,
			  "routing": {"algorithm": "%s"}`, pick("minimal", "valiant", "ugal"))
			vcs = 3
		case "parking_lot":
			topo = fmt.Sprintf(`"topology": "parking_lot", "routers": %d`, 3+rng.IntN(3))
		}

		doc := fmt.Sprintf(`{
		  "simulation": {"seed": %d},
		  "network": {
		    %s,
		    "channel": {"latency": %d, "period": 2},
		    "injection": {"latency": 2},
		    "router": {
		      "architecture": "%s",
		      "num_vcs": %d,
		      "input_buffer_depth": %d,
		      "crossbar_latency": %d,
		      "queue_latency": %d,
		      "output_queue_depth": %d,
		      "flow_control": "%s",
		      "crossbar_policy": "%s",
		      "vc_policy": "%s",
		      "speedup": %d,
		      "congestion_sensor": {"granularity": "%s", "source": "%s", "latency": %d}
		    }
		  },
		  "workload": {
		    "applications": [{
		      "type": "blast",
		      "injection_rate": %.3f,
		      "message_size": %d,
		      "max_packet_size": %d,
		      "warmup_duration": 300,
		      "sample_duration": 800,
		      "traffic": {"type": "uniform_random"}
		    }]
		  }
		}`, seed, topo, 2+rng.IntN(10), arch, vcs, 8+rng.IntN(24),
			1+rng.IntN(6), 1+rng.IntN(6), 16+rng.IntN(32), fc, pol, vcpol,
			1+rng.IntN(2), gran, src, rng.IntN(8), rate, msg, maxPkt)

		label := fmt.Sprintf("run %d (%s/%s/%s vcs=%d msg=%d)", i, arch, fc, pol, vcs, msg)
		sm, err := BuildE(config.MustParse(doc))
		if err != nil {
			t.Fatalf("%s: build: %v\nconfig: %s", label, err, doc)
		}
		if _, err := sm.Run(); err != nil {
			t.Fatalf("%s: run: %v", label, err)
		}
		// Flit conservation across the whole network.
		var sent, recv uint64
		for ti := 0; ti < sm.Net.NumTerminals(); ti++ {
			sent += sm.Net.Interface(ti).FlitsSent()
			recv += sm.Net.Interface(ti).FlitsReceived()
		}
		if sent != recv {
			t.Fatalf("%s: flit conservation violated: sent %d received %d", label, sent, recv)
		}
		if sm.Workload.App(0).(stats.Provider).Stats().Count() == 0 {
			t.Fatalf("%s: no sampled messages", label)
		}
	}
}

package core

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"supersim/internal/telemetry"
)

// spansDoc assembles a Figure-5-style settings document (torus under tornado
// traffic, verification enabled) around one router block, so the span
// decomposition property can be checked on every router architecture.
func spansDoc(routerBlock string) string {
	return fmt.Sprintf(`{
	  "simulation": {
	    "seed": 777,
	    "verify": {"enabled": true, "watchdog_epoch": 10000}
	  },
	  "network": {
	    "topology": "torus",
	    "dimensions": [4, 4],
	    "concentration": 1,
	    "channel": {"latency": 4, "period": 2},
	    "injection": {"latency": 2},
	    "router": %s
	  },
	  "workload": {
	    "applications": [{
	      "type": "blast",
	      "injection_rate": 0.25,
	      "message_size": 4,
	      "max_packet_size": 2,
	      "warmup_duration": 400,
	      "sample_duration": 1200,
	      "traffic": {"type": "tornado", "widths": [4, 4], "concentration": 1}
	    }]
	  }
	}`, routerBlock)
}

// TestSpanDecompositionExact is the span recorder's property test: with every
// message sampled, each emitted record's components must sum exactly to the
// message's end-to-end latency — no unattributed ticks — on all three router
// architectures. (The recorder itself panics on an inexact decomposition at
// Finish; this test additionally confirms the property survives JSONL
// serialization and that the stream is complete and well-formed.)
func TestSpanDecompositionExact(t *testing.T) {
	archs := []struct {
		name, router string
	}{
		{"input_queued", `{
		  "architecture": "input_queued",
		  "num_vcs": 4,
		  "input_buffer_depth": 8,
		  "crossbar_latency": 2
		}`},
		{"output_queued", `{
		  "architecture": "output_queued",
		  "num_vcs": 4,
		  "input_buffer_depth": 8,
		  "queue_latency": 2,
		  "output_queue_depth": 16
		}`},
		{"input_output_queued", `{
		  "architecture": "input_output_queued",
		  "num_vcs": 4,
		  "input_buffer_depth": 8,
		  "crossbar_latency": 2,
		  "output_queue_depth": 8,
		  "speedup": 2
		}`},
	}
	for _, arch := range archs {
		t.Run(arch.name, func(t *testing.T) {
			spansPath := filepath.Join(t.TempDir(), "spans.jsonl")
			_, _, _, sm := runForSamples(t, spansDoc(arch.router), []string{
				"simulation.telemetry.enabled=bool=true",
				"simulation.telemetry.spans_file=string=" + spansPath,
				"simulation.telemetry.spans_sample=float=1.0",
			})
			sp := sm.Telemetry.Spans()
			if sp == nil {
				t.Fatal("span recorder not attached")
			}
			f, err := os.Open(spansPath)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			records := uint64(0)
			hdr, err := telemetry.ReadSpans(f, func(rec telemetry.SpanRecord) error {
				records++
				if got := rec.ComponentSum(); got != rec.E2E {
					t.Errorf("message %d: components sum to %d, end-to-end latency is %d (%+v)",
						rec.Msg, got, rec.E2E, rec)
				}
				if rec.Hops != len(rec.PerHop)-1 {
					t.Errorf("message %d: hops %d != len(perhop)-1 = %d", rec.Msg, rec.Hops, len(rec.PerHop)-1)
				}
				if rec.Hops < 1 {
					t.Errorf("message %d traversed no routers", rec.Msg)
				}
				// Hop 0 is the source interface: it has no router pipeline, so
				// only the injection link's wire time may be charged there.
				if h := rec.PerHop[0]; h.VCAlloc != 0 || h.SWAlloc != 0 || h.Xbar != 0 || h.Output != 0 {
					t.Errorf("message %d: router stages charged to the source interface hop: %+v", rec.Msg, h)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("spans stream unreadable: %v", err)
			}
			if hdr.Sample != 1.0 {
				t.Errorf("header sample = %v, want 1.0", hdr.Sample)
			}
			if records == 0 {
				t.Fatal("no span records at full sampling")
			}
			if records != sp.Records() {
				t.Errorf("stream has %d records, recorder counted %d", records, sp.Records())
			}
		})
	}
}

// TestSpansSchemaRejection covers the stream-versioning contract: ReadSpans
// must reject a stream with a different schema name or version, and a stream
// with no header at all.
func TestSpansSchemaRejection(t *testing.T) {
	cases := map[string]string{
		"wrong schema":  `{"schema":"something-else","version":1,"sample":1}`,
		"wrong version": `{"schema":"supersim-spans","version":999,"sample":1}`,
		"no header":     ``,
	}
	for name, hdr := range cases {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "spans.jsonl")
			if err := os.WriteFile(path, []byte(hdr+"\n"), 0o644); err != nil {
				t.Fatal(err)
			}
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := telemetry.ReadSpans(f, func(telemetry.SpanRecord) error { return nil }); err == nil {
				t.Fatal("incompatible stream accepted")
			}
		})
	}
}

package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"supersim/internal/config"
	"supersim/internal/stats"
	"supersim/internal/workload/apps"
)

// The golden-trace conformance harness runs one small seeded simulation per
// topology — with the invariant-verification subsystem enabled — and compares
// a behavioral fingerprint (event count, end tick, flit conservation totals,
// and the full latency histogram) against a committed golden file. Any change
// to event ordering, routing, arbitration, credit flow, or timing shows up as
// a fingerprint diff; TESTING.md describes when and how to regenerate.
//
// Regenerate after an intentional behavioral change with:
//
//	SUPERSIM_UPDATE_GOLDEN=1 go test ./internal/core -run TestGoldenTraces

const updateEnv = "SUPERSIM_UPDATE_GOLDEN"

// latencyBin is the histogram bin width in ticks. Coarse enough to keep the
// goldens readable, fine enough that any systematic latency shift moves
// counts between bins.
const latencyBin = 32

// fingerprint is the committed behavioral signature of one golden run.
type fingerprint struct {
	Topology      string      `json:"topology"`
	Traffic       string      `json:"traffic"`
	Events        uint64      `json:"events"`
	EndTick       uint64      `json:"end_tick"`
	Samples       int         `json:"samples"`
	FlitsInjected uint64      `json:"flits_injected"`
	FlitsRetired  uint64      `json:"flits_retired"`
	TotalHops     uint64      `json:"total_hops"`
	LatencyHist   [][2]uint64 `json:"latency_histogram"` // [bin*latencyBin, count], sorted
}

// histogram bins the sampled message latencies.
func histogram(samples []stats.Sample) [][2]uint64 {
	counts := map[uint64]uint64{}
	var maxBin uint64
	for _, s := range samples {
		bin := uint64(s.Latency()) / latencyBin
		counts[bin]++
		if bin > maxBin {
			maxBin = bin
		}
	}
	var out [][2]uint64
	for bin := uint64(0); bin <= maxBin; bin++ {
		if c := counts[bin]; c > 0 {
			out = append(out, [2]uint64{bin * latencyBin, c})
		}
	}
	return out
}

type goldenCase struct {
	name    string
	topo    string
	traffic string
	doc     string
}

// goldenDoc assembles a full settings document with verification enabled.
// Every topology gets a representative traffic pattern: tornado on the torus
// (the pattern it is most sensitive to), bit-complement on HyperX, hotspot on
// the parking lot chain (the pattern the topology exists for), and uniform
// random on the hierarchical topologies.
func goldenDoc(network, traffic string, rate float64) string {
	return fmt.Sprintf(`{
	  "simulation": {
	    "seed": 12345,
	    "verify": {"enabled": true, "watchdog_epoch": 10000}
	  },
	  "network": %s,
	  "workload": {
	    "applications": [{
	      "type": "blast",
	      "injection_rate": %g,
	      "message_size": 4,
	      "max_packet_size": 2,
	      "warmup_duration": 400,
	      "sample_duration": 1500,
	      "traffic": %s
	    }]
	  }
	}`, network, rate, traffic)
}

func goldenCases() []goldenCase {
	iqRouter := `"router": {
	  "architecture": "input_queued",
	  "num_vcs": %d,
	  "input_buffer_depth": 8,
	  "crossbar_latency": 2
	}`
	cases := []goldenCase{
		{
			name: "torus_tornado", topo: "torus",
			traffic: `{"type": "tornado", "widths": [4, 4], "concentration": 1}`,
			doc: goldenDoc(`{
			  "topology": "torus",
			  "dimensions": [4, 4],
			  "concentration": 1,
			  "channel": {"latency": 4, "period": 2},
			  "injection": {"latency": 2},
			  `+fmt.Sprintf(iqRouter, 4)+`
			}`, `{"type": "tornado", "widths": [4, 4], "concentration": 1}`, 0.2),
		},
		{
			name: "folded_clos_uniform", topo: "folded_clos",
			traffic: `{"type": "uniform_random"}`,
			doc: goldenDoc(`{
			  "topology": "folded_clos",
			  "half_radix": 2,
			  "levels": 3,
			  "channel": {"latency": 4, "period": 2},
			  "injection": {"latency": 2},
			  `+fmt.Sprintf(iqRouter, 2)+`,
			  "routing": {"algorithm": "oblivious_uprouting"}
			}`, `{"type": "uniform_random"}`, 0.15),
		},
		{
			name: "hyperx_bit_complement", topo: "hyperx",
			traffic: `{"type": "bit_complement"}`,
			doc: goldenDoc(`{
			  "topology": "hyperx",
			  "widths": [4, 4],
			  "concentration": 1,
			  "channel": {"latency": 4, "period": 2},
			  "injection": {"latency": 2},
			  `+fmt.Sprintf(iqRouter, 2)+`,
			  "routing": {"algorithm": "dimension_order"}
			}`, `{"type": "bit_complement"}`, 0.2),
		},
		{
			name: "dragonfly_uniform", topo: "dragonfly",
			traffic: `{"type": "uniform_random"}`,
			doc: goldenDoc(`{
			  "topology": "dragonfly",
			  "concentration": 2,
			  "group_size": 2,
			  "global_links": 1,
			  "channel": {"latency": 4, "period": 2},
			  "injection": {"latency": 2},
			  `+fmt.Sprintf(iqRouter, 3)+`,
			  "routing": {"algorithm": "ugal"}
			}`, `{"type": "uniform_random"}`, 0.1),
		},
		{
			name: "parking_lot_hotspot", topo: "parking_lot",
			traffic: `{"type": "hotspot", "destination": 0, "fraction": 0.5}`,
			doc: goldenDoc(`{
			  "topology": "parking_lot",
			  "routers": 6,
			  "channel": {"latency": 4, "period": 2},
			  "injection": {"latency": 2},
			  `+fmt.Sprintf(iqRouter, 2)+`
			}`, `{"type": "hotspot", "destination": 0, "fraction": 0.5}`, 0.1),
		},
	}
	return cases
}

// runGolden executes one golden case and returns its fingerprint.
func runGolden(t *testing.T, gc goldenCase) fingerprint {
	return runGoldenWorkers(t, gc, 1)
}

// runGoldenWorkers executes one golden case with the given worker count and
// returns its fingerprint. workers > 1 runs the sharded parallel engine,
// which must produce a byte-identical fingerprint.
func runGoldenWorkers(t *testing.T, gc goldenCase, workers int) fingerprint {
	t.Helper()
	cfg := config.MustParse(gc.doc)
	if workers > 1 {
		cfg.Set("simulation.workers", uint64(workers))
	}
	sm := Build(cfg)
	if workers > 1 && sm.Shards == nil {
		t.Fatalf("workers=%d did not produce a parallel partition", workers)
	}
	if sm.Verify == nil {
		t.Fatal("golden runs must have verification enabled")
	}
	res, err := sm.Run()
	if err != nil {
		t.Fatal(err)
	}
	return goldenFingerprint(t, gc, sm, res)
}

// goldenFingerprint extracts the behavioral signature from a completed run:
// result counters, verifier conservation totals, and the sampled latency
// histogram. The checkpoint harness shares it so restored continuations are
// fingerprinted exactly like uninterrupted runs.
func goldenFingerprint(t *testing.T, gc goldenCase, sm *Simulation, res Result) fingerprint {
	t.Helper()
	blast := sm.Workload.App(0).(*apps.Blast)
	samples := blast.Stats().Samples()
	if len(samples) == 0 {
		t.Fatal("no samples recorded")
	}
	var hops uint64
	for _, s := range samples {
		hops += uint64(s.Hops)
	}
	return fingerprint{
		Topology:      gc.topo,
		Traffic:       gc.traffic,
		Events:        res.Events,
		EndTick:       uint64(res.EndTick),
		Samples:       len(samples),
		FlitsInjected: sm.Verify.Injected(),
		FlitsRetired:  sm.Verify.Retired(),
		TotalHops:     hops,
		LatencyHist:   histogram(samples),
	}
}

// loadGolden reads the committed golden fingerprint for one case.
func loadGolden(t *testing.T, gc goldenCase) fingerprint {
	t.Helper()
	path := filepath.Join("testdata", "golden", gc.name+".json")
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with %s=1 to create): %v", updateEnv, err)
	}
	var want fingerprint
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("corrupt golden %s: %v", path, err)
	}
	return want
}

func TestGoldenTraces(t *testing.T) {
	for _, gc := range goldenCases() {
		t.Run(gc.name, func(t *testing.T) {
			got := runGolden(t, gc)
			if got.FlitsInjected != got.FlitsRetired {
				t.Fatalf("flit conservation: injected %d != retired %d",
					got.FlitsInjected, got.FlitsRetired)
			}
			path := filepath.Join("testdata", "golden", gc.name+".json")
			if os.Getenv(updateEnv) != "" {
				buf, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s", path)
				return
			}
			buf, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with %s=1 to create): %v", updateEnv, err)
			}
			var want fingerprint
			if err := json.Unmarshal(buf, &want); err != nil {
				t.Fatalf("corrupt golden %s: %v", path, err)
			}
			if !reflect.DeepEqual(got, want) {
				gb, _ := json.MarshalIndent(got, "", "  ")
				t.Fatalf("fingerprint drifted from %s\ngot:\n%s\n\nIf this change is intentional, regenerate with %s=1.",
					path, gb, updateEnv)
			}
		})
	}
}

// TestGoldenTracesParallel runs every committed golden topology on the
// sharded parallel engine at workers 2 and 4 and requires the fingerprint to
// be byte-identical to the committed (serial) golden — the parallel/serial
// equivalence oracle. The fingerprint covers event counts, end tick, flit
// conservation totals, and the full sampled latency histogram, so any
// divergence in event ordering, routing decisions, or timing between the
// serial loop and the conservative engine fails here.
func TestGoldenTracesParallel(t *testing.T) {
	if os.Getenv(updateEnv) != "" {
		t.Skip("golden update runs are serial-only")
	}
	for _, workers := range []int{2, 4} {
		for _, gc := range goldenCases() {
			t.Run(fmt.Sprintf("%s_w%d", gc.name, workers), func(t *testing.T) {
				got := runGoldenWorkers(t, gc, workers)
				path := filepath.Join("testdata", "golden", gc.name+".json")
				buf, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden (run with %s=1 to create): %v", updateEnv, err)
				}
				var want fingerprint
				if err := json.Unmarshal(buf, &want); err != nil {
					t.Fatalf("corrupt golden %s: %v", path, err)
				}
				if !reflect.DeepEqual(got, want) {
					gb, _ := json.MarshalIndent(got, "", "  ")
					t.Fatalf("parallel run (workers=%d) diverged from serial golden %s\ngot:\n%s",
						workers, path, gb)
				}
			})
		}
	}
}

// TestGoldenTracesDeterministic re-runs one golden case and requires the
// fingerprints to be identical: the conformance harness is only meaningful if
// a run is a pure function of its settings document.
func TestGoldenTracesDeterministic(t *testing.T) {
	gc := goldenCases()[0]
	a := runGolden(t, gc)
	b := runGolden(t, gc)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two runs of %s disagree:\n%+v\n%+v", gc.name, a, b)
	}
}

package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"supersim/internal/config"
	"supersim/internal/sim"
)

// smallSnapshot captures one snapshot of the smallest golden topology.
func smallSnapshot(t *testing.T) []byte {
	t.Helper()
	gc := goldenCases()[4] // parking_lot
	sm := Build(config.MustParse(gc.doc))
	var seed []byte
	if _, err := sm.RunCheckpointed(checkpointEvery, func(tick sim.Tick, data []byte) error {
		if seed == nil {
			seed = append([]byte(nil), data...)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if seed == nil {
		t.Fatal("no snapshot captured")
	}
	return seed
}

func TestConfigAccessor(t *testing.T) {
	cfg := config.MustParse(goldenCases()[4].doc)
	sm := Build(cfg)
	if sm.Config() != cfg {
		t.Fatal("Config() does not return the build settings")
	}
}

func TestRestoreRejectsCorruption(t *testing.T) {
	data := smallSnapshot(t)

	if _, _, err := Restore([]byte("not a snapshot at all"), 0); err == nil {
		t.Fatal("garbage header restored without error")
	}

	// Corrupt the embedded config document (it sits right after the header
	// and section tag, as a length-prefixed blob) so Build's input is invalid
	// JSON: Restore must report a config error, not panic.
	idx := bytes.Index(data, []byte(`"topology"`))
	if idx < 0 {
		t.Fatal("embedded config not found in snapshot")
	}
	bad := append([]byte(nil), data...)
	bad[idx] = 'X'
	if _, _, err := Restore(bad, 0); err == nil ||
		!strings.Contains(err.Error(), "config") {
		t.Fatalf("corrupted config: err = %v", err)
	}

	// Every strict prefix must fail cleanly, whichever section it lands in.
	for n := 0; n < len(data); n += 1 + len(data)/64 {
		if _, _, err := Restore(data[:n], 0); err == nil {
			t.Fatalf("truncation to %d of %d bytes restored without error", n, len(data))
		}
	}
}

func TestRunCheckpointedErrors(t *testing.T) {
	build := func(workers int) *Simulation {
		cfg := config.MustParse(goldenCases()[4].doc)
		if workers > 1 {
			cfg.Set("simulation.workers", uint64(workers))
		}
		return Build(cfg)
	}

	if _, err := build(1).RunCheckpointed(0, func(sim.Tick, []byte) error { return nil }); err == nil ||
		!strings.Contains(err.Error(), "interval") {
		t.Fatalf("zero interval: err = %v", err)
	}

	// A sink failure aborts the run, on both the serial and sharded paths.
	for _, workers := range []int{1, 2} {
		sm := build(workers)
		boom := fmt.Errorf("sink failed")
		if _, err := sm.RunCheckpointed(checkpointEvery, func(sim.Tick, []byte) error { return boom }); err != boom {
			t.Fatalf("workers=%d: err = %v, want the sink's error", workers, err)
		}
	}
}

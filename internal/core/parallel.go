// Parallel assembly: partitioning a built simulation into shards driven by
// the conservative engine in internal/sim.
//
// The partition is topology-aware but workload-agnostic:
//
//   - Shard 0 (the "host" shard) keeps the workload, all applications, all
//     interfaces, the message pool, and every daemon observer (verify
//     watchdog, telemetry snapshots, progress monitor). These components are
//     coupled synchronously — message demux, the four-phase handshake, and
//     pool recycling all run as plain calls with zero latency — so they must
//     share one event queue.
//   - Router shards 1..N-1 each own a contiguous slice of routers (or whole
//     topology groups when the network implements network.Grouped) plus all
//     channels delivering into them.
//
// Every edge between shards is a channel with latency >= 1 (enforced by the
// channel constructors), which is the lookahead the engine's conservative
// synchronization relies on. A flit channel's delivery events run on the
// shard of its sink router, so it is adopted there; its paired credit
// channel delivers in the opposite direction and is adopted by the source
// side. Cross-shard injections travel through the engine inbox.
package core

import (
	"supersim/internal/network"
	"supersim/internal/sim"
	"supersim/internal/telemetry"
	"supersim/internal/types"
)

// Shard describes one partition of a parallel simulation: its simulator,
// the routers it owns, and its local message/flit pool. Shard 0 is the host
// shard; its Pool is the workload's pool (all traffic originates and retires
// there today — router shards carry their own pools so in-network allocation
// stays shard-local if a future model needs it).
type Shard struct {
	ID      int
	Sim     *sim.Simulator
	Routers []int
	Pool    *types.Pool
}

// attachParallel partitions the built simulation into up to `workers` shards
// and wires the conservative engine. It is a no-op (returning a serial
// simulation) when the partition would be trivial: fewer than two shards, or
// no routers to move.
func attachParallel(sm *Simulation, workers int) {
	nr := sm.Net.NumRouters()
	ns := workers
	if ns > nr+1 {
		// More workers than partitions: at most one shard per router plus
		// the host shard.
		ns = nr + 1
	}
	if ns < 2 {
		return
	}
	eng := sim.NewEngine(sm.Sim)
	sims := make([]*sim.Simulator, ns)
	sims[0] = sm.Sim
	shards := make([]*Shard, ns)
	shards[0] = &Shard{ID: 0, Sim: sm.Sim, Pool: sm.Workload.Pool()}
	for k := 1; k < ns; k++ {
		sims[k] = eng.AddShard()
		shards[k] = &Shard{ID: k, Sim: sims[k], Pool: types.NewPool()}
	}

	// Router assignment: prefer group boundaries on hierarchical topologies
	// (dragonfly groups are internally all-to-all, so cutting inside a group
	// maximizes cross-shard edges); otherwise contiguous index ranges, which
	// for the mesh-like topologies keeps neighbors together.
	routerShards := ns - 1
	assign := make([]int, nr)
	if g, ok := sm.Net.(network.Grouped); ok && g.NumGroups() >= routerShards {
		ng := g.NumGroups()
		for i := 0; i < nr; i++ {
			assign[i] = 1 + g.RouterGroup(i)*routerShards/ng
		}
	} else {
		for i := 0; i < nr; i++ {
			assign[i] = 1 + i*routerShards/nr
		}
	}
	for i := 0; i < nr; i++ {
		k := assign[i]
		eng.Adopt(sm.Net.Router(i), sims[k])
		shards[k].Routers = append(shards[k].Routers, i)
	}

	shardOf := func(r int) int {
		if r == network.Terminal {
			return 0 // interfaces live on the host shard
		}
		return assign[r]
	}
	for _, l := range sm.Net.Links() {
		so, do := shardOf(l.FromRouter), shardOf(l.ToRouter)
		// The flit channel's delivery events run on the sink side.
		if do != 0 {
			eng.Adopt(l.Ch, sims[do])
		}
		if so != do {
			l.Ch.SetRemote(eng.Link(sims[so], sims[do], l.Ch.Latency(), l.Ch))
		}
		// The credit channel delivers back to the flit source side.
		if so != 0 {
			eng.Adopt(l.Cr, sims[so])
		}
		if so != do {
			l.Cr.SetRemote(eng.Link(sims[do], sims[so], l.Cr.Latency(), l.Cr))
		}
	}
	if sm.Telemetry != nil {
		// Shard-aware observability: switch the tracer/span recorder into
		// per-shard lane buffering (merged back into the serial order at seal
		// time), and instrument every shard's scheduler with an engine probe
		// exposed through the registry and the /shards endpoint.
		sm.Telemetry.Partition(ns)
		for k := 0; k < ns; k++ {
			p := telemetry.ForEngineShard(sm.Telemetry, k)
			eng.SetShardProbe(k, p)
			id := k
			sm.Telemetry.RegisterShard(k, shards[k].Routers,
				func() sim.ShardStatus { return eng.ShardStatus(id) }, p)
		}
	}

	sm.engine = eng
	sm.Shards = shards
}

package traffic

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"supersim/internal/config"
)

func rng() *rand.Rand { return rand.New(rand.NewPCG(11, 17)) }

func TestUniformRandomCoversAllDestinations(t *testing.T) {
	p := New(config.MustParse(`{"type": "uniform_random"}`), 8)
	r := rng()
	seen := map[int]bool{}
	for i := 0; i < 2000; i++ {
		d := p.Dest(r, 3)
		if d == 3 || d < 0 || d >= 8 {
			t.Fatalf("bad destination %d", d)
		}
		seen[d] = true
	}
	if len(seen) != 7 {
		t.Fatalf("covered %d destinations, want 7", len(seen))
	}
}

func TestBitComplement(t *testing.T) {
	p := New(config.MustParse(`{"type": "bit_complement"}`), 16)
	cases := map[int]int{0: 15, 5: 10, 15: 0, 8: 7}
	for src, want := range cases {
		if got := p.Dest(rng(), src); got != want {
			t.Errorf("Dest(%d) = %d, want %d", src, got, want)
		}
	}
}

func TestBitComplementRequiresPowerOfTwo(t *testing.T) {
	mustPanic(t, func() { New(config.MustParse(`{"type": "bit_complement"}`), 12) })
}

func TestBitReverse(t *testing.T) {
	p := New(config.MustParse(`{"type": "bit_reverse"}`), 8)
	// 3 bits: 1 (001) -> 4 (100); 3 (011) -> 6 (110)
	if got := p.Dest(rng(), 1); got != 4 {
		t.Fatalf("Dest(1) = %d", got)
	}
	if got := p.Dest(rng(), 3); got != 6 {
		t.Fatalf("Dest(3) = %d", got)
	}
	// palindrome 0 must not map to itself
	if got := p.Dest(rng(), 0); got == 0 {
		t.Fatal("palindrome mapped to itself")
	}
}

func TestTranspose(t *testing.T) {
	p := New(config.MustParse(`{"type": "transpose"}`), 16)
	// 4x4: (1,2)=6 -> (2,1)=9
	if got := p.Dest(rng(), 6); got != 9 {
		t.Fatalf("Dest(6) = %d", got)
	}
	// diagonal falls back to a different terminal
	if got := p.Dest(rng(), 5); got == 5 {
		t.Fatal("diagonal mapped to itself")
	}
	mustPanic(t, func() { New(config.MustParse(`{"type": "transpose"}`), 15) })
}

func TestNeighbor(t *testing.T) {
	p := New(config.MustParse(`{"type": "neighbor"}`), 4)
	if p.Dest(rng(), 0) != 1 || p.Dest(rng(), 3) != 0 {
		t.Fatal("neighbor wrong")
	}
}

func TestTornado(t *testing.T) {
	cfg := config.MustParse(`{"type": "tornado", "widths": [8], "concentration": 1}`)
	p := New(cfg, 8)
	// 1D width 8: offset ceil(8/2)-1 = 3
	if got := p.Dest(rng(), 0); got != 3 {
		t.Fatalf("Dest(0) = %d, want 3", got)
	}
	if got := p.Dest(rng(), 6); got != 1 {
		t.Fatalf("Dest(6) = %d, want 1 (wrap)", got)
	}
}

func TestTornadoMultiDimWithConcentration(t *testing.T) {
	cfg := config.MustParse(`{"type": "tornado", "widths": [4, 4], "concentration": 2}`)
	p := New(cfg, 32)
	// router (0,0), offset 1 per dim -> router (1,1) = id 5; terminal keeps slot.
	if got := p.Dest(rng(), 1); got != 5*2+1 {
		t.Fatalf("Dest(1) = %d, want 11", got)
	}
	mustPanic(t, func() {
		New(config.MustParse(`{"type": "tornado", "widths": [4], "concentration": 1}`), 32)
	})
}

func TestCrossSubtree(t *testing.T) {
	cfg := config.MustParse(`{"type": "cross_subtree", "group_size": 4}`)
	p := New(cfg, 16)
	r := rng()
	for i := 0; i < 500; i++ {
		src := r.IntN(16)
		d := p.Dest(r, src)
		if d/4 == src/4 {
			t.Fatalf("destination %d in source group of %d", d, src)
		}
	}
	mustPanic(t, func() {
		New(config.MustParse(`{"type": "cross_subtree", "group_size": 16}`), 16)
	})
	mustPanic(t, func() {
		New(config.MustParse(`{"type": "cross_subtree", "group_size": 3}`), 16)
	})
}

func TestFixed(t *testing.T) {
	p := New(config.MustParse(`{"type": "fixed", "destination": 2}`), 4)
	if p.Dest(rng(), 0) != 2 || p.Dest(rng(), 3) != 2 {
		t.Fatal("fixed destination wrong")
	}
	if p.Dest(rng(), 2) == 2 {
		t.Fatal("fixed pattern sent to itself")
	}
	mustPanic(t, func() { New(config.MustParse(`{"type": "fixed", "destination": 9}`), 4) })
}

func TestNewValidation(t *testing.T) {
	mustPanic(t, func() { New(config.MustParse(`{"type": "uniform_random"}`), 1) })
	mustPanic(t, func() { New(config.MustParse(`{"type": "bogus"}`), 8) })
}

// Property: every registered pattern returns a valid destination != src for
// every source, on a compatible terminal count.
func TestAllPatternsValidDestinations(t *testing.T) {
	n := 16
	patterns := map[string]Pattern{
		"uniform_random": New(config.MustParse(`{"type": "uniform_random"}`), n),
		"bit_complement": New(config.MustParse(`{"type": "bit_complement"}`), n),
		"bit_reverse":    New(config.MustParse(`{"type": "bit_reverse"}`), n),
		"transpose":      New(config.MustParse(`{"type": "transpose"}`), n),
		"neighbor":       New(config.MustParse(`{"type": "neighbor"}`), n),
		"tornado":        New(config.MustParse(`{"type": "tornado", "widths": [4, 4], "concentration": 1}`), n),
		"cross_subtree":  New(config.MustParse(`{"type": "cross_subtree", "group_size": 4}`), n),
		"fixed":          New(config.MustParse(`{"type": "fixed", "destination": 0}`), n),
	}
	r := rng()
	prop := func(src8 uint8) bool {
		src := int(src8) % n
		for name, p := range patterns {
			d := p.Dest(r, src)
			if d < 0 || d >= n || d == src {
				t.Logf("%s: Dest(%d) = %d", name, src, d)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

func TestHotspot(t *testing.T) {
	cfg := config.MustParse(`{"type": "hotspot", "destination": 3, "fraction": 0.5}`)
	p := New(cfg, 16)
	r := rng()
	hot := 0
	const trials = 4000
	for i := 0; i < trials; i++ {
		d := p.Dest(r, 7)
		if d == 7 || d < 0 || d >= 16 {
			t.Fatalf("bad destination %d", d)
		}
		if d == 3 {
			hot++
		}
	}
	// ~50% + uniform share; accept a generous band around 53%.
	frac := float64(hot) / trials
	if frac < 0.45 || frac < 0.5*0.9 || frac > 0.62 {
		t.Fatalf("hotspot fraction %v", frac)
	}
	// the hot node itself sends uniformly
	if d := p.Dest(r, 3); d == 3 {
		t.Fatal("hot node sent to itself")
	}
	mustPanic(t, func() { New(config.MustParse(`{"type": "hotspot", "destination": 99}`), 16) })
	mustPanic(t, func() { New(config.MustParse(`{"type": "hotspot", "destination": 0, "fraction": 0}`), 16) })
}

// Package traffic implements the synthetic traffic patterns used by the
// workload applications. A pattern maps a source terminal to a destination
// terminal; stateless patterns draw from the simulation's deterministic rng.
//
// Patterns that are adversarial for specific topologies (tornado, cross
// subtree) receive the relevant topology attributes through their own JSON
// settings block, preserving the strict isolation between workload modeling
// and network modeling.
package traffic

import (
	"math/bits"
	"math/rand/v2"

	"supersim/internal/config"
	"supersim/internal/factory"
)

// Pattern produces destination terminals.
type Pattern interface {
	// Dest returns a destination for the given source terminal; it must not
	// return src itself.
	Dest(rng *rand.Rand, src int) int
}

// Ctor is the constructor signature registered by pattern implementations.
type Ctor func(cfg *config.Settings, numTerminals int) Pattern

// Registry holds all traffic pattern implementations.
var Registry = factory.NewRegistry[Ctor]("traffic pattern")

// New builds the pattern named by cfg's "type" setting.
func New(cfg *config.Settings, numTerminals int) Pattern {
	if numTerminals < 2 {
		panic("traffic: at least two terminals required")
	}
	return Registry.MustLookup(cfg.String("type"))(cfg, numTerminals)
}

func init() {
	Registry.Register("uniform_random", func(cfg *config.Settings, n int) Pattern {
		return UniformRandom{N: n}
	})
	Registry.Register("bit_complement", func(cfg *config.Settings, n int) Pattern {
		if n&(n-1) != 0 {
			panic("traffic: bit_complement requires a power-of-two terminal count")
		}
		return BitComplement{N: n}
	})
	Registry.Register("bit_reverse", func(cfg *config.Settings, n int) Pattern {
		if n&(n-1) != 0 {
			panic("traffic: bit_reverse requires a power-of-two terminal count")
		}
		return BitReverse{N: n}
	})
	Registry.Register("transpose", func(cfg *config.Settings, n int) Pattern {
		side := 1
		for side*side < n {
			side++
		}
		if side*side != n {
			panic("traffic: transpose requires a square terminal count")
		}
		return Transpose{Side: side}
	})
	Registry.Register("neighbor", func(cfg *config.Settings, n int) Pattern {
		return Neighbor{N: n}
	})
	Registry.Register("tornado", func(cfg *config.Settings, n int) Pattern {
		widths := cfg.UIntList("widths")
		conc := int(cfg.UIntOr("concentration", 1))
		t := Tornado{Conc: conc}
		total := conc
		for _, w := range widths {
			t.Widths = append(t.Widths, int(w))
			total *= int(w)
		}
		if total != n {
			panic("traffic: tornado widths/concentration do not match terminal count")
		}
		return t
	})
	Registry.Register("cross_subtree", func(cfg *config.Settings, n int) Pattern {
		g := int(cfg.UInt("group_size"))
		if g < 1 || n%g != 0 || n/g < 2 {
			panic("traffic: cross_subtree group_size must evenly divide terminals into >= 2 groups")
		}
		return CrossSubtree{N: n, Group: g}
	})
	Registry.Register("hotspot", func(cfg *config.Settings, n int) Pattern {
		frac := cfg.FloatOr("fraction", 0.1)
		if frac <= 0 || frac > 1 {
			panic("traffic: hotspot fraction must be in (0, 1]")
		}
		d := int(cfg.UInt("destination"))
		if d < 0 || d >= n {
			panic("traffic: hotspot destination out of range")
		}
		return Hotspot{Destination: d, Fraction: frac, N: n}
	})
	Registry.Register("fixed", func(cfg *config.Settings, n int) Pattern {
		d := int(cfg.UInt("destination"))
		if d < 0 || d >= n {
			panic("traffic: fixed destination out of range")
		}
		return Fixed{Destination: d, N: n}
	})
}

// UniformRandom sends to a uniformly random terminal other than the source —
// the canonical load-balanced benign pattern.
type UniformRandom struct{ N int }

// Dest implements Pattern.
func (p UniformRandom) Dest(rng *rand.Rand, src int) int {
	d := rng.IntN(p.N - 1)
	if d >= src {
		d++
	}
	return d
}

// BitComplement sends to the bitwise complement of the source — an
// unbalanced permutation that stresses bisection bandwidth.
type BitComplement struct{ N int }

// Dest implements Pattern.
func (p BitComplement) Dest(rng *rand.Rand, src int) int {
	return (p.N - 1) ^ src
}

// BitReverse sends to the bit-reversed source address.
type BitReverse struct{ N int }

// Dest implements Pattern.
func (p BitReverse) Dest(rng *rand.Rand, src int) int {
	w := bits.Len(uint(p.N - 1))
	d := int(bits.Reverse(uint(src)) >> (bits.UintSize - w))
	if d == src {
		return (src + p.N/2) % p.N // palindromic addresses fall back to the antipode
	}
	return d
}

// Transpose treats terminals as a square matrix and sends (i, j) -> (j, i).
type Transpose struct{ Side int }

// Dest implements Pattern.
func (p Transpose) Dest(rng *rand.Rand, src int) int {
	i, j := src/p.Side, src%p.Side
	d := j*p.Side + i
	if d == src {
		return (src + 1) % (p.Side * p.Side) // diagonal falls back to the neighbor
	}
	return d
}

// Neighbor sends to the next terminal (src + 1), the friendliest pattern.
type Neighbor struct{ N int }

// Dest implements Pattern.
func (p Neighbor) Dest(rng *rand.Rand, src int) int {
	return (src + 1) % p.N
}

// Tornado sends ceil(k/2)-1 hops around each dimension's ring — the
// adversarial pattern for a torus, which the user parameterizes with the
// torus's own widths and concentration.
type Tornado struct {
	Widths []int
	Conc   int
}

// Dest implements Pattern.
func (p Tornado) Dest(rng *rand.Rand, src int) int {
	srcR := src / p.Conc
	dstR := 0
	stride := 1
	for _, w := range p.Widths {
		c := (srcR / stride) % w
		off := (w+1)/2 - 1
		if off == 0 {
			off = 1 // width-2 rings still move
		}
		nc := (c + off) % w
		dstR += nc * stride
		stride *= w
	}
	d := dstR*p.Conc + src%p.Conc
	if d == src {
		return (src + p.Conc) % (stride * p.Conc)
	}
	return d
}

// CrossSubtree sends to a uniformly random terminal in a different group of
// `Group` consecutive terminals. With Group = terminals/k it forces all
// folded-Clos traffic through the root level ("uniform random to root").
type CrossSubtree struct {
	N     int
	Group int
}

// Dest implements Pattern.
func (p CrossSubtree) Dest(rng *rand.Rand, src int) int {
	g := src / p.Group
	numGroups := p.N / p.Group
	dg := rng.IntN(numGroups - 1)
	if dg >= g {
		dg++
	}
	return dg*p.Group + rng.IntN(p.Group)
}

// Hotspot sends Fraction of the traffic to one hot destination and the rest
// uniformly at random — the classic partial-hotspot stressor.
type Hotspot struct {
	Destination int
	Fraction    float64
	N           int
}

// Dest implements Pattern.
func (p Hotspot) Dest(rng *rand.Rand, src int) int {
	if src != p.Destination && rng.Float64() < p.Fraction {
		return p.Destination
	}
	d := rng.IntN(p.N - 1)
	if d >= src {
		d++
	}
	return d
}

// Fixed sends all traffic to one destination (parking lot workloads).
// Sources equal to the destination wrap to the next terminal.
type Fixed struct {
	Destination int
	N           int
}

// Dest implements Pattern.
func (p Fixed) Dest(rng *rand.Rand, src int) int {
	if src == p.Destination {
		return (p.Destination + 1) % p.N
	}
	return p.Destination
}

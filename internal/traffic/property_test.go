package traffic

import (
	"fmt"
	"math/rand/v2"
	"testing"
)

// Property tests for the deterministic patterns: bijectivity (the pattern is
// a permutation of the terminals, so no destination is oversubscribed by
// construction), self-inversion where the pattern is an involution, and
// range/self-exclusion everywhere. The deterministic patterns take no
// randomness, so these are exhaustive over every source, not sampled.

// assertPermutation checks p maps [0, n) one-to-one onto [0, n) with no fixed
// points.
func assertPermutation(t *testing.T, p Pattern, n int) {
	t.Helper()
	rng := rand.New(rand.NewPCG(1, 1))
	hit := make([]int, n)
	for src := 0; src < n; src++ {
		d := p.Dest(rng, src)
		if d < 0 || d >= n {
			t.Fatalf("Dest(%d) = %d out of range [0, %d)", src, d, n)
		}
		if d == src {
			t.Fatalf("Dest(%d) returned the source", src)
		}
		hit[d]++
	}
	for d, c := range hit {
		if c != 1 {
			t.Fatalf("destination %d hit %d times; pattern is not a permutation", d, c)
		}
	}
}

func TestBitComplementProperties(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 64, 256, 1024} {
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			p := BitComplement{N: n}
			rng := rand.New(rand.NewPCG(1, 1))
			assertPermutation(t, p, n)
			// Complementing twice restores the source: an involution.
			for src := 0; src < n; src++ {
				if back := p.Dest(rng, p.Dest(rng, src)); back != src {
					t.Fatalf("Dest(Dest(%d)) = %d, want the source back", src, back)
				}
			}
		})
	}
}

func TestTransposeProperties(t *testing.T) {
	for _, side := range []int{2, 3, 4, 8, 10} {
		t.Run(fmt.Sprintf("side%d", side), func(t *testing.T) {
			n := side * side
			p := Transpose{Side: side}
			rng := rand.New(rand.NewPCG(1, 1))
			for src := 0; src < n; src++ {
				d := p.Dest(rng, src)
				if d < 0 || d >= n {
					t.Fatalf("Dest(%d) = %d out of range [0, %d)", src, d, n)
				}
				if d == src {
					t.Fatalf("Dest(%d) returned the source", src)
				}
				i, j := src/side, src%side
				if i == j {
					continue // diagonal falls back to src+1, not an involution
				}
				if want := j*side + i; d != want {
					t.Fatalf("Dest(%d) = %d, want transposed %d", src, d, want)
				}
				if back := p.Dest(rng, d); back != src {
					t.Fatalf("off-diagonal Dest(Dest(%d)) = %d, want the source back", src, back)
				}
			}
		})
	}
}

func TestTornadoProperties(t *testing.T) {
	cases := []struct {
		widths []int
		conc   int
	}{
		{[]int{2}, 1},
		{[]int{4}, 1},
		{[]int{5}, 1},
		{[]int{6}, 2},
		{[]int{3, 3}, 1},
		{[]int{4, 4}, 2},
		{[]int{2, 3, 4}, 1},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("w%v_c%d", c.widths, c.conc), func(t *testing.T) {
			n := c.conc
			for _, w := range c.widths {
				n *= w
			}
			p := Tornado{Widths: c.widths, Conc: c.conc}
			// A tornado is a fixed translation on the product of rings:
			// necessarily a permutation, necessarily fixed-point-free (every
			// dimension moves a nonzero offset), concentration preserved.
			assertPermutation(t, p, n)
			rng := rand.New(rand.NewPCG(1, 1))
			for src := 0; src < n; src++ {
				if d := p.Dest(rng, src); d%c.conc != src%c.conc {
					t.Fatalf("Dest(%d) = %d changed the terminal-in-router slot", src, d)
				}
			}
		})
	}
}

func TestUniformRandomNonPowerOfTwo(t *testing.T) {
	// Uniform random must hit exactly the other n-1 terminals from every
	// source, including terminal counts with no power-of-two structure.
	for _, n := range []int{2, 3, 7, 12, 33} {
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			p := UniformRandom{N: n}
			rng := rand.New(rand.NewPCG(7, uint64(n)))
			for src := 0; src < n; src++ {
				seen := make(map[int]bool)
				for draw := 0; draw < 200*n; draw++ {
					d := p.Dest(rng, src)
					if d < 0 || d >= n {
						t.Fatalf("Dest(%d) = %d out of range [0, %d)", src, d, n)
					}
					if d == src {
						t.Fatalf("Dest(%d) returned the source", src)
					}
					seen[d] = true
				}
				if len(seen) != n-1 {
					t.Fatalf("src %d reached %d of %d possible destinations", src, len(seen), n-1)
				}
			}
		})
	}
}

// Package telemetry implements the simulator's observability subsystem: a
// per-simulation metrics registry (counters, gauges, power-of-two-bucketed
// histograms) with time-binned JSONL snapshotting, a flit-lifecycle tracer
// emitting Chrome trace-event JSON, and a live introspection HTTP endpoint
// (Prometheus text /metrics, /debug/pprof, a JSON run-progress document).
//
// Discovery follows the internal/verify pattern: telemetry is attached per
// Simulator (telemetry.Attach, stored in an opaque slot) and found by
// components at construction with the For* probe constructors, which return
// nil when telemetry is disabled. Components guard every hook with a nil
// check, so the disabled hot path costs one predictable branch and zero
// allocations — BenchmarkFigure5's allocation count is unchanged, which
// `make bench-guard` enforces.
//
// Telemetry is observation-only: it never touches the simulation PRNG or any
// component state, and trace sampling is a pure hash of message IDs, so
// enabling any part of it cannot change simulation results. Snapshot events
// are scheduled as daemon events (sim.ScheduleDaemon), so periodic
// snapshotting never extends the life of a drained simulation.
package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"

	"supersim/internal/sim"
)

const evSnapshot = 0

// Options configures an attached Telemetry.
type Options struct {
	// BinTicks is the snapshot bin width in simulated ticks. Zero disables
	// the periodic snapshot event (metrics are still registered and
	// scrapeable over HTTP, but the progress document only updates at Close).
	BinTicks sim.Tick

	// SnapshotW, when non-nil, receives the JSONL snapshot stream, one bin
	// every BinTicks. If it also implements io.Closer, Close closes it.
	SnapshotW io.Writer

	// Tracer, when non-nil, receives flit-lifecycle events from the network
	// interfaces.
	Tracer *Tracer

	// Spans, when non-nil, records per-hop latency decompositions of sampled
	// messages; its histograms fold into this telemetry's registry.
	Spans *Spans
}

// Progress is the run-progress document served by the HTTP endpoint and
// updated by snapshot bins and the workload's phase transitions.
type Progress struct {
	Tick      uint64  `json:"tick"`
	Events    uint64  `json:"events"`
	EventsSec float64 `json:"events_per_sec"`
	TicksSec  float64 `json:"ticks_per_sec"`
	Phase     string  `json:"phase"`
	Metrics   int     `json:"metrics"`
	TraceEvs  uint64  `json:"trace_events,omitempty"`
	SpanRecs  uint64  `json:"span_records,omitempty"`
	WallSec   float64 `json:"wall_sec"`
}

// Telemetry is the per-simulation observability hub. Create one with Attach
// before building components; components find it with For.
type Telemetry struct {
	sim.ComponentBase
	opts Options
	reg  *Registry

	enc *json.Encoder
	bw  *bufio.Writer
	wc  io.Closer

	first bool // next snapshot is the baseline bin
	//sslint:nosnapshot — output lifecycle latch; a restored run opens its own writer
	closed bool

	mu        sync.Mutex
	phase     string
	startWall time.Time
	//sslint:nosnapshot — wall-clock progress bookkeeping, presentation-only
	lastWall time.Time
	//sslint:nosnapshot — wall-clock progress bookkeeping, presentation-only
	lastTick uint64
	//sslint:nosnapshot — wall-clock progress bookkeeping, presentation-only
	lastEvs uint64
	//sslint:nosnapshot — wall-clock progress bookkeeping, presentation-only
	prog Progress
	//sslint:nosnapshot — per-shard registry wiring, re-established when shards re-attach
	shardRegs []shardReg
}

// Attach creates a Telemetry and registers it on the simulator so that
// components built afterwards discover it. Attaching twice panics.
func Attach(s *sim.Simulator, opts Options) *Telemetry {
	if s.Telemetry() != nil {
		panic("telemetry: simulator already has telemetry attached")
	}
	t := &Telemetry{
		ComponentBase: sim.NewComponentBase(s, "telemetry"),
		opts:          opts,
		reg:           newRegistry(),
		first:         true,
		phase:         "build",
		startWall:     time.Now(),
	}
	t.lastWall = t.startWall
	if opts.SnapshotW != nil {
		t.bw = bufio.NewWriterSize(opts.SnapshotW, 1<<16)
		t.enc = json.NewEncoder(t.bw)
		if c, ok := opts.SnapshotW.(io.Closer); ok {
			t.wc = c
		}
	}
	if opts.Spans != nil {
		opts.Spans.reg = t.reg
	}
	if opts.BinTicks > 0 {
		s.ScheduleDaemon(t, sim.Time{Tick: opts.BinTicks}, evSnapshot, nil)
	}
	s.SetTelemetry(t)
	return t
}

// For returns the simulator's attached Telemetry, or nil when disabled.
func For(s *sim.Simulator) *Telemetry {
	if t, ok := s.Telemetry().(*Telemetry); ok {
		return t
	}
	return nil
}

// Registry returns the metric registry.
func (t *Telemetry) Registry() *Registry { return t.reg }

// Tracer returns the attached flit tracer, or nil.
func (t *Telemetry) Tracer() *Tracer { return t.opts.Tracer }

// Spans returns the attached span recorder, or nil.
func (t *Telemetry) Spans() *Spans { return t.opts.Spans }

// SpansFor returns the simulator's span recorder, or nil when telemetry or
// span recording is disabled. Components call it once at construction and
// nil-guard every hook, like the For* probe constructors.
func SpansFor(s *sim.Simulator) *Spans {
	t := For(s)
	if t == nil {
		return nil
	}
	return t.opts.Spans
}

// Partition switches the tracer and span recorder into per-shard lane
// buffering across n shards. Core calls it once, before a parallel engine
// runs; recordings are tagged with partition-independent event stamps and
// merged back into the serial order by seal. Serial runs never call it and
// keep the direct streaming/apply paths.
func (t *Telemetry) Partition(n int) {
	if tr := t.opts.Tracer; tr != nil {
		tr.partition(n)
	}
	if sp := t.opts.Spans; sp != nil {
		sp.partition(n)
	}
}

// seal merges and drains the per-shard observation lanes in global stamp
// order. It must only run while no shard goroutines are executing — at the
// end of the run (Close) or at a checkpoint barrier (SaveState); the engine's
// RunUntil WaitGroup is the happens-before edge publishing the lanes.
func (t *Telemetry) seal() {
	if tr := t.opts.Tracer; tr != nil {
		tr.seal()
	}
	if sp := t.opts.Spans; sp != nil {
		sp.seal()
	}
}

// SetPhase records the workload phase shown in the progress document.
func (t *Telemetry) SetPhase(phase string) {
	t.mu.Lock()
	t.phase = phase
	t.mu.Unlock()
}

// ProcessEvent runs one snapshot bin and re-arms while real simulation work
// remains queued.
func (t *Telemetry) ProcessEvent(ev *sim.Event) {
	if ev.Type != evSnapshot {
		t.Panicf("unknown event type %d", ev.Type)
	}
	t.snapshotNow()
	// Re-arm only while non-daemon events are pending; see verify's watchdog
	// for why daemons must not count each other as work.
	if t.Sim().PendingNonDaemon() > 0 {
		t.Sim().ScheduleDaemon(t, t.Sim().Now().Plus(t.opts.BinTicks), evSnapshot, nil)
	}
}

func (t *Telemetry) snapshotNow() {
	now := uint64(t.Sim().Now().Tick)
	if t.enc != nil {
		if err := t.reg.snapshot(t.enc, now, uint64(t.opts.BinTicks), t.first); err != nil {
			t.Panicf("snapshot write failed: %v", err)
		}
		t.first = false
	}
	t.updateProgress(now)
}

func (t *Telemetry) updateProgress(tick uint64) {
	evs := t.Sim().Executed()
	wall := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	p := Progress{
		Tick:    tick,
		Events:  evs,
		Phase:   t.phase,
		Metrics: t.reg.Len(),
		WallSec: wall.Sub(t.startWall).Seconds(),
	}
	if secs := wall.Sub(t.lastWall).Seconds(); secs > 0 {
		p.EventsSec = float64(evs-t.lastEvs) / secs
		p.TicksSec = float64(tick-t.lastTick) / secs
	}
	if tr := t.opts.Tracer; tr != nil {
		p.TraceEvs = tr.Events()
	}
	if sp := t.opts.Spans; sp != nil {
		p.SpanRecs = sp.Records()
	}
	t.lastWall, t.lastTick, t.lastEvs = wall, tick, evs
	t.prog = p
}

// ProgressDoc returns a copy of the latest progress document.
func (t *Telemetry) ProgressDoc() Progress {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.prog
}

// Close emits a final snapshot bin (so the tail of the run is never lost),
// flushes and closes the snapshot stream, and closes the tracer. It is
// idempotent; core.Run calls it after the network drains.
func (t *Telemetry) Close() error {
	if t.closed {
		return nil
	}
	t.closed = true
	t.SetPhase("done")
	// Seal before the final snapshot bin so span histograms folded from the
	// buffered lanes reach it (the serial path folds online).
	t.seal()
	t.snapshotNow()
	var err error
	if t.bw != nil {
		err = t.bw.Flush()
	}
	if t.wc != nil {
		if cerr := t.wc.Close(); err == nil {
			err = cerr
		}
	}
	if tr := t.opts.Tracer; tr != nil {
		if cerr := tr.Close(); err == nil {
			err = cerr
		}
	}
	if sp := t.opts.Spans; sp != nil {
		if cerr := sp.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

package telemetry

import "supersim/internal/sim"

// mergeByStamp replays per-shard observation lanes in the global
// partition-independent event order. Each lane k holds records appended by
// shard k's goroutine in its local execution order, tagged with the stamp of
// the event that produced them. Two engine invariants make a k-way merge by
// stamp reproduce the serial order exactly:
//
//   - each shard's local execution order is the serial order restricted to
//     that shard (events are keyed by (tick, epsilon, owner, oseq), which is
//     independent of the partition), so every lane is already sorted by stamp;
//   - a stamp identifies one executing event, which runs on exactly one
//     shard, so equal stamps never occur across lanes — records with equal
//     stamps all sit in one lane, where their append order is the serial
//     emission order.
//
// The merge therefore takes the strictly smallest head stamp each step and
// preserves intra-lane order for runs of equal stamps. Cost is O(records ×
// lanes); lanes is the worker count, which is small.
//
// mergeByStamp must only run while no shard goroutine is recording — the
// engine's RunUntil WaitGroup is the happens-before edge that publishes the
// lanes to the sealing goroutine.
func mergeByStamp[E any](lanes [][]E, stamp func(*E) sim.Stamp, apply func(*E)) {
	idx := make([]int, len(lanes))
	for {
		best := -1
		var bs sim.Stamp
		for k := range lanes {
			if idx[k] >= len(lanes[k]) {
				continue
			}
			s := stamp(&lanes[k][idx[k]])
			if best < 0 || s.Less(bs) {
				best, bs = k, s
			}
		}
		if best < 0 {
			return
		}
		apply(&lanes[best][idx[best]])
		idx[best]++
	}
}

package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sync"

	"supersim/internal/sim"
	"supersim/internal/types"
)

// Tracer emits flit-lifecycle events in Chrome trace-event JSON (the format
// read by chrome://tracing and Perfetto). Each sampled flit becomes one async
// event pair: "b" (begin) when the flit enters the network at its source
// interface, "e" (end) when it is delivered at the destination. Events are
// keyed by id "msg.pkt.flit", grouped with pid = application index and
// tid = source terminal, with ts in simulated ticks (rendered as µs by the
// viewers).
//
// Sampling is per message, decided by a multiplicative hash of the message ID
// against a fixed threshold — never by the simulation PRNG — so enabling or
// resizing the trace cannot perturb simulation results, and all flits of a
// message are either all traced or all skipped (the viewer sees complete
// message lifetimes).
type Tracer struct {
	mu        sync.Mutex
	w         *bufio.Writer
	c         io.Closer
	threshold uint64 // sample iff top 16 hash bits < threshold
	events    uint64
	started   bool
}

// NewTracer writes Chrome trace JSON to w, sampling the given fraction of
// messages (clamped to [0,1]; 1 traces everything). If w also implements
// io.Closer, Close closes it.
func NewTracer(w io.Writer, fraction float64) *Tracer {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	t := &Tracer{
		w:         bufio.NewWriterSize(w, 1<<16),
		threshold: uint64(fraction * 65536),
	}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

// Sampled reports whether the message with the given ID is traced. The
// decision is a pure function of the ID, so both endpoints of a flit's
// journey agree without coordination.
func (t *Tracer) Sampled(msgID uint64) bool {
	h := msgID * 0x9E3779B97F4A7C15 // Fibonacci hashing; top bits well mixed
	return h>>48 < t.threshold
}

// Events returns the number of trace events emitted so far.
func (t *Tracer) Events() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

func (t *Tracer) emit(ph string, now sim.Tick, f *types.Flit, tid int) {
	m := f.Pkt.Msg
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.started {
		t.w.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
		t.started = true
	} else {
		t.w.WriteString(",\n")
	}
	fmt.Fprintf(t.w,
		`{"ph":%q,"cat":"flit","name":"flit","id":"%d.%d.%d","pid":%d,"tid":%d,"ts":%d}`,
		ph, m.ID, f.Pkt.ID, f.ID, m.App, tid, now)
	t.events++
}

// FlitSent records a sampled flit entering the network at source terminal
// src. Callers check Sampled first.
func (t *Tracer) FlitSent(now sim.Tick, f *types.Flit, src int) {
	t.emit("b", now, f, src)
}

// FlitReceived records a sampled flit delivered at its destination. The tid
// repeats the source terminal so begin/end pair on the same track.
func (t *Tracer) FlitReceived(now sim.Tick, f *types.Flit, src int) {
	t.emit("e", now, f, src)
}

// Close terminates the JSON document, flushes, and closes the underlying
// writer when it is closable. Safe to call with no events emitted.
func (t *Tracer) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.started {
		t.w.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	}
	t.w.WriteString("\n]}\n")
	err := t.w.Flush()
	if t.c != nil {
		if cerr := t.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"supersim/internal/sim"
	"supersim/internal/types"
)

// Tracer emits flit-lifecycle events in Chrome trace-event JSON (the format
// read by chrome://tracing and Perfetto). Each sampled flit becomes one async
// event pair: "b" (begin) when the flit enters the network at its source
// interface, "e" (end) when it is delivered at the destination. Events are
// keyed by id "msg.pkt.flit", grouped with pid = application index and
// tid = source terminal, with ts in simulated ticks (rendered as µs by the
// viewers).
//
// Sampling is per message, decided by a multiplicative hash of the message ID
// against a fixed threshold — never by the simulation PRNG — so enabling or
// resizing the trace cannot perturb simulation results, and all flits of a
// message are either all traced or all skipped (the viewer sees complete
// message lifetimes).
//
// Under a parallel engine (Partition), each shard records into its own lane:
// recording is an append of captured values (message/packet/flit IDs, not
// pointers — flits are pooled and recycled) tagged with the executing event's
// sim.Stamp. Lanes are merged in stamp order at seal time, which reproduces
// the serial emission order exactly (see mergeByStamp), so the rendered JSON
// is byte-identical to a serial run for any worker count.
type Tracer struct {
	mu        sync.Mutex
	w         *bufio.Writer
	c         io.Closer
	threshold uint64 // sample iff top 16 hash bits < threshold
	events    atomic.Uint64
	started   bool

	// lanes, when non-nil, switches the tracer from direct streaming to
	// per-shard buffered recording; lane k is written only by shard k's
	// goroutine and drained by seal between phases.
	lanes [][]traceEntry
}

// traceEntry is one buffered trace event: every field the renderer needs,
// captured by value at record time.
type traceEntry struct {
	stamp sim.Stamp
	ts    sim.Tick
	msg   uint64
	pkt   int
	flit  int
	app   int
	tid   int
	ph    byte // 'b' or 'e'
}

// NewTracer writes Chrome trace JSON to w, sampling the given fraction of
// messages (clamped to [0,1]; 1 traces everything). If w also implements
// io.Closer, Close closes it.
func NewTracer(w io.Writer, fraction float64) *Tracer {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	t := &Tracer{
		w:         bufio.NewWriterSize(w, 1<<16),
		threshold: uint64(fraction * 65536),
	}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

// Sampled reports whether the message with the given ID is traced. The
// decision is a pure function of the ID, so both endpoints of a flit's
// journey agree without coordination.
func (t *Tracer) Sampled(msgID uint64) bool {
	h := msgID * 0x9E3779B97F4A7C15 // Fibonacci hashing; top bits well mixed
	return h>>48 < t.threshold
}

// Events returns the number of trace events recorded so far.
func (t *Tracer) Events() uint64 { return t.events.Load() }

// partition switches the tracer into per-shard lane recording across n
// shards. Called once, before the engine runs.
func (t *Tracer) partition(n int) {
	t.lanes = make([][]traceEntry, n)
}

// record captures one trace event. On a partitioned tracer the event is
// appended to the calling shard's lane with the executing event's stamp; on a
// serial tracer it streams straight to the writer.
func (t *Tracer) record(ph byte, s *sim.Simulator, now sim.Tick, f *types.Flit, tid int) {
	m := f.Pkt.Msg
	if t.lanes != nil {
		k := s.ShardID()
		t.lanes[k] = append(t.lanes[k], traceEntry{
			stamp: s.CurrentStamp(),
			ts:    now,
			msg:   m.ID,
			pkt:   f.Pkt.ID,
			flit:  f.ID,
			app:   m.App,
			tid:   tid,
			ph:    ph,
		})
		t.events.Add(1)
		return
	}
	t.emit(ph, now, m.ID, f.Pkt.ID, f.ID, m.App, tid)
	t.events.Add(1)
}

// emit renders one event to the JSON stream.
func (t *Tracer) emit(ph byte, ts sim.Tick, msg uint64, pkt, flit, app, tid int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.started {
		t.w.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
		t.started = true
	} else {
		t.w.WriteString(",\n")
	}
	fmt.Fprintf(t.w,
		`{"ph":%q,"cat":"flit","name":"flit","id":"%d.%d.%d","pid":%d,"tid":%d,"ts":%d}`,
		string(ph), msg, pkt, flit, app, tid, ts)
}

// seal drains the per-shard lanes into the JSON stream in global stamp order
// and resets them. It must only be called while no shard goroutines run (end
// of run, or a checkpoint barrier); sealing twice is harmless. Because the
// engine's checkpoint barriers partition stamps by time, sequential seals
// concatenate in correct global order.
func (t *Tracer) seal() {
	if t.lanes == nil {
		return
	}
	mergeByStamp(t.lanes, func(e *traceEntry) sim.Stamp { return e.stamp }, func(e *traceEntry) {
		t.emit(e.ph, e.ts, e.msg, e.pkt, e.flit, e.app, e.tid)
	})
	for k := range t.lanes {
		t.lanes[k] = t.lanes[k][:0]
	}
}

// FlitSent records a sampled flit entering the network at source terminal
// src. Callers check Sampled first; s is the calling component's simulator,
// which supplies the shard lane and merge stamp under a parallel engine.
func (t *Tracer) FlitSent(s *sim.Simulator, now sim.Tick, f *types.Flit, src int) {
	t.record('b', s, now, f, src)
}

// FlitReceived records a sampled flit delivered at its destination. The tid
// repeats the source terminal so begin/end pair on the same track.
func (t *Tracer) FlitReceived(s *sim.Simulator, now sim.Tick, f *types.Flit, src int) {
	t.record('e', s, now, f, src)
}

// Close terminates the JSON document, flushes, and closes the underlying
// writer when it is closable. Safe to call with no events emitted. Callers
// running under an engine seal first (Telemetry.Close does).
func (t *Tracer) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.started {
		t.w.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	}
	t.w.WriteString("\n]}\n")
	err := t.w.Flush()
	if t.c != nil {
		if cerr := t.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

package telemetry

import (
	"strconv"
	"sync/atomic"
	"time"

	"supersim/internal/sim"
)

// EngineProbe instruments one shard of the conservative parallel engine. It
// implements sim.ShardProbe; core wires one per shard (ForEngineShard +
// Engine.SetShardProbe) whenever telemetry is attached to a parallel run.
// All metrics use component "shard<k>":
//
//	engine_rounds          counter  scheduler passes (horizon computations)
//	engine_horizon         gauge    last bounded horizon tick
//	engine_horizon_unbounded counter rounds whose horizon saturated (no
//	                                 upstream constraint)
//	engine_windows         counter  committed lookahead windows
//	engine_commit          gauge    last committed tick
//	engine_window_events   counter  non-daemon events drained by windows
//	engine_window_size     hist     events drained per window
//	engine_inbox_posts     counter  cross-shard posts into this shard
//	engine_inbox_depth     gauge    inbox occupancy after the latest post
//	engine_inbox_peak      gauge    high-water inbox occupancy
//	engine_inbox_drains    counter  non-empty inbox batches applied
//	engine_inbox_batch     hist     posts applied per batch
//	engine_stalls          counter  times the worker parked lookahead-blocked
//	engine_blocked_ns      counter  wall nanoseconds spent parked
//	engine_quiesce_checks  counter  global work-count polls
//
// Counter/gauge values are registry atomics and InboxPost touches nothing
// else, so the one method invoked from foreign (posting) goroutines is safe
// without extra locking; blocked-time bookkeeping is confined to the owning
// worker goroutine. The wall-clock read for engine_blocked_ns lives here, in
// the observation layer, keeping internal/sim free of time.Now — and making
// engine_blocked_ns the one engine metric that is wall-clock- rather than
// schedule-determined.
type EngineProbe struct {
	rounds       *Counter
	horizon      *Gauge
	unbounded    *Counter
	windows      *Counter
	commit       *Gauge
	windowEvents *Counter
	windowSize   *Histogram
	inboxPosts   *Counter
	inboxDepth   *Gauge
	inboxPeakG   *Gauge
	inboxDrains  *Counter
	inboxBatch   *Histogram
	stalls       *Counter
	blockedNS    *Counter
	quiesce      *Counter

	// peak is the CAS-max high-water inbox occupancy, maintained by posting
	// goroutines and mirrored into inboxPeakG by the owning worker (a gauge
	// has no atomic-max, and mirroring from posters would race).
	peak atomic.Int64

	// blockedSince is only touched by the owning worker goroutine.
	blockedSince time.Time
}

// ForEngineShard returns the engine probe for shard k, registering its
// metrics in t's registry.
func ForEngineShard(t *Telemetry, k int) *EngineProbe {
	comp := "shard" + strconv.Itoa(k)
	return &EngineProbe{
		rounds:       t.reg.Counter("engine_rounds", comp, -1, 0),
		horizon:      t.reg.Gauge("engine_horizon", comp, -1),
		unbounded:    t.reg.Counter("engine_horizon_unbounded", comp, -1, 0),
		windows:      t.reg.Counter("engine_windows", comp, -1, 0),
		commit:       t.reg.Gauge("engine_commit", comp, -1),
		windowEvents: t.reg.Counter("engine_window_events", comp, -1, 0),
		windowSize:   t.reg.Histogram("engine_window_size", comp, -1),
		inboxPosts:   t.reg.Counter("engine_inbox_posts", comp, -1, 0),
		inboxDepth:   t.reg.Gauge("engine_inbox_depth", comp, -1),
		inboxPeakG:   t.reg.Gauge("engine_inbox_peak", comp, -1),
		inboxDrains:  t.reg.Counter("engine_inbox_drains", comp, -1, 0),
		inboxBatch:   t.reg.Histogram("engine_inbox_batch", comp, -1),
		stalls:       t.reg.Counter("engine_stalls", comp, -1, 0),
		blockedNS:    t.reg.Counter("engine_blocked_ns", comp, -1, 0),
		quiesce:      t.reg.Counter("engine_quiesce_checks", comp, -1, 0),
	}
}

// Round implements sim.ShardProbe.
func (p *EngineProbe) Round(horizon sim.Tick, saturated bool) {
	p.rounds.Inc()
	if saturated {
		p.unbounded.Inc()
	} else {
		p.horizon.Set(int64(horizon))
	}
	p.inboxPeakG.Set(p.peak.Load())
}

// WindowCommitted implements sim.ShardProbe.
func (p *EngineProbe) WindowCommitted(commit sim.Tick, events uint64) {
	p.windows.Inc()
	p.commit.Set(int64(commit))
	p.windowEvents.Add(events)
	p.windowSize.Observe(events)
}

// InboxPost implements sim.ShardProbe. It runs on the posting shard's
// goroutine.
func (p *EngineProbe) InboxPost(depth int) {
	p.inboxPosts.Inc()
	d := int64(depth)
	p.inboxDepth.Set(d)
	for {
		old := p.peak.Load()
		if old >= d || p.peak.CompareAndSwap(old, d) {
			return
		}
	}
}

// InboxDrained implements sim.ShardProbe.
func (p *EngineProbe) InboxDrained(batch int) {
	p.inboxDrains.Inc()
	p.inboxBatch.Observe(uint64(batch))
	p.inboxDepth.Set(0)
}

// BlockedEnter implements sim.ShardProbe.
func (p *EngineProbe) BlockedEnter() {
	p.stalls.Inc()
	p.blockedSince = time.Now()
}

// BlockedExit implements sim.ShardProbe.
func (p *EngineProbe) BlockedExit() {
	p.blockedNS.Add(uint64(time.Since(p.blockedSince).Nanoseconds()))
}

// QuiesceCheck implements sim.ShardProbe.
func (p *EngineProbe) QuiesceCheck(bool) {
	p.quiesce.Inc()
}

// ShardDoc is one shard's introspection document, served as JSON at /shards.
// Commit/Pending/InboxDepth come from the engine's live state; the remaining
// fields are the shard's engine_* metric values.
type ShardDoc struct {
	ID         int    `json:"id"`
	Routers    []int  `json:"routers,omitempty"`
	Commit     uint64 `json:"commit"`
	Pending    int64  `json:"pending"`
	InboxDepth int    `json:"inbox_depth"`
	InboxPeak  int64  `json:"inbox_peak"`
	InboxPosts uint64 `json:"inbox_posts"`
	Rounds     uint64 `json:"rounds"`
	Windows    uint64 `json:"windows"`
	Events     uint64 `json:"window_events"`
	Stalls     uint64 `json:"stalls"`
	BlockedNS  uint64 `json:"blocked_ns"`
}

// shardReg is one registered shard's introspection wiring.
type shardReg struct {
	id      int
	routers []int
	status  func() sim.ShardStatus
	probe   *EngineProbe
}

// RegisterShard wires shard id into the /shards introspection document:
// routers is the shard's router assignment, status reads the engine's live
// shard state, probe supplies the engine metrics. Core calls it once per
// shard while assembling a parallel run.
func (t *Telemetry) RegisterShard(id int, routers []int, status func() sim.ShardStatus, probe *EngineProbe) {
	t.mu.Lock()
	t.shardRegs = append(t.shardRegs, shardReg{id: id, routers: routers, status: status, probe: probe})
	t.mu.Unlock()
}

// ShardDocs returns the current per-shard introspection documents, in shard
// order. Serial runs return an empty slice. Safe to call from the HTTP
// goroutine while the engine runs.
func (t *Telemetry) ShardDocs() []ShardDoc {
	t.mu.Lock()
	regs := t.shardRegs
	t.mu.Unlock()
	docs := make([]ShardDoc, 0, len(regs))
	for _, r := range regs {
		st := r.status()
		docs = append(docs, ShardDoc{
			ID:         r.id,
			Routers:    r.routers,
			Commit:     uint64(st.Commit),
			Pending:    st.Pending,
			InboxDepth: st.InboxDepth,
			InboxPeak:  r.probe.peak.Load(),
			InboxPosts: r.probe.inboxPosts.Load(),
			Rounds:     r.probe.rounds.Load(),
			Windows:    r.probe.windows.Load(),
			Events:     r.probe.windowEvents.Load(),
			Stalls:     r.probe.stalls.Load(),
			BlockedNS:  r.probe.blockedNS.Load(),
		})
	}
	return docs
}

package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// metric is one registered time series: a name, the owning component, an
// optional virtual-channel index (-1 when not applicable), and exactly one of
// the three value holders depending on kind.
type metric struct {
	name  string
	comp  string
	vc    int
	kind  Kind
	scale float64 // counters only: snapshot rate U = delta*scale/binTicks

	c Counter
	g Gauge
	h *Histogram

	// last* remember the value at the previous snapshot so bins emit deltas.
	lastC uint64
	lastG int64
	lastH uint64
}

func metricKey(name, comp string, vc int) string {
	return name + "\x00" + comp + "\x00" + strconv.Itoa(vc)
}

// Registry holds every metric of one simulation. Registration is
// mutex-guarded and idempotent — two components (or two goroutines in tests)
// registering the same (name, component, vc) triple get the same metric —
// and all emission paths iterate in sorted (name, comp, vc) order, so output
// is deterministic regardless of registration order. Metric *values* are
// atomics; after construction the registry is read-mostly and safe to scrape
// from the HTTP goroutine while the simulation runs.
type Registry struct {
	mu     sync.Mutex
	index  map[string]*metric
	list   []*metric // kept sorted by (name, comp, vc)
	sorted bool
}

func newRegistry() *Registry {
	return &Registry{index: make(map[string]*metric)}
}

// NewRegistry returns an empty standalone registry for aggregation layers —
// the sweep monitor publishes fleet-level metrics through the same sorted,
// byte-stable exposition paths without owning a Telemetry instance.
func NewRegistry() *Registry { return newRegistry() }

func (r *Registry) register(name, comp string, vc int, kind Kind, scale float64) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := metricKey(name, comp, vc)
	if m, ok := r.index[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q of %s re-registered as %v, was %v", name, comp, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, comp: comp, vc: vc, kind: kind, scale: scale}
	if kind == KindHist {
		m.h = &Histogram{}
	}
	r.index[key] = m
	r.list = append(r.list, m)
	r.sorted = false
	return m
}

// Counter registers (or finds) a counter. scale is the per-bin rate factor
// used by snapshots: a snapshot bin emits U = delta*scale/binTicks, so a
// channel with one flit slot per period P passes scale=P to make U its
// utilization in [0,1]. Pass 0 to skip rate emission.
func (r *Registry) Counter(name, comp string, vc int, scale float64) *Counter {
	return &r.register(name, comp, vc, KindCounter, scale).c
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name, comp string, vc int) *Gauge {
	return &r.register(name, comp, vc, KindGauge, 0).g
}

// Histogram registers (or finds) a histogram.
func (r *Registry) Histogram(name, comp string, vc int) *Histogram {
	return r.register(name, comp, vc, KindHist, 0).h
}

// snapshotLocked returns the metric list in deterministic order. Caller must
// hold r.mu.
func (r *Registry) sortLocked() []*metric {
	if !r.sorted {
		sort.Slice(r.list, func(i, j int) bool {
			a, b := r.list[i], r.list[j]
			if a.name != b.name {
				return a.name < b.name
			}
			if a.comp != b.comp {
				return a.comp < b.comp
			}
			return a.vc < b.vc
		})
		r.sorted = true
	}
	return r.list
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.list)
}

// WritePrometheus renders every metric in Prometheus text exposition format,
// prefixed supersim_, with component and vc labels. Histograms emit
// cumulative le buckets plus _sum and _count. Output is sorted and therefore
// byte-stable for a given set of metric values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	list := append([]*metric(nil), r.sortLocked()...)
	r.mu.Unlock()

	var b strings.Builder
	lastName := ""
	for _, m := range list {
		promName := "supersim_" + m.name
		if m.name != lastName {
			typ := "counter"
			switch m.kind {
			case KindGauge:
				typ = "gauge"
			case KindHist:
				typ = "histogram"
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", promName, typ)
			lastName = m.name
		}
		switch m.kind {
		case KindCounter:
			fmt.Fprintf(&b, "%s{%s} %d\n", promName, promLabels(m, ""), m.c.Load())
		case KindGauge:
			fmt.Fprintf(&b, "%s{%s} %d\n", promName, promLabels(m, ""), m.g.Load())
		case KindHist:
			cum := uint64(0)
			for i := 0; i < histBuckets; i++ {
				n := m.h.Bucket(i)
				if n == 0 && i > 0 && i < histBuckets-1 {
					continue // sparse: skip empty interior buckets
				}
				cum += n
				le := "+Inf"
				if i < histBuckets-1 {
					le = strconv.FormatUint(BucketUpper(i), 10)
				}
				fmt.Fprintf(&b, "%s_bucket{%s} %d\n", promName, promLabels(m, le), cum)
			}
			fmt.Fprintf(&b, "%s_sum{%s} %d\n", promName, promLabels(m, ""), m.h.Sum())
			fmt.Fprintf(&b, "%s_count{%s} %d\n", promName, promLabels(m, ""), m.h.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func promLabels(m *metric, le string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "component=%q", m.comp)
	if m.vc >= 0 {
		fmt.Fprintf(&b, ",vc=%q", strconv.Itoa(m.vc))
	}
	if le != "" {
		fmt.Fprintf(&b, ",le=%q", le)
	}
	return b.String()
}
